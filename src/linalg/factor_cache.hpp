// Bounded, thread-safe LRU cache of factorized pencils, shared by every
// reduction driver, both sweep engines and the multipoint session.
//
// Motivation: a SyMPVL reduction, a follow-up exact AC validation, a
// PVL p×p entry scan and a multipoint refinement loop all factor the
// SAME pencil G + s₀C over and over. Factorization is the dominant cost
// for large circuits; the cache turns the repeats into lookups.
//
// Keys: a value fingerprint of (G, C) — FNV-1a over dimensions, sparsity
// pattern and values — plus the expansion point, ordering, zero-pivot
// tolerance and backend (sparse/dense/complex). Two calls with equal
// keys would factor bit-identical pencils, so a hit returns numerically
// identical solves and determinism (1-thread vs N-thread bit-equality)
// is preserved.
//
// Entries: real pencils cache the shared FactorizedPencil; complex AC
// per-point pencils cache an opaque ComplexPencilSolver. A complex
// request whose frequency point is purely real first probes the real
// side and, on a hit, adapts the real M J Mᵀ factorization to complex
// right-hand sides (two real blocked solves) — this is what makes
// "SyMPVL at s₀ followed by an exact sweep at s₀" cost exactly one
// factorization.
//
// Concurrency: lookups and insertions take one mutex; the factorization
// itself (the maker callback) always runs OUTSIDE the lock, so
// concurrent sweep threads never serialize on each other's numeric
// work. Two threads racing on the same missing key both factor; one
// result is inserted, and both receive a valid (identical-valued)
// factorization.
//
// Fault injection: when any fault spec is armed (fault::active()), the
// cache is bypassed entirely — never read, never written — so
// fault-injection drills always exercise the real factorization path
// and armed state cannot leak cached-clean results into a drill (or
// poisoned results out of one).
//
// Observability: obs counters "factor_cache.hit" / "factor_cache.miss" /
// "factor_cache.evict" (env-gated like all obs), plus an always-on
// FactorCacheStats snapshot for benches.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "linalg/factorized_pencil.hpp"

namespace sympvl {

/// Value fingerprint of a (G, C) pencil pair: 64-bit FNV-1a over rows,
/// colptr, rowind and values of each matrix. Compute once per system and
/// reuse across acquisitions (an AC sweep fingerprints once, not per
/// point).
struct PencilFingerprint {
  std::uint64_t g = 0;
  std::uint64_t c = 0;
  /// System dimension, carried so the cache key can store the RESOLVED
  /// kernel path (the kAuto heuristic depends on n and the RHS width).
  Index n = 0;
};

PencilFingerprint fingerprint_pencil(const SMat& g, const SMat& c);

/// Always-on cache telemetry (monotonic since construction or the last
/// reset_stats(), except the byte gauges which track live entries).
struct FactorCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Capacity-pressure evictions: entries forced out by an insert past
  /// capacity or a set_capacity() shrink. clear() does not count.
  std::uint64_t evictions = 0;
  /// Factorizations actually performed (misses plus fault-mode bypasses).
  std::uint64_t factorizations = 0;
  /// Bytes held by resident entries right now, and the high-water mark
  /// since construction (reset_stats() drops the peak to the current
  /// value). Also mirrored into the process-wide
  /// "factor_cache.resident_bytes" byte gauge.
  std::int64_t resident_bytes = 0;
  std::int64_t peak_resident_bytes = 0;
};

/// Opaque complex pencil solver cached for AC sweep points (backed by the
/// FactorChainZ hot path, or by a real-factorization adapter).
class ComplexPencilSolver {
 public:
  virtual ~ComplexPencilSolver() = default;
  virtual CVec solve(const CVec& b) const = 0;
  virtual CMat solve(const CMat& b) const = 0;
  /// Resident bytes this solver pins while cached (0 for adapters that
  /// merely reference another entry's factorization).
  virtual std::int64_t bytes() const { return 0; }
};

class FactorCache {
 public:
  explicit FactorCache(std::size_t capacity = 32);
  ~FactorCache();
  FactorCache(const FactorCache&) = delete;
  FactorCache& operator=(const FactorCache&) = delete;

  /// The process-wide default instance every driver and engine uses when
  /// no explicit cache is supplied.
  static FactorCache& global();

  using RealMaker = std::function<std::shared_ptr<const FactorizedPencil>()>;
  using ComplexMaker =
      std::function<std::shared_ptr<const ComplexPencilSolver>()>;

  /// Returns the cached factorization of the pencil identified by
  /// (fingerprint, options), invoking `make` outside the lock on a miss.
  /// Exceptions from `make` propagate; nothing is cached for failed
  /// factorizations (a retry re-attempts). `was_hit`, when non-null,
  /// reports whether the result came from the cache.
  std::shared_ptr<const FactorizedPencil> acquire(
      const PencilFingerprint& fp, const PencilFactorOptions& options,
      const RealMaker& make, bool* was_hit = nullptr);

  /// Complex acquisition for one AC sweep point at pencil value `fs`.
  /// When fs is purely real, a cached REAL factorization at shift
  /// fs.real() (canonical driver settings: RCM ordering, 1e-12 zero-pivot
  /// tolerance, sparse or dense) is adapted instead of refactoring.
  std::shared_ptr<const ComplexPencilSolver> acquire_complex(
      const PencilFingerprint& fp, Complex fs, const ComplexMaker& make,
      bool* was_hit = nullptr);

  /// Drops every entry (stats are kept).
  void clear();
  std::size_t size() const;
  std::size_t capacity() const;
  /// Resizes the LRU bound (evicting immediately when shrinking); 0 is
  /// clamped to 1 like the constructor.
  void set_capacity(std::size_t capacity);
  /// A disabled cache never reads or writes entries: every acquire
  /// factors fresh (factorizations still counted, hits/misses not).
  /// global() starts disabled when SYMPVL_FACTOR_CACHE=0|off and sized by
  /// SYMPVL_FACTOR_CACHE_CAP. Per-reduction disabling goes through
  /// CacheOptions::enabled instead (the drivers bypass acquire), so one
  /// reduction's options never flip the shared instance.
  bool enabled() const;
  void set_enabled(bool enabled);
  FactorCacheStats stats() const;
  void reset_stats();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sympvl
