#include "sim/nonlinear.hpp"

#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "mor/sympvl.hpp"

namespace sympvl {
namespace {

// Scalar solve of  (v − v_s)/R + i_d(v) = 0  by bisection, for reference.
double diode_node_voltage(double v_source, double r, double is, double vt) {
  double lo = 0.0, hi = v_source;
  for (int k = 0; k < 200; ++k) {
    const double mid = 0.5 * (lo + hi);
    const double f = (mid - v_source) / r + is * (std::exp(mid / vt) - 1.0);
    (f > 0.0 ? hi : lo) = mid;
  }
  return 0.5 * (lo + hi);
}

TEST(Nonlinear, DeviceFreeMatchesLinearBackwardEuler) {
  Netlist nl;
  nl.add_resistor(1, 0, 100.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  TransientOptions lopt;
  lopt.dt = 1e-12;
  lopt.t_end = 3e-10;
  lopt.method = IntegrationMethod::kBackwardEuler;
  std::vector<Waveform> drive{[](double t) { return t > 0 ? 1e-3 : 0.0; }};
  const auto linear = simulate_ports_transient(sys, drive, lopt);

  NonlinearTransientOptions nopt;
  nopt.dt = lopt.dt;
  nopt.t_end = lopt.t_end;
  const auto nonlinear =
      simulate_nonlinear_transient(sys, {}, sys.B, drive, sys.B, nopt);
  ASSERT_EQ(linear.time.size(), nonlinear.time.size());
  for (size_t k = 0; k < linear.time.size(); ++k)
    EXPECT_NEAR(nonlinear.outputs(static_cast<Index>(k), 0),
                linear.outputs(static_cast<Index>(k), 0), 1e-9);
}

TEST(Nonlinear, DiodeClampsNodeVoltage) {
  // Current source I0 into node 1; R and diode to ground. Steady state
  // satisfies v/R + i_d(v) = I0 ⇔ the bisection reference with
  // v_source = I0·R.
  const double r = 1000.0, is = 1e-14, vt = 0.02585, i0 = 5e-3;
  Netlist nl;
  nl.add_resistor(1, 0, r);
  nl.add_capacitor(1, 0, 1e-13);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  auto diode = std::make_shared<Diode>(0, -1, is, vt);  // MNA index 0 = node 1

  NonlinearTransientOptions opt;
  opt.dt = 2e-12;
  opt.t_end = 3e-9;  // ≫ RC so the run reaches steady state
  std::vector<Waveform> drive{[=](double t) { return t > 0 ? i0 : 0.0; }};
  const auto res =
      simulate_nonlinear_transient(sys, {diode}, sys.B, drive, sys.B, opt);
  const double v_final =
      res.outputs(static_cast<Index>(res.time.size()) - 1, 0);
  const double v_ref = diode_node_voltage(i0 * r, r, is, vt);
  EXPECT_NEAR(v_final, v_ref, 1e-3 * v_ref);
  // Clamped far below the linear value I0·R = 5 V.
  EXPECT_LT(v_final, 1.0);
  EXPECT_GT(v_final, 0.5);
}

TEST(Nonlinear, DiodeRectifies) {
  // Sine drive across R ∥ diode: positive half-waves clamp, negative don't.
  Netlist nl;
  nl.add_resistor(1, 0, 1000.0);
  nl.add_capacitor(1, 0, 1e-14);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  auto diode = std::make_shared<Diode>(0, -1);
  NonlinearTransientOptions opt;
  opt.dt = 1e-11;
  opt.t_end = 2e-9;
  const double f0 = 1e9;
  std::vector<Waveform> drive{
      [=](double t) { return 2e-3 * std::sin(2.0 * M_PI * f0 * t); }};
  const auto res =
      simulate_nonlinear_transient(sys, {diode}, sys.B, drive, sys.B, opt);
  double vmax = -1e9, vmin = 1e9;
  for (size_t k = 0; k < res.time.size(); ++k) {
    vmax = std::max(vmax, res.outputs(static_cast<Index>(k), 0));
    vmin = std::min(vmin, res.outputs(static_cast<Index>(k), 0));
  }
  EXPECT_LT(vmax, 1.0);    // clamped by the diode
  EXPECT_LT(vmin, -1.5);   // negative swing nearly unclamped (−2 V ideal)
}

TEST(Nonlinear, TanhDriverFollowsControl) {
  // Driver buffers a control node onto a capacitive load: the output must
  // settle at the control voltage.
  Netlist nl;
  nl.add_resistor(1, 0, 1e6);   // control node held by the source
  nl.add_capacitor(1, 0, 1e-15);
  nl.add_capacitor(2, 0, 1e-12);  // load
  nl.add_resistor(2, 0, 1e6);
  nl.add_port(1, 0);
  nl.add_port(2, 0);
  const MnaSystem sys = build_mna(nl);
  auto driver = std::make_shared<TanhDriver>(0, 1, 0.02, 0.3);

  NonlinearTransientOptions opt;
  opt.dt = 5e-12;
  opt.t_end = 5e-9;
  std::vector<Waveform> drives{[](double t) { return t > 0 ? 1e-6 : 0.0; },
                               [](double) { return 0.0; }};
  // 1 µA into 1 MΩ ⇒ control settles at 1 V; the driver must pull the
  // output there too.
  const auto res =
      simulate_nonlinear_transient(sys, {driver}, sys.B, drives, sys.B, opt);
  const Index last = static_cast<Index>(res.time.size()) - 1;
  EXPECT_NEAR(res.outputs(last, 0), 1.0, 0.01);
  EXPECT_NEAR(res.outputs(last, 1), 1.0, 0.02);
}

TEST(Nonlinear, RomCosimulationMatchesFullCircuit) {
  // The paper's Section 6 scenario: nonlinear driver + linear block. Run
  // (a) driver + full block, (b) driver + SyMPVL ROM stamped in; compare.
  const Netlist block = random_rc({.nodes = 40, .ports = 2, .seed = 51});
  const MnaSystem block_sys = build_mna(block);
  SympvlOptions sopt;
  sopt.order = 16;
  const ReducedModel rom = sympvl_reduce(block_sys, sopt);

  // Host: a control node driven by a current source; the TanhDriver
  // buffers it onto the block's first port; port 2 is observed.
  const Index ctl_node_block = block.node_count();  // fresh node in "full"
  Netlist full = block;
  full.add_resistor(ctl_node_block, 0, 1e5);
  full.add_capacitor(ctl_node_block, 0, 1e-14);
  // Replace ports: drive = control node, observe = block port 2 node.
  Netlist full2;
  full2.ensure_nodes(full.node_count());
  for (const auto& r : full.resistors()) full2.add_resistor(r.n1, r.n2, r.resistance);
  for (const auto& c : full.capacitors()) full2.add_capacitor(c.n1, c.n2, c.capacitance);
  full2.add_port(ctl_node_block, 0, "ctl");
  full2.add_port(block.ports()[1].n1, 0, "obs");
  const MnaSystem full_sys = build_mna(full2, MnaForm::kGeneral);
  auto drv_full = std::make_shared<TanhDriver>(ctl_node_block - 1,
                                               block.ports()[0].n1 - 1);

  // ROM version: host = control node + attachment nodes for the two ports.
  Netlist host;
  host.ensure_nodes(4);
  host.add_resistor(3, 0, 1e5);
  host.add_capacitor(3, 0, 1e-14);
  host.add_resistor(1, 0, 1e9);  // attachment nodes need a DC path in the host
  host.add_resistor(2, 0, 1e9);
  host.add_port(3, 0, "ctl");
  host.add_port(2, 0, "obs");
  const MnaSystem rom_sys = rom.stamp_into(host, {1, 2});
  auto drv_rom = std::make_shared<TanhDriver>(2, 0);  // ctl = node 3 → idx 2

  NonlinearTransientOptions opt;
  opt.dt = 1e-11;
  opt.t_end = 8e-9;
  std::vector<Waveform> drives{ramp_waveform(1e-5, 0.5e-9, 1e-9),
                               [](double) { return 0.0; }};
  const auto a = simulate_nonlinear_transient(full_sys, {drv_full}, full_sys.B,
                                              drives, full_sys.B, opt);
  const auto b = simulate_nonlinear_transient(rom_sys, {drv_rom}, rom_sys.B,
                                              drives, rom_sys.B, opt);
  double scale = 0.0;
  for (size_t k = 0; k < a.time.size(); ++k)
    scale = std::max(scale, std::abs(a.outputs(static_cast<Index>(k), 1)));
  ASSERT_GT(scale, 0.0);
  for (size_t k = 0; k < a.time.size(); ++k)
    EXPECT_NEAR(b.outputs(static_cast<Index>(k), 1),
                a.outputs(static_cast<Index>(k), 1), 0.02 * scale)
        << "t=" << a.time[k];
}

TEST(Nonlinear, DcOperatingPointLinearMatchesSolve) {
  Netlist nl;
  nl.add_resistor(1, 2, 100.0);
  nl.add_resistor(2, 0, 300.0);
  nl.add_capacitor(2, 0, 1e-12);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  const Vec x = dc_operating_point(sys, {}, sys.B, {1e-3});
  // 1 mA through 400 Ω: node 1 at 0.4 V, node 2 at 0.3 V.
  EXPECT_NEAR(x[0], 0.4, 1e-12);
  EXPECT_NEAR(x[1], 0.3, 1e-12);
}

TEST(Nonlinear, DcOperatingPointDiodeMatchesBisection) {
  const double r = 1000.0, is = 1e-14, vt = 0.02585, i0 = 5e-3;
  Netlist nl;
  nl.add_resistor(1, 0, r);
  nl.add_capacitor(1, 0, 1e-13);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  auto diode = std::make_shared<Diode>(0, -1, is, vt);
  const Vec x = dc_operating_point(sys, {diode}, sys.B, {i0});
  EXPECT_NEAR(x[0], diode_node_voltage(i0 * r, r, is, vt), 1e-9);
}

TEST(Nonlinear, DcOperatingPointMatchesTransientSteadyState) {
  Netlist nl;
  nl.add_resistor(1, 2, 200.0);
  nl.add_resistor(2, 0, 200.0);
  nl.add_capacitor(1, 0, 1e-13);
  nl.add_capacitor(2, 0, 1e-13);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  auto diode = std::make_shared<Diode>(1, -1);  // at node 2
  const Vec x0 = dc_operating_point(sys, {diode}, sys.B, {2e-3});
  NonlinearTransientOptions opt;
  opt.dt = 5e-12;
  opt.t_end = 5e-9;
  const auto res = simulate_nonlinear_transient(
      sys, {diode}, sys.B, {[](double t) { return t > 0 ? 2e-3 : 0.0; }},
      sys.B, opt);
  EXPECT_NEAR(res.outputs(static_cast<Index>(res.time.size()) - 1, 0), x0[0],
              1e-4 * std::abs(x0[0]));
}

TEST(Nonlinear, Validation) {
  Netlist nl;
  nl.add_resistor(1, 0, 10.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  NonlinearTransientOptions opt;
  opt.dt = 0.0;
  EXPECT_THROW(simulate_nonlinear_transient(
                   sys, {}, sys.B, {[](double) { return 0.0; }}, sys.B, opt),
               Error);
  EXPECT_THROW(Diode(1, 1), Error);
  EXPECT_THROW(TanhDriver(0, 0), Error);
  opt.dt = 1e-12;
  opt.t_end = 1e-10;
  auto bad = std::make_shared<Diode>(7, -1);  // out of range for this system
  EXPECT_THROW(simulate_nonlinear_transient(
                   sys, {bad}, sys.B, {[](double) { return 0.0; }}, sys.B, opt),
               Error);
}

}  // namespace
}  // namespace sympvl
