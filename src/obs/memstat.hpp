// Memory accounting (Metrics v2): byte gauges with high-water marks
// plus process-RSS sampling.
//
// Unlike spans and counters, byte gauges are ALWAYS ON — they are not
// gated on obs::enabled(). Rationale: updates happen only at
// allocation-granularity events (a factorization completing, a cache
// entry inserted/evicted, a Lanczos step growing the basis), so the
// steady-state cost is a couple of relaxed atomic adds per factor —
// nothing like the per-event cost the span gate exists to avoid — and
// always-on accounting lets SympvlReport carry real byte numbers even
// when no tracing sink is configured.
//
// The accounting points (see DESIGN.md §5.7):
//   mem.factor_bytes            — resident factor storage (SparseLDLT /
//                                 SparseLU value+index arrays), charged
//                                 by an obs::MemCharge member for the
//                                 lifetime of each factorization object
//   factor_cache.resident_bytes — bytes held by FactorCache entries
//   mem.krylov_bytes            — Lanczos basis + candidate + T/ρ
//                                 storage, re-stated after every step
//
// MemCharge is the RAII vehicle: it adds to a gauge on construction
// (or set()) and subtracts on destruction, so the gauge's current
// value tracks live objects and its peak is the true high-water mark.
// Copying a MemCharge duplicates the charge — a copied factorization
// really does hold a second copy of the bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sympvl::obs {

/// Current/peak byte gauge. add() is relaxed-atomic and data-race-free
/// from pool workers; peak updates via CAS-max.
class ByteGauge {
 public:
  void add(std::int64_t delta);
  std::int64_t value() const { return cur_.load(std::memory_order_relaxed); }
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  /// obs::reset(): drops the high-water mark to the current value so a
  /// fresh measurement window starts clean while live charges persist.
  void reset_peak();

 private:
  std::atomic<std::int64_t> cur_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Interned registry (leaked, like obs::counter): one gauge per name.
ByteGauge& byte_gauge(const char* name);

struct ByteGaugeSnapshot {
  std::string name;
  std::int64_t current = 0;
  std::int64_t peak = 0;
};

/// Sorted-by-name snapshot of all registered byte gauges.
std::vector<ByteGaugeSnapshot> snapshot_byte_gauges();

/// RAII charge against a ByteGauge — see file comment.
class MemCharge {
 public:
  MemCharge() = default;
  MemCharge(ByteGauge& gauge, std::int64_t bytes);
  MemCharge(const MemCharge& other);
  MemCharge& operator=(const MemCharge& other);
  MemCharge(MemCharge&& other) noexcept;
  MemCharge& operator=(MemCharge&& other) noexcept;
  ~MemCharge();

  /// Re-states the charge (e.g. a structure that grew); the gauge sees
  /// only the delta.
  void set(std::int64_t bytes);
  /// Releases the charge now and detaches from the gauge.
  void reset();

  std::int64_t bytes() const { return bytes_; }

 private:
  ByteGauge* gauge_ = nullptr;
  std::int64_t bytes_ = 0;
};

/// Process high-water RSS in bytes (getrusage ru_maxrss); 0 when
/// unavailable. Monotone over the process lifetime by definition.
std::int64_t peak_rss_bytes();

/// Instantaneous RSS in bytes via /proc/self/statm; 0 when unavailable
/// (non-Linux).
std::int64_t current_rss_bytes();

namespace detail {
/// obs::reset() hook: reset_peak() on every registered gauge.
void reset_byte_gauge_peaks();
}  // namespace detail

}  // namespace sympvl::obs
