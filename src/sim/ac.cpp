#include "sim/ac.hpp"

#include <cmath>
#include <memory>

#include "linalg/factor_cache.hpp"
#include "linalg/factor_chain.hpp"
#include "linalg/sparse_ldlt.hpp"
#include "linalg/sparse_lu.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace sympvl {

namespace {

// Solver for one pencil G + f(s)C, backed by the factorization fallback
// chain: the unpivoted complex-symmetric sparse LDLᵀ is the fast path;
// MNA pencils can hit exact structural zero pivots (e.g. a series R-L
// chain cancels the node conductance during elimination), in which case
// the partial-pivoting sparse LU rung takes over. The chain's acceptance
// gates are disabled here — tiny pivots near resonances are legitimate,
// and a per-point condition estimate would double the sweep cost.
class PencilSolver {
 public:
  explicit PencilSolver(const CSMat& pencil)
      : chain_(pencil, hot_path_options()) {
    note_fallback(pencil.rows());
  }
  PencilSolver(const CSMat& pencil,
               const std::shared_ptr<const LdltSymbolic>& symbolic)
      : chain_(pencil, symbolic, hot_path_options()) {
    note_fallback(pencil.rows());
  }
  CVec solve(const CVec& b) const { return chain_.solve(b); }
  // Multi-RHS solve: one blocked pass over the LDLᵀ factor for all
  // columns; the LU fallback solves column by column.
  CMat solve(const CMat& b) const { return chain_.solve(b); }
  std::int64_t bytes() const { return chain_.bytes(); }

 private:
  static FactorChainOptions hot_path_options() {
    FactorChainOptions opt;
    opt.zero_pivot_tol = 0.0;   // accept tiny pivots (resonances)
    opt.min_pivot_ratio = 0.0;  // no condition estimate per point
    opt.probe_refine_iters = 0; // no residual probe per point
    return opt;
  }
  void note_fallback(Index n) {
    if (chain_.used_fallback())
      obs::instant("ac.lu_fallback", {obs::arg("n", n)});
  }
  FactorChainZ chain_;
};

// Cacheable wrapper: the per-point PencilSolver behind the FactorCache's
// opaque complex-solver interface. Solves are const with call-local
// workspaces, so one cached instance may serve concurrent sweep threads.
class AcPointSolver final : public ComplexPencilSolver {
 public:
  explicit AcPointSolver(const CSMat& pencil) : solver_(pencil) {}
  AcPointSolver(const CSMat& pencil,
                const std::shared_ptr<const LdltSymbolic>& symbolic)
      : solver_(pencil, symbolic) {}
  CVec solve(const CVec& b) const override { return solver_.solve(b); }
  CMat solve(const CMat& b) const override { return solver_.solve(b); }
  std::int64_t bytes() const override { return solver_.bytes(); }

 private:
  PencilSolver solver_;
};

// Complex copy of the real port incidence B (the multi-RHS block).
CMat port_rhs(const MnaSystem& sys) {
  const Index n = sys.size();
  const Index p = sys.port_count();
  CMat b(n, p);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < p; ++j) b(i, j) = Complex(sys.B(i, j), 0.0);
  return b;
}

}  // namespace

CMat ac_z_matrix(const MnaSystem& sys, Complex s) {
  require(sys.port_count() > 0, "ac_z_matrix: system has no ports");
  const Complex fs = sys.map_s(s);
  const auto fact = FactorCache::global().acquire_complex(
      fingerprint_pencil(sys.G, sys.C), fs, [&] {
        return std::make_shared<const AcPointSolver>(
            pencil_combine(sys.G, sys.C, fs));
      });
  const CMat x = fact->solve(port_rhs(sys));
  CMat z = matmul_transA(sys.B, x);
  z *= sys.prefactor(s);
  return z;
}

std::vector<CMat> ac_sweep(const MnaSystem& sys, const Vec& frequencies_hz) {
  // The engine amortizes ordering + symbolic analysis over the sweep; the
  // all-or-nothing contract converts any contained point failure into a
  // structured kSweepPointFailed.
  return AcSweepEngine(sys).sweep(frequencies_hz).values_or_throw();
}

Complex voltage_transfer(const CMat& z, Index drive, Index out) {
  require(0 <= drive && drive < z.rows() && 0 <= out && out < z.rows(),
          "voltage_transfer: port index out of range");
  const Complex zdd = z(drive, drive);
  require(std::abs(zdd) > 0.0, "voltage_transfer: drive port impedance is zero");
  return z(out, drive) / zdd;
}

Vec log_frequency_grid(double f_min, double f_max, Index count) {
  require(f_min > 0.0 && f_max > f_min && count >= 2,
          "log_frequency_grid: invalid range");
  Vec f(static_cast<size_t>(count));
  const double l0 = std::log10(f_min);
  const double l1 = std::log10(f_max);
  for (Index k = 0; k < count; ++k)
    f[static_cast<size_t>(k)] =
        std::pow(10.0, l0 + (l1 - l0) * static_cast<double>(k) /
                                static_cast<double>(count - 1));
  return f;
}

// ---- AcSweepEngine ---------------------------------------------------------

struct AcSweepEngine::Impl {
  MnaSystem sys;  // copied: the engine must not dangle
  // Union pattern of G and C (template CSMat whose values get rewritten
  // per frequency) and slot maps from each G/C entry into that pattern.
  std::vector<Index> pat_colptr, pat_rowind;
  std::vector<Index> g_slot, c_slot;
  std::shared_ptr<const LdltSymbolic> symbolic;
  CMat b_complex;  // complex copy of B, the shared multi-RHS block
  FactorCache* cache = nullptr;   // never null after construction
  PencilFingerprint fingerprint;  // of (G, C), computed once

  CSMat assemble(Complex fs) const {
    CVec values(pat_rowind.size(), Complex(0.0, 0.0));
    const auto& gv = sys.G.values();
    for (size_t k = 0; k < gv.size(); ++k)
      values[static_cast<size_t>(g_slot[k])] += Complex(gv[k], 0.0);
    const auto& cv = sys.C.values();
    for (size_t k = 0; k < cv.size(); ++k)
      values[static_cast<size_t>(c_slot[k])] += fs * cv[k];
    CSMat pencil(sys.size(), sys.size());
    pencil.set_raw(pat_colptr, pat_rowind, std::move(values));
    return pencil;
  }
};

AcSweepEngine::AcSweepEngine(const MnaSystem& sys, FactorCache* cache)
    : impl_(std::make_unique<Impl>()) {
  require(sys.port_count() > 0, "AcSweepEngine: system has no ports");
  impl_->sys = sys;
  impl_->cache = cache != nullptr ? cache : &FactorCache::global();
  impl_->fingerprint = fingerprint_pencil(sys.G, sys.C);
  // Union pattern: all G entries plus all C entries (unit weights so no
  // accidental cancellation drops an entry).
  const Index n = sys.size();
  TripletBuilder<double> t(n, n);
  for (Index j = 0; j < n; ++j) {
    for (Index k = sys.G.colptr()[static_cast<size_t>(j)];
         k < sys.G.colptr()[static_cast<size_t>(j) + 1]; ++k)
      t.add(sys.G.rowind()[static_cast<size_t>(k)], j, 1.0);
    for (Index k = sys.C.colptr()[static_cast<size_t>(j)];
         k < sys.C.colptr()[static_cast<size_t>(j) + 1]; ++k)
      t.add(sys.C.rowind()[static_cast<size_t>(k)], j, 1.0);
  }
  const SMat pattern = t.compress();
  impl_->pat_colptr = pattern.colptr();
  impl_->pat_rowind = pattern.rowind();
  // Slot maps.
  auto build_slots = [&](const SMat& m, std::vector<Index>& slots) {
    slots.resize(static_cast<size_t>(m.nnz()));
    Index idx = 0;
    for (Index j = 0; j < n; ++j)
      for (Index k = m.colptr()[static_cast<size_t>(j)];
           k < m.colptr()[static_cast<size_t>(j) + 1]; ++k) {
        const Index slot = pattern.find(m.rowind()[static_cast<size_t>(k)], j);
        require(slot >= 0, "AcSweepEngine: pattern construction failed");
        slots[static_cast<size_t>(idx++)] = slot;
      }
  };
  build_slots(sys.G, impl_->g_slot);
  build_slots(sys.C, impl_->c_slot);
  impl_->symbolic = std::make_shared<const LdltSymbolic>(pattern);
  impl_->b_complex = port_rhs(sys);
}

AcSweepEngine::~AcSweepEngine() = default;
AcSweepEngine::AcSweepEngine(AcSweepEngine&&) noexcept = default;
AcSweepEngine& AcSweepEngine::operator=(AcSweepEngine&&) noexcept = default;

CMat AcSweepEngine::z_at(Complex s) const {
  obs::ScopedTimer span("ac.z_at");
  span.arg("im_s", s.imag());
  const MnaSystem& sys = impl_->sys;
  // Numeric-only LDLᵀ with the shared symbolic; pivoted LU as fallback.
  // Everything mutable (pencil values, factor, solution block) is local to
  // this call, which is what makes the sweep below thread-safe: each
  // thread refactorizes its own frequency points against the shared
  // read-only symbolic analysis. The factorization itself is acquired
  // through the cache — revisited points (and purely real points already
  // factored by a reduction driver) skip the refactorization; cached
  // solvers are immutable, so sharing them across threads is safe.
  const Complex fs = sys.map_s(s);
  const auto fact = impl_->cache->acquire_complex(
      impl_->fingerprint, fs, [&] {
        return std::make_shared<const AcPointSolver>(impl_->assemble(fs),
                                                     impl_->symbolic);
      });
  const CMat x = fact->solve(impl_->b_complex);
  CMat z = matmul_transA(sys.B, x);
  z *= sys.prefactor(s);
  return z;
}

SweepResult AcSweepEngine::sweep(const Vec& frequencies_hz) const {
  const Index count = static_cast<Index>(frequencies_hz.size());
  obs::ScopedTimer span("ac.sweep");
  span.arg("points", count);
  span.arg("threads", num_threads());
  span.arg("mna_size", impl_->sys.size());
  // Frequency points are independent; a static partition keeps the result
  // bit-identical to the serial sweep (each point is computed by exactly
  // the same sequence of operations regardless of thread count), and the
  // containment harness turns per-point failures into NaN + error records
  // without disturbing the healthy points.
  const Index p = impl_->sys.port_count();
  SweepResult res = detail::run_contained_sweep(
      frequencies_hz, p, p, [&](Index k) {
        return z_at(Complex(
            0.0, 2.0 * M_PI * frequencies_hz[static_cast<size_t>(k)]));
      });
  span.arg("failed_points", res.failed_count());
  return res;
}

Vec linear_frequency_grid(double f_min, double f_max, Index count) {
  require(f_max > f_min && count >= 2, "linear_frequency_grid: invalid range");
  Vec f(static_cast<size_t>(count));
  for (Index k = 0; k < count; ++k)
    f[static_cast<size_t>(k)] =
        f_min + (f_max - f_min) * static_cast<double>(k) /
                    static_cast<double>(count - 1);
  return f;
}

}  // namespace sympvl
