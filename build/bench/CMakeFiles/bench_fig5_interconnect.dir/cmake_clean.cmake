file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_interconnect.dir/bench_fig5_interconnect.cpp.o"
  "CMakeFiles/bench_fig5_interconnect.dir/bench_fig5_interconnect.cpp.o.d"
  "bench_fig5_interconnect"
  "bench_fig5_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
