#include "mor/postprocess.hpp"

#include <cmath>

#include "linalg/dense_factor.hpp"
#include "linalg/eig.hpp"
#include "parallel/thread_pool.hpp"

namespace sympvl {

ModalModel::ModalModel(CVec poles, std::vector<CMat> residues, Mat direct,
                       SVariable variable, int s_prefactor)
    : poles_(std::move(poles)),
      residues_(std::move(residues)),
      direct_(std::move(direct)),
      variable_(variable),
      s_prefactor_(s_prefactor) {
  require(poles_.size() == residues_.size(),
          "ModalModel: one residue per pole required");
  for (const auto& r : residues_)
    require(r.rows() == direct_.rows() && r.cols() == direct_.cols(),
            "ModalModel: residue shape mismatch");
}

CMat ModalModel::eval(Complex s) const {
  const Index p = port_count();
  const Complex sigma = (variable_ == SVariable::kS) ? s : s * s;
  CMat z(p, p);
  for (Index i = 0; i < p; ++i)
    for (Index j = 0; j < p; ++j) z(i, j) = Complex(direct_(i, j), 0.0);
  for (size_t k = 0; k < poles_.size(); ++k) {
    const Complex denom = sigma - poles_[k];
    require(std::abs(denom) > 0.0, "ModalModel::eval: evaluation at a pole");
    const Complex w = Complex(1.0, 0.0) / denom;
    for (Index i = 0; i < p; ++i)
      for (Index j = 0; j < p; ++j) z(i, j) += residues_[k](i, j) * w;
  }
  Complex pref(1.0, 0.0);
  for (int k = 0; k < s_prefactor_; ++k) pref *= s;
  for (Index i = 0; i < p; ++i)
    for (Index j = 0; j < p; ++j) z(i, j) *= pref;
  return z;
}

std::vector<CMat> ModalModel::sweep(const Vec& frequencies_hz) const {
  const Index count = static_cast<Index>(frequencies_hz.size());
  std::vector<CMat> out(static_cast<size_t>(count));
  parallel_for(Index(0), count, [&](Index k) {
    out[static_cast<size_t>(k)] =
        eval(Complex(0.0, 2.0 * M_PI * frequencies_hz[static_cast<size_t>(k)]));
  });
  return out;
}

CVec ModalModel::physical_poles() const {
  CVec out;
  for (const Complex& sigma : poles_) {
    if (variable_ == SVariable::kS) {
      out.push_back(sigma);
    } else {
      const Complex root = std::sqrt(sigma);
      out.push_back(root);
      out.push_back(-root);
    }
  }
  return out;
}

bool ModalModel::is_stable(double tol) const {
  for (const Complex& pole : physical_poles())
    if (pole.real() > tol) return false;
  return true;
}

ModalModel modal_decompose(const ReducedModel& model) {
  const Index n = model.order();
  const Index p = model.port_count();
  const GeneralEig eig = eig_general_vectors(model.t());

  // Ẑ(σ') = ρᵀΔ·X (I + σ'Λ)⁻¹ X⁻¹·ρ with σ' = σ − s₀. Terms with λ = 0
  // contribute the constant aₖbₖᵀ; terms with λ ≠ 0 give residues
  // Rₖ = aₖbₖᵀ/λₖ at poles σₖ = s₀ − 1/λₖ.
  const CMat xinv = dense_solve(eig.vectors, CMat::identity(n));
  // a = (ρᵀΔ)·X  (p×n), b = X⁻¹·ρ (n×p).
  const Mat rho_delta = matmul_transA(model.rho(), model.delta());
  CMat a(p, n);
  for (Index i = 0; i < p; ++i)
    for (Index k = 0; k < n; ++k) {
      Complex acc(0.0, 0.0);
      for (Index m = 0; m < n; ++m) acc += rho_delta(i, m) * eig.vectors(m, k);
      a(i, k) = acc;
    }
  CMat b(n, p);
  for (Index k = 0; k < n; ++k)
    for (Index j = 0; j < p; ++j) {
      Complex acc(0.0, 0.0);
      for (Index m = 0; m < n; ++m) acc += xinv(k, m) * model.rho()(m, j);
      b(k, j) = acc;
    }

  CVec poles;
  std::vector<CMat> residues;
  Mat direct(p, p);
  const double lambda_scale = model.t().max_abs() + 1e-300;
  for (Index k = 0; k < n; ++k) {
    const Complex lambda = eig.values[static_cast<size_t>(k)];
    CMat term(p, p);
    for (Index i = 0; i < p; ++i)
      for (Index j = 0; j < p; ++j) term(i, j) = a(i, k) * b(k, j);
    if (std::abs(lambda) < 1e-13 * lambda_scale) {
      // Pole at infinity: constant contribution.
      for (Index i = 0; i < p; ++i)
        for (Index j = 0; j < p; ++j) direct(i, j) += term(i, j).real();
    } else {
      poles.push_back(Complex(model.shift(), 0.0) - Complex(1.0, 0.0) / lambda);
      CMat r(p, p);
      for (Index i = 0; i < p; ++i)
        for (Index j = 0; j < p; ++j) r(i, j) = term(i, j) / lambda;
      residues.push_back(std::move(r));
    }
  }
  return ModalModel(std::move(poles), std::move(residues), std::move(direct),
                    model.variable(), model.s_prefactor());
}

ModalModel enforce_stability(const ModalModel& model, StabilizeMode mode,
                             StabilizeReport* report) {
  StabilizeReport rep;
  CVec poles;
  std::vector<CMat> residues;
  Mat direct = model.direct();
  const Index p = model.port_count();

  const bool s_plane = model.variable() == SVariable::kS;
  for (size_t k = 0; k < model.pencil_poles().size(); ++k) {
    const Complex sigma = model.pencil_poles()[k];
    // Stability in the physical plane: for kS the pole is σ itself; for
    // kSSquared stability of s = ±√σ requires σ on the negative real axis.
    bool unstable;
    if (s_plane) {
      unstable = sigma.real() > 0.0;
    } else {
      unstable = !(sigma.real() <= 0.0 && std::abs(sigma.imag()) <=
                                              1e-9 * (1.0 + std::abs(sigma)));
    }
    if (!unstable) {
      poles.push_back(sigma);
      residues.push_back(model.residues()[k]);
      continue;
    }
    ++rep.unstable_poles;
    if (mode == StabilizeMode::kFlip) {
      const Complex flipped =
          s_plane ? Complex(-sigma.real(), sigma.imag())
                  : Complex(-std::abs(sigma), 0.0);
      poles.push_back(flipped);
      residues.push_back(model.residues()[k]);
      ++rep.flipped;
    } else {
      // kDrop: delete the term but preserve the DC value by folding the
      // term's σ = 0 contribution, −R/σₖ, into the direct part.
      const CMat& r = model.residues()[k];
      for (Index i = 0; i < p; ++i)
        for (Index j = 0; j < p; ++j)
          direct(i, j) += (r(i, j) / (Complex(0.0, 0.0) - sigma)).real();
      ++rep.dropped;
    }
  }
  if (report != nullptr) *report = rep;
  return ModalModel(std::move(poles), std::move(residues), std::move(direct),
                    model.variable(), model.s_prefactor());
}

ModalModel enforce_residue_psd(const ModalModel& model, double tol) {
  const Index p = model.port_count();
  double scale = model.direct().max_abs();
  for (const auto& r : model.residues()) scale = std::max(scale, r.max_abs());
  const double abs_tol = tol * (scale + 1e-300);

  CVec poles = model.pencil_poles();
  std::vector<CMat> residues;
  for (size_t k = 0; k < poles.size(); ++k) {
    require(std::abs(poles[k].imag()) <= tol * (1.0 + std::abs(poles[k])),
            "enforce_residue_psd: complex pole; only real-pole models "
            "(RC-type) are supported");
    const CMat& rc = model.residues()[k];
    Mat r(p, p);
    for (Index i = 0; i < p; ++i)
      for (Index j = 0; j < p; ++j) {
        require(std::abs(rc(i, j).imag()) <= abs_tol,
                "enforce_residue_psd: complex residue entry");
        r(i, j) = rc(i, j).real();
      }
    // Symmetrize then clip negative eigenvalues.
    for (Index i = 0; i < p; ++i)
      for (Index j = i + 1; j < p; ++j) {
        const double m = 0.5 * (r(i, j) + r(j, i));
        r(i, j) = m;
        r(j, i) = m;
      }
    const SymmetricEig eig = eig_symmetric(r);
    Mat clipped(p, p);
    for (Index m = 0; m < p; ++m) {
      const double lam = std::max(0.0, eig.values[static_cast<size_t>(m)]);
      if (lam == 0.0) continue;
      for (Index i = 0; i < p; ++i)
        for (Index j = 0; j < p; ++j)
          clipped(i, j) += lam * eig.vectors(i, m) * eig.vectors(j, m);
    }
    CMat out(p, p);
    for (Index i = 0; i < p; ++i)
      for (Index j = 0; j < p; ++j) out(i, j) = Complex(clipped(i, j), 0.0);
    residues.push_back(std::move(out));
  }
  return ModalModel(std::move(poles), std::move(residues), model.direct(),
                    model.variable(), model.s_prefactor());
}

}  // namespace sympvl
