// Experiment E5 — the Section 3.1 claim: computing Padé approximants from
// explicitly generated moments (AWE) is numerically unstable and usable
// only for small orders (n ≲ 10), while the Lanczos route (SyPVL) delivers
// the same mathematical object stably at any order.
//
// Table: max relative error over a frequency sweep vs order, AWE next to
// SyPVL — watch AWE bottom out and then diverge while SyPVL keeps
// converging.
#include "bench_util.hpp"
#include "gen/random_circuit.hpp"
#include "mor/awe.hpp"
#include "mor/sympvl.hpp"
#include "mor/sypvl.hpp"
#include "sim/ac.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

const MnaSystem& system_ref() {
  static const MnaSystem sys =
      build_mna(random_rc({.nodes = 200, .ports = 1, .seed = 42}));
  return sys;
}

void print_tables() {
  const MnaSystem& sys = system_ref();
  const Vec freqs = log_frequency_grid(1e5, 1e10, 25);
  const auto exact = ac_sweep(sys, freqs);

  csv_begin("awe vs sypvl: max relative error over sweep vs order "
            "(paper: AWE unusable beyond n~10)",
            {"order", "awe_err", "sypvl_err", "awe_hankel_scale"});
  for (Index n : {2, 4, 6, 8, 10, 12, 16, 20, 24, 28}) {
    double awe_err = std::nan("");
    double hankel = std::nan("");
    try {
      const AweModel awe = awe_reduce(sys, n);
      hankel = awe.hankel_condition();
      awe_err = 0.0;
      for (size_t k = 0; k < freqs.size(); ++k) {
        const Complex s(0.0, 2.0 * M_PI * freqs[k]);
        const Complex ze = exact[k](0, 0);
        awe_err = std::max(awe_err, std::abs(awe.eval(s) - ze) / std::abs(ze));
      }
    } catch (const Error&) {
      awe_err = std::numeric_limits<double>::infinity();  // singular Hankel
    }
    SympvlOptions opt;
    opt.order = n;
    const ReducedModel rom = sypvl_reduce(sys, opt);
    double pvl_err = 0.0;
    for (size_t k = 0; k < freqs.size(); ++k) {
      const Complex s(0.0, 2.0 * M_PI * freqs[k]);
      const Complex ze = exact[k](0, 0);
      pvl_err = std::max(pvl_err, std::abs(rom.eval(s)(0, 0) - ze) / std::abs(ze));
    }
    csv_row({static_cast<double>(n), awe_err, pvl_err, hankel});
  }
}

void bm_awe(benchmark::State& state) {
  const MnaSystem& sys = system_ref();
  const Index n = static_cast<Index>(state.range(0));
  for (auto _ : state) {
    try {
      const AweModel m = awe_reduce(sys, n);
      benchmark::DoNotOptimize(m.order());
    } catch (const Error&) {
    }
  }
}
BENCHMARK(bm_awe)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void bm_sypvl(benchmark::State& state) {
  const MnaSystem& sys = system_ref();
  SympvlOptions opt;
  opt.order = static_cast<Index>(state.range(0));
  for (auto _ : state) {
    const ReducedModel m = sypvl_reduce(sys, opt);
    benchmark::DoNotOptimize(m.order());
  }
}
BENCHMARK(bm_sypvl)->Arg(4)->Arg(8)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace

SYMPVL_BENCH_MAIN(print_tables)
