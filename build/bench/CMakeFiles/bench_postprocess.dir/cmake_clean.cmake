file(REMOVE_RECURSE
  "CMakeFiles/bench_postprocess.dir/bench_postprocess.cpp.o"
  "CMakeFiles/bench_postprocess.dir/bench_postprocess.cpp.o.d"
  "bench_postprocess"
  "bench_postprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_postprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
