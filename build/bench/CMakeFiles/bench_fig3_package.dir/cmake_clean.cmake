file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_package.dir/bench_fig3_package.cpp.o"
  "CMakeFiles/bench_fig3_package.dir/bench_fig3_package.cpp.o.d"
  "bench_fig3_package"
  "bench_fig3_package.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_package.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
