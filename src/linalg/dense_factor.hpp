// Dense factorizations: LU with partial pivoting (real & complex),
// Cholesky, Householder QR, and Bunch-Kaufman symmetric-indefinite LDLᵀ.
//
// The Bunch-Kaufman factorization provides the dense fallback path for the
// symmetric factorization G = M J⁻¹ Mᵀ of eq. (15) in the paper when the
// sparse unpivoted LDLᵀ encounters an unstable pivot.
#pragma once

#include <vector>

#include "linalg/dense.hpp"

namespace sympvl {

/// LU factorization with partial pivoting: P·A = L·U.
///
/// L is unit lower triangular and stored together with U inside `lu`.
/// `perm[i]` gives the row of A that ended up in position i.
template <typename T>
class DenseLU {
 public:
  explicit DenseLU(const Matrix<T>& a);

  /// Solves A x = b.
  std::vector<T> solve(const std::vector<T>& b) const;

  /// Solves A X = B column-by-column.
  Matrix<T> solve(const Matrix<T>& b) const;

  /// True when a zero (or subnormal) pivot made the matrix numerically
  /// singular; solve() throws in that case.
  bool singular() const { return singular_; }

  Index size() const { return lu_.rows(); }

 private:
  Matrix<T> lu_;
  std::vector<Index> perm_;
  bool singular_ = false;
};

using LU = DenseLU<double>;
using CLU = DenseLU<Complex>;

/// Cholesky factorization A = L·Lᵀ of a symmetric positive-definite matrix.
/// Throws sympvl::Error if a non-positive pivot is encountered.
class DenseCholesky {
 public:
  explicit DenseCholesky(const Mat& a);

  const Mat& matrix_l() const { return l_; }
  Vec solve(const Vec& b) const;
  Mat solve(const Mat& b) const;

  /// Solves L y = b (forward substitution).
  Vec solve_l(const Vec& b) const;
  /// Solves Lᵀ x = y (backward substitution).
  Vec solve_lt(const Vec& b) const;

 private:
  Mat l_;
};

/// Householder QR factorization A = Q·R with A m×n, m ≥ n.
/// `q_thin()` returns the m×n orthonormal factor, `r()` the n×n upper
/// triangle.
class DenseQR {
 public:
  explicit DenseQR(const Mat& a);

  Mat q_thin() const;

  /// Full m×m orthogonal factor (columns n..m-1 span the orthogonal
  /// complement of range(A)).
  Mat q_full() const;

  Mat r() const;

  /// Numerical rank with relative tolerance `tol` on |r_kk| / max|r_ii|.
  Index rank(double tol = 1e-12) const;

  /// Least-squares solution of min ‖A x − b‖₂ (requires full column rank).
  Vec solve(const Vec& b) const;

 private:
  Mat qr_;       // Householder vectors below diagonal, R on/above.
  Vec beta_;     // Householder scalars.
  Index m_, n_;
};

/// Bunch-Kaufman factorization of a symmetric (possibly indefinite) matrix:
///   Pᵀ A P = L D Lᵀ
/// with L unit lower triangular and D block diagonal (1×1 / 2×2 blocks).
class BunchKaufman {
 public:
  explicit BunchKaufman(const Mat& a);

  /// Solves A x = b.
  Vec solve(const Vec& b) const;

  /// Block sizes of D in order (values 1 or 2).
  const std::vector<int>& block_sizes() const { return blocks_; }

  /// Matrix inertia (#positive, #negative, #zero eigenvalues of A),
  /// computed from the eigenvalues of the blocks of D.
  struct Inertia {
    Index positive = 0;
    Index negative = 0;
    Index zero = 0;
  };
  Inertia inertia() const;

  /// Produces the paper's symmetric factorization (eq. 15):
  ///   A = M J Mᵀ with J = diag(±1)
  /// via M = P L √|D| and eigendecomposition of the 2×2 blocks.
  /// Zero eigen-blocks are rejected with sympvl::Error (use a frequency
  /// shift, eq. 26, instead).
  void symmetric_factor(Mat& m_out, Vec& j_out) const;

 private:
  Mat ld_;                    // L below diagonal, D blocks on diagonal band.
  std::vector<Index> perm_;   // pivot permutation, position -> original row
  std::vector<int> blocks_;   // block structure
  Index n_;
};

/// Convenience: x = A⁻¹ b through dense partial-pivot LU.
template <typename T>
std::vector<T> dense_solve(const Matrix<T>& a, const std::vector<T>& b) {
  return DenseLU<T>(a).solve(b);
}

/// Convenience: X = A⁻¹ B through dense partial-pivot LU.
template <typename T>
Matrix<T> dense_solve(const Matrix<T>& a, const Matrix<T>& b) {
  return DenseLU<T>(a).solve(b);
}

extern template class DenseLU<double>;
extern template class DenseLU<Complex>;

}  // namespace sympvl
