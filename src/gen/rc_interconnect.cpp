#include "gen/rc_interconnect.hpp"

#include <cmath>

namespace sympvl {

InterconnectCircuit make_interconnect_circuit(const InterconnectOptions& options) {
  require(options.wires >= 2, "make_interconnect_circuit: need >= 2 wires");
  require(options.segments >= 4, "make_interconnect_circuit: need >= 4 segments");

  InterconnectCircuit out;
  Netlist& nl = out.netlist;
  const Index nw = options.wires;
  const Index ns = options.segments;

  // Wire w has nodes node(w, 0..ns); segment resistors between consecutive
  // nodes; every node carries a ground capacitance.
  std::vector<std::vector<Index>> node(static_cast<size_t>(nw));
  for (Index w = 0; w < nw; ++w) {
    node[static_cast<size_t>(w)].resize(static_cast<size_t>(ns) + 1);
    for (Index k = 0; k <= ns; ++k)
      node[static_cast<size_t>(w)][static_cast<size_t>(k)] = nl.new_node();
  }
  for (Index w = 0; w < nw; ++w) {
    // Mild per-wire geometry spread.
    const double spread = 1.0 + 0.1 * static_cast<double>(w % 3);
    for (Index k = 0; k < ns; ++k)
      nl.add_resistor(node[static_cast<size_t>(w)][static_cast<size_t>(k)],
                      node[static_cast<size_t>(w)][static_cast<size_t>(k) + 1],
                      options.segment_resistance * spread);
    for (Index k = 0; k <= ns; ++k)
      nl.add_capacitor(node[static_cast<size_t>(w)][static_cast<size_t>(k)], 0,
                       options.ground_capacitance * spread);
    // Terminations: driver impedance at the near end, load at the far end.
    nl.add_resistor(node[static_cast<size_t>(w)][0], 0, options.driver_resistance);
    nl.add_resistor(node[static_cast<size_t>(w)][static_cast<size_t>(ns)], 0,
                    options.load_resistance);
  }

  // Dense capacitive coupling window (extraction-style).
  for (Index w1 = 0; w1 < nw; ++w1) {
    for (Index w2 = w1 + 1; w2 < nw; ++w2) {
      const double dw = static_cast<double>(w2 - w1);
      const double base =
          options.coupling_capacitance / std::pow(dw, options.wire_decay);
      for (Index k = 0; k <= ns; ++k) {
        for (Index d = -options.coupling_window; d <= options.coupling_window;
             ++d) {
          const Index k2 = k + d;
          if (k2 < 0 || k2 > ns) continue;
          const double c =
              base / std::pow(1.0 + std::abs(static_cast<double>(d)),
                              options.offset_decay);
          if (c < 1e-20) continue;
          nl.add_capacitor(node[static_cast<size_t>(w1)][static_cast<size_t>(k)],
                           node[static_cast<size_t>(w2)][static_cast<size_t>(k2)],
                           c);
        }
      }
    }
  }

  // Ports: driver (near) and receiver (far) end of every wire, plus a
  // mid-bus tap on wire 0.
  for (Index w = 0; w < nw; ++w) {
    out.near_nodes.push_back(node[static_cast<size_t>(w)][0]);
    out.far_nodes.push_back(node[static_cast<size_t>(w)][static_cast<size_t>(ns)]);
  }
  out.tap_node = node[0][static_cast<size_t>(ns / 2)];
  for (Index w = 0; w < nw; ++w)
    nl.add_port(out.near_nodes[static_cast<size_t>(w)], 0,
                "near" + std::to_string(w + 1));
  for (Index w = 0; w < nw; ++w)
    nl.add_port(out.far_nodes[static_cast<size_t>(w)], 0,
                "far" + std::to_string(w + 1));
  nl.add_port(out.tap_node, 0, "tap");
  return out;
}

}  // namespace sympvl
