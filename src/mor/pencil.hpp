// Shared pencil plumbing for every reduction driver.
//
// Before this module, SyMPVL, SyPVL, PVL, Arnoldi and AWE each carried
// their own copy of the same three fragments: assemble G + s₀C, pick an
// automatic shift when G is singular (eq. 26), and factor with some
// retry policy. This header is the single implementation, layered on the
// linalg FactorizedPencil/FactorCache pair:
//
//   circuit (G, C, B)
//      └─ factor_pencil()  — shift policy + recovery ladder
//           └─ FactorCache — bounded LRU of factorizations
//                └─ FactorizedPencil — M J Mᵀ + operator + solves
//
// Two retry policies exist, matching the historical drivers exactly:
//   * single-attempt with automatic-shift retry (SyPVL, PVL, Arnoldi):
//     try s₀; on failure, when auto_shift is enabled and s₀ = 0, retry
//     once at automatic_shift(sys); otherwise throw kSingular with the
//     driver's message;
//   * the full SyMPVL ladder: requested shift, automatic shift, jittered
//     shift_ladder retries, then (when allowed) the dense Bunch-Kaufman
//     rung — every attempt recorded, kSingular with the whole history
//     when all rungs fail.
#pragma once

#include <memory>
#include <vector>

#include "circuit/mna.hpp"
#include "linalg/factor_cache.hpp"
#include "linalg/factorized_pencil.hpp"

namespace sympvl {

/// Picks the automatic shift used when G is singular: the ratio of the
/// diagonal scales of G and C (a frequency inside the band where both
/// terms of the pencil matter). Throws kInvalidArgument when C has an
/// empty diagonal (a resistor-only circuit has no useful shift).
double automatic_shift(const MnaSystem& sys);

/// How factor_pencil should obtain the factorization.
struct PencilFactorRequest {
  double s0 = 0.0;
  bool auto_shift = true;
  /// Precomputed automatic shift (0 = none/unavailable). The MnaSystem
  /// overload fills this itself; pass explicitly when factoring a raw
  /// (G, C) pair (e.g. SympvlSession::reshift, which disables it).
  double auto_s0 = 0.0;
  Ordering ordering = Ordering::kRCM;
  /// false: single attempt + one automatic-shift retry (SyPVL/PVL/
  /// Arnoldi/AWE policy). true: the full SyMPVL recovery ladder.
  bool full_ladder = false;
  /// Whether the dense Bunch-Kaufman rung backstops the ladder.
  bool allow_dense = false;
  /// Driver name used as the failure-message prefix (e.g. "sympvl",
  /// "pvl_reduce_entry").
  const char* driver = "pencil";
  /// Error-context stage on failure (e.g. "sympvl.factor").
  const char* stage = "pencil.factor";
  /// Cache to acquire through (nullptr = FactorCache::global()).
  FactorCache* cache = nullptr;
  /// Per-reduction cache behavior (enabled=false bypasses the cache for
  /// every rung; capacity>0 resizes the cache before the first acquire).
  CacheOptions cache_options;
  /// Numeric-kernel selection forwarded to every sparse LDLᵀ rung.
  KernelOptions kernels;
  /// Width of the blocked solves this factorization will serve (the
  /// driver's effective RHS block — the port count, or the per-shard
  /// column count under port sharding). Applied as kernels.rhs_hint when
  /// the caller left that at 0, so resolve_kernel_path sees the true
  /// block width instead of a monolithic port count. 0 = no hint.
  Index rhs_width = 0;
};

struct PencilFactorResult {
  std::shared_ptr<const FactorizedPencil> pencil;
  double s0_used = 0.0;
  bool dense = false;
  /// Every rung attempted, in order (successes marked; cache hits carry
  /// "cache hit" in the detail field).
  std::vector<FactorAttemptRecord> attempts;
};

/// Factors G + s₀C through the cache with the requested retry policy.
/// The automatic-shift retry of the single-attempt policy uses
/// `req.auto_s0` (no retry when 0).
PencilFactorResult factor_pencil(const SMat& g, const SMat& c,
                                 const PencilFactorRequest& req);

/// System form: resolves the automatic shift from `sys` — eagerly (and
/// forgivingly) for the full ladder, lazily on first failure for the
/// single-attempt policy, matching the historical drivers.
PencilFactorResult factor_pencil(const MnaSystem& sys,
                                 const PencilFactorRequest& req);

/// Builds the Lanczos starting block J⁻¹M⁻¹B (step 0 of Algorithm 1),
/// column by column — the code formerly replicated in each driver.
Mat starting_block(const FactorizedPencil& pencil, const Mat& b);

}  // namespace sympvl
