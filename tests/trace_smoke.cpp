// Trace smoke test (ctest label "Trace"): runs a small SyMPVL reduction
// and AC sweep with SYMPVL_TRACE set, then validates the emitted Chrome
// trace-event JSON:
//   * structurally valid JSON (balanced braces/brackets outside strings,
//     no bare nan/inf tokens);
//   * at least one complete ('X') event for every pipeline stage
//     (factorization, start block, Lanczos, sweep, per-point solve);
//   * thread-pool workers appear as named lanes ("pool-worker-K").
// Built standalone (not into the gtest binary) so the env var is set
// before the process touches any instrumented code; runs under
// -DSYMPVL_SANITIZE=thread to prove the recording hot path is data-race
// free while pool workers record concurrently.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/random_circuit.hpp"
#include "mor/sympvl.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/ac.hpp"

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

// Structural scan: braces/brackets balanced outside string literals.
bool json_well_formed(const std::string& doc) {
  int depth = 0;
  bool in_string = false, escape = false;
  for (char c : doc) {
    if (in_string) {
      if (escape)
        escape = false;
      else if (c == '\\')
        escape = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

int count_occurrences(const std::string& doc, const std::string& needle) {
  int n = 0;
  for (size_t pos = doc.find(needle); pos != std::string::npos;
       pos = doc.find(needle, pos + needle.size()))
    ++n;
  return n;
}

}  // namespace

int main() {
  using namespace sympvl;
  const char* trace_path = "trace_smoke_out.json";
  // Before any instrumented call: the obs layer resolves its sinks from
  // the environment lazily, so this is the production code path.
#ifdef _WIN32
  _putenv_s("SYMPVL_TRACE", trace_path);
#else
  setenv("SYMPVL_TRACE", trace_path, 1);
#endif
  // Force real pool workers even on 1-core hosts: the pool spawns
  // count-1 workers (the caller participates), so 3 threads = 2 workers.
  set_num_threads(3);

  // Small but complete pipeline: reduction plus exact AC sweep.
  const Netlist nl = random_rc({.nodes = 40, .ports = 2, .seed = 11});
  const MnaSystem sys = build_mna(nl);
  SympvlOptions opt;
  opt.order = 8;
  SympvlReport report;
  sympvl_reduce(sys, opt, &report);
  check(report.achieved_order == 8, "reduction reached order 8");

  const Vec freqs = log_frequency_grid(1e6, 1e9, 16);
  const AcSweepEngine engine(sys);
  const SweepResult sweep = engine.sweep(freqs);
  check(sweep.size() == freqs.size(), "sweep produced every point");
  check(sweep.all_ok(), "sweep produced no failed points");

  obs::flush();

  auto read_trace = [&]() -> std::string {
    std::ifstream in(trace_path);
    if (!in.good()) return {};
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  std::string doc = read_trace();
  check(!doc.empty(), "trace file was written");
  // Workers name their lanes as their first action after spawning; on a
  // loaded 1-core host the caller can drain every chunk before a fresh
  // worker is even scheduled, so give naming a bounded grace period.
  for (int tries = 0;
       tries < 200 && (doc.find("\"pool-worker-0\"") == std::string::npos ||
                       doc.find("\"pool-worker-1\"") == std::string::npos);
       ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    obs::flush();
    doc = read_trace();
  }
  std::remove(trace_path);

  check(json_well_formed(doc), "trace JSON is structurally valid");
  check(doc.find("\"traceEvents\"") != std::string::npos,
        "trace has a traceEvents array");
  check(count_occurrences(doc, ": nan") + count_occurrences(doc, ": inf") == 0,
        "no bare non-finite tokens");

  // One complete event per pipeline stage.
  for (const char* stage :
       {"sympvl.factor", "sympvl.start_block", "sympvl.lanczos",
        "ldlt.factor", "ac.sweep", "ac.z_at", "parallel.chunk"}) {
    const std::string needle = "\"name\":\"" + std::string(stage) + "\"";
    check(count_occurrences(doc, needle) >= 1,
          std::string("stage event present: ") + stage);
  }

  // Worker lanes are named; two workers were forced above.
  check(count_occurrences(doc, "\"pool-worker-0\"") >= 1 &&
            count_occurrences(doc, "\"pool-worker-1\"") >= 1,
        "both pool workers have named lanes");
  check(count_occurrences(doc, "\"thread_name\"") >= 3,
        "metadata events for main + worker lanes");

  if (g_failures == 0) {
    std::printf("trace smoke: OK (%d trace bytes)\n",
                static_cast<int>(doc.size()));
    return 0;
  }
  std::fprintf(stderr, "trace smoke: %d check(s) failed\n", g_failures);
  return 1;
}
