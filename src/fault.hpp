// Deterministic fault injection for robustness tests.
//
// A fault "site" is a named instrumentation point inside the library
// (e.g. "ldlt.pivot", "factor.ldlt", "lanczos.delta", "sweep.point",
// "parallel.chunk"). Each site passes a deterministic index — pivot
// column, chain attempt number, Lanczos iteration, frequency-point index,
// chunk rank — so a spec can force a failure at an exact, reproducible
// place regardless of thread timing.
//
// Arming (either source replaces the other):
//   * environment: SYMPVL_FAULT="site@i1,i2,...;site2@*"  — '*' fires at
//     every index; resolved once at the first instrumented call;
//   * programmatic: fault::arm("sweep.point@3,7,9") from tests. Call
//     arm()/disarm() from a single thread while no parallel work is in
//     flight; triggered() itself is thread-safe.
//
// Cost model: when nothing is armed, every instrumentation point is one
// relaxed atomic load and a branch — safe to leave in hot loops.
#pragma once

#include <string>

#include "common.hpp"

namespace sympvl::fault {

/// True when any fault spec is armed (cheap cached check, hot-path gate).
bool active();

/// True when `site` is armed for deterministic index `index`. Records the
/// hit (see fire_count) when it returns true.
bool triggered(const char* site, Index index);

/// Throws Error(ErrorCode::kFaultInjected) when `triggered(site, index)`;
/// the site name and index land in the error context.
void check(const char* site, Index index);

/// Programmatic arming. Replaces any SYMPVL_FAULT / previous arm() spec.
/// Throws kInvalidArgument on a malformed spec.
void arm(const std::string& spec);

/// Clears every armed site (programmatic and environment-derived).
void disarm();

/// Number of times `site` actually fired since the last arm()/disarm().
Index fire_count(const char* site);

}  // namespace sympvl::fault
