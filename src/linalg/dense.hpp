// Dense matrix / vector types and elementary operations.
//
// The library deliberately implements its own small dense-linear-algebra
// layer (no Eigen/LAPACK dependency): reduced-order models produced by
// SyMPVL are small (n in the tens to low hundreds), so simple row-major
// storage with straightforward kernels is fully adequate and keeps the
// numerical behaviour of the reproduction transparent.
#pragma once

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <vector>

#include "common.hpp"

namespace sympvl {

/// Row-major dense matrix over `T` (double or std::complex<double>).
///
/// Invariant: storage size == rows()*cols() at all times.
template <typename T>
class Matrix {
 public:
  using Scalar = T;
  using Real = typename ScalarTraits<T>::Real;

  Matrix() = default;
  Matrix(Index rows, Index cols, T value = T(0))
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), value) {
    require(rows >= 0 && cols >= 0, "Matrix: negative dimension");
  }

  /// Builds a matrix from a nested initializer list (row by row).
  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = static_cast<Index>(init.size());
    cols_ = rows_ > 0 ? static_cast<Index>(init.begin()->size()) : 0;
    data_.reserve(static_cast<size_t>(rows_ * cols_));
    for (const auto& row : init) {
      require(static_cast<Index>(row.size()) == cols_,
              "Matrix: ragged initializer list");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  static Matrix identity(Index n) {
    Matrix m(n, n);
    for (Index i = 0; i < n; ++i) m(i, i) = T(1);
    return m;
  }

  static Matrix zero(Index rows, Index cols) { return Matrix(rows, cols); }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  T& operator()(Index i, Index j) {
    return data_[static_cast<size_t>(i * cols_ + j)];
  }
  const T& operator()(Index i, Index j) const {
    return data_[static_cast<size_t>(i * cols_ + j)];
  }

  /// Raw row-major storage (rows()*cols() entries).
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// Resizes, discarding contents; new entries are `value`.
  void resize(Index rows, Index cols, T value = T(0)) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<size_t>(rows * cols), value);
  }

  Matrix transpose() const {
    Matrix r(cols_, rows_);
    for (Index i = 0; i < rows_; ++i)
      for (Index j = 0; j < cols_; ++j) r(j, i) = (*this)(i, j);
    return r;
  }

  /// Conjugate transpose (== transpose for real T).
  Matrix adjoint() const {
    Matrix r(cols_, rows_);
    for (Index i = 0; i < rows_; ++i)
      for (Index j = 0; j < cols_; ++j)
        r(j, i) = ScalarTraits<T>::conj((*this)(i, j));
    return r;
  }

  std::vector<T> col(Index j) const {
    std::vector<T> c(static_cast<size_t>(rows_));
    for (Index i = 0; i < rows_; ++i) c[static_cast<size_t>(i)] = (*this)(i, j);
    return c;
  }

  std::vector<T> row(Index i) const {
    std::vector<T> r(data_.begin() + i * cols_, data_.begin() + (i + 1) * cols_);
    return r;
  }

  void set_col(Index j, const std::vector<T>& c) {
    require(static_cast<Index>(c.size()) == rows_, "set_col: size mismatch");
    for (Index i = 0; i < rows_; ++i) (*this)(i, j) = c[static_cast<size_t>(i)];
  }

  /// Returns the sub-matrix rows [r0,r1) x cols [c0,c1).
  Matrix block(Index r0, Index r1, Index c0, Index c1) const {
    require(0 <= r0 && r0 <= r1 && r1 <= rows_ && 0 <= c0 && c0 <= c1 &&
                c1 <= cols_,
            "block: range out of bounds");
    Matrix b(r1 - r0, c1 - c0);
    for (Index i = r0; i < r1; ++i)
      for (Index j = c0; j < c1; ++j) b(i - r0, j - c0) = (*this)(i, j);
    return b;
  }

  Matrix& operator+=(const Matrix& o) {
    require(rows_ == o.rows_ && cols_ == o.cols_, "operator+=: shape mismatch");
    for (size_t k = 0; k < data_.size(); ++k) data_[k] += o.data_[k];
    return *this;
  }
  Matrix& operator-=(const Matrix& o) {
    require(rows_ == o.rows_ && cols_ == o.cols_, "operator-=: shape mismatch");
    for (size_t k = 0; k < data_.size(); ++k) data_[k] -= o.data_[k];
    return *this;
  }
  Matrix& operator*=(T s) {
    for (auto& x : data_) x *= s;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T s) { return a *= s; }
  friend Matrix operator*(T s, Matrix a) { return a *= s; }

  friend Matrix operator*(const Matrix& a, const Matrix& b) {
    require(a.cols_ == b.rows_, "matmul: inner dimension mismatch");
    Matrix c(a.rows_, b.cols_);
    // Cache-blocked i×k panels with a contiguous j inner loop: the B panel
    // stays resident across the whole i block instead of being streamed
    // once per output row.
    constexpr Index kBlock = 64;
    const Index m = a.rows_, kn = a.cols_, n = b.cols_;
    for (Index i0 = 0; i0 < m; i0 += kBlock) {
      const Index i1 = std::min(i0 + kBlock, m);
      for (Index k0 = 0; k0 < kn; k0 += kBlock) {
        const Index k1 = std::min(k0 + kBlock, kn);
        for (Index i = i0; i < i1; ++i) {
          const T* arow = a.data_.data() + i * kn;
          T* crow = c.data_.data() + i * n;
          for (Index k = k0; k < k1; ++k) {
            const T aik = arow[k];
            if (aik == T(0)) continue;
            const T* brow = b.data_.data() + k * n;
            for (Index j = 0; j < n; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
    return c;
  }

  friend std::vector<T> operator*(const Matrix& a, const std::vector<T>& x) {
    require(a.cols_ == static_cast<Index>(x.size()), "matvec: size mismatch");
    std::vector<T> y(static_cast<size_t>(a.rows_));
    const T* xp = x.data();
    const T* row = a.data_.data();
    for (Index i = 0; i < a.rows_; ++i, row += a.cols_) {
      T acc(0);
      for (Index j = 0; j < a.cols_; ++j) acc += row[j] * xp[j];
      y[static_cast<size_t>(i)] = acc;
    }
    return y;
  }

  /// Frobenius norm.
  Real norm() const {
    Real s(0);
    for (const auto& x : data_) {
      const Real a = ScalarTraits<T>::abs(x);
      s += a * a;
    }
    return std::sqrt(s);
  }

  /// Largest absolute entry.
  Real max_abs() const {
    Real m(0);
    for (const auto& x : data_) m = std::max(m, ScalarTraits<T>::abs(x));
    return m;
  }

  bool is_square() const { return rows_ == cols_; }

  /// Max |A - Aᵀ| entry; 0 for exactly symmetric matrices.
  Real asymmetry() const {
    require(is_square(), "asymmetry: matrix not square");
    Real m(0);
    for (Index i = 0; i < rows_; ++i)
      for (Index j = i + 1; j < cols_; ++j)
        m = std::max(m, ScalarTraits<T>::abs((*this)(i, j) - (*this)(j, i)));
    return m;
  }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<T> data_;
};

using Mat = Matrix<double>;
using CMat = Matrix<Complex>;
using Vec = std::vector<double>;
using CVec = std::vector<Complex>;

// ---- transpose-aware matrix products -------------------------------------

/// C = Aᵀ·B (plain transpose, no conjugation) without materializing Aᵀ.
/// Row-major friendly: the k (shared-dimension) loop is outermost, so both
/// A and B are streamed by contiguous rows while the small C accumulator
/// stays in cache — the shape of port projections Bᵀ·X with tall-skinny
/// operands.
template <typename T, typename U>
auto matmul_transA(const Matrix<T>& a, const Matrix<U>& b) {
  using R = decltype(T() * U());
  require(a.rows() == b.rows(), "matmul_transA: inner dimension mismatch");
  const Index n = a.rows(), p = a.cols(), q = b.cols();
  Matrix<R> c(p, q);
  for (Index k = 0; k < n; ++k) {
    const T* arow = a.data() + k * p;
    const U* brow = b.data() + k * q;
    for (Index i = 0; i < p; ++i) {
      const T aki = arow[i];
      if (aki == T(0)) continue;
      R* crow = c.data() + i * q;
      for (Index j = 0; j < q; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

/// C = A·Bᵀ without materializing Bᵀ: every inner product runs over two
/// contiguous rows.
template <typename T>
Matrix<T> matmul_transB(const Matrix<T>& a, const Matrix<T>& b) {
  require(a.cols() == b.cols(), "matmul_transB: inner dimension mismatch");
  const Index m = a.rows(), n = a.cols(), q = b.rows();
  Matrix<T> c(m, q);
  for (Index i = 0; i < m; ++i) {
    const T* arow = a.data() + i * n;
    T* crow = c.data() + i * q;
    for (Index j = 0; j < q; ++j) {
      const T* brow = b.data() + j * n;
      T acc(0);
      for (Index k = 0; k < n; ++k) acc += arow[k] * brow[k];
      crow[j] = acc;
    }
  }
  return c;
}

// ---- free vector helpers -------------------------------------------------

/// Euclidean inner product xᴴy (conjugates x for complex scalars).
template <typename T>
T dot(const std::vector<T>& x, const std::vector<T>& y) {
  require(x.size() == y.size(), "dot: size mismatch");
  T s(0);
  for (size_t i = 0; i < x.size(); ++i) s += ScalarTraits<T>::conj(x[i]) * y[i];
  return s;
}

template <typename T>
typename ScalarTraits<T>::Real norm2(const std::vector<T>& x) {
  typename ScalarTraits<T>::Real s(0);
  for (const auto& v : x) {
    const auto a = ScalarTraits<T>::abs(v);
    s += a * a;
  }
  return std::sqrt(s);
}

template <typename T>
void axpy(T alpha, const std::vector<T>& x, std::vector<T>& y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

template <typename T>
void scale(std::vector<T>& x, T alpha) {
  for (auto& v : x) v *= alpha;
}

/// Converts a real matrix to complex.
CMat to_complex(const Mat& a);

/// Real part of a complex matrix.
Mat real_part(const CMat& a);

/// Imaginary part of a complex matrix.
Mat imag_part(const CMat& a);

}  // namespace sympvl
