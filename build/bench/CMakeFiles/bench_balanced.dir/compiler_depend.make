# Empty compiler generated dependencies file for bench_balanced.
# This may be replaced when dependencies are built.
