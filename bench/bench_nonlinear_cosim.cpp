// Experiment E14 (extension) — the paper's Fig 5 experiment as actually
// described: "the circuit is connected with LOGIC GATES at 17 ports", and
// the interconnect's 1350 nodal equations join the NONLINEAR system.
// Replacing the block with the synthesized 34-state reduced model makes
// every Newton iteration small — the "smaller and easier to solve system
// of nonlinear differential algebraic equations" of Section 6.
//
// Tables: Newton-transient CPU time and waveform deviation, full block vs
// stamped ROM, with tanh drivers (saturating buffers) at the near-end
// ports and the far ends observed.
#include <chrono>

#include "bench_util.hpp"
#include "gen/rc_interconnect.hpp"
#include "mor/sympvl.hpp"
#include "sim/nonlinear.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

struct Setup {
  MnaSystem sys;                    // system to integrate
  std::vector<std::shared_ptr<NonlinearDevice>> devices;
  Mat input_map;                    // control-node injections
  Mat output_map;                   // far-end voltages
};

constexpr Index kWires = 4;
constexpr Index kSegments = 100;

// Full circuit: the bus plus one control node per wire; drivers buffer the
// control nodes onto the near ends.
Setup full_setup() {
  const InterconnectCircuit ic =
      make_interconnect_circuit({.wires = kWires, .segments = kSegments});
  Netlist nl;  // copy elements; replace ports with control/observation sets
  nl.ensure_nodes(ic.netlist.node_count());
  for (const auto& r : ic.netlist.resistors()) nl.add_resistor(r.n1, r.n2, r.resistance);
  for (const auto& c : ic.netlist.capacitors()) nl.add_capacitor(c.n1, c.n2, c.capacitance);
  std::vector<Index> ctl(static_cast<size_t>(kWires));
  for (Index w = 0; w < kWires; ++w) {
    ctl[static_cast<size_t>(w)] = nl.new_node();
    nl.add_resistor(ctl[static_cast<size_t>(w)], 0, 1e5);
    nl.add_capacitor(ctl[static_cast<size_t>(w)], 0, 1e-14);
  }
  for (Index w = 0; w < kWires; ++w)
    nl.add_port(ctl[static_cast<size_t>(w)], 0, "ctl" + std::to_string(w));
  for (Index w = 0; w < kWires; ++w)
    nl.add_port(ic.far_nodes[static_cast<size_t>(w)], 0, "far" + std::to_string(w));

  Setup s{build_mna(nl, MnaForm::kGeneral), {}, Mat(), Mat()};
  for (Index w = 0; w < kWires; ++w)
    s.devices.push_back(std::make_shared<TanhDriver>(
        ctl[static_cast<size_t>(w)] - 1, ic.near_nodes[static_cast<size_t>(w)] - 1));
  const Index n = s.sys.size();
  s.input_map.resize(n, kWires);
  s.output_map.resize(n, kWires);
  for (Index w = 0; w < kWires; ++w) {
    s.input_map(ctl[static_cast<size_t>(w)] - 1, w) = 1.0;
    s.output_map(ic.far_nodes[static_cast<size_t>(w)] - 1, w) = 1.0;
  }
  return s;
}

// ROM circuit: reduce the bus (all 2·wires+1 ports), stamp it into a tiny
// host carrying the control nodes, attach drivers at the near-end ports.
Setup rom_setup() {
  const InterconnectCircuit ic =
      make_interconnect_circuit({.wires = kWires, .segments = kSegments});
  const MnaSystem block = build_mna(ic.netlist, MnaForm::kRC);
  SympvlOptions opt;
  opt.order = 2 * block.port_count();
  const ReducedModel rom = sympvl_reduce(block, opt);

  const Index p = block.port_count();  // 2·wires+1
  Netlist host;
  host.ensure_nodes(p + kWires + 1);
  // Attachment nodes 1..p (one per block port) with weak DC anchors.
  for (Index k = 1; k <= p; ++k) host.add_resistor(k, 0, 1e9);
  std::vector<Index> ctl(static_cast<size_t>(kWires));
  for (Index w = 0; w < kWires; ++w) {
    ctl[static_cast<size_t>(w)] = p + 1 + w;
    host.add_resistor(ctl[static_cast<size_t>(w)], 0, 1e5);
    host.add_capacitor(ctl[static_cast<size_t>(w)], 0, 1e-14);
  }
  for (Index w = 0; w < kWires; ++w)
    host.add_port(ctl[static_cast<size_t>(w)], 0);
  for (Index w = 0; w < kWires; ++w)
    host.add_port(kWires + 1 + w, 0);  // far-end attachment nodes = ports

  std::vector<Index> attach(static_cast<size_t>(p));
  for (Index k = 0; k < p; ++k) attach[static_cast<size_t>(k)] = k + 1;
  Setup s{rom.stamp_into(host, attach), {}, Mat(), Mat()};
  for (Index w = 0; w < kWires; ++w)
    s.devices.push_back(std::make_shared<TanhDriver>(
        ctl[static_cast<size_t>(w)] - 1, /*near-end attach node w+1*/ w));
  const Index n = s.sys.size();
  s.input_map.resize(n, kWires);
  s.output_map.resize(n, kWires);
  for (Index w = 0; w < kWires; ++w) {
    s.input_map(ctl[static_cast<size_t>(w)] - 1, w) = 1.0;
    s.output_map(kWires + w, w) = 1.0;  // far-end attach node (kWires+1+w)−1
  }
  return s;
}

std::vector<Waveform> stimuli() {
  std::vector<Waveform> u(static_cast<size_t>(kWires),
                          [](double) { return 0.0; });
  u[0] = ramp_waveform(1e-5, 0.5e-9, 1e-9);  // 1 V step on wire 1's gate
  return u;
}

void print_tables() {
  NonlinearTransientOptions opt;
  opt.dt = 2e-11;
  opt.t_end = 10e-9;
  const auto u = stimuli();

  const Setup full = full_setup();
  const Setup rom = rom_setup();
  std::printf("full nonlinear system: %lld unknowns; ROM system: %lld\n",
              static_cast<long long>(full.sys.size()),
              static_cast<long long>(rom.sys.size()));

  const auto t0 = std::chrono::steady_clock::now();
  const auto a = simulate_nonlinear_transient(full.sys, full.devices,
                                              full.input_map, u,
                                              full.output_map, opt);
  const double t_full =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const auto t1 = std::chrono::steady_clock::now();
  const auto b = simulate_nonlinear_transient(rom.sys, rom.devices,
                                              rom.input_map, u,
                                              rom.output_map, opt);
  const double t_rom =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

  double err = 0.0, scale = 0.0;
  for (size_t k = 0; k < a.time.size(); ++k)
    for (Index w = 0; w < kWires; ++w) {
      err = std::max(err, std::abs(a.outputs(static_cast<Index>(k), w) -
                                   b.outputs(static_cast<Index>(k), w)));
      scale = std::max(scale, std::abs(a.outputs(static_cast<Index>(k), w)));
    }

  csv_begin("nonlinear co-simulation (tanh gates at the ports): full block "
            "vs stamped ROM",
            {"unknowns_full", "unknowns_rom", "t_full_s", "t_rom_s",
             "speedup", "max_waveform_err_rel"});
  csv_row({static_cast<double>(full.sys.size()),
           static_cast<double>(rom.sys.size()), t_full, t_rom, t_full / t_rom,
           err / (scale + 1e-300)});

  csv_begin("driven and victim far-end waveforms",
            {"t_s", "v_driven_full", "v_driven_rom", "v_victim_full",
             "v_victim_rom"});
  const size_t stride = std::max<size_t>(1, a.time.size() / 25);
  for (size_t k = 0; k < a.time.size(); k += stride)
    csv_row({a.time[k], a.outputs(static_cast<Index>(k), 0),
             b.outputs(static_cast<Index>(k), 0),
             a.outputs(static_cast<Index>(k), 1),
             b.outputs(static_cast<Index>(k), 1)});
}

void bm_newton_step_full(benchmark::State& state) {
  const Setup full = full_setup();
  NonlinearTransientOptions opt;
  opt.dt = 2e-11;
  opt.t_end = 4e-10;
  const auto u = stimuli();
  for (auto _ : state) {
    const auto r = simulate_nonlinear_transient(full.sys, full.devices,
                                                full.input_map, u,
                                                full.output_map, opt);
    benchmark::DoNotOptimize(r.outputs(0, 0));
  }
}
BENCHMARK(bm_newton_step_full)->Unit(benchmark::kMillisecond);

void bm_newton_step_rom(benchmark::State& state) {
  const Setup rom = rom_setup();
  NonlinearTransientOptions opt;
  opt.dt = 2e-11;
  opt.t_end = 4e-10;
  const auto u = stimuli();
  for (auto _ : state) {
    const auto r = simulate_nonlinear_transient(rom.sys, rom.devices,
                                                rom.input_map, u,
                                                rom.output_map, opt);
    benchmark::DoNotOptimize(r.outputs(0, 0));
  }
}
BENCHMARK(bm_newton_step_rom)->Unit(benchmark::kMillisecond);

}  // namespace

SYMPVL_BENCH_MAIN(print_tables)
