// Lightweight, env-gated observability: a process-global registry of
// counters/gauges, RAII ScopedTimer spans and instant events recorded into
// per-thread buffers, a Chrome trace-event JSON exporter, and run
// metadata shared by every BENCH_*.json.
//
// Cost model (the overhead contract, verified by bench_obs_overhead):
//   * disabled (no SYMPVL_TRACE / SYMPVL_STATS, no obs::enable(true)):
//     every instrumentation point is a relaxed load of one cached atomic
//     plus a predictable branch — no allocation, no clock read, no lock;
//   * enabled: events append into per-thread segmented buffers. The hot
//     path is lock-free — a segment slot store followed by a release store
//     of the segment count; a per-thread mutex is taken only when a new
//     1024-event segment is added and at flush/merge time.
//
// Sinks (resolved once, from the environment, at the first instrumented
// call; an atexit flush is installed when any is configured):
//   * SYMPVL_TRACE=<path>   — Chrome trace-event JSON ("trace.json" loads
//     in about:tracing or https://ui.perfetto.dev). Spans become complete
//     ('X') events, instants 'i' events; thread-pool workers appear as
//     named lanes ("pool-worker-K").
//   * SYMPVL_STATS=<1|stderr|path> — human-readable per-span/counter
//     summary printed at flush (to stderr, or appended to <path>),
//     including min/mean/max and p50/p95/p99 per span family.
//   * SYMPVL_METRICS=<path> — Prometheus text-exposition document
//     (counters, gauges, byte gauges, latency histograms; see
//     obs/prom_export.hpp for the naming convention).
//
// Metrics v2 companions (same namespace, separate headers):
// obs/histogram.hpp — log-bucketed latency histograms automatically fed
// by every completed span; obs/memstat.hpp — always-on byte gauges with
// high-water marks plus RSS sampling.
//
// Naming convention: dot-separated "<subsystem>.<event>" — e.g.
// "ldlt.factor", "lanczos.deflation", "ac.sweep", "parallel.chunk". Event
// and argument names must be string literals (or otherwise outlive the
// final flush); numeric argument values are doubles, string values must
// also be literals.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common.hpp"

namespace sympvl::obs {

// ---- Enablement (the hot-path gate) ---------------------------------------

namespace detail {
// -1 = not yet resolved from the environment, 0 = off, 1 = on.
extern std::atomic<int> g_enabled;
bool init_enabled_slow();
// Build metadata strings (the macros are injected on obs.cpp only).
std::string build_compiler();
const char* build_type();
const char* cxx_flags();
}  // namespace detail

/// True when instrumentation is recording. Inline: one relaxed atomic load
/// and a branch once initialized.
inline bool enabled() {
  const int e = detail::g_enabled.load(std::memory_order_relaxed);
  if (e >= 0) return e != 0;
  return detail::init_enabled_slow();
}

/// Programmatic override (tests, embedding applications). enable(true)
/// starts recording even with no sink configured — use snapshot_events()
/// or stats_summary() to inspect. enable(false) stops recording; already
/// recorded events are kept until reset().
void enable(bool on);

/// Sets (or clears, with "") the Chrome trace output path. Implies
/// enable(true) for a nonempty path.
void set_trace_path(const std::string& path);

// ---- Event model ----------------------------------------------------------

/// One key/value event argument. `str == nullptr` means numeric.
struct Arg {
  const char* key;
  double num = 0.0;
  const char* str = nullptr;
};

inline Arg arg(const char* key, double v) { return Arg{key, v, nullptr}; }
inline Arg arg(const char* key, Index v) {
  return Arg{key, static_cast<double>(v), nullptr};
}
inline Arg arg(const char* key, const char* s) { return Arg{key, 0.0, s}; }

constexpr int kMaxArgs = 6;

/// A recorded event. phase: 'X' = complete span, 'i' = instant.
struct Event {
  const char* name = nullptr;
  char phase = 'i';
  std::int64_t ts_us = 0;   ///< start, microseconds since process epoch
  std::int64_t dur_us = 0;  ///< duration ('X' only)
  int tid = 0;              ///< recording thread's lane id
  Arg args[kMaxArgs];
  int nargs = 0;
};

/// Microseconds since the process trace epoch (steady clock).
std::int64_t now_us();

namespace detail {
void record(const Event& e);
}  // namespace detail

/// Records an instant event (a vertical tick in the trace lane).
inline void instant(const char* name, std::initializer_list<Arg> args = {}) {
  if (!enabled()) return;
  Event e;
  e.name = name;
  e.phase = 'i';
  e.ts_us = now_us();
  for (const Arg& a : args)
    if (e.nargs < kMaxArgs) e.args[e.nargs++] = a;
  detail::record(e);
}

/// RAII span: records a complete ('X') trace event covering its lifetime.
/// Arguments may be attached any time before destruction. When
/// instrumentation is disabled construction/destruction are branch-only.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) {
    if (enabled()) {
      name_ = name;
      start_ = now_us();
    }
  }
  ScopedTimer(const char* name, std::initializer_list<Arg> args)
      : ScopedTimer(name) {
    if (name_ != nullptr)
      for (const Arg& a : args) arg(a);
  }
  ~ScopedTimer() { close(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  void arg(const Arg& a) {
    if (name_ != nullptr && nargs_ < kMaxArgs) args_[nargs_++] = a;
  }
  void arg(const char* key, double v) { arg(obs::arg(key, v)); }
  void arg(const char* key, Index v) { arg(obs::arg(key, v)); }
  void arg(const char* key, const char* s) { arg(obs::arg(key, s)); }

  /// Ends the span early (idempotent; the destructor becomes a no-op).
  void close() {
    if (name_ == nullptr) return;
    Event e;
    e.name = name_;
    e.phase = 'X';
    e.ts_us = start_;
    e.dur_us = now_us() - start_;
    for (int k = 0; k < nargs_; ++k) e.args[k] = args_[k];
    e.nargs = nargs_;
    detail::record(e);
    name_ = nullptr;
  }

 private:
  const char* name_ = nullptr;
  std::int64_t start_ = 0;
  Arg args_[kMaxArgs];
  int nargs_ = 0;
};

// ---- Counters and gauges --------------------------------------------------

/// Monotonic counter. add() is a relaxed atomic fetch-add, gated on
/// enabled(). Look up once (e.g. a function-local static reference) —
/// registry lookup takes a mutex.
class Counter {
 public:
  void add(double d = 1.0) {
    if (enabled()) v_.fetch_add(d, std::memory_order_relaxed);
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Last-value gauge.
class Gauge {
 public:
  void set(double v) {
    if (enabled()) v_.store(v, std::memory_order_relaxed);
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Process-global counter/gauge interned by name (stable reference for the
/// process lifetime).
Counter& counter(const char* name);
Gauge& gauge(const char* name);

/// Names the calling thread's trace lane (e.g. "pool-worker-3").
void set_thread_name(const std::string& name);

// ---- Flush / inspection ---------------------------------------------------

/// Merged snapshot of all recorded events, sorted by timestamp. Intended
/// for tests and in-process consumers; safe to call while other threads
/// record (events published after the snapshot began may be missed).
std::vector<Event> snapshot_events();

/// All registered counters/gauges with their current values.
std::vector<std::pair<std::string, double>> snapshot_counters();
std::vector<std::pair<std::string, double>> snapshot_gauges();

/// Human-readable summary: per-span count/total/mean/min/max/p50/p99
/// (from the latency histograms) plus counters, gauges and byte gauges.
/// Empty string when nothing was recorded.
std::string stats_summary();

/// Writes the configured sinks: the Chrome trace JSON when a trace path
/// is set, the stats summary when SYMPVL_STATS is set, the Prometheus
/// document when SYMPVL_METRICS is set. Idempotent; also installed via
/// atexit when a sink is configured from the environment.
void flush();

/// Writes the Chrome trace JSON for everything recorded so far to `path`
/// regardless of sink configuration.
void write_chrome_trace(const std::string& path);

/// Discards all recorded events, zeroes every counter and histogram, and
/// drops byte-gauge high-water marks to their current values (for tests
/// and repeated bench sections). Call only while no instrumented code
/// runs.
void reset();

/// Events dropped because a thread hit its buffer cap (memory backstop).
std::int64_t dropped_events();

// ---- Run metadata ---------------------------------------------------------

/// JSON object describing the host/build/runtime configuration:
/// hardware_concurrency, SYMPVL_NUM_THREADS, resolved thread count,
/// compiler, flags, build type. `indent` prefixes every inner line (for
/// embedding in a larger document).
std::string run_metadata_json(const std::string& indent = "  ");

/// Writes `{"meta": {...}, <key>: <value>, ...}` — the uniform format of
/// the BENCH_*.json perf-trajectory files. Non-finite values become null.
void json_emit_with_meta(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& kv);

/// Overload that additionally emits numeric-list series (e.g. a
/// time-vs-ports curve) after the scalar keys: `"key": [v0, v1, ...]`.
/// tools/check_perf.py gates list-valued "*_s"/"*_ms" keys element-wise.
void json_emit_with_meta(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& kv,
    const std::vector<std::pair<std::string, std::vector<double>>>& series);

}  // namespace sympvl::obs
