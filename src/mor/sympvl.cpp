#include "mor/sympvl.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <utility>

#include "circuit/topology.hpp"
#include "mor/pencil.hpp"
#include "obs/memstat.hpp"
#include "obs/obs.hpp"

namespace sympvl {

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

// ---- SympvlSession ---------------------------------------------------------

struct SympvlSession::Impl {
  // The relevant pieces of the system are copied so the session cannot
  // dangle when the caller's MnaSystem goes out of scope — and so a
  // reshift() can re-factor the pencil without the original system.
  SMat g_matrix;
  SMat c_matrix;
  Mat b_matrix;
  SVariable variable = SVariable::kS;
  int s_prefactor = 0;
  double s0 = 0.0;
  SympvlOptions options;
  Index target_order = 0;  // latest order the caller asked for
  std::shared_ptr<const FactorizedPencil> pencil;  // cache-shared, immutable
  std::unique_ptr<BandLanczos> lanczos;
  Mat exact_moment0;  // p×p exact 0th moment Bᵀ(G+s₀C)⁻¹B = startᵀJ·start
  SympvlReport report;

  void absorb_factor_result(PencilFactorResult outcome) {
    pencil = std::move(outcome.pencil);
    s0 = outcome.s0_used;
    report.s0_used = outcome.s0_used;
    report.used_dense_fallback = outcome.dense;
    for (FactorAttemptRecord& rec : outcome.attempts) {
      if (rec.success)
        ++(rec.detail == "cache hit" ? report.factor_cache_hits
                                     : report.factor_cache_misses);
      report.factor_attempts.push_back(std::move(rec));
    }
    report.factor_nnz_l = pencil->l_nnz();
    report.factor_fill_ratio = pencil->fill_ratio();
    report.factor_flops = pencil->flops();
    report.kernel_path = kernel_path_name(pencil->kernel_path());
    report.supernode_count = pencil->supernode_count();
    report.max_panel_width = pencil->max_panel_width();
    report.panel_zeros = pencil->panel_zeros();
    report.simd_level = simd_level_name(pencil->simd_level());
    report.kernel_threads = pencil->kernel_threads();
    report.factor_bytes = pencil->bytes();
  }

  // Flop rate of the numeric factorization; call after factor_seconds is
  // settled (it includes ladder retries, so this is a floor on the kernel
  // rate).
  void refresh_factor_gflops() {
    report.factor_gflops =
        report.factor_seconds > 0.0
            ? report.factor_flops / report.factor_seconds * 1e-9
            : 0.0;
  }

  // Builds the starting block J⁻¹M⁻¹B, the exact 0th moment and a fresh
  // Lanczos process from the current factorization. Used at construction
  // and again by reshift().
  void build_process() {
    const auto t_start = std::chrono::steady_clock::now();
    const Vec& j = pencil->j_signs();
    report.negative_j = pencil->negative_j();

    const Index n_full = g_matrix.rows();
    Mat start;
    {
      obs::ScopedTimer span("sympvl.start_block");
      span.arg("ports", b_matrix.cols());
      start = starting_block(*pencil, b_matrix);
    }
    // Exact 0th moment about s₀: startᵀJ·start = Bᵀ(G+s₀C)⁻¹B (J² = I),
    // the reference for the report's moment-match residual.
    {
      Mat jstart = start;
      for (Index i = 0; i < n_full; ++i)
        for (Index col = 0; col < jstart.cols(); ++col)
          jstart(i, col) *= j[static_cast<size_t>(i)];
      exact_moment0 = matmul_transA(start, jstart);
    }
    report.start_block_seconds += seconds_since(t_start);

    LanczosOptions lopt;
    lopt.max_order = target_order;
    lopt.deflation_tol = options.deflation_tol;
    lopt.lookahead_tol = options.lookahead_tol;
    lopt.full_reorthogonalization = options.full_reorthogonalization;
    lopt.max_cluster_size = options.max_cluster_size;
    // The pencil IS the operator J⁻¹M⁻¹CM⁻ᵀ — no per-vector closure.
    lanczos = std::make_unique<BandLanczos>(*pencil, start, j, lopt);
  }

  void run_lanczos_to(Index target) {
    const auto t_lanczos = std::chrono::steady_clock::now();
    {
      obs::ScopedTimer span("sympvl.lanczos");
      span.arg("target_order", target);
      lanczos->run_to(std::max<Index>(target, 1));
    }
    const double dt = seconds_since(t_lanczos);
    report.lanczos_seconds += dt;
    report.total_seconds = report.factor_seconds +
                           report.start_block_seconds + report.lanczos_seconds;
  }

  void refresh_report() {
    report.krylov_peak_bytes =
        std::max(report.krylov_peak_bytes, lanczos->krylov_peak_bytes());
    report.peak_rss_bytes = obs::peak_rss_bytes();
    report.lanczos_step_stats = obs::latency_stats(lanczos->step_bins());
    const LanczosResult snap = lanczos->result();
    report.deflations = snap.deflations;
    report.exhausted = snap.exhausted;
    report.achieved_order = snap.n;
    report.lookahead_clusters = snap.lookahead_clusters;
    report.cluster_sizes = snap.cluster_sizes;
    report.lanczos_diagnosis = snap.diagnosis;
    report.breakdown = snap.diagnosis.breakdown;
    // Moment-match diagnostic (eq. 20 with k = 0): the model's 0th moment
    // ρₙᵀΔₙρₙ against the exact startᵀJ·start captured at construction.
    // Δₙ is symmetric, so Δₙρₙ = Δₙᵀρₙ and both products reuse the
    // transpose-aware kernel.
    if (snap.n > 0 && exact_moment0.rows() > 0) {
      const Mat model = matmul_transA(snap.rho, matmul_transA(snap.delta, snap.rho));
      double diff = 0.0;
      for (Index i = 0; i < model.rows(); ++i)
        for (Index jc = 0; jc < model.cols(); ++jc)
          diff = std::max(diff, std::abs(model(i, jc) - exact_moment0(i, jc)));
      report.moment0_residual =
          diff / std::max(exact_moment0.max_abs(), 1e-300);
    }
  }
};

SympvlSession::SympvlSession(const MnaSystem& sys, const SympvlOptions& options)
    : impl_(std::make_unique<Impl>()) {
  require(options.order >= 1, ErrorCode::kInvalidArgument,
          "SympvlSession: order must be >= 1");
  require(sys.port_count() >= 1, ErrorCode::kInvalidArgument,
          "SympvlSession: system has no ports");

  impl_->g_matrix = sys.G;
  impl_->c_matrix = sys.C;
  impl_->b_matrix = sys.B;
  impl_->variable = sys.variable;
  impl_->s_prefactor = sys.s_prefactor;
  impl_->options = options;
  impl_->target_order = options.order;

  // ---- Factor G + s₀C = M J Mᵀ (eq. 15 / eq. 26) through the shared
  //      ladder and cache. ----
  const auto t_factor = std::chrono::steady_clock::now();
  PencilFactorRequest req;
  req.s0 = options.s0;
  req.auto_shift = options.auto_shift;
  req.ordering = options.ordering;
  req.full_ladder = true;
  req.allow_dense = true;
  req.driver = "sympvl";
  req.stage = "sympvl.factor";
  req.cache = options.factor_cache;
  req.cache_options = options.cache;
  req.kernels = options.kernel;
  // The blocked solves of this reduction are p-wide (the port count);
  // let the kAuto path heuristic know unless the caller already did.
  req.rhs_width = sys.port_count();
  PencilFactorResult outcome;
  {
    obs::ScopedTimer span("sympvl.factor");
    span.arg("n", sys.size());
    outcome = factor_pencil(sys, req);
    span.arg("dense_fallback", outcome.dense ? 1.0 : 0.0);
    span.arg("s0", outcome.s0_used);
    span.arg("attempts", static_cast<Index>(outcome.attempts.size()));
  }
  impl_->absorb_factor_result(std::move(outcome));
  impl_->report.recovered = impl_->report.factor_attempts.size() > 1;
  impl_->report.factor_seconds = seconds_since(t_factor);
  impl_->refresh_factor_gflops();

  // ---- Starting block, operator and the Lanczos run (steps 0-3). ----
  impl_->build_process();
  impl_->run_lanczos_to(options.order);
  impl_->refresh_report();
}

SympvlSession::~SympvlSession() = default;
SympvlSession::SympvlSession(SympvlSession&&) noexcept = default;
SympvlSession& SympvlSession::operator=(SympvlSession&&) noexcept = default;

ReducedModel SympvlSession::extend(Index additional) {
  require(additional >= 0, ErrorCode::kInvalidArgument,
          "SympvlSession::extend: negative step");
  const Index target = impl_->lanczos->order() + additional;
  impl_->target_order = std::max<Index>(target, 1);
  impl_->run_lanczos_to(target);
  impl_->refresh_report();
  return current();
}

ReducedModel SympvlSession::reshift(double new_s0) {
  Impl* impl = impl_.get();
  const auto t_factor = std::chrono::steady_clock::now();
  PencilFactorRequest req;
  req.s0 = new_s0;
  // The caller chose the shift: no automatic ladder, but the dense rung
  // still backstops it.
  req.auto_shift = false;
  req.ordering = impl->options.ordering;
  req.full_ladder = true;
  req.allow_dense = true;
  req.driver = "sympvl";
  req.stage = "sympvl.factor";
  req.cache = impl->options.factor_cache;
  req.cache_options = impl->options.cache;
  req.kernels = impl->options.kernel;
  req.rhs_width = impl->b_matrix.cols();
  PencilFactorResult outcome;
  {
    obs::ScopedTimer span("sympvl.reshift");
    span.arg("s0", new_s0);
    span.arg("previous_s0", impl->s0);
    outcome = factor_pencil(impl->g_matrix, impl->c_matrix, req);
  }
  impl->absorb_factor_result(std::move(outcome));
  impl->report.factor_seconds += seconds_since(t_factor);
  impl->refresh_factor_gflops();
  ++impl->report.shift_retries;
  impl->report.recovered = true;

  // Restart the process about the new expansion point and run it back to
  // the last requested order. The Padé model changes (different s₀) but
  // matches the same transfer function to the same moment count.
  impl->build_process();
  impl->run_lanczos_to(impl->target_order);
  impl->refresh_report();
  return current();
}

bool SympvlSession::breakdown() const { return impl_->lanczos->breakdown(); }

ReducedModel SympvlSession::current() const {
  return ReducedModel(impl_->lanczos->result(), impl_->variable,
                      impl_->s_prefactor, impl_->s0);
}

Index SympvlSession::order() const { return impl_->lanczos->order(); }

Mat SympvlSession::krylov_basis() const { return impl_->lanczos->basis(); }

const SympvlReport& SympvlSession::report() const { return impl_->report; }

// ---- One-shot drivers ------------------------------------------------------

ReducedModel sympvl_reduce(const MnaSystem& sys, const SympvlOptions& options,
                           SympvlReport* report) {
  SympvlSession session(sys, options);
  if (report != nullptr) *report = session.report();
  return session.current();
}

ReducedModel sympvl_reduce(const Netlist& netlist, const SympvlOptions& options,
                           SympvlReport* report) {
  const MnaSystem sys = build_mna(netlist, MnaForm::kAuto);
  SympvlOptions opt = options;
  // Topology check (Section 2 / eq. 26): when some node has no DC path to
  // the datum, G is structurally singular — pick the shift up front rather
  // than failing a factorization first.
  if (opt.s0 == 0.0 && opt.auto_shift &&
      !has_dc_path_to_ground(netlist, MnaForm::kAuto))
    opt.s0 = automatic_shift(sys);
  return sympvl_reduce(sys, opt, report);
}

}  // namespace sympvl
