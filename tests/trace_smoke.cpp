// Trace smoke test (ctest label "Trace"): runs a small SyMPVL reduction
// and AC sweep with SYMPVL_TRACE set, then validates the emitted Chrome
// trace-event JSON:
//   * structurally valid JSON (balanced braces/brackets outside strings,
//     no bare nan/inf tokens);
//   * at least one complete ('X') event for every pipeline stage
//     (factorization, start block, Lanczos, sweep, per-point solve);
//   * thread-pool workers appear as named lanes ("pool-worker-K").
// Built standalone (not into the gtest binary) so the env var is set
// before the process touches any instrumented code; runs under
// -DSYMPVL_SANITIZE=thread to prove the recording hot path is data-race
// free while pool workers record concurrently.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/random_circuit.hpp"
#include "linalg/sparse.hpp"
#include "linalg/sparse_ldlt.hpp"
#include "mor/sympvl.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/ac.hpp"

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

// Structural scan: braces/brackets balanced outside string literals.
bool json_well_formed(const std::string& doc) {
  int depth = 0;
  bool in_string = false, escape = false;
  for (char c : doc) {
    if (in_string) {
      if (escape)
        escape = false;
      else if (c == '\\')
        escape = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

int count_occurrences(const std::string& doc, const std::string& needle) {
  int n = 0;
  for (size_t pos = doc.find(needle); pos != std::string::npos;
       pos = doc.find(needle, pos + needle.size()))
    ++n;
  return n;
}

// Splits the traceEvents array into its top-level event objects (nested
// args braces handled by depth tracking).
std::vector<std::string> split_events(const std::string& doc) {
  std::vector<std::string> events;
  int depth = 0;
  bool in_string = false, escape = false;
  size_t start = std::string::npos;
  for (size_t i = 0; i < doc.size(); ++i) {
    const char c = doc[i];
    if (in_string) {
      if (escape)
        escape = false;
      else if (c == '\\')
        escape = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') {
      // Event objects sit at depth 3: root object > traceEvents array >
      // event.
      if (++depth == 3 && c == '{') start = i;
    } else if (c == '}' || c == ']') {
      if (depth-- == 3 && c == '}' && start != std::string::npos) {
        events.push_back(doc.substr(start, i - start + 1));
        start = std::string::npos;
      }
    }
  }
  return events;
}

// "tid" value of one event object; -1 when absent.
long long event_tid(const std::string& ev) {
  const size_t pos = ev.find("\"tid\":");
  if (pos == std::string::npos) return -1;
  return std::atoll(ev.c_str() + pos + 6);
}

}  // namespace

int main() {
  using namespace sympvl;
  const char* trace_path = "trace_smoke_out.json";
  // Before any instrumented call: the obs layer resolves its sinks from
  // the environment lazily, so this is the production code path.
#ifdef _WIN32
  _putenv_s("SYMPVL_TRACE", trace_path);
#else
  setenv("SYMPVL_TRACE", trace_path, 1);
#endif
  // Force real pool workers even on 1-core hosts: the pool spawns
  // count-1 workers (the caller participates), so 3 threads = 2 workers.
  set_num_threads(3);

  // Small but complete pipeline: reduction plus exact AC sweep.
  const Netlist nl = random_rc({.nodes = 40, .ports = 2, .seed = 11});
  const MnaSystem sys = build_mna(nl);
  SympvlOptions opt;
  opt.order = 8;
  SympvlReport report;
  sympvl_reduce(sys, opt, &report);
  check(report.achieved_order == 8, "reduction reached order 8");

  const Vec freqs = log_frequency_grid(1e6, 1e9, 16);
  const AcSweepEngine engine(sys);
  const SweepResult sweep = engine.sweep(freqs);
  check(sweep.size() == freqs.size(), "sweep produced every point");
  check(sweep.all_ok(), "sweep produced no failed points");

  // ---- Parallel supernodal kernel lanes (Metrics v2). ----
  // A 2-D grid Laplacian is large enough that several elimination-tree
  // levels pass the factor/solve grain gates, so panel updates and
  // blocked TRSMs fan out across the pool; the per-chunk kernel spans
  // must then land on the workers' lanes, each carrying its
  // simd/threads/flops args.
  {
    const Index g = 110;
    const Index n = g * g;
    TripletBuilder<double> t(n, n);
    for (Index r = 0; r < g; ++r)
      for (Index c = 0; c < g; ++c) {
        const Index i = r * g + c;
        t.add(i, i, 4.5);
        if (c + 1 < g) { t.add(i, i + 1, -1.0); t.add(i + 1, i, -1.0); }
        if (r + 1 < g) { t.add(i, i + g, -1.0); t.add(i + g, i, -1.0); }
      }
    KernelOptions kopt;
    kopt.path = KernelPath::kSupernodal;
    // Min-degree: RCM's banded etree is a width-1 chain (nothing to fan
    // out); min-degree gives the bushy tree with wide levels.
    const LDLT fact(t.compress(), Ordering::kMinDegree, 0.0, kopt);
    check(fact.kernel_threads() > 1,
          "grid factorization fanned panel updates across the pool");
    Mat rhs(n, 16);
    for (Index i = 0; i < n; ++i)
      for (Index j = 0; j < 16; ++j)
        rhs(i, j) = 1.0 + 0.001 * static_cast<double>(i + j);
    const Mat x = fact.solve(rhs);
    check(x.rows() == n, "blocked grid solve produced a full solution");
  }

  obs::flush();

  auto read_trace = [&]() -> std::string {
    std::ifstream in(trace_path);
    if (!in.good()) return {};
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  std::string doc = read_trace();
  check(!doc.empty(), "trace file was written");
  // Workers name their lanes as their first action after spawning; on a
  // loaded 1-core host the caller can drain every chunk before a fresh
  // worker is even scheduled, so give naming a bounded grace period.
  for (int tries = 0;
       tries < 200 && (doc.find("\"pool-worker-0\"") == std::string::npos ||
                       doc.find("\"pool-worker-1\"") == std::string::npos);
       ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    obs::flush();
    doc = read_trace();
  }
  std::remove(trace_path);

  check(json_well_formed(doc), "trace JSON is structurally valid");
  check(doc.find("\"traceEvents\"") != std::string::npos,
        "trace has a traceEvents array");
  check(count_occurrences(doc, ": nan") + count_occurrences(doc, ": inf") == 0,
        "no bare non-finite tokens");

  // One complete event per pipeline stage.
  for (const char* stage :
       {"sympvl.factor", "sympvl.start_block", "sympvl.lanczos",
        "ldlt.factor", "ac.sweep", "ac.z_at", "parallel.chunk"}) {
    const std::string needle = "\"name\":\"" + std::string(stage) + "\"";
    check(count_occurrences(doc, needle) >= 1,
          std::string("stage event present: ") + stage);
  }

  // Worker lanes are named; two workers were forced above.
  check(count_occurrences(doc, "\"pool-worker-0\"") >= 1 &&
            count_occurrences(doc, "\"pool-worker-1\"") >= 1,
        "both pool workers have named lanes");
  check(count_occurrences(doc, "\"thread_name\"") >= 3,
        "metadata events for main + worker lanes");

  // Per-chunk kernel spans from the parallel supernodal path sit on the
  // workers' lanes (not only the caller's) and carry the kernel args.
  {
    const auto events = split_events(doc);
    std::vector<long long> worker_tids;
    for (const auto& ev : events)
      if (ev.find("\"thread_name\"") != std::string::npos &&
          ev.find("\"pool-worker-") != std::string::npos)
        worker_tids.push_back(event_tid(ev));
    auto on_worker = [&](const std::string& ev) {
      const long long tid = event_tid(ev);
      for (long long w : worker_tids)
        if (tid == w) return true;
      return false;
    };
    int panel_total = 0, panel_on_worker = 0, panel_with_args = 0;
    int trsm_total = 0, trsm_on_worker = 0, trsm_with_args = 0;
    for (const auto& ev : events) {
      if (event_tid(ev) < 0 || ev.find("\"ph\":\"X\"") == std::string::npos)
        continue;
      const bool has_args = ev.find("\"simd\"") != std::string::npos &&
                            ev.find("\"threads\"") != std::string::npos &&
                            ev.find("\"flops\"") != std::string::npos;
      if (ev.find("\"name\":\"kernel.panel_update\"") != std::string::npos) {
        ++panel_total;
        if (on_worker(ev)) ++panel_on_worker;
        if (has_args) ++panel_with_args;
      } else if (ev.find("\"name\":\"kernel.trsm\"") != std::string::npos) {
        ++trsm_total;
        if (on_worker(ev)) ++trsm_on_worker;
        if (has_args) ++trsm_with_args;
      }
    }
    check(panel_total >= 1, "kernel.panel_update spans recorded");
    check(trsm_total >= 1, "kernel.trsm spans recorded");
    check(panel_on_worker >= 1,
          "kernel.panel_update chunk span on a pool-worker lane");
    check(trsm_on_worker >= 1, "kernel.trsm chunk span on a pool-worker lane");
    check(panel_with_args == panel_total,
          "every kernel.panel_update span carries simd/threads/flops args");
    check(trsm_with_args == trsm_total,
          "every kernel.trsm span carries simd/threads/flops args");
  }

  if (g_failures == 0) {
    std::printf("trace smoke: OK (%d trace bytes)\n",
                static_cast<int>(doc.size()));
    return 0;
  }
  std::fprintf(stderr, "trace smoke: %d check(s) failed\n", g_failures);
  return 1;
}
