// Experiment E11 — many-terminal port sharding: clustered per-shard
// SyMPVL against the monolithic driver on the power-grid family, at
// matched total order. Emits the time-vs-ports and error-vs-ports
// curves of BENCH_port_shard.json; the "*_s" series are gated
// element-wise against bench/baselines/ by tools/check_perf.py.
#include <chrono>
#include <functional>

#include "bench_util.hpp"
#include "gen/power_grid.hpp"
#include "linalg/factor_cache.hpp"
#include "mor/driver.hpp"
#include "mor/port_shard.hpp"
#include "mor/reduce.hpp"
#include "sim/sweep_api.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

double timed(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_tables() {
  csv_begin("sharded vs monolithic SyMPVL (power grid, order = ports)",
            {"ports", "mna_size", "shards", "mono_s", "shard_s", "speedup",
             "mono_err", "shard_err"});

  std::vector<double> ports_series, mono_series, shard_series;
  std::vector<double> mono_err_series, shard_err_series;
  double speedup_512 = 0.0, err_ratio_512 = 0.0;

  for (Index ports : {128, 256, 512}) {
    const PowerGridOptions gopt{.ports = ports};
    const MnaSystem sys =
        build_mna(make_power_grid(gopt).netlist, MnaForm::kAuto);

    SympvlOptions opt;
    opt.order = ports;  // matched total order: shard orders sum to this

    // Each variant pays its own factorization: the global pencil cache
    // is content-fingerprinted, so without the clear the second run
    // would reuse the first run's factor and the comparison would skew.
    FactorCache::global().clear();
    ReductionResult<ReducedModel> mono;
    const double t_mono = timed([&] { mono = run_sympvl(sys, opt); });

    FactorCache::global().clear();
    ShardedSympvlResult sharded;
    const double t_shard =
        timed([&] { sharded = sharded_sympvl_reduce(sys, opt); });

    const Vec freqs = log_frequency_grid(1e6, 1e9, 7);
    const SweepResult exact = sweep(sys, freqs);
    const double err_mono =
        mono.ok() ? max_rel_err_sweep(sweep(mono.value(), freqs), exact)
                  : 1.0;
    const double err_shard =
        sharded.ok() ? max_rel_err_sweep(sweep(sharded.stitched, freqs), exact)
                     : 1.0;

    csv_row({static_cast<double>(ports), static_cast<double>(sys.size()),
             static_cast<double>(sharded.shard.shards), t_mono, t_shard,
             t_mono / t_shard, err_mono, err_shard});

    ports_series.push_back(static_cast<double>(ports));
    mono_series.push_back(t_mono);
    shard_series.push_back(t_shard);
    mono_err_series.push_back(err_mono);
    shard_err_series.push_back(err_shard);
    if (ports == 512) {
      speedup_512 = t_mono / t_shard;
      err_ratio_512 = err_shard / (err_mono + 1e-300);
    }
  }

  json_emit("BENCH_port_shard.json",
            {{"shard_p512_speedup", speedup_512},
             {"shard_p512_err_ratio", err_ratio_512}},
            {{"ports", ports_series},
             {"mono_time_s", mono_series},
             {"shard_time_s", shard_series},
             {"mono_err", mono_err_series},
             {"shard_err", shard_err_series}});
  std::printf("\nwrote BENCH_port_shard.json\n");
}

void bm_sharded_reduce(benchmark::State& state) {
  const PowerGridOptions gopt{.ports = static_cast<Index>(state.range(0))};
  const MnaSystem sys =
      build_mna(make_power_grid(gopt).netlist, MnaForm::kAuto);
  SympvlOptions opt;
  opt.order = gopt.ports;
  for (auto _ : state) {
    FactorCache::global().clear();
    const ShardedSympvlResult r = sharded_sympvl_reduce(sys, opt);
    benchmark::DoNotOptimize(r.order());
  }
  state.SetComplexityN(gopt.ports);
}
BENCHMARK(bm_sharded_reduce)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity();

void bm_monolithic_reduce(benchmark::State& state) {
  const PowerGridOptions gopt{.ports = static_cast<Index>(state.range(0))};
  const MnaSystem sys =
      build_mna(make_power_grid(gopt).netlist, MnaForm::kAuto);
  SympvlOptions opt;
  opt.order = gopt.ports;
  for (auto _ : state) {
    FactorCache::global().clear();
    const auto r = run_sympvl(sys, opt);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetComplexityN(gopt.ports);
}
BENCHMARK(bm_monolithic_reduce)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity();

}  // namespace

SYMPVL_BENCH_MAIN(print_tables)
