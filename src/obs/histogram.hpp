// Log-bucketed, mergeable latency histograms (Metrics v2).
//
// Two layers:
//
//  * HistogramBins — a plain, single-threaded value type holding the
//    bucket counts plus count/sum/min/max moments. It is the mergeable
//    snapshot/accumulator form: cheap to copy, trivially serialisable,
//    and the thing quantiles are computed from. Internal subsystems
//    that want always-on, zero-contention local timing (e.g. the
//    Lanczos step clock feeding SympvlReport) use it directly.
//
//  * Histogram — the concurrent recorder behind obs::histogram(name).
//    Recording is lock-free: each thread hashes to one of a fixed set
//    of cache-line-padded shards and does relaxed atomic increments on
//    that shard only, so parallel supernodal factorization and parallel
//    sweeps can record from pool workers without serialising on a
//    mutex (and without TSan findings). snapshot() merges the shards;
//    like obs::snapshot_events it is a racy-but-consistent-enough view
//    when writers are still active, and exact once they have quiesced.
//
// Bucket layout: kBucketsPerDecade geometric sub-buckets per decade
// over [kHistMin, kHistMax) seconds, plus an underflow bucket 0 and an
// overflow bucket kHistBuckets-1. With 8 buckets/decade the relative
// resolution is 10^(1/8) ≈ 1.33, good enough to separate a p99 from a
// p50 of the same span family while keeping the whole histogram ~700
// bytes per shard. Quantiles interpolate geometrically inside a bucket
// and are clamped to the observed [min, max].
//
// Spans recorded through obs::ScopedTimer feed these automatically:
// obs::detail::record() forwards every completed span's duration to
// the histogram interned under the span's name (see obs.cpp), so the
// existing instrumentation points (ldlt.factor, ldlt.solve, ac.z_at,
// lanczos.step, kernel.panel_update, kernel.trsm, ...) gain p50/p95/p99
// without touching their call sites.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace sympvl::obs {

inline constexpr int kBucketsPerDecade = 8;
inline constexpr double kHistMin = 1e-7;  // 100 ns
inline constexpr int kHistDecades = 10;   // [1e-7 s, 1e3 s)
inline constexpr int kHistBuckets = kHistDecades * kBucketsPerDecade + 2;

/// Bucket index for a value in seconds. Bucket 0 is the underflow
/// bucket [0, kHistMin) (and catches non-positive / NaN values);
/// bucket kHistBuckets-1 is the overflow bucket [kHistMax, +inf).
int histogram_bucket(double seconds);

/// Upper bound (seconds) of bucket `b`; +inf for the overflow bucket.
double histogram_upper_bound(int b);

/// Plain mergeable histogram cells — see file comment.
struct HistogramBins {
  std::vector<std::uint64_t> counts;  // kHistBuckets entries once non-empty
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // meaningful only when count > 0
  double max = 0.0;

  void record(double seconds);
  void merge(const HistogramBins& other);
  bool empty() const { return count == 0; }
  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }

  /// Quantile in [0, 1] via geometric interpolation inside the owning
  /// bucket, clamped to the observed [min, max]. Returns 0 when empty.
  double quantile(double q) const;
};

/// The digest of a HistogramBins that reports carry: count plus the
/// five-number latency summary every span family is described by.
struct LatencyStats {
  std::uint64_t count = 0;
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

LatencyStats latency_stats(const HistogramBins& bins);

/// Concurrent recorder. record() is gated on obs::enabled() like every
/// other instrumentation point; record_unchecked() skips the gate for
/// callers that already sit behind one (the span feed in obs.cpp).
class Histogram {
 public:
  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double seconds);
  void record_unchecked(double seconds);

  /// Merged view across shards.
  HistogramBins snapshot() const;

  /// Zeroes all shards (obs::reset()).
  void reset();

 private:
  // One shard per small power-of-two slot; threads pick a home shard
  // round-robin at first use. alignas keeps shards on distinct cache
  // lines so worker increments never false-share.
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> counts[kHistBuckets];
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min_bits{0.0};  // valid only when count > 0
    std::atomic<double> max_bits{0.0};
  };
  static constexpr int kShards = 16;

  Shard& home_shard();

  std::unique_ptr<Shard[]> shards_;
};

/// Interned registry: one Histogram per name, created on first use and
/// intentionally leaked so records during static destruction stay safe.
Histogram& histogram(const char* name);

/// Name → merged bins for every registered histogram, sorted by name.
std::vector<std::pair<std::string, HistogramBins>> snapshot_histograms();

namespace detail {
/// Span-duration feed: called by obs::detail::record() for completed
/// spans. Uses a per-thread name→histogram cache so the steady-state
/// cost is one hash probe plus the shard increments.
void record_span_duration(const char* name, std::int64_t dur_us);
/// obs::reset() hook.
void reset_histograms();
}  // namespace detail

}  // namespace sympvl::obs
