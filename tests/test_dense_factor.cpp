#include "linalg/dense_factor.hpp"

#include <gtest/gtest.h>

#include <random>

namespace sympvl {
namespace {

Mat random_matrix(Index n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Mat a(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j) a(i, j) = u(rng);
  return a;
}

Mat random_symmetric(Index n, unsigned seed) {
  Mat a = random_matrix(n, seed);
  return a + a.transpose();
}

Mat random_spd(Index n, unsigned seed) {
  Mat a = random_matrix(n, seed);
  Mat s = a.transpose() * a;
  for (Index i = 0; i < n; ++i) s(i, i) += static_cast<double>(n);
  return s;
}

TEST(DenseLU, SolvesKnownSystem) {
  Mat a{{2.0, 1.0}, {1.0, 3.0}};
  const Vec x = LU(a).solve(Vec{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(DenseLU, RandomResidual) {
  for (unsigned seed : {1u, 2u, 3u}) {
    const Mat a = random_matrix(20, seed);
    Vec b(20);
    for (size_t i = 0; i < 20; ++i) b[i] = static_cast<double>(i) - 7.5;
    const Vec x = LU(a).solve(b);
    const Vec r = a * x;
    for (size_t i = 0; i < 20; ++i) EXPECT_NEAR(r[i], b[i], 1e-9);
  }
}

TEST(DenseLU, DetectsSingular) {
  Mat a{{1.0, 2.0}, {2.0, 4.0}};
  LU lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_THROW(lu.solve(Vec{1.0, 1.0}), Error);
}

TEST(DenseLU, ComplexSolve) {
  CMat a(2, 2);
  a(0, 0) = Complex(1.0, 1.0);
  a(0, 1) = Complex(0.0, -1.0);
  a(1, 0) = Complex(2.0, 0.0);
  a(1, 1) = Complex(3.0, 1.0);
  CVec b{Complex(1.0, 0.0), Complex(0.0, 1.0)};
  const CVec x = CLU(a).solve(b);
  // Verify the residual.
  const CVec r = a * x;
  EXPECT_NEAR(std::abs(r[0] - b[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(r[1] - b[1]), 0.0, 1e-12);
}

TEST(DenseLU, MatrixRhs) {
  const Mat a = random_matrix(8, 11);
  const Mat x = LU(a).solve(Mat::identity(8));
  const Mat should_be_i = a * x;
  EXPECT_NEAR((should_be_i - Mat::identity(8)).max_abs(), 0.0, 1e-9);
}

TEST(DenseCholesky, FactorAndSolve) {
  const Mat a = random_spd(15, 5);
  const DenseCholesky chol(a);
  // L·Lᵀ = A.
  const Mat l = chol.matrix_l();
  EXPECT_NEAR((l * l.transpose() - a).max_abs(), 0.0, 1e-9);
  Vec b(15, 1.0);
  const Vec x = chol.solve(b);
  const Vec r = a * x;
  for (double v : r) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(DenseCholesky, RejectsIndefinite) {
  Mat a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(DenseCholesky{a}, Error);
}

TEST(DenseCholesky, TriangularSolves) {
  const Mat a = random_spd(6, 9);
  const DenseCholesky chol(a);
  Vec b(6, 2.0);
  const Vec y = chol.solve_l(b);
  const Vec x = chol.solve_lt(y);
  const Vec r = a * x;
  for (double v : r) EXPECT_NEAR(v, 2.0, 1e-10);
}

TEST(DenseQR, Reconstruction) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Mat a(10, 4);
  for (Index i = 0; i < 10; ++i)
    for (Index j = 0; j < 4; ++j) a(i, j) = u(rng);
  const DenseQR qr(a);
  const Mat q = qr.q_thin();
  const Mat r = qr.r();
  EXPECT_NEAR((q * r - a).max_abs(), 0.0, 1e-12);
  // Orthonormal columns.
  EXPECT_NEAR((q.transpose() * q - Mat::identity(4)).max_abs(), 0.0, 1e-12);
}

TEST(DenseQR, FullQOrthogonal) {
  std::mt19937 rng(4);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Mat a(7, 3);
  for (Index i = 0; i < 7; ++i)
    for (Index j = 0; j < 3; ++j) a(i, j) = u(rng);
  const DenseQR qr(a);
  const Mat q = qr.q_full();
  EXPECT_NEAR((q.transpose() * q - Mat::identity(7)).max_abs(), 0.0, 1e-12);
  // First columns coincide with the thin factor.
  const Mat qt = qr.q_thin();
  EXPECT_NEAR((q.block(0, 7, 0, 3) - qt).max_abs(), 0.0, 1e-12);
}

TEST(DenseQR, RankDetection) {
  Mat a(5, 3);
  for (Index i = 0; i < 5; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);  // dependent column
    a(i, 2) = static_cast<double>(i * i);
  }
  EXPECT_EQ(DenseQR(a).rank(), 2);
}

TEST(DenseQR, LeastSquares) {
  // Overdetermined fit of y = 2x + 1.
  Mat a(4, 2);
  Vec b(4);
  for (Index i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 1.0;
    b[static_cast<size_t>(i)] = 2.0 * static_cast<double>(i) + 1.0;
  }
  const Vec x = DenseQR(a).solve(b);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(BunchKaufman, ReconstructionViaSymmetricFactor) {
  for (unsigned seed : {1u, 2u, 7u, 13u}) {
    const Mat a = random_symmetric(12, seed);
    const BunchKaufman bk(a);
    Mat m;
    Vec j;
    bk.symmetric_factor(m, j);
    // A = M J Mᵀ.
    Mat mj = m;
    for (Index c = 0; c < mj.cols(); ++c)
      for (Index r = 0; r < mj.rows(); ++r) mj(r, c) *= j[static_cast<size_t>(c)];
    EXPECT_NEAR((mj * m.transpose() - a).max_abs(), 0.0,
                1e-9 * (1.0 + a.max_abs()))
        << "seed " << seed;
  }
}

TEST(BunchKaufman, Solve) {
  for (unsigned seed : {3u, 8u}) {
    const Mat a = random_symmetric(16, seed);
    Vec b(16);
    for (size_t i = 0; i < 16; ++i) b[i] = std::sin(static_cast<double>(i));
    const Vec x = BunchKaufman(a).solve(b);
    const Vec r = a * x;
    for (size_t i = 0; i < 16; ++i) EXPECT_NEAR(r[i], b[i], 1e-8);
  }
}

TEST(BunchKaufman, InertiaOfIndefinite) {
  // diag(2, -3, 5) rotated by a random orthogonal-ish congruence keeps
  // inertia (Sylvester's law).
  Mat d{{2.0, 0.0, 0.0}, {0.0, -3.0, 0.0}, {0.0, 0.0, 5.0}};
  const Mat p = random_matrix(3, 21);
  const Mat a = p * d * p.transpose();
  const auto inertia = BunchKaufman(a).inertia();
  EXPECT_EQ(inertia.positive, 2);
  EXPECT_EQ(inertia.negative, 1);
  EXPECT_EQ(inertia.zero, 0);
}

TEST(BunchKaufman, HandlesZeroDiagonal) {
  // Classic BK stress case: zero diagonal forces 2x2 pivots.
  Mat a{{0.0, 1.0}, {1.0, 0.0}};
  const BunchKaufman bk(a);
  const Vec x = bk.solve(Vec{1.0, 2.0});
  EXPECT_NEAR(x[0], 2.0, 1e-14);
  EXPECT_NEAR(x[1], 1.0, 1e-14);
  const auto inertia = bk.inertia();
  EXPECT_EQ(inertia.positive, 1);
  EXPECT_EQ(inertia.negative, 1);
}

TEST(BunchKaufman, RejectsNonSymmetric) {
  Mat a{{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_THROW(BunchKaufman{a}, Error);
}

TEST(BunchKaufman, JSignsMatchInertia) {
  const Mat a = random_symmetric(10, 33);
  const BunchKaufman bk(a);
  Mat m;
  Vec j;
  bk.symmetric_factor(m, j);
  const auto inertia = bk.inertia();
  Index neg = 0;
  for (double v : j)
    if (v < 0.0) ++neg;
  EXPECT_EQ(neg, inertia.negative);
}

}  // namespace
}  // namespace sympvl
