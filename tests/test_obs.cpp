// Tests for the observability layer: event recording, counters, JSON
// hardening, run metadata, and the SyMPVL diagnostic telemetry
// (deflation / look-ahead reporting consistency).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "mor/sympvl.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace sympvl {
namespace {

// RAII guard: every test runs with a clean, programmatically-enabled (or
// disabled) recorder and leaves the global state clean for the next test.
struct ObsGuard {
  explicit ObsGuard(bool on) {
    obs::enable(on);
    obs::reset();
  }
  ~ObsGuard() {
    obs::enable(false);
    obs::reset();
  }
};

int count_events(const std::vector<obs::Event>& events, const char* name,
                 char phase) {
  int n = 0;
  for (const auto& e : events)
    if (e.phase == phase && std::strcmp(e.name, name) == 0) ++n;
  return n;
}

const obs::Arg* find_arg(const obs::Event& e, const char* key) {
  for (int k = 0; k < e.nargs; ++k)
    if (std::strcmp(e.args[k].key, key) == 0) return &e.args[k];
  return nullptr;
}

TEST(Obs, SpansInstantsAndCounters) {
  ObsGuard guard(true);
  {
    obs::ScopedTimer span("test.span");
    span.arg("x", 3.0);
    span.arg("tag", "hello");
  }
  obs::instant("test.instant", {obs::arg("k", Index(7))});
  obs::counter("test.counter").add(2.0);
  obs::gauge("test.gauge").set(5.5);

  const auto events = obs::snapshot_events();
  ASSERT_EQ(count_events(events, "test.span", 'X'), 1);
  ASSERT_EQ(count_events(events, "test.instant", 'i'), 1);
  for (const auto& e : events) {
    if (std::strcmp(e.name, "test.span") == 0) {
      EXPECT_GE(e.dur_us, 0);
      const obs::Arg* x = find_arg(e, "x");
      ASSERT_NE(x, nullptr);
      EXPECT_EQ(x->num, 3.0);
      const obs::Arg* tag = find_arg(e, "tag");
      ASSERT_NE(tag, nullptr);
      EXPECT_STREQ(tag->str, "hello");
    }
    if (std::strcmp(e.name, "test.instant") == 0) {
      const obs::Arg* k = find_arg(e, "k");
      ASSERT_NE(k, nullptr);
      EXPECT_EQ(k->num, 7.0);
    }
  }

  bool counter_seen = false, gauge_seen = false;
  for (const auto& [name, value] : obs::snapshot_counters())
    if (name == "test.counter") {
      counter_seen = true;
      EXPECT_EQ(value, 2.0);
    }
  for (const auto& [name, value] : obs::snapshot_gauges())
    if (name == "test.gauge") {
      gauge_seen = true;
      EXPECT_EQ(value, 5.5);
    }
  EXPECT_TRUE(counter_seen);
  EXPECT_TRUE(gauge_seen);

  const std::string summary = obs::stats_summary();
  EXPECT_NE(summary.find("test.span"), std::string::npos);
  EXPECT_NE(summary.find("test.counter"), std::string::npos);
}

TEST(Obs, DisabledRecordsNothing) {
  ObsGuard guard(false);
  {
    obs::ScopedTimer span("test.disabled_span");
    span.arg("x", 1.0);
  }
  obs::instant("test.disabled_instant");
  obs::counter("test.disabled_counter").add(3.0);
  EXPECT_TRUE(obs::snapshot_events().empty());
  EXPECT_EQ(obs::counter("test.disabled_counter").value(), 0.0);
}

TEST(Obs, ResetClearsEventsAndCounters) {
  ObsGuard guard(true);
  obs::instant("test.pre_reset");
  obs::counter("test.reset_counter").add(4.0);
  obs::reset();
  EXPECT_TRUE(obs::snapshot_events().empty());
  EXPECT_EQ(obs::counter("test.reset_counter").value(), 0.0);
  obs::instant("test.post_reset");
  EXPECT_EQ(count_events(obs::snapshot_events(), "test.post_reset", 'i'), 1);
}

TEST(Obs, JsonNumberHandlesNonFinite) {
  EXPECT_EQ(obs::json_number(std::nan("")), "null");
  EXPECT_EQ(obs::json_number(HUGE_VAL), "null");
  EXPECT_EQ(obs::json_number(-HUGE_VAL), "null");
  EXPECT_EQ(obs::json_number(1.5), "1.5");
  EXPECT_EQ(obs::json_number(0.0), "0");
  // Full round-trip precision for finite values.
  EXPECT_EQ(std::stod(obs::json_number(0.1)), 0.1);
}

TEST(Obs, JsonStringEscapes) {
  EXPECT_EQ(obs::json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(obs::json_string(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(Obs, JsonEmitWithMetaWritesValidDocument) {
  const std::string path = "test_obs_emit.json";
  obs::json_emit_with_meta(
      path, {{"finite", 2.5}, {"bad", std::nan("")}, {"inf", HUGE_VAL}});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  std::remove(path.c_str());

  // Metadata block present with the host/build keys.
  EXPECT_NE(doc.find("\"meta\""), std::string::npos);
  EXPECT_NE(doc.find("\"hardware_concurrency\""), std::string::npos);
  EXPECT_NE(doc.find("\"compiler\""), std::string::npos);
  EXPECT_NE(doc.find("\"build_type\""), std::string::npos);
  // Values: finite survives, non-finite becomes null (never nan/inf).
  EXPECT_NE(doc.find("\"finite\": 2.5"), std::string::npos);
  EXPECT_NE(doc.find("\"bad\": null"), std::string::npos);
  EXPECT_NE(doc.find("\"inf\": null"), std::string::npos);
  EXPECT_EQ(doc.find(": nan"), std::string::npos);
  EXPECT_EQ(doc.find(": inf"), std::string::npos);
  EXPECT_EQ(doc.find(": -inf"), std::string::npos);
}

TEST(Obs, RunMetadataJson) {
  const std::string meta = obs::run_metadata_json();
  EXPECT_NE(meta.find("\"hardware_concurrency\""), std::string::npos);
  EXPECT_NE(meta.find("\"resolved_threads\""), std::string::npos);
  EXPECT_NE(meta.find("\"compiler\""), std::string::npos);
  EXPECT_NE(meta.find("\"cxx_flags\""), std::string::npos);
  EXPECT_NE(meta.find("\"build_type\""), std::string::npos);
}

// ---- Domain telemetry: deflation / look-ahead diagnostics -----------------

// A port column duplicated exactly makes the starting block J⁻¹M⁻¹B rank
// deficient: the second copy must deflate (Algorithm 1, step 1c) during
// the first pass over the start columns.
Netlist deflation_forcing_netlist() {
  Netlist nl;
  nl.add_resistor(1, 0, 10.0);
  nl.add_resistor(1, 2, 5.0);
  nl.add_resistor(2, 3, 7.0);
  nl.add_resistor(3, 0, 20.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_capacitor(2, 0, 2e-12);
  nl.add_capacitor(3, 0, 3e-12);
  nl.add_port(1, 0);
  nl.add_port(1, 0);  // duplicate of port 0: forces a deflation
  return nl;
}

TEST(Obs, ReportDeflationAndClusterDiagnostics) {
  const MnaSystem sys = build_mna(deflation_forcing_netlist());
  SympvlOptions opt;
  opt.order = 3;
  SympvlReport report;
  sympvl_reduce(sys, opt, &report);

  EXPECT_GE(report.deflations, 1);
  // Cluster structure covers exactly the accepted vectors.
  Index total = 0;
  for (Index sz : report.cluster_sizes) {
    EXPECT_GE(sz, 1);
    total += sz;
  }
  EXPECT_EQ(total, report.achieved_order);
  // Stage timings were measured and compose into the total.
  EXPECT_GE(report.factor_seconds, 0.0);
  EXPECT_NEAR(report.total_seconds,
              report.factor_seconds + report.start_block_seconds +
                  report.lanczos_seconds,
              1e-12);
  // Sparse path was used, so factorization telemetry is populated.
  EXPECT_FALSE(report.used_dense_fallback);
  EXPECT_GT(report.factor_fill_ratio, 0.0);
  EXPECT_GT(report.factor_flops, 0.0);
  // Moment-match property (eq. 20): the model's 0th moment reproduces
  // Bᵀ(G+s₀C)⁻¹B once the starting block is captured.
  EXPECT_LT(report.moment0_residual, 1e-8);
}

TEST(Obs, EventStreamAgreesWithReportCounters) {
  ObsGuard guard(true);
  const MnaSystem sys = build_mna(deflation_forcing_netlist());
  SympvlOptions opt;
  opt.order = 3;
  SympvlReport report;
  sympvl_reduce(sys, opt, &report);

  const auto events = obs::snapshot_events();
  // Per-iteration instants agree with the final report.
  EXPECT_EQ(count_events(events, "lanczos.deflation", 'i'),
            static_cast<int>(report.deflations));
  EXPECT_EQ(count_events(events, "lanczos.cluster_close", 'i'),
            static_cast<int>(report.cluster_sizes.size()));
  // Every deflation instant carries the norm-vs-tolerance evidence.
  for (const auto& e : events) {
    if (std::strcmp(e.name, "lanczos.deflation") != 0) continue;
    const obs::Arg* norm = find_arg(e, "norm");
    const obs::Arg* ref = find_arg(e, "ref_norm");
    const obs::Arg* tol = find_arg(e, "deflation_tol");
    ASSERT_NE(norm, nullptr);
    ASSERT_NE(ref, nullptr);
    ASSERT_NE(tol, nullptr);
    EXPECT_LE(norm->num, tol->num * ref->num);
  }
  // Cluster-close sizes match the reported cluster structure, in order.
  size_t idx = 0;
  for (const auto& e : events) {
    if (std::strcmp(e.name, "lanczos.cluster_close") != 0) continue;
    const obs::Arg* size = find_arg(e, "size");
    ASSERT_NE(size, nullptr);
    ASSERT_LT(idx, report.cluster_sizes.size());
    EXPECT_EQ(static_cast<Index>(size->num), report.cluster_sizes[idx++]);
  }
  // Pipeline stage spans were recorded.
  EXPECT_EQ(count_events(events, "sympvl.factor", 'X'), 1);
  EXPECT_EQ(count_events(events, "sympvl.start_block", 'X'), 1);
  EXPECT_EQ(count_events(events, "sympvl.lanczos", 'X'), 1);
  EXPECT_EQ(count_events(events, "ldlt.factor", 'X'), 1);
  // Interned counters match the event stream.
  EXPECT_EQ(obs::counter("lanczos.deflations").value(),
            static_cast<double>(report.deflations));
  EXPECT_EQ(obs::counter("lanczos.steps").value(),
            static_cast<double>(report.achieved_order));
}

TEST(Obs, WriteChromeTraceProducesParseableJson) {
  ObsGuard guard(true);
  {
    obs::ScopedTimer span("test.trace_span");
    span.arg("n", Index(4));
  }
  obs::instant("test.trace_instant", {obs::arg("v", 1.0)});
  const std::string path = "test_obs_trace.json";
  obs::write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  std::remove(path.c_str());

  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"test.trace_span\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity.
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
            std::count(doc.begin(), doc.end(), ']'));
}

}  // namespace
}  // namespace sympvl
