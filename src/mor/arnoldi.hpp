// Block-Arnoldi / congruence-projection baseline (reference [16] of the
// paper; the approach later known as PRIMA).
//
// An orthonormal basis V of the block Krylov space K(G̃⁻¹C, G̃⁻¹B) is built
// with a block Arnoldi process and the original matrices are congruence-
// projected: Gr = VᵀG̃V, Cr = VᵀCV, Br = VᵀB. The projected model matches
// only ⌊n/p⌋ moments — half the 2⌊n/p⌋ of the matrix-Padé approach — which
// is exactly the trade-off bench_arnoldi_ablation quantifies.
#pragma once

#include "circuit/mna.hpp"
#include "linalg/dense.hpp"
#include "mor/options.hpp"

namespace sympvl {

class ArnoldiModel {
 public:
  ArnoldiModel() = default;
  ArnoldiModel(Mat gr, Mat cr, Mat br, SVariable variable, int s_prefactor,
               double s0);

  Index order() const { return gr_.rows(); }
  Index port_count() const { return br_.cols(); }
  double shift() const { return s0_; }

  /// Physical Z_r(s) = s^prefactor · Brᵀ(Gr + (f(s)−s₀)Cr)⁻¹Br.
  CMat eval(Complex s) const;

  /// kth moment Brᵀ(Gr⁻¹Cr)ᵏGr⁻¹Br about the expansion point.
  Mat moment(Index k) const;

  /// Poles in the physical s-plane (eigenvalues of the projected pencil).
  CVec poles() const;
  bool is_stable(double tol = 1e-9) const;

 private:
  Mat gr_, cr_, br_;
  SVariable variable_ = SVariable::kS;
  int s_prefactor_ = 0;
  double s0_ = 0.0;
};

/// Block-Arnoldi options: the shared base with a tighter deflation
/// default (orthonormal bases tolerate — and benefit from — a smaller
/// threshold than the indefinite Lanczos process).
struct ArnoldiOptions : CommonReductionOptions {
  ArnoldiOptions() { deflation_tol = 1e-10; }
};

/// Runs the block Arnoldi reduction.
ArnoldiModel arnoldi_reduce(const MnaSystem& sys, const ArnoldiOptions& options);

}  // namespace sympvl
