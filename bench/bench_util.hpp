// Shared helpers for the experiment benches: each bench binary prints the
// data series of one paper figure/claim as CSV on stdout, then runs
// google-benchmark timings for the algorithmic kernels involved.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "linalg/dense.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/sweep.hpp"

namespace sympvl::bench {

/// Prints a CSV header line: columns joined by commas, prefixed by a
/// section banner so the output of consecutive tables stays readable.
inline void csv_begin(const std::string& title,
                      const std::vector<std::string>& columns) {
  std::printf("\n### %s\n", title.c_str());
  for (size_t i = 0; i < columns.size(); ++i)
    std::printf("%s%s", i ? "," : "", columns[i].c_str());
  std::printf("\n");
}

inline void csv_row(const std::vector<double>& values) {
  for (size_t i = 0; i < values.size(); ++i)
    std::printf("%s%.8e", i ? "," : "", values[i]);
  std::printf("\n");
}

/// Max relative deviation between two complex matrices.
inline double max_rel_err(const CMat& a, const CMat& b) {
  double num = 0.0;
  const double den = b.max_abs() + 1e-300;
  for (Index i = 0; i < a.rows(); ++i)
    for (Index j = 0; j < a.cols(); ++j)
      num = std::max(num, std::abs(a(i, j) - b(i, j)));
  return num / den;
}

/// Max per-point max_rel_err over two whole sweeps, scanned in parallel
/// (one partial max per chunk, combined serially — same result as the
/// serial scan since max is order-independent).
inline double max_rel_err_sweep(const std::vector<CMat>& a,
                                const std::vector<CMat>& b) {
  const Index count = static_cast<Index>(std::min(a.size(), b.size()));
  std::vector<double> partial(static_cast<size_t>(num_threads()), 0.0);
  parallel_for_chunks(Index(0), count, [&](Index rank, Index lo, Index hi) {
    double m = 0.0;
    for (Index k = lo; k < hi; ++k)
      m = std::max(m, max_rel_err(a[static_cast<size_t>(k)],
                                  b[static_cast<size_t>(k)]));
    partial[static_cast<size_t>(rank)] = m;
  });
  double m = 0.0;
  for (double v : partial) m = std::max(m, v);
  return m;
}

/// SweepResult-aware overloads: scan the contained matrices directly.
inline double max_rel_err_sweep(const SweepResult& a,
                                const std::vector<CMat>& b) {
  return max_rel_err_sweep(a.values, b);
}
inline double max_rel_err_sweep(const std::vector<CMat>& a,
                                const SweepResult& b) {
  return max_rel_err_sweep(a, b.values);
}
inline double max_rel_err_sweep(const SweepResult& a, const SweepResult& b) {
  return max_rel_err_sweep(a.values, b.values);
}

/// Writes a flat JSON object of numeric results to `path` — the uniform
/// machine-readable format for all BENCH_*.json perf-trajectory files.
/// Every file carries a "meta" block (host, thread config, compiler,
/// build type) so perf numbers stay attributable to the machine and
/// build that produced them; non-finite values are emitted as null.
inline void json_emit(const std::string& path,
                      const std::vector<std::pair<std::string, double>>& kv) {
  obs::json_emit_with_meta(path, kv);
}

/// Overload with numeric-list series appended after the scalars (e.g. a
/// time-vs-ports curve); check_perf.py gates list "*_s" keys element-wise.
inline void json_emit(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& kv,
    const std::vector<std::pair<std::string, std::vector<double>>>& series) {
  obs::json_emit_with_meta(path, kv, series);
}

/// Standard main body: print the experiment tables, then run benchmarks.
/// Flushes any pending obs sinks (SYMPVL_TRACE / SYMPVL_STATS) before
/// exit so instrumented benches always produce complete trace files.
#define SYMPVL_BENCH_MAIN(print_tables_fn)                         \
  int main(int argc, char** argv) {                                \
    print_tables_fn();                                             \
    ::benchmark::Initialize(&argc, argv);                          \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                         \
    ::benchmark::Shutdown();                                       \
    ::sympvl::obs::flush();                                        \
    return 0;                                                      \
  }

}  // namespace sympvl::bench
