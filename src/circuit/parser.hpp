// SPICE-subset netlist reader and writer.
//
// Supported cards (case-insensitive, '*' comments, engineering suffixes):
//   R<name> n1 n2 value            resistor
//   C<name> n1 n2 value            capacitor
//   L<name> n1 n2 value            inductor
//   K<name> Lname1 Lname2 k        mutual inductive coupling
//   I<name> n1 n2 value            independent current source
//   .port <name> n1 [n2]           terminal pair exposed in Z(s) (top level)
//   .subckt <name> pin1 [pin2 …]   hierarchical definition
//   .ends [name]                   end of definition
//   X<name> n1 … nk <subname>      subcircuit instance (flattened on parse;
//                                  internal nodes become "<inst>.<node>")
//   .end                           optional terminator
//
// Node identifiers are arbitrary tokens; "0" and "gnd" map to the datum
// node. The writer emits the same dialect, so write→parse round-trips.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"

namespace sympvl {

/// Parses a netlist from text. Throws sympvl::Error with a line number on
/// malformed input.
Netlist parse_netlist(const std::string& text);

/// Parses a netlist from a stream.
Netlist parse_netlist(std::istream& in);

/// Reads and parses a netlist file.
Netlist parse_netlist_file(const std::string& path);

/// Serializes `netlist` in the dialect above (nodes as integers, datum "0").
std::string write_netlist(const Netlist& netlist, const std::string& title = "");

/// Wraps a netlist as a reusable `.subckt` block whose pins are the
/// netlist's ports (each must be ground-referenced). This is how a
/// SyMPVL-synthesized reduced circuit (Section 6) is handed to an existing
/// circuit simulator.
std::string write_subckt(const Netlist& netlist, const std::string& name,
                         const std::string& title = "");

/// Parses an engineering-notation value: 4.7k, 100n, 2meg, 1e-12, 3p...
/// Recognized suffixes: f p n u m k meg g t (SPICE semantics, case
/// insensitive). Throws on malformed numbers.
double parse_value(const std::string& token);

}  // namespace sympvl
