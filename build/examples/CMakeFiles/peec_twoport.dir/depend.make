# Empty dependencies file for peec_twoport.
# This may be replaced when dependencies are built.
