#include "mor/sypvl.hpp"

#include <cmath>
#include <memory>

#include "fault.hpp"
#include "mor/pencil.hpp"

namespace sympvl {

ReducedModel sypvl_reduce(const MnaSystem& sys, const SympvlOptions& options,
                          SympvlReport* report) {
  require(sys.port_count() == 1, ErrorCode::kInvalidArgument,
          "sypvl_reduce: system must have exactly one port",
          {.stage = "sypvl", .value = double(sys.port_count())});
  require(options.order >= 1, ErrorCode::kInvalidArgument,
          "sypvl_reduce: order must be >= 1", {.stage = "sypvl"});

  // Factor G + s₀C = M J Mᵀ through the shared cache (sparse path only;
  // SyPVL predates the dense fallback and the circuits it targets are
  // always sparse). Attempts land in the report's recovery trail like the
  // SyMPVL ladder.
  PencilFactorRequest req;
  req.s0 = options.s0;
  req.auto_shift = options.auto_shift;
  req.ordering = options.ordering;
  req.driver = "sypvl_reduce";
  req.stage = "sypvl.factor";
  req.cache = options.factor_cache;
  req.cache_options = options.cache;
  req.kernels = options.kernel;
  req.rhs_width = sys.port_count();
  PencilFactorResult outcome = factor_pencil(sys, req);
  const std::shared_ptr<const FactorizedPencil> fact = outcome.pencil;
  const double s0 = outcome.s0_used;
  const std::vector<FactorAttemptRecord>& attempts = outcome.attempts;
  const Vec& j = fact->j_signs();
  const Index big_n = sys.size();

  auto apply_op = [&](const Vec& v) { return fact->apply(v); };

  const Index n_max = std::min(options.order, big_n);
  Mat t(n_max, n_max);
  Mat delta(n_max, n_max);
  Mat rho(n_max, 1);

  // v̂₁ = J M⁻¹ b (step 0 of Algorithm 1 with p = 1).
  Vec vh = fact->solve_m(sys.B.col(0));
  for (size_t i = 0; i < vh.size(); ++i) vh[i] *= j[i];
  const double rho1 = norm2(vh);
  require(rho1 > 0.0, ErrorCode::kInvalidArgument,
          "sypvl_reduce: zero starting vector", {.stage = "sypvl.start"});

  std::vector<Vec> vs;
  vs.reserve(static_cast<size_t>(n_max));
  Vec deltas;
  Index n = 0;
  bool exhausted = false;
  LanczosDiagnosis diagnosis;

  scale(vh, 1.0 / rho1);
  rho(0, 0) = rho1;

  while (n < n_max) {
    // Accept v_{n+1} = vh.
    vs.push_back(vh);
    Vec jv(vh);
    for (size_t i = 0; i < jv.size(); ++i) jv[i] *= j[i];
    double dn = dot(vh, jv);
    if (fault::active() && fault::triggered("sypvl.delta", n)) dn = 0.0;
    if (std::abs(dn) <= options.lookahead_tol) {
      // Serious breakdown (δₙ ≈ 0): the unblocked recurrence has no
      // look-ahead, so truncate at the last healthy order and report —
      // except on the very first step, where no model exists at all.
      vs.pop_back();
      diagnosis.breakdown = true;
      diagnosis.cluster = n;
      diagnosis.cluster_size = 1;
      diagnosis.min_abs_eig = std::abs(dn);
      diagnosis.tol = options.lookahead_tol;
      diagnosis.message =
          "sypvl_reduce: serious breakdown — |delta_" + std::to_string(n + 1) +
          "| = " + std::to_string(std::abs(dn)) +
          " <= lookahead_tol = " + std::to_string(options.lookahead_tol) +
          "; truncated at order " + std::to_string(n) +
          " (use sympvl_reduce with look-ahead, or retry with a different "
          "expansion point s0, eq. 26)";
      if (n == 0)
        throw Error(ErrorCode::kBreakdown, diagnosis.message,
                    {.stage = "sypvl.lanczos", .index = 0,
                     .value = std::abs(dn)});
      break;
    }
    deltas.push_back(dn);
    delta(n, n) = dn;
    ++n;

    // Three-term recurrence: w = Op v_n − α v_n − t_{n-1,n} v_{n-1}.
    // The diagonal coefficient is needed even for the final vector.
    Vec w = apply_op(vs.back());
    const double w_ref = norm2(w);  // scale for the relative deflation test
    const double alpha = dot(jv, w) / dn;  // vᵀJ(Op v)/δ
    t(n - 1, n - 1) = alpha;
    axpy(-alpha, vs.back(), w);
    if (n >= 2) {
      // t_{n-1,n} = δ_n t_{n,n-1} / δ_{n-1} (J-symmetry of ΔT).
      const double tupper = dn * t(n - 1, n - 2) / deltas[static_cast<size_t>(n) - 2];
      t(n - 2, n - 1) = tupper;
      axpy(-tupper, vs[static_cast<size_t>(n) - 2], w);
    }
    if (n == n_max) break;
    const double beta = norm2(w);
    if (w_ref == 0.0 || beta <= options.deflation_tol * w_ref) {
      exhausted = true;  // Krylov space exhausted: Zₙ = Z
      break;
    }
    t(n, n - 1) = beta;
    scale(w, 1.0 / beta);
    vh = std::move(w);
  }

  LanczosResult res;
  res.n = n;
  res.p1 = 1;
  res.exhausted = exhausted;
  res.deflations = exhausted ? 1 : 0;
  res.cluster_sizes.assign(static_cast<size_t>(n), 1);
  res.t = t.block(0, n, 0, n);
  res.delta = delta.block(0, n, 0, n);
  res.rho = rho.block(0, n, 0, 1);
  res.diagnosis = diagnosis;

  if (report != nullptr) {
    report->s0_used = s0;
    report->used_dense_fallback = false;
    report->negative_j = 0;
    for (double jk : j)
      if (jk < 0.0) ++report->negative_j;
    report->deflations = res.deflations;
    report->exhausted = exhausted;
    report->achieved_order = n;
    report->lookahead_clusters = 0;
    report->factor_attempts = attempts;
    report->recovered = attempts.size() > 1;
    report->lanczos_diagnosis = diagnosis;
    report->breakdown = diagnosis.breakdown;
  }
  return ReducedModel(res, sys.variable, sys.s_prefactor, s0);
}

SypvlCoefficients sypvl_coefficients(const ReducedModel& model) {
  require(model.port_count() == 1,
          "sypvl_coefficients: model must be single-port");
  const Index n = model.order();
  SypvlCoefficients c;
  c.rho1 = model.rho()(0, 0);
  c.diag.resize(static_cast<size_t>(n));
  c.deltas.resize(static_cast<size_t>(n));
  if (n > 1) c.sub.resize(static_cast<size_t>(n) - 1);
  for (Index i = 0; i < n; ++i) {
    c.diag[static_cast<size_t>(i)] = model.t()(i, i);
    c.deltas[static_cast<size_t>(i)] = model.delta()(i, i);
    if (i + 1 < n) c.sub[static_cast<size_t>(i)] = model.t()(i + 1, i);
  }
  return c;
}

}  // namespace sympvl
