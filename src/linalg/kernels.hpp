// Cache-blocked dense panel kernels and the supernode machinery behind
// the supernodal LDLᵀ factorization path.
//
// The up-looking simplicial SparseLDLT eliminates one column at a time
// with scattered scalar updates; on the large quasi-banded MNA pencils
// of the paper's package/PEEC examples most adjacent columns share an
// identical lower structure, so the factorization can instead operate on
// dense column panels ("supernodes"): one rank-k GEMM-style update per
// descendant supernode and one dense in-panel LDLᵀ per panel, with unit
// stride inner loops instead of index-gathered AXPYs. This header holds
//
//   * KernelPath / KernelOptions — the public selector between the
//     simplicial and supernodal paths (env fallback: SYMPVL_KERNEL);
//   * detect_supernodes — fundamental supernode detection with relaxed
//     amalgamation up to a fill slack, from the elimination tree and the
//     per-column factor counts alone (O(n));
//   * the dense micro-kernels (rank-k panel update, fused AXPY/dot,
//     panel forward/backward multi-RHS solves) used by the supernodal
//     numeric phase. All kernels are templated over double/Complex and
//     instantiated in kernels.cpp.
//
// Numerical contract: the supernodal path reorders floating-point sums
// relative to the simplicial path (agreement to ~1e-12 relative), but
// the single-RHS and multi-RHS supernodal solves run per-column
// bit-identical arithmetic — both funnel through the same kernels with
// an independent accumulator chain per right-hand side.
#pragma once

#include <vector>

#include "common.hpp"

namespace sympvl {

/// Which numeric LDLᵀ kernel factors and solves.
enum class KernelPath {
  kAuto,        ///< supernodal for large systems, simplicial for tiny ones
                ///< (env SYMPVL_KERNEL=simplicial|supernodal overrides)
  kSimplicial,  ///< the up-looking column-at-a-time path
  kSupernodal,  ///< blocked panel path
};

inline const char* kernel_path_name(KernelPath p) {
  switch (p) {
    case KernelPath::kAuto: return "auto";
    case KernelPath::kSimplicial: return "simplicial";
    case KernelPath::kSupernodal: return "supernodal";
  }
  return "unknown";
}

/// Kernel-path selection and supernode amalgamation knobs. The defaults
/// are the canonical settings every driver uses; passing a non-default
/// KernelOptions to a reduction changes the factorization's rounding at
/// the 1e-15 level, so the FactorCache keys on these fields.
struct KernelOptions {
  KernelPath path = KernelPath::kAuto;
  /// Relaxed amalgamation: a column may join the current panel even when
  /// the merge stores explicit zeros, as long as the panel keeps at most
  /// `relax_zeros` of them AND they stay under `relax_ratio` of the
  /// panel's dense entry count. 0/0 admits only fundamental supernodes.
  Index relax_zeros = 64;
  double relax_ratio = 0.25;
  /// Maximum panel width (0 = unlimited). Wide panels amortize more; the
  /// rank-k update blocks internally, so no cache-motivated cap is needed.
  Index max_panel_width = 0;

  bool operator==(const KernelOptions& o) const {
    return path == o.path && relax_zeros == o.relax_zeros &&
           relax_ratio == o.relax_ratio && max_panel_width == o.max_panel_width;
  }
};

/// Resolves kAuto: an explicit path wins; else the SYMPVL_KERNEL
/// environment variable ("simplicial" | "supernodal" | "auto"); else
/// supernodal for n >= 48 and simplicial below (panel bookkeeping does
/// not pay for itself on tiny systems).
KernelPath resolve_kernel_path(const KernelOptions& options, Index n);

/// FactorCache behavior for one reduction/sweep. Lives here (rather than
/// factor_cache.hpp) so CommonReductionOptions can hold it by value
/// without pulling the whole factorization stack into every driver
/// header. Environment fallbacks, applied to the process-global cache on
/// first use: SYMPVL_FACTOR_CACHE=0|off disables it,
/// SYMPVL_FACTOR_CACHE_CAP=<n> sets its capacity.
struct CacheOptions {
  /// false bypasses the cache for this reduction (every factorization
  /// runs fresh); it never re-enables a cache disabled via environment.
  bool enabled = true;
  /// Resizes the cache used by this reduction before the first acquire
  /// (0 = leave the cache's current capacity alone).
  std::size_t capacity = 0;

  bool operator==(const CacheOptions& o) const {
    return enabled == o.enabled && capacity == o.capacity;
  }
};

/// Supernode partition of the factor's columns: `start` holds the first
/// column of each supernode plus a terminating n, so supernode s spans
/// [start[s], start[s+1]).
struct SupernodePartition {
  std::vector<Index> start;
  /// Explicit zeros the relaxed panels store (0 with relaxation off).
  Index zeros = 0;
  /// Total dense panel entries (triangle + below-rows rectangle).
  Index panel_entries = 0;

  Index count() const { return static_cast<Index>(start.size()) - 1; }
  Index max_width() const {
    Index w = 0;
    for (size_t s = 0; s + 1 < start.size(); ++s)
      w = std::max(w, start[s + 1] - start[s]);
    return w;
  }
};

/// Detects supernodes from the elimination tree `parent` and the
/// per-column off-diagonal factor counts `lnz` (both over the permuted
/// pattern). Columns j-1 and j share a supernode only when
/// parent[j-1] == j (an elimination-tree chain, which guarantees the
/// merged panel's below-rows are exactly struct(last column)); the merge
/// is accepted when it introduces no explicit zeros (fundamental) or
/// stays within the relaxed-amalgamation slack of `options`.
SupernodePartition detect_supernodes(const std::vector<Index>& parent,
                                     const std::vector<Index>& lnz,
                                     const KernelOptions& options);

namespace kernels {

// All pointers are __restrict-qualified in the implementations; callers
// must not alias output with inputs.

/// y[0..n) += alpha * x[0..n)  (unrolled fused AXPY).
template <typename T>
void axpy_n(Index n, T alpha, const T* x, T* y);

/// Unrolled dot product sum(a[i] * b[i]), no conjugation (the factor is
/// complex symmetric, not Hermitian).
template <typename T>
T dot_n(Index n, const T* a, const T* b);

/// x[0..n) *= alpha.
template <typename T>
void scale_n(Index n, T alpha, T* x);

/// Rank-k panel update C += A · Bᵀ with column-major operands:
/// A is m×k (lda), B is q×k (ldb), C is m×q (ldc). Register-blocked
/// 4-column × 4-rank micro-kernel with contiguous unit-stride streams —
/// the workhorse of the descendant-supernode update.
template <typename T>
void gemm_nt_acc(Index m, Index q, Index k, const T* a, Index lda, const T* b,
                 Index ldb, T* c, Index ldc);

/// Dense in-panel LDLᵀ over a column-major h×w panel (ld = h): the top
/// w×w triangle is factored in place (unit lower L, pivots left on the
/// diagonal) and the trailing (h-w)×w block becomes the below-panel L
/// rows. Right-looking with fused column AXPYs. Returns the flop count.
/// Pivot acceptance is the caller's job: `pivot` is invoked with
/// (local_column, pivot_value) before the column is used for scaling and
/// may throw.
template <typename T, typename PivotFn>
double panel_ldlt(Index h, Index w, T* panel, const PivotFn& pivot) {
  double flops = 0.0;
  for (Index j = 0; j < w; ++j) {
    T* colj = panel + j * h;
    const T dj = colj[j];
    pivot(j, dj);
    const Index below = h - j - 1;
    // Scale column j below the diagonal: L(i,j) = P(i,j) / d_j.
    scale_n(below, T(1) / dj, colj + j + 1);
    // Trailing update: P(i,k) -= L(i,j)·d_j·L(k,j) for i ≥ k > j. Only the
    // lower triangle of the panel is stored, so the multiplier L(k,j)
    // reads from the freshly scaled column j.
    for (Index k = j + 1; k < w; ++k) {
      T* colk = panel + k * h;
      const T mult = colj[k] * dj;
      axpy_n(h - k, -mult, colj + k, colk + k);
    }
    flops += static_cast<double>(below) +
             2.0 * static_cast<double>(below) * static_cast<double>(w - j - 1);
  }
  return flops;
}

/// Multi-RHS forward below-panel update: for each below row i,
///   X[rows[i], :] -= Σ_j  Lbelow(i, j) · Xtop[j, :]
/// with Lbelow the (r×w) below-rows block of a column-major panel
/// (element (i,j) at lbelow[j*ld + i]), Xtop the panel's top rows
/// (w×nrhs, row-major, stride nrhs) and X the full right-hand-side block
/// (row-major, stride nrhs). Each (row, rhs-column) pair accumulates in
/// one scalar chain over j — bit-identical for nrhs == 1 and nrhs == p.
template <typename T>
void below_forward(Index r, Index w, Index nrhs, const T* lbelow, Index ld,
                   const Index* rows, const T* xtop, T* x);

/// Multi-RHS backward below-panel update: for each panel column j,
///   Xtop[j, :] -= Σ_i  Lbelow(i, j) · X[rows[i], :]
/// (the transpose of below_forward; same accumulation contract).
template <typename T>
void below_backward(Index r, Index w, Index nrhs, const T* lbelow, Index ld,
                    const Index* rows, const T* x, T* xtop);

extern template void axpy_n<double>(Index, double, const double*, double*);
extern template void axpy_n<Complex>(Index, Complex, const Complex*, Complex*);
extern template double dot_n<double>(Index, const double*, const double*);
extern template Complex dot_n<Complex>(Index, const Complex*, const Complex*);
extern template void scale_n<double>(Index, double, double*);
extern template void scale_n<Complex>(Index, Complex, Complex*);
extern template void gemm_nt_acc<double>(Index, Index, Index, const double*,
                                         Index, const double*, Index, double*,
                                         Index);
extern template void gemm_nt_acc<Complex>(Index, Index, Index, const Complex*,
                                          Index, const Complex*, Index,
                                          Complex*, Index);
extern template void below_forward<double>(Index, Index, Index, const double*,
                                           Index, const Index*, const double*,
                                           double*);
extern template void below_forward<Complex>(Index, Index, Index, const Complex*,
                                            Index, const Index*, const Complex*,
                                            Complex*);
extern template void below_backward<double>(Index, Index, Index, const double*,
                                            Index, const Index*, const double*,
                                            double*);
extern template void below_backward<Complex>(Index, Index, Index, const Complex*,
                                             Index, const Index*, const Complex*,
                                             Complex*);

}  // namespace kernels

}  // namespace sympvl
