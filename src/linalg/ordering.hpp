// Fill-reducing ordering for sparse symmetric factorization.
//
// Reverse Cuthill-McKee produces a small-bandwidth permutation which keeps
// the unpivoted LDLᵀ fill modest for the banded/laddered matrices produced
// by circuit MNA stamping.
#pragma once

#include <vector>

#include "linalg/sparse.hpp"

namespace sympvl {

/// Fill-reducing pre-ordering selector for the sparse factorizations.
enum class Ordering {
  kNatural,    ///< factor A as given
  kRCM,        ///< reverse Cuthill-McKee pre-ordering (default)
  kMinDegree,  ///< quotient-graph minimum-degree ordering
};

/// Stable display name (used in telemetry and reports).
inline const char* ordering_name(Ordering o) {
  switch (o) {
    case Ordering::kNatural: return "natural";
    case Ordering::kRCM: return "rcm";
    case Ordering::kMinDegree: return "mindegree";
  }
  return "unknown";
}

/// Symmetric adjacency structure (pattern of A + Aᵀ without the diagonal).
struct AdjacencyGraph {
  std::vector<Index> ptr;  // size n+1
  std::vector<Index> adj;  // neighbor lists

  Index size() const { return static_cast<Index>(ptr.size()) - 1; }
  Index degree(Index v) const {
    return ptr[static_cast<size_t>(v) + 1] - ptr[static_cast<size_t>(v)];
  }
};

/// Builds the undirected adjacency graph of a square sparse pattern.
template <typename T>
AdjacencyGraph build_graph(const SparseMatrix<T>& a);

/// Reverse Cuthill-McKee ordering. Returns `perm` with perm[new] = old.
/// Handles disconnected graphs (each component ordered from a
/// pseudo-peripheral start node).
std::vector<Index> rcm_ordering(const AdjacencyGraph& g);

/// Convenience: RCM permutation of a sparse symmetric matrix's pattern.
template <typename T>
std::vector<Index> rcm_ordering(const SparseMatrix<T>& a) {
  return rcm_ordering(build_graph(a));
}

/// Minimum-degree ordering on the quotient (elimination) graph: at every
/// step the variable of smallest external degree is eliminated and its
/// neighborhood merged into a new element. Produces markedly less fill
/// than RCM on mesh-like circuits (see bench_ordering_ablation); RCM
/// remains cheaper to compute.
std::vector<Index> min_degree_ordering(const AdjacencyGraph& g);

template <typename T>
std::vector<Index> min_degree_ordering(const SparseMatrix<T>& a) {
  return min_degree_ordering(build_graph(a));
}

/// Dispatch on the Ordering enum (kNatural/kRCM/kMinDegree).
template <typename T>
std::vector<Index> make_ordering(const SparseMatrix<T>& a, Ordering ordering);

/// Identity permutation of size n.
std::vector<Index> natural_ordering(Index n);

/// Number of off-diagonal L entries the Cholesky/LDLᵀ factorization of the
/// pattern would create under the given permutation (symbolic count via
/// the elimination tree).
template <typename T>
Index symbolic_fill(const SparseMatrix<T>& a, const std::vector<Index>& perm);

extern template std::vector<Index> make_ordering<double>(const SMat&, Ordering);
extern template std::vector<Index> make_ordering<Complex>(const CSMat&, Ordering);
extern template Index symbolic_fill<double>(const SMat&, const std::vector<Index>&);
extern template Index symbolic_fill<Complex>(const CSMat&, const std::vector<Index>&);

/// Bandwidth of a square sparse matrix (max |i-j| over stored entries).
template <typename T>
Index bandwidth(const SparseMatrix<T>& a);

extern template AdjacencyGraph build_graph<double>(const SMat&);
extern template AdjacencyGraph build_graph<Complex>(const CSMat&);
extern template Index bandwidth<double>(const SMat&);
extern template Index bandwidth<Complex>(const CSMat&);

}  // namespace sympvl
