# Empty dependencies file for model_workflow.
# This may be replaced when dependencies are built.
