#include "mor/port_shard.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <queue>
#include <utility>

#include "fault.hpp"
#include "mor/pencil.hpp"
#include "mor/rational.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace sympvl {

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---- Partitioning ----------------------------------------------------------

// Anchor node of port j: the row where its B column injects most.
Index port_anchor(const Mat& b, Index j) {
  Index best = 0;
  double best_abs = -1.0;
  for (Index i = 0; i < b.rows(); ++i) {
    const double a = std::abs(b(i, j));
    if (a > best_abs) {
      best_abs = a;
      best = i;
    }
  }
  return best;
}

// Undirected adjacency of the combined G/C sparsity pattern (diagonal
// dropped) — the "electrical proximity" graph of the pencil.
std::vector<std::vector<Index>> pencil_adjacency(const SMat& g, const SMat& c) {
  const Index n = g.rows();
  std::vector<std::vector<Index>> adj(static_cast<size_t>(n));
  const auto absorb = [&](const SMat& m) {
    const auto& colptr = m.colptr();
    const auto& rowind = m.rowind();
    for (Index j = 0; j < m.cols(); ++j)
      for (Index k = colptr[static_cast<size_t>(j)];
           k < colptr[static_cast<size_t>(j) + 1]; ++k) {
        const Index i = rowind[static_cast<size_t>(k)];
        if (i == j) continue;
        adj[static_cast<size_t>(i)].push_back(j);
        adj[static_cast<size_t>(j)].push_back(i);
      }
  };
  absorb(g);
  absorb(c);
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adj;
}

// Multi-source BFS labelling: every node gets the label of the nearest
// seed (first reach wins; ties break toward the earlier seed because the
// queue is processed in seed order). -1 = unreachable.
std::vector<Index> bfs_label(const std::vector<std::vector<Index>>& adj,
                             const std::vector<Index>& seeds) {
  std::vector<Index> label(adj.size(), -1);
  std::queue<Index> q;
  for (size_t s = 0; s < seeds.size(); ++s) {
    const Index node = seeds[s];
    if (label[static_cast<size_t>(node)] >= 0) continue;  // duplicate seed
    label[static_cast<size_t>(node)] = static_cast<Index>(s);
    q.push(node);
  }
  while (!q.empty()) {
    const Index u = q.front();
    q.pop();
    for (Index v : adj[static_cast<size_t>(u)])
      if (label[static_cast<size_t>(v)] < 0) {
        label[static_cast<size_t>(v)] = label[static_cast<size_t>(u)];
        q.push(v);
      }
  }
  return label;
}

// BFS distances from a seed set (for farthest-point seeding).
std::vector<Index> bfs_distance(const std::vector<std::vector<Index>>& adj,
                                const std::vector<Index>& seeds) {
  std::vector<Index> dist(adj.size(), -1);
  std::queue<Index> q;
  for (Index s : seeds) {
    if (dist[static_cast<size_t>(s)] == 0) continue;
    dist[static_cast<size_t>(s)] = 0;
    q.push(s);
  }
  while (!q.empty()) {
    const Index u = q.front();
    q.pop();
    for (Index v : adj[static_cast<size_t>(u)])
      if (dist[static_cast<size_t>(v)] < 0) {
        dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
        q.push(v);
      }
  }
  return dist;
}

std::vector<Index> electrical_partition(const MnaSystem& sys, Index shards) {
  const Index p = sys.port_count();
  std::vector<Index> anchor(static_cast<size_t>(p));
  for (Index j = 0; j < p; ++j)
    anchor[static_cast<size_t>(j)] = port_anchor(sys.B, j);
  const auto adj = pencil_adjacency(sys.G, sys.C);

  // Farthest-point seeding over the port anchors: seed 0 is port 0's
  // anchor; each next seed is the anchor farthest from the current seed
  // set (unreachable counts as farthest; ties to the lower port index).
  std::vector<Index> seeds{anchor[0]};
  while (static_cast<Index>(seeds.size()) < shards) {
    const std::vector<Index> dist = bfs_distance(adj, seeds);
    Index best_port = -1;
    Index best_dist = -2;
    for (Index j = 0; j < p; ++j) {
      const Index a = anchor[static_cast<size_t>(j)];
      if (std::find(seeds.begin(), seeds.end(), a) != seeds.end()) continue;
      const Index d = dist[static_cast<size_t>(a)];
      const Index score = d < 0 ? std::numeric_limits<Index>::max() : d;
      if (best_port < 0 || score > best_dist) {
        best_port = j;
        best_dist = score;
      }
    }
    if (best_port < 0) break;  // fewer distinct anchors than shards
    seeds.push_back(anchor[static_cast<size_t>(best_port)]);
  }

  const std::vector<Index> label = bfs_label(adj, seeds);
  std::vector<Index> assign(static_cast<size_t>(p));
  for (Index j = 0; j < p; ++j) {
    const Index l = label[static_cast<size_t>(anchor[static_cast<size_t>(j)])];
    // Unreachable anchors (or a seed shortfall) fall back to round-robin.
    assign[static_cast<size_t>(j)] = l >= 0 ? l % shards : j % shards;
  }
  return assign;
}

// ---- Stitch kernels --------------------------------------------------------

// C = AᵀB for a symmetric product (Ar = VᵀJV, Cr = VᵀM⁻¹CM⁻ᵀV): only the
// lower block triangle is accumulated and then mirrored — this halves
// the flops AND is the numerical symmetrization. Blocked so the output
// tile stays in L1 while the k-loop streams contiguous row segments of
// the (row-major) inputs; the naive k-outer kernel walks the full n×n
// accumulator once per row, which thrashes at stitch sizes (n ≈ 512 →
// 2 MB per sweep).
Mat sym_gram(const Mat& a, const Mat& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(),
          "sym_gram: shape mismatch");
  const Index big_n = a.rows();
  const Index n = a.cols();
  constexpr Index kBlock = 48;
  Mat c(n, n);
  for (Index j0 = 0; j0 < n; j0 += kBlock) {
    const Index j1 = std::min(n, j0 + kBlock);
    for (Index i0 = j0; i0 < n; i0 += kBlock) {
      const Index i1 = std::min(n, i0 + kBlock);
      for (Index k = 0; k < big_n; ++k) {
        const double* arow = a.data() + k * n;
        const double* brow = b.data() + k * n;
        for (Index i = i0; i < i1; ++i) {
          const double aik = arow[i];
          if (aik == 0.0) continue;
          double* crow = c.data() + i * n;
          const Index jend = std::min(j1, i + 1);
          for (Index j = j0; j < jend; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
  for (Index i = 0; i < n; ++i)
    for (Index j = i + 1; j < n; ++j) c(i, j) = c(j, i);
  return c;
}

// Pivot-guarded lower Cholesky of a symmetric matrix. Returns false
// (leaving `l` unspecified) when any pivot falls below tol·max|diag| —
// the union Gram is then numerically rank deficient and the caller must
// take the robust MGS stitch instead of trusting the whitening.
bool guarded_cholesky(const Mat& a, double tol, Mat* l) {
  const Index n = a.rows();
  double max_diag = 0.0;
  for (Index i = 0; i < n; ++i) max_diag = std::max(max_diag, std::abs(a(i, i)));
  if (max_diag <= 0.0) return false;
  *l = Mat(n, n);
  Mat& ll = *l;
  for (Index j = 0; j < n; ++j) {
    double d = a(j, j);
    for (Index k = 0; k < j; ++k) d -= ll(j, k) * ll(j, k);
    if (!(d > tol * max_diag)) return false;
    const double root = std::sqrt(d);
    ll(j, j) = root;
    for (Index i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (Index k = 0; k < j; ++k) s -= ll(i, k) * ll(j, k);
      ll(i, j) = s / root;
    }
  }
  return true;
}

// X := L⁻¹X (forward substitution, every column).
void solve_lower_inplace(const Mat& l, Mat* x) {
  const Index n = l.rows();
  const Index m = x->cols();
  Mat& xx = *x;
  for (Index i = 0; i < n; ++i) {
    const double d = l(i, i);
    for (Index c = 0; c < m; ++c) {
      double s = xx(i, c);
      for (Index k = 0; k < i; ++k) s -= l(i, k) * xx(k, c);
      xx(i, c) = s / d;
    }
  }
}

// Per-shard outcome collected under the parallel region; slot k is only
// ever written by the chunk that owns shard k.
struct ShardRun {
  bool ok = false;
  Mat basis;          // N×n_k Lanczos vectors (M-transformed coordinates)
  Mat rho;            // n_k×p_k starting-block coefficients
  SympvlReport report;
  ReductionIssue issue;  // valid when !ok
  bool failed = false;
};

}  // namespace

Index resolve_shard_count(const PortShardOptions& options, Index ports) {
  Index k = options.shards;
  if (k <= 0) {
    // Mirrors the CacheOptions/KernelOptions pattern: the environment
    // backstops an unset option, read per call so tests can setenv.
    if (const char* env = std::getenv("SYMPVL_PORT_SHARDS"))
      if (*env != '\0') k = static_cast<Index>(std::atol(env));
  }
  if (k <= 0) {
    const Index floor_ports = std::max<Index>(options.min_ports_per_shard, 1);
    if (ports < 2 * floor_ports) {
      k = 1;
    } else {
      k = std::clamp<Index>(ports / 32, 2, ports / floor_ports);
    }
  }
  return std::clamp<Index>(k, 1, std::max<Index>(ports, 1));
}

std::vector<Index> partition_ports(const MnaSystem& sys, Index shards,
                                   ShardClustering clustering) {
  const Index p = sys.port_count();
  require(shards >= 1 && shards <= p, ErrorCode::kInvalidArgument,
          "partition_ports: shard count out of range");
  if (shards == 1) return std::vector<Index>(static_cast<size_t>(p), 0);
  if (clustering == ShardClustering::kRoundRobin) {
    std::vector<Index> assign(static_cast<size_t>(p));
    for (Index j = 0; j < p; ++j) assign[static_cast<size_t>(j)] = j % shards;
    return assign;
  }
  return electrical_partition(sys, shards);
}

ShardedSympvlResult sharded_sympvl_reduce(const MnaSystem& sys,
                                          const SympvlOptions& options) {
  const auto t_total = std::chrono::steady_clock::now();
  const Index p = sys.port_count();
  require(p >= 1, ErrorCode::kInvalidArgument,
          "sharded_sympvl_reduce: system has no ports");
  require(options.order >= 1, ErrorCode::kInvalidArgument,
          "sharded_sympvl_reduce: order must be >= 1");

  ShardedSympvlResult out;
  // Never more shards than requested Lanczos vectors: every shard must
  // sustain at least a 1-vector process.
  const Index shards = std::min<Index>(
      resolve_shard_count(options.shard, p), std::max<Index>(options.order, 1));

  // ---- 1 shard: the monolithic driver IS the implementation. ----
  if (shards <= 1) {
    ReductionResult<ReducedModel> mono = run_sympvl(sys, options);
    out.used_monolithic = true;
    out.monolithic = std::move(mono.model);
    out.report = std::move(mono.report);
    out.status = mono.status;
    out.diagnostics = std::move(mono.diagnostics);
    out.shard.shards = 1;
    out.shard.clustering = "monolithic";
    out.shard.port_to_shard.assign(static_cast<size_t>(p), 0);
    out.shard.shard_ports = {p};
    out.shard.shard_orders = {out.report.achieved_order};
    out.shard.stitched_order = out.report.achieved_order;
    out.shard.factor_cache_hits = out.report.factor_cache_hits;
    out.shard.factor_cache_misses = out.report.factor_cache_misses;
    out.shard.total_seconds = seconds_since(t_total);
    return out;
  }

  // ---- Partition B's columns. ----
  const auto t_partition = std::chrono::steady_clock::now();
  std::vector<Index> assign;
  {
    obs::ScopedTimer span("shard.partition");
    span.arg("ports", p);
    span.arg("shards", shards);
    assign = partition_ports(sys, shards, options.shard.clustering);
  }
  out.shard.shards = shards;
  out.shard.clustering =
      options.shard.clustering == ShardClustering::kRoundRobin ? "round_robin"
                                                               : "electrical";
  out.shard.port_to_shard = assign;
  // Global port list per shard (in ascending port order — determinism).
  std::vector<std::vector<Index>> shard_cols(static_cast<size_t>(shards));
  for (Index j = 0; j < p; ++j)
    shard_cols[static_cast<size_t>(assign[static_cast<size_t>(j)])].push_back(j);
  // Electrical clustering can leave a shard empty (fewer distinct anchor
  // regions than shards); rebalance those from round-robin so every
  // shard carries work.
  for (Index k = 0; k < shards; ++k)
    if (shard_cols[static_cast<size_t>(k)].empty()) {
      for (Index j = 0; j < p; ++j)
        if (j % shards == k &&
            shard_cols[static_cast<size_t>(assign[static_cast<size_t>(j)])]
                    .size() > 1) {
          auto& from =
              shard_cols[static_cast<size_t>(assign[static_cast<size_t>(j)])];
          from.erase(std::find(from.begin(), from.end(), j));
          assign[static_cast<size_t>(j)] = k;
          shard_cols[static_cast<size_t>(k)].push_back(j);
          break;
        }
    }
  out.shard.port_to_shard = assign;
  Index widest = 1;
  out.shard.shard_ports.resize(static_cast<size_t>(shards));
  for (Index k = 0; k < shards; ++k) {
    const Index pk =
        static_cast<Index>(shard_cols[static_cast<size_t>(k)].size());
    out.shard.shard_ports[static_cast<size_t>(k)] = pk;
    widest = std::max(widest, pk);
  }
  // Per-shard order budget ∝ shard width (largest-remainder rounding,
  // every live shard gets at least 1; deterministic).
  std::vector<Index> shard_order(static_cast<size_t>(shards), 0);
  {
    Index assigned = 0;
    std::vector<std::pair<double, Index>> frac;
    for (Index k = 0; k < shards; ++k) {
      const Index pk = out.shard.shard_ports[static_cast<size_t>(k)];
      if (pk == 0) continue;
      const double share = static_cast<double>(options.order) *
                           static_cast<double>(pk) / static_cast<double>(p);
      Index base = std::max<Index>(static_cast<Index>(share), 1);
      shard_order[static_cast<size_t>(k)] = base;
      assigned += base;
      frac.emplace_back(share - static_cast<double>(base), k);
    }
    std::sort(frac.begin(), frac.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    for (size_t i = 0; assigned < options.order && !frac.empty(); ++i) {
      shard_order[static_cast<size_t>(frac[i % frac.size()].second)] += 1;
      ++assigned;
    }
  }
  out.shard.partition_seconds = seconds_since(t_partition);

  // ---- Prime the shared factorization once (full SyMPVL ladder). Every
  //      shard then factors at the settled shift and hits the cache. ----
  const auto t_factor = std::chrono::steady_clock::now();
  PencilFactorRequest req;
  req.s0 = options.s0;
  req.auto_shift = options.auto_shift;
  req.ordering = options.ordering;
  req.full_ladder = true;
  req.allow_dense = true;
  req.driver = "sharded_sympvl";
  req.stage = "shard.factor";
  req.cache = options.factor_cache;
  req.cache_options = options.cache;
  req.kernels = options.kernel;
  // Uniform kernel resolution across priming and every shard session:
  // the widest shard width drives the rhs heuristic, and the sessions
  // below pin the same value, so all cache keys agree.
  req.rhs_width = widest;
  PencilFactorResult primed;
  try {
    obs::ScopedTimer span("shard.factor");
    span.arg("n", sys.size());
    primed = factor_pencil(sys, req);
  } catch (const Error& e) {
    out.status = ReductionStatus::kFailed;
    out.diagnostics.push_back(ReductionIssue::from_error(e));
    out.shard.total_seconds = seconds_since(t_total);
    return out;
  }
  const double s0_used = primed.s0_used;
  out.report.s0_used = s0_used;
  out.report.used_dense_fallback = primed.dense;
  for (const FactorAttemptRecord& rec : primed.attempts) {
    if (rec.success)
      ++(rec.detail == "cache hit" ? out.report.factor_cache_hits
                                   : out.report.factor_cache_misses);
    out.report.factor_attempts.push_back(rec);
  }
  out.report.factor_seconds = seconds_since(t_factor);
  out.report.negative_j = primed.pencil->negative_j();
  out.report.factor_nnz_l = primed.pencil->l_nnz();
  out.report.kernel_path = kernel_path_name(primed.pencil->kernel_path());
  out.report.factor_bytes = primed.pencil->bytes();

  // ---- Per-shard SyMPVL over the thread pool. ----
  const auto t_reduce = std::chrono::steady_clock::now();
  std::vector<ShardRun> runs(static_cast<size_t>(shards));
  {
    obs::ScopedTimer span("shard.reduce");
    span.arg("shards", shards);
    span.arg("widest", widest);
    parallel_for_chunks(0, shards, [&](Index /*rank*/, Index kb, Index ke) {
      for (Index k = kb; k < ke; ++k) {
        ShardRun& run = runs[static_cast<size_t>(k)];
        const auto& cols = shard_cols[static_cast<size_t>(k)];
        if (cols.empty()) continue;  // zero-width shard: nothing to do
        try {
          // Injected-fault site for the containment tests: one shard's
          // process dies, the others must finish and the run reports
          // kTruncated with this shard in diagnostics.
          fault::check("sympvl.delta", k);

          MnaSystem sub;
          sub.G = sys.G;
          sub.C = sys.C;
          sub.B = Mat(sys.size(), static_cast<Index>(cols.size()));
          for (size_t c = 0; c < cols.size(); ++c) {
            for (Index i = 0; i < sys.size(); ++i)
              sub.B(i, static_cast<Index>(c)) = sys.B(i, cols[c]);
            if (cols[c] < static_cast<Index>(sys.port_names.size()))
              sub.port_names.push_back(
                  sys.port_names[static_cast<size_t>(cols[c])]);
          }
          sub.variable = sys.variable;
          sub.s_prefactor = sys.s_prefactor;
          sub.definite = sys.definite;
          sub.node_unknowns = sys.node_unknowns;
          sub.inductor_unknowns = sys.inductor_unknowns;

          SympvlOptions sopt = options;
          sopt.order = shard_order[static_cast<size_t>(k)];
          sopt.s0 = s0_used;        // all shards share one factorization
          sopt.auto_shift = false;  // the priming ladder already settled it
          if (sopt.kernel.rhs_hint == 0) sopt.kernel.rhs_hint = widest;
          sopt.verbosity = 0;

          SympvlSession session(sub, sopt);
          run.basis = session.krylov_basis();
          run.rho = session.current().rho();
          run.report = session.report();
          run.ok = run.basis.cols() > 0;
          if (!run.ok) {
            run.failed = true;
            run.issue.code = ErrorCode::kBreakdown;
            run.issue.stage = "shard." + std::to_string(k);
            run.issue.message = "shard produced no healthy Lanczos vectors";
          }
        } catch (const Error& e) {
          run.failed = true;
          run.issue = ReductionIssue::from_error(e);
          run.issue.stage = "shard." + std::to_string(k) +
                            (run.issue.stage.empty() ? "" : ".") +
                            run.issue.stage;
          if (run.issue.index < 0) run.issue.index = k;
        } catch (const std::exception& e) {
          run.failed = true;
          run.issue.code = ErrorCode::kUnknown;
          run.issue.stage = "shard." + std::to_string(k);
          run.issue.message = e.what();
          run.issue.index = k;
        }
      }
    });
  }
  out.shard.reduce_seconds = seconds_since(t_reduce);
  obs::counter("shard.runs").add(static_cast<double>(shards));

  out.shard.shard_orders.assign(static_cast<size_t>(shards), 0);
  Index n_total = 0;
  bool any_breakdown = false;
  for (Index k = 0; k < shards; ++k) {
    const ShardRun& run = runs[static_cast<size_t>(k)];
    if (run.ok) {
      out.shard.shard_orders[static_cast<size_t>(k)] = run.basis.cols();
      n_total += run.basis.cols();
      out.report.lanczos_seconds += run.report.lanczos_seconds;
      out.report.start_block_seconds += run.report.start_block_seconds;
      out.report.factor_cache_hits += run.report.factor_cache_hits;
      out.report.factor_cache_misses += run.report.factor_cache_misses;
      out.report.deflations += run.report.deflations;
      out.report.krylov_peak_bytes =
          std::max(out.report.krylov_peak_bytes, run.report.krylov_peak_bytes);
      if (run.report.breakdown) any_breakdown = true;
    } else if (run.failed) {
      out.shard.failed_shards.push_back(k);
      out.diagnostics.push_back(run.issue);
      obs::counter("shard.failures").add();
    }
  }
  out.shard.factor_cache_hits = out.report.factor_cache_hits;
  out.shard.factor_cache_misses = out.report.factor_cache_misses;

  if (n_total == 0) {
    out.status = ReductionStatus::kFailed;
    out.shard.total_seconds = seconds_since(t_total);
    return out;
  }

  // ---- Stitch: union congruence model in M-transformed coordinates. ----
  const auto t_stitch = std::chrono::steady_clock::now();
  {
    obs::ScopedTimer span("shard.stitch");
    span.arg("order", n_total);

    const Index big_n = sys.size();
    const Vec& j = primed.pencil->j_signs();
    Mat v(big_n, n_total);
    std::vector<Index> offset(static_cast<size_t>(shards), 0);
    {
      Index at = 0;
      for (Index k = 0; k < shards; ++k) {
        const ShardRun& run = runs[static_cast<size_t>(k)];
        offset[static_cast<size_t>(k)] = at;
        if (!run.ok) continue;
        for (Index c = 0; c < run.basis.cols(); ++c)
          for (Index i = 0; i < big_n; ++i) v(i, at + c) = run.basis(i, c);
        at += run.basis.cols();
      }
    }

    // Ar = VᵀJV  — the union Gram of the shifted pencil: with Q = M⁻ᵀV,
    // Qᵀ(G+s₀C)Q = VᵀM⁻¹(MJMᵀ)M⁻ᵀV = VᵀJV.
    Mat jv = v;
    for (Index i = 0; i < big_n; ++i) {
      const double sign = j[static_cast<size_t>(i)];
      if (sign == 1.0) continue;
      double* row = jv.data() + i * n_total;
      for (Index c = 0; c < n_total; ++c) row[c] *= sign;
    }
    const Mat ar = sym_gram(v, jv);

    // Cr = QᵀCQ = VᵀJ·(OpV) with Op = J⁻¹M⁻¹CM⁻ᵀ — n_total extra
    // operator applications against the shared factorization.
    Mat jopv(big_n, n_total);
    for (Index c = 0; c < n_total; ++c) {
      const Vec w = primed.pencil->apply(v.col(c));
      for (Index i = 0; i < big_n; ++i)
        jopv(i, c) = j[static_cast<size_t>(i)] * w[static_cast<size_t>(i)];
    }
    const Mat cr = sym_gram(v, jopv);

    // Br = QᵀB = VᵀM⁻¹B. For a healthy shard the Lanczos relation
    // R_k = V_kρ_k gives M⁻¹B_k = J·V_kρ_k, so the block is
    // Ar(:, shard k)·ρ_k — a small GEMM, no N-dimensional work. Failed
    // shards keep exact columns via a fresh starting block.
    Mat br(n_total, p);
    for (Index k = 0; k < shards; ++k) {
      const ShardRun& run = runs[static_cast<size_t>(k)];
      const auto& cols = shard_cols[static_cast<size_t>(k)];
      if (cols.empty()) continue;
      Mat block;
      if (run.ok) {
        const Index off = offset[static_cast<size_t>(k)];
        block = ar.block(0, n_total, off, off + run.basis.cols()) * run.rho;
      } else {
        Mat bk(big_n, static_cast<Index>(cols.size()));
        for (size_t c = 0; c < cols.size(); ++c)
          for (Index i = 0; i < big_n; ++i)
            bk(i, static_cast<Index>(c)) = sys.B(i, cols[c]);
        Mat jstart = starting_block(*primed.pencil, bk);
        for (Index i = 0; i < big_n; ++i) {
          double* row = jstart.data() + i * jstart.cols();
          for (Index c = 0; c < jstart.cols(); ++c)
            row[c] *= j[static_cast<size_t>(i)];
        }
        block = matmul_transA(v, jstart);
      }
      for (size_t c = 0; c < cols.size(); ++c)
        for (Index r = 0; r < n_total; ++r)
          br(r, cols[c]) = block(r, static_cast<Index>(c));
    }

    // Fast path: CholQR whitening of the union Gram. Valid when J is
    // definite (Ar is then SPD up to cross-shard rank deficiency, which
    // the pivot guard detects); the whitened model is
    //   ḡ = I, c̄ = L⁻¹CrL⁻ᵀ, b̄ = L⁻¹Br with Ar = LLᵀ,
    // equivalent to (Ar, Cr, Br) but conditioned for evaluation.
    Mat chol;
    const bool definite_j = primed.pencil->negative_j() == 0;
    if (definite_j &&
        guarded_cholesky(ar, options.shard.stitch_tol, &chol)) {
      Mat cw = cr;
      solve_lower_inplace(chol, &cw);
      cw = cw.transpose();
      solve_lower_inplace(chol, &cw);
      for (Index i = 0; i < n_total; ++i)
        for (Index jj = i + 1; jj < n_total; ++jj)
          cw(i, jj) = cw(jj, i) = 0.5 * (cw(i, jj) + cw(jj, i));
      solve_lower_inplace(chol, &br);
      out.stitched = ArnoldiModel(Mat::identity(n_total), std::move(cw),
                                  std::move(br), sys.variable, sys.s_prefactor,
                                  s0_used);
      out.shard.stitched_order = n_total;
    } else {
      // Robust path (indefinite J, or near-dependent shard spans): map
      // the union basis back to physical coordinates W = M⁻ᵀV, MGS it
      // down to an orthonormal basis, and congruence-project the
      // original pencil — the machinery shared with rational_reduce.
      out.shard.used_fallback_stitch = true;
      std::vector<Vec> basis;
      for (Index k = 0; k < shards; ++k) {
        const ShardRun& run = runs[static_cast<size_t>(k)];
        if (!run.ok) continue;
        std::vector<Vec> block;
        const Index off = offset[static_cast<size_t>(k)];
        for (Index c = 0; c < run.basis.cols(); ++c)
          block.push_back(primed.pencil->solve_mt(v.col(off + c)));
        mgs_union_append(basis, std::move(block), options.shard.stitch_tol);
      }
      if (basis.empty()) {
        out.status = ReductionStatus::kFailed;
        ReductionIssue issue;
        issue.code = ErrorCode::kBreakdown;
        issue.stage = "shard.stitch";
        issue.message =
            "sharded_sympvl_reduce: union basis deflated to nothing";
        out.diagnostics.push_back(issue);
        out.shard.total_seconds = seconds_since(t_total);
        return out;
      }
      out.shard.stitch_dropped =
          n_total - static_cast<Index>(basis.size());
      out.shard.stitched_order = static_cast<Index>(basis.size());
      out.stitched = congruence_project(sys, basis);
    }
  }
  out.shard.stitch_seconds = seconds_since(t_stitch);

  out.report.achieved_order = out.shard.stitched_order;
  out.report.breakdown = any_breakdown;
  out.report.total_seconds = out.report.factor_seconds +
                             out.shard.partition_seconds +
                             out.shard.reduce_seconds +
                             out.shard.stitch_seconds;
  out.status = (!out.shard.failed_shards.empty() || any_breakdown)
                   ? ReductionStatus::kTruncated
                   : ReductionStatus::kOk;
  out.shard.total_seconds = seconds_since(t_total);
  obs::instant("shard.result",
               {obs::arg("shards", shards),
                obs::arg("failed",
                         static_cast<Index>(out.shard.failed_shards.size())),
                obs::arg("order", out.shard.stitched_order),
                obs::arg("status", reduction_status_name(out.status))});
  return out;
}

}  // namespace sympvl
