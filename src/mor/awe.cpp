#include "mor/awe.hpp"

#include <cmath>

#include "linalg/dense_factor.hpp"
#include "mor/moments.hpp"

namespace sympvl {

AweModel::AweModel(Vec num, Vec den, SVariable variable, int s_prefactor,
                   double s0)
    : num_(std::move(num)),
      den_(std::move(den)),
      variable_(variable),
      s_prefactor_(s_prefactor),
      s0_(s0) {
  require(!den_.empty() && den_[0] != 0.0, "AweModel: invalid denominator");
}

Complex AweModel::eval(Complex s) const {
  const Complex sigma = (variable_ == SVariable::kS ? s : s * s) - s0_;
  const Complex x = -sigma;
  // Horner evaluation of P(x)/Q(x).
  auto horner = [&](const Vec& c) {
    Complex acc(0.0, 0.0);
    for (size_t k = c.size(); k-- > 0;) acc = acc * x + c[k];
    return acc;
  };
  Complex pref(1.0, 0.0);
  for (int k = 0; k < s_prefactor_; ++k) pref *= s;
  return pref * horner(num_) / horner(den_);
}

AweModel awe_reduce(const MnaSystem& sys, Index order, double s0) {
  require(sys.port_count() == 1, "awe_reduce: system must have one port");
  require(order >= 1, "awe_reduce: order must be >= 1");
  const Index n = order;
  // 2n explicit moments m₀…m_{2n−1} — the numerically fragile step.
  const Vec m = exact_moments_scalar(sys, 2 * n, s0);

  // Hankel system for the denominator: Σ_{j=1..n} q_j·m_{n+i−j} = −m_{n+i}.
  Mat h(n, n);
  Vec rhs(static_cast<size_t>(n));
  double hnorm = 0.0;
  for (Index i = 0; i < n; ++i) {
    double row = 0.0;
    for (Index j = 0; j < n; ++j) {
      h(i, j) = m[static_cast<size_t>(n + i - j - 1)];
      row += std::abs(h(i, j));
    }
    hnorm = std::max(hnorm, row);
    rhs[static_cast<size_t>(i)] = -m[static_cast<size_t>(n + i)];
  }
  const LU lu(h);
  require(!lu.singular(),
          "awe_reduce: Hankel moment matrix is numerically singular (the "
          "instability Section 3.1 describes); reduce the order or use "
          "sypvl_reduce");
  const Vec q = lu.solve(rhs);

  Vec den(static_cast<size_t>(n) + 1);
  den[0] = 1.0;
  for (Index j = 0; j < n; ++j) den[static_cast<size_t>(j) + 1] = q[static_cast<size_t>(j)];
  // Numerator from the convolution P = (Q·M) mod xⁿ.
  Vec num(static_cast<size_t>(n));
  for (Index k = 0; k < n; ++k) {
    double acc = 0.0;
    for (Index j = 0; j <= std::min<Index>(k, n); ++j)
      acc += den[static_cast<size_t>(j)] * m[static_cast<size_t>(k - j)];
    num[static_cast<size_t>(k)] = acc;
  }
  AweModel model(std::move(num), std::move(den), sys.variable, sys.s_prefactor,
                 s0);
  // Rough conditioning estimate: ‖H‖∞·‖q‖∞ / min moment magnitude.
  double qmax = 0.0;
  for (double v : q) qmax = std::max(qmax, std::abs(v));
  model.set_hankel_condition(hnorm * std::max(1.0, qmax));
  return model;
}

}  // namespace sympvl
