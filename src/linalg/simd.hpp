// Runtime SIMD dispatch for the dense panel microkernels.
//
// The supernodal LDLᵀ path spends its time in three dense primitives —
// the rank-k panel update (GEMM-like), the triangular panel solves, and
// diagonal scaling. Each has scalar, AVX2+FMA and AVX-512 variants
// compiled into every binary (via GCC/Clang `target` attributes, so no
// special -m flags are needed) and selected once per factorization:
//
//   1. an explicit KernelOptions::simd (anything but kAuto) wins;
//   2. else the SYMPVL_SIMD environment variable
//      ("scalar" | "avx2" | "avx512"; anything else falls through);
//   3. else the best level the CPU supports (CPUID probe, cached).
//
// A requested level the host cannot execute is clamped down to the best
// supported one, so SYMPVL_SIMD=avx512 on an AVX2-only host silently
// runs AVX2 — tests that force levels stay portable.
//
// Numerical contract: levels differ in rounding (FMA fuses the
// multiply-add chains the scalar kernels round twice), so the resolved
// level is part of a factorization's identity — FactorCache keys on it,
// and dispatch-parity tests bound the scalar/AVX drift at 1e-12. Within
// one level, single-RHS and multi-RHS solves run per-column bit-identical
// arithmetic (the vector kernels' remainder lanes use the same fused ops
// as the full vectors).
#pragma once

namespace sympvl {

/// SIMD dispatch level of the dense panel microkernels.
enum class SimdLevel {
  kAuto,    ///< resolve from SYMPVL_SIMD, then the CPUID probe
  kScalar,  ///< portable C++ kernels (the reference arithmetic)
  kAvx2,    ///< 256-bit AVX2 + FMA
  kAvx512,  ///< 512-bit AVX-512 F/VL
};

inline const char* simd_level_name(SimdLevel s) {
  switch (s) {
    case SimdLevel::kAuto: return "auto";
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
  }
  return "unknown";
}

/// Best level the executing CPU supports (cached CPUID probe; kScalar on
/// non-x86 builds).
SimdLevel detect_simd_level();

/// Resolves a requested level to the one the kernels will actually run:
/// kAuto consults SYMPVL_SIMD (re-read on every call so tests can flip
/// it), then the CPU probe; explicit requests are clamped down to
/// detect_simd_level(). Never returns kAuto.
SimdLevel resolve_simd_level(SimdLevel request);

}  // namespace sympvl
