#include "io/touchstone.hpp"

#include <gtest/gtest.h>

#include "circuit/network_params.hpp"
#include "gen/random_circuit.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

std::vector<CMat> sample_sweep(Index ports, const Vec& freqs, unsigned seed) {
  const Netlist nl = random_rc({.nodes = 20, .ports = ports, .seed = seed});
  return ac_sweep(build_mna(nl), freqs);
}

TEST(Touchstone, HeaderAndStructure) {
  const Vec freqs{1e8, 1e9};
  const auto z = sample_sweep(1, freqs, 1);
  const std::string text = write_touchstone(freqs, z, 50.0, "test sweep");
  EXPECT_NE(text.find("! test sweep"), std::string::npos);
  EXPECT_NE(text.find("# HZ S RI R 50"), std::string::npos);
  // One data line per point for a 1-port.
  EXPECT_NE(text.find("100000000"), std::string::npos);
}

TEST(Touchstone, RoundTripOnePort) {
  const Vec freqs{1e7, 1e8, 1e9};
  const auto z = sample_sweep(1, freqs, 2);
  const std::string text = write_touchstone(freqs, z, 75.0);
  Vec freqs_back;
  double z0 = 0.0;
  const auto s_back = parse_touchstone(text, freqs_back, z0);
  ASSERT_EQ(s_back.size(), 3u);
  EXPECT_DOUBLE_EQ(z0, 75.0);
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(freqs_back[k], freqs[k], 1e-3);
    const CMat s_direct = z_to_s(z[k], 75.0);
    EXPECT_NEAR(std::abs(s_back[k](0, 0) - s_direct(0, 0)), 0.0, 1e-9);
  }
}

TEST(Touchstone, RoundTripTwoPortOrdering) {
  // The 2-port column-major convention (S11 S21 S12 S22) must survive the
  // round trip.
  const Vec freqs{5e8, 2e9};
  const auto z = sample_sweep(2, freqs, 3);
  const std::string text = write_touchstone(freqs, z, 50.0);
  Vec freqs_back;
  double z0;
  const auto s_back = parse_touchstone(text, freqs_back, z0);
  ASSERT_EQ(s_back.size(), 2u);
  for (size_t k = 0; k < 2; ++k) {
    const CMat s_direct = z_to_s(z[k], 50.0);
    for (Index i = 0; i < 2; ++i)
      for (Index j = 0; j < 2; ++j)
        EXPECT_NEAR(std::abs(s_back[k](i, j) - s_direct(i, j)), 0.0, 1e-9)
            << i << j;
  }
}

TEST(Touchstone, RoundTripFourPortWithLineWrapping) {
  // 4 ports = 16 entries = 4 lines per block (4 pairs each after the
  // frequency line): exercises the continuation-line parsing.
  const Vec freqs{1e8, 1e9, 5e9};
  const auto z = sample_sweep(4, freqs, 4);
  const std::string text = write_touchstone(freqs, z, 50.0);
  Vec freqs_back;
  double z0;
  const auto s_back = parse_touchstone(text, freqs_back, z0);
  ASSERT_EQ(s_back.size(), 3u);
  for (size_t k = 0; k < 3; ++k) {
    const CMat s_direct = z_to_s(z[k], 50.0);
    for (Index i = 0; i < 4; ++i)
      for (Index j = 0; j < 4; ++j)
        EXPECT_NEAR(std::abs(s_back[k](i, j) - s_direct(i, j)), 0.0, 1e-9);
  }
}

TEST(Touchstone, PassiveSweepStaysContractive) {
  const Vec freqs{1e8, 1e9};
  const auto z = sample_sweep(3, freqs, 5);
  const std::string text = write_touchstone(freqs, z, 50.0);
  Vec fb;
  double z0;
  for (const auto& s : parse_touchstone(text, fb, z0))
    EXPECT_LE(s_passivity_violation(s), 1e-9);
}

TEST(Touchstone, Validation) {
  const Vec freqs{1e8};
  EXPECT_THROW(write_touchstone(freqs, {}, 50.0), Error);
  Vec fb;
  double z0;
  EXPECT_THROW(parse_touchstone("", fb, z0), Error);
  EXPECT_THROW(parse_touchstone("# GHZ S MA R 50\n1 0 0\n", fb, z0), Error);
}

}  // namespace
}  // namespace sympvl
