// End-to-end model-artifact workflow: a reduced-order model as a
// deliverable.
//
//   1. reduce a package model with a resumable session (extend until the
//      sweep error target is met);
//   2. save the model to disk, reload it, verify bit-identical behavior;
//   3. export S-parameters (Touchstone) for RF/SI tools;
//   4. rank the circuit elements by adjoint sensitivity — which parasitics
//      actually shape the response the model captured.
//
//   $ ./model_workflow
#include <algorithm>
#include <cstdio>

#include "sympvl.hpp"

int main() {
  using namespace sympvl;

  // A moderate package so the example runs in a second.
  const PackageCircuit pkg = make_package_circuit(
      {.pins = 16, .segments = 4, .signal_pins = 4});
  const MnaSystem sys = build_mna(pkg.netlist, MnaForm::kGeneral);
  std::printf("package: MNA size %lld, %lld ports\n",
              static_cast<long long>(sys.size()),
              static_cast<long long>(sys.port_count()));

  // --- 1. Reduce incrementally until the sweep error target is met. ---
  const Vec freqs = log_frequency_grid(1e7, 5e9, 15);
  const SweepResult exact = sweep(sys, freqs, {.throw_on_failure = true});
  auto sweep_err = [&](const ReducedModel& rom) {
    double err = 0.0;
    for (size_t k = 0; k < freqs.size(); ++k) {
      const CMat z = rom.eval(Complex(0.0, 2.0 * M_PI * freqs[k]));
      for (Index i = 0; i < z.rows(); ++i)
        for (Index j = 0; j < z.cols(); ++j)
          err = std::max(err, std::abs(z(i, j) - exact[k](i, j)) /
                                  (exact[k].max_abs() + 1e-300));
    }
    return err;
  };

  SympvlOptions opt;
  opt.order = 16;
  opt.s0 = automatic_shift(sys);
  SympvlSession session(sys, opt);
  double err = sweep_err(session.current());
  std::printf("order %2lld: sweep error %.3e\n",
              static_cast<long long>(session.order()), err);
  while (err > 1e-2 && session.order() < 96) {
    session.extend(16);
    err = sweep_err(session.current());
    std::printf("order %2lld: sweep error %.3e\n",
                static_cast<long long>(session.order()), err);
  }
  const ReducedModel rom = session.current();

  // --- 2. The model as a file artifact. ---
  const std::string model_path = "/tmp/sympvl_package_model.rom";
  rom.save(model_path);
  const ReducedModel loaded = ReducedModel::load(model_path);
  const Complex probe(0.0, 2.0 * M_PI * 1e9);
  std::printf("\nsaved %s and reloaded: |Z11| %.12e == %.12e\n",
              model_path.c_str(), std::abs(rom.eval(probe)(0, 0)),
              std::abs(loaded.eval(probe)(0, 0)));

  // --- 3. Touchstone export of the model's S-parameters. ---
  std::vector<CMat> z_model;
  for (double f : freqs)
    z_model.push_back(loaded.eval(Complex(0.0, 2.0 * M_PI * f)));
  const std::string ts_path = "/tmp/sympvl_package_model.s8p";
  write_touchstone_file(ts_path, freqs, z_model, 50.0,
                        "SyMPVL package model (from saved artifact)");
  std::printf("wrote %s\n", ts_path.c_str());

  // --- 4. Which parasitics matter? Adjoint sensitivities of Z11 at 1 GHz.
  const auto sens = z_sensitivities(pkg.netlist, probe, 0, 0);
  struct Ranked {
    std::string name;
    double impact;  // |dZ/dv|·v — relative influence of the element
  };
  std::vector<Ranked> ranking;
  for (size_t k = 0; k < pkg.netlist.resistors().size(); ++k)
    ranking.push_back({pkg.netlist.resistors()[k].name,
                       std::abs(sens.d_resistance[k]) *
                           pkg.netlist.resistors()[k].resistance});
  for (size_t k = 0; k < pkg.netlist.capacitors().size(); ++k)
    ranking.push_back({pkg.netlist.capacitors()[k].name,
                       std::abs(sens.d_capacitance[k]) *
                           pkg.netlist.capacitors()[k].capacitance});
  for (size_t k = 0; k < pkg.netlist.inductors().size(); ++k)
    ranking.push_back({pkg.netlist.inductors()[k].name,
                       std::abs(sens.d_inductance[k]) *
                           pkg.netlist.inductors()[k].inductance});
  std::sort(ranking.begin(), ranking.end(),
            [](const Ranked& a, const Ranked& b) { return a.impact > b.impact; });
  std::printf("\nmost influential elements for Z11 @ 1 GHz "
              "(|dZ/dv|·v, Ω):\n");
  for (size_t k = 0; k < 8 && k < ranking.size(); ++k)
    std::printf("  %-12s %.4e\n", ranking[k].name.c_str(), ranking[k].impact);
  return 0;
}
