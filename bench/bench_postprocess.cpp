// Experiment E11 — the Section 5/8 post-processing remark, quantified:
// general RLC reduced models are not guaranteed stable; modal
// decomposition + pole flipping/dropping makes them stable at a measured
// accuracy cost.
//
// Tables: fraction of unstable low-order RLC reductions over a seed sweep;
// before/after stability and sweep error for the flip and drop modes.
#include "bench_util.hpp"
#include "gen/random_circuit.hpp"
#include "mor/postprocess.hpp"
#include "mor/sympvl.hpp"
#include "sim/ac.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

double sweep_err(const std::function<CMat(Complex)>& eval, const MnaSystem& sys,
                 const Vec& freqs, const std::vector<CMat>& exact) {
  double err = 0.0;
  (void)sys;
  for (size_t k = 0; k < freqs.size(); ++k)
    err = std::max(err,
                   max_rel_err(eval(Complex(0.0, 2.0 * M_PI * freqs[k])), exact[k]));
  return err;
}

void print_tables() {
  // How often are low-order RLC reductions unstable? (Section 5: no
  // guarantee outside RC/RL/LC.)
  csv_begin("fraction of unstable RLC reductions vs order (100 seeds)",
            {"order", "unstable_fraction"});
  for (Index order : {4, 6, 8, 12}) {
    int unstable = 0, total = 0;
    for (unsigned seed = 1; seed <= 100; ++seed) {
      const Netlist nl = random_rlc({.nodes = 20, .ports = 1, .seed = seed});
      try {
        SympvlOptions opt;
        opt.order = order;
        const ReducedModel rom = sympvl_reduce(build_mna(nl, MnaForm::kGeneral), opt);
        ++total;
        if (!rom.is_stable()) ++unstable;
      } catch (const Error&) {
      }
    }
    csv_row({static_cast<double>(order),
             static_cast<double>(unstable) / std::max(1, total)});
  }

  // Post-processing on the unstable cases: stability restored, error cost.
  csv_begin("post-processing unstable RLC models (order 6)",
            {"seed", "err_before", "err_flip", "err_drop", "stable_flip",
             "stable_drop"});
  int shown = 0;
  for (unsigned seed = 1; seed <= 100 && shown < 8; ++seed) {
    const Netlist nl = random_rlc({.nodes = 20, .ports = 1, .seed = seed});
    const MnaSystem sys = build_mna(nl, MnaForm::kGeneral);
    ReducedModel rom;
    try {
      SympvlOptions opt;
      opt.order = 6;
      rom = sympvl_reduce(sys, opt);
    } catch (const Error&) {
      continue;
    }
    if (rom.is_stable()) continue;
    const Vec freqs = log_frequency_grid(1e6, 1e9, 9);
    const auto exact = ac_sweep(sys, freqs);
    const ModalModel modal = modal_decompose(rom);
    const ModalModel flip = enforce_stability(modal, StabilizeMode::kFlip);
    const ModalModel drop = enforce_stability(modal, StabilizeMode::kDrop);
    csv_row({static_cast<double>(seed),
             sweep_err([&](Complex s) { return rom.eval(s); }, sys, freqs, exact),
             sweep_err([&](Complex s) { return flip.eval(s); }, sys, freqs, exact),
             sweep_err([&](Complex s) { return drop.eval(s); }, sys, freqs, exact),
             flip.is_stable() ? 1.0 : 0.0, drop.is_stable() ? 1.0 : 0.0});
    ++shown;
  }
  if (shown == 0)
    std::printf("(no unstable order-6 reductions found in the seed sweep)\n");
}

void bm_modal_decompose(benchmark::State& state) {
  const Netlist nl = random_rlc({.nodes = 25, .ports = 2, .seed = 3});
  SympvlOptions opt;
  opt.order = static_cast<Index>(state.range(0));
  const ReducedModel rom = sympvl_reduce(build_mna(nl, MnaForm::kGeneral), opt);
  for (auto _ : state) {
    const ModalModel m = modal_decompose(rom);
    benchmark::DoNotOptimize(m.pole_count());
  }
}
BENCHMARK(bm_modal_decompose)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

}  // namespace

SYMPVL_BENCH_MAIN(print_tables)
