// Experiment E15 (extension) — balanced truncation vs the matrix-Padé
// approach: the classic MOR trade-off the Krylov literature positions
// itself against. BT is near-optimal in worst-case (H∞) error and carries
// the 2·Σσ bound, but costs O(N³) dense algebra; SyMPVL costs one sparse
// factorization plus n operator applications and matches moments instead.
//
// Tables: worst-case sweep error vs order for BT / SyMPVL / Arnoldi on an
// RC network, the Hankel spectrum (how much of the circuit is truncatable),
// the H∞ bound vs the realized error, and wall-clock cost vs N.
#include <chrono>

#include "bench_util.hpp"
#include "gen/random_circuit.hpp"
#include "mor/arnoldi.hpp"
#include "mor/balanced.hpp"
#include "mor/sympvl.hpp"
#include "sim/ac.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

double worst_err(const std::function<CMat(Complex)>& eval, const Vec& freqs,
                 const std::vector<CMat>& exact) {
  double err = 0.0;
  for (size_t k = 0; k < freqs.size(); ++k) {
    const CMat z = eval(Complex(0.0, 2.0 * M_PI * freqs[k]));
    for (Index i = 0; i < z.rows(); ++i)
      for (Index j = 0; j < z.cols(); ++j)
        err = std::max(err, std::abs(z(i, j) - exact[k](i, j)));
  }
  return err;
}

void print_tables() {
  const MnaSystem sys =
      build_mna(random_rc({.nodes = 150, .ports = 2, .seed = 61}));
  const Vec freqs = log_frequency_grid(1e4, 1e12, 30);
  const auto exact = ac_sweep(sys, freqs);

  csv_begin("balanced truncation vs sympvl vs arnoldi: worst-case error vs "
            "order (150-node RC, p=2)",
            {"order", "bt_err", "bt_bound", "sympvl_err", "arnoldi_err"});
  for (Index order : {2, 4, 8, 16, 32}) {
    BalancedOptions bopt;
    bopt.order = order;
    const BalancedResult bt = balanced_truncation(sys, bopt);
    SympvlOptions sopt;
    sopt.order = order;
    const ReducedModel rom = sympvl_reduce(sys, sopt);
    ArnoldiOptions aopt;
    aopt.order = order;
    const ArnoldiModel arn = arnoldi_reduce(sys, aopt);
    csv_row({static_cast<double>(order),
             worst_err([&](Complex s) { return bt.model.eval(s); }, freqs, exact),
             bt.error_bound,
             worst_err([&](Complex s) { return rom.eval(s); }, freqs, exact),
             worst_err([&](Complex s) { return arn.eval(s); }, freqs, exact)});
  }

  // Hankel spectrum: how compressible the circuit is.
  {
    BalancedOptions opt;
    opt.order = 1;
    const BalancedResult bt = balanced_truncation(sys, opt);
    csv_begin("hankel singular values (first 20, normalized)",
              {"index", "sigma_over_sigma1"});
    const double s1 = bt.hankel_singular_values.front() + 1e-300;
    for (Index k = 0; k < std::min<Index>(20, sys.size()); ++k)
      csv_row({static_cast<double>(k + 1),
               bt.hankel_singular_values[static_cast<size_t>(k)] / s1});
  }

  // Cost scaling: BT's dense O(N³) vs SyMPVL's sparse cost.
  csv_begin("cost vs N at order 12", {"n", "t_bt_s", "t_sympvl_s"});
  for (Index nodes : {50, 100, 200, 400}) {
    const MnaSystem s =
        build_mna(random_rc({.nodes = nodes, .ports = 2,
                             .seed = static_cast<unsigned>(70 + nodes)}));
    const auto t0 = std::chrono::steady_clock::now();
    BalancedOptions bopt;
    bopt.order = 12;
    balanced_truncation(s, bopt);
    const double t_bt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const auto t1 = std::chrono::steady_clock::now();
    SympvlOptions sopt;
    sopt.order = 12;
    sympvl_reduce(s, sopt);
    const double t_pade =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();
    csv_row({static_cast<double>(s.size()), t_bt, t_pade});
  }
}

void bm_balanced(benchmark::State& state) {
  const MnaSystem sys = build_mna(
      random_rc({.nodes = static_cast<Index>(state.range(0)), .ports = 2,
                 .seed = 61}));
  BalancedOptions opt;
  opt.order = 12;
  for (auto _ : state) {
    const BalancedResult bt = balanced_truncation(sys, opt);
    benchmark::DoNotOptimize(bt.error_bound);
  }
}
BENCHMARK(bm_balanced)->Arg(50)->Arg(150)->Unit(benchmark::kMillisecond);

}  // namespace

SYMPVL_BENCH_MAIN(print_tables)
