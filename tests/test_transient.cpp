#include "sim/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sympvl {
namespace {

// Parallel RC driven by a current step: v(t) = I·R·(1 − e^(−t/RC)).
TEST(Transient, RcStepResponseAnalytic) {
  const double r = 1000.0, c = 1e-12, i0 = 1e-3;
  Netlist nl;
  nl.add_resistor(1, 0, r);
  nl.add_capacitor(1, 0, c);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  TransientOptions opt;
  const double tau = r * c;
  opt.dt = tau / 200.0;
  opt.t_end = 5.0 * tau;
  const auto res = simulate_ports_transient(
      sys, {[=](double t) { return t > 0.0 ? i0 : 0.0; }}, opt);
  for (size_t k = 1; k < res.time.size(); ++k) {
    const double t = res.time[k];
    const double expected = i0 * r * (1.0 - std::exp(-t / tau));
    EXPECT_NEAR(res.outputs(static_cast<Index>(k), 0), expected,
                0.02 * i0 * r)
        << "t=" << t;
  }
}

TEST(Transient, TrapezoidalBeatsBackwardEulerOnSmoothInput) {
  // The second-order advantage of the trapezoidal rule holds for smooth
  // stimuli (a discontinuous step degrades every method to first order at
  // the jump). Drive with a raised-cosine current and compare against a
  // 64x-finer trapezoidal reference.
  const double r = 100.0, c = 1e-12, i0 = 1e-3;
  Netlist nl;
  nl.add_resistor(1, 0, r);
  nl.add_capacitor(1, 0, c);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  const double tau = r * c;
  auto smooth = [=](double t) {
    return i0 * 0.5 * (1.0 - std::cos(M_PI * std::min(t / (2.0 * tau), 1.0)));
  };

  TransientOptions ref_opt;
  ref_opt.dt = tau / 1280.0;
  ref_opt.t_end = 3.0 * tau;
  const auto ref = simulate_ports_transient(sys, {Waveform(smooth)}, ref_opt);

  auto err_of = [&](IntegrationMethod m) {
    TransientOptions o;
    o.dt = tau / 20.0;
    o.t_end = 3.0 * tau;
    o.method = m;
    const auto res = simulate_ports_transient(sys, {Waveform(smooth)}, o);
    double err = 0.0;
    for (size_t k = 1; k < res.time.size(); ++k) {
      const double expected = ref.outputs(static_cast<Index>(k) * 64, 0);
      err = std::max(err,
                     std::abs(res.outputs(static_cast<Index>(k), 0) - expected));
    }
    return err;
  };
  EXPECT_LT(err_of(IntegrationMethod::kTrapezoidal),
            0.2 * err_of(IntegrationMethod::kBackwardEuler));
}

TEST(Transient, RlcRingingFrequency) {
  // Parallel RLC tank driven by a current impulse rings at
  // ω ≈ 1/√(LC) when lightly damped.
  const double r = 10e3, l = 1e-9, c = 1e-12;
  Netlist nl;
  nl.add_resistor(1, 0, r);
  nl.add_inductor(1, 0, l);
  nl.add_capacitor(1, 0, c);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl, MnaForm::kGeneral);
  const double w0 = 1.0 / std::sqrt(l * c);
  const double period = 2.0 * M_PI / w0;
  TransientOptions opt;
  opt.dt = period / 400.0;
  opt.t_end = 6.0 * period;
  // Short rectangular current pulse ≈ impulse.
  const double tp = period / 50.0;
  const auto res = simulate_ports_transient(
      sys, {[=](double t) { return (t > 0.0 && t < tp) ? 1e-3 : 0.0; }}, opt);
  // Count zero crossings after the pulse; expect ~2 per period.
  Index crossings = 0;
  double prev = 0.0;
  double t_first = -1.0, t_last = -1.0;
  for (size_t k = 0; k < res.time.size(); ++k) {
    if (res.time[k] < 2.0 * tp) continue;
    const double v = res.outputs(static_cast<Index>(k), 0);
    if (prev != 0.0 && v * prev < 0.0) {
      ++crossings;
      if (t_first < 0.0) t_first = res.time[k];
      t_last = res.time[k];
    }
    prev = v;
  }
  ASSERT_GE(crossings, 4);
  const double measured_period = 2.0 * (t_last - t_first) /
                                 static_cast<double>(crossings - 1);
  EXPECT_NEAR(measured_period, period, 0.05 * period);
}

TEST(Transient, EnergyDissipationMonotone) {
  // Passive RC with no input after t0: output magnitude decays.
  Netlist nl;
  nl.add_resistor(1, 2, 100.0);
  nl.add_resistor(2, 0, 100.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_capacitor(2, 0, 1e-12);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  TransientOptions opt;
  opt.dt = 1e-12;
  opt.t_end = 2e-9;
  const auto res = simulate_ports_transient(
      sys, {[](double t) { return t < 0.2e-9 ? 1e-3 : 0.0; }}, opt);
  double peak = 0.0;
  bool decaying = true;
  double prev = 0.0;
  for (size_t k = 0; k < res.time.size(); ++k) {
    const double v = std::abs(res.outputs(static_cast<Index>(k), 0));
    if (res.time[k] < 0.3e-9) {
      peak = std::max(peak, v);
      prev = v;
      continue;
    }
    if (v > prev + 1e-9 * peak) decaying = false;
    prev = v;
  }
  EXPECT_TRUE(decaying);
}

TEST(Transient, ZeroInputStaysZero) {
  Netlist nl;
  nl.add_resistor(1, 0, 10.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  TransientOptions opt;
  opt.dt = 1e-12;
  opt.t_end = 1e-10;
  const auto res =
      simulate_ports_transient(sys, {[](double) { return 0.0; }}, opt);
  for (size_t k = 0; k < res.time.size(); ++k)
    EXPECT_DOUBLE_EQ(res.outputs(static_cast<Index>(k), 0), 0.0);
}

TEST(Transient, Waveforms) {
  const Waveform ramp = ramp_waveform(2.0, 1.0, 4.0);
  EXPECT_DOUBLE_EQ(ramp(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ramp(3.0), 1.0);
  EXPECT_DOUBLE_EQ(ramp(10.0), 2.0);

  const Waveform pulse = pulse_waveform(1.0, 0.0, 1.0, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(pulse(0.5), 0.5);
  EXPECT_DOUBLE_EQ(pulse(2.0), 1.0);
  EXPECT_DOUBLE_EQ(pulse(3.5), 0.5);
  EXPECT_DOUBLE_EQ(pulse(5.0), 0.0);
}

TEST(Transient, OptionValidation) {
  Netlist nl;
  nl.add_resistor(1, 0, 10.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  TransientOptions opt;
  opt.dt = 0.0;
  EXPECT_THROW(
      simulate_ports_transient(sys, {[](double) { return 0.0; }}, opt), Error);
  opt.dt = 1e-12;
  opt.t_end = 1e-10;
  EXPECT_THROW(simulate_ports_transient(sys, {}, opt), Error);
}

}  // namespace
}  // namespace sympvl
