// Interconnect crosstalk reduction + synthesis (the Section 7.3 scenario):
// reduce a capacitively coupled RC bus, synthesize an equivalent small RC
// circuit, and compare transient waveforms and CPU times of the full vs
// synthesized circuit.
//
//   $ ./crosstalk_synthesis
#include <chrono>
#include <cstdio>

#include "sympvl.hpp"

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

int main() {
  using namespace sympvl;

  const InterconnectCircuit ic = make_interconnect_circuit();
  const MnaSystem sys = build_mna(ic.netlist, MnaForm::kRC);
  std::printf("full interconnect: %lld nodes, %zu R, %zu C, %lld ports\n",
              static_cast<long long>(ic.netlist.node_count() - 1),
              ic.netlist.resistors().size(), ic.netlist.capacitors().size(),
              static_cast<long long>(sys.port_count()));

  // Reduce: 2 states per port, as in the paper's 17-port -> 34-node result.
  ReduceOptions opt;
  opt.order = 2 * sys.port_count();
  const ReducedModel rom = *reduce(sys, opt).value().as_reduced();

  SynthesisOptions sopt;
  sopt.drop_tolerance = 1e-8;
  const SynthesizedCircuit syn = synthesize_congruence_rc(rom, sopt);
  std::printf("synthesized circuit: %lld nodes, %zu R, %zu C\n",
              static_cast<long long>(syn.netlist.node_count() - 1),
              syn.netlist.resistors().size(), syn.netlist.capacitors().size());

  // Transient: ramp on the near end of wire 1, everything else quiet.
  TransientOptions topt;
  topt.dt = 1e-11;
  topt.t_end = 10e-9;
  std::vector<Waveform> drives(static_cast<size_t>(sys.port_count()),
                               [](double) { return 0.0; });
  drives[0] = ramp_waveform(1e-3, 0.5e-9, 1e-9);

  const auto t_full0 = std::chrono::steady_clock::now();
  const auto full = simulate_ports_transient(sys, drives, topt);
  const double t_full = seconds_since(t_full0);

  const MnaSystem syn_sys = build_mna(syn.netlist, MnaForm::kRC);
  const auto t_syn0 = std::chrono::steady_clock::now();
  const auto reduced = simulate_ports_transient(syn_sys, drives, topt);
  const double t_syn = seconds_since(t_syn0);

  // Waveforms at the victim wire's far end (crosstalk) and the driven
  // wire's far end.
  const Index driven_far = 8, victim_far = 9;
  std::printf("\n%-10s %-14s %-14s %-14s %-14s\n", "t [ns]", "v_drv full",
              "v_drv synth", "v_vic full", "v_vic synth");
  const size_t stride = full.time.size() / 20;
  for (size_t k = 0; k < full.time.size(); k += stride)
    std::printf("%-10.3f %-14.6e %-14.6e %-14.6e %-14.6e\n",
                full.time[k] * 1e9, full.outputs(static_cast<Index>(k), driven_far),
                reduced.outputs(static_cast<Index>(k), driven_far),
                full.outputs(static_cast<Index>(k), victim_far),
                reduced.outputs(static_cast<Index>(k), victim_far));

  std::printf("\ntransient CPU time: full %.3f s, synthesized %.3f s "
              "(speedup %.1fx)\n", t_full, t_syn, t_full / t_syn);

  // Emit the synthesized circuit as a SPICE-dialect netlist, and as a
  // reusable .subckt block that drops into any existing simulator deck
  // (Section 6: "use existing circuit simulation tools").
  const std::string out = write_netlist(syn.netlist, "SyMPVL synthesized model");
  std::printf("\nsynthesized netlist preview (first 400 chars):\n%.400s...\n",
              out.c_str());
  const std::string sub =
      write_subckt(syn.netlist, "interconnect_rom",
                   "34-node SyMPVL reduced interconnect (17 pins)");
  std::printf("\nsubcircuit header: %.120s...\n", sub.c_str());
  return 0;
}
