# Empty compiler generated dependencies file for bench_arnoldi_ablation.
# This may be replaced when dependencies are built.
