// Minimal CSV table support for exporting sweeps and waveforms.
//
// The examples and benches print their data series as CSV so the paper's
// figures can be regenerated with any plotting tool; this module gives
// that format a real API (build, serialize, parse back) instead of ad-hoc
// printf calls.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "linalg/dense.hpp"
#include "sim/transient.hpp"

namespace sympvl {

/// A rectangular numeric table with named columns.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> columns);

  Index column_count() const { return static_cast<Index>(columns_.size()); }
  Index row_count() const { return static_cast<Index>(rows_.size()); }
  const std::vector<std::string>& columns() const { return columns_; }

  /// Appends a row; must match the column count.
  void add_row(const Vec& row);

  double at(Index row, Index col) const;

  /// Column by name; throws when absent.
  Vec column(const std::string& name) const;
  bool has_column(const std::string& name) const;

  /// Serializes with a header line; full double precision.
  std::string to_string() const;
  void write(std::ostream& out) const;
  void write_file(const std::string& path) const;

  /// Parses a CSV with a header line (the inverse of to_string()).
  static CsvTable parse(const std::string& text);
  static CsvTable read_file(const std::string& path);

 private:
  std::vector<std::string> columns_;
  std::vector<Vec> rows_;
};

/// Frequency sweep of selected Z entries → table with columns
/// f_hz, re_<name>, im_<name>, mag_<name> per requested (i, j) entry.
struct ZEntry {
  Index row = 0;
  Index col = 0;
  std::string name;  // used in the column headers
};
CsvTable sweep_to_csv(const Vec& frequencies_hz, const std::vector<CMat>& z,
                      const std::vector<ZEntry>& entries);

/// Transient result → table with columns t_s, out0, out1, …
CsvTable transient_to_csv(const TransientResult& result,
                          const std::vector<std::string>& names = {});

}  // namespace sympvl
