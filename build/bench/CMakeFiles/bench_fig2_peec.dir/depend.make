# Empty dependencies file for bench_fig2_peec.
# This may be replaced when dependencies are built.
