// Experiment E4 — Figure 5 of the paper: the synthesized interconnect
// circuit vs the full extracted circuit in the time domain.
//
// Paper result: a 17-port RC network (1350 nodes, 1355 R, 36620 C) is
// reduced to a 34-node synthesized circuit (459 R, 170 C); the transient
// waveforms are indistinguishable and CPU time drops 132 s → 2.15 s (~61×).
//
// We reproduce: the element-count collapse, the waveform overlay (driven
// and victim nets), and the transient CPU-time ratio. Absolute seconds
// differ from 1998 hardware; the *shape* (large speedup, overlapping
// waveforms) is the claim under test.
#include <chrono>

#include "bench_util.hpp"
#include "gen/rc_interconnect.hpp"
#include "mor/sympvl.hpp"
#include "mor/synthesis.hpp"
#include "sim/transient.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

const InterconnectCircuit& interconnect() {
  static const InterconnectCircuit ic = make_interconnect_circuit();
  return ic;
}

const MnaSystem& full_system() {
  static const MnaSystem sys = build_mna(interconnect().netlist, MnaForm::kRC);
  return sys;
}

SynthesizedCircuit synthesize() {
  SympvlOptions opt;
  opt.order = 2 * full_system().port_count();  // 34 states for 17 ports
  const ReducedModel rom = sympvl_reduce(full_system(), opt);
  SynthesisOptions sopt;
  sopt.drop_tolerance = 1e-8;
  return synthesize_congruence_rc(rom, sopt);
}

std::vector<Waveform> drives() {
  std::vector<Waveform> d(static_cast<size_t>(full_system().port_count()),
                          [](double) { return 0.0; });
  d[0] = ramp_waveform(1e-3, 0.5e-9, 1.0e-9);  // driver on wire 1 near end
  return d;
}

void print_tables() {
  const auto& ic = interconnect();
  const MnaSystem& sys = full_system();
  const SynthesizedCircuit syn = synthesize();
  const MnaSystem syn_sys = build_mna(syn.netlist, MnaForm::kRC);

  csv_begin("fig5: circuit size, full vs synthesized (paper: 1350->34 nodes,"
            " 1355->459 R, 36620->170 C)",
            {"nodes_full", "r_full", "c_full", "nodes_syn", "r_syn", "c_syn"});
  csv_row({static_cast<double>(ic.netlist.node_count() - 1),
           static_cast<double>(ic.netlist.resistors().size()),
           static_cast<double>(ic.netlist.capacitors().size()),
           static_cast<double>(syn.netlist.node_count() - 1),
           static_cast<double>(syn.netlist.resistors().size()),
           static_cast<double>(syn.netlist.capacitors().size())});

  TransientOptions topt;
  topt.dt = 1e-11;
  topt.t_end = 10e-9;
  const auto wf = drives();

  const auto t0 = std::chrono::steady_clock::now();
  const auto full = simulate_ports_transient(sys, wf, topt);
  const double t_full =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const auto t1 = std::chrono::steady_clock::now();
  const auto red = simulate_ports_transient(syn_sys, wf, topt);
  const double t_syn =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

  // Waveforms: driven wire far end (port 8) and adjacent victim (port 9).
  csv_begin("fig5: transient waveforms, full vs synthesized",
            {"t_s", "v_driven_full", "v_driven_syn", "v_victim_full",
             "v_victim_syn"});
  const size_t stride = std::max<size_t>(1, full.time.size() / 50);
  double wave_err = 0.0, wave_max = 0.0;
  for (size_t k = 0; k < full.time.size(); ++k) {
    for (Index j = 0; j < full.outputs.cols(); ++j) {
      wave_err = std::max(wave_err,
                          std::abs(full.outputs(static_cast<Index>(k), j) -
                                   red.outputs(static_cast<Index>(k), j)));
      wave_max = std::max(wave_max,
                          std::abs(full.outputs(static_cast<Index>(k), j)));
    }
    if (k % stride == 0)
      csv_row({full.time[k], full.outputs(static_cast<Index>(k), 8),
               red.outputs(static_cast<Index>(k), 8),
               full.outputs(static_cast<Index>(k), 9),
               red.outputs(static_cast<Index>(k), 9)});
  }

  csv_begin("fig5: transient CPU time (paper: 132 s -> 2.15 s, 61x)",
            {"t_full_s", "t_synthesized_s", "speedup", "max_waveform_err_rel"});
  csv_row({t_full, t_syn, t_full / t_syn, wave_err / (wave_max + 1e-300)});
}

void bm_full_transient(benchmark::State& state) {
  TransientOptions topt;
  topt.dt = 2e-11;
  topt.t_end = 2e-9;
  const auto wf = drives();
  for (auto _ : state) {
    const auto r = simulate_ports_transient(full_system(), wf, topt);
    benchmark::DoNotOptimize(r.outputs(0, 0));
  }
}
BENCHMARK(bm_full_transient)->Unit(benchmark::kMillisecond);

void bm_synthesized_transient(benchmark::State& state) {
  const SynthesizedCircuit syn = synthesize();
  const MnaSystem syn_sys = build_mna(syn.netlist, MnaForm::kRC);
  TransientOptions topt;
  topt.dt = 2e-11;
  topt.t_end = 2e-9;
  const auto wf = drives();
  for (auto _ : state) {
    const auto r = simulate_ports_transient(syn_sys, wf, topt);
    benchmark::DoNotOptimize(r.outputs(0, 0));
  }
}
BENCHMARK(bm_synthesized_transient)->Unit(benchmark::kMillisecond);

void bm_reduction_itself(benchmark::State& state) {
  SympvlOptions opt;
  opt.order = 2 * full_system().port_count();
  for (auto _ : state) {
    const ReducedModel rom = sympvl_reduce(full_system(), opt);
    benchmark::DoNotOptimize(rom.order());
  }
}
BENCHMARK(bm_reduction_itself)->Unit(benchmark::kMillisecond);

}  // namespace

SYMPVL_BENCH_MAIN(print_tables)
