#include "linalg/sparse_lu.hpp"

#include <gtest/gtest.h>

#include <random>

#include "linalg/dense_factor.hpp"

namespace sympvl {
namespace {

SMat random_sparse(Index n, Index extra, unsigned seed, bool ensure_diag) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  std::uniform_int_distribution<Index> pick(0, n - 1);
  TripletBuilder<double> t(n, n);
  if (ensure_diag)
    for (Index i = 0; i < n; ++i) t.add(i, i, 3.0 + u(rng));
  for (Index k = 0; k < extra; ++k) t.add(pick(rng), pick(rng), u(rng));
  return t.compress();
}

TEST(SparseLU, SolvesRandomSystems) {
  for (unsigned seed : {1u, 2u, 3u, 4u}) {
    const SMat a = random_sparse(50, 200, seed, true);
    const LUSparse lu(a);
    Vec b(50);
    for (size_t i = 0; i < 50; ++i) b[i] = std::sin(static_cast<double>(i) + 1.0);
    const Vec x = lu.solve(b);
    const Vec r = a.multiply(x);
    for (size_t i = 0; i < 50; ++i) EXPECT_NEAR(r[i], b[i], 1e-9) << seed;
  }
}

TEST(SparseLU, MatchesDenseLU) {
  const SMat a = random_sparse(30, 120, 7, true);
  Vec b(30, 1.0);
  const Vec xs = LUSparse(a).solve(b);
  const Vec xd = LU(a.to_dense()).solve(b);
  for (size_t i = 0; i < 30; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

TEST(SparseLU, HandlesZeroDiagonal) {
  // Anti-diagonal permutation-like matrix: unpivoted methods break,
  // partial pivoting sails through.
  TripletBuilder<double> t(4, 4);
  t.add(0, 3, 1.0);
  t.add(1, 2, 2.0);
  t.add(2, 1, 3.0);
  t.add(3, 0, 4.0);
  const SMat a = t.compress();
  const LUSparse lu(a);
  const Vec x = lu.solve(Vec{1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 1.0, 1e-14);
  EXPECT_NEAR(x[2], 1.0, 1e-14);
  EXPECT_NEAR(x[3], 1.0, 1e-14);
}

TEST(SparseLU, HandlesStructuralCancellation) {
  // The series R-L MNA pattern that defeats unpivoted LDLᵀ:
  // [[g, -g, 0, 0], [-g, g, 0, 1], [0, 0, c, -1], [0, 1, -1, -l]].
  TripletBuilder<double> t(4, 4);
  const double g = 0.2, c = 1e-3, l = 2e-3;
  t.add(0, 0, g);
  t.add_symmetric(0, 1, -g);
  t.add(1, 1, g);
  t.add_symmetric(1, 3, 1.0);
  t.add(2, 2, c);
  t.add_symmetric(2, 3, -1.0);
  t.add(3, 3, -l);
  const SMat a = t.compress();
  const LUSparse lu(a);
  Vec b{1.0, 0.0, 0.0, 0.0};
  const Vec x = lu.solve(b);
  const Vec r = a.multiply(x);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(r[i], b[i], 1e-10);
}

TEST(SparseLU, ThrowsOnSingular) {
  TripletBuilder<double> t(3, 3);
  t.add(0, 0, 1.0);
  t.add(0, 1, 2.0);
  t.add(1, 0, 2.0);
  t.add(1, 1, 4.0);  // rows 0,1 dependent and column 2 empty
  t.add(2, 2, 1.0);
  EXPECT_THROW(LUSparse{t.compress()}, Error);
}

TEST(SparseLU, ComplexSolve) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  TripletBuilder<Complex> t(20, 20);
  for (Index i = 0; i < 20; ++i) t.add(i, i, Complex(2.0 + u(rng), u(rng)));
  std::uniform_int_distribution<Index> pick(0, 19);
  for (int k = 0; k < 80; ++k)
    t.add(pick(rng), pick(rng), Complex(u(rng), u(rng)));
  const CSMat a = t.compress();
  const CLUSparse lu(a);
  CVec b(20, Complex(1.0, -1.0));
  const CVec x = lu.solve(b);
  const CVec r = a.multiply(x);
  for (const auto& v : r) EXPECT_NEAR(std::abs(v - Complex(1.0, -1.0)), 0.0, 1e-10);
}

TEST(SparseLU, ThresholdPivotingStillAccurate) {
  const SMat a = random_sparse(40, 160, 5, true);
  Vec b(40, 0.5);
  const Vec x1 = LUSparse(a, Ordering::kRCM, 1.0).solve(b);
  const Vec x2 = LUSparse(a, Ordering::kRCM, 0.1).solve(b);
  for (size_t i = 0; i < 40; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-7);
}

TEST(SparseLU, NaturalOrderingWorks) {
  const SMat a = random_sparse(25, 100, 9, true);
  Vec b(25, -1.0);
  const Vec x = LUSparse(a, Ordering::kNatural).solve(b);
  const Vec r = a.multiply(x);
  for (size_t i = 0; i < 25; ++i) EXPECT_NEAR(r[i], b[i], 1e-9);
}

TEST(SparseLU, PivotRatioReported) {
  const SMat a = random_sparse(15, 60, 13, true);
  const LUSparse lu(a);
  EXPECT_GT(lu.pivot_ratio(), 0.0);
  EXPECT_LE(lu.pivot_ratio(), 1.0);
  EXPECT_GT(lu.l_nnz() + lu.u_nnz(), 0);
}

TEST(SparseLU, IdentityIsTrivial) {
  TripletBuilder<double> t(5, 5);
  for (Index i = 0; i < 5; ++i) t.add(i, i, 2.0);
  const LUSparse lu(t.compress());
  EXPECT_EQ(lu.l_nnz(), 0);
  EXPECT_EQ(lu.u_nnz(), 5);
  const Vec x = lu.solve(Vec{2.0, 4.0, 6.0, 8.0, 10.0});
  for (size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(x[i], static_cast<double>(i + 1));
}

TEST(SparseLU, FuzzAgainstDense) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const Index n = 4 + static_cast<Index>(rng() % 12);
    const SMat a = random_sparse(n, 4 * n, static_cast<unsigned>(rng()), true);
    Vec b(static_cast<size_t>(n));
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (auto& v : b) v = u(rng);
    LU dense(a.to_dense());
    if (dense.singular()) continue;
    const Vec xd = dense.solve(b);
    const Vec xs = LUSparse(a).solve(b);
    for (size_t i = 0; i < b.size(); ++i)
      EXPECT_NEAR(xs[i], xd[i], 1e-8 * (1.0 + std::abs(xd[i]))) << "trial " << trial;
  }
}

}  // namespace
}  // namespace sympvl
