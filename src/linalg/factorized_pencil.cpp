#include "linalg/factorized_pencil.hpp"

namespace sympvl {

Mat SymmetricOperator::apply_block(const Mat& v) const {
  Mat out(v.rows(), v.cols());
  for (Index col = 0; col < v.cols(); ++col) out.set_col(col, apply(v.col(col)));
  return out;
}

SMat assemble_pencil(const SMat& g, const SMat& c, double shift) {
  return (shift == 0.0) ? g : SMat::add(g, 1.0, c, shift);
}

FactorizedPencil::FactorizedPencil(const SMat& g, const SMat& c,
                                   const PencilFactorOptions& options)
    : n_(g.rows()), options_(options), c_(c) {
  const SMat a = assemble_pencil(g, c, options.shift);
  if (!options.dense) {
    ldlt_ = std::make_unique<LDLT>(a, options.ordering, options.zero_pivot_tol,
                                   options.kernels);
    j_ = ldlt_->j_signs();
    return;
  }
  const BunchKaufman bk(a.to_dense());
  Mat m;
  bk.symmetric_factor(m, j_);
  m_lu_ = std::make_unique<LU>(m);
  require(!m_lu_->singular(), ErrorCode::kSingular,
          "sympvl: dense symmetric factor is singular",
          ErrorContext{.stage = "sympvl.dense_factor"});
  mt_lu_ = std::make_unique<LU>(m.transpose());
}

Vec FactorizedPencil::solve_m(const Vec& b) const {
  return ldlt_ ? ldlt_->solve_m(b) : m_lu_->solve(b);
}

Vec FactorizedPencil::solve_mt(const Vec& b) const {
  return ldlt_ ? ldlt_->solve_mt(b) : mt_lu_->solve(b);
}

Vec FactorizedPencil::solve(const Vec& b) const {
  if (ldlt_) return ldlt_->solve(b);
  // A⁻¹ = M⁻ᵀ J M⁻¹ (J² = I).
  Vec x = m_lu_->solve(b);
  for (size_t i = 0; i < x.size(); ++i) x[i] *= j_[i];
  return mt_lu_->solve(x);
}

Mat FactorizedPencil::solve(const Mat& b) const {
  if (ldlt_) return ldlt_->solve(b);
  Mat out(b.rows(), b.cols());
  for (Index col = 0; col < b.cols(); ++col) out.set_col(col, solve(b.col(col)));
  return out;
}

Vec FactorizedPencil::apply(const Vec& v) const {
  // Op v = J⁻¹ M⁻¹ C M⁻ᵀ v, evaluated right to left — the exact operation
  // sequence of the pre-refactor per-driver closures.
  Vec w = solve_mt(v);
  w = c_.multiply(w);
  w = solve_m(w);
  for (size_t i = 0; i < w.size(); ++i) w[i] *= j_[i];
  return w;
}

Index FactorizedPencil::negative_j() const {
  Index count = 0;
  for (double jk : j_)
    if (jk < 0.0) ++count;
  return count;
}

}  // namespace sympvl
