// Perf-trajectory bench for the parallel frequency-sweep engine and the
// blocked multi-RHS LDLᵀ solve (this repo's hot path: the "exact
// analysis" reference curves behind every accuracy experiment).
//
// Measures, on a ≥2000-unknown generated package circuit:
//   1. AcSweepEngine::sweep wall time with 1 thread vs. all threads, and
//      the max relative deviation between the two results (must be ~0:
//      the static partition makes the parallel sweep bit-reproducible);
//   2. one blocked multi-RHS SparseLDLT::solve over all p port columns
//      vs. p single-RHS solves against the same factor.
//
// Results go to stdout as CSV and to BENCH_parallel_sweep.json so the
// perf trajectory is machine-readable from this PR onward.
#include <chrono>

#include "bench_util.hpp"
#include "gen/package.hpp"
#include "linalg/sparse_ldlt.hpp"
#include "sim/ac.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void print_tables() {
  PackageOptions opt;
  opt.segments = 16;  // 64 pins x 16 segments -> ~2048 MNA unknowns
  const PackageCircuit pkg = make_package_circuit(opt);
  const MnaSystem sys = build_mna(pkg.netlist, MnaForm::kGeneral);
  const Index n = sys.size();
  const Index p = sys.port_count();
  const Vec freqs = log_frequency_grid(1e7, 5e9, 200);
  const Index points = static_cast<Index>(freqs.size());

  std::printf("parallel sweep bench: MNA size %lld, %lld ports, %lld points\n",
              static_cast<long long>(n), static_cast<long long>(p),
              static_cast<long long>(points));

  const AcSweepEngine engine(sys);
  const Index hw_threads = num_threads();

  set_num_threads(1);
  double t0 = now_ms();
  const SweepResult serial = engine.sweep(freqs);
  const double serial_ms = now_ms() - t0;

  set_num_threads(0);  // restore the environment/hardware default
  t0 = now_ms();
  const SweepResult threaded = engine.sweep(freqs);
  const double parallel_ms = now_ms() - t0;

  const double sweep_err = max_rel_err_sweep(threaded, serial);
  const double speedup = serial_ms / (parallel_ms + 1e-300);

  csv_begin("sweep: serial vs threaded wall time",
            {"threads", "serial_ms", "parallel_ms", "speedup", "max_rel_err"});
  csv_row({static_cast<double>(hw_threads), serial_ms, parallel_ms, speedup,
           sweep_err});

  // ---- blocked multi-RHS vs p single-RHS solves on one factor ----
  const Complex s(0.0, 2.0 * M_PI * freqs[static_cast<size_t>(points / 2)]);
  const CSMat pencil = pencil_combine(sys.G, sys.C, sys.map_s(s));
  const CLDLT fact(pencil);
  CMat rhs(n, p);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < p; ++j) rhs(i, j) = Complex(sys.B(i, j), 0.0);

  const int reps = 20;
  t0 = now_ms();
  CMat x_single(n, p);
  for (int r = 0; r < reps; ++r)
    for (Index j = 0; j < p; ++j) x_single.set_col(j, fact.solve(rhs.col(j)));
  const double single_ms = (now_ms() - t0) / reps;

  t0 = now_ms();
  CMat x_block(n, p);
  for (int r = 0; r < reps; ++r) x_block = fact.solve(rhs);
  const double multi_ms = (now_ms() - t0) / reps;

  double solve_err = 0.0;
  const double den = x_single.max_abs() + 1e-300;
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < p; ++j)
      solve_err = std::max(
          solve_err, std::abs(x_block(i, j) - x_single(i, j)) / den);

  csv_begin("multi-RHS: blocked solve vs p single solves",
            {"ports", "single_rhs_ms", "multi_rhs_ms", "speedup", "max_rel_err"});
  csv_row({static_cast<double>(p), single_ms, multi_ms,
           single_ms / (multi_ms + 1e-300), solve_err});

  json_emit("BENCH_parallel_sweep.json",
            {{"mna_size", static_cast<double>(n)},
             {"ports", static_cast<double>(p)},
             {"freq_points", static_cast<double>(points)},
             {"threads", static_cast<double>(hw_threads)},
             {"sweep_serial_ms", serial_ms},
             {"sweep_parallel_ms", parallel_ms},
             {"sweep_speedup", speedup},
             {"sweep_max_rel_err", sweep_err},
             {"single_rhs_ms", single_ms},
             {"multi_rhs_ms", multi_ms},
             {"multi_rhs_speedup", single_ms / (multi_ms + 1e-300)},
             {"multi_rhs_max_rel_err", solve_err}});
  std::printf("\nwrote BENCH_parallel_sweep.json\n");
}

}  // namespace

int main() {
  print_tables();
  sympvl::obs::flush();
  return 0;
}
