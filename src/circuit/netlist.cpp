#include "circuit/netlist.hpp"

#include <cmath>

namespace sympvl {

namespace {
std::string auto_name(const char* prefix, size_t k) {
  return std::string(prefix) + std::to_string(k + 1);
}
}  // namespace

void Netlist::check_node(Index n, const std::string& what) const {
  require(n >= 0, ErrorCode::kInvalidArgument, what + ": negative node index",
          {.stage = "netlist", .value = double(n)});
}

Index Netlist::add_resistor(Index n1, Index n2, double r, std::string name) {
  check_node(n1, "add_resistor");
  check_node(n2, "add_resistor");
  require(allow_negative_ ? r != 0.0 : r > 0.0, ErrorCode::kInvalidArgument,
          "add_resistor: resistance must be positive (and nonzero)",
          {.stage = "netlist", .value = r});
  require(n1 != n2, ErrorCode::kInvalidArgument,
          "add_resistor: element shorted to itself", {.stage = "netlist"});
  ensure_nodes(std::max(n1, n2) + 1);
  if (name.empty()) name = auto_name("R", resistors_.size());
  resistors_.push_back({std::move(name), n1, n2, r});
  return static_cast<Index>(resistors_.size()) - 1;
}

Index Netlist::add_capacitor(Index n1, Index n2, double c, std::string name) {
  check_node(n1, "add_capacitor");
  check_node(n2, "add_capacitor");
  require(allow_negative_ ? c != 0.0 : c > 0.0, ErrorCode::kInvalidArgument,
          "add_capacitor: capacitance must be positive (and nonzero)",
          {.stage = "netlist", .value = c});
  require(n1 != n2, ErrorCode::kInvalidArgument,
          "add_capacitor: element shorted to itself", {.stage = "netlist"});
  ensure_nodes(std::max(n1, n2) + 1);
  if (name.empty()) name = auto_name("C", capacitors_.size());
  capacitors_.push_back({std::move(name), n1, n2, c});
  return static_cast<Index>(capacitors_.size()) - 1;
}

Index Netlist::add_inductor(Index n1, Index n2, double l, std::string name) {
  check_node(n1, "add_inductor");
  check_node(n2, "add_inductor");
  require(l > 0.0, ErrorCode::kInvalidArgument,
          "add_inductor: inductance must be positive (and nonzero)",
          {.stage = "netlist", .value = l});
  require(n1 != n2, ErrorCode::kInvalidArgument,
          "add_inductor: element shorted to itself", {.stage = "netlist"});
  ensure_nodes(std::max(n1, n2) + 1);
  if (name.empty()) name = auto_name("L", inductors_.size());
  inductors_.push_back({std::move(name), n1, n2, l});
  return static_cast<Index>(inductors_.size()) - 1;
}

Index Netlist::add_mutual(Index l1, Index l2, double k, std::string name) {
  require(l1 != l2, "add_mutual: coupling an inductor with itself");
  require(0 <= l1 && l1 < static_cast<Index>(inductors_.size()) && 0 <= l2 &&
              l2 < static_cast<Index>(inductors_.size()),
          "add_mutual: inductor index out of range");
  require(std::abs(k) < 1.0, "add_mutual: |coupling| must be < 1");
  require(k != 0.0, ErrorCode::kInvalidArgument, "add_mutual: zero coupling",
          {.stage = "netlist"});
  if (name.empty()) name = auto_name("K", mutuals_.size());
  mutuals_.push_back({std::move(name), l1, l2, k});
  return static_cast<Index>(mutuals_.size()) - 1;
}

Index Netlist::add_current_source(Index n1, Index n2, double value,
                                  std::string name) {
  check_node(n1, "add_current_source");
  check_node(n2, "add_current_source");
  require(n1 != n2, "add_current_source: source shorted to itself");
  ensure_nodes(std::max(n1, n2) + 1);
  if (name.empty()) name = auto_name("I", sources_.size());
  sources_.push_back({std::move(name), n1, n2, value});
  return static_cast<Index>(sources_.size()) - 1;
}

Index Netlist::add_port(Index n1, Index n2, std::string name) {
  check_node(n1, "add_port");
  check_node(n2, "add_port");
  require(n1 != n2, ErrorCode::kInvalidArgument,
          "add_port: port terminals coincide", {.stage = "netlist"});
  ensure_nodes(std::max(n1, n2) + 1);
  if (name.empty()) name = auto_name("P", ports_.size());
  ports_.push_back({std::move(name), n1, n2});
  return static_cast<Index>(ports_.size()) - 1;
}

std::optional<Index> Netlist::find_port(const std::string& name) const {
  for (size_t k = 0; k < ports_.size(); ++k)
    if (ports_[k].name == name) return static_cast<Index>(k);
  return std::nullopt;
}

void Netlist::validate() const {
  require(node_count_ >= 1, "validate: no datum node");
  auto in_range = [&](Index n) { return 0 <= n && n < node_count_; };
  for (const auto& r : resistors_)
    require(in_range(r.n1) && in_range(r.n2) &&
                (allow_negative_ ? r.resistance != 0.0 : r.resistance > 0.0),
            "validate: bad resistor " + r.name);
  for (const auto& c : capacitors_)
    require(in_range(c.n1) && in_range(c.n2) &&
                (allow_negative_ ? c.capacitance != 0.0 : c.capacitance > 0.0),
            "validate: bad capacitor " + c.name);
  for (const auto& l : inductors_)
    require(in_range(l.n1) && in_range(l.n2) && l.inductance > 0.0,
            "validate: bad inductor " + l.name);
  for (const auto& m : mutuals_)
    require(m.l1 >= 0 && m.l1 < static_cast<Index>(inductors_.size()) &&
                m.l2 >= 0 && m.l2 < static_cast<Index>(inductors_.size()) &&
                std::abs(m.coupling) < 1.0,
            "validate: bad mutual coupling " + m.name);
  for (const auto& p : ports_)
    require(in_range(p.n1) && in_range(p.n2) && p.n1 != p.n2,
            "validate: bad port " + p.name);
  for (const auto& s : sources_)
    require(in_range(s.n1) && in_range(s.n2), "validate: bad source " + s.name);
}

}  // namespace sympvl
