#include "mor/sypvl.hpp"

#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "mor/moments.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

TEST(Sypvl, RequiresSinglePort) {
  const Netlist nl = random_rc({.nodes = 10, .ports = 2, .seed = 1});
  SympvlOptions opt;
  opt.order = 4;
  EXPECT_THROW(sypvl_reduce(build_mna(nl), opt), Error);
}

TEST(Sypvl, TridiagonalStructure) {
  const Netlist nl = random_rc({.nodes = 30, .ports = 1, .seed = 2});
  SympvlOptions opt;
  opt.order = 10;
  const ReducedModel rom = sypvl_reduce(build_mna(nl), opt);
  for (Index i = 0; i < rom.order(); ++i)
    for (Index j = 0; j < rom.order(); ++j)
      if (std::abs(i - j) > 1) {
        EXPECT_DOUBLE_EQ(rom.t()(i, j), 0.0) << i << "," << j;
      }
  // ρ is ρ₁·e₁.
  EXPECT_GT(rom.rho()(0, 0), 0.0);
  for (Index i = 1; i < rom.order(); ++i) EXPECT_DOUBLE_EQ(rom.rho()(i, 0), 0.0);
}

TEST(Sypvl, AgreesWithSympvlOnRc) {
  const Netlist nl = random_rc({.nodes = 40, .ports = 1, .seed = 3});
  const MnaSystem sys = build_mna(nl);
  SympvlOptions opt;
  opt.order = 12;
  const ReducedModel a = sypvl_reduce(sys, opt);
  const ReducedModel b = sympvl_reduce(sys, opt);
  for (double f : {1e6, 1e8, 1e10}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const Complex za = a.eval(s)(0, 0);
    const Complex zb = b.eval(s)(0, 0);
    EXPECT_NEAR(std::abs(za - zb), 0.0, 1e-8 * std::abs(zb)) << f;
  }
}

TEST(Sypvl, MomentMatching2n) {
  const Netlist nl = random_rc({.nodes = 35, .ports = 1, .seed = 4});
  const MnaSystem sys = build_mna(nl);
  const Index n = 7;
  SympvlOptions opt;
  opt.order = n;
  const ReducedModel rom = sypvl_reduce(sys, opt);
  const Vec exact = exact_moments_scalar(sys, 2 * n);
  for (Index k = 0; k < 2 * n; ++k)
    EXPECT_NEAR(rom.moment(k)(0, 0), exact[static_cast<size_t>(k)],
                1e-7 * std::abs(exact[static_cast<size_t>(k)]))
        << "moment " << k;
}

TEST(Sypvl, WorksOnGeneralRlc) {
  const Netlist nl = random_rlc({.nodes = 20, .ports = 1, .seed = 5});
  const MnaSystem sys = build_mna(nl, MnaForm::kGeneral);
  SympvlOptions opt;
  opt.order = 8;
  SympvlReport report;
  const ReducedModel rom = sypvl_reduce(sys, opt, &report);
  // Indefinite case: δₙ = ±1-ish values recorded in Δ.
  const auto coeff = sypvl_coefficients(rom);
  EXPECT_EQ(static_cast<Index>(coeff.deltas.size()), rom.order());
  // Accuracy near the expansion point.
  const Complex s(0.0, 2.0 * M_PI * 1e7);
  const Complex z_exact = ac_z_matrix(sys, s)(0, 0);
  const Complex z_rom = rom.eval(s)(0, 0);
  EXPECT_NEAR(std::abs(z_rom - z_exact), 0.0, 1e-3 * std::abs(z_exact));
}

TEST(Sypvl, ExhaustsWhenKrylovSpaceIsTrivial) {
  // C = α·G (each node has C_i = α/R_i): the Lanczos operator is α·I, so
  // the Krylov space is one-dimensional and the order-1 model is exact.
  Netlist nl;
  for (Index i = 1; i <= 3; ++i) {
    const double r = std::pow(2.0, static_cast<double>(i));
    nl.add_resistor(i, 0, r);
    nl.add_capacitor(i, 0, 1e-12 / r);
  }
  nl.add_resistor(1, 2, 8.0);
  nl.add_capacitor(1, 2, 1e-12 / 8.0);
  nl.add_port(1, 0);
  SympvlOptions opt;
  opt.order = 3;
  SympvlReport report;
  const ReducedModel rom = sypvl_reduce(build_mna(nl), opt, &report);
  EXPECT_EQ(rom.order(), 1);
  EXPECT_TRUE(report.exhausted);
  // And the order-1 model is exact: Z(s) matches everywhere.
  const MnaSystem sys = build_mna(nl);
  for (double f : {1e7, 1e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const Complex z_exact = ac_z_matrix(sys, s)(0, 0);
    EXPECT_NEAR(std::abs(rom.eval(s)(0, 0) - z_exact), 0.0,
                1e-9 * std::abs(z_exact));
  }
}

TEST(Sypvl, CoefficientsRoundTrip) {
  const Netlist nl = random_rc({.nodes = 25, .ports = 1, .seed = 8});
  SympvlOptions opt;
  opt.order = 6;
  const ReducedModel rom = sypvl_reduce(build_mna(nl), opt);
  const auto c = sypvl_coefficients(rom);
  ASSERT_EQ(static_cast<Index>(c.diag.size()), rom.order());
  ASSERT_EQ(static_cast<Index>(c.sub.size()), rom.order() - 1);
  for (Index i = 0; i < rom.order(); ++i)
    EXPECT_DOUBLE_EQ(c.diag[static_cast<size_t>(i)], rom.t()(i, i));
  for (Index i = 0; i + 1 < rom.order(); ++i)
    EXPECT_DOUBLE_EQ(c.sub[static_cast<size_t>(i)], rom.t()(i + 1, i));
  EXPECT_DOUBLE_EQ(c.rho1, rom.rho()(0, 0));
}

}  // namespace
}  // namespace sympvl
