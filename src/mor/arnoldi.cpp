#include "mor/arnoldi.hpp"

#include <cmath>
#include <memory>

#include "linalg/dense_factor.hpp"
#include "linalg/eig.hpp"
#include "mor/pencil.hpp"
#include "mor/sympvl.hpp"

namespace sympvl {

ArnoldiModel::ArnoldiModel(Mat gr, Mat cr, Mat br, SVariable variable,
                           int s_prefactor, double s0)
    : gr_(std::move(gr)),
      cr_(std::move(cr)),
      br_(std::move(br)),
      variable_(variable),
      s_prefactor_(s_prefactor),
      s0_(s0) {}

CMat ArnoldiModel::eval(Complex s) const {
  const Index n = order();
  const Index p = port_count();
  const Complex sigma = (variable_ == SVariable::kS ? s : s * s) - s0_;
  CMat lhs(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j) lhs(i, j) = gr_(i, j) + sigma * cr_(i, j);
  CMat rhs(n, p);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < p; ++j) rhs(i, j) = Complex(br_(i, j), 0.0);
  const CMat x = dense_solve(lhs, rhs);
  Complex pref(1.0, 0.0);
  for (int k = 0; k < s_prefactor_; ++k) pref *= s;
  CMat z(p, p);
  for (Index a = 0; a < p; ++a)
    for (Index b = 0; b < p; ++b) {
      Complex acc(0.0, 0.0);
      for (Index i = 0; i < n; ++i) acc += br_(i, a) * x(i, b);
      z(a, b) = pref * acc;
    }
  return z;
}

Mat ArnoldiModel::moment(Index k) const {
  const LU lu(gr_);
  Mat x = lu.solve(br_);
  for (Index step = 0; step < k; ++step) x = lu.solve(cr_ * x);
  return br_.transpose() * x;
}

CVec ArnoldiModel::poles() const {
  // Pencil poles: det(Gr + σCr) = 0 ⇔ σ = −1/λ for λ eig of Gr⁻¹Cr,
  // then shift and (for LC) map back through s = ±√σ.
  const Mat a = dense_solve(gr_, cr_);
  const CVec lambdas = eig_general(a);
  CVec out;
  for (const Complex& l : lambdas) {
    if (std::abs(l) < 1e-14) continue;
    const Complex sigma = Complex(s0_, 0.0) - Complex(1.0, 0.0) / l;
    if (variable_ == SVariable::kS) {
      out.push_back(sigma);
    } else {
      const Complex root = std::sqrt(sigma);
      out.push_back(root);
      out.push_back(-root);
    }
  }
  return out;
}

bool ArnoldiModel::is_stable(double tol) const {
  for (const Complex& pole : poles())
    if (pole.real() > tol) return false;
  return true;
}

ArnoldiModel arnoldi_reduce(const MnaSystem& sys, const ArnoldiOptions& options) {
  require(options.order >= 1, ErrorCode::kInvalidArgument,
          "arnoldi_reduce: order must be >= 1", {.stage = "arnoldi"});
  const Index p = sys.port_count();

  PencilFactorRequest req;
  req.s0 = options.s0;
  req.auto_shift = options.auto_shift;
  req.ordering = options.ordering;
  req.driver = "arnoldi_reduce";
  req.stage = "arnoldi.factor";
  req.cache = options.factor_cache;
  req.cache_options = options.cache;
  req.kernels = options.kernel;
  req.rhs_width = sys.port_count();
  PencilFactorResult outcome = factor_pencil(sys, req);
  const std::shared_ptr<const FactorizedPencil> fact = outcome.pencil;
  const double s0 = outcome.s0_used;

  // Block Arnoldi with modified Gram-Schmidt (applied twice) and deflation.
  std::vector<Vec> basis;
  basis.reserve(static_cast<size_t>(options.order));
  std::vector<Vec> block;
  for (Index j = 0; j < p; ++j) block.push_back(fact->solve(sys.B.col(j)));

  while (static_cast<Index>(basis.size()) < options.order && !block.empty()) {
    std::vector<Vec> next_block;
    for (auto& w : block) {
      const double ref = norm2(w);  // scale-invariant deflation test
      if (ref == 0.0) continue;
      for (int pass = 0; pass < 2; ++pass)
        for (const auto& q : basis) {
          const double h = dot(q, w);
          axpy(-h, q, w);
        }
      const double nrm = norm2(w);
      if (nrm <= options.deflation_tol * ref) continue;  // deflated
      scale(w, 1.0 / nrm);
      basis.push_back(w);
      next_block.push_back(w);
      if (static_cast<Index>(basis.size()) == options.order) break;
    }
    if (static_cast<Index>(basis.size()) == options.order) break;
    block.clear();
    for (const auto& q : next_block) block.push_back(fact->solve(sys.C.multiply(q)));
  }
  const Index n = static_cast<Index>(basis.size());
  require(n >= 1, ErrorCode::kBreakdown,
          "arnoldi_reduce: starting block deflated to nothing",
          {.stage = "arnoldi.basis"});

  // Congruence projection of G̃ = G + s₀C and C.
  const SMat gt = assemble_pencil(sys.G, sys.C, s0);
  Mat gr(n, n), cr(n, n), br(n, p);
  std::vector<Vec> gv(static_cast<size_t>(n)), cv(static_cast<size_t>(n));
  for (Index j = 0; j < n; ++j) {
    gv[static_cast<size_t>(j)] = gt.multiply(basis[static_cast<size_t>(j)]);
    cv[static_cast<size_t>(j)] = sys.C.multiply(basis[static_cast<size_t>(j)]);
  }
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j) {
      gr(i, j) = dot(basis[static_cast<size_t>(i)], gv[static_cast<size_t>(j)]);
      cr(i, j) = dot(basis[static_cast<size_t>(i)], cv[static_cast<size_t>(j)]);
    }
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < p; ++j)
      br(i, j) = dot(basis[static_cast<size_t>(i)], sys.B.col(j));
  return ArnoldiModel(std::move(gr), std::move(cr), std::move(br), sys.variable,
                      sys.s_prefactor, s0);
}

}  // namespace sympvl
