# Empty dependencies file for bench_awe_instability.
# This may be replaced when dependencies are built.
