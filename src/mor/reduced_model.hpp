// Reduced-order model produced by SyMPVL: the matrix-Padé approximant
//   Zₙ(s) = ρₙᵀ Δₙ (I + σ'Tₙ)⁻¹ ρₙ,  σ' = f(s) − s₀   (eq. 19 + eq. 26)
// together with evaluation, pole/stability analysis, moment expansion,
// time-domain simulation (eq. 23), and direct MNA stamping (Section 6).
#pragma once

#include <string>
#include <vector>

#include "circuit/mna.hpp"
#include "mor/lanczos.hpp"
#include "sim/sweep.hpp"
#include "sim/transient.hpp"

namespace sympvl {

/// A reduced-order p-port model of order n.
class ReducedModel {
 public:
  ReducedModel() = default;

  /// Builds a model from Lanczos output. `variable`/`s_prefactor` mirror
  /// the MnaSystem the model was reduced from; `s0` is the frequency shift
  /// of eq. (26) applied in the pencil variable.
  ReducedModel(const LanczosResult& lanczos, SVariable variable,
               int s_prefactor, double s0);

  /// Serializes the model (full double precision, versioned text format) —
  /// reduced models are deliverable artifacts independent of the circuit
  /// they came from.
  std::string to_text() const;
  static ReducedModel from_text(const std::string& text);
  void save(const std::string& path) const;
  static ReducedModel load(const std::string& path);

  Index order() const { return t_.rows(); }
  Index port_count() const { return rho_.cols(); }
  double shift() const { return s0_; }
  SVariable variable() const { return variable_; }
  int s_prefactor() const { return s_prefactor_; }

  const Mat& t() const { return t_; }
  const Mat& delta() const { return delta_; }
  const Mat& rho() const { return rho_; }
  const LanczosResult& lanczos() const { return lanczos_; }

  /// Evaluates the physical Zₙ(s) at a complex frequency point.
  CMat eval(Complex s) const;

  /// Sweep along the jω axis (one p×p matrix per frequency in Hz), with
  /// the same per-point fault containment as AcSweepEngine::sweep: a
  /// failed evaluation yields a NaN matrix plus a structured error record
  /// while the remaining points complete unaffected.
  /// \deprecated Prefer the unified sympvl::sweep(model, grid, options)
  /// of sim/sweep_api.hpp; this member spelling is kept for
  /// compatibility.
  SweepResult sweep(const Vec& frequencies_hz) const;

  /// Poles of Zₙ in the physical s-plane. In the pencil variable the poles
  /// are σ = s₀ − 1/λ(Tₙ) (Section 5); the LC form maps back through
  /// s = ±√σ. Eigenvalues λ = 0 correspond to poles at infinity and are
  /// omitted.
  CVec poles() const;

  /// True when every pole satisfies Re(s) ≤ tol (Section 5.1).
  bool is_stable(double tol = 1e-9) const;

  /// kth moment μₖ = ρₙᵀΔₙTₙᵏρₙ of the expansion
  /// Ẑ(σ₀+σ') = Σₖ (−σ')ᵏ μₖ; matches the exact moments of moments.hpp for
  /// k < q(n) (Section 3.2).
  Mat moment(Index k) const;

  /// Time-domain simulation of the reduced system (eq. 23),
  ///   Δₙ⁻¹x + TₙΔₙ⁻¹ẋ = ρₙ·i(t),  v = ρₙᵀx,
  /// driven by port current waveforms; returns port voltages. Requires the
  /// prefactor-free s-domain form (RC or general RLC) and zero shift.
  TransientResult simulate_transient(const std::vector<Waveform>& port_currents,
                                     const TransientOptions& options) const;

  /// Section 6, "stamped directly into the Jacobian": augments the host
  /// circuit's general-form MNA with the reduced model attached at
  /// `attach_nodes` (one circuit node per reduced port, datum allowed as 0
  /// only through the host side). The host's own .port definitions remain
  /// the observation ports of the returned system. The augmented pencil is
  /// symmetric by construction.
  MnaSystem stamp_into(const Netlist& host,
                       const std::vector<Index>& attach_nodes) const;

 private:
  Mat t_, delta_, rho_;
  Mat delta_inv_;     // cached Δ⁻¹
  Mat t_delta_inv_;   // cached TΔ⁻¹ (symmetric)
  SVariable variable_ = SVariable::kS;
  int s_prefactor_ = 0;
  double s0_ = 0.0;
  LanczosResult lanczos_;
};

}  // namespace sympvl
