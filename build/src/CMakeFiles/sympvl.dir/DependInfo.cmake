
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/mna.cpp" "src/CMakeFiles/sympvl.dir/circuit/mna.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/circuit/mna.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/sympvl.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/network_params.cpp" "src/CMakeFiles/sympvl.dir/circuit/network_params.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/circuit/network_params.cpp.o.d"
  "/root/repo/src/circuit/parser.cpp" "src/CMakeFiles/sympvl.dir/circuit/parser.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/circuit/parser.cpp.o.d"
  "/root/repo/src/circuit/topology.cpp" "src/CMakeFiles/sympvl.dir/circuit/topology.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/circuit/topology.cpp.o.d"
  "/root/repo/src/gen/package.cpp" "src/CMakeFiles/sympvl.dir/gen/package.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/gen/package.cpp.o.d"
  "/root/repo/src/gen/peec.cpp" "src/CMakeFiles/sympvl.dir/gen/peec.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/gen/peec.cpp.o.d"
  "/root/repo/src/gen/random_circuit.cpp" "src/CMakeFiles/sympvl.dir/gen/random_circuit.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/gen/random_circuit.cpp.o.d"
  "/root/repo/src/gen/rc_interconnect.cpp" "src/CMakeFiles/sympvl.dir/gen/rc_interconnect.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/gen/rc_interconnect.cpp.o.d"
  "/root/repo/src/io/csv.cpp" "src/CMakeFiles/sympvl.dir/io/csv.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/io/csv.cpp.o.d"
  "/root/repo/src/io/touchstone.cpp" "src/CMakeFiles/sympvl.dir/io/touchstone.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/io/touchstone.cpp.o.d"
  "/root/repo/src/linalg/dense.cpp" "src/CMakeFiles/sympvl.dir/linalg/dense.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/linalg/dense.cpp.o.d"
  "/root/repo/src/linalg/dense_factor.cpp" "src/CMakeFiles/sympvl.dir/linalg/dense_factor.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/linalg/dense_factor.cpp.o.d"
  "/root/repo/src/linalg/eig.cpp" "src/CMakeFiles/sympvl.dir/linalg/eig.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/linalg/eig.cpp.o.d"
  "/root/repo/src/linalg/ordering.cpp" "src/CMakeFiles/sympvl.dir/linalg/ordering.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/linalg/ordering.cpp.o.d"
  "/root/repo/src/linalg/sparse.cpp" "src/CMakeFiles/sympvl.dir/linalg/sparse.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/linalg/sparse.cpp.o.d"
  "/root/repo/src/linalg/sparse_ldlt.cpp" "src/CMakeFiles/sympvl.dir/linalg/sparse_ldlt.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/linalg/sparse_ldlt.cpp.o.d"
  "/root/repo/src/linalg/sparse_lu.cpp" "src/CMakeFiles/sympvl.dir/linalg/sparse_lu.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/linalg/sparse_lu.cpp.o.d"
  "/root/repo/src/mor/arnoldi.cpp" "src/CMakeFiles/sympvl.dir/mor/arnoldi.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/mor/arnoldi.cpp.o.d"
  "/root/repo/src/mor/awe.cpp" "src/CMakeFiles/sympvl.dir/mor/awe.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/mor/awe.cpp.o.d"
  "/root/repo/src/mor/balanced.cpp" "src/CMakeFiles/sympvl.dir/mor/balanced.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/mor/balanced.cpp.o.d"
  "/root/repo/src/mor/lanczos.cpp" "src/CMakeFiles/sympvl.dir/mor/lanczos.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/mor/lanczos.cpp.o.d"
  "/root/repo/src/mor/moments.cpp" "src/CMakeFiles/sympvl.dir/mor/moments.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/mor/moments.cpp.o.d"
  "/root/repo/src/mor/passivity.cpp" "src/CMakeFiles/sympvl.dir/mor/passivity.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/mor/passivity.cpp.o.d"
  "/root/repo/src/mor/postprocess.cpp" "src/CMakeFiles/sympvl.dir/mor/postprocess.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/mor/postprocess.cpp.o.d"
  "/root/repo/src/mor/pvl.cpp" "src/CMakeFiles/sympvl.dir/mor/pvl.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/mor/pvl.cpp.o.d"
  "/root/repo/src/mor/rational.cpp" "src/CMakeFiles/sympvl.dir/mor/rational.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/mor/rational.cpp.o.d"
  "/root/repo/src/mor/reduced_model.cpp" "src/CMakeFiles/sympvl.dir/mor/reduced_model.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/mor/reduced_model.cpp.o.d"
  "/root/repo/src/mor/sympvl.cpp" "src/CMakeFiles/sympvl.dir/mor/sympvl.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/mor/sympvl.cpp.o.d"
  "/root/repo/src/mor/synthesis.cpp" "src/CMakeFiles/sympvl.dir/mor/synthesis.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/mor/synthesis.cpp.o.d"
  "/root/repo/src/mor/sypvl.cpp" "src/CMakeFiles/sympvl.dir/mor/sypvl.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/mor/sypvl.cpp.o.d"
  "/root/repo/src/mor/vectorfit.cpp" "src/CMakeFiles/sympvl.dir/mor/vectorfit.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/mor/vectorfit.cpp.o.d"
  "/root/repo/src/sim/ac.cpp" "src/CMakeFiles/sympvl.dir/sim/ac.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/sim/ac.cpp.o.d"
  "/root/repo/src/sim/nonlinear.cpp" "src/CMakeFiles/sympvl.dir/sim/nonlinear.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/sim/nonlinear.cpp.o.d"
  "/root/repo/src/sim/sensitivity.cpp" "src/CMakeFiles/sympvl.dir/sim/sensitivity.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/sim/sensitivity.cpp.o.d"
  "/root/repo/src/sim/transient.cpp" "src/CMakeFiles/sympvl.dir/sim/transient.cpp.o" "gcc" "src/CMakeFiles/sympvl.dir/sim/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
