// Sparse matrix support: triplet (COO) assembly and compressed sparse
// column (CSC) storage, templated over real/complex scalars.
//
// MNA matrices G and C of eq. (3) are assembled as triplets during circuit
// stamping and compressed once; all downstream kernels (mat-vec, LDLᵀ,
// permutation) operate on CSC.
#pragma once

#include <vector>

#include "linalg/dense.hpp"

namespace sympvl {

template <typename T>
class SparseMatrix;

/// Triplet (coordinate) accumulator. Duplicate (i, j) entries are summed on
/// compression — exactly the semantics of MNA stamping.
template <typename T>
class TripletBuilder {
 public:
  TripletBuilder(Index rows, Index cols) : rows_(rows), cols_(cols) {
    require(rows >= 0 && cols >= 0, "TripletBuilder: negative dimension");
  }

  void add(Index i, Index j, T value) {
    require(0 <= i && i < rows_ && 0 <= j && j < cols_,
            "TripletBuilder::add: index out of range");
    if (value == T(0)) return;
    is_.push_back(i);
    js_.push_back(j);
    vals_.push_back(value);
  }

  /// Adds value at (i, j) and (j, i); adds once when i == j.
  void add_symmetric(Index i, Index j, T value) {
    add(i, j, value);
    if (i != j) add(j, i, value);
  }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nnz() const { return static_cast<Index>(vals_.size()); }

  /// Compresses into CSC, summing duplicates and dropping exact zeros.
  SparseMatrix<T> compress() const;

 private:
  Index rows_, cols_;
  std::vector<Index> is_, js_;
  std::vector<T> vals_;
};

/// Compressed sparse column matrix. Row indices within each column are
/// strictly increasing; no explicit zeros unless introduced numerically.
template <typename T>
class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(Index rows, Index cols)
      : rows_(rows), cols_(cols), colptr_(static_cast<size_t>(cols) + 1, 0) {}

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nnz() const { return static_cast<Index>(rowind_.size()); }

  const std::vector<Index>& colptr() const { return colptr_; }
  const std::vector<Index>& rowind() const { return rowind_; }
  const std::vector<T>& values() const { return values_; }
  std::vector<T>& values() { return values_; }

  /// y = A x.
  std::vector<T> multiply(const std::vector<T>& x) const {
    require(static_cast<Index>(x.size()) == cols_, "SparseMatrix::multiply: size");
    std::vector<T> y(static_cast<size_t>(rows_), T(0));
    for (Index j = 0; j < cols_; ++j) {
      const T xj = x[static_cast<size_t>(j)];
      if (xj == T(0)) continue;
      for (Index k = colptr_[static_cast<size_t>(j)];
           k < colptr_[static_cast<size_t>(j) + 1]; ++k)
        y[static_cast<size_t>(rowind_[static_cast<size_t>(k)])] +=
            values_[static_cast<size_t>(k)] * xj;
    }
    return y;
  }

  /// y += alpha * A x.
  void multiply_add(const std::vector<T>& x, std::vector<T>& y,
                    T alpha = T(1)) const {
    require(static_cast<Index>(x.size()) == cols_ &&
                static_cast<Index>(y.size()) == rows_,
            "SparseMatrix::multiply_add: size");
    for (Index j = 0; j < cols_; ++j) {
      const T xj = alpha * x[static_cast<size_t>(j)];
      if (xj == T(0)) continue;
      for (Index k = colptr_[static_cast<size_t>(j)];
           k < colptr_[static_cast<size_t>(j) + 1]; ++k)
        y[static_cast<size_t>(rowind_[static_cast<size_t>(k)])] +=
            values_[static_cast<size_t>(k)] * xj;
    }
  }

  /// y = Aᵀ x (no conjugation).
  std::vector<T> multiply_transpose(const std::vector<T>& x) const {
    require(static_cast<Index>(x.size()) == rows_,
            "SparseMatrix::multiply_transpose: size");
    std::vector<T> y(static_cast<size_t>(cols_), T(0));
    for (Index j = 0; j < cols_; ++j) {
      T acc(0);
      for (Index k = colptr_[static_cast<size_t>(j)];
           k < colptr_[static_cast<size_t>(j) + 1]; ++k)
        acc += values_[static_cast<size_t>(k)] *
               x[static_cast<size_t>(rowind_[static_cast<size_t>(k)])];
      y[static_cast<size_t>(j)] = acc;
    }
    return y;
  }

  SparseMatrix transpose() const;

  /// Index of entry (i, j) in the value array, or -1 when not stored
  /// (binary search within the column).
  Index find(Index i, Index j) const {
    require(0 <= i && i < rows_ && 0 <= j && j < cols_, "find: out of range");
    Index lo = colptr_[static_cast<size_t>(j)];
    Index hi = colptr_[static_cast<size_t>(j) + 1];
    while (lo < hi) {
      const Index mid = lo + (hi - lo) / 2;
      const Index r = rowind_[static_cast<size_t>(mid)];
      if (r == i) return mid;
      if (r < i)
        lo = mid + 1;
      else
        hi = mid;
    }
    return -1;
  }

  /// Entry lookup (binary search within the column); 0 if not stored.
  T coeff(Index i, Index j) const {
    require(0 <= i && i < rows_ && 0 <= j && j < cols_, "coeff: out of range");
    Index lo = colptr_[static_cast<size_t>(j)];
    Index hi = colptr_[static_cast<size_t>(j) + 1];
    while (lo < hi) {
      const Index mid = lo + (hi - lo) / 2;
      const Index r = rowind_[static_cast<size_t>(mid)];
      if (r == i) return values_[static_cast<size_t>(mid)];
      if (r < i)
        lo = mid + 1;
      else
        hi = mid;
    }
    return T(0);
  }

  Matrix<T> to_dense() const {
    Matrix<T> d(rows_, cols_);
    for (Index j = 0; j < cols_; ++j)
      for (Index k = colptr_[static_cast<size_t>(j)];
           k < colptr_[static_cast<size_t>(j) + 1]; ++k)
        d(rowind_[static_cast<size_t>(k)], j) = values_[static_cast<size_t>(k)];
    return d;
  }

  /// Symmetric permutation B = P A Pᵀ with B(perm_inv[i], perm_inv[j]) =
  /// A(i, j), where `perm` maps new index -> old index.
  SparseMatrix permute_symmetric(const std::vector<Index>& perm) const;

  /// C = alpha*A + beta*B (shapes must match).
  static SparseMatrix add(const SparseMatrix& a, T alpha, const SparseMatrix& b,
                          T beta);

  /// Largest |A(i,j) - A(j,i)| (must be square); 0 for symmetric.
  typename ScalarTraits<T>::Real asymmetry() const;

  // Internal: used by the builder / factorization code.
  void set_raw(std::vector<Index> colptr, std::vector<Index> rowind,
               std::vector<T> values) {
    colptr_ = std::move(colptr);
    rowind_ = std::move(rowind);
    values_ = std::move(values);
  }

 private:
  Index rows_ = 0, cols_ = 0;
  std::vector<Index> colptr_;
  std::vector<Index> rowind_;
  std::vector<T> values_;
};

using SMat = SparseMatrix<double>;
using CSMat = SparseMatrix<Complex>;

/// Converts a real sparse matrix to a complex one.
CSMat to_complex(const SMat& a);

/// Complex combination A + s·B of two real sparse matrices (the AC-analysis
/// pencil G + sC).
CSMat pencil_combine(const SMat& a, const SMat& b, Complex s);

extern template class TripletBuilder<double>;
extern template class TripletBuilder<Complex>;
extern template class SparseMatrix<double>;
extern template class SparseMatrix<Complex>;

}  // namespace sympvl
