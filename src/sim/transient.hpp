// Time-domain (transient) simulation of assembled MNA systems,
//   C·dx/dt + G·x = B·i(t),
// with fixed-step trapezoidal or backward-Euler integration and a single
// sparse LDLᵀ factorization reused across all steps.
//
// This is the "full circuit" side of the paper's Figure 5 comparison; the
// reduced-order counterpart (eq. 23) lives in mor/reduced_model.
#pragma once

#include <functional>
#include <vector>

#include "circuit/mna.hpp"
#include "linalg/dense.hpp"

namespace sympvl {

/// Scalar waveform i(t).
using Waveform = std::function<double(double)>;

enum class IntegrationMethod {
  kTrapezoidal,   ///< second order, A-stable (SPICE default)
  kBackwardEuler, ///< first order, L-stable
};

struct TransientOptions {
  double dt = 1e-12;     ///< fixed time step [s]
  double t_end = 1e-9;   ///< final time [s]
  IntegrationMethod method = IntegrationMethod::kTrapezoidal;
};

/// Result of a transient run: `outputs(k, j)` is output j at `time[k]`.
struct TransientResult {
  Vec time;
  Mat outputs;
};

/// Simulates the MNA system driven by current waveforms at its ports
/// (column j of sys.B is driven by port_currents[j]) and records the port
/// voltages v = Bᵀx. Requires a prefactor-free s-domain form (general RLC
/// or RC assembly). Zero initial conditions.
TransientResult simulate_ports_transient(
    const MnaSystem& sys, const std::vector<Waveform>& port_currents,
    const TransientOptions& options);

/// General form: drive columns of `input_map` with `inputs`, observe rows
/// of `output_mapᵀ·x`.
TransientResult simulate_transient(const MnaSystem& sys, const Mat& input_map,
                                   const std::vector<Waveform>& inputs,
                                   const Mat& output_map,
                                   const TransientOptions& options);

/// Common stimulus: 0 until t0, linear ramp to `amplitude` over `rise`,
/// then constant.
Waveform ramp_waveform(double amplitude, double t0, double rise);

/// Common stimulus: trapezoidal pulse.
Waveform pulse_waveform(double amplitude, double t0, double rise, double width,
                        double fall);

}  // namespace sympvl
