// Experiment E8 — the Section 5 theorems, measured: RC/RL/LC reductions
// are stable and passive at EVERY order; general RLC reductions are not
// guaranteed (the paper defers those to post-processing) but become
// near-passive once accurate.
//
// Tables: worst pole real part and worst Hermitian-part eigenvalue vs
// order for each circuit class.
#include "bench_util.hpp"
#include "gen/random_circuit.hpp"
#include "mor/passivity.hpp"
#include "mor/sympvl.hpp"
#include "sim/ac.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

void class_table(const char* title, const Netlist& nl,
                 const std::vector<Index>& orders) {
  const MnaSystem sys = build_mna(nl);
  const Vec freqs = log_frequency_grid(1e6, 1e10, 11);
  csv_begin(title, {"order", "max_pole_real", "min_herm_eig", "stable",
                    "passive"});
  for (Index n : orders) {
    SympvlOptions opt;
    opt.order = n;
    const ReducedModel rom = sympvl_reduce(sys, opt);
    const auto rep = check_passivity(rom, freqs);
    csv_row({static_cast<double>(n), rep.max_pole_real, rep.min_hermitian_eig,
             rep.stable ? 1.0 : 0.0, rep.passive ? 1.0 : 0.0});
  }
}

void print_tables() {
  const std::vector<Index> orders{1, 2, 4, 8, 16, 24};
  class_table("stability/passivity vs order: RC (theorem: always passive)",
              random_rc({.nodes = 60, .ports = 2, .seed = 31}), orders);
  class_table("stability/passivity vs order: RL (theorem: always passive)",
              random_rl({.nodes = 40, .ports = 2, .seed = 32}), orders);

  // LC: report pole placement (lossless => imaginary axis).
  {
    const Netlist nl = random_lc({.nodes = 40, .ports = 2, .seed = 33});
    const MnaSystem sys = build_mna(nl);
    csv_begin("LC poles vs order (theorem: on the imaginary axis)",
              {"order", "max_abs_pole_real_rel"});
    for (Index n : orders) {
      SympvlOptions opt;
      opt.order = n;
      const ReducedModel rom = sympvl_reduce(sys, opt);
      double worst = 0.0;
      for (const Complex& pole : rom.poles())
        worst = std::max(worst, std::abs(pole.real()) / (1.0 + std::abs(pole)));
      csv_row({static_cast<double>(n), worst});
    }
  }

  // General RLC: no guarantee; record what happens.
  class_table("stability/passivity vs order: general RLC (no guarantee; "
              "improves with accuracy)",
              random_rlc({.nodes = 40, .ports = 2, .seed = 34}), orders);
}

void bm_passivity_check(benchmark::State& state) {
  const Netlist nl = random_rc({.nodes = 60, .ports = 2, .seed = 31});
  SympvlOptions opt;
  opt.order = 16;
  const ReducedModel rom = sympvl_reduce(build_mna(nl), opt);
  const Vec freqs = log_frequency_grid(1e6, 1e10, 11);
  for (auto _ : state) {
    const auto rep = check_passivity(rom, freqs);
    benchmark::DoNotOptimize(rep.passive);
  }
}
BENCHMARK(bm_passivity_check)->Unit(benchmark::kMillisecond);

void bm_pole_computation(benchmark::State& state) {
  const Netlist nl = random_rc({.nodes = 60, .ports = 2, .seed = 31});
  SympvlOptions opt;
  opt.order = static_cast<Index>(state.range(0));
  const ReducedModel rom = sympvl_reduce(build_mna(nl), opt);
  for (auto _ : state) {
    const CVec poles = rom.poles();
    benchmark::DoNotOptimize(poles.size());
  }
}
BENCHMARK(bm_pole_computation)->Arg(8)->Arg(24)->Unit(benchmark::kMicrosecond);

}  // namespace

SYMPVL_BENCH_MAIN(print_tables)
