#include "mor/postprocess.hpp"

#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "mor/passivity.hpp"
#include "mor/sympvl.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

double max_rel_err(const CMat& a, const CMat& b) {
  double err = 0.0;
  const double scale = b.max_abs() + 1e-300;
  for (Index i = 0; i < a.rows(); ++i)
    for (Index j = 0; j < a.cols(); ++j)
      err = std::max(err, std::abs(a(i, j) - b(i, j)));
  return err / scale;
}

ReducedModel make_rom(const Netlist& nl, Index order, MnaForm form) {
  SympvlOptions opt;
  opt.order = order;
  return sympvl_reduce(build_mna(nl, form), opt);
}

TEST(Postprocess, ModalDecompositionIsExactRc) {
  const Netlist nl = random_rc({.nodes = 30, .ports = 2, .seed = 1});
  const ReducedModel rom = make_rom(nl, 10, MnaForm::kRC);
  const ModalModel modal = modal_decompose(rom);
  for (double f : {1e6, 1e8, 1e9, 1e10}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    EXPECT_LT(max_rel_err(modal.eval(s), rom.eval(s)), 1e-8) << f;
  }
}

TEST(Postprocess, ModalDecompositionIsExactRlc) {
  const Netlist nl = random_rlc({.nodes = 25, .ports = 2, .seed = 2});
  const ReducedModel rom = make_rom(nl, 10, MnaForm::kGeneral);
  const ModalModel modal = modal_decompose(rom);
  for (double f : {1e6, 1e8, 1e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    EXPECT_LT(max_rel_err(modal.eval(s), rom.eval(s)), 1e-7) << f;
  }
}

TEST(Postprocess, ModalPolesMatchReducedModelPoles) {
  const Netlist nl = random_rc({.nodes = 20, .ports = 1, .seed = 3});
  const ReducedModel rom = make_rom(nl, 8, MnaForm::kRC);
  const ModalModel modal = modal_decompose(rom);
  const CVec a = rom.poles();
  const CVec b = modal.physical_poles();
  ASSERT_EQ(a.size(), b.size());
  // Match as multisets (sort by real part; RC poles are real).
  Vec ra, rb;
  for (const auto& z : a) ra.push_back(z.real());
  for (const auto& z : b) rb.push_back(z.real());
  std::sort(ra.begin(), ra.end());
  std::sort(rb.begin(), rb.end());
  for (size_t k = 0; k < ra.size(); ++k)
    EXPECT_NEAR(ra[k], rb[k], 1e-6 * (1.0 + std::abs(ra[k])));
}

// Hand-built unstable modal model: one stable pole, one unstable pole.
ModalModel unstable_model() {
  CVec poles{Complex(-2e9, 0.0), Complex(5e8, 0.0)};
  std::vector<CMat> residues;
  CMat r1(1, 1), r2(1, 1);
  r1(0, 0) = Complex(3e11, 0.0);
  r2(0, 0) = Complex(1e10, 0.0);
  residues.push_back(r1);
  residues.push_back(r2);
  Mat d(1, 1);
  d(0, 0) = 10.0;
  return ModalModel(std::move(poles), std::move(residues), std::move(d),
                    SVariable::kS, 0);
}

TEST(Postprocess, FlipStabilizes) {
  const ModalModel m = unstable_model();
  EXPECT_FALSE(m.is_stable());
  StabilizeReport rep;
  const ModalModel stable = enforce_stability(m, StabilizeMode::kFlip, &rep);
  EXPECT_TRUE(stable.is_stable());
  EXPECT_EQ(rep.unstable_poles, 1);
  EXPECT_EQ(rep.flipped, 1);
  EXPECT_EQ(stable.pole_count(), 2);
  // Flipping preserves |H(jω)| contribution magnitude per pole:
  // |1/(jω − p)| = |1/(jω + p*)| for real p.
  const Complex s(0.0, 2.0 * M_PI * 1e9);
  EXPECT_NEAR(std::abs(stable.eval(s)(0, 0)), std::abs(m.eval(s)(0, 0)),
              0.5 * std::abs(m.eval(s)(0, 0)));
}

TEST(Postprocess, DropPreservesDcExactly) {
  const ModalModel m = unstable_model();
  StabilizeReport rep;
  const ModalModel stable = enforce_stability(m, StabilizeMode::kDrop, &rep);
  EXPECT_TRUE(stable.is_stable());
  EXPECT_EQ(rep.dropped, 1);
  EXPECT_EQ(stable.pole_count(), 1);
  const Complex z0a = m.eval(Complex(0.0, 0.0))(0, 0);
  const Complex z0b = stable.eval(Complex(0.0, 0.0))(0, 0);
  EXPECT_NEAR(std::abs(z0a - z0b), 0.0, 1e-9 * std::abs(z0a));
}

TEST(Postprocess, StableModelPassesThroughUnchanged) {
  const Netlist nl = random_rc({.nodes = 20, .ports = 2, .seed = 5});
  const ReducedModel rom = make_rom(nl, 8, MnaForm::kRC);
  const ModalModel modal = modal_decompose(rom);
  ASSERT_TRUE(modal.is_stable(1e-6));
  StabilizeReport rep;
  const ModalModel out = enforce_stability(modal, StabilizeMode::kFlip, &rep);
  EXPECT_EQ(rep.unstable_poles, 0);
  EXPECT_EQ(out.pole_count(), modal.pole_count());
  const Complex s(0.0, 2.0 * M_PI * 1e9);
  EXPECT_LT(max_rel_err(out.eval(s), modal.eval(s)), 1e-12);
}

TEST(Postprocess, ResiduePsdProjectionKeepsRcModelExact) {
  // RC reductions already have PSD rank-1 residues: projection is a no-op.
  const Netlist nl = random_rc({.nodes = 25, .ports = 2, .seed = 6});
  const ReducedModel rom = make_rom(nl, 9, MnaForm::kRC);
  const ModalModel modal = modal_decompose(rom);
  const ModalModel psd = enforce_residue_psd(modal);
  for (double f : {1e7, 1e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    EXPECT_LT(max_rel_err(psd.eval(s), modal.eval(s)), 1e-6) << f;
  }
}

TEST(Postprocess, ResiduePsdProjectionRepairsActiveResidue) {
  // A negative residue (active network) is clipped away, leaving a
  // passive response.
  CVec poles{Complex(-1e9, 0.0)};
  std::vector<CMat> residues;
  CMat r(1, 1);
  r(0, 0) = Complex(-5e10, 0.0);  // negative residue -> Re Z < 0 somewhere
  residues.push_back(r);
  Mat d(1, 1);
  d(0, 0) = 1.0;
  const ModalModel active(std::move(poles), std::move(residues), std::move(d),
                          SVariable::kS, 0);
  EXPECT_LT(min_hermitian_part_eig(active.eval(Complex(0.0, 1e8))), 0.0);
  const ModalModel fixed = enforce_residue_psd(active);
  EXPECT_GE(min_hermitian_part_eig(fixed.eval(Complex(0.0, 1e8))), 0.0);
}

TEST(Postprocess, ResiduePsdRejectsComplexPoles) {
  CVec poles{Complex(-1e9, 3e9)};
  std::vector<CMat> residues;
  CMat r(1, 1);
  r(0, 0) = Complex(1e10, 0.0);
  residues.push_back(r);
  const ModalModel m(std::move(poles), std::move(residues), Mat(1, 1),
                     SVariable::kS, 0);
  EXPECT_THROW(enforce_residue_psd(m), Error);
}

TEST(Postprocess, ModalDecompositionLcSquaredVariable) {
  // The σ = s² machinery must survive the modal form: eval parity with the
  // reduced model, and physical poles on the imaginary axis.
  const Netlist nl = random_lc({.nodes = 14, .ports = 1, .seed = 31});
  const ReducedModel rom = make_rom(nl, 8, MnaForm::kLC);
  const ModalModel modal = modal_decompose(rom);
  EXPECT_EQ(modal.variable(), SVariable::kSSquared);
  for (double f : {2e8, 1e9, 4e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    EXPECT_LT(max_rel_err(modal.eval(s), rom.eval(s)), 1e-6) << f;
  }
  for (const Complex& pole : modal.physical_poles())
    EXPECT_NEAR(pole.real(), 0.0, 1e-6 * (1.0 + std::abs(pole)));
  EXPECT_TRUE(modal.is_stable(1e-5 * 1e10));
}

TEST(Postprocess, StabilizeSquaredVariableModel) {
  // Hand-built s²-domain model with a σ off the negative real axis (an
  // unstable LC-type mode): kFlip must map it back to −|σ|.
  CVec poles{Complex(-1e19, 0.0), Complex(4e18, 3e18)};
  std::vector<CMat> residues;
  CMat r1(1, 1), r2(1, 1);
  r1(0, 0) = Complex(1e10, 0.0);
  r2(0, 0) = Complex(2e9, 0.0);
  residues.push_back(r1);
  residues.push_back(r2);
  const ModalModel m(std::move(poles), std::move(residues), Mat(1, 1),
                     SVariable::kSSquared, 1);
  EXPECT_FALSE(m.is_stable());
  StabilizeReport rep;
  const ModalModel fixed = enforce_stability(m, StabilizeMode::kFlip, &rep);
  EXPECT_EQ(rep.flipped, 1);
  EXPECT_TRUE(fixed.is_stable(1e-3));
  EXPECT_EQ(fixed.variable(), SVariable::kSSquared);
}

TEST(Postprocess, ShapeValidation) {
  CVec poles{Complex(-1.0, 0.0)};
  std::vector<CMat> residues;  // missing residue
  EXPECT_THROW(ModalModel(poles, residues, Mat(1, 1), SVariable::kS, 0), Error);
}

TEST(Postprocess, EndToEndStabilizeUnstableRlcRom) {
  // Hunt for a seed whose RLC reduction is unstable; post-process it and
  // confirm stability with bounded accuracy loss near the expansion point.
  for (unsigned seed = 1; seed < 60; ++seed) {
    const Netlist nl = random_rlc({.nodes = 20, .ports = 1, .seed = seed});
    const MnaSystem sys = build_mna(nl, MnaForm::kGeneral);
    SympvlOptions opt;
    opt.order = 6;
    ReducedModel rom;
    try {
      rom = sympvl_reduce(sys, opt);
    } catch (const Error&) {
      continue;
    }
    if (rom.is_stable()) continue;
    const ModalModel modal = modal_decompose(rom);
    StabilizeReport rep;
    const ModalModel stable = enforce_stability(modal, StabilizeMode::kFlip, &rep);
    EXPECT_TRUE(stable.is_stable());
    EXPECT_GT(rep.unstable_poles, 0);
    SUCCEED();
    return;
  }
  GTEST_SKIP() << "no unstable low-order RLC reduction found in seed range";
}

}  // namespace
}  // namespace sympvl
