#include "linalg/sparse_ldlt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <type_traits>

#include "fault.hpp"
#include "obs/obs.hpp"

namespace sympvl {

LdltSymbolic::LdltSymbolic(Index n, const std::vector<Index>& colptr,
                           const std::vector<Index>& rowind,
                           std::vector<Index> perm)
    : n_(n), perm_(std::move(perm)) {
  require(static_cast<Index>(perm_.size()) == n_,
          "LdltSymbolic: permutation size mismatch");
  perm_inv_.resize(static_cast<size_t>(n_));
  for (Index k = 0; k < n_; ++k)
    perm_inv_[static_cast<size_t>(perm_[static_cast<size_t>(k)])] = k;

  // ---- Permuted pattern with source mapping (counting sort by new
  // column, then sort each column by new row, carrying the original entry
  // index as payload). ----
  const Index nnz = static_cast<Index>(rowind.size());
  std::vector<Index> count(static_cast<size_t>(n_) + 1, 0);
  for (Index j = 0; j < n_; ++j) {
    const Index jnew = perm_inv_[static_cast<size_t>(j)];
    count[static_cast<size_t>(jnew) + 1] += colptr[static_cast<size_t>(j) + 1] -
                                            colptr[static_cast<size_t>(j)];
  }
  for (size_t k = 1; k <= static_cast<size_t>(n_); ++k) count[k] += count[k - 1];
  p_colptr_ = count;
  p_rowind_.resize(static_cast<size_t>(nnz));
  source_.resize(static_cast<size_t>(nnz));
  {
    std::vector<Index> next(count);
    for (Index j = 0; j < n_; ++j) {
      const Index jnew = perm_inv_[static_cast<size_t>(j)];
      for (Index p = colptr[static_cast<size_t>(j)];
           p < colptr[static_cast<size_t>(j) + 1]; ++p) {
        const Index pos = next[static_cast<size_t>(jnew)]++;
        p_rowind_[static_cast<size_t>(pos)] =
            perm_inv_[static_cast<size_t>(rowind[static_cast<size_t>(p)])];
        source_[static_cast<size_t>(pos)] = p;
      }
    }
    // Sort each permuted column by row index (payload follows).
    std::vector<Index> order;
    for (Index jn = 0; jn < n_; ++jn) {
      const Index beg = p_colptr_[static_cast<size_t>(jn)];
      const Index end = p_colptr_[static_cast<size_t>(jn) + 1];
      order.resize(static_cast<size_t>(end - beg));
      for (Index k = 0; k < end - beg; ++k) order[static_cast<size_t>(k)] = beg + k;
      std::sort(order.begin(), order.end(), [&](Index a, Index b) {
        return p_rowind_[static_cast<size_t>(a)] < p_rowind_[static_cast<size_t>(b)];
      });
      std::vector<Index> rtmp(order.size()), stmp(order.size());
      for (size_t k = 0; k < order.size(); ++k) {
        rtmp[k] = p_rowind_[static_cast<size_t>(order[k])];
        stmp[k] = source_[static_cast<size_t>(order[k])];
      }
      for (size_t k = 0; k < order.size(); ++k) {
        p_rowind_[static_cast<size_t>(beg) + k] = rtmp[k];
        source_[static_cast<size_t>(beg) + k] = stmp[k];
      }
    }
  }

  // ---- Elimination tree and column counts (LDL, Davis) on the permuted
  // upper-triangular pattern. ----
  parent_.assign(static_cast<size_t>(n_), -1);
  std::vector<Index> lnz(static_cast<size_t>(n_), 0);
  std::vector<Index> flag(static_cast<size_t>(n_), -1);
  for (Index k = 0; k < n_; ++k) {
    parent_[static_cast<size_t>(k)] = -1;
    flag[static_cast<size_t>(k)] = k;
    for (Index p = p_colptr_[static_cast<size_t>(k)];
         p < p_colptr_[static_cast<size_t>(k) + 1]; ++p) {
      Index i = p_rowind_[static_cast<size_t>(p)];
      if (i >= k) continue;
      while (flag[static_cast<size_t>(i)] != k) {
        if (parent_[static_cast<size_t>(i)] == -1) parent_[static_cast<size_t>(i)] = k;
        ++lnz[static_cast<size_t>(i)];
        flag[static_cast<size_t>(i)] = k;
        i = parent_[static_cast<size_t>(i)];
      }
    }
  }
  l_colptr_.assign(static_cast<size_t>(n_) + 1, 0);
  for (Index k = 0; k < n_; ++k)
    l_colptr_[static_cast<size_t>(k) + 1] =
        l_colptr_[static_cast<size_t>(k)] + lnz[static_cast<size_t>(k)];
}

template <typename T>
SparseLDLT<T>::SparseLDLT(const SparseMatrix<T>& a, Ordering ordering,
                          double zero_pivot_tol) {
  obs::ScopedTimer span("ldlt.factor");
  require(a.rows() == a.cols(), "SparseLDLT: matrix not square");
  n_ = a.rows();
  typename ScalarTraits<T>::Real amax(0);
  for (const auto& v : a.values()) amax = std::max(amax, ScalarTraits<T>::abs(v));
  require(a.asymmetry() <= 1e-10 * (1.0 + amax),
          "SparseLDLT: matrix not symmetric");
  symbolic_ = std::make_shared<const LdltSymbolic>(a, ordering);
  factorize(a, zero_pivot_tol);
  span.arg("n", n_);
  span.arg("nnz_a", a.nnz());
  span.arg("nnz_l", l_nnz());
  span.arg("fill_ratio", fill_ratio_);
  span.arg("flops", flops_);
  span.arg("pivot_ratio", pivot_ratio_);
  span.arg("ordering", ordering_name(ordering));
}

template <typename T>
SparseLDLT<T>::SparseLDLT(const SparseMatrix<T>& a,
                          std::shared_ptr<const LdltSymbolic> symbolic,
                          double zero_pivot_tol)
    : symbolic_(std::move(symbolic)) {
  obs::ScopedTimer span("ldlt.refactor");
  require(symbolic_ != nullptr, "SparseLDLT: null symbolic analysis");
  require(a.rows() == a.cols() && a.rows() == symbolic_->n_,
          "SparseLDLT: size does not match the symbolic analysis");
  require(a.nnz() == static_cast<Index>(symbolic_->source_.size()),
          "SparseLDLT: pattern does not match the symbolic analysis");
  n_ = a.rows();
  factorize(a, zero_pivot_tol);
  span.arg("n", n_);
  span.arg("nnz_l", l_nnz());
  span.arg("fill_ratio", fill_ratio_);
  span.arg("flops", flops_);
  span.arg("pivot_ratio", pivot_ratio_);
}

template <typename T>
void SparseLDLT<T>::factorize(const SparseMatrix<T>& a, double zero_pivot_tol) {
  const LdltSymbolic& sym = *symbolic_;
  const auto& colptr = sym.p_colptr_;
  const auto& rowind = sym.p_rowind_;
  const auto& parent = sym.parent_;

  // Gather the values into permuted order via the precomputed mapping.
  std::vector<T> values(sym.source_.size());
  for (size_t k = 0; k < values.size(); ++k)
    values[k] = a.values()[static_cast<size_t>(sym.source_[k])];

  l_colptr_ = sym.l_colptr_;
  l_rowind_.assign(static_cast<size_t>(l_colptr_[static_cast<size_t>(n_)]), 0);
  l_values_.assign(l_rowind_.size(), T(0));

  // ---- Numeric factorization (up-looking).
  d_.assign(static_cast<size_t>(n_), T(0));
  std::vector<T> y(static_cast<size_t>(n_), T(0));
  std::vector<Index> pattern(static_cast<size_t>(n_), 0);
  std::vector<Index> lnz_used(static_cast<size_t>(n_), 0);
  std::vector<Index> flag(static_cast<size_t>(n_), -1);

  double dmin = std::numeric_limits<double>::infinity();
  double dmax = 0.0;
  double amax = 0.0;
  for (const auto& v : values) amax = std::max(amax, ScalarTraits<T>::abs(v));
  const double pivot_floor = zero_pivot_tol * amax;
  double flops = 0.0;

  for (Index k = 0; k < n_; ++k) {
    Index top = n_;
    flag[static_cast<size_t>(k)] = k;
    for (Index p = colptr[static_cast<size_t>(k)];
         p < colptr[static_cast<size_t>(k) + 1]; ++p) {
      Index i = rowind[static_cast<size_t>(p)];
      if (i > k) continue;
      y[static_cast<size_t>(i)] += values[static_cast<size_t>(p)];
      Index len = 0;
      while (flag[static_cast<size_t>(i)] != k) {
        pattern[static_cast<size_t>(len++)] = i;
        flag[static_cast<size_t>(i)] = k;
        i = parent[static_cast<size_t>(i)];
      }
      while (len > 0)
        pattern[static_cast<size_t>(--top)] = pattern[static_cast<size_t>(--len)];
    }
    d_[static_cast<size_t>(k)] = y[static_cast<size_t>(k)];
    y[static_cast<size_t>(k)] = T(0);
    for (Index s = top; s < n_; ++s) {
      const Index i = pattern[static_cast<size_t>(s)];
      const T yi = y[static_cast<size_t>(i)];
      y[static_cast<size_t>(i)] = T(0);
      const Index pend =
          l_colptr_[static_cast<size_t>(i)] + lnz_used[static_cast<size_t>(i)];
      for (Index p = l_colptr_[static_cast<size_t>(i)]; p < pend; ++p)
        y[static_cast<size_t>(l_rowind_[static_cast<size_t>(p)])] -=
            l_values_[static_cast<size_t>(p)] * yi;
      flops += 2.0 * static_cast<double>(pend - l_colptr_[static_cast<size_t>(i)]) + 3.0;
      const T lki = yi / d_[static_cast<size_t>(i)];
      d_[static_cast<size_t>(k)] -= lki * yi;
      l_rowind_[static_cast<size_t>(pend)] = k;
      l_values_[static_cast<size_t>(pend)] = lki;
      ++lnz_used[static_cast<size_t>(i)];
    }
    const double dk = ScalarTraits<T>::abs(d_[static_cast<size_t>(k)]);
    fault::check("ldlt.pivot", k);
    if (!(dk != 0.0 && dk > pivot_floor))
      throw Error(ErrorCode::kZeroPivot,
                  "SparseLDLT: zero pivot encountered (matrix singular or not "
                  "quasi-definite; consider a frequency shift, eq. 26)",
                  ErrorContext{.stage = "ldlt.factor", .index = k, .value = dk});
    dmin = std::min(dmin, dk);
    dmax = std::max(dmax, dk);
  }
  pivot_ratio_ = (dmax > 0.0) ? dmin / dmax : 0.0;
  flops_ = flops;
  // Fill-in relative to the lower triangle of A (A is stored with both
  // triangles; (nnz + n)/2 is its lower-triangle count incl. diagonal).
  fill_ratio_ = static_cast<double>(l_nnz() + n_) /
                std::max(1.0, (static_cast<double>(a.nnz()) +
                               static_cast<double>(n_)) / 2.0);

  sqrt_abs_d_.resize(static_cast<size_t>(n_));
  for (Index k = 0; k < n_; ++k)
    sqrt_abs_d_[static_cast<size_t>(k)] =
        std::sqrt(ScalarTraits<T>::abs(d_[static_cast<size_t>(k)]));
}

template <typename T>
void SparseLDLT<T>::forward_solve(std::vector<T>& x) const {
  for (Index j = 0; j < n_; ++j) {
    const T xj = x[static_cast<size_t>(j)];
    if (xj == T(0)) continue;
    for (Index p = l_colptr_[static_cast<size_t>(j)];
         p < l_colptr_[static_cast<size_t>(j) + 1]; ++p)
      x[static_cast<size_t>(l_rowind_[static_cast<size_t>(p)])] -=
          l_values_[static_cast<size_t>(p)] * xj;
  }
}

template <typename T>
void SparseLDLT<T>::backward_solve(std::vector<T>& x) const {
  for (Index j = n_ - 1; j >= 0; --j) {
    T acc = x[static_cast<size_t>(j)];
    for (Index p = l_colptr_[static_cast<size_t>(j)];
         p < l_colptr_[static_cast<size_t>(j) + 1]; ++p)
      acc -= l_values_[static_cast<size_t>(p)] *
             x[static_cast<size_t>(l_rowind_[static_cast<size_t>(p)])];
    x[static_cast<size_t>(j)] = acc;
  }
}

template <typename T>
std::vector<T> SparseLDLT<T>::solve(const std::vector<T>& b) const {
  require(static_cast<Index>(b.size()) == n_, "SparseLDLT::solve: size mismatch");
  const auto& perm = symbolic_->perm_;
  std::vector<T> x(static_cast<size_t>(n_));
  for (Index i = 0; i < n_; ++i)
    x[static_cast<size_t>(i)] = b[static_cast<size_t>(perm[static_cast<size_t>(i)])];
  forward_solve(x);
  for (Index i = 0; i < n_; ++i) x[static_cast<size_t>(i)] /= d_[static_cast<size_t>(i)];
  backward_solve(x);
  std::vector<T> out(static_cast<size_t>(n_));
  for (Index i = 0; i < n_; ++i)
    out[static_cast<size_t>(perm[static_cast<size_t>(i)])] = x[static_cast<size_t>(i)];
  return out;
}

template <typename T>
Matrix<T> SparseLDLT<T>::solve(const Matrix<T>& b) const {
  require(b.rows() == n_, "SparseLDLT::solve: row count mismatch");
  const Index p = b.cols();
  const auto& perm = symbolic_->perm_;
  // Row-major X: row i is the length-p block for unknown i, so the inner
  // update loops below run over contiguous memory.
  Matrix<T> x(n_, p);
  for (Index i = 0; i < n_; ++i) {
    const T* src = b.data() + perm[static_cast<size_t>(i)] * p;
    T* dst = x.data() + i * p;
    for (Index r = 0; r < p; ++r) dst[r] = src[r];
  }
  // Forward: L X = B (unit lower), one pass over L's columns.
  for (Index j = 0; j < n_; ++j) {
    const T* xj = x.data() + j * p;
    for (Index q = l_colptr_[static_cast<size_t>(j)];
         q < l_colptr_[static_cast<size_t>(j) + 1]; ++q) {
      const T lij = l_values_[static_cast<size_t>(q)];
      T* xi = x.data() + l_rowind_[static_cast<size_t>(q)] * p;
      for (Index r = 0; r < p; ++r) xi[r] -= lij * xj[r];
    }
  }
  // Diagonal: D X = X.
  for (Index j = 0; j < n_; ++j) {
    const T dj = d_[static_cast<size_t>(j)];
    T* xj = x.data() + j * p;
    for (Index r = 0; r < p; ++r) xj[r] /= dj;
  }
  // Backward: Lᵀ X = X, one pass over L's columns in reverse.
  for (Index j = n_ - 1; j >= 0; --j) {
    T* xj = x.data() + j * p;
    for (Index q = l_colptr_[static_cast<size_t>(j)];
         q < l_colptr_[static_cast<size_t>(j) + 1]; ++q) {
      const T lij = l_values_[static_cast<size_t>(q)];
      const T* xi = x.data() + l_rowind_[static_cast<size_t>(q)] * p;
      for (Index r = 0; r < p; ++r) xj[r] -= lij * xi[r];
    }
  }
  Matrix<T> out(n_, p);
  for (Index i = 0; i < n_; ++i) {
    const T* src = x.data() + i * p;
    T* dst = out.data() + perm[static_cast<size_t>(i)] * p;
    for (Index r = 0; r < p; ++r) dst[r] = src[r];
  }
  return out;
}

template <typename T>
Vec SparseLDLT<T>::j_signs() const {
  if constexpr (std::is_same_v<T, double>) {
    Vec j(static_cast<size_t>(n_));
    for (Index k = 0; k < n_; ++k)
      j[static_cast<size_t>(k)] = d_[static_cast<size_t>(k)] > 0.0 ? 1.0 : -1.0;
    return j;
  } else {
    throw Error(ErrorCode::kInvalidArgument,
                "SparseLDLT::j_signs: only defined for real factorizations",
                {.stage = "ldlt"});
  }
}

template <typename T>
Index SparseLDLT<T>::negative_pivots() const {
  if constexpr (std::is_same_v<T, double>) {
    Index c = 0;
    for (const auto& dk : d_)
      if (dk < 0.0) ++c;
    return c;
  } else {
    throw Error(ErrorCode::kInvalidArgument,
                "SparseLDLT::negative_pivots: only defined for real factorizations",
                {.stage = "ldlt"});
  }
}

template <typename T>
std::vector<T> SparseLDLT<T>::solve_m(const std::vector<T>& b) const {
  require(static_cast<Index>(b.size()) == n_, "solve_m: size mismatch");
  const auto& perm = symbolic_->perm_;
  std::vector<T> x(static_cast<size_t>(n_));
  for (Index i = 0; i < n_; ++i)
    x[static_cast<size_t>(i)] = b[static_cast<size_t>(perm[static_cast<size_t>(i)])];
  forward_solve(x);
  for (Index i = 0; i < n_; ++i)
    x[static_cast<size_t>(i)] /= sqrt_abs_d_[static_cast<size_t>(i)];
  return x;
}

template <typename T>
std::vector<T> SparseLDLT<T>::solve_mt(const std::vector<T>& b) const {
  require(static_cast<Index>(b.size()) == n_, "solve_mt: size mismatch");
  const auto& perm = symbolic_->perm_;
  std::vector<T> x(b);
  for (Index i = 0; i < n_; ++i)
    x[static_cast<size_t>(i)] /= sqrt_abs_d_[static_cast<size_t>(i)];
  backward_solve(x);
  std::vector<T> out(static_cast<size_t>(n_));
  for (Index i = 0; i < n_; ++i)
    out[static_cast<size_t>(perm[static_cast<size_t>(i)])] = x[static_cast<size_t>(i)];
  return out;
}

template class SparseLDLT<double>;
template class SparseLDLT<Complex>;

}  // namespace sympvl
