#include "circuit/topology.hpp"

#include <sstream>

namespace sympvl {

namespace {

// Union-find with path compression.
class UnionFind {
 public:
  explicit UnionFind(Index n) : parent_(static_cast<size_t>(n)) {
    for (Index i = 0; i < n; ++i) parent_[static_cast<size_t>(i)] = i;
  }
  Index find(Index x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  void unite(Index a, Index b) { parent_[static_cast<size_t>(find(a))] = find(b); }

 private:
  std::vector<Index> parent_;
};

// Applies `edge(a, b)` for every element of the selected kinds.
template <typename EdgeFn>
void for_each_edge(const Netlist& nl, bool use_r, bool use_l, bool use_c,
                   const EdgeFn& edge) {
  if (use_r)
    for (const auto& r : nl.resistors()) edge(r.n1, r.n2);
  if (use_l)
    for (const auto& l : nl.inductors()) edge(l.n1, l.n2);
  if (use_c)
    for (const auto& c : nl.capacitors()) edge(c.n1, c.n2);
}

UnionFind dc_union(const Netlist& nl, MnaForm form) {
  // Which elements stamp into G for this assembly?
  bool use_r = false, use_l = false;
  switch (form) {
    case MnaForm::kRC:
      use_r = true;
      break;
    case MnaForm::kLC:
      use_l = true;
      break;
    case MnaForm::kRL:
    case MnaForm::kGeneral:
      use_r = true;
      use_l = true;
      break;
    case MnaForm::kAuto:
      // Mirror build_mna's dispatch.
      if (nl.is_lc() && nl.has_inductors()) return dc_union(nl, MnaForm::kLC);
      if (nl.is_rc()) return dc_union(nl, MnaForm::kRC);
      if (nl.is_rl()) return dc_union(nl, MnaForm::kRL);
      return dc_union(nl, MnaForm::kGeneral);
  }
  UnionFind uf(nl.node_count());
  for_each_edge(nl, use_r, use_l, /*use_c=*/false,
                [&](Index a, Index b) { uf.unite(a, b); });
  return uf;
}

}  // namespace

ConnectivityReport analyze_connectivity(const Netlist& netlist) {
  UnionFind uf(netlist.node_count());
  for_each_edge(netlist, true, true, true,
                [&](Index a, Index b) { uf.unite(a, b); });
  ConnectivityReport rep;
  rep.component_of.resize(static_cast<size_t>(netlist.node_count()));
  std::vector<Index> label(static_cast<size_t>(netlist.node_count()), -1);
  Index next = 0;
  for (Index v = 0; v < netlist.node_count(); ++v) {
    const Index root = uf.find(v);
    if (label[static_cast<size_t>(root)] < 0) label[static_cast<size_t>(root)] = next++;
    rep.component_of[static_cast<size_t>(v)] = label[static_cast<size_t>(root)];
  }
  rep.component_count = next;
  rep.fully_connected = (next == 1);
  return rep;
}

std::vector<Index> floating_nodes(const Netlist& netlist, MnaForm form) {
  UnionFind uf = dc_union(netlist, form);
  const Index ground_root = uf.find(0);
  std::vector<Index> out;
  for (Index v = 1; v < netlist.node_count(); ++v)
    if (uf.find(v) != ground_root) out.push_back(v);
  return out;
}

bool has_dc_path_to_ground(const Netlist& netlist, MnaForm form) {
  return floating_nodes(netlist, form).empty();
}

NetlistStats netlist_stats(const Netlist& netlist) {
  NetlistStats s;
  s.nodes = netlist.node_count() - 1;
  s.resistors = static_cast<Index>(netlist.resistors().size());
  s.capacitors = static_cast<Index>(netlist.capacitors().size());
  s.inductors = static_cast<Index>(netlist.inductors().size());
  s.mutuals = static_cast<Index>(netlist.mutuals().size());
  s.ports = netlist.port_count();
  s.components = analyze_connectivity(netlist).component_count;
  s.g_structurally_singular_general =
      !has_dc_path_to_ground(netlist, MnaForm::kGeneral);
  s.g_structurally_singular_special =
      !has_dc_path_to_ground(netlist, MnaForm::kAuto);
  return s;
}

std::string describe(const Netlist& netlist) {
  const NetlistStats s = netlist_stats(netlist);
  std::ostringstream out;
  out << s.nodes << " nodes, " << s.resistors << " R, " << s.capacitors
      << " C, " << s.inductors << " L, " << s.mutuals << " K, " << s.ports
      << " ports";
  std::string cls = "RLC";
  if (netlist.is_rc()) cls = "RC";
  else if (netlist.is_lc() && netlist.has_inductors()) cls = "LC";
  else if (netlist.is_rl() && netlist.has_inductors()) cls = "RL";
  out << " (" << cls << " circuit, " << s.components
      << (s.components == 1 ? " component" : " components") << ")";
  if (s.g_structurally_singular_special)
    out << "; G is structurally singular - a frequency shift (eq. 26) is "
           "required";
  return out.str();
}

}  // namespace sympvl
