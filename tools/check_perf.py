#!/usr/bin/env python3
"""Perf-trajectory gate for BENCH_*.json files.

Usage:
    check_perf.py CURRENT BASELINE [--threshold 0.20] [--keys k1,k2,...]

Compares the timing keys of a freshly produced BENCH_*.json against a
checked-in baseline and exits nonzero when any gated key regressed by
more than the threshold (current > baseline * (1 + threshold)).

The comparison is meta-aware: wall-clock numbers are only comparable
between runs of the same machine shape and build. When the "meta"
blocks differ on any of the identity fields (compiler, build type,
C++ flags, hardware concurrency, resolved thread count, resolved SIMD
level) the gate is SKIPPED instead of producing a false verdict — a
laptop must not fail CI against a CI-host baseline, and an AVX-512
host must not be judged against scalar-kernel numbers (or vice versa).
The skip diagnostic lists which identity fields diverged AND every
gated key that consequently went uncompared, so a silent skip can
never masquerade as a pass in CI logs. Every outcome ends with a
one-line "check_perf: PASS/FAIL/SKIP" summary.

Gated keys: by default every key ending in "_s" or "_ms" (seconds /
milliseconds — smaller is better). A gated key may also hold a numeric
list (a series, e.g. a time-vs-ports curve); it is then compared
element-wise against the baseline list, and a length mismatch is a
failure (the series' shape is part of the contract). Ratio keys
("*_speedup") are reported but never gated; they are derived from the
gated times and noisy in both directions.
"""

import argparse
import json
import sys

META_IDENTITY_FIELDS = (
    "compiler",
    "build_type",
    "cxx_flags",
    "hardware_concurrency",
    "resolved_threads",
    # Recorded by obs::run_metadata_json since the SIMD dispatch layer
    # landed; older baselines without the field mismatch against newer
    # runs (None != "avx512"), which correctly forces a re-baseline.
    "simd_level",
)


def load(path):
    with open(path) as f:
        return json.load(f)


def meta_mismatches(current, baseline):
    cm, bm = current.get("meta", {}), baseline.get("meta", {})
    return [
        (field, cm.get(field), bm.get(field))
        for field in META_IDENTITY_FIELDS
        if cm.get(field) != bm.get(field)
    ]


def is_numeric_list(v):
    return (isinstance(v, list) and len(v) > 0
            and all(isinstance(x, (int, float)) for x in v))


def gated_keys(doc, explicit):
    if explicit:
        return explicit
    return [
        k
        for k, v in doc.items()
        if k != "meta"
        and (isinstance(v, (int, float)) or is_numeric_list(v))
        and (k.endswith("_s") or k.endswith("_ms"))
    ]


def compare_scalar(key, cur, base, threshold, failures):
    """Prints one gated comparison line; appends to failures on regression."""
    if base <= 0.0:
        print(f"  {key}: baseline {base:.6g} not positive, skipped")
        return
    ratio = cur / base
    verdict = "OK"
    if ratio > 1.0 + threshold:
        verdict = "REGRESSION"
        failures.append(f"{key}: {base:.6g} -> {cur:.6g} "
                        f"({(ratio - 1.0) * 100.0:+.1f}%)")
    print(f"  {key}: baseline {base:.6g}  current {cur:.6g}  "
          f"({(ratio - 1.0) * 100.0:+.1f}%)  {verdict}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed relative regression (default 0.20)")
    parser.add_argument("--keys", default="",
                        help="comma-separated keys to gate (default: all "
                             "*_s / *_ms keys present in the baseline)")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    explicit = [k for k in args.keys.split(",") if k]

    mismatches = meta_mismatches(current, baseline)
    if mismatches:
        skipped = gated_keys(baseline, explicit)
        print(f"check_perf: meta mismatch — wall-clock numbers from "
              f"different machine shapes/builds are not comparable:")
        for field, cur, base in mismatches:
            print(f"  {field}: current={cur!r} baseline={base!r}")
        print(f"check_perf: the following {len(skipped)} gated key(s) were "
              "NOT compared because of the mismatch above:")
        for key in skipped:
            print(f"  {key} (baseline {baseline.get(key)!r}, "
                  f"current {current.get(key)!r})")
        fields = ", ".join(field for field, _, _ in mismatches)
        print(f"check_perf: SKIP {args.current} — {len(skipped)} key(s) "
              f"skipped (meta mismatch on: {fields})")
        return 0

    keys = gated_keys(baseline, explicit)
    if not keys:
        print(f"check_perf: {args.baseline} has no gated timing keys")
        return 2

    failures = []
    for key in keys:
        if key not in current or key not in baseline:
            failures.append(f"{key}: missing from "
                            f"{'current' if key not in current else 'baseline'}")
            continue
        if is_numeric_list(baseline[key]) or is_numeric_list(current[key]):
            cur_list, base_list = current[key], baseline[key]
            if not (is_numeric_list(cur_list) and is_numeric_list(base_list)):
                failures.append(f"{key}: list/scalar type mismatch between "
                                "current and baseline")
                continue
            if len(cur_list) != len(base_list):
                failures.append(f"{key}: series length changed "
                                f"{len(base_list)} -> {len(cur_list)}")
                continue
            for i, (cur, base) in enumerate(zip(cur_list, base_list)):
                compare_scalar(f"{key}[{i}]", float(cur), float(base),
                               args.threshold, failures)
            continue
        compare_scalar(key, float(current[key]), float(baseline[key]),
                       args.threshold, failures)

    for key, value in sorted(current.items()):
        if key.endswith("_speedup"):
            print(f"  {key}: {value:.3g} (informational)")

    if failures:
        print(f"check_perf: FAIL {args.current} — "
              f"{len(failures)} gated key(s) regressed "
              f">{args.threshold * 100:.0f}%:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"check_perf: PASS {args.current} ({len(keys)} keys gated)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
