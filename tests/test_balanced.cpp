#include "mor/balanced.hpp"

#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "mor/sympvl.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

double sweep_err(const ArnoldiModel& m, const MnaSystem& sys, const Vec& freqs,
                 const std::vector<CMat>& exact) {
  (void)sys;
  double err = 0.0;
  for (size_t k = 0; k < freqs.size(); ++k) {
    const CMat z = m.eval(Complex(0.0, 2.0 * M_PI * freqs[k]));
    for (Index i = 0; i < z.rows(); ++i)
      for (Index j = 0; j < z.cols(); ++j)
        err = std::max(err, std::abs(z(i, j) - exact[k](i, j)));
  }
  return err;
}

TEST(Balanced, ExactAtFullOrder) {
  const Netlist nl = random_rc({.nodes = 12, .ports = 1, .seed = 1});
  const MnaSystem sys = build_mna(nl);
  BalancedOptions opt;
  opt.order = sys.size();
  const BalancedResult bt = balanced_truncation(sys, opt);
  EXPECT_NEAR(bt.error_bound, 0.0, 1e-12);
  for (double f : {1e7, 1e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const Complex exact = ac_z_matrix(sys, s)(0, 0);
    EXPECT_NEAR(std::abs(bt.model.eval(s)(0, 0) - exact), 0.0,
                1e-7 * std::abs(exact));
  }
}

TEST(Balanced, HankelValuesDescendingNonNegative) {
  const Netlist nl = random_rc({.nodes = 25, .ports = 2, .seed = 2});
  const MnaSystem sys = build_mna(nl);
  BalancedOptions opt;
  opt.order = 5;
  const BalancedResult bt = balanced_truncation(sys, opt);
  const Vec& hsv = bt.hankel_singular_values;
  ASSERT_EQ(static_cast<Index>(hsv.size()), sys.size());
  for (size_t k = 0; k + 1 < hsv.size(); ++k) {
    EXPECT_GE(hsv[k], hsv[k + 1] - 1e-12);
    EXPECT_GE(hsv[k], 0.0);
  }
}

TEST(Balanced, HInfinityBoundHolds) {
  // The classical guarantee: sampled ‖Z − Z_k‖ on the jω axis never
  // exceeds 2·Σ truncated Hankel values.
  const Netlist nl = random_rc({.nodes = 30, .ports = 2, .seed = 3});
  const MnaSystem sys = build_mna(nl);
  const Vec freqs = log_frequency_grid(1e4, 1e12, 40);
  const auto exact = ac_sweep(sys, freqs);
  for (Index order : {2, 4, 8, 16}) {
    BalancedOptions opt;
    opt.order = order;
    const BalancedResult bt = balanced_truncation(sys, opt);
    const double err = sweep_err(bt.model, sys, freqs, exact);
    EXPECT_LE(err, bt.error_bound * (1.0 + 1e-6) + 1e-12)
        << "order " << order;
  }
}

TEST(Balanced, ModelsAreStable) {
  const Netlist nl = random_rc({.nodes = 20, .ports = 2, .seed = 4});
  const MnaSystem sys = build_mna(nl);
  for (Index order : {1, 3, 7}) {
    BalancedOptions opt;
    opt.order = order;
    EXPECT_TRUE(balanced_truncation(sys, opt).model.is_stable()) << order;
  }
}

TEST(Balanced, NearOptimalVsKrylovOnTruncatedTail) {
  // At matched order the BT worst-case (H∞-like) error is competitive
  // with (typically better than) the Padé model's worst-case error over a
  // wide band — the classic trade-off this baseline exists to show.
  const Netlist nl = random_rc({.nodes = 40, .ports = 1, .seed = 5});
  const MnaSystem sys = build_mna(nl);
  const Vec freqs = log_frequency_grid(1e4, 1e12, 30);
  const auto exact = ac_sweep(sys, freqs);
  const Index order = 6;
  BalancedOptions bopt;
  bopt.order = order;
  const BalancedResult bt = balanced_truncation(sys, bopt);
  SympvlOptions sopt;
  sopt.order = order;
  const ReducedModel rom = sympvl_reduce(sys, sopt);
  double pade_err = 0.0;
  for (size_t k = 0; k < freqs.size(); ++k)
    pade_err = std::max(pade_err,
                        std::abs(rom.eval(Complex(0.0, 2.0 * M_PI * freqs[k]))(0, 0) -
                                 exact[k](0, 0)));
  const double bt_err = sweep_err(bt.model, sys, freqs, exact);
  // BT should not be dramatically worse; typically it wins on max error.
  EXPECT_LE(bt_err, 10.0 * pade_err + bt.error_bound);
}

TEST(Balanced, RejectsUnsupportedSystems) {
  // General RLC assembly is indefinite: rejected.
  const Netlist rlc = random_rlc({.nodes = 10, .ports = 1, .seed = 6});
  const MnaSystem gen = build_mna(rlc, MnaForm::kGeneral);
  BalancedOptions opt;
  opt.order = 2;
  EXPECT_THROW(balanced_truncation(gen, opt), Error);

  // Order out of range.
  const Netlist rc = random_rc({.nodes = 8, .ports = 1, .seed = 7});
  const MnaSystem sys = build_mna(rc);
  opt.order = 0;
  EXPECT_THROW(balanced_truncation(sys, opt), Error);
  opt.order = sys.size() + 1;
  EXPECT_THROW(balanced_truncation(sys, opt), Error);
}

}  // namespace
}  // namespace sympvl
