#include "linalg/sparse_ldlt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <type_traits>

#include "fault.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace sympvl {
namespace {

// Parallel grain gates: an elimination-tree level fans out across the
// thread pool only when it holds at least two supernodes AND enough dense
// work to amortize the dispatch. Work is measured in dense panel entries
// (times the RHS block width for solves) — a deterministic function of the
// symbolic analysis, so the schedule never depends on timing.
constexpr double kFactorGrainEntries = 16384.0;
constexpr double kSolveGrainEntries = 65536.0;

}  // namespace
}  // namespace sympvl

namespace sympvl {

LdltSymbolic::LdltSymbolic(Index n, const std::vector<Index>& colptr,
                           const std::vector<Index>& rowind,
                           std::vector<Index> perm)
    : n_(n), perm_(std::move(perm)) {
  require(static_cast<Index>(perm_.size()) == n_,
          "LdltSymbolic: permutation size mismatch");
  perm_inv_.resize(static_cast<size_t>(n_));
  for (Index k = 0; k < n_; ++k)
    perm_inv_[static_cast<size_t>(perm_[static_cast<size_t>(k)])] = k;

  // ---- Permuted pattern with source mapping (counting sort by new
  // column, then sort each column by new row, carrying the original entry
  // index as payload). ----
  const Index nnz = static_cast<Index>(rowind.size());
  std::vector<Index> count(static_cast<size_t>(n_) + 1, 0);
  for (Index j = 0; j < n_; ++j) {
    const Index jnew = perm_inv_[static_cast<size_t>(j)];
    count[static_cast<size_t>(jnew) + 1] += colptr[static_cast<size_t>(j) + 1] -
                                            colptr[static_cast<size_t>(j)];
  }
  for (size_t k = 1; k <= static_cast<size_t>(n_); ++k) count[k] += count[k - 1];
  p_colptr_ = count;
  p_rowind_.resize(static_cast<size_t>(nnz));
  source_.resize(static_cast<size_t>(nnz));
  {
    std::vector<Index> next(count);
    for (Index j = 0; j < n_; ++j) {
      const Index jnew = perm_inv_[static_cast<size_t>(j)];
      for (Index p = colptr[static_cast<size_t>(j)];
           p < colptr[static_cast<size_t>(j) + 1]; ++p) {
        const Index pos = next[static_cast<size_t>(jnew)]++;
        p_rowind_[static_cast<size_t>(pos)] =
            perm_inv_[static_cast<size_t>(rowind[static_cast<size_t>(p)])];
        source_[static_cast<size_t>(pos)] = p;
      }
    }
    // Sort each permuted column by row index (payload follows).
    std::vector<Index> order;
    for (Index jn = 0; jn < n_; ++jn) {
      const Index beg = p_colptr_[static_cast<size_t>(jn)];
      const Index end = p_colptr_[static_cast<size_t>(jn) + 1];
      order.resize(static_cast<size_t>(end - beg));
      for (Index k = 0; k < end - beg; ++k) order[static_cast<size_t>(k)] = beg + k;
      std::sort(order.begin(), order.end(), [&](Index a, Index b) {
        return p_rowind_[static_cast<size_t>(a)] < p_rowind_[static_cast<size_t>(b)];
      });
      std::vector<Index> rtmp(order.size()), stmp(order.size());
      for (size_t k = 0; k < order.size(); ++k) {
        rtmp[k] = p_rowind_[static_cast<size_t>(order[k])];
        stmp[k] = source_[static_cast<size_t>(order[k])];
      }
      for (size_t k = 0; k < order.size(); ++k) {
        p_rowind_[static_cast<size_t>(beg) + k] = rtmp[k];
        source_[static_cast<size_t>(beg) + k] = stmp[k];
      }
    }
  }

  // ---- Elimination tree and column counts (LDL, Davis) on the permuted
  // upper-triangular pattern. ----
  parent_.assign(static_cast<size_t>(n_), -1);
  std::vector<Index> lnz(static_cast<size_t>(n_), 0);
  std::vector<Index> flag(static_cast<size_t>(n_), -1);
  for (Index k = 0; k < n_; ++k) {
    parent_[static_cast<size_t>(k)] = -1;
    flag[static_cast<size_t>(k)] = k;
    for (Index p = p_colptr_[static_cast<size_t>(k)];
         p < p_colptr_[static_cast<size_t>(k) + 1]; ++p) {
      Index i = p_rowind_[static_cast<size_t>(p)];
      if (i >= k) continue;
      while (flag[static_cast<size_t>(i)] != k) {
        if (parent_[static_cast<size_t>(i)] == -1) parent_[static_cast<size_t>(i)] = k;
        ++lnz[static_cast<size_t>(i)];
        flag[static_cast<size_t>(i)] = k;
        i = parent_[static_cast<size_t>(i)];
      }
    }
  }
  l_colptr_.assign(static_cast<size_t>(n_) + 1, 0);
  for (Index k = 0; k < n_; ++k)
    l_colptr_[static_cast<size_t>(k) + 1] =
        l_colptr_[static_cast<size_t>(k)] + lnz[static_cast<size_t>(k)];

  // ---- Full L row pattern: a second ereach sweep appending k to every
  // column of row k's pattern. Appends happen in ascending k, so each
  // column comes out sorted — the exact fill order of the up-looking
  // numeric phase. ----
  l_rowind_.resize(static_cast<size_t>(l_colptr_[static_cast<size_t>(n_)]));
  std::vector<Index> lnz_used(static_cast<size_t>(n_), 0);
  std::fill(flag.begin(), flag.end(), -1);
  for (Index k = 0; k < n_; ++k) {
    flag[static_cast<size_t>(k)] = k;
    for (Index p = p_colptr_[static_cast<size_t>(k)];
         p < p_colptr_[static_cast<size_t>(k) + 1]; ++p) {
      Index i = p_rowind_[static_cast<size_t>(p)];
      if (i >= k) continue;
      while (flag[static_cast<size_t>(i)] != k) {
        l_rowind_[static_cast<size_t>(l_colptr_[static_cast<size_t>(i)] +
                                      lnz_used[static_cast<size_t>(i)]++)] = k;
        flag[static_cast<size_t>(i)] = k;
        i = parent_[static_cast<size_t>(i)];
      }
    }
  }
}

std::vector<Index> LdltSymbolic::column_counts() const {
  std::vector<Index> lnz(static_cast<size_t>(n_));
  for (Index k = 0; k < n_; ++k)
    lnz[static_cast<size_t>(k)] =
        l_colptr_[static_cast<size_t>(k) + 1] - l_colptr_[static_cast<size_t>(k)];
  return lnz;
}

template <typename T>
SparseLDLT<T>::SparseLDLT(const SparseMatrix<T>& a, Ordering ordering,
                          double zero_pivot_tol, const KernelOptions& kernels)
    : kernel_options_(kernels) {
  obs::ScopedTimer span("ldlt.factor");
  require(a.rows() == a.cols(), "SparseLDLT: matrix not square");
  n_ = a.rows();
  typename ScalarTraits<T>::Real amax(0);
  for (const auto& v : a.values()) amax = std::max(amax, ScalarTraits<T>::abs(v));
  require(a.asymmetry() <= 1e-10 * (1.0 + amax),
          "SparseLDLT: matrix not symmetric");
  symbolic_ = std::make_shared<const LdltSymbolic>(a, ordering);
  factorize(a, zero_pivot_tol);
  span.arg("n", n_);
  span.arg("nnz_a", a.nnz());
  span.arg("nnz_l", l_nnz());
  span.arg("fill_ratio", fill_ratio_);
  span.arg("flops", flops_);
  span.arg("pivot_ratio", pivot_ratio_);
  span.arg("ordering", ordering_name(ordering));
  span.arg("kernel", kernel_path_name(path_));
  span.arg("supernodes", supernode_count());
  span.arg("max_panel_width", max_panel_width_);
  span.arg("simd", simd_level_name(simd_));
  span.arg("threads", threads_used_);
}

template <typename T>
SparseLDLT<T>::SparseLDLT(const SparseMatrix<T>& a,
                          std::shared_ptr<const LdltSymbolic> symbolic,
                          double zero_pivot_tol, const KernelOptions& kernels)
    : symbolic_(std::move(symbolic)), kernel_options_(kernels) {
  obs::ScopedTimer span("ldlt.refactor");
  require(symbolic_ != nullptr, "SparseLDLT: null symbolic analysis");
  require(a.rows() == a.cols() && a.rows() == symbolic_->n_,
          "SparseLDLT: size does not match the symbolic analysis");
  require(a.nnz() == static_cast<Index>(symbolic_->source_.size()),
          "SparseLDLT: pattern does not match the symbolic analysis");
  n_ = a.rows();
  factorize(a, zero_pivot_tol);
  span.arg("n", n_);
  span.arg("nnz_l", l_nnz());
  span.arg("fill_ratio", fill_ratio_);
  span.arg("flops", flops_);
  span.arg("pivot_ratio", pivot_ratio_);
  span.arg("kernel", kernel_path_name(path_));
  span.arg("supernodes", supernode_count());
  span.arg("max_panel_width", max_panel_width_);
  span.arg("simd", simd_level_name(simd_));
  span.arg("threads", threads_used_);
}

template <typename T>
void SparseLDLT<T>::factorize(const SparseMatrix<T>& a, double zero_pivot_tol) {
  const LdltSymbolic& sym = *symbolic_;
  path_ = resolve_kernel_path(kernel_options_, n_, kernel_options_.rhs_hint);
  simd_ = resolve_simd_level(kernel_options_.simd);

  // Gather the values into permuted order via the precomputed mapping.
  std::vector<T> values(sym.source_.size());
  for (size_t k = 0; k < values.size(); ++k)
    values[k] = a.values()[static_cast<size_t>(sym.source_[k])];

  double amax = 0.0;
  for (const auto& v : values) amax = std::max(amax, ScalarTraits<T>::abs(v));
  const double pivot_floor = zero_pivot_tol * amax;

  d_.assign(static_cast<size_t>(n_), T(0));
  double dmin = std::numeric_limits<double>::infinity();
  double dmax = 0.0;
  if (path_ == KernelPath::kSupernodal)
    factorize_supernodal(values, pivot_floor, dmin, dmax);
  else
    factorize_simplicial(values, pivot_floor, dmin, dmax);

  pivot_ratio_ = (dmax > 0.0) ? dmin / dmax : 0.0;
  // Fill-in relative to the lower triangle of A (A is stored with both
  // triangles; (nnz + n)/2 is its lower-triangle count incl. diagonal).
  fill_ratio_ = static_cast<double>(l_nnz() + n_) /
                std::max(1.0, (static_cast<double>(a.nnz()) +
                               static_cast<double>(n_)) / 2.0);

  sqrt_abs_d_.resize(static_cast<size_t>(n_));
  for (Index k = 0; k < n_; ++k)
    sqrt_abs_d_[static_cast<size_t>(k)] =
        std::sqrt(ScalarTraits<T>::abs(d_[static_cast<size_t>(k)]));

  mem_charge_ = obs::MemCharge(obs::byte_gauge("mem.factor_bytes"),
                               factor_bytes());
}

namespace {

// The zero-pivot rejection shared verbatim by both kernel paths (and by
// the fault-injection tests, which expect this exact code/context).
template <typename T>
inline void accept_pivot(Index k, const T& dval, double pivot_floor,
                         double& dmin, double& dmax) {
  const double dk = ScalarTraits<T>::abs(dval);
  fault::check("ldlt.pivot", k);
  if (!(dk != 0.0 && dk > pivot_floor))
    throw Error(ErrorCode::kZeroPivot,
                "SparseLDLT: zero pivot encountered (matrix singular or not "
                "quasi-definite; consider a frequency shift, eq. 26)",
                ErrorContext{.stage = "ldlt.factor", .index = k, .value = dk});
  dmin = std::min(dmin, dk);
  dmax = std::max(dmax, dk);
}

}  // namespace

template <typename T>
void SparseLDLT<T>::factorize_simplicial(const std::vector<T>& values,
                                         double pivot_floor, double& dmin,
                                         double& dmax) {
  const LdltSymbolic& sym = *symbolic_;
  const auto& colptr = sym.p_colptr_;
  const auto& rowind = sym.p_rowind_;
  const auto& parent = sym.parent_;

  l_colptr_ = sym.l_colptr_;
  l_rowind_.assign(static_cast<size_t>(l_colptr_[static_cast<size_t>(n_)]), 0);
  l_values_.assign(l_rowind_.size(), T(0));

  // ---- Numeric factorization (up-looking).
  std::vector<T> y(static_cast<size_t>(n_), T(0));
  std::vector<Index> pattern(static_cast<size_t>(n_), 0);
  std::vector<Index> lnz_used(static_cast<size_t>(n_), 0);
  std::vector<Index> flag(static_cast<size_t>(n_), -1);

  double flops = 0.0;
  for (Index k = 0; k < n_; ++k) {
    Index top = n_;
    flag[static_cast<size_t>(k)] = k;
    for (Index p = colptr[static_cast<size_t>(k)];
         p < colptr[static_cast<size_t>(k) + 1]; ++p) {
      Index i = rowind[static_cast<size_t>(p)];
      if (i > k) continue;
      y[static_cast<size_t>(i)] += values[static_cast<size_t>(p)];
      Index len = 0;
      while (flag[static_cast<size_t>(i)] != k) {
        pattern[static_cast<size_t>(len++)] = i;
        flag[static_cast<size_t>(i)] = k;
        i = parent[static_cast<size_t>(i)];
      }
      while (len > 0)
        pattern[static_cast<size_t>(--top)] = pattern[static_cast<size_t>(--len)];
    }
    d_[static_cast<size_t>(k)] = y[static_cast<size_t>(k)];
    y[static_cast<size_t>(k)] = T(0);
    for (Index s = top; s < n_; ++s) {
      const Index i = pattern[static_cast<size_t>(s)];
      const T yi = y[static_cast<size_t>(i)];
      y[static_cast<size_t>(i)] = T(0);
      const Index pend =
          l_colptr_[static_cast<size_t>(i)] + lnz_used[static_cast<size_t>(i)];
      for (Index p = l_colptr_[static_cast<size_t>(i)]; p < pend; ++p)
        y[static_cast<size_t>(l_rowind_[static_cast<size_t>(p)])] -=
            l_values_[static_cast<size_t>(p)] * yi;
      flops += 2.0 * static_cast<double>(pend - l_colptr_[static_cast<size_t>(i)]) + 3.0;
      const T lki = yi / d_[static_cast<size_t>(i)];
      d_[static_cast<size_t>(k)] -= lki * yi;
      l_rowind_[static_cast<size_t>(pend)] = k;
      l_values_[static_cast<size_t>(pend)] = lki;
      ++lnz_used[static_cast<size_t>(i)];
    }
    accept_pivot(k, d_[static_cast<size_t>(k)], pivot_floor, dmin, dmax);
  }
  flops_ = flops;
}

template <typename T>
void SparseLDLT<T>::factorize_supernodal(const std::vector<T>& values,
                                         double pivot_floor, double& dmin,
                                         double& dmax) {
  const LdltSymbolic& sym = *symbolic_;
  const auto& colptr = sym.p_colptr_;
  const auto& rowind = sym.p_rowind_;
  const auto lnz = sym.column_counts();

  const SupernodePartition part =
      detect_supernodes(sym.parent_, lnz, kernel_options_);
  super_start_ = part.start;
  panel_zeros_ = part.zeros;
  max_panel_width_ = part.max_width();
  const Index nsuper = part.count();

  super_of_col_.resize(static_cast<size_t>(n_));
  panel_offset_.assign(static_cast<size_t>(nsuper) + 1, 0);
  Index max_w = 0, max_r = 0;
  for (Index s = 0; s < nsuper; ++s) {
    const Index a = super_start_[static_cast<size_t>(s)];
    const Index e = super_start_[static_cast<size_t>(s) + 1];
    const Index w = e - a;
    const Index r = lnz[static_cast<size_t>(e - 1)];
    for (Index j = a; j < e; ++j) super_of_col_[static_cast<size_t>(j)] = s;
    panel_offset_[static_cast<size_t>(s) + 1] =
        panel_offset_[static_cast<size_t>(s)] + (w + r) * w;
    max_w = std::max(max_w, w);
    max_r = std::max(max_r, r);
  }
  panel_data_.assign(static_cast<size_t>(panel_offset_[static_cast<size_t>(nsuper)]),
                     T(0));

  // ---- Descendant update segments, CSR by TARGET supernode. Each
  // below-row run of supernode d landing in target t's columns becomes
  // one segment; iterating d ascending in both passes leaves every
  // target's segment list d-ascending — a deterministic left-looking pull
  // order that never depends on execution interleaving (the old
  // head/next/pos relink lists were inherently sequential). ----
  upd_ptr_.assign(static_cast<size_t>(nsuper) + 1, 0);
  for (Index d = 0; d < nsuper; ++d) {
    const Index de = super_start_[static_cast<size_t>(d) + 1];
    const Index rd = lnz[static_cast<size_t>(de - 1)];
    const Index* rowsd =
        sym.l_rowind_.data() + sym.l_colptr_[static_cast<size_t>(de - 1)];
    Index p1 = 0;
    while (p1 < rd) {
      const Index t = super_of_col_[static_cast<size_t>(rowsd[p1])];
      const Index et = super_start_[static_cast<size_t>(t) + 1];
      Index p2 = p1;
      while (p2 < rd && rowsd[p2] < et) ++p2;
      ++upd_ptr_[static_cast<size_t>(t) + 1];
      p1 = p2;
    }
  }
  for (Index s = 0; s < nsuper; ++s)
    upd_ptr_[static_cast<size_t>(s) + 1] += upd_ptr_[static_cast<size_t>(s)];
  const Index nseg = nsuper > 0 ? upd_ptr_[static_cast<size_t>(nsuper)] : 0;
  upd_src_.resize(static_cast<size_t>(nseg));
  upd_p1_.resize(static_cast<size_t>(nseg));
  upd_p2_.resize(static_cast<size_t>(nseg));
  {
    std::vector<Index> cursor(upd_ptr_.begin(), upd_ptr_.end() - 1);
    for (Index d = 0; d < nsuper; ++d) {
      const Index de = super_start_[static_cast<size_t>(d) + 1];
      const Index rd = lnz[static_cast<size_t>(de - 1)];
      const Index* rowsd =
          sym.l_rowind_.data() + sym.l_colptr_[static_cast<size_t>(de - 1)];
      Index p1 = 0;
      while (p1 < rd) {
        const Index t = super_of_col_[static_cast<size_t>(rowsd[p1])];
        const Index et = super_start_[static_cast<size_t>(t) + 1];
        Index p2 = p1;
        while (p2 < rd && rowsd[p2] < et) ++p2;
        const Index u = cursor[static_cast<size_t>(t)]++;
        upd_src_[static_cast<size_t>(u)] = d;
        upd_p1_[static_cast<size_t>(u)] = p1;
        upd_p2_[static_cast<size_t>(u)] = p2;
        p1 = p2;
      }
    }
  }

  // ---- Supernodal elimination tree and its level sets. The parent of s
  // is the supernode owning s's first below row — always a later
  // supernode, and (because each supernode is an elimination-tree chain)
  // every below row of s lives on s's supernodal ancestor path. A level
  // is therefore an antichain: its supernodes share no rows, their update
  // sources all sit at strictly lower levels, and they factor — and
  // solve — concurrently. ----
  std::vector<Index> slevel(static_cast<size_t>(nsuper), 0);
  Index nlevels = nsuper > 0 ? 1 : 0;
  for (Index s = 0; s < nsuper; ++s) {
    const Index e = super_start_[static_cast<size_t>(s) + 1];
    const Index r = lnz[static_cast<size_t>(e - 1)];
    if (r == 0) continue;
    const Index* rows =
        sym.l_rowind_.data() + sym.l_colptr_[static_cast<size_t>(e - 1)];
    const Index parent = super_of_col_[static_cast<size_t>(rows[0])];
    slevel[static_cast<size_t>(parent)] =
        std::max(slevel[static_cast<size_t>(parent)],
                 slevel[static_cast<size_t>(s)] + 1);
    nlevels = std::max(nlevels, slevel[static_cast<size_t>(parent)] + 1);
  }
  level_ptr_.assign(static_cast<size_t>(nlevels) + 1, 0);
  for (Index s = 0; s < nsuper; ++s)
    ++level_ptr_[static_cast<size_t>(slevel[static_cast<size_t>(s)]) + 1];
  for (Index l = 0; l < nlevels; ++l)
    level_ptr_[static_cast<size_t>(l) + 1] += level_ptr_[static_cast<size_t>(l)];
  level_order_.resize(static_cast<size_t>(nsuper));
  level_work_.assign(static_cast<size_t>(std::max<Index>(nlevels, 1)), 0.0);
  {
    std::vector<Index> cursor(level_ptr_.begin(), level_ptr_.end() - 1);
    for (Index s = 0; s < nsuper; ++s) {
      const Index l = slevel[static_cast<size_t>(s)];
      level_order_[static_cast<size_t>(cursor[static_cast<size_t>(l)]++)] = s;
      level_work_[static_cast<size_t>(l)] += static_cast<double>(
          panel_offset_[static_cast<size_t>(s) + 1] -
          panel_offset_[static_cast<size_t>(s)]);
    }
  }

  // ---- Numeric phase. One workspace per worker; dmin/dmax merge by
  // min/max (commutative) and the flop counts are exact integer-valued
  // sums, so the reduction is independent of the schedule. Per-supernode
  // arithmetic is fully determined by the panel contents and the
  // d-ascending segment order, so 1-thread and N-thread factorizations
  // produce bit-identical factors. ----
  const auto& K = kernels::panel_kernels<T>(simd_);

  struct Workspace {
    std::vector<T> wbuf, cbuf;
    std::vector<Index> row_local;
    double dmin = std::numeric_limits<double>::infinity();
    double dmax = 0.0;
    double flops = 0.0;
  };

  const bool can_parallel = num_threads() > 1 && !in_parallel_region();
  bool any_parallel_level = false;
  if (can_parallel)
    for (Index l = 0; l < nlevels; ++l)
      if (level_ptr_[static_cast<size_t>(l) + 1] -
                  level_ptr_[static_cast<size_t>(l)] >= 2 &&
          level_work_[static_cast<size_t>(l)] >= kFactorGrainEntries)
        any_parallel_level = true;

  const Index nws = any_parallel_level ? num_threads() : 1;
  std::vector<Workspace> ws(static_cast<size_t>(nws));
  for (auto& w : ws) {
    w.wbuf.resize(static_cast<size_t>(max_w) * static_cast<size_t>(max_w));
    w.cbuf.resize(static_cast<size_t>(std::max<Index>(max_r + max_w, 1)) *
                  static_cast<size_t>(std::max<Index>(max_w, 1)));
    w.row_local.assign(static_cast<size_t>(n_), -1);
  }

  auto process = [&](Index s, Workspace& wk) {
    const Index a = super_start_[static_cast<size_t>(s)];
    const Index e = super_start_[static_cast<size_t>(s) + 1];
    const Index w = e - a;
    const Index r = lnz[static_cast<size_t>(e - 1)];
    const Index h = w + r;
    const Index* rows =
        sym.l_rowind_.data() + sym.l_colptr_[static_cast<size_t>(e - 1)];
    T* panel = panel_data_.data() + panel_offset_[static_cast<size_t>(s)];
    Index* row_local = wk.row_local.data();

    for (Index jj = 0; jj < w; ++jj) row_local[a + jj] = jj;
    for (Index i = 0; i < r; ++i) row_local[rows[i]] = w + i;

    // Assemble the lower triangle of A's panel columns.
    for (Index j = a; j < e; ++j) {
      T* col = panel + (j - a) * h;
      for (Index p = colptr[static_cast<size_t>(j)];
           p < colptr[static_cast<size_t>(j) + 1]; ++p) {
        const Index i = rowind[static_cast<size_t>(p)];
        if (i < j) continue;
        col[row_local[i]] += values[static_cast<size_t>(p)];
      }
    }

    // Pull every incoming descendant segment: the extended update
    // C = L_d[p1:,:]·D_d·L_d[p1:p2,:]ᵀ lands entirely in this panel
    // (rows of d beyond the target's columns are a subset of the
    // target's below rows), so concurrent targets never collide.
    for (Index u = upd_ptr_[static_cast<size_t>(s)];
         u < upd_ptr_[static_cast<size_t>(s) + 1]; ++u) {
      const Index d = upd_src_[static_cast<size_t>(u)];
      const Index da = super_start_[static_cast<size_t>(d)];
      const Index de = super_start_[static_cast<size_t>(d) + 1];
      const Index wd = de - da;
      const Index rd = lnz[static_cast<size_t>(de - 1)];
      const Index hd = wd + rd;
      const Index* rowsd =
          sym.l_rowind_.data() + sym.l_colptr_[static_cast<size_t>(de - 1)];
      const T* dpanel =
          panel_data_.data() + panel_offset_[static_cast<size_t>(d)];
      const Index p1 = upd_p1_[static_cast<size_t>(u)];
      const Index p2 = upd_p2_[static_cast<size_t>(u)];
      const Index m = rd - p1;
      const Index q = p2 - p1;
      // W(i,j) = L_d(p1+i, j) · d_j  — the D-scaled middle segment.
      K.scale_cols(q, wd, dpanel + wd + p1, hd, d_.data() + da,
                   wk.wbuf.data(), q);
      std::fill(wk.cbuf.begin(),
                wk.cbuf.begin() + static_cast<size_t>(m) * static_cast<size_t>(q),
                T(0));
      K.gemm_nt_acc(m, q, wd, dpanel + wd + p1, hd, wk.wbuf.data(), q,
                    wk.cbuf.data(), m);
      wk.flops += 2.0 * static_cast<double>(m) * static_cast<double>(q) *
                      static_cast<double>(wd) +
                  static_cast<double>(q) * static_cast<double>(wd);
      // Scatter-subtract the lower triangle (rows_d ascending, so rr >= c
      // is exactly the lower part).
      for (Index c = 0; c < q; ++c) {
        T* colt = panel + row_local[rowsd[p1 + c]] * h;
        const T* csrc = wk.cbuf.data() + c * m;
        for (Index rr = c; rr < m; ++rr)
          colt[row_local[rowsd[p1 + rr]]] -= csrc[rr];
      }
    }

    // Dense in-panel factorization; pivots accepted per global column in
    // ascending order — the same fault::check sites and zero-pivot Error
    // as the simplicial path.
    wk.flops += kernels::panel_ldlt(K, h, w, panel, [&](Index jj, const T& dj) {
      const Index k = a + jj;
      d_[static_cast<size_t>(k)] = dj;
      accept_pivot(k, dj, pivot_floor, wk.dmin, wk.dmax);
    });

    for (Index jj = 0; jj < w; ++jj) row_local[a + jj] = -1;
    for (Index i = 0; i < r; ++i) row_local[rows[i]] = -1;
  };

  // One "kernel.panel_update" span per serial sweep, or per executed
  // chunk when a level fans out — chunk spans are recorded on the
  // executing pool worker's lane (trace lanes show the fan-out) and
  // carry that chunk's own flop count, while the shared span name keeps
  // the latency histogram aggregating the whole family.
  threads_used_ = 1;
  if (!any_parallel_level) {
    // Plain ascending sweep — every descendant precedes its ancestors.
    // Deliberately NOT routed through parallel_for_chunks: its serial
    // fallback still visits the parallel.chunk fault site, which belongs
    // to genuinely fanned-out work only.
    obs::ScopedTimer span("kernel.panel_update");
    for (Index s = 0; s < nsuper; ++s) process(s, ws[0]);
    span.arg("supernodes", nsuper);
    span.arg("levels", nlevels);
    span.arg("threads", threads_used_);
    span.arg("simd", simd_level_name(simd_));
    span.arg("flops", ws[0].flops);
  } else {
    for (Index l = 0; l < nlevels; ++l) {
      const Index lb = level_ptr_[static_cast<size_t>(l)];
      const Index le = level_ptr_[static_cast<size_t>(l) + 1];
      if (le - lb >= 2 && level_work_[static_cast<size_t>(l)] >= kFactorGrainEntries) {
        threads_used_ = num_threads();
        parallel_for_chunks(lb, le, [&](Index rank, Index b, Index e2) {
          obs::ScopedTimer cspan("kernel.panel_update");
          Workspace& wk = ws[static_cast<size_t>(rank)];
          const double f0 = wk.flops;
          for (Index k = b; k < e2; ++k)
            process(level_order_[static_cast<size_t>(k)], wk);
          cspan.arg("supernodes", e2 - b);
          cspan.arg("level", l);
          cspan.arg("threads", num_threads());
          cspan.arg("simd", simd_level_name(simd_));
          cspan.arg("flops", wk.flops - f0);
        });
      } else {
        obs::ScopedTimer cspan("kernel.panel_update");
        const double f0 = ws[0].flops;
        for (Index k = lb; k < le; ++k)
          process(level_order_[static_cast<size_t>(k)], ws[0]);
        cspan.arg("supernodes", le - lb);
        cspan.arg("level", l);
        cspan.arg("threads", Index{1});
        cspan.arg("simd", simd_level_name(simd_));
        cspan.arg("flops", ws[0].flops - f0);
      }
    }
  }

  double flops = 0.0;
  for (const auto& w : ws) {
    dmin = std::min(dmin, w.dmin);
    dmax = std::max(dmax, w.dmax);
    flops += w.flops;
  }
  flops_ = flops;
}

template <typename T>
SparseMatrix<T> SparseLDLT<T>::l_matrix() const {
  const LdltSymbolic& sym = *symbolic_;
  SparseMatrix<T> l(n_, n_);
  if (path_ != KernelPath::kSupernodal) {
    l.set_raw(l_colptr_, l_rowind_, l_values_);
    return l;
  }
  // Gather the symbolic-pattern entries out of the panels (relaxed panels
  // also hold explicit zeros; those are dropped here).
  std::vector<T> vals(sym.l_rowind_.size());
  std::vector<Index> row_local(static_cast<size_t>(n_), -1);
  const Index nsuper = supernode_count();
  const auto lnz = sym.column_counts();
  for (Index s = 0; s < nsuper; ++s) {
    const Index a = super_start_[static_cast<size_t>(s)];
    const Index e = super_start_[static_cast<size_t>(s) + 1];
    const Index w = e - a;
    const Index r = lnz[static_cast<size_t>(e - 1)];
    const Index h = w + r;
    const Index* rows =
        sym.l_rowind_.data() + sym.l_colptr_[static_cast<size_t>(e - 1)];
    const T* panel = panel_data_.data() + panel_offset_[static_cast<size_t>(s)];
    for (Index jj = 0; jj < w; ++jj) row_local[static_cast<size_t>(a + jj)] = jj;
    for (Index i = 0; i < r; ++i)
      row_local[static_cast<size_t>(rows[i])] = w + i;
    for (Index j = a; j < e; ++j) {
      const T* col = panel + (j - a) * h;
      for (Index p = sym.l_colptr_[static_cast<size_t>(j)];
           p < sym.l_colptr_[static_cast<size_t>(j) + 1]; ++p)
        vals[static_cast<size_t>(p)] =
            col[row_local[static_cast<size_t>(sym.l_rowind_[static_cast<size_t>(p)])]];
    }
    for (Index jj = 0; jj < w; ++jj) row_local[static_cast<size_t>(a + jj)] = -1;
    for (Index i = 0; i < r; ++i) row_local[static_cast<size_t>(rows[i])] = -1;
  }
  l.set_raw(sym.l_colptr_, sym.l_rowind_, std::move(vals));
  return l;
}

template <typename T>
void SparseLDLT<T>::panel_forward(T* x, Index nrhs) const {
  const LdltSymbolic& sym = *symbolic_;
  const Index nsuper = supernode_count();
  const Index nlevels = static_cast<Index>(level_ptr_.size()) - 1;
  const auto& K = kernels::panel_kernels<T>(simd_);

  // Left-looking pull: a target first drains its incoming descendant
  // segments (updating its own top rows from descendant solutions
  // finalized at lower levels), then runs the in-panel triangular solve.
  auto process = [&](Index s) {
    const Index a = super_start_[static_cast<size_t>(s)];
    const Index e = super_start_[static_cast<size_t>(s) + 1];
    const Index w = e - a;
    const Index h =
        (panel_offset_[static_cast<size_t>(s) + 1] -
         panel_offset_[static_cast<size_t>(s)]) / w;
    for (Index u = upd_ptr_[static_cast<size_t>(s)];
         u < upd_ptr_[static_cast<size_t>(s) + 1]; ++u) {
      const Index d = upd_src_[static_cast<size_t>(u)];
      const Index da = super_start_[static_cast<size_t>(d)];
      const Index de = super_start_[static_cast<size_t>(d) + 1];
      const Index wd = de - da;
      const Index hd =
          (panel_offset_[static_cast<size_t>(d) + 1] -
           panel_offset_[static_cast<size_t>(d)]) / wd;
      const Index* rowsd =
          sym.l_rowind_.data() + sym.l_colptr_[static_cast<size_t>(de - 1)];
      const T* dpanel =
          panel_data_.data() + panel_offset_[static_cast<size_t>(d)];
      const Index p1 = upd_p1_[static_cast<size_t>(u)];
      const Index p2 = upd_p2_[static_cast<size_t>(u)];
      K.below_forward(p2 - p1, wd, nrhs, dpanel + wd + p1, hd, rowsd + p1,
                      x + da * nrhs, x);
    }
    const T* panel = panel_data_.data() + panel_offset_[static_cast<size_t>(s)];
    K.trsm_forward(w, panel, h, nrhs, x + a * nrhs);
  };

  const bool can_parallel = num_threads() > 1 && !in_parallel_region();
  const double rhs_scale = static_cast<double>(std::max<Index>(nrhs, 1));
  bool any_parallel_level = false;
  if (can_parallel)
    for (Index l = 0; l < nlevels; ++l)
      if (level_ptr_[static_cast<size_t>(l) + 1] -
                  level_ptr_[static_cast<size_t>(l)] >= 2 &&
          level_work_[static_cast<size_t>(l)] * rhs_scale >= kSolveGrainEntries)
        any_parallel_level = true;

  // Span policy mirrors factorize_supernodal: one "kernel.trsm" span on
  // the calling lane for a fully serial sweep, one span per fanned-out
  // chunk on the worker's lane otherwise (small in-between levels run
  // unwrapped — solves happen per sweep point, and per-level micro-spans
  // would dominate the trace).
  if (!any_parallel_level) {
    obs::ScopedTimer span("kernel.trsm");
    span.arg("phase", "forward");
    span.arg("nrhs", nrhs);
    span.arg("levels", nlevels);
    span.arg("simd", simd_level_name(simd_));
    span.arg("threads", Index{1});
    for (Index s = 0; s < nsuper; ++s) process(s);
    return;
  }
  for (Index l = 0; l < nlevels; ++l) {
    const Index lb = level_ptr_[static_cast<size_t>(l)];
    const Index le = level_ptr_[static_cast<size_t>(l) + 1];
    if (le - lb >= 2 &&
        level_work_[static_cast<size_t>(l)] * rhs_scale >= kSolveGrainEntries) {
      parallel_for_chunks(lb, le, [&](Index /*rank*/, Index b, Index e2) {
        obs::ScopedTimer cspan("kernel.trsm");
        double entries = 0.0;
        for (Index k = b; k < e2; ++k) {
          const Index s = level_order_[static_cast<size_t>(k)];
          entries += static_cast<double>(
              panel_offset_[static_cast<size_t>(s) + 1] -
              panel_offset_[static_cast<size_t>(s)]);
          process(s);
        }
        cspan.arg("phase", "forward");
        cspan.arg("nrhs", nrhs);
        cspan.arg("threads", num_threads());
        cspan.arg("simd", simd_level_name(simd_));
        cspan.arg("flops", 2.0 * entries * static_cast<double>(nrhs));
      });
    } else {
      for (Index k = lb; k < le; ++k)
        process(level_order_[static_cast<size_t>(k)]);
    }
  }
}

template <typename T>
void SparseLDLT<T>::panel_backward(T* x, Index nrhs) const {
  const LdltSymbolic& sym = *symbolic_;
  const Index nsuper = supernode_count();
  const Index nlevels = static_cast<Index>(level_ptr_.size()) - 1;
  const auto& K = kernels::panel_kernels<T>(simd_);

  // The backward sweep is naturally a pull: each supernode reads only its
  // own below rows (all on its ancestor path, finalized at higher levels)
  // and writes only its own top rows.
  auto process = [&](Index s) {
    const Index a = super_start_[static_cast<size_t>(s)];
    const Index e = super_start_[static_cast<size_t>(s) + 1];
    const Index w = e - a;
    const Index h =
        (panel_offset_[static_cast<size_t>(s) + 1] -
         panel_offset_[static_cast<size_t>(s)]) / w;
    const T* panel = panel_data_.data() + panel_offset_[static_cast<size_t>(s)];
    const Index r = h - w;
    if (r > 0)
      K.below_backward(
          r, w, nrhs, panel + w, h,
          sym.l_rowind_.data() + sym.l_colptr_[static_cast<size_t>(e - 1)], x,
          x + a * nrhs);
    K.trsm_backward(w, panel, h, nrhs, x + a * nrhs);
  };

  const bool can_parallel = num_threads() > 1 && !in_parallel_region();
  const double rhs_scale = static_cast<double>(std::max<Index>(nrhs, 1));
  bool any_parallel_level = false;
  if (can_parallel)
    for (Index l = 0; l < nlevels; ++l)
      if (level_ptr_[static_cast<size_t>(l) + 1] -
                  level_ptr_[static_cast<size_t>(l)] >= 2 &&
          level_work_[static_cast<size_t>(l)] * rhs_scale >= kSolveGrainEntries)
        any_parallel_level = true;

  // Same span policy as panel_forward.
  if (!any_parallel_level) {
    obs::ScopedTimer span("kernel.trsm");
    span.arg("phase", "backward");
    span.arg("nrhs", nrhs);
    span.arg("levels", nlevels);
    span.arg("simd", simd_level_name(simd_));
    span.arg("threads", Index{1});
    for (Index s = nsuper - 1; s >= 0; --s) process(s);
    return;
  }
  for (Index l = nlevels - 1; l >= 0; --l) {
    const Index lb = level_ptr_[static_cast<size_t>(l)];
    const Index le = level_ptr_[static_cast<size_t>(l) + 1];
    if (le - lb >= 2 &&
        level_work_[static_cast<size_t>(l)] * rhs_scale >= kSolveGrainEntries) {
      parallel_for_chunks(lb, le, [&](Index /*rank*/, Index b, Index e2) {
        obs::ScopedTimer cspan("kernel.trsm");
        double entries = 0.0;
        for (Index k = b; k < e2; ++k) {
          const Index s = level_order_[static_cast<size_t>(k)];
          entries += static_cast<double>(
              panel_offset_[static_cast<size_t>(s) + 1] -
              panel_offset_[static_cast<size_t>(s)]);
          process(s);
        }
        cspan.arg("phase", "backward");
        cspan.arg("nrhs", nrhs);
        cspan.arg("threads", num_threads());
        cspan.arg("simd", simd_level_name(simd_));
        cspan.arg("flops", 2.0 * entries * static_cast<double>(nrhs));
      });
    } else {
      for (Index k = lb; k < le; ++k)
        process(level_order_[static_cast<size_t>(k)]);
    }
  }
}

template <typename T>
void SparseLDLT<T>::forward_solve(std::vector<T>& x) const {
  if (path_ == KernelPath::kSupernodal) {
    panel_forward(x.data(), 1);
    return;
  }
  for (Index j = 0; j < n_; ++j) {
    const T xj = x[static_cast<size_t>(j)];
    if (xj == T(0)) continue;
    for (Index p = l_colptr_[static_cast<size_t>(j)];
         p < l_colptr_[static_cast<size_t>(j) + 1]; ++p)
      x[static_cast<size_t>(l_rowind_[static_cast<size_t>(p)])] -=
          l_values_[static_cast<size_t>(p)] * xj;
  }
}

template <typename T>
void SparseLDLT<T>::backward_solve(std::vector<T>& x) const {
  if (path_ == KernelPath::kSupernodal) {
    panel_backward(x.data(), 1);
    return;
  }
  for (Index j = n_ - 1; j >= 0; --j) {
    T acc = x[static_cast<size_t>(j)];
    for (Index p = l_colptr_[static_cast<size_t>(j)];
         p < l_colptr_[static_cast<size_t>(j) + 1]; ++p)
      acc -= l_values_[static_cast<size_t>(p)] *
             x[static_cast<size_t>(l_rowind_[static_cast<size_t>(p)])];
    x[static_cast<size_t>(j)] = acc;
  }
}

template <typename T>
std::vector<T> SparseLDLT<T>::solve(const std::vector<T>& b) const {
  require(static_cast<Index>(b.size()) == n_, "SparseLDLT::solve: size mismatch");
  obs::ScopedTimer span("ldlt.solve");
  span.arg("n", n_);
  span.arg("nrhs", Index{1});
  span.arg("kernel", kernel_path_name(path_));
  const auto& perm = symbolic_->perm_;
  std::vector<T> x(static_cast<size_t>(n_));
  for (Index i = 0; i < n_; ++i)
    x[static_cast<size_t>(i)] = b[static_cast<size_t>(perm[static_cast<size_t>(i)])];
  forward_solve(x);
  if (path_ == KernelPath::kSupernodal) {
    // Same dispatched kernel as the blocked solve's diagonal phase, so
    // solve(vector) stays bit-identical to a column of solve(Matrix).
    kernels::panel_kernels<T>(simd_).diag_solve(n_, 1, d_.data(), x.data());
  } else {
    for (Index i = 0; i < n_; ++i)
      x[static_cast<size_t>(i)] /= d_[static_cast<size_t>(i)];
  }
  backward_solve(x);
  std::vector<T> out(static_cast<size_t>(n_));
  for (Index i = 0; i < n_; ++i)
    out[static_cast<size_t>(perm[static_cast<size_t>(i)])] = x[static_cast<size_t>(i)];
  return out;
}

template <typename T>
Matrix<T> SparseLDLT<T>::solve(const Matrix<T>& b) const {
  require(b.rows() == n_, "SparseLDLT::solve: row count mismatch");
  const Index p = b.cols();
  obs::ScopedTimer span("ldlt.solve");
  span.arg("n", n_);
  span.arg("nrhs", p);
  span.arg("kernel", kernel_path_name(path_));
  const auto& perm = symbolic_->perm_;
  // Row-major X: row i is the length-p block for unknown i, so the inner
  // update loops below run over contiguous memory.
  Matrix<T> x(n_, p);
  for (Index i = 0; i < n_; ++i) {
    const T* src = b.data() + perm[static_cast<size_t>(i)] * p;
    T* dst = x.data() + i * p;
    for (Index r = 0; r < p; ++r) dst[r] = src[r];
  }
  if (path_ == KernelPath::kSupernodal) {
    panel_forward(x.data(), p);
  } else {
    // Forward: L X = B (unit lower), one pass over L's columns.
    for (Index j = 0; j < n_; ++j) {
      const T* xj = x.data() + j * p;
      for (Index q = l_colptr_[static_cast<size_t>(j)];
           q < l_colptr_[static_cast<size_t>(j) + 1]; ++q) {
        const T lij = l_values_[static_cast<size_t>(q)];
        T* xi = x.data() + l_rowind_[static_cast<size_t>(q)] * p;
        for (Index r = 0; r < p; ++r) xi[r] -= lij * xj[r];
      }
    }
  }
  // Diagonal: D X = X.
  if (path_ == KernelPath::kSupernodal) {
    kernels::panel_kernels<T>(simd_).diag_solve(n_, p, d_.data(), x.data());
  } else {
    for (Index j = 0; j < n_; ++j) {
      const T dj = d_[static_cast<size_t>(j)];
      T* xj = x.data() + j * p;
      for (Index r = 0; r < p; ++r) xj[r] /= dj;
    }
  }
  if (path_ == KernelPath::kSupernodal) {
    panel_backward(x.data(), p);
  } else {
    // Backward: Lᵀ X = X, one pass over L's columns in reverse.
    for (Index j = n_ - 1; j >= 0; --j) {
      T* xj = x.data() + j * p;
      for (Index q = l_colptr_[static_cast<size_t>(j)];
           q < l_colptr_[static_cast<size_t>(j) + 1]; ++q) {
        const T lij = l_values_[static_cast<size_t>(q)];
        const T* xi = x.data() + l_rowind_[static_cast<size_t>(q)] * p;
        for (Index r = 0; r < p; ++r) xj[r] -= lij * xi[r];
      }
    }
  }
  Matrix<T> out(n_, p);
  for (Index i = 0; i < n_; ++i) {
    const T* src = x.data() + i * p;
    T* dst = out.data() + perm[static_cast<size_t>(i)] * p;
    for (Index r = 0; r < p; ++r) dst[r] = src[r];
  }
  return out;
}

template <typename T>
Vec SparseLDLT<T>::j_signs() const {
  if constexpr (std::is_same_v<T, double>) {
    Vec j(static_cast<size_t>(n_));
    for (Index k = 0; k < n_; ++k)
      j[static_cast<size_t>(k)] = d_[static_cast<size_t>(k)] > 0.0 ? 1.0 : -1.0;
    return j;
  } else {
    throw Error(ErrorCode::kInvalidArgument,
                "SparseLDLT::j_signs: only defined for real factorizations",
                {.stage = "ldlt"});
  }
}

template <typename T>
Index SparseLDLT<T>::negative_pivots() const {
  if constexpr (std::is_same_v<T, double>) {
    Index c = 0;
    for (const auto& dk : d_)
      if (dk < 0.0) ++c;
    return c;
  } else {
    throw Error(ErrorCode::kInvalidArgument,
                "SparseLDLT::negative_pivots: only defined for real factorizations",
                {.stage = "ldlt"});
  }
}

template <typename T>
std::vector<T> SparseLDLT<T>::solve_m(const std::vector<T>& b) const {
  require(static_cast<Index>(b.size()) == n_, "solve_m: size mismatch");
  const auto& perm = symbolic_->perm_;
  std::vector<T> x(static_cast<size_t>(n_));
  for (Index i = 0; i < n_; ++i)
    x[static_cast<size_t>(i)] = b[static_cast<size_t>(perm[static_cast<size_t>(i)])];
  forward_solve(x);
  for (Index i = 0; i < n_; ++i)
    x[static_cast<size_t>(i)] /= sqrt_abs_d_[static_cast<size_t>(i)];
  return x;
}

template <typename T>
std::vector<T> SparseLDLT<T>::solve_mt(const std::vector<T>& b) const {
  require(static_cast<Index>(b.size()) == n_, "solve_mt: size mismatch");
  const auto& perm = symbolic_->perm_;
  std::vector<T> x(b);
  for (Index i = 0; i < n_; ++i)
    x[static_cast<size_t>(i)] /= sqrt_abs_d_[static_cast<size_t>(i)];
  backward_solve(x);
  std::vector<T> out(static_cast<size_t>(n_));
  for (Index i = 0; i < n_; ++i)
    out[static_cast<size_t>(perm[static_cast<size_t>(i)])] = x[static_cast<size_t>(i)];
  return out;
}

template class SparseLDLT<double>;
template class SparseLDLT<Complex>;

}  // namespace sympvl
