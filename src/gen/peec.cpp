#include "gen/peec.hpp"

#include <cmath>

#include "linalg/dense_factor.hpp"

namespace sympvl {

PeecCircuit make_peec_circuit(const PeecOptions& options) {
  const Index m = options.grid;
  require(m >= 2, "make_peec_circuit: grid must be at least 2x2");

  PeecCircuit out;
  Netlist& nl = out.netlist;
  // Grid node (i, j) -> circuit node index 1 + i*m + j (node 0 is the
  // reference plane; no inductor touches it, so G is singular as in the
  // paper).
  auto node = [m](Index i, Index j) { return 1 + i * m + j; };
  nl.ensure_nodes(m * m + 1);

  // Inductive segments along grid edges. Horizontal segments first, then
  // vertical; remember orientation and midpoint for the coupling model.
  struct Segment {
    Index idx;      // inductor index in the netlist
    bool horizontal;
    double cx, cy;  // midpoint in grid units
  };
  std::vector<Segment> segments;
  for (Index i = 0; i < m; ++i)
    for (Index j = 0; j + 1 < m; ++j) {
      const Index idx = nl.add_inductor(node(i, j), node(i, j + 1),
                                        options.segment_inductance);
      segments.push_back({idx, true, static_cast<double>(j) + 0.5,
                          static_cast<double>(i)});
    }
  for (Index i = 0; i + 1 < m; ++i)
    for (Index j = 0; j < m; ++j) {
      const Index idx =
          nl.add_inductor(node(i, j), node(i + 1, j), options.segment_inductance);
      segments.push_back({idx, false, static_cast<double>(j),
                          static_cast<double>(i) + 0.5});
    }

  // Distance-decaying mutual coupling between parallel segments (the PEEC
  // partial-inductance structure). Only |k| summing safely below 1 per
  // pair is generated; the SPD check in inductance_matrix guards the rest.
  const double radius = static_cast<double>(options.coupling_radius);
  for (size_t a = 0; a < segments.size(); ++a) {
    for (size_t b = a + 1; b < segments.size(); ++b) {
      if (segments[a].horizontal != segments[b].horizontal) continue;
      const double dx = segments[a].cx - segments[b].cx;
      const double dy = segments[a].cy - segments[b].cy;
      const double d = std::hypot(dx, dy);
      if (d <= 0.0 || d > radius) continue;
      const double k = options.coupling / std::pow(d, options.coupling_decay);
      if (std::abs(k) < 1e-4) continue;
      nl.add_mutual(segments[a].idx, segments[b].idx, k);
    }
  }

  // Node capacitances to the reference plane.
  for (Index i = 0; i < m; ++i)
    for (Index j = 0; j < m; ++j)
      nl.add_capacitor(node(i, j), 0, options.node_capacitance);

  // Excitation port `a`: corner node against the reference plane.
  nl.add_port(node(0, 0), 0, "in");

  // Assemble the LC form (eq. 9): Ẑ(σ) with σ = s², G = A_lᵀℒ⁻¹A_l.
  out.system = build_mna(nl, MnaForm::kLC);

  // Second port column l = A_lᵀℒ⁻¹·e_obs: the observation functional for
  // the current of one inductor (Section 7.1, I_o = bᵀI_l).
  Index obs = options.observed_inductor;
  if (obs < 0) obs = static_cast<Index>(segments.size()) / 2;
  require(obs < static_cast<Index>(nl.inductors().size()),
          "make_peec_circuit: observed inductor out of range");
  const Mat lmat = inductance_matrix(nl);
  Vec e(static_cast<size_t>(lmat.rows()), 0.0);
  e[static_cast<size_t>(obs)] = 1.0;
  const Vec linv_e = DenseCholesky(lmat).solve(e);
  Vec l_node(static_cast<size_t>(out.system.size()), 0.0);
  for (size_t k = 0; k < nl.inductors().size(); ++k) {
    const auto& ind = nl.inductors()[k];
    const double w = linv_e[k];
    if (ind.n1 >= 1) l_node[static_cast<size_t>(ind.n1 - 1)] += w;
    if (ind.n2 >= 1) l_node[static_cast<size_t>(ind.n2 - 1)] -= w;
  }
  Mat b(out.system.size(), 2);
  for (Index i = 0; i < out.system.size(); ++i) {
    b(i, 0) = out.system.B(i, 0);
    b(i, 1) = l_node[static_cast<size_t>(i)];
  }
  out.system.B = std::move(b);
  out.system.port_names = {"in", "i_obs"};
  return out;
}

}  // namespace sympvl
