// Sparse LDLᵀ factorization (unpivoted, 1×1 pivots) with a fill-reducing
// pre-ordering, templated over real/complex scalars.
//
// This is the workhorse behind
//   * the paper's symmetric factorization G = M J⁻¹ Mᵀ (eq. 15) with
//     M = Pᵀ L √|D| and J = diag(sign D),
//   * exact AC reference sweeps: (G + sC) x = b with complex symmetric
//     (not Hermitian) pencils, and
//   * transient simulation system solves.
//
// Unpivoted LDLᵀ is well defined for the quasi-definite matrices arising
// from shifted RLC MNA systems (G + s₀C has a positive-definite nodal block
// and a negative-definite inductor-current block). The factorization throws
// on an exactly-zero pivot and records the worst pivot ratio so callers can
// fall back to the pivoted SparseLU if required.
//
// For repeated factorizations of matrices sharing one sparsity pattern
// (an AC sweep factors G + sC at hundreds of frequencies), the symbolic
// analysis — ordering, elimination tree, column counts, and the full L
// pattern — is computed once as an LdltSymbolic and reused; only the
// numeric phase runs per point.
//
// Two numeric kernels share that symbolic analysis (see KernelOptions in
// linalg/kernels.hpp):
//   * simplicial — the original up-looking column-at-a-time elimination;
//   * supernodal — columns with (near-)identical lower structure are
//     amalgamated into dense panels factored with blocked rank-k updates
//     and solved with blocked multi-RHS panel sweeps.
// The two paths agree entrywise to rounding (≈1e-12 relative on the
// paper's meshes; structural zeros stay exact zeros), produce identical
// pivot-failure behavior (same fault::check sites, same Error), and each
// path's single-RHS and multi-RHS solves run per-column bit-identical
// arithmetic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/kernels.hpp"
#include "linalg/ordering.hpp"
#include "linalg/sparse.hpp"
#include "obs/memstat.hpp"

namespace sympvl {

/// Pattern-only symbolic analysis shared by repeated numeric
/// factorizations. Depends only on the sparsity structure, not on values
/// or the scalar type.
class LdltSymbolic {
 public:
  /// Analyzes the pattern of a square symmetric matrix.
  template <typename T>
  explicit LdltSymbolic(const SparseMatrix<T>& a,
                        Ordering ordering = Ordering::kRCM)
      : LdltSymbolic(a.rows(), a.colptr(), a.rowind(),
                     make_ordering(a, ordering)) {}

  Index size() const { return n_; }
  Index l_nnz() const { return l_colptr_.empty() ? 0 : l_colptr_.back(); }
  const std::vector<Index>& permutation() const { return perm_; }

  /// Elimination tree over the permuted pattern (-1 marks roots).
  const std::vector<Index>& etree_parent() const { return parent_; }
  /// Off-diagonal entry count of each L column (the lnz vector feeding
  /// supernode detection).
  std::vector<Index> column_counts() const;

 private:
  LdltSymbolic(Index n, const std::vector<Index>& colptr,
               const std::vector<Index>& rowind, std::vector<Index> perm);

  template <typename U>
  friend class SparseLDLT;

  Index n_ = 0;
  std::vector<Index> perm_;      // new -> old
  std::vector<Index> perm_inv_;  // old -> new
  // Permuted pattern and the map from permuted entries to original entry
  // indices (so numeric values can be scattered without re-sorting).
  std::vector<Index> p_colptr_;
  std::vector<Index> p_rowind_;
  std::vector<Index> source_;
  // Elimination tree, L column pointers, and the full L row pattern
  // (each column's rows ascending — exactly the fill order the
  // up-looking numeric phase produces). The supernodal kernel reads
  // per-supernode below-row lists straight out of l_rowind_.
  std::vector<Index> parent_;
  std::vector<Index> l_colptr_;
  std::vector<Index> l_rowind_;
};

template <typename T>
class SparseLDLT {
 public:
  /// One-shot: symbolic + numeric. Throws on a zero pivot or
  /// non-square/asymmetric input. `zero_pivot_tol` is a relative threshold
  /// (against the largest |entry| of `a`) below which a pivot is declared
  /// zero: pass 0 to accept any nonzero pivot (AC sweeps near resonances
  /// legitimately produce tiny pivots), or ~1e-12 to detect structurally
  /// singular matrices such as an ungrounded G (the trigger for the
  /// paper's eq. 26 frequency shift). `kernels` selects the numeric path
  /// (default: auto — supernodal for large systems, SYMPVL_KERNEL env
  /// override honored).
  explicit SparseLDLT(const SparseMatrix<T>& a, Ordering ordering = Ordering::kRCM,
                      double zero_pivot_tol = 0.0,
                      const KernelOptions& kernels = {});

  /// Numeric-only factorization reusing a symbolic analysis. `a` must have
  /// exactly the pattern the symbolic was computed from (same colptr and
  /// rowind).
  SparseLDLT(const SparseMatrix<T>& a,
             std::shared_ptr<const LdltSymbolic> symbolic,
             double zero_pivot_tol = 0.0, const KernelOptions& kernels = {});

  Index size() const { return n_; }

  /// Solves A x = b.
  std::vector<T> solve(const std::vector<T>& b) const;

  /// Blocked multi-right-hand-side solve: A X = B for an n×p B. The
  /// forward, diagonal, and backward phases each make ONE pass over the
  /// factor with the p right-hand sides as the contiguous inner
  /// dimension, instead of p independent passes — the natural shape for
  /// solving against all port columns of an MNA system at once. On the
  /// supernodal path this rides the same dense panels as the
  /// factorization; per column it is bit-identical to solve(vector).
  Matrix<T> solve(const Matrix<T>& b) const;

  /// Diagonal D entries (in permuted order).
  const std::vector<T>& d() const { return d_; }

  /// Fill-in: number of stored off-diagonal entries of L (the symbolic
  /// pattern count — relaxed supernodal panels may store explicit zeros
  /// beyond it; see panel_zeros()).
  Index l_nnz() const { return symbolic_->l_nnz(); }

  /// Stored factor entries (nnz(L) + diagonal) per lower-triangle nonzero
  /// of A — 1.0 means no fill-in at all.
  double fill_ratio() const { return fill_ratio_; }

  /// Floating-point operations performed by the numeric factorization
  /// (multiply-add pairs counted as 2).
  double flops() const { return flops_; }

  /// Ratio min|d| / max|d| — a quasi-definiteness health indicator; tiny
  /// values signal that the unpivoted factorization is untrustworthy.
  double pivot_ratio() const { return pivot_ratio_; }

  /// Signs of D as ±1 (the paper's J matrix). Real scalar only.
  Vec j_signs() const;

  /// Number of negative pivots (matrix inertia; equals the number of
  /// negative eigenvalues for the unpivoted real factorization).
  Index negative_pivots() const;

  // --- Kernel-path telemetry. ---
  /// The resolved numeric path this factorization ran.
  KernelPath kernel_path() const { return path_; }
  bool supernodal() const { return path_ == KernelPath::kSupernodal; }
  /// The resolved SIMD dispatch level of the panel kernels (never kAuto).
  SimdLevel simd_level() const { return simd_; }
  /// Threads the supernodal numeric factorization actually spanned (1 when
  /// every elimination-tree level ran serially).
  Index kernel_threads() const { return threads_used_; }
  /// Number of supernodes (0 on the simplicial path).
  Index supernode_count() const {
    return super_start_.empty() ? 0
                                : static_cast<Index>(super_start_.size()) - 1;
  }
  /// Widest amalgamated panel (0 on the simplicial path).
  Index max_panel_width() const { return max_panel_width_; }
  /// Explicit zeros stored by relaxed amalgamation (0 on the simplicial
  /// path or with relaxation off).
  Index panel_zeros() const { return panel_zeros_; }

  /// Resident bytes of the numeric factor: value + index storage of
  /// whichever kernel path ran, the level schedule, and the diagonal.
  /// This is the amount charged against the "mem.factor_bytes" gauge for
  /// this object's lifetime.
  std::int64_t factor_bytes() const {
    return bytes_of(l_colptr_) + bytes_of(l_rowind_) + bytes_of(l_values_) +
           bytes_of(super_start_) + bytes_of(super_of_col_) +
           bytes_of(panel_offset_) + bytes_of(panel_data_) +
           bytes_of(level_ptr_) + bytes_of(level_order_) +
           bytes_of(level_work_) + bytes_of(upd_ptr_) + bytes_of(upd_src_) +
           bytes_of(upd_p1_) + bytes_of(upd_p2_) + bytes_of(d_) +
           bytes_of(sqrt_abs_d_);
  }

  /// The strictly-lower factor L as a CSC matrix over the PERMUTED
  /// indices (unit diagonal implied) — the common currency for comparing
  /// the simplicial and supernodal paths in tests. Gathered from the
  /// panels on demand on the supernodal path.
  SparseMatrix<T> l_matrix() const;

  // --- The M-operator interface used by the Lanczos process (real only). --
  // With A = M J Mᵀ, M = Pᵀ L √|D|:

  /// x = M⁻¹ b  (gather by P, forward-solve L, scale by 1/√|d|).
  std::vector<T> solve_m(const std::vector<T>& b) const;

  /// x = M⁻ᵀ b  (scale by 1/√|d|, back-solve Lᵀ, scatter by Pᵀ).
  std::vector<T> solve_mt(const std::vector<T>& b) const;

  const std::vector<Index>& permutation() const { return symbolic_->perm_; }

 private:
  template <typename V>
  static std::int64_t bytes_of(const V& v) {
    return static_cast<std::int64_t>(v.size() *
                                     sizeof(typename V::value_type));
  }

  void factorize(const SparseMatrix<T>& a, double zero_pivot_tol);
  void factorize_simplicial(const std::vector<T>& values, double pivot_floor,
                            double& dmin, double& dmax);
  void factorize_supernodal(const std::vector<T>& values, double pivot_floor,
                            double& dmin, double& dmax);
  void forward_solve(std::vector<T>& x) const;   // L x = b (unit lower)
  void backward_solve(std::vector<T>& x) const;  // Lᵀ x = b
  // Panel sweeps of the supernodal path; x is the permuted workspace laid
  // out row-major n×nrhs. Both solve() overloads funnel through these
  // with nrhs = 1 / p respectively.
  void panel_forward(T* x, Index nrhs) const;
  void panel_backward(T* x, Index nrhs) const;

  Index n_ = 0;
  std::shared_ptr<const LdltSymbolic> symbolic_;
  KernelOptions kernel_options_;
  KernelPath path_ = KernelPath::kSimplicial;
  // Simplicial storage: L in CSC (columns = elimination order), strictly
  // lower, unit diagonal implied.
  std::vector<Index> l_colptr_;
  std::vector<Index> l_rowind_;
  std::vector<T> l_values_;
  // Supernodal storage: column-major dense panels, one per supernode.
  // Panel s covers columns [super_start_[s], super_start_[s+1]) with
  // height w + r: the top w rows are the in-panel triangle (pivots on
  // the diagonal, unit-lower L below it), the bottom r rows are the
  // below-panel L rows whose global indices are the symbolic pattern of
  // the panel's last column.
  std::vector<Index> super_start_;
  std::vector<Index> super_of_col_;
  std::vector<Index> panel_offset_;  // size supernode_count()+1
  std::vector<T> panel_data_;
  Index panel_zeros_ = 0;
  Index max_panel_width_ = 0;
  // Elimination-tree level schedule over supernodes: level_order_ holds
  // supernode indices grouped by tree level (ascending within a level),
  // level_ptr_ delimits the groups. Supernodes within one level have no
  // ancestor/descendant relation, so they factor — and solve — in
  // parallel without ordering constraints. level_work_ is the dense-entry
  // count per level, the grain gate deciding whether fanning a level out
  // across the thread pool beats running it inline.
  std::vector<Index> level_ptr_;
  std::vector<Index> level_order_;
  std::vector<double> level_work_;
  // Descendant update segments in CSR form keyed by TARGET supernode:
  // segment k of target s (k in [upd_ptr_[s], upd_ptr_[s+1])) says rows
  // [upd_p1_[k], upd_p2_[k]) of descendant upd_src_[k]'s below-panel block
  // land in s's columns. Built once per factorization, d-ascending within
  // each target — the left-looking pull order is deterministic and
  // independent of thread count.
  std::vector<Index> upd_ptr_;
  std::vector<Index> upd_src_;
  std::vector<Index> upd_p1_;
  std::vector<Index> upd_p2_;
  SimdLevel simd_ = SimdLevel::kScalar;
  Index threads_used_ = 1;
  std::vector<T> d_;
  std::vector<typename ScalarTraits<T>::Real> sqrt_abs_d_;
  double pivot_ratio_ = 0.0;
  double fill_ratio_ = 0.0;
  double flops_ = 0.0;
  // Charges factor_bytes() against "mem.factor_bytes" while this
  // factorization is alive; copies duplicate the charge (a copied factor
  // really holds a second copy of the storage).
  obs::MemCharge mem_charge_;
};

using LDLT = SparseLDLT<double>;
using CLDLT = SparseLDLT<Complex>;

extern template class SparseLDLT<double>;
extern template class SparseLDLT<Complex>;

}  // namespace sympvl
