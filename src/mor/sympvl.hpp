// SyMPVL: the paper's top-level algorithm.
//
// Pipeline (Sections 2-4):
//   1. assemble the symmetric MNA pencil (G, C, B);
//   2. factor G (or the shifted G + s₀C of eq. 26) as M J Mᵀ with
//      J = diag(±1) — sparse LDLᵀ on an RCM ordering, dense Bunch-Kaufman
//      fallback;
//   3. run the symmetric block-Lanczos process (Algorithm 1) on the
//      operator J⁻¹M⁻¹CM⁻ᵀ with starting block J⁻¹M⁻¹B;
//   4. package (Tₙ, Δₙ, ρₙ) as a ReducedModel evaluating eq. (19).
#pragma once

#include <cstdint>
#include <memory>

#include "circuit/mna.hpp"
#include "linalg/factor_chain.hpp"
#include "linalg/sparse_ldlt.hpp"
#include "mor/options.hpp"
#include "mor/reduced_model.hpp"
#include "obs/histogram.hpp"

namespace sympvl {

/// SyMPVL options: the shared reduction surface (order, s₀, auto_shift,
/// deflation_tol, lookahead_tol, ordering) plus the block-Lanczos knobs.
struct SympvlOptions : CommonReductionOptions {
  /// Full reorthogonalization against all closed clusters (robust default).
  bool full_reorthogonalization = true;
  /// Serious-breakdown guard forwarded to the Lanczos process: a
  /// look-ahead cluster growing past this size stops the iteration at the
  /// last healthy order (0 = unlimited).
  Index max_cluster_size = 8;
};

/// Diagnostics describing how the reduction ran.
struct SympvlReport {
  double s0_used = 0.0;        ///< shift actually applied
  bool used_dense_fallback = false;  ///< Bunch-Kaufman instead of sparse LDLᵀ
  Index negative_j = 0;        ///< negative entries of J (0 for RC/RL/LC)
  Index deflations = 0;
  bool exhausted = false;
  Index achieved_order = 0;
  Index lookahead_clusters = 0;
  std::vector<Index> cluster_sizes;  ///< look-ahead cluster structure

  // -- Recovery trail (the robustness layer's audit log). --
  /// Every factorization rung attempted, in order, with its outcome.
  std::vector<FactorAttemptRecord> factor_attempts;
  /// Shift changes performed after the initial factorization (eq. 26
  /// retries and explicit SympvlSession::reshift calls).
  Index shift_retries = 0;
  /// True when anything beyond the first-choice factorization was needed.
  bool recovered = false;
  /// Breakdown post-mortem from the Lanczos process; `breakdown` mirrors
  /// lanczos_diagnosis.breakdown for quick checking.
  LanczosDiagnosis lanczos_diagnosis;
  bool breakdown = false;

  // -- Per-stage wall times (seconds; always measured, independent of the
  //    obs trace sink). lanczos/total accumulate across extend() calls. --
  double factor_seconds = 0.0;       ///< G + s₀C = M J Mᵀ (incl. shift retry)
  double start_block_seconds = 0.0;  ///< J⁻¹M⁻¹B construction
  double lanczos_seconds = 0.0;      ///< Algorithm 1 iterations
  double total_seconds = 0.0;

  // -- Memory accounting (bytes; always measured, see DESIGN.md §5.7). --
  /// Resident bytes of the accepted pencil factorization (C matrix, J
  /// and the backend factor storage).
  std::int64_t factor_bytes = 0;
  /// High-water mark of the Krylov state (basis + candidates + T/ρ +
  /// cluster Gram matrices) across all extend() calls so far.
  std::int64_t krylov_peak_bytes = 0;
  /// Process peak RSS (getrusage) at the last report refresh; 0 when the
  /// platform cannot report it.
  std::int64_t peak_rss_bytes = 0;

  // -- Per-step Lanczos latency digest (always measured from the
  //    session's own step clock, independent of the obs sinks). --
  obs::LatencyStats lanczos_step_stats;

  // -- Sparse-factorization telemetry (zeros on the dense fallback). --
  Index factor_nnz_l = 0;          ///< off-diagonal entries of L
  double factor_fill_ratio = 0.0;  ///< stored factor per lower-tri nnz of A
  double factor_flops = 0.0;       ///< numeric factorization flop count

  // -- Kernel-layer telemetry (see KernelOptions; defaults on the dense
  //    fallback). --
  std::string kernel_path = "simplicial";  ///< numeric kernel actually run
  Index supernode_count = 0;   ///< panels of the supernodal factor (0 =
                               ///< simplicial)
  Index max_panel_width = 0;   ///< widest amalgamated panel
  Index panel_zeros = 0;       ///< explicit zeros stored by relaxation
  std::string simd_level = "scalar";  ///< resolved SIMD dispatch level
  Index kernel_threads = 1;    ///< threads the numeric phase spanned
  /// Numeric-factorization flop rate (GFLOP/s over factor_seconds; 0 when
  /// unmeasurable).
  double factor_gflops = 0.0;

  // -- FactorCache outcome for this reduction's successful rungs (failed
  //    rungs are neither; bypassed acquires count as misses). --
  Index factor_cache_hits = 0;
  Index factor_cache_misses = 0;

  // -- Moment-match diagnostic: the 0th moment of the Padé model,
  //    ρₙᵀΔₙρₙ, against the exact Bᵀ(G+s₀C)⁻¹B (computed from the
  //    factorization, so it costs O(N·p²)). Near machine epsilon whenever
  //    the starting block was captured (matrix-Padé property, eq. 20). --
  double moment0_residual = 0.0;
};

/// Runs SyMPVL on an assembled MNA system.
ReducedModel sympvl_reduce(const MnaSystem& sys, const SympvlOptions& options,
                           SympvlReport* report = nullptr);

/// Resumable SyMPVL: the Section 7.1 workflow ("running the algorithm 6
/// more iterations results in a perfect match"). The session owns the
/// G = M J Mᵀ factorization and the Lanczos state, so extending an
/// order-n model by k vectors costs k operator applications instead of a
/// full restart — and produces exactly the matrices a fresh order-(n+k)
/// run would (the process is deterministic).
class SympvlSession {
 public:
  /// Factors the system and runs the Lanczos process to options.order.
  SympvlSession(const MnaSystem& sys, const SympvlOptions& options);
  ~SympvlSession();
  SympvlSession(SympvlSession&&) noexcept;
  SympvlSession& operator=(SympvlSession&&) noexcept;
  SympvlSession(const SympvlSession&) = delete;
  SympvlSession& operator=(const SympvlSession&) = delete;

  /// Runs `additional` more Lanczos steps (stops early on exhaustion) and
  /// returns the model at the new order.
  ReducedModel extend(Index additional);

  /// Breakdown recovery (eq. 26): re-factors the pencil at `new_s0`,
  /// restarts the Lanczos process about the new expansion point and runs
  /// it back to the previously requested order. The session keeps its
  /// system copy, so this costs one factorization plus the iteration —
  /// no re-assembly. Returns the model at the recovered order.
  ReducedModel reshift(double new_s0);

  /// True when the last run stopped on a serious breakdown (the model is
  /// truncated at the last healthy order; consider reshift()).
  bool breakdown() const;

  /// The model at the current order.
  ReducedModel current() const;

  /// Accepted Lanczos vectors so far.
  Index order() const;

  /// The accepted Lanczos vectors as an N×order matrix (truncated at the
  /// last closed look-ahead cluster, matching current()). Columns live in
  /// M-transformed coordinates: the physical Krylov basis is M⁻ᵀ·V.
  /// Consumed by the port-sharding stitch (mor/port_shard.hpp).
  Mat krylov_basis() const;

  /// Diagnostics, refreshed after every extend().
  const SympvlReport& report() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience: assembles `netlist` (kAuto form — the most specific of
/// RC/RL/LC per Section 2.2, else general RLC) and reduces it.
ReducedModel sympvl_reduce(const Netlist& netlist, const SympvlOptions& options,
                           SympvlReport* report = nullptr);

/// Picks the automatic shift used when G is singular: the ratio of the
/// diagonal scales of G and C (a frequency inside the band where both
/// terms of the pencil matter).
double automatic_shift(const MnaSystem& sys);

}  // namespace sympvl
