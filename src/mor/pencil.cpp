#include "mor/pencil.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace sympvl {

namespace {

// One cache-backed factorization attempt, recorded into the trail.
// Returns nullptr on failure (the failure record carries code/detail).
std::shared_ptr<const FactorizedPencil> attempt_rung(
    const SMat& g, const SMat& c, const PencilFingerprint& fp,
    FactorCache& cache, const PencilFactorRequest& req, double shift,
    bool dense, std::vector<FactorAttemptRecord>* attempts) {
  FactorAttemptRecord rec;
  rec.method = dense ? "dense_bk" : "ldlt";
  rec.shift = shift;
  PencilFactorOptions opt;
  opt.shift = shift;
  opt.ordering = req.ordering;
  opt.dense = dense;
  opt.kernels = req.kernels;
  // The driver's effective RHS block width (port count, or the shard
  // width under port sharding) feeds the kAuto kernel-path heuristic —
  // resolved HERE so the FactorCache key sees the same path the solves
  // will take. An explicit caller-set rhs_hint wins.
  if (opt.kernels.rhs_hint == 0 && req.rhs_width > 0)
    opt.kernels.rhs_hint = req.rhs_width;
  try {
    bool hit = false;
    std::shared_ptr<const FactorizedPencil> pencil;
    if (req.cache_options.enabled) {
      pencil = cache.acquire(
          fp, opt,
          [&] { return std::make_shared<const FactorizedPencil>(g, c, opt); },
          &hit);
    } else {
      pencil = std::make_shared<const FactorizedPencil>(g, c, opt);
    }
    rec.success = true;
    if (hit) rec.detail = "cache hit";
    attempts->push_back(std::move(rec));
    return pencil;
  } catch (const Error& e) {
    rec.code = e.code();
    rec.detail = e.what();
    attempts->push_back(std::move(rec));
    return nullptr;
  }
}

[[noreturn]] void throw_ladder_failure(
    const PencilFactorRequest& req,
    const std::vector<FactorAttemptRecord>& attempts) {
  std::string history;
  for (const FactorAttemptRecord& a : attempts) {
    if (!history.empty()) history += "; ";
    history += a.method + "(s0=" + std::to_string(a.shift) + "): " + a.detail;
  }
  ErrorContext ctx;
  ctx.stage = req.stage;
  ctx.index = static_cast<Index>(attempts.size());
  throw Error(ErrorCode::kSingular,
              std::string(req.driver) +
                  ": every factorization attempt failed [" + history + "]",
              std::move(ctx));
}

// The SyMPVL recovery ladder (eq. 26):
//   1. sparse LDLᵀ at the requested s₀;
//   2. sparse LDLᵀ at the automatic shift (when s₀ = 0 and auto enabled);
//   3. sparse LDLᵀ at jittered shifts around the base (retries);
//   4. dense Bunch-Kaufman at the last meaningful shift (when allowed).
PencilFactorResult full_ladder(const SMat& g, const SMat& c,
                               const PencilFingerprint& fp, FactorCache& cache,
                               const PencilFactorRequest& req) {
  PencilFactorResult res;
  std::vector<double> shifts{req.s0};
  if (req.auto_shift) {
    if (req.s0 == 0.0 && req.auto_s0 != 0.0) shifts.push_back(req.auto_s0);
    double base = (req.auto_s0 != 0.0) ? std::abs(req.auto_s0) : std::abs(req.s0);
    if (base == 0.0) base = 1.0;
    for (double s : shift_ladder(base, 4)) shifts.push_back(s);
  }
  for (double s : shifts) {
    if (auto pencil = attempt_rung(g, c, fp, cache, req, s,
                                   /*dense=*/false, &res.attempts)) {
      res.pencil = std::move(pencil);
      res.s0_used = s;
      return res;
    }
  }
  if (!req.allow_dense) throw_ladder_failure(req, res.attempts);

  // Dense fallback at the shift the sparse path settled on: the requested
  // one, or the automatic one when the request was 0 and auto is enabled.
  const double s_dense = (req.s0 == 0.0 && req.auto_shift && req.auto_s0 != 0.0)
                             ? req.auto_s0
                             : req.s0;
  obs::instant("sympvl.dense_fallback", {obs::arg("n", g.rows())});
  if (auto pencil = attempt_rung(g, c, fp, cache, req, s_dense,
                                 /*dense=*/true, &res.attempts)) {
    res.pencil = std::move(pencil);
    res.s0_used = s_dense;
    res.dense = true;
    return res;
  }
  throw_ladder_failure(req, res.attempts);
}

// Single attempt at s₀ with one automatic-shift retry — the historical
// SyPVL/PVL/Arnoldi policy. `auto_s0` of 0 disables the retry.
PencilFactorResult single_attempt(const SMat& g, const SMat& c,
                                  const PencilFingerprint& fp,
                                  FactorCache& cache,
                                  const PencilFactorRequest& req,
                                  double auto_s0) {
  PencilFactorResult res;
  if (auto pencil = attempt_rung(g, c, fp, cache, req, req.s0,
                                 /*dense=*/false, &res.attempts)) {
    res.pencil = std::move(pencil);
    res.s0_used = req.s0;
    return res;
  }
  const FactorAttemptRecord& failed = res.attempts.back();
  if (!(req.auto_shift && req.s0 == 0.0) || auto_s0 == 0.0)
    throw Error(ErrorCode::kSingular,
                std::string(req.driver) +
                    ": factorization of G + s0*C failed and auto_shift "
                    "cannot help: " +
                    failed.detail,
                {.stage = req.stage, .value = req.s0});
  if (auto pencil = attempt_rung(g, c, fp, cache, req, auto_s0,
                                 /*dense=*/false, &res.attempts)) {
    res.pencil = std::move(pencil);
    res.s0_used = auto_s0;
    return res;
  }
  // The automatic-shift retry failed too: surface its error verbatim (the
  // historical drivers let the second factorization's exception escape).
  const FactorAttemptRecord& retry = res.attempts.back();
  throw Error(retry.code, retry.detail, {.stage = req.stage, .value = auto_s0});
}

}  // namespace

double automatic_shift(const MnaSystem& sys) {
  // Scale ratio of the pencil terms: s₀ ≈ Σ|diag G| / Σ|diag C| lands in
  // the frequency range where G + s₀C is balanced (and, for PSD G and C
  // with s₀ > 0, nonsingular whenever the pencil is regular).
  double sg = 0.0, sc = 0.0;
  for (Index i = 0; i < sys.size(); ++i) {
    sg += std::abs(sys.G.coeff(i, i));
    sc += std::abs(sys.C.coeff(i, i));
  }
  require(sc > 0.0, ErrorCode::kInvalidArgument,
          "automatic_shift: C has an empty diagonal",
          ErrorContext{.stage = "sympvl.auto_shift"});
  if (sg == 0.0) return 1.0;
  return sg / sc;
}

PencilFactorResult factor_pencil(const SMat& g, const SMat& c,
                                 const PencilFactorRequest& req) {
  FactorCache& cache = req.cache != nullptr ? *req.cache : FactorCache::global();
  if (req.cache_options.capacity > 0)
    cache.set_capacity(req.cache_options.capacity);
  const PencilFingerprint fp = fingerprint_pencil(g, c);
  if (req.full_ladder) return full_ladder(g, c, fp, cache, req);
  return single_attempt(g, c, fp, cache, req, req.auto_s0);
}

PencilFactorResult factor_pencil(const MnaSystem& sys,
                                 const PencilFactorRequest& req) {
  FactorCache& cache = req.cache != nullptr ? *req.cache : FactorCache::global();
  if (req.cache_options.capacity > 0)
    cache.set_capacity(req.cache_options.capacity);
  const PencilFingerprint fp = fingerprint_pencil(sys.G, sys.C);
  if (req.full_ladder) {
    PencilFactorRequest r = req;
    if (r.auto_shift && r.auto_s0 == 0.0) {
      try {
        r.auto_s0 = automatic_shift(sys);
      } catch (const Error&) {
        // C has an empty diagonal — no automatic shift available; the
        // ladder degrades to the requested shift plus the dense rung.
      }
    }
    return full_ladder(sys.G, sys.C, fp, cache, r);
  }
  // Single-attempt policy: resolve the automatic shift LAZILY, only when
  // the first attempt failed and a retry is allowed — automatic_shift
  // throws on resistor-only circuits, and those factor fine at s₀ = 0.
  PencilFactorResult res;
  if (auto pencil = attempt_rung(sys.G, sys.C, fp, cache, req, req.s0,
                                 /*dense=*/false, &res.attempts)) {
    res.pencil = std::move(pencil);
    res.s0_used = req.s0;
    return res;
  }
  const FactorAttemptRecord failed = res.attempts.back();
  if (!(req.auto_shift && req.s0 == 0.0))
    throw Error(ErrorCode::kSingular,
                std::string(req.driver) +
                    ": factorization of G + s0*C failed and auto_shift "
                    "cannot help: " +
                    failed.detail,
                {.stage = req.stage, .value = req.s0});
  const double auto_s0 = automatic_shift(sys);  // may throw; propagates
  if (auto pencil = attempt_rung(sys.G, sys.C, fp, cache, req, auto_s0,
                                 /*dense=*/false, &res.attempts)) {
    res.pencil = std::move(pencil);
    res.s0_used = auto_s0;
    return res;
  }
  const FactorAttemptRecord& retry = res.attempts.back();
  throw Error(retry.code, retry.detail, {.stage = req.stage, .value = auto_s0});
}

Mat starting_block(const FactorizedPencil& pencil, const Mat& b) {
  const Vec& j = pencil.j_signs();
  const Index n = b.rows();
  Mat start(n, b.cols());
  for (Index col = 0; col < b.cols(); ++col) {
    Vec v = pencil.solve_m(b.col(col));
    for (Index i = 0; i < n; ++i)
      v[static_cast<size_t>(i)] *= j[static_cast<size_t>(i)];
    start.set_col(col, v);
  }
  return start;
}

}  // namespace sympvl
