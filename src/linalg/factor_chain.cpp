#include "linalg/factor_chain.hpp"

#include <algorithm>
#include <cmath>

#include "fault.hpp"
#include "obs/obs.hpp"

namespace sympvl {

namespace {

template <typename T>
double to_shift_double(T s) {
  return ScalarTraits<T>::abs(s);
}
template <>
double to_shift_double<double>(double s) {
  return s;
}

template <typename T>
double inf_norm(const std::vector<T>& x) {
  double m = 0.0;
  for (const T& v : x) m = std::max(m, ScalarTraits<T>::abs(v));
  return m;
}

}  // namespace

std::vector<double> shift_ladder(double base, Index count) {
  require(base > 0.0, ErrorCode::kInvalidArgument,
          "shift_ladder: base shift must be positive");
  std::vector<double> out;
  out.reserve(static_cast<size_t>(std::max<Index>(count, 0)));
  // Alternate up/down by factors of e with a deterministic ~10% jitter so
  // retries sample ~3 decades around the base without ever repeating it.
  for (Index k = 0; k < count; ++k) {
    const double decade = static_cast<double>(k / 2 + 1);
    const double dir = (k % 2 == 0) ? 1.0 : -1.0;
    const double jitter = 1.0 + 0.1 * static_cast<double>(k + 1);
    out.push_back(base * std::exp(dir * decade) * jitter);
  }
  return out;
}

template <typename T>
double sparse_onenorm(const SparseMatrix<T>& a) {
  double norm = 0.0;
  for (Index j = 0; j < a.cols(); ++j) {
    double col = 0.0;
    for (Index k = a.colptr()[static_cast<size_t>(j)];
         k < a.colptr()[static_cast<size_t>(j) + 1]; ++k)
      col += ScalarTraits<T>::abs(a.values()[static_cast<size_t>(k)]);
    norm = std::max(norm, col);
  }
  return norm;
}

template <typename T>
double inverse_onenorm_estimate(
    Index n, const std::function<std::vector<T>(const std::vector<T>&)>& solve,
    Index max_iter) {
  if (n <= 0) return 0.0;
  // Hager's method: maximize ‖A⁻¹x‖₁ over the unit 1-ball. Each iteration
  // needs one solve with A and one with Aᵀ; the matrices this library
  // factors are (complex-)symmetric, so both are `solve`.
  std::vector<T> x(static_cast<size_t>(n), T(1.0 / static_cast<double>(n)));
  double est = 0.0;
  Index prev_j = -1;
  for (Index iter = 0; iter < max_iter; ++iter) {
    const std::vector<T> y = solve(x);
    double e = 0.0;
    for (const T& v : y) e += ScalarTraits<T>::abs(v);
    if (iter > 0 && e <= est * (1.0 + 1e-12)) break;  // stalled
    est = std::max(est, e);
    std::vector<T> xi(static_cast<size_t>(n));
    for (size_t i = 0; i < xi.size(); ++i) {
      const double m = ScalarTraits<T>::abs(y[i]);
      xi[i] = (m == 0.0) ? T(1) : y[i] / T(m);
    }
    const std::vector<T> z = solve(xi);
    double zmax = 0.0;
    Index j = 0;
    for (Index i = 0; i < n; ++i) {
      const double m = ScalarTraits<T>::abs(z[static_cast<size_t>(i)]);
      if (m > zmax) {
        zmax = m;
        j = i;
      }
    }
    if (j == prev_j) break;
    prev_j = j;
    x.assign(static_cast<size_t>(n), T(0));
    x[static_cast<size_t>(j)] = T(1);
  }
  return est;
}

// ---- FactorChain -----------------------------------------------------------

template <typename T>
FactorChain<T>::FactorChain(const SparseMatrix<T>& g, const SparseMatrix<T>& c,
                            T shift, const std::vector<T>& retry_shifts,
                            const FactorChainOptions& options)
    : options_(options) {
  run_chain(&g, &c, shift, retry_shifts, nullptr);
}

template <typename T>
FactorChain<T>::FactorChain(const SparseMatrix<T>& a,
                            const FactorChainOptions& options)
    : options_(options) {
  run_chain(&a, nullptr, T(0), {}, nullptr);
}

template <typename T>
FactorChain<T>::FactorChain(const SparseMatrix<T>& a,
                            std::shared_ptr<const LdltSymbolic> symbolic,
                            const FactorChainOptions& options)
    : options_(options) {
  run_chain(&a, nullptr, T(0), {}, std::move(symbolic));
}

template <typename T>
void FactorChain<T>::run_chain(const SparseMatrix<T>* g,
                               const SparseMatrix<T>* c, T shift,
                               const std::vector<T>& retry_shifts,
                               std::shared_ptr<const LdltSymbolic> symbolic) {
  require(g != nullptr && g->rows() == g->cols(), ErrorCode::kInvalidArgument,
          "FactorChain: matrix must be square");
  auto assemble = [&](T s) -> SparseMatrix<T> {
    if (c == nullptr || s == T(0)) return *g;
    return SparseMatrix<T>::add(*g, T(1), *c, s);
  };

  std::vector<T> shifts{shift};
  if (c != nullptr)
    for (T s : retry_shifts)
      if (s != shift) shifts.push_back(s);

  for (size_t si = 0; si < shifts.size(); ++si) {
    const T s = shifts[si];
    const SparseMatrix<T> a = assemble(s);
    // The shared symbolic analysis only matches the pattern of the
    // original assembly; shift retries reorder from scratch.
    const auto sym = (si == 0) ? symbolic : nullptr;
    if (try_rung(a, s, /*use_ldlt=*/true, sym)) return;
    if (options_.allow_lu && try_rung(a, s, /*use_ldlt=*/false, nullptr))
      return;
  }

  std::string history;
  for (const FactorAttemptRecord& rec : attempts_) {
    if (!history.empty()) history += "; ";
    history += rec.method + "(s0=" + std::to_string(rec.shift) +
               "): " + (rec.detail.empty() ? "rejected" : rec.detail);
  }
  ErrorContext ctx;
  ctx.stage = "factor_chain";
  ctx.index = static_cast<Index>(attempts_.size());
  ctx.condition = attempts_.empty() ? 0.0 : attempts_.back().condest;
  throw Error(ErrorCode::kSingular,
              "FactorChain: every factorization rung failed [" + history + "]",
              std::move(ctx));
}

template <typename T>
bool FactorChain<T>::try_rung(const SparseMatrix<T>& a, T shift, bool use_ldlt,
                              const std::shared_ptr<const LdltSymbolic>& symbolic) {
  FactorAttemptRecord rec;
  rec.method = use_ldlt ? "ldlt" : "lu";
  rec.shift = to_shift_double(shift);
  const Index attempt_index = static_cast<Index>(attempts_.size());
  bool accepted = false;
  try {
    fault::check(use_ldlt ? "factor.ldlt" : "factor.lu", attempt_index);
    if (use_ldlt) {
      if (symbolic != nullptr)
        ldlt_.emplace(a, symbolic, options_.zero_pivot_tol, options_.kernels);
      else
        ldlt_.emplace(a, options_.ordering, options_.zero_pivot_tol,
                      options_.kernels);
    } else {
      lu_.emplace(a, options_.ordering, /*pivot_threshold=*/1.0,
                  options_.zero_pivot_tol);
    }
    a_ = a;
    shift_used_ = shift;
    accepted = accept_rung(a_, rec);
  } catch (const Error& e) {
    rec.code = e.code();
    rec.detail = e.what();
  }
  if (!accepted) {
    if (use_ldlt)
      ldlt_.reset();
    else
      lu_.reset();
  }
  rec.success = accepted;
  obs::instant("factor_chain.attempt",
               {obs::arg("attempt", attempt_index),
                obs::arg("ldlt", use_ldlt ? 1.0 : 0.0),
                obs::arg("shift", rec.shift),
                obs::arg("condest", rec.condest),
                obs::arg("success", accepted ? 1.0 : 0.0)});
  attempts_.push_back(std::move(rec));
  return accepted;
}

template <typename T>
bool FactorChain<T>::accept_rung(const SparseMatrix<T>& a,
                                 FactorAttemptRecord& rec) {
  const Index n = a.rows();
  a_norm1_ = sparse_onenorm(a);
  condest_ = 0.0;

  // Gate 1: condition estimate, run only when the cheap pivot-ratio
  // indicator is suspicious (the estimate costs ~2·max_iter extra solves).
  const double pr = ldlt_ ? ldlt_->pivot_ratio() : lu_->pivot_ratio();
  if (options_.max_condition > 0.0 && options_.min_pivot_ratio > 0.0 &&
      pr < options_.min_pivot_ratio) {
    const auto solver = [this](const std::vector<T>& b) {
      return raw_solve(b);
    };
    condest_ =
        a_norm1_ *
        inverse_onenorm_estimate<T>(
            n, std::function<std::vector<T>(const std::vector<T>&)>(solver));
    rec.condest = condest_;
    if (condest_ > options_.max_condition) {
      rec.code = ErrorCode::kIllConditioned;
      rec.detail = "condition estimate " + std::to_string(condest_) +
                   " exceeds gate " + std::to_string(options_.max_condition);
      return false;
    }
  }

  // Gate 2: residual probe with iterative refinement — solve against the
  // known-answer RHS A·1 and insist the refined residual is small.
  if (options_.probe_refine_iters > 0 && options_.probe_tol > 0.0) {
    const std::vector<T> e(static_cast<size_t>(n), T(1));
    const std::vector<T> b = a.multiply(e);
    const double bnorm = inf_norm(b);
    std::vector<T> x = raw_solve(b);
    double rnorm = 0.0;
    for (Index iter = 0; iter <= options_.probe_refine_iters; ++iter) {
      std::vector<T> r = b;
      const std::vector<T> ax = a.multiply(x);
      for (size_t i = 0; i < r.size(); ++i) r[i] -= ax[i];
      rnorm = inf_norm(r);
      const double scale =
          std::max(bnorm, a_norm1_ * inf_norm(x)) + 1e-300;
      if (rnorm <= options_.probe_tol * scale) return true;
      if (iter == options_.probe_refine_iters) break;
      const std::vector<T> dx = raw_solve(r);
      for (size_t i = 0; i < x.size(); ++i) x[i] += dx[i];
    }
    rec.code = ErrorCode::kIllConditioned;
    rec.detail = "residual probe failed (|r|=" + std::to_string(rnorm) + ")";
    return false;
  }
  return true;
}

template <typename T>
std::vector<T> FactorChain<T>::raw_solve(const std::vector<T>& b) const {
  return ldlt_ ? ldlt_->solve(b) : lu_->solve(b);
}

template <typename T>
std::vector<T> FactorChain<T>::solve(const std::vector<T>& b) const {
  std::vector<T> x = raw_solve(b);
  if (options_.solve_refine_iters <= 0) return x;
  const double bnorm = inf_norm(b);
  for (Index iter = 0; iter < options_.solve_refine_iters; ++iter) {
    std::vector<T> r = b;
    const std::vector<T> ax = a_.multiply(x);
    for (size_t i = 0; i < r.size(); ++i) r[i] -= ax[i];
    const double scale = a_norm1_ * inf_norm(x) + bnorm + 1e-300;
    if (inf_norm(r) <= options_.refine_tol * scale) break;
    const std::vector<T> dx = raw_solve(r);
    for (size_t i = 0; i < x.size(); ++i) x[i] += dx[i];
  }
  return x;
}

template <typename T>
Matrix<T> FactorChain<T>::solve(const Matrix<T>& b) const {
  Matrix<T> x(b.rows(), b.cols());
  if (ldlt_) {
    x = ldlt_->solve(b);  // blocked multi-RHS fast path
  } else {
    for (Index j = 0; j < b.cols(); ++j) x.set_col(j, lu_->solve(b.col(j)));
  }
  if (options_.solve_refine_iters <= 0) return x;
  // Refine only the columns whose residual exceeds the target.
  for (Index j = 0; j < b.cols(); ++j) {
    const std::vector<T> bj = b.col(j);
    std::vector<T> xj = x.col(j);
    const double bnorm = inf_norm(bj);
    bool changed = false;
    for (Index iter = 0; iter < options_.solve_refine_iters; ++iter) {
      std::vector<T> r = bj;
      const std::vector<T> ax = a_.multiply(xj);
      for (size_t i = 0; i < r.size(); ++i) r[i] -= ax[i];
      const double scale = a_norm1_ * inf_norm(xj) + bnorm + 1e-300;
      if (inf_norm(r) <= options_.refine_tol * scale) break;
      const std::vector<T> dx = raw_solve(r);
      for (size_t i = 0; i < xj.size(); ++i) xj[i] += dx[i];
      changed = true;
    }
    if (changed) x.set_col(j, xj);
  }
  return x;
}

template class FactorChain<double>;
template class FactorChain<Complex>;
template double sparse_onenorm<double>(const SparseMatrix<double>&);
template double sparse_onenorm<Complex>(const SparseMatrix<Complex>&);
template double inverse_onenorm_estimate<double>(
    Index, const std::function<std::vector<double>(const std::vector<double>&)>&,
    Index);
template double inverse_onenorm_estimate<Complex>(
    Index,
    const std::function<std::vector<Complex>(const std::vector<Complex>&)>&,
    Index);

}  // namespace sympvl
