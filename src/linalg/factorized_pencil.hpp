// First-class factorized shifted pencils.
//
// Every reduction driver and sweep engine in this library ultimately
// works with the same object: the symmetric pencil A = G + s₀C factored
// as A = M J Mᵀ with J = diag(±1) (eq. 15 / eq. 26 of the paper). This
// header makes that object concrete:
//
//   * SymmetricOperator — the abstract operator interface the Lanczos
//     process iterates with (replacing the former per-vector
//     std::function closure), with a blocked multi-column apply;
//   * FactorizedPencil — a factorization of G + s₀C that owns its
//     backend (sparse unpivoted LDLᵀ, or the dense Bunch-Kaufman
//     fallback), exposes the split M/J interface, plain and blocked
//     A-solves (the blocked path routes through SparseLDLT's one-pass
//     multi-RHS solve), the Krylov operator J⁻¹M⁻¹CM⁻ᵀ, and carries the
//     FactorAttemptRecord recovery trail of how it was obtained.
//
// FactorizedPencil instances are immutable after construction and safe
// to share across threads — the property FactorCache relies on.
#pragma once

#include <memory>
#include <vector>

#include "linalg/dense.hpp"
#include "linalg/dense_factor.hpp"
#include "linalg/factor_chain.hpp"
#include "linalg/sparse.hpp"
#include "linalg/sparse_ldlt.hpp"

namespace sympvl {

/// Abstract symmetric operator applied by the Lanczos process
/// (Op = J⁻¹M⁻¹CM⁻ᵀ for the paper's drivers; tests may supply anything
/// symmetric w.r.t. the J-inner-product).
class SymmetricOperator {
 public:
  virtual ~SymmetricOperator() = default;

  /// y = Op·v.
  virtual Vec apply(const Vec& v) const = 0;

  /// Blocked form: applies Op to every column. The default loops over
  /// columns (bit-identical to repeated apply()); concrete operators may
  /// override with a genuinely blocked path.
  virtual Mat apply_block(const Mat& v) const;
};

/// Adapts an arbitrary callable Vec(const Vec&) to the operator
/// interface — for tests and ad-hoc operators; the library's own hot
/// paths pass a FactorizedPencil directly.
template <typename F>
class CallableOperator final : public SymmetricOperator {
 public:
  explicit CallableOperator(F fn) : fn_(std::move(fn)) {}
  Vec apply(const Vec& v) const override { return fn_(v); }

 private:
  F fn_;
};

template <typename F>
CallableOperator(F) -> CallableOperator<F>;

/// Assembles the shifted pencil G + shift·C (returns G itself for
/// shift = 0 — no-copy semantics matter for fingerprint stability, so a
/// copy is made regardless, but the sparsity pattern of G is preserved).
SMat assemble_pencil(const SMat& g, const SMat& c, double shift);

/// How to factor a pencil.
struct PencilFactorOptions {
  double shift = 0.0;                  ///< s₀ of the pencil G + s₀C
  Ordering ordering = Ordering::kRCM;  ///< sparse pre-ordering
  /// Relative zero-pivot threshold of the sparse LDLᵀ rung (the canonical
  /// driver setting; AC per-point pencils use 0 through FactorChain
  /// instead of this type).
  double zero_pivot_tol = 1e-12;
  /// Use the dense Bunch-Kaufman backend instead of the sparse LDLᵀ
  /// (the last rung of the SyMPVL recovery ladder).
  bool dense = false;
  /// Numeric-kernel selection for the sparse backend (simplicial vs
  /// supernodal, amalgamation slack); ignored by the dense backend.
  KernelOptions kernels;
};

/// A factored symmetric pencil A = G + s₀C = M J Mᵀ.
///
/// Backends:
///   * sparse (default): unpivoted SparseLDLT with M = PᵀL√|D| and
///     J = sign(D);
///   * dense: Bunch-Kaufman, M from its symmetric_factor() split, with
///     two dense LU factorizations serving M⁻¹ and M⁻ᵀ.
///
/// As a SymmetricOperator it applies the paper's Krylov operator
/// J⁻¹M⁻¹CM⁻ᵀ (step 3a of Algorithm 1).
class FactorizedPencil final : public SymmetricOperator {
 public:
  /// Factors G + shift·C. Throws Error(kSingular) when the backend hits a
  /// zero pivot (sparse) or a singular M (dense).
  FactorizedPencil(const SMat& g, const SMat& c,
                   const PencilFactorOptions& options);

  Index size() const { return n_; }
  double shift() const { return options_.shift; }
  bool dense() const { return options_.dense; }
  const PencilFactorOptions& options() const { return options_; }
  const SMat& c_matrix() const { return c_; }

  // ---- The split M/J interface (Lanczos starting block, eq. 16). ----
  /// Diagonal of J as ±1 entries.
  const Vec& j_signs() const { return j_; }
  /// x = M⁻¹ b.
  Vec solve_m(const Vec& b) const;
  /// x = M⁻ᵀ b.
  Vec solve_mt(const Vec& b) const;

  // ---- Plain A-solves (PVL / Arnoldi / moment drivers). ----
  /// x = A⁻¹ b. On the sparse backend this is the LDLᵀ solve verbatim
  /// (same rounding as the pre-refactor drivers).
  Vec solve(const Vec& b) const;
  /// Blocked multi-RHS solve A X = B: one pass over the factor for all
  /// columns on the sparse backend (SparseLDLT::solve(Matrix)).
  Mat solve(const Mat& b) const;

  // ---- The Krylov operator Op = J⁻¹M⁻¹CM⁻ᵀ. ----
  Vec apply(const Vec& v) const override;

  // ---- Recovery trail & telemetry. ----
  /// The rungs attempted to obtain this factorization (filled by the
  /// creating ladder; empty when constructed directly).
  const std::vector<FactorAttemptRecord>& attempts() const {
    return attempts_;
  }
  void set_attempts(std::vector<FactorAttemptRecord> attempts) {
    attempts_ = std::move(attempts);
  }

  /// Sparse-factor telemetry (zeros on the dense backend).
  Index l_nnz() const { return ldlt_ ? ldlt_->l_nnz() : 0; }
  double fill_ratio() const { return ldlt_ ? ldlt_->fill_ratio() : 0.0; }
  double flops() const { return ldlt_ ? ldlt_->flops() : 0.0; }
  Index negative_j() const;

  // ---- Kernel-layer telemetry (sparse backend; defaults elsewhere). ----
  /// Numeric kernel the sparse backend actually ran (kAuto is resolved at
  /// factorization time; kSimplicial on the dense backend for "none").
  KernelPath kernel_path() const {
    return ldlt_ ? ldlt_->kernel_path() : KernelPath::kSimplicial;
  }
  bool supernodal() const { return ldlt_ && ldlt_->supernodal(); }
  Index supernode_count() const { return ldlt_ ? ldlt_->supernode_count() : 0; }
  Index max_panel_width() const { return ldlt_ ? ldlt_->max_panel_width() : 0; }
  Index panel_zeros() const { return ldlt_ ? ldlt_->panel_zeros() : 0; }
  /// Resolved SIMD dispatch level of the panel kernels (kScalar on the
  /// dense backend, where no panel kernels run).
  SimdLevel simd_level() const {
    return ldlt_ ? ldlt_->simd_level() : SimdLevel::kScalar;
  }
  /// Threads the supernodal numeric factorization spanned (1 = serial).
  Index kernel_threads() const { return ldlt_ ? ldlt_->kernel_threads() : 1; }

  /// Resident bytes of this pencil: the retained C matrix, J, and the
  /// backend factor storage (exact for the sparse LDLᵀ backend; the
  /// dense backend is counted as its two n×n LU factors).
  std::int64_t bytes() const {
    std::int64_t b = static_cast<std::int64_t>(
        c_.nnz() * static_cast<Index>(sizeof(double) + sizeof(Index)) +
        (c_.cols() + 1) * static_cast<Index>(sizeof(Index)) +
        static_cast<Index>(j_.size() * sizeof(double)));
    if (ldlt_) b += ldlt_->factor_bytes();
    if (m_lu_ || mt_lu_)
      b += 2 * static_cast<std::int64_t>(n_) * static_cast<std::int64_t>(n_) *
           static_cast<std::int64_t>(sizeof(double));
    return b;
  }

 private:
  Index n_ = 0;
  PencilFactorOptions options_;
  SMat c_;  // the C term, needed by the operator (and kept so the pencil
            // cannot dangle when the caller's system dies)
  // Sparse backend.
  std::unique_ptr<LDLT> ldlt_;
  // Dense backend: M from Bunch-Kaufman, LU factors of M and Mᵀ.
  std::unique_ptr<LU> m_lu_, mt_lu_;
  Vec j_;
  std::vector<FactorAttemptRecord> attempts_;
};

}  // namespace sympvl
