// Package-model reduction (the Section 7.2 scenario): characterize a
// 64-pin RF package as a 16-port, reduce with SyMPVL at several orders and
// print the pin-1 exterior→interior voltage transfer against the exact
// analysis.
//
//   $ ./package_reduction [grid_scale]
#include <cstdio>

#include "sympvl.hpp"

int main(int argc, char** argv) {
  using namespace sympvl;

  PackageOptions popt;
  if (argc > 1 && std::atoi(argv[1]) > 0) popt.segments = std::atoi(argv[1]);
  const PackageCircuit pkg = make_package_circuit(popt);
  const MnaSystem sys = build_mna(pkg.netlist, MnaForm::kGeneral);
  std::printf("package: %lld elements, MNA size %lld, %lld ports\n",
              static_cast<long long>(pkg.netlist.element_count()),
              static_cast<long long>(sys.size()),
              static_cast<long long>(sys.port_count()));

  const Vec freqs = log_frequency_grid(1e7, 1e10, 25);
  std::printf("computing exact reference sweep (%zu points)...\n",
              freqs.size());
  const SweepResult exact = sweep(sys, freqs, {.throw_on_failure = true});

  const double s0 = automatic_shift(sys);
  std::printf("expansion point s0 = %.3e\n\n", s0);
  std::printf("%-12s %-14s", "f [Hz]", "|H| exact");

  const std::vector<Index> orders{48, 64, 80};
  std::vector<ReducedModel> roms;
  for (Index order : orders) {
    ReduceOptions opt;
    opt.order = order;
    opt.s0 = s0;
    roms.push_back(*reduce(sys, opt).value().as_reduced());
    std::printf(" |H| n=%-7lld", static_cast<long long>(order));
  }
  std::printf("\n");

  const Index drive = pkg.ext_port(0);
  const Index sense = pkg.int_port(0);
  for (size_t k = 0; k < freqs.size(); ++k) {
    const Complex s(0.0, 2.0 * M_PI * freqs[k]);
    std::printf("%-12.3e %-14.6e",
                freqs[k], std::abs(voltage_transfer(exact[k], drive, sense)));
    for (const auto& rom : roms)
      std::printf(" %-13.6e",
                  std::abs(voltage_transfer(rom.eval(s), drive, sense)));
    std::printf("\n");
  }

  std::printf("\nstate count: %lld (full) vs", static_cast<long long>(sys.size()));
  for (Index order : orders)
    std::printf(" %lld", static_cast<long long>(order));
  std::printf(" (reduced)\n");

  // Export the order-80 model's S-parameters as an industry-standard
  // Touchstone file any RF/SI tool can consume.
  const std::string ts_path = "/tmp/sympvl_package.s16p";
  std::vector<CMat> z_model;
  for (double f : freqs)
    z_model.push_back(roms.back().eval(Complex(0.0, 2.0 * M_PI * f)));
  write_touchstone_file(ts_path, freqs, z_model, 50.0,
                        "SyMPVL order-80 package model");
  std::printf("wrote %s (%zu frequency points)\n", ts_path.c_str(),
              freqs.size());
  return 0;
}
