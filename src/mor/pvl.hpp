// PVL baseline (references [4, 5] of the paper): scalar Padé via the
// classical two-sided (nonsymmetric) Lanczos process.
//
// Used for the Section 3.2 comparison: approximating a p-port transfer
// matrix entry-by-entry requires p² PVL runs (or p(p+1)/2 by symmetry),
// each with its own Krylov spaces, against a single SyMPVL run.
#pragma once

#include "circuit/mna.hpp"
#include "linalg/dense.hpp"
#include "mor/lanczos.hpp"
#include "mor/options.hpp"

namespace sympvl {

/// Scalar reduced model H_n(s) ≈ Z(i,j)(s) from one PVL run.
class PvlModel {
 public:
  PvlModel() = default;
  PvlModel(Mat t, double eta, SVariable variable, int s_prefactor, double s0);

  Index order() const { return t_.rows(); }
  double shift() const { return s0_; }

  /// Evaluates the physical scalar transfer function at s.
  Complex eval(Complex s) const;

  /// kth scalar moment η·e₁ᵀTₙᵏe₁ of the expansion Σₖ(−σ')ᵏ μₖ.
  double moment(Index k) const;

 private:
  Mat t_;
  double eta_ = 0.0;
  SVariable variable_ = SVariable::kS;
  int s_prefactor_ = 0;
  double s0_ = 0.0;
};

/// PVL options: shared base plus the two-sided recurrence's breakdown
/// threshold (the base's deflation_tol/lookahead_tol are block-Lanczos
/// concepts and unused here).
struct PvlOptions : CommonReductionOptions {
  double breakdown_tol = 1e-12;
};

/// Runs PVL on entry (row, col) of the system's Z matrix.
///
/// Serious breakdown (δₙ ≈ 0) after at least one completed step truncates
/// the model at the last healthy order and, when `diagnosis` is non-null,
/// fills it with the post-mortem; breakdown on the very first step throws
/// Error(ErrorCode::kBreakdown).
PvlModel pvl_reduce_entry(const MnaSystem& sys, Index row, Index col,
                          const PvlOptions& options,
                          LanczosDiagnosis* diagnosis = nullptr);

/// Reduces every Z entry. Z = Zᵀ for the symmetric pencils of Section 2,
/// so only the p(p+1)/2 upper-triangle entries run (fanned over the
/// thread pool, sharing one cached pencil factorization); the lower
/// triangle mirrors them. Returns p² models in row-major order; entry
/// (i, j) at index i*p+j.
std::vector<PvlModel> pvl_reduce_all(const MnaSystem& sys,
                                     const PvlOptions& options);

}  // namespace sympvl
