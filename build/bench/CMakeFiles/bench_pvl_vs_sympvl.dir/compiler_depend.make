# Empty compiler generated dependencies file for bench_pvl_vs_sympvl.
# This may be replaced when dependencies are built.
