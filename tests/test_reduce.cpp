// The public reduce() facade: method dispatch agrees with the underlying
// run_* drivers, the MacroModel variant evaluates uniformly, failures
// surface as status + diagnostics, and the unified sweep accepts the
// facade's models.
#include "mor/reduce.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/package.hpp"
#include "mor/driver.hpp"
#include "sim/sweep_api.hpp"

namespace sympvl {
namespace {

Netlist two_port_rc() {
  Netlist nl;
  nl.add_resistor(1, 2, 100.0);
  nl.add_resistor(2, 3, 150.0);
  nl.add_resistor(3, 0, 200.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_capacitor(2, 0, 2e-12);
  nl.add_capacitor(3, 0, 1.5e-12);
  nl.add_port(1, 0);
  nl.add_port(3, 0);
  return nl;
}

const Complex kProbe(0.0, 2.0 * M_PI * 1e9);

TEST(Reduce, SympvlDispatchMatchesDriverBitwise) {
  const MnaSystem sys = build_mna(two_port_rc());
  ReduceOptions opt;
  opt.order = 3;
  const ReduceResult res = reduce(sys, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.status, ReductionStatus::kOk);
  ASSERT_NE(res.model.as_reduced(), nullptr);
  EXPECT_EQ(res.model.order(), 3);
  EXPECT_EQ(res.model.port_count(), 2);

  const auto driver = run_sympvl(sys, static_cast<const SympvlOptions&>(opt));
  const CMat za = res.value().eval(kProbe);
  const CMat zb = driver.value().eval(kProbe);
  for (Index i = 0; i < za.rows(); ++i)
    for (Index j = 0; j < za.cols(); ++j) EXPECT_EQ(za(i, j), zb(i, j));
}

TEST(Reduce, ShardedWithOneShardMatchesSympvlBitwise) {
  const MnaSystem sys = build_mna(two_port_rc());
  ReduceOptions opt;
  opt.order = 3;
  opt.method = ReduceMethod::kShardedSympvl;
  opt.shard.shards = 1;
  const ReduceResult sharded = reduce(sys, opt);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded.shard.shards, 1);

  opt.method = ReduceMethod::kSympvl;
  const ReduceResult mono = reduce(sys, opt);
  const CMat za = sharded.value().eval(kProbe);
  const CMat zb = mono.value().eval(kProbe);
  for (Index i = 0; i < za.rows(); ++i)
    for (Index j = 0; j < za.cols(); ++j) EXPECT_EQ(za(i, j), zb(i, j));
}

TEST(Reduce, ShardedManyPortPathReportsShardTelemetry) {
  PackageOptions popt;
  popt.pins = 16;
  popt.segments = 2;
  popt.signal_pins = 8;
  const MnaSystem sys =
      build_mna(make_package_circuit(popt).netlist, MnaForm::kAuto);
  ReduceOptions opt;
  opt.method = ReduceMethod::kShardedSympvl;
  opt.order = 32;
  opt.shard.shards = 4;
  const ReduceResult res = reduce(sys, opt);
  ASSERT_TRUE(res.ok());
  ASSERT_NE(res.model.as_arnoldi(), nullptr);
  EXPECT_EQ(res.shard.shards, 4);
  EXPECT_EQ(res.model.port_count(), 16);
  EXPECT_GT(res.shard.stitched_order, 0);
  const CMat z = res.value().eval(kProbe);
  for (Index i = 0; i < z.rows(); ++i)
    for (Index j = 0; j < z.cols(); ++j)
      EXPECT_TRUE(std::isfinite(z(i, j).real()) &&
                  std::isfinite(z(i, j).imag()));
}

Netlist one_port_rc() {
  Netlist nl;  // SyPVL is the single-port predecessor: needs exactly one port
  nl.add_resistor(1, 2, 100.0);
  nl.add_resistor(2, 0, 150.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_capacitor(2, 0, 2e-12);
  nl.add_port(1, 0);
  return nl;
}

TEST(Reduce, SypvlDispatchMatchesDriver) {
  const MnaSystem sys = build_mna(one_port_rc());
  ReduceOptions opt;
  opt.order = 3;
  opt.method = ReduceMethod::kSypvl;
  const ReduceResult res = reduce(sys, opt);
  ASSERT_TRUE(res.ok());
  const auto driver = run_sypvl(sys, static_cast<const SympvlOptions&>(opt));
  const CMat za = res.value().eval(kProbe);
  const CMat zb = driver.value().eval(kProbe);
  for (Index i = 0; i < za.rows(); ++i)
    for (Index j = 0; j < za.cols(); ++j) EXPECT_EQ(za(i, j), zb(i, j));
}

TEST(Reduce, PvlDispatchWrapsScalarAsOneByOne) {
  const MnaSystem sys = build_mna(two_port_rc());
  ReduceOptions opt;
  opt.order = 3;
  opt.method = ReduceMethod::kPvl;
  opt.pvl_row = 1;
  opt.pvl_col = 0;
  const ReduceResult res = reduce(sys, opt);
  ASSERT_TRUE(res.ok());
  ASSERT_NE(res.model.as_pvl(), nullptr);
  EXPECT_EQ(res.model.port_count(), 1);
  const CMat z = res.value().eval(kProbe);
  ASSERT_EQ(z.rows(), 1);
  ASSERT_EQ(z.cols(), 1);

  PvlOptions popt;
  static_cast<CommonReductionOptions&>(popt) = opt;
  const auto driver = run_pvl(sys, 1, 0, popt);
  EXPECT_EQ(z(0, 0), driver.value().eval(kProbe));
}

TEST(Reduce, ArnoldiDispatchMatchesDriver) {
  const MnaSystem sys = build_mna(two_port_rc());
  ReduceOptions opt;
  opt.order = 3;
  opt.method = ReduceMethod::kArnoldi;
  const ReduceResult res = reduce(sys, opt);
  ASSERT_TRUE(res.ok());
  ASSERT_NE(res.model.as_arnoldi(), nullptr);

  ArnoldiOptions aopt;
  static_cast<CommonReductionOptions&>(aopt) = opt;
  const auto driver = run_arnoldi(sys, aopt);
  const CMat za = res.value().eval(kProbe);
  const CMat zb = driver.value().eval(kProbe);
  for (Index i = 0; i < za.rows(); ++i)
    for (Index j = 0; j < za.cols(); ++j) EXPECT_EQ(za(i, j), zb(i, j));
}

TEST(Reduce, NetlistOverloadCapturesAssemblyFailure) {
  Netlist bad;  // a port with no elements: MNA assembly must reject it
  bad.add_port(1, 0);
  ReduceOptions opt;
  opt.order = 2;
  const ReduceResult res = reduce(bad, opt);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status, ReductionStatus::kFailed);
  ASSERT_FALSE(res.diagnostics.empty());
  EXPECT_TRUE(res.model.empty());
  EXPECT_THROW(res.value(), Error);
}

TEST(Reduce, MacroModelSweepDispatches) {
  const MnaSystem sys = build_mna(two_port_rc());
  ReduceOptions opt;
  opt.order = 3;
  const Vec freqs{1e8, 1e9, 5e9};

  const ReduceResult lanczos = reduce(sys, opt);
  const SweepResult sa = sweep(lanczos.value(), freqs);
  ASSERT_EQ(sa.size(), freqs.size());
  EXPECT_TRUE(sa.all_ok());

  opt.method = ReduceMethod::kPvl;
  const ReduceResult pvl = reduce(sys, opt);
  const SweepResult sb = sweep(pvl.value(), freqs);
  ASSERT_EQ(sb.size(), freqs.size());
  ASSERT_EQ(sb.values[0].rows(), 1);

  opt.method = ReduceMethod::kArnoldi;
  const ReduceResult arnoldi = reduce(sys, opt);
  const SweepResult sc = sweep(arnoldi.value(), freqs);
  EXPECT_TRUE(sc.all_ok());

  // The exact engine agrees with the order-3 model on this 3-node system.
  const SweepResult exact = sweep(sys, freqs);
  for (size_t k = 0; k < freqs.size(); ++k)
    for (Index i = 0; i < 2; ++i)
      for (Index j = 0; j < 2; ++j)
        EXPECT_NEAR(std::abs(sa.values[k](i, j) - exact.values[k](i, j)), 0.0,
                    1e-6 * std::abs(exact.values[k](i, j)) + 1e-12);
}

TEST(Reduce, EmptyMacroModelThrowsOnUse) {
  MacroModel empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.order(), 0);
  EXPECT_EQ(empty.port_count(), 0);
  EXPECT_THROW(empty.eval(kProbe), Error);
  EXPECT_THROW(sweep(empty, Vec{1e9}), Error);
}

}  // namespace
}  // namespace sympvl
