// Experiment E12 — ablations of two implementation choices DESIGN.md calls
// out:
//   (a) fill-reducing ordering for the sparse factorizations (natural vs
//       RCM vs minimum-degree), measured as symbolic fill and wall time on
//       the paper-scale circuits;
//   (b) full reorthogonalization in the Lanczos process vs the theoretical
//       band recurrence (accuracy and cost at growing order).
#include <chrono>

#include "bench_util.hpp"
#include "circuit/mna.hpp"
#include "gen/package.hpp"
#include "gen/rc_interconnect.hpp"
#include "linalg/sparse_ldlt.hpp"
#include "mor/sympvl.hpp"
#include "sim/ac.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

double timed(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_tables() {
  // ---- (a) ordering ablation on the two big substrate matrices. ----
  struct Case {
    const char* name;
    SMat g;
  };
  const PackageCircuit pkg = make_package_circuit();
  const InterconnectCircuit bus = make_interconnect_circuit();
  std::vector<Case> cases;
  cases.push_back({"package_G_shifted", [&] {
                     const MnaSystem sys = build_mna(pkg.netlist, MnaForm::kGeneral);
                     return SMat::add(sys.G, 1.0, sys.C, automatic_shift(sys));
                   }()});
  cases.push_back({"interconnect_G", build_mna(bus.netlist, MnaForm::kRC).G});

  csv_begin("ordering ablation: symbolic fill (L nnz) and factor time",
            {"case", "n", "fill_natural", "fill_rcm", "fill_mindeg",
             "t_rcm_s", "t_mindeg_s"});
  int case_id = 0;
  for (const auto& c : cases) {
    const Index fill_nat = symbolic_fill(c.g, natural_ordering(c.g.rows()));
    std::vector<Index> perm_rcm, perm_md;
    const double t_rcm = timed([&] { perm_rcm = rcm_ordering(c.g); });
    const double t_md = timed([&] { perm_md = min_degree_ordering(c.g); });
    std::printf("case %d = %s\n", case_id, c.name);
    csv_row({static_cast<double>(case_id++), static_cast<double>(c.g.rows()),
             static_cast<double>(fill_nat),
             static_cast<double>(symbolic_fill(c.g, perm_rcm)),
             static_cast<double>(symbolic_fill(c.g, perm_md)), t_rcm, t_md});
  }

  // ---- (b) reorthogonalization ablation. ----
  const MnaSystem sys = build_mna(bus.netlist, MnaForm::kRC);
  const Vec freqs = log_frequency_grid(1e6, 1e10, 11);
  const auto exact = ac_sweep(sys, freqs);
  csv_begin("reorthogonalization ablation (17-port RC bus)",
            {"order", "err_full_reorth", "err_band_recurrence",
             "t_full_s", "t_band_s"});
  for (Index order : {17, 34, 68}) {
    double err_full = 0.0, err_band = 0.0, t_full = 0.0, t_band = 0.0;
    for (int full = 1; full >= 0; --full) {
      SympvlOptions opt;
      opt.order = order;
      opt.full_reorthogonalization = (full == 1);
      ReducedModel rom;
      const double t = timed([&] { rom = sympvl_reduce(sys, opt); });
      double err = 0.0;
      for (size_t k = 0; k < freqs.size(); ++k)
        err = std::max(err, max_rel_err(
                                rom.eval(Complex(0.0, 2.0 * M_PI * freqs[k])),
                                exact[k]));
      if (full == 1) {
        err_full = err;
        t_full = t;
      } else {
        err_band = err;
        t_band = t;
      }
    }
    csv_row({static_cast<double>(order), err_full, err_band, t_full, t_band});
  }
}

void bm_ldlt_by_ordering(benchmark::State& state) {
  const InterconnectCircuit bus = make_interconnect_circuit({.wires = 4,
                                                             .segments = 100});
  const SMat g = build_mna(bus.netlist, MnaForm::kRC).G;
  const Ordering ord = static_cast<Ordering>(state.range(0));
  for (auto _ : state) {
    const LDLT f(g, ord);
    benchmark::DoNotOptimize(f.l_nnz());
  }
}
BENCHMARK(bm_ldlt_by_ordering)
    ->Arg(static_cast<int>(Ordering::kNatural))
    ->Arg(static_cast<int>(Ordering::kRCM))
    ->Arg(static_cast<int>(Ordering::kMinDegree))
    ->Unit(benchmark::kMillisecond);

}  // namespace

SYMPVL_BENCH_MAIN(print_tables)
