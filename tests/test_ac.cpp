#include "sim/ac.hpp"

#include <gtest/gtest.h>

namespace sympvl {
namespace {

TEST(Ac, RcLowPassAnalytic) {
  // Port impedance of R ∥ C: Z = R/(1+sRC).
  const double r = 1000.0, c = 1e-12;
  Netlist nl;
  nl.add_resistor(1, 0, r);
  nl.add_capacitor(1, 0, c);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  for (double f : {1e6, 1e8, 1e9, 1e10}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const Complex expected = r / (1.0 + s * r * c);
    const CMat z = ac_z_matrix(sys, s);
    EXPECT_NEAR(std::abs(z(0, 0) - expected), 0.0, 1e-9 * std::abs(expected));
  }
}

TEST(Ac, SeriesRlcResonator) {
  // Series R-L-C from port to ground: Z = R + sL + 1/(sC).
  const double r = 5.0, l = 1e-9, c = 1e-12;
  Netlist nl;
  nl.add_resistor(1, 2, r);
  nl.add_inductor(2, 3, l);
  nl.add_capacitor(3, 0, c);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl, MnaForm::kGeneral);
  for (double f : {1e8, 5.0329e9 /* ~resonance */, 2e10}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const Complex expected = r + s * l + 1.0 / (s * c);
    const CMat z = ac_z_matrix(sys, s);
    EXPECT_NEAR(std::abs(z(0, 0) - expected), 0.0,
                1e-8 * std::abs(expected) + 1e-12)
        << "f=" << f;
  }
}

TEST(Ac, TwoPortReciprocity) {
  Netlist nl;
  nl.add_resistor(1, 2, 10.0);
  nl.add_resistor(2, 3, 20.0);
  nl.add_resistor(3, 0, 30.0);
  nl.add_capacitor(2, 0, 1e-12);
  nl.add_capacitor(3, 0, 2e-12);
  nl.add_port(1, 0);
  nl.add_port(3, 0);
  const MnaSystem sys = build_mna(nl);
  const CMat z = ac_z_matrix(sys, Complex(0.0, 2.0 * M_PI * 1e9));
  EXPECT_NEAR(std::abs(z(0, 1) - z(1, 0)), 0.0, 1e-12 * std::abs(z(0, 1)));
}

TEST(Ac, CoupledInductorsTransformerAction) {
  // Two coupled inductors (k = 0.5), secondary loaded with R. At high
  // coupling the transfer impedance is sM·(R/(R+sL2))-ish; just verify
  // against the analytic 2x2 solve.
  const double l1 = 2e-9, l2 = 8e-9, k = 0.5, r = 50.0;
  const double m = k * std::sqrt(l1 * l2);
  Netlist nl;
  const Index i1 = nl.add_inductor(1, 0, l1);
  const Index i2 = nl.add_inductor(2, 0, l2);
  nl.add_mutual(i1, i2, k);
  nl.add_resistor(2, 0, r);
  nl.add_port(1, 0);
  nl.add_port(2, 0);
  const MnaSystem sys = build_mna(nl, MnaForm::kGeneral);
  const double f = 3e9;
  const Complex s(0.0, 2.0 * M_PI * f);
  const CMat z = ac_z_matrix(sys, s);
  // Analytic: V1 = sL1 I1 + sM I2; V2 = sM I1 + sL2 I2; port 2 loaded by R
  // in parallel at node 2... with port currents injected, solve exactly:
  // Drive I1 = 1, I2 = 0 (port 2 open -> only R carries node-2 current).
  // Node 2: inductor current i2' satisfies V2 = -R i2' ... cross-check
  // through the two-port formula Z11 = sL1 - (sM)²/(sL2 + R).
  const Complex z11_expected = s * l1 - (s * m) * (s * m) / (s * l2 + r);
  EXPECT_NEAR(std::abs(z(0, 0) - z11_expected), 0.0,
              1e-8 * std::abs(z11_expected));
}

TEST(Ac, SweepShapes) {
  Netlist nl;
  nl.add_resistor(1, 0, 100.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  const Vec freqs = log_frequency_grid(1e6, 1e10, 13);
  const auto zs = ac_sweep(sys, freqs);
  ASSERT_EQ(zs.size(), 13u);
  // Low-pass: magnitude decreases monotonically.
  for (size_t k = 1; k < zs.size(); ++k)
    EXPECT_LT(std::abs(zs[k](0, 0)), std::abs(zs[k - 1](0, 0)) + 1e-12);
}

TEST(Ac, VoltageTransferDivider) {
  // Voltage transfer across a resistive divider: drive port 0 (top),
  // observe port 1 (mid): H = R2/(R1+R2).
  Netlist nl;
  nl.add_resistor(1, 2, 100.0);
  nl.add_resistor(2, 0, 300.0);
  nl.add_port(1, 0);
  nl.add_port(2, 0);
  const MnaSystem sys = build_mna(nl);
  const CMat z = ac_z_matrix(sys, Complex(0.0, 0.0));
  const Complex h = voltage_transfer(z, 0, 1);
  EXPECT_NEAR(h.real(), 0.75, 1e-12);
}

TEST(Ac, SweepEngineMatchesPointwiseFactorization) {
  // The engine's amortized-symbolic path must agree with the one-shot
  // ac_z_matrix at every point, including general RLC pencils.
  Netlist nl;
  nl.add_resistor(1, 2, 25.0);
  const Index l1 = nl.add_inductor(2, 3, 2e-9);
  const Index l2 = nl.add_inductor(3, 0, 1e-9);
  nl.add_mutual(l1, l2, 0.4);
  nl.add_capacitor(2, 0, 1e-12);
  nl.add_capacitor(3, 0, 2e-12);
  nl.add_port(1, 0);
  nl.add_port(3, 0);
  const MnaSystem sys = build_mna(nl, MnaForm::kGeneral);
  const AcSweepEngine engine(sys);
  for (double f : {1e7, 1e8, 1e9, 7e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const CMat a = engine.z_at(s);
    const CMat b = ac_z_matrix(sys, s);
    for (Index i = 0; i < 2; ++i)
      for (Index j = 0; j < 2; ++j)
        EXPECT_NEAR(std::abs(a(i, j) - b(i, j)), 0.0, 1e-10 * std::abs(b(i, j)) + 1e-15)
            << "f=" << f;
  }
}

TEST(Ac, SweepEngineSurvivesSystemDestruction) {
  std::unique_ptr<AcSweepEngine> engine;
  {
    Netlist nl;
    nl.add_resistor(1, 0, 50.0);
    nl.add_capacitor(1, 0, 1e-12);
    nl.add_port(1, 0);
    const MnaSystem sys = build_mna(nl);
    engine = std::make_unique<AcSweepEngine>(sys);
  }
  const CMat z = engine->z_at(Complex(0.0, 2.0 * M_PI * 1e9));
  EXPECT_GT(std::abs(z(0, 0)), 0.0);
}

TEST(Ac, SweepEngineHandlesStructuralFallbackPoints) {
  // The series R-L structural cancellation defeats the unpivoted path at
  // every frequency; the engine must transparently use the pivoted LU.
  Netlist nl;
  nl.add_resistor(1, 2, 5.0);
  nl.add_inductor(2, 3, 1e-9);
  nl.add_capacitor(3, 0, 1e-12);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl, MnaForm::kGeneral);
  const AcSweepEngine engine(sys);
  const double f = 1e9;
  const Complex s(0.0, 2.0 * M_PI * f);
  const Complex expected = 5.0 + s * 1e-9 + 1.0 / (s * 1e-12);
  EXPECT_NEAR(std::abs(engine.z_at(s)(0, 0) - expected), 0.0,
              1e-9 * std::abs(expected));
}

TEST(Ac, FrequencyGrids) {
  const Vec lin = linear_frequency_grid(0.0, 10.0, 11);
  EXPECT_DOUBLE_EQ(lin.front(), 0.0);
  EXPECT_DOUBLE_EQ(lin.back(), 10.0);
  EXPECT_DOUBLE_EQ(lin[5], 5.0);
  const Vec lg = log_frequency_grid(1.0, 1000.0, 4);
  EXPECT_NEAR(lg[1], 10.0, 1e-12);
  EXPECT_NEAR(lg[2], 100.0, 1e-12);
  EXPECT_THROW(log_frequency_grid(0.0, 1.0, 5), Error);
  EXPECT_THROW(linear_frequency_grid(1.0, 1.0, 5), Error);
}

}  // namespace
}  // namespace sympvl
