// Multi-port network parameter conversions.
//
// SyMPVL natively produces Z-parameters (current-source excitation,
// Section 2.1). Package and interconnect characterization commonly wants
// Y-parameters (for admittance stamping) or S-parameters (measurement
// convention); these are the standard exact conversions:
//   Y = Z⁻¹,
//   S = (Z − Z₀I)(Z + Z₀I)⁻¹        for a uniform real reference Z₀,
//   Z = Z₀(I + S)(I − S)⁻¹.
#pragma once

#include "linalg/dense.hpp"

namespace sympvl {

/// Y = Z⁻¹. Throws when Z is singular at this frequency.
CMat z_to_y(const CMat& z);

/// Z = Y⁻¹.
CMat y_to_z(const CMat& y);

/// Scattering matrix for reference impedance z0 > 0 (same at all ports).
CMat z_to_s(const CMat& z, double z0 = 50.0);

/// Impedance matrix from scattering parameters.
CMat s_to_z(const CMat& s, double z0 = 50.0);

/// Voltage transfer H = V_out/V_in with port `drive` current-driven and
/// all others open (how the paper's Figs. 3-4 are defined); identical to
/// sim/ac.hpp's voltage_transfer but available for any evaluator output.
Complex z_voltage_transfer(const CMat& z, Index drive, Index out);

/// Largest passivity violation of an S-matrix: max singular value − 1
/// (σmax(S) ≤ 1 ⟺ the network does not amplify incident power).
double s_passivity_violation(const CMat& s);

}  // namespace sympvl
