#include "mor/sympvl.hpp"

#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "mor/moments.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

// Max relative deviation between two complex matrices.
double rel_err(const CMat& a, const CMat& b) {
  double num = 0.0, den = 0.0;
  for (Index i = 0; i < a.rows(); ++i)
    for (Index j = 0; j < a.cols(); ++j) {
      num = std::max(num, std::abs(a(i, j) - b(i, j)));
      den = std::max(den, std::abs(b(i, j)));
    }
  return num / (den + 1e-300);
}

TEST(Sympvl, ExactOnTinyRcCircuit) {
  // A 2-node RC circuit has a 2-dimensional state space: order 2 is exact.
  Netlist nl;
  nl.add_resistor(1, 2, 100.0);
  nl.add_resistor(2, 0, 200.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_capacitor(2, 0, 2e-12);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  SympvlOptions opt;
  opt.order = 2;
  const ReducedModel rom = sympvl_reduce(sys, opt);
  for (double f : {1e6, 1e9, 3e10}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    EXPECT_LT(rel_err(rom.eval(s), ac_z_matrix(sys, s)), 1e-9) << f;
  }
}

TEST(Sympvl, MomentMatchingSisoRc) {
  // q(n) = 2n moments for p = 1.
  const Netlist nl = random_rc({.nodes = 30, .ports = 1, .seed = 5});
  const MnaSystem sys = build_mna(nl);
  const Index n = 6;
  SympvlOptions opt;
  opt.order = n;
  const ReducedModel rom = sympvl_reduce(sys, opt);
  const auto exact = exact_moments(sys, 2 * n);
  for (Index k = 0; k < 2 * n; ++k) {
    const Mat mu = rom.moment(k);
    const double scale = std::abs(exact[static_cast<size_t>(k)](0, 0));
    EXPECT_NEAR(mu(0, 0), exact[static_cast<size_t>(k)](0, 0), 1e-7 * scale)
        << "moment " << k;
  }
}

TEST(Sympvl, MomentMatchingMultiportRc) {
  // q(n) ≥ 2⌊n/p⌋ matrix moments for p > 1.
  const Index p = 3, n = 9;  // 2·⌊9/3⌋ = 6 moments
  const Netlist nl = random_rc({.nodes = 40, .ports = p, .seed = 7});
  const MnaSystem sys = build_mna(nl);
  SympvlOptions opt;
  opt.order = n;
  const ReducedModel rom = sympvl_reduce(sys, opt);
  const Index q = 2 * (n / p);
  const auto exact = exact_moments(sys, q);
  for (Index k = 0; k < q; ++k) {
    const Mat mu = rom.moment(k);
    const double scale = exact[static_cast<size_t>(k)].max_abs();
    EXPECT_NEAR((mu - exact[static_cast<size_t>(k)]).max_abs(), 0.0,
                1e-6 * scale)
        << "moment " << k;
  }
}

TEST(Sympvl, MomentMatchingGeneralRlc) {
  // Indefinite G and C (J ≠ I path) still matches moments.
  const Netlist nl = random_rlc({.nodes = 25, .ports = 2, .seed = 3});
  const MnaSystem sys = build_mna(nl, MnaForm::kGeneral);
  const Index n = 8, p = 2;
  SympvlOptions opt;
  opt.order = n;
  SympvlReport report;
  const ReducedModel rom = sympvl_reduce(sys, opt, &report);
  ASSERT_GE(rom.order(), 4);
  const Index q = 2 * (rom.order() / p);
  const auto exact = exact_moments(sys, q, report.s0_used);
  for (Index k = 0; k < q; ++k) {
    const Mat mu = rom.moment(k);
    const double scale = exact[static_cast<size_t>(k)].max_abs();
    EXPECT_NEAR((mu - exact[static_cast<size_t>(k)]).max_abs(), 0.0,
                1e-5 * scale)
        << "moment " << k;
  }
}

TEST(Sympvl, IndefiniteCircuitsReportNegativeJ) {
  const Netlist nl = random_rlc({.nodes = 20, .ports = 1, .seed = 9});
  const MnaSystem sys = build_mna(nl, MnaForm::kGeneral);
  SympvlOptions opt;
  opt.order = 6;
  SympvlReport report;
  sympvl_reduce(sys, opt, &report);
  // General RLC MNA is indefinite: some J entries must be negative.
  EXPECT_GT(report.negative_j, 0);
}

TEST(Sympvl, DefiniteCircuitsHaveAllPositiveJ) {
  const Netlist nl = random_rc({.nodes = 20, .ports = 2, .seed = 10});
  SympvlOptions opt;
  opt.order = 8;
  SympvlReport report;
  sympvl_reduce(nl, opt, &report);
  EXPECT_EQ(report.negative_j, 0);
}

TEST(Sympvl, AutoShiftHandlesSingularG) {
  // LC circuit not touching ground through inductors: G singular, the
  // paper's eq. 26 shift must kick in automatically.
  const Netlist nl = random_lc({.nodes = 15, .ports = 1, .seed = 4,
                                .grounded = false});
  const MnaSystem sys = build_mna(nl, MnaForm::kLC);
  SympvlOptions opt;
  opt.order = 8;
  SympvlReport report;
  const ReducedModel rom = sympvl_reduce(sys, opt, &report);
  EXPECT_GT(report.s0_used, 0.0);
  EXPECT_EQ(rom.shift(), report.s0_used);
}

TEST(Sympvl, ConvergesWithOrderOnRc) {
  const Netlist nl = random_rc({.nodes = 60, .ports = 2, .seed = 12});
  const MnaSystem sys = build_mna(nl);
  const Vec freqs = log_frequency_grid(1e6, 1e10, 15);
  const auto exact = ac_sweep(sys, freqs);
  double prev_err = 1e100;
  for (Index order : {4, 8, 16, 32}) {
    SympvlOptions opt;
    opt.order = order;
    const ReducedModel rom = sympvl_reduce(sys, opt);
    double err = 0.0;
    for (size_t k = 0; k < freqs.size(); ++k)
      err = std::max(err, rel_err(rom.eval(Complex(0.0, 2.0 * M_PI * freqs[k])),
                                  exact[k]));
    EXPECT_LT(err, prev_err * 1.5) << "order " << order;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-6);  // order 32 should be essentially exact here
}

TEST(Sympvl, ReportsDeflationForRedundantPorts) {
  // Two ports on the same node: B has rank 1, one starting vector deflates.
  Netlist nl;
  nl.add_resistor(1, 2, 10.0);
  nl.add_resistor(2, 0, 10.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_capacitor(2, 0, 1e-12);
  nl.add_port(1, 0, "a");
  nl.add_port(1, 0, "b");
  const MnaSystem sys = build_mna(nl);
  SympvlOptions opt;
  opt.order = 2;
  SympvlReport report;
  sympvl_reduce(sys, opt, &report);
  EXPECT_GE(report.deflations, 1);
}

TEST(Sympvl, ZnIsSymmetric) {
  const Netlist nl = random_rc({.nodes = 30, .ports = 3, .seed = 20});
  SympvlOptions opt;
  opt.order = 12;
  const ReducedModel rom = sympvl_reduce(nl, opt);
  const CMat z = rom.eval(Complex(0.0, 2.0 * M_PI * 1e9));
  for (Index i = 0; i < 3; ++i)
    for (Index j = i + 1; j < 3; ++j)
      EXPECT_NEAR(std::abs(z(i, j) - z(j, i)), 0.0, 1e-10 * z.max_abs());
}

TEST(Sympvl, InvalidOptions) {
  const Netlist nl = random_rc({.nodes = 5, .ports = 1, .seed = 1});
  SympvlOptions opt;
  opt.order = 0;
  EXPECT_THROW(sympvl_reduce(nl, opt), Error);
}

}  // namespace
}  // namespace sympvl
