#include "linalg/sparse_ldlt.hpp"

#include <gtest/gtest.h>

#include <random>

#include "linalg/dense_factor.hpp"

namespace sympvl {
namespace {

// Random sparse SPD matrix: weighted graph Laplacian + positive diagonal.
SMat random_spd_sparse(Index n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0.1, 2.0);
  std::uniform_int_distribution<Index> pick(0, n - 1);
  TripletBuilder<double> t(n, n);
  for (Index i = 0; i < n; ++i) t.add(i, i, 1.0 + u(rng));
  for (Index k = 0; k < 3 * n; ++k) {
    const Index a = pick(rng), b = pick(rng);
    if (a == b) continue;
    const double w = u(rng);
    t.add(a, a, w);
    t.add(b, b, w);
    t.add_symmetric(a, b, -w);
  }
  return t.compress();
}

// Quasi-definite matrix [[A, Bᵀ], [B, -C]] with A, C SPD.
SMat random_quasi_definite(Index na, Index nb, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0.2, 1.5);
  std::uniform_int_distribution<Index> picka(0, na - 1);
  const Index n = na + nb;
  TripletBuilder<double> t(n, n);
  for (Index i = 0; i < na; ++i) t.add(i, i, 2.0 + u(rng));
  for (Index i = 0; i < nb; ++i) t.add(na + i, na + i, -(1.0 + u(rng)));
  for (Index i = 0; i < nb; ++i) {
    // couple each "inductor row" to two node rows
    t.add_symmetric(picka(rng), na + i, 1.0);
    t.add_symmetric(picka(rng), na + i, -1.0);
  }
  return t.compress();
}

TEST(SparseLDLT, SolvesSpdSystem) {
  for (unsigned seed : {1u, 2u, 3u}) {
    const SMat a = random_spd_sparse(40, seed);
    const LDLT f(a);
    Vec b(40);
    for (size_t i = 0; i < 40; ++i) b[i] = std::cos(static_cast<double>(i));
    const Vec x = f.solve(b);
    const Vec r = a.multiply(x);
    for (size_t i = 0; i < 40; ++i) EXPECT_NEAR(r[i], b[i], 1e-9);
  }
}

TEST(SparseLDLT, MatchesDenseSolve) {
  const SMat a = random_spd_sparse(25, 9);
  Vec b(25, 1.0);
  const Vec xs = LDLT(a).solve(b);
  const Vec xd = LU(a.to_dense()).solve(b);
  for (size_t i = 0; i < 25; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

TEST(SparseLDLT, NaturalOrderingAlsoWorks) {
  const SMat a = random_spd_sparse(30, 4);
  Vec b(30, 2.0);
  const Vec x1 = LDLT(a, Ordering::kRCM).solve(b);
  const Vec x2 = LDLT(a, Ordering::kNatural).solve(b);
  for (size_t i = 0; i < 30; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-8);
}

TEST(SparseLDLT, AllPositivePivotsForSpd) {
  const SMat a = random_spd_sparse(30, 5);
  const LDLT f(a);
  EXPECT_EQ(f.negative_pivots(), 0);
  for (double s : f.j_signs()) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(SparseLDLT, QuasiDefiniteInertia) {
  const Index na = 20, nb = 8;
  const SMat a = random_quasi_definite(na, nb, 11);
  const LDLT f(a);
  // Quasi-definite: exactly nb negative pivots regardless of ordering.
  EXPECT_EQ(f.negative_pivots(), nb);
  Vec b(static_cast<size_t>(na + nb), 1.0);
  const Vec x = f.solve(b);
  const Vec r = a.multiply(x);
  for (double v : r) EXPECT_NEAR(v, 1.0, 1e-8);
}

TEST(SparseLDLT, ThrowsOnSingular) {
  // Pure graph Laplacian (no ground ties): singular.
  TripletBuilder<double> t(3, 3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 2.0);
  t.add(2, 2, 1.0);
  t.add_symmetric(0, 1, -1.0);
  t.add_symmetric(1, 2, -1.0);
  EXPECT_THROW(LDLT{t.compress()}, Error);
}

TEST(SparseLDLT, RejectsAsymmetric) {
  TripletBuilder<double> t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  t.add(0, 1, 0.5);
  EXPECT_THROW(LDLT{t.compress()}, Error);
}

TEST(SparseLDLT, MFactorReconstructs) {
  // A = M J Mᵀ: verify via applying both sides to random vectors.
  const SMat a = random_quasi_definite(15, 5, 21);
  const LDLT f(a);
  const Vec j = f.j_signs();
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int trial = 0; trial < 5; ++trial) {
    Vec x(static_cast<size_t>(a.rows()));
    for (auto& v : x) v = u(rng);
    // y = A x and z = M J Mᵀ x (via solve_m/solve_mt inverses):
    // Mᵀx requires the forward map; instead check M⁻¹·A·M⁻ᵀ = J:
    // w = M⁻¹ A M⁻ᵀ x should equal J x.
    Vec w = f.solve_mt(x);
    w = a.multiply(w);
    w = f.solve_m(w);
    for (size_t i = 0; i < w.size(); ++i)
      EXPECT_NEAR(w[i], j[i] * x[i], 1e-8);
  }
}

TEST(SparseLDLT, ComplexSymmetricSolve) {
  // Complex-symmetric pencil G + jωC as used by the AC sweep.
  const SMat g = random_spd_sparse(20, 31);
  const SMat c = random_spd_sparse(20, 32);
  const Complex s(0.0, 2.0 * M_PI * 1e9);
  const CSMat pencil = pencil_combine(g, c, s);
  const CLDLT f(pencil);
  CVec b(20, Complex(1.0, -0.5));
  const CVec x = f.solve(b);
  const CVec r = pencil.multiply(x);
  for (const auto& v : r) EXPECT_NEAR(std::abs(v - Complex(1.0, -0.5)), 0.0, 1e-8);
}

TEST(SparseLDLT, PivotRatioReported) {
  const SMat a = random_spd_sparse(10, 8);
  const LDLT f(a);
  EXPECT_GT(f.pivot_ratio(), 0.0);
  EXPECT_LE(f.pivot_ratio(), 1.0);
}

TEST(SparseLDLT, FillInBounded) {
  // Tridiagonal matrices factor with zero fill beyond the band.
  const Index n = 50;
  TripletBuilder<double> t(n, n);
  for (Index i = 0; i < n; ++i) t.add(i, i, 2.0);
  for (Index i = 0; i + 1 < n; ++i) t.add_symmetric(i, i + 1, -1.0);
  const LDLT f(t.compress(), Ordering::kNatural);
  EXPECT_EQ(f.l_nnz(), n - 1);
}

}  // namespace
}  // namespace sympvl
