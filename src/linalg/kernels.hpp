// Cache-blocked dense panel kernels and the supernode machinery behind
// the supernodal LDLᵀ factorization path.
//
// The up-looking simplicial SparseLDLT eliminates one column at a time
// with scattered scalar updates; on the large quasi-banded MNA pencils
// of the paper's package/PEEC examples most adjacent columns share an
// identical lower structure, so the factorization can instead operate on
// dense column panels ("supernodes"): one rank-k GEMM-style update per
// descendant supernode and one dense in-panel LDLᵀ per panel, with unit
// stride inner loops instead of index-gathered AXPYs. This header holds
//
//   * KernelPath / KernelOptions — the public selector between the
//     simplicial and supernodal paths (env fallback: SYMPVL_KERNEL) and
//     the SIMD dispatch level (env fallback: SYMPVL_SIMD — see
//     linalg/simd.hpp);
//   * detect_supernodes — fundamental supernode detection with relaxed
//     amalgamation up to a fill slack, from the elimination tree and the
//     per-column factor counts alone (O(n));
//   * PanelKernels — the per-SIMD-level table of dense panel primitives
//     (rank-k panel update, D-scaled column copy, in-panel triangular
//     multi-RHS solves, scattered below-panel updates, diagonal solve)
//     the supernodal numeric phase and blocked solves dispatch through.
//     Scalar, AVX2+FMA and AVX-512 instances live in kernels.cpp behind
//     `target` function attributes, so one binary carries all levels.
//
// Numerical contract: the supernodal path reorders floating-point sums
// relative to the simplicial path, and the AVX levels fuse multiply-add
// chains the scalar level rounds twice (agreement to ~1e-12 relative
// either way). Within one dispatch level the single-RHS and multi-RHS
// supernodal solves run per-column bit-identical arithmetic — both
// funnel through the same kernels, whose remainder lanes use the same
// fused operations as the full vectors, with an independent accumulator
// chain per right-hand side.
#pragma once

#include <vector>

#include "common.hpp"
#include "linalg/simd.hpp"

namespace sympvl {

/// Which numeric LDLᵀ kernel factors and solves.
enum class KernelPath {
  kAuto,        ///< supernodal for large systems, simplicial for tiny ones
                ///< (env SYMPVL_KERNEL=simplicial|supernodal overrides)
  kSimplicial,  ///< the up-looking column-at-a-time path
  kSupernodal,  ///< blocked panel path
};

inline const char* kernel_path_name(KernelPath p) {
  switch (p) {
    case KernelPath::kAuto: return "auto";
    case KernelPath::kSimplicial: return "simplicial";
    case KernelPath::kSupernodal: return "supernodal";
  }
  return "unknown";
}

/// Kernel-path selection and supernode amalgamation knobs. The defaults
/// are the canonical settings every driver uses; passing a non-default
/// KernelOptions to a reduction changes the factorization's rounding at
/// the 1e-15 level, so the FactorCache keys on these fields (plus the
/// RESOLVED SIMD level — kAuto resolves through the environment, and two
/// resolutions may differ).
struct KernelOptions {
  KernelPath path = KernelPath::kAuto;
  /// SIMD dispatch level of the dense panel kernels. kAuto resolves via
  /// SYMPVL_SIMD, then a CPUID probe; explicit levels are clamped to what
  /// the host supports (see linalg/simd.hpp).
  SimdLevel simd = SimdLevel::kAuto;
  /// Relaxed amalgamation: a column may join the current panel even when
  /// the merge stores explicit zeros, as long as the panel keeps at most
  /// `relax_zeros` of them AND they stay under `relax_ratio` of the
  /// panel's dense entry count. 0/0 admits only fundamental supernodes.
  /// Defaults retuned for the SIMD panel kernels (wider panels amortize
  /// the vector microkernels better; measured on the package mesh by
  /// bench_kernels — 64/0.25 was the scalar-era optimum).
  Index relax_zeros = 128;
  double relax_ratio = 0.5;
  /// Maximum panel width (0 = unlimited). Wide panels amortize more; the
  /// rank-k update blocks internally, so no cache-motivated cap is needed.
  Index max_panel_width = 0;
  /// Expected right-hand-side block width of the solves this
  /// factorization will serve (the port count p for the drivers;
  /// 0 = unknown). Only a kAuto path heuristic hint — wide-RHS solves on
  /// small systems favor the simplicial path (see resolve_kernel_path).
  Index rhs_hint = 0;

  bool operator==(const KernelOptions& o) const {
    return path == o.path && simd == o.simd &&
           relax_zeros == o.relax_zeros && relax_ratio == o.relax_ratio &&
           max_panel_width == o.max_panel_width && rhs_hint == o.rhs_hint;
  }
};

/// Resolves kAuto: an explicit path wins; else the SYMPVL_KERNEL
/// environment variable ("simplicial" | "supernodal" | "auto"); else a
/// size heuristic: supernodal for n >= 48 (panel bookkeeping does not pay
/// for itself on tiny systems) — unless the expected RHS block is nearly
/// as wide as the system itself (`rhs_width > n/4`), where the blocked
/// panel solve's scatter bookkeeping loses to the simplicial one-pass
/// sweep (crossover measured by bench_kernels; see DESIGN.md §5.6).
/// `rhs_width <= 0` means unknown and leaves the n-only heuristic.
KernelPath resolve_kernel_path(const KernelOptions& options, Index n,
                               Index rhs_width = 0);

/// FactorCache behavior for one reduction/sweep. Lives here (rather than
/// factor_cache.hpp) so CommonReductionOptions can hold it by value
/// without pulling the whole factorization stack into every driver
/// header. Environment fallbacks, applied to the process-global cache on
/// first use: SYMPVL_FACTOR_CACHE=0|off disables it,
/// SYMPVL_FACTOR_CACHE_CAP=<n> sets its capacity.
struct CacheOptions {
  /// false bypasses the cache for this reduction (every factorization
  /// runs fresh); it never re-enables a cache disabled via environment.
  bool enabled = true;
  /// Resizes the cache used by this reduction before the first acquire
  /// (0 = leave the cache's current capacity alone).
  std::size_t capacity = 0;

  bool operator==(const CacheOptions& o) const {
    return enabled == o.enabled && capacity == o.capacity;
  }
};

/// Supernode partition of the factor's columns: `start` holds the first
/// column of each supernode plus a terminating n, so supernode s spans
/// [start[s], start[s+1]).
struct SupernodePartition {
  std::vector<Index> start;
  /// Explicit zeros the relaxed panels store (0 with relaxation off).
  Index zeros = 0;
  /// Total dense panel entries (triangle + below-rows rectangle).
  Index panel_entries = 0;

  Index count() const { return static_cast<Index>(start.size()) - 1; }
  Index max_width() const {
    Index w = 0;
    for (size_t s = 0; s + 1 < start.size(); ++s)
      w = std::max(w, start[s + 1] - start[s]);
    return w;
  }
};

/// Detects supernodes from the elimination tree `parent` and the
/// per-column off-diagonal factor counts `lnz` (both over the permuted
/// pattern). Columns j-1 and j share a supernode only when
/// parent[j-1] == j (an elimination-tree chain, which guarantees the
/// merged panel's below-rows are exactly struct(last column)); the merge
/// is accepted when it introduces no explicit zeros (fundamental) or
/// stays within the relaxed-amalgamation slack of `options`.
SupernodePartition detect_supernodes(const std::vector<Index>& parent,
                                     const std::vector<Index>& lnz,
                                     const KernelOptions& options);

namespace kernels {

// All pointers are __restrict-qualified in the implementations; callers
// must not alias output with inputs (x/xtop overlap in the trsm kernels
// is by design: they solve in place).

/// y[0..n) += alpha * x[0..n)  (unrolled fused AXPY).
template <typename T>
void axpy_n(Index n, T alpha, const T* x, T* y);

/// Unrolled dot product sum(a[i] * b[i]), no conjugation (the factor is
/// complex symmetric, not Hermitian).
template <typename T>
T dot_n(Index n, const T* a, const T* b);

/// x[0..n) *= alpha.
template <typename T>
void scale_n(Index n, T alpha, T* x);

/// Per-SIMD-level table of the dense panel primitives. Obtain via
/// panel_kernels<T>(level) with a RESOLVED level (never kAuto); the
/// returned reference is a process-lifetime static.
///
/// Layout conventions shared by every entry:
///   * panels are column-major with leading dimension `ld` (the panel
///     height h = w + r);
///   * right-hand-side blocks are row-major with the nrhs columns
///     contiguous per row (row i at x + i*nrhs) — the "interleaved RHS
///     panel" layout that keeps the multi-RHS inner loops unit-stride.
template <typename T>
struct PanelKernels {
  /// Rank-k panel update C += A · Bᵀ with column-major operands:
  /// A is m×k (lda), B is q×k (ldb), C is m×q (ldc). The workhorse of
  /// the descendant-supernode update.
  void (*gemm_nt_acc)(Index m, Index q, Index k, const T* a, Index lda,
                      const T* b, Index ldb, T* c, Index ldc);
  /// W(:,j) = src(:,j) · d[j] for j in [0, w): the D-scaled middle
  /// segment feeding gemm_nt_acc. src/dst column-major q×w.
  void (*scale_cols)(Index q, Index w, const T* src, Index lds, const T* d,
                     T* dst, Index ldd);
  /// In-panel unit-lower forward solve L X = X over the panel's top w×w
  /// triangle; X is the w-row RHS panel at `x` (row-major, stride nrhs).
  void (*trsm_forward)(Index w, const T* panel, Index ld, Index nrhs, T* x);
  /// In-panel backward solve Lᵀ X = X (same panel/layout contract).
  void (*trsm_backward)(Index w, const T* panel, Index ld, Index nrhs, T* x);
  /// Scattered below-panel forward update: for each below row i,
  ///   X[rows[i], :] -= Σ_j  Lbelow(i, j) · Xtop[j, :]
  /// with Lbelow the r×w block at `lbelow` (element (i,j) at
  /// lbelow[j*ld + i]), Xtop the panel's top rows (w×nrhs) and X the full
  /// RHS block. Accumulate-then-subtract per (row, rhs) pair with the
  /// j-chain ascending.
  void (*below_forward)(Index r, Index w, Index nrhs, const T* lbelow,
                        Index ld, const Index* rows, const T* xtop, T* x);
  /// Scattered below-panel backward update: for each panel column j,
  ///   Xtop[j, :] -= Σ_i  Lbelow(i, j) · X[rows[i], :]
  /// (the transpose of below_forward; i-chain ascending).
  void (*below_backward)(Index r, Index w, Index nrhs, const T* lbelow,
                         Index ld, const Index* rows, const T* x, T* xtop);
  /// Diagonal solve X[i, :] /= d[i] for i in [0, n) (row-major X).
  void (*diag_solve)(Index n, Index nrhs, const T* d, T* x);
  /// y += alpha·x and x *= alpha at this dispatch level (the in-panel
  /// LDLᵀ column operations).
  void (*axpy)(Index n, T alpha, const T* x, T* y);
  void (*scale)(Index n, T alpha, T* x);
};

/// The kernel table for a resolved dispatch level. Levels the build
/// cannot express (non-x86) alias the scalar table; resolve_simd_level
/// guarantees the host can execute whatever it returns.
template <typename T>
const PanelKernels<T>& panel_kernels(SimdLevel level);

/// Dense in-panel LDLᵀ over a column-major h×w panel (ld = h): the top
/// w×w triangle is factored in place (unit lower L, pivots left on the
/// diagonal) and the trailing (h-w)×w block becomes the below-panel L
/// rows. Right-looking with fused column AXPYs dispatched through `K`.
/// Returns the flop count. Pivot acceptance is the caller's job: `pivot`
/// is invoked with (local_column, pivot_value) before the column is used
/// for scaling and may throw.
template <typename T, typename PivotFn>
double panel_ldlt(const PanelKernels<T>& K, Index h, Index w, T* panel,
                  const PivotFn& pivot) {
  double flops = 0.0;
  for (Index j = 0; j < w; ++j) {
    T* colj = panel + j * h;
    const T dj = colj[j];
    pivot(j, dj);
    const Index below = h - j - 1;
    // Scale column j below the diagonal: L(i,j) = P(i,j) / d_j.
    K.scale(below, T(1) / dj, colj + j + 1);
    // Trailing update: P(i,k) -= L(i,j)·d_j·L(k,j) for i ≥ k > j. Only the
    // lower triangle of the panel is stored, so the multiplier L(k,j)
    // reads from the freshly scaled column j.
    for (Index k = j + 1; k < w; ++k) {
      T* colk = panel + k * h;
      const T mult = colj[k] * dj;
      K.axpy(h - k, -mult, colj + k, colk + k);
    }
    flops += static_cast<double>(below) +
             2.0 * static_cast<double>(below) * static_cast<double>(w - j - 1);
  }
  return flops;
}

extern template void axpy_n<double>(Index, double, const double*, double*);
extern template void axpy_n<Complex>(Index, Complex, const Complex*, Complex*);
extern template double dot_n<double>(Index, const double*, const double*);
extern template Complex dot_n<Complex>(Index, const Complex*, const Complex*);
extern template void scale_n<double>(Index, double, double*);
extern template void scale_n<Complex>(Index, Complex, Complex*);
extern template const PanelKernels<double>& panel_kernels<double>(SimdLevel);
extern template const PanelKernels<Complex>& panel_kernels<Complex>(SimdLevel);

}  // namespace kernels

}  // namespace sympvl
