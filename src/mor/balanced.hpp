// Balanced truncation for symmetric RC-form systems — the "gold standard"
// model-order-reduction baseline the Krylov literature (this paper
// included) positions itself against: near-optimal H∞ accuracy with a
// provable error bound, at O(N³) cost that Krylov methods avoid.
//
// For an RC system  C·ẋ = −G·x + B·u,  y = Bᵀx  with C symmetric positive
// definite and G symmetric PSD, the Cholesky change of coordinates
// x̃ = Rᵀx (C = RRᵀ) gives a SYMMETRIC state matrix Ã = −R⁻¹GR⁻ᵀ, so the
// controllability and observability Gramians coincide and the system is
// already balanced in Ã's eigenbasis: the Hankel singular values are the
// eigenvalues of the (single) Gramian
//   P = Q·diag(pᵢ)·Qᵀ,  pᵢⱼ = (Q ᵀB̃B̃ᵀQ)ᵢⱼ/(−λᵢ−λⱼ)  … diagonal entries.
// Truncating to the k dominant Hankel directions yields a reduced model
// with the classical guarantee ‖Z − Z_k‖_{H∞} ≤ 2·Σ_{i>k} σᵢ.
#pragma once

#include "circuit/mna.hpp"
#include "mor/arnoldi.hpp"

namespace sympvl {

/// Balanced-truncation options: only the shared base's `order` (retained
/// Hankel directions k) is consulted — the method is dense and direct, so
/// shift and tolerance fields do not apply.
struct BalancedOptions : CommonReductionOptions {};

struct BalancedResult {
  ArnoldiModel model;        ///< reduced (Gr, Cr, Br) model (s-domain)
  Vec hankel_singular_values;  ///< all N values, descending
  double error_bound = 0.0;  ///< 2·Σ of the truncated values (H∞ bound)
};

/// Balanced truncation of an RC-form system (variable kS, prefactor 0,
/// C positive definite). Dense O(N³): intended as an accuracy baseline on
/// moderate N, not as a production path.
BalancedResult balanced_truncation(const MnaSystem& sys,
                                   const BalancedOptions& options);

}  // namespace sympvl
