// Exact frequency-domain (AC) analysis of assembled MNA systems.
//
// Provides the "exact analysis" reference curves of Figures 2-4: for each
// frequency point the complex symmetric pencil G + f(s)C is factored with
// the sparse LDLᵀ and solved against all p port columns, giving the full
// p×p Z(s) without any model reduction.
#pragma once

#include <memory>
#include <vector>

#include "circuit/mna.hpp"
#include "linalg/dense.hpp"
#include "sim/sweep.hpp"

namespace sympvl {

class FactorCache;

/// Exact physical Z(s) = s^prefactor · Bᵀ (G + f(s)C)⁻¹ B at one complex
/// frequency point.
CMat ac_z_matrix(const MnaSystem& sys, Complex s);

/// Exact sweep over `frequencies_hz` along the jω axis (s = j·2πf).
/// Returns one p×p matrix per frequency. All-or-nothing contract: throws
/// Error(kSweepPointFailed) when any point fails; use
/// AcSweepEngine::sweep for the per-point-contained SweepResult form.
std::vector<CMat> ac_sweep(const MnaSystem& sys, const Vec& frequencies_hz);

/// Voltage-to-voltage transfer H(s) = V_out / V_in when port `drive` is
/// driven by a current source and every other port is left open:
///   H = Z(out, drive) / Z(drive, drive).
/// This is how the paper's package plots (Figs 3, 4) are produced.
Complex voltage_transfer(const CMat& z, Index drive, Index out);

/// Logarithmically spaced frequency grid [f_min, f_max] with `count` points.
Vec log_frequency_grid(double f_min, double f_max, Index count);

/// Linearly spaced frequency grid.
Vec linear_frequency_grid(double f_min, double f_max, Index count);

/// Repeated-factorization AC engine. The union sparsity pattern of
/// G + f(s)C and the LDLᵀ symbolic analysis (ordering, elimination tree,
/// fill pattern) are computed ONCE; each frequency point then costs only a
/// numeric refactorization — the standard way production circuit
/// simulators run AC sweeps. Falls back to the pivoted sparse LU at points
/// where the unpivoted path hits a zero pivot.
///
/// Every per-point factorization is acquired through the FactorCache
/// (`cache`; nullptr = the process-global instance): revisiting a
/// frequency point is a lookup, and a purely real point whose pencil a
/// reduction driver already factored (same s₀) reuses that real M J Mᵀ
/// factorization instead of refactoring — zero extra factorizations for
/// "reduce at s₀, then validate exactly at s₀".
class AcSweepEngine {
 public:
  explicit AcSweepEngine(const MnaSystem& sys, FactorCache* cache = nullptr);
  ~AcSweepEngine();
  AcSweepEngine(AcSweepEngine&&) noexcept;
  AcSweepEngine& operator=(AcSweepEngine&&) noexcept;
  AcSweepEngine(const AcSweepEngine&) = delete;
  AcSweepEngine& operator=(const AcSweepEngine&) = delete;

  /// Physical Z(s) at one complex frequency point.
  CMat z_at(Complex s) const;

  /// Sweep along the jω axis with the symbolic analysis amortized and
  /// per-point fault containment: a frequency point whose pencil cannot
  /// be factored (or that hits an injected fault) yields a NaN matrix and
  /// a structured error record while every other point completes
  /// unaffected — and bit-identical to an all-healthy sweep.
  /// \deprecated Prefer the unified sympvl::sweep(engine, grid, options)
  /// of sim/sweep_api.hpp; this member spelling is kept for
  /// compatibility.
  SweepResult sweep(const Vec& frequencies_hz) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sympvl
