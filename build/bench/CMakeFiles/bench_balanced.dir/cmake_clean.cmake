file(REMOVE_RECURSE
  "CMakeFiles/bench_balanced.dir/bench_balanced.cpp.o"
  "CMakeFiles/bench_balanced.dir/bench_balanced.cpp.o.d"
  "bench_balanced"
  "bench_balanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_balanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
