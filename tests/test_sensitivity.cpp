#include "sim/sensitivity.hpp"

#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

// Central finite difference of Z(i, j) with respect to a value reached
// through `mutate`.
Complex finite_difference(const Netlist& nl, Complex s, Index i, Index j,
                          double value, double rel_step,
                          const std::function<Netlist(double)>& rebuild) {
  const double h = rel_step * std::abs(value);
  const CMat zp = ac_z_matrix(build_mna(rebuild(value + h), MnaForm::kGeneral), s);
  const CMat zm = ac_z_matrix(build_mna(rebuild(value - h), MnaForm::kGeneral), s);
  (void)nl;
  return (zp(i, j) - zm(i, j)) / (2.0 * h);
}

Netlist base_circuit() {
  Netlist nl;
  nl.add_resistor(1, 2, 100.0, "R1");
  nl.add_resistor(2, 0, 400.0, "R2");
  nl.add_capacitor(2, 0, 2e-12, "C1");
  nl.add_capacitor(1, 0, 1e-12, "C2");
  const Index l1 = nl.add_inductor(1, 3, 2e-9, "L1");
  const Index l2 = nl.add_inductor(3, 0, 1e-9, "L2");
  nl.add_mutual(l1, l2, 0.4, "K1");
  nl.add_port(1, 0);
  nl.add_port(2, 0);
  return nl;
}

Netlist with_values(double r1, double c1, double l1, double k1) {
  Netlist nl;
  nl.add_resistor(1, 2, r1, "R1");
  nl.add_resistor(2, 0, 400.0, "R2");
  nl.add_capacitor(2, 0, c1, "C1");
  nl.add_capacitor(1, 0, 1e-12, "C2");
  const Index i1 = nl.add_inductor(1, 3, l1, "L1");
  const Index i2 = nl.add_inductor(3, 0, 1e-9, "L2");
  nl.add_mutual(i1, i2, k1, "K1");
  nl.add_port(1, 0);
  nl.add_port(2, 0);
  return nl;
}

TEST(Sensitivity, ResistorMatchesFiniteDifference) {
  const Netlist nl = base_circuit();
  const Complex s(0.0, 2.0 * M_PI * 1e9);
  for (Index i = 0; i < 2; ++i)
    for (Index j = 0; j < 2; ++j) {
      const auto sens = z_sensitivities(nl, s, i, j);
      const Complex fd = finite_difference(
          nl, s, i, j, 100.0, 1e-6,
          [](double v) { return with_values(v, 2e-12, 2e-9, 0.4); });
      EXPECT_NEAR(std::abs(sens.d_resistance[0] - fd), 0.0,
                  1e-5 * (std::abs(fd) + 1e-12))
          << "entry " << i << j;
    }
}

TEST(Sensitivity, CapacitorMatchesFiniteDifference) {
  const Netlist nl = base_circuit();
  const Complex s(0.0, 2.0 * M_PI * 2e9);
  const auto sens = z_sensitivities(nl, s, 0, 1);
  const Complex fd = finite_difference(
      nl, s, 0, 1, 2e-12, 1e-6,
      [](double v) { return with_values(100.0, v, 2e-9, 0.4); });
  EXPECT_NEAR(std::abs(sens.d_capacitance[0] - fd), 0.0,
              1e-5 * (std::abs(fd) + 1e-12));
}

TEST(Sensitivity, InductorMatchesFiniteDifference) {
  const Netlist nl = base_circuit();
  const Complex s(0.0, 2.0 * M_PI * 3e9);
  const auto sens = z_sensitivities(nl, s, 0, 0);
  const Complex fd = finite_difference(
      nl, s, 0, 0, 2e-9, 1e-6,
      [](double v) { return with_values(100.0, 2e-12, v, 0.4); });
  EXPECT_NEAR(std::abs(sens.d_inductance[0] - fd), 0.0,
              1e-5 * (std::abs(fd) + 1e-12));
}

TEST(Sensitivity, CouplingMatchesFiniteDifference) {
  const Netlist nl = base_circuit();
  const Complex s(0.0, 2.0 * M_PI * 3e9);
  const auto sens = z_sensitivities(nl, s, 1, 1);
  const Complex fd = finite_difference(
      nl, s, 1, 1, 0.4, 1e-6,
      [](double v) { return with_values(100.0, 2e-12, 2e-9, v); });
  EXPECT_NEAR(std::abs(sens.d_coupling[0] - fd), 0.0,
              1e-5 * (std::abs(fd) + 1e-12));
}

TEST(Sensitivity, ReciprocityOfCrossEntries) {
  // dZ12/dv = dZ21/dv for reciprocal networks.
  const Netlist nl = base_circuit();
  const Complex s(0.0, 2.0 * M_PI * 1e9);
  const auto s12 = z_sensitivities(nl, s, 0, 1);
  const auto s21 = z_sensitivities(nl, s, 1, 0);
  for (size_t k = 0; k < s12.d_resistance.size(); ++k)
    EXPECT_NEAR(std::abs(s12.d_resistance[k] - s21.d_resistance[k]), 0.0,
                1e-12 * (1.0 + std::abs(s12.d_resistance[k])));
}

TEST(Sensitivity, DcResistorChainIsExact) {
  // Series chain at DC: Z11 = R1 + R2, so dZ/dR = 1 exactly.
  Netlist nl;
  nl.add_resistor(1, 2, 100.0);
  nl.add_resistor(2, 0, 300.0);
  nl.add_capacitor(2, 0, 1e-12);
  nl.add_port(1, 0);
  const auto sens = z_sensitivities(nl, Complex(0.0, 0.0), 0, 0);
  EXPECT_NEAR(sens.d_resistance[0].real(), 1.0, 1e-10);
  EXPECT_NEAR(sens.d_resistance[1].real(), 1.0, 1e-10);
  // And the grounded capacitor is invisible at DC.
  EXPECT_NEAR(std::abs(sens.d_capacitance[0]), 0.0, 1e-12);
}

TEST(Sensitivity, RandomCircuitsAllElementTypes) {
  const Netlist nl = random_rlc({.nodes = 15, .ports = 2, .seed = 91});
  const Complex s(0.0, 2.0 * M_PI * 5e8);
  const auto sens = z_sensitivities(nl, s, 0, 1);
  EXPECT_EQ(sens.d_resistance.size(), nl.resistors().size());
  EXPECT_EQ(sens.d_capacitance.size(), nl.capacitors().size());
  EXPECT_EQ(sens.d_inductance.size(), nl.inductors().size());
  EXPECT_EQ(sens.d_coupling.size(), nl.mutuals().size());
  // Spot-check one resistor against finite differences by rebuilding the
  // netlist with a perturbed first-resistor value.
  const double r0 = nl.resistors()[0].resistance;
  auto rebuild = [&](double v) {
    Netlist c;
    c.ensure_nodes(nl.node_count());
    for (size_t k = 0; k < nl.resistors().size(); ++k)
      c.add_resistor(nl.resistors()[k].n1, nl.resistors()[k].n2,
                     k == 0 ? v : nl.resistors()[k].resistance);
    for (const auto& cap : nl.capacitors())
      c.add_capacitor(cap.n1, cap.n2, cap.capacitance);
    for (const auto& l : nl.inductors()) c.add_inductor(l.n1, l.n2, l.inductance);
    for (const auto& m : nl.mutuals()) c.add_mutual(m.l1, m.l2, m.coupling);
    for (const auto& port : nl.ports()) c.add_port(port.n1, port.n2);
    return c;
  };
  const Complex fd = finite_difference(nl, s, 0, 1, r0, 1e-6, rebuild);
  EXPECT_NEAR(std::abs(sens.d_resistance[0] - fd), 0.0,
              1e-4 * (std::abs(fd) + 1e-12));
}

TEST(Sensitivity, PortValidation) {
  const Netlist nl = base_circuit();
  EXPECT_THROW(z_sensitivities(nl, Complex(0.0, 1.0), 0, 5), Error);
  EXPECT_THROW(z_sensitivities(nl, Complex(0.0, 1.0), -1, 0), Error);
}

}  // namespace
}  // namespace sympvl
