file(REMOVE_RECURSE
  "CMakeFiles/rom_stamping.dir/rom_stamping.cpp.o"
  "CMakeFiles/rom_stamping.dir/rom_stamping.cpp.o.d"
  "rom_stamping"
  "rom_stamping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rom_stamping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
