// Exact matrix moments of the transfer function about an expansion point.
//
// With G̃ = G + s₀C, the Taylor expansion of Ẑ about σ = s₀ reads
//   Ẑ(s₀+σ') = Σₖ (−σ')ᵏ mₖ,   mₖ = Bᵀ (G̃⁻¹C)ᵏ G̃⁻¹ B,
// computed by k+1 sparse solves per port. SyMPVL's reduced model matches
// mₖ = ρₙᵀΔₙTₙᵏρₙ for all k < q(n) ≥ 2⌊n/p⌋ (Section 3.2) — the property
// the moment-matching tests and the AWE baseline rely on.
#pragma once

#include <vector>

#include "circuit/mna.hpp"
#include "linalg/dense.hpp"

namespace sympvl {

/// First `count` exact moments m₀ … m_{count−1} about s₀ (pencil variable).
std::vector<Mat> exact_moments(const MnaSystem& sys, Index count,
                               double s0 = 0.0);

/// Scalar moments of a single-input single-output system (p = 1 shortcut).
Vec exact_moments_scalar(const MnaSystem& sys, Index count, double s0 = 0.0);

}  // namespace sympvl
