#include "mor/lanczos.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "fault.hpp"
#include "linalg/dense_factor.hpp"
#include "linalg/eig.hpp"
#include "obs/obs.hpp"

namespace sympvl {

namespace {

Vec apply_j(const Vec& j, const Vec& x) {
  Vec y(x);
  for (size_t i = 0; i < y.size(); ++i) y[i] *= j[i];
  return y;
}

}  // namespace

BandLanczos::BandLanczos(const SymmetricOperator& op, const Mat& start,
                         Vec j_signs, const LanczosOptions& options)
    : op_(&op),
      j_signs_(std::move(j_signs)),
      options_(options),
      big_n_(start.rows()),
      p_(start.cols()) {
  require(p_ >= 1, "BandLanczos: empty starting block");
  require(static_cast<Index>(j_signs_.size()) == big_n_,
          "BandLanczos: j_signs size mismatch");
  for (double j : j_signs_)
    require(j == 1.0 || j == -1.0, "BandLanczos: J entries must be ±1");

  t_full_.resize(std::max<Index>(16, 2 * p_), std::max<Index>(16, 2 * p_));
  rho_full_.resize(std::max<Index>(16, 2 * p_), p_);
  clusters_.emplace_back();  // the first (open) cluster

  for (Index i = 0; i < p_; ++i) {
    Candidate c;
    c.v = start.col(i);
    c.src = i - p_;
    c.ref_norm = norm2(c.v);  // deflation is relative to the candidate's
                              // own scale (scale-invariant test)
    cand_.push_back(std::move(c));
  }
  krylov_charge_ = obs::MemCharge(obs::byte_gauge("mem.krylov_bytes"),
                                  krylov_bytes());
  krylov_peak_bytes_ = krylov_charge_.bytes();
}

std::int64_t BandLanczos::krylov_bytes() const {
  auto vec_bytes = [](const Vec& v) {
    return static_cast<std::int64_t>(v.size() * sizeof(double));
  };
  auto mat_bytes = [](const Mat& m) {
    return static_cast<std::int64_t>(m.rows()) *
           static_cast<std::int64_t>(m.cols()) *
           static_cast<std::int64_t>(sizeof(double));
  };
  std::int64_t b = vec_bytes(j_signs_) + mat_bytes(t_full_) +
                   mat_bytes(rho_full_);
  for (const Vec& v : vs_) b += vec_bytes(v);
  for (const Candidate& c : cand_) b += vec_bytes(c.v);
  for (const Cluster& cl : clusters_)
    b += mat_bytes(cl.delta) + mat_bytes(cl.delta_inv);
  return b;
}

void BandLanczos::grow_storage(Index need) {
  if (need < t_full_.rows()) return;
  const Index cap = std::max<Index>(2 * t_full_.rows(), need + 1);
  Mat t_new(cap, cap);
  for (Index i = 0; i < t_full_.rows(); ++i)
    for (Index j = 0; j < t_full_.cols(); ++j) t_new(i, j) = t_full_(i, j);
  t_full_ = std::move(t_new);
  Mat r_new(cap, p_);
  for (Index i = 0; i < rho_full_.rows(); ++i)
    for (Index j = 0; j < p_; ++j) r_new(i, j) = rho_full_(i, j);
  rho_full_ = std::move(r_new);
}

void BandLanczos::write_t(Index row, Index src, double value) {
  grow_storage(std::max(row, src) + 1);
  if (src >= 0)
    t_full_(row, src) += value;
  else
    rho_full_(row, src + p_) += value;
}

// J-orthogonalizes `w` (tagged `src`) against a closed cluster:
// coeff = Δ⁻¹ V^(γ)ᵀ J w;  w -= V^(γ)·coeff;  record into T/ρ column src.
void BandLanczos::orthogonalize_against(Vec& w, Index src, const Cluster& cl) {
  const Index m = static_cast<Index>(cl.members.size());
  Vec proj(static_cast<size_t>(m));
  const Vec jw = apply_j(j_signs_, w);
  for (Index a = 0; a < m; ++a)
    proj[static_cast<size_t>(a)] =
        dot(vs_[static_cast<size_t>(cl.members[static_cast<size_t>(a)])], jw);
  const Vec coeff = cl.delta_inv * proj;
  for (Index a = 0; a < m; ++a) {
    const Index j = cl.members[static_cast<size_t>(a)];
    axpy(-coeff[static_cast<size_t>(a)], vs_[static_cast<size_t>(j)], w);
    write_t(j, src, coeff[static_cast<size_t>(a)]);
  }
}

bool BandLanczos::step() {
  if (diagnosis_.breakdown) return false;  // sticky until a rebuild/reshift
  if (cand_.empty()) return false;

  // ---- Step 1: deflate candidates until one is accepted. ----
  Cluster& open = clusters_.back();
  bool accepted = false;
  Candidate current;
  while (!cand_.empty()) {
    current = std::move(cand_.front());
    cand_.pop_front();
    // 1b: Euclidean orthogonalization against the open cluster members
    // (J-projection is not available while Δ^(γ) is singular).
    for (Index i : open.members) {
      const double tau = dot(vs_[static_cast<size_t>(i)], current.v) /
                         dot(vs_[static_cast<size_t>(i)], vs_[static_cast<size_t>(i)]);
      axpy(-tau, vs_[static_cast<size_t>(i)], current.v);
      write_t(i, current.src, tau);
    }
    const double nrm = norm2(current.v);
    if (current.ref_norm > 0.0 &&
        nrm > options_.deflation_tol * current.ref_norm) {
      accepted = true;
      // 1h: normalize.
      write_t(static_cast<Index>(vs_.size()), current.src, nrm);
      scale(current.v, 1.0 / nrm);
      break;
    }
    // 1c-1g: deflate.
    ++deflations_;
    obs::instant("lanczos.deflation",
                 {obs::arg("norm", nrm), obs::arg("ref_norm", current.ref_norm),
                  obs::arg("deflation_tol", options_.deflation_tol),
                  obs::arg("src", current.src),
                  obs::arg("iteration", static_cast<Index>(vs_.size()))});
    static obs::Counter& c_deflations = obs::counter("lanczos.deflations");
    c_deflations.add();
    if (cand_.empty()) {
      // 1d: the last candidate deflated — Krylov space exhausted, the
      // reduced model is exact.
      exhausted_ = true;
      obs::instant("lanczos.exhausted",
                   {obs::arg("order", static_cast<Index>(vs_.size()))});
      break;
    }
    if (current.src >= 0 && nrm > 0.0)
      inexact_clusters_.insert(vec_cluster_[static_cast<size_t>(current.src)]);
  }
  if (!accepted) return false;

  const Index n_new = static_cast<Index>(vs_.size());
  vs_.push_back(std::move(current.v));
  // 1i: cluster bookkeeping.
  if (open.members.empty())
    obs::instant("lanczos.cluster_open",
                 {obs::arg("cluster", static_cast<Index>(clusters_.size()) - 1),
                  obs::arg("iteration", n_new)});
  if (open.members.empty()) {
    const Index source_idx = std::max<Index>(0, current.src);
    gamma_v_ = vec_cluster_.empty()
                   ? 0
                   : vec_cluster_[static_cast<size_t>(
                         std::min<Index>(source_idx,
                                         static_cast<Index>(vec_cluster_.size()) - 1))];
  }
  open.members.push_back(n_new);
  vec_cluster_.push_back(static_cast<Index>(clusters_.size()) - 1);

  // ---- Step 2: Gram matrix of the open cluster; close if nonsingular. --
  {
    const Index m = static_cast<Index>(open.members.size());
    open.delta.resize(m, m);
    for (Index a = 0; a < m; ++a) {
      const Vec jv =
          apply_j(j_signs_, vs_[static_cast<size_t>(open.members[static_cast<size_t>(a)])]);
      for (Index b = 0; b < m; ++b)
        open.delta(a, b) =
            dot(vs_[static_cast<size_t>(open.members[static_cast<size_t>(b)])], jv);
    }
    // Symmetrize rounding noise.
    for (Index a = 0; a < m; ++a)
      for (Index b = a + 1; b < m; ++b) {
        const double mid = 0.5 * (open.delta(a, b) + open.delta(b, a));
        open.delta(a, b) = mid;
        open.delta(b, a) = mid;
      }
    const SymmetricEig eig = eig_symmetric(open.delta);
    double min_abs = std::abs(eig.values.front());
    double max_abs = min_abs;
    for (double l : eig.values) {
      min_abs = std::min(min_abs, std::abs(l));
      max_abs = std::max(max_abs, std::abs(l));
    }
    // Fault site "lanczos.delta": pretend the δ-pivot test failed at this
    // iteration, forcing the cluster to stay open (breakdown drill).
    if (fault::active() && fault::triggered("lanczos.delta", n_new))
      min_abs = 0.0;
    if (min_abs > options_.lookahead_tol) {
      // 2c: close the cluster and J-orthogonalize every queued candidate
      // against it.
      open.delta_inv = dense_solve(open.delta, Mat::identity(m));
      open.closed = true;
      if (m > 1) ++lookahead_clusters_;
      // δ-pivot conditioning of the cluster Gram matrix: min/max |λ(Δ^(γ))|.
      obs::instant(
          "lanczos.cluster_close",
          {obs::arg("cluster", static_cast<Index>(clusters_.size()) - 1),
           obs::arg("size", m), obs::arg("min_abs_eig", min_abs),
           obs::arg("delta_cond", max_abs > 0.0 ? min_abs / max_abs : 0.0),
           obs::arg("lookahead", static_cast<Index>(m > 1 ? 1 : 0))});
      for (auto& c : cand_) orthogonalize_against(c.v, c.src, open);
      clusters_.emplace_back();  // 2d: start a fresh cluster
    } else {
      // The cluster stays open: a look-ahead step (Δ^(γ) still singular
      // to working precision, the near-breakdown of Algorithm 1).
      obs::instant(
          "lanczos.lookahead_step",
          {obs::arg("cluster", static_cast<Index>(clusters_.size()) - 1),
           obs::arg("size", m), obs::arg("min_abs_eig", min_abs),
           obs::arg("lookahead_tol", options_.lookahead_tol)});
      static obs::Counter& c_lookahead = obs::counter("lanczos.lookahead_steps");
      c_lookahead.add();
      // Serious breakdown guard: Δ^(γ) has stayed singular for an entire
      // cluster of max_cluster_size vectors — stop at the last healthy
      // order with a diagnosis instead of look-ahead-looping forever.
      if (options_.max_cluster_size > 0 && m >= options_.max_cluster_size) {
        diagnosis_.breakdown = true;
        diagnosis_.cluster = static_cast<Index>(clusters_.size()) - 1;
        diagnosis_.cluster_size = m;
        diagnosis_.min_abs_eig = min_abs;
        diagnosis_.tol = options_.lookahead_tol;
        diagnosis_.message =
            "BandLanczos: serious breakdown — look-ahead cluster " +
            std::to_string(diagnosis_.cluster) + " reached size " +
            std::to_string(m) + " with min|lambda(Delta)| = " +
            std::to_string(min_abs) + " <= lookahead_tol = " +
            std::to_string(options_.lookahead_tol) +
            "; truncating at last healthy order " +
            std::to_string(healthy_order()) +
            " (retry with a different expansion point s0, eq. 26)";
        obs::instant("lanczos.breakdown",
                     {obs::arg("cluster", diagnosis_.cluster),
                      obs::arg("cluster_size", m),
                      obs::arg("min_abs_eig", min_abs),
                      obs::arg("healthy_order", healthy_order()),
                      obs::arg("iteration", n_new)});
        return false;
      }
    }
  }

  // ---- Step 3: generate the next candidate from v_n. ----
  if (static_cast<Index>(vs_.size()) + static_cast<Index>(cand_.size()) <=
      big_n_ + p_) {  // cheap guard; candidates beyond N always deflate
    Candidate next;
    next.v = op_->apply(vs_.back());
    next.src = n_new;
    next.ref_norm = norm2(next.v);
    // 3b-3d: J-orthogonalize against closed clusters. With full
    // reorthogonalization all closed clusters are used; otherwise only
    // those demanded by the band structure (k ≥ γ_v) and by inexact
    // deflations (k ∈ I_v, step 3c).
    for (Index k = 0; k + 1 < static_cast<Index>(clusters_.size()); ++k) {
      if (!clusters_[static_cast<size_t>(k)].closed) continue;
      const bool needed = options_.full_reorthogonalization || k >= gamma_v_ ||
                          inexact_clusters_.count(k) > 0;
      if (!needed) continue;
      orthogonalize_against(next.v, next.src, clusters_[static_cast<size_t>(k)]);
    }
    cand_.push_back(std::move(next));
  }
  return true;
}

Index BandLanczos::run_to(Index target) {
  require(target >= 1, "BandLanczos::run_to: target must be >= 1");
  static obs::Counter& c_steps = obs::counter("lanczos.steps");
  while (static_cast<Index>(vs_.size()) < target) {
    const auto t0 = std::chrono::steady_clock::now();
    bool ok;
    {
      obs::ScopedTimer span("lanczos.step");
      span.arg("iteration", static_cast<Index>(vs_.size()));
      ok = step();
    }
    // Always-on step clock (feeds SympvlReport::lanczos_step_stats even
    // when no obs sink is configured) + Krylov byte re-statement.
    step_bins_.record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    krylov_charge_.set(krylov_bytes());
    krylov_peak_bytes_ = std::max(krylov_peak_bytes_, krylov_charge_.bytes());
    if (!ok) break;
    c_steps.add();
  }
  return static_cast<Index>(vs_.size());
}

Index BandLanczos::healthy_order() const {
  Index n = 0;
  for (const auto& cl : clusters_) {
    if (!cl.closed) break;
    n += static_cast<Index>(cl.members.size());
  }
  return n;
}

LanczosResult BandLanczos::result() const {
  // ---- Truncate at the last complete cluster boundary. ----
  Index n_final = 0;
  std::vector<Index> sizes;
  for (const auto& cl : clusters_) {
    if (!cl.closed) break;
    n_final += static_cast<Index>(cl.members.size());
    sizes.push_back(static_cast<Index>(cl.members.size()));
  }
  if (n_final <= 0) {
    ErrorContext ctx;
    ctx.stage = "lanczos";
    ctx.index = diagnosis_.breakdown ? diagnosis_.cluster : Index{0};
    ctx.value = diagnosis_.min_abs_eig;
    throw Error(ErrorCode::kBreakdown,
                diagnosis_.breakdown
                    ? diagnosis_.message
                    : "BandLanczos: no complete cluster produced (look-ahead "
                      "failed to close; increase the order or loosen "
                      "lookahead_tol)",
                std::move(ctx));
  }
  LanczosResult result;
  result.diagnosis = diagnosis_;
  result.n = n_final;
  result.cluster_sizes = std::move(sizes);
  result.deflations = deflations_;
  result.exhausted = exhausted_;
  result.lookahead_clusters = lookahead_clusters_;

  result.t = t_full_.block(0, n_final, 0, n_final);
  result.rho = rho_full_.block(0, n_final, 0, p_);
  result.delta = Mat(n_final, n_final);
  Index offset = 0;
  for (const auto& cl : clusters_) {
    if (!cl.closed) break;
    const Index m = static_cast<Index>(cl.members.size());
    for (Index a = 0; a < m; ++a)
      for (Index b = 0; b < m; ++b)
        result.delta(offset + a, offset + b) = cl.delta(a, b);
    offset += m;
  }

  // p₁: number of Lanczos vectors drawn from the starting block.
  Index p1 = 0;
  for (Index i = 0; i < std::min<Index>(p_, n_final); ++i) {
    bool nonzero = false;
    for (Index j = 0; j < p_; ++j)
      if (result.rho(i, j) != 0.0) nonzero = true;
    if (nonzero) p1 = i + 1;
  }
  result.p1 = p1;
  return result;
}

Mat BandLanczos::basis() const {
  const Index n = healthy_order();
  Mat v(big_n_, n);
  for (Index col = 0; col < n; ++col) {
    const Vec& w = vs_[static_cast<size_t>(col)];
    for (Index i = 0; i < big_n_; ++i) v(i, col) = w[static_cast<size_t>(i)];
  }
  return v;
}

LanczosResult band_lanczos(const SymmetricOperator& op, const Mat& start,
                           const Vec& j_signs, const LanczosOptions& options) {
  require(options.max_order >= 1, "band_lanczos: max_order must be >= 1");
  BandLanczos process(op, start, j_signs, options);
  process.run_to(options.max_order);
  return process.result();
}

}  // namespace sympvl
