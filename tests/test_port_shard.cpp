// Port-sharding parity suite (ctest label "ShardParity"; also the tsan
// target for the parallel shard fan-out): shard-count invariance
// (1 shard delegates bit-identically to the monolithic driver; k shards
// stitch to the same transfer function at exhaustion orders), partition
// determinism, thread-count determinism of the sharded path, and the
// SYMPVL_PORT_SHARDS environment fallback.
//
// Built as its own binary so the env-var tests can setenv without
// leaking into the main suite.
#include "mor/port_shard.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "gen/package.hpp"
#include "gen/peec.hpp"
#include "gen/power_grid.hpp"
#include "mor/driver.hpp"
#include "mor/reduce.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/sweep_api.hpp"

namespace sympvl {
namespace {

double max_rel_err(const CMat& a, const CMat& b) {
  double num = 0.0, den = 0.0;
  for (Index i = 0; i < a.rows(); ++i)
    for (Index j = 0; j < a.cols(); ++j) {
      num = std::max(num, std::abs(a(i, j) - b(i, j)));
      den = std::max(den, std::abs(b(i, j)));
    }
  return num / (den + 1e-300);
}

Vec log_grid(double f0, double f1, Index count) {
  Vec f(static_cast<size_t>(count));
  const double l0 = std::log10(f0), l1 = std::log10(f1);
  for (Index k = 0; k < count; ++k)
    f[static_cast<size_t>(k)] = std::pow(
        10.0, l0 + (l1 - l0) * static_cast<double>(k) /
                       static_cast<double>(std::max<Index>(count - 1, 1)));
  return f;
}

// Small 16-port package (RLC — indefinite J, exercises the MGS-union
// stitch fallback) whose Krylov space a modest order exhausts.
MnaSystem small_package() {
  PackageOptions opt;
  opt.pins = 16;
  opt.segments = 2;
  opt.signal_pins = 8;
  return build_mna(make_package_circuit(opt).netlist, MnaForm::kAuto);
}

TEST(PortShard, ResolveShardCountPrecedence) {
  PortShardOptions opt;
  // Heuristic: small port counts stay monolithic.
  EXPECT_EQ(resolve_shard_count(opt, 8), 1);
  EXPECT_GE(resolve_shard_count(opt, 512), 2);
  // Explicit option wins.
  opt.shards = 3;
  EXPECT_EQ(resolve_shard_count(opt, 512), 3);
  // Clamped to the port count.
  EXPECT_EQ(resolve_shard_count(opt, 2), 2);

  // Environment fallback fills in only when the option is unset.
  ASSERT_EQ(setenv("SYMPVL_PORT_SHARDS", "5", 1), 0);
  EXPECT_EQ(resolve_shard_count(opt, 512), 3);  // explicit still wins
  opt.shards = 0;
  EXPECT_EQ(resolve_shard_count(opt, 512), 5);
  ASSERT_EQ(unsetenv("SYMPVL_PORT_SHARDS"), 0);
  EXPECT_NE(resolve_shard_count(opt, 512), 5);
}

TEST(PortShard, PartitionCoversAllPortsDeterministically) {
  const PowerGridOptions gopt{.ports = 64};
  const MnaSystem sys = build_mna(make_power_grid(gopt).netlist, MnaForm::kAuto);
  for (const ShardClustering strategy :
       {ShardClustering::kElectrical, ShardClustering::kRoundRobin}) {
    const auto a = partition_ports(sys, 4, strategy);
    const auto b = partition_ports(sys, 4, strategy);
    EXPECT_EQ(a, b);  // deterministic
    ASSERT_EQ(static_cast<Index>(a.size()), sys.port_count());
    std::vector<Index> count(4, 0);
    for (Index s : a) {
      ASSERT_GE(s, 0);
      ASSERT_LT(s, 4);
      ++count[static_cast<size_t>(s)];
    }
    for (Index k = 0; k < 4; ++k)
      EXPECT_GT(count[static_cast<size_t>(k)], 0)
          << "empty shard under strategy " << static_cast<int>(strategy);
  }
}

TEST(PortShard, ElectricalPartitionGroupsGridNeighbors) {
  // Ports are laid out on a row-major stride: with 4 shards on a mesh,
  // electrically adjacent ports should mostly share a shard — count
  // adjacent-port pairs split across shards and require locality beats
  // the round-robin worst case (which splits EVERY adjacent pair).
  const PowerGridOptions gopt{.ports = 64};
  const MnaSystem sys = build_mna(make_power_grid(gopt).netlist, MnaForm::kAuto);
  const auto assign = partition_ports(sys, 4, ShardClustering::kElectrical);
  Index split = 0;
  for (Index j = 0; j + 1 < sys.port_count(); ++j)
    if (assign[static_cast<size_t>(j)] != assign[static_cast<size_t>(j) + 1])
      ++split;
  EXPECT_LT(split, sys.port_count() / 2);
}

TEST(PortShard, OneShardDelegatesBitIdenticalToMonolithic) {
  const MnaSystem sys = small_package();
  SympvlOptions opt;
  opt.order = 48;
  opt.shard.shards = 1;
  const ShardedSympvlResult sharded = sharded_sympvl_reduce(sys, opt);
  ASSERT_TRUE(sharded.ok());
  EXPECT_TRUE(sharded.used_monolithic);
  EXPECT_EQ(sharded.shard.shards, 1);
  EXPECT_EQ(sharded.shard.clustering, "monolithic");

  const auto mono = run_sympvl(sys, opt);
  ASSERT_TRUE(mono.ok());
  for (double f : log_grid(1e6, 1e10, 5)) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const CMat za = sharded.eval(s);
    const CMat zb = mono.value().eval(s);
    for (Index i = 0; i < za.rows(); ++i)
      for (Index j = 0; j < za.cols(); ++j)
        EXPECT_EQ(za(i, j), zb(i, j));  // deterministic: bit-identical
  }
}

TEST(PortShard, KShardStitchMatchesMonolithicOnPackage) {
  const MnaSystem sys = small_package();
  SympvlOptions opt;
  // Order past the reachable space: both processes exhaust, both models
  // are exact, so the stitched union must match the monolithic model to
  // stitch-tolerance accuracy.
  opt.order = sys.size();
  const auto mono = run_sympvl(sys, opt);
  ASSERT_TRUE(mono.ok());

  opt.shard.shards = 4;
  const ShardedSympvlResult sharded = sharded_sympvl_reduce(sys, opt);
  ASSERT_TRUE(sharded.ok());
  EXPECT_FALSE(sharded.used_monolithic);
  EXPECT_EQ(sharded.shard.shards, 4);
  EXPECT_EQ(sharded.port_count(), sys.port_count());

  const Vec freqs = log_grid(1e6, 1e10, 9);
  const SweepResult exact = sweep(sys, freqs);
  const SweepResult zm = sweep(mono.value(), freqs);
  const SweepResult zs = sweep(sharded.stitched, freqs);
  for (size_t k = 0; k < freqs.size(); ++k) {
    EXPECT_LT(max_rel_err(zs.values[k], exact.values[k]), 1e-6);
    EXPECT_LT(max_rel_err(zs.values[k], zm.values[k]), 1e-6);
  }
}

TEST(PortShard, KShardStitchMatchesMonolithicOnPeec) {
  PeecOptions popt;
  popt.grid = 5;
  const MnaSystem sys = make_peec_circuit(popt).system;
  SympvlOptions opt;
  opt.order = sys.size();  // exhaustion: both models exact
  const auto mono = run_sympvl(sys, opt);
  ASSERT_TRUE(mono.ok());

  opt.shard.shards = 2;  // one port per shard
  const ShardedSympvlResult sharded = sharded_sympvl_reduce(sys, opt);
  ASSERT_TRUE(sharded.ok());
  EXPECT_FALSE(sharded.used_monolithic);
  EXPECT_EQ(sharded.shard.shard_ports, (std::vector<Index>{1, 1}));

  for (double f : log_grid(1e7, 5e9, 9)) {
    const Complex s(0.0, 2.0 * M_PI * f);
    EXPECT_LT(max_rel_err(sharded.eval(s), mono.value().eval(s)), 1e-6)
        << "f = " << f;
  }
}

TEST(PortShard, StitchedModelAccurateAtPartialOrder) {
  // The realistic regime: order well below exhaustion on a many-port
  // grid. The stitched model must track the exact sweep.
  const PowerGridOptions gopt{.ports = 64};
  const MnaSystem sys = build_mna(make_power_grid(gopt).netlist, MnaForm::kAuto);
  SympvlOptions opt;
  opt.order = 64;
  opt.shard.shards = 4;
  const ShardedSympvlResult sharded = sharded_sympvl_reduce(sys, opt);
  ASSERT_TRUE(sharded.ok());

  const Vec freqs = log_grid(1e6, 1e9, 7);
  const SweepResult exact = sweep(sys, freqs);
  const SweepResult zs = sweep(sharded.stitched, freqs);
  for (size_t k = 0; k < freqs.size(); ++k)
    EXPECT_LT(max_rel_err(zs.values[k], exact.values[k]), 1e-3)
        << "f = " << freqs[k];
}

TEST(PortShard, ShardedRunsAreThreadCountInvariant) {
  const MnaSystem sys = small_package();
  SympvlOptions opt;
  opt.order = 48;
  opt.shard.shards = 4;

  const Index saved = num_threads();
  set_num_threads(1);
  const ShardedSympvlResult serial = sharded_sympvl_reduce(sys, opt);
  set_num_threads(4);
  const ShardedSympvlResult parallel = sharded_sympvl_reduce(sys, opt);
  set_num_threads(saved);

  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial.shard.shard_orders, parallel.shard.shard_orders);
  for (double f : log_grid(1e6, 1e10, 5)) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const CMat za = serial.eval(s);
    const CMat zb = parallel.eval(s);
    for (Index i = 0; i < za.rows(); ++i)
      for (Index j = 0; j < za.cols(); ++j)
        EXPECT_EQ(za(i, j), zb(i, j));  // bit-identical across thread counts
  }
}

TEST(PortShard, EnvShardCountDrivesFacade) {
  const MnaSystem sys = small_package();
  ReduceOptions opt;
  opt.method = ReduceMethod::kShardedSympvl;
  opt.order = 32;
  ASSERT_EQ(setenv("SYMPVL_PORT_SHARDS", "4", 1), 0);
  const ReduceResult res = reduce(sys, opt);
  ASSERT_EQ(unsetenv("SYMPVL_PORT_SHARDS"), 0);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.shard.shards, 4);
  EXPECT_EQ(static_cast<Index>(res.shard.shard_ports.size()), 4);
}

TEST(PortShard, SharedFactorizationServesAllShards) {
  const PowerGridOptions gopt{.ports = 64};
  const MnaSystem sys = build_mna(make_power_grid(gopt).netlist, MnaForm::kAuto);
  SympvlOptions opt;
  opt.order = 64;
  opt.shard.shards = 4;
  const ShardedSympvlResult sharded = sharded_sympvl_reduce(sys, opt);
  ASSERT_TRUE(sharded.ok());
  // Priming may hit or miss depending on cache history, but every shard
  // session must reuse the primed factor: at most one miss in total.
  EXPECT_LE(sharded.shard.factor_cache_misses, 1);
  EXPECT_GE(sharded.shard.factor_cache_hits, 4);
}

}  // namespace
}  // namespace sympvl
