#include "mor/awe.hpp"

#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "mor/sypvl.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

TEST(Awe, ExactOnSinglePole) {
  // Z = R/(1+sRC): AWE order 1 must be exact.
  const double r = 100.0, c = 2e-12;
  Netlist nl;
  nl.add_resistor(1, 0, r);
  nl.add_capacitor(1, 0, c);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  const AweModel awe = awe_reduce(sys, 1);
  for (double f : {1e7, 1e9, 1e10}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const Complex expected = r / (1.0 + s * r * c);
    EXPECT_NEAR(std::abs(awe.eval(s) - expected), 0.0, 1e-9 * std::abs(expected));
  }
}

TEST(Awe, SmallOrderMatchesLanczosPade) {
  // For small n both methods compute the same [n−1/n] Padé approximant.
  const Netlist nl = random_rc({.nodes = 25, .ports = 1, .seed = 2});
  const MnaSystem sys = build_mna(nl);
  const Index n = 4;
  const AweModel awe = awe_reduce(sys, n);
  SympvlOptions opt;
  opt.order = n;
  const ReducedModel rom = sypvl_reduce(sys, opt);
  for (double f : {1e6, 1e8, 5e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const Complex za = awe.eval(s);
    const Complex zb = rom.eval(s)(0, 0);
    EXPECT_NEAR(std::abs(za - zb), 0.0, 1e-6 * std::abs(zb)) << f;
  }
}

TEST(Awe, AccuracyNearExpansionPoint) {
  const Netlist nl = random_rc({.nodes = 40, .ports = 1, .seed = 3});
  const MnaSystem sys = build_mna(nl);
  const AweModel awe = awe_reduce(sys, 5);
  const Complex s(0.0, 2.0 * M_PI * 1e6);  // low frequency = near s = 0
  const Complex exact = ac_z_matrix(sys, s)(0, 0);
  EXPECT_NEAR(std::abs(awe.eval(s) - exact), 0.0, 1e-5 * std::abs(exact));
}

TEST(Awe, InstabilityAtHighOrder) {
  // Section 3.1: explicit moment matching degrades catastrophically as the
  // order grows — the Hankel matrix becomes numerically singular or the
  // model loses all accuracy while the Lanczos route stays clean.
  const Netlist nl = random_rc({.nodes = 120, .ports = 1, .seed = 4});
  const MnaSystem sys = build_mna(nl);
  const Vec freqs = log_frequency_grid(1e6, 1e10, 12);
  const auto exact = ac_sweep(sys, freqs);

  auto model_error = [&](Index order) -> double {
    AweModel awe = awe_reduce(sys, order);
    double err = 0.0;
    for (size_t k = 0; k < freqs.size(); ++k) {
      const Complex s(0.0, 2.0 * M_PI * freqs[k]);
      const Complex ze = exact[k](0, 0);
      err = std::max(err, std::abs(awe.eval(s) - ze) / std::abs(ze));
    }
    return err;
  };

  double high_order_error = 0.0;
  bool failed = false;
  try {
    high_order_error = model_error(24);
  } catch (const Error&) {
    failed = true;  // numerically singular Hankel system — also a failure
  }
  // Either the solve collapses outright or the accuracy is garbage
  // relative to what SyPVL achieves at the same order (tested elsewhere
  // to converge); both demonstrate the instability.
  if (!failed) {
    SympvlOptions opt;
    opt.order = 24;
    const ReducedModel rom = sypvl_reduce(sys, opt);
    double lanczos_err = 0.0;
    for (size_t k = 0; k < freqs.size(); ++k) {
      const Complex s(0.0, 2.0 * M_PI * freqs[k]);
      const Complex ze = exact[k](0, 0);
      lanczos_err =
          std::max(lanczos_err, std::abs(rom.eval(s)(0, 0) - ze) / std::abs(ze));
    }
    EXPECT_GT(high_order_error, 100.0 * lanczos_err);
  }
  SUCCEED();
}

TEST(Awe, HankelConditionGrowsWithOrder) {
  const Netlist nl = random_rc({.nodes = 60, .ports = 1, .seed = 5});
  const MnaSystem sys = build_mna(nl);
  double prev = 0.0;
  for (Index n : {2, 4, 8}) {
    try {
      const AweModel awe = awe_reduce(sys, n);
      EXPECT_GE(awe.hankel_condition(), 0.0);
      prev = awe.hankel_condition();
      (void)prev;
    } catch (const Error&) {
      SUCCEED();  // singular already — the point stands
      return;
    }
  }
}

TEST(Awe, RequiresSinglePort) {
  const Netlist nl = random_rc({.nodes = 10, .ports = 2, .seed = 6});
  EXPECT_THROW(awe_reduce(build_mna(nl), 3), Error);
}

}  // namespace
}  // namespace sympvl
