// Common utilities shared across the SyMPVL library.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>

namespace sympvl {

using Index = std::ptrdiff_t;
using Complex = std::complex<double>;

/// Failure taxonomy carried by every sympvl::Error. Codes are stable
/// identifiers for programmatic dispatch; error_code_name() gives the
/// log/wire spelling. The split mirrors where the reduction pipeline can
/// actually fail: caller mistakes, factorization trouble (zero pivot,
/// outright singularity, condition-estimate rejection), Lanczos breakdown,
/// per-frequency sweep failures, I/O, and deliberately injected faults.
enum class ErrorCode {
  kUnknown = 0,       ///< legacy string-only errors (no taxonomy info)
  kInvalidArgument,   ///< malformed caller input (validation failures)
  kZeroPivot,         ///< unpivoted LDLᵀ hit an exact/relative zero pivot
  kSingular,          ///< matrix or pencil singular after all pivoting options
  kIllConditioned,    ///< condition estimate beyond the acceptance gate
  kBreakdown,         ///< Lanczos recurrence could not continue (δ ≈ 0 /
                      ///< look-ahead cluster failed to close)
  kSweepPointFailed,  ///< one frequency point of a sweep failed
  kIo,                ///< file / serialization failure
  kFaultInjected,     ///< SYMPVL_FAULT / fault::arm forced this failure
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknown: return "unknown";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kZeroPivot: return "zero_pivot";
    case ErrorCode::kSingular: return "singular";
    case ErrorCode::kIllConditioned: return "ill_conditioned";
    case ErrorCode::kBreakdown: return "breakdown";
    case ErrorCode::kSweepPointFailed: return "sweep_point_failed";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kFaultInjected: return "fault_injected";
  }
  return "unknown";
}

/// Context payload attached to structured errors: which pipeline stage
/// failed, which pivot/iteration/frequency-point index, the offending
/// magnitude and the condition estimate when one was available. Every
/// field defaults to "absent" so call sites only fill what they know.
struct ErrorContext {
  std::string stage;      ///< dot-separated site, e.g. "ldlt.factor"
  Index index = -1;       ///< pivot column / Lanczos iteration / sweep point
  double value = 0.0;     ///< offending magnitude (pivot, min |λ(Δ)|, …)
  double condition = 0.0; ///< condition estimate (0 = not measured)
  /// Frequency point (pencil variable) for sweep failures; NaN = absent.
  Complex frequency{std::numeric_limits<double>::quiet_NaN(), 0.0};
  bool has_frequency() const { return !std::isnan(frequency.real()); }
};

/// Error thrown on invalid arguments or numerical failure anywhere in the
/// library. All public entry points validate their inputs and throw this
/// (never assert) so callers can recover. Numerical failures carry an
/// ErrorCode plus an ErrorContext describing the failing stage; the
/// string-only constructor remains for legacy call sites and maps to
/// ErrorCode::kUnknown.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  Error(ErrorCode code, const std::string& what, ErrorContext context = {})
      : std::runtime_error(what), code_(code), context_(std::move(context)) {}

  ErrorCode code() const noexcept { return code_; }
  const ErrorContext& context() const noexcept { return context_; }

  /// One-line structured rendering:
  /// "[zero_pivot @ ldlt.factor #17] message (value=…, cond=…)".
  std::string describe() const {
    std::string out = "[";
    out += error_code_name(code_);
    if (!context_.stage.empty()) out += " @ " + context_.stage;
    if (context_.index >= 0) out += " #" + std::to_string(context_.index);
    out += "] ";
    out += what();
    std::string detail;
    if (context_.value != 0.0)
      detail += "value=" + std::to_string(context_.value);
    if (context_.condition != 0.0)
      detail += (detail.empty() ? "" : ", ") +
                std::string("cond=") + std::to_string(context_.condition);
    if (context_.has_frequency())
      detail += (detail.empty() ? "" : ", ") + std::string("s=(") +
                std::to_string(context_.frequency.real()) + "," +
                std::to_string(context_.frequency.imag()) + ")";
    if (!detail.empty()) out += " (" + detail + ")";
    return out;
  }

 private:
  ErrorCode code_ = ErrorCode::kUnknown;
  ErrorContext context_;
};

/// Throws sympvl::Error with `msg` when `cond` is false (legacy,
/// code = kUnknown).
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw Error(msg);
}

/// Coded variant: throws Error(code, msg, context) when `cond` is false.
inline void require(bool cond, ErrorCode code, const std::string& msg,
                    ErrorContext context = {}) {
  if (!cond) throw Error(code, msg, std::move(context));
}

/// Scalar traits used by templated numerical kernels: the associated real
/// type and a uniform absolute-value.
template <typename T>
struct ScalarTraits {
  using Real = T;
  static Real abs(T x) { return x < T(0) ? -x : x; }
  static T conj(T x) { return x; }
};

template <typename R>
struct ScalarTraits<std::complex<R>> {
  using Real = R;
  static Real abs(const std::complex<R>& x) { return std::abs(x); }
  static std::complex<R> conj(const std::complex<R>& x) { return std::conj(x); }
};

}  // namespace sympvl
