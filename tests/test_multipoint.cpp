#include "mor/multipoint.hpp"

#include <gtest/gtest.h>

#include "gen/rc_interconnect.hpp"
#include "gen/random_circuit.hpp"
#include "linalg/factor_cache.hpp"
#include "mor/rational.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

double rel_err(const CMat& a, const CMat& b) {
  double num = 0.0, den = 0.0;
  for (Index i = 0; i < a.rows(); ++i)
    for (Index j = 0; j < a.cols(); ++j) {
      num = std::max(num, std::abs(a(i, j) - b(i, j)));
      den = std::max(den, std::abs(b(i, j)));
    }
  return num / (den + 1e-300);
}

// Max relative error of `model_sweep` against the exact engine on `grid`.
double sweep_error(const SweepResult& model_sweep, const SweepResult& exact) {
  double worst = 0.0;
  for (size_t k = 0; k < exact.size(); ++k) {
    if (!exact.ok(k) || !model_sweep.ok(k)) continue;
    worst = std::max(worst, rel_err(model_sweep[k], exact[k]));
  }
  return worst;
}

MnaSystem interconnect_system() {
  // Scaled-down Fig. 5 interconnect: wideband behavior on test budget.
  const InterconnectCircuit circ =
      make_interconnect_circuit({.wires = 3, .segments = 30});
  return build_mna(circ.netlist, MnaForm::kAuto);
}

TEST(Multipoint, ExplicitPointsBuildAndStitch) {
  const MnaSystem sys = interconnect_system();
  MultipointOptions opt;
  opt.total_order = 24;
  opt.f_min = 1e5;
  opt.f_max = 2e10;
  opt.s0_points = rational_shifts_for_band(sys, opt.f_min, opt.f_max, 3);
  FactorCache cache(16);
  opt.cache = &cache;
  const MultipointSession mp(sys, opt);
  EXPECT_EQ(mp.point_count(), 3);
  EXPECT_EQ(mp.models().size(), 3u);
  EXPECT_EQ(mp.report().points.size(), 3u);
  // Each session got an even share of the total order (deflation may trim
  // a vector or two, never add).
  for (Index order : mp.report().orders) {
    EXPECT_GE(order, 1);
    EXPECT_LE(order, 8);
  }
  // Low frequencies route to the lowest expansion point, high to the
  // highest (log-σ nearest neighbor).
  EXPECT_EQ(mp.model_index_for(Complex(0.0, 2.0 * M_PI * opt.f_min)), 0);
  EXPECT_EQ(mp.model_index_for(Complex(0.0, 2.0 * M_PI * opt.f_max)), 2);
}

TEST(Multipoint, WidebandBeatsBestSinglePointAtEqualTotalOrder) {
  // A longer line and a wider band than the other tests: the regime where
  // one expansion point genuinely cannot cover the sweep at this order —
  // the premise assertion below guards that the comparison stays
  // meaningful (at a near-exhausted order every model is exact and the
  // criterion degenerates to a tie).
  const InterconnectCircuit circ =
      make_interconnect_circuit({.wires = 3, .segments = 150});
  const MnaSystem sys = build_mna(circ.netlist, MnaForm::kAuto);
  const double f_min = 1e4, f_max = 1e11;
  const Index total_order = 21;
  const Vec grid = log_frequency_grid(f_min, f_max, 31);
  const AcSweepEngine exact(sys);
  const SweepResult ref = exact.sweep(grid);
  ASSERT_TRUE(ref.all_ok());

  // Best single-point model of the same total order, over the candidate
  // expansion points the multipoint session distributes across the band.
  const Vec candidates = rational_shifts_for_band(sys, f_min, f_max, 3);
  double best_single = 1e300;
  for (double s0 : candidates) {
    SympvlOptions sopt;
    sopt.order = total_order;
    sopt.s0 = s0;
    const ReducedModel rom = sympvl_reduce(sys, sopt);
    best_single = std::min(best_single, sweep_error(rom.sweep(grid), ref));
  }
  // Premise: the band is too wide for any single expansion point here.
  ASSERT_GT(best_single, 1e-2);

  MultipointOptions mopt;
  mopt.total_order = total_order;
  mopt.f_min = f_min;
  mopt.f_max = f_max;
  mopt.s0_points = candidates;
  FactorCache cache(16);
  mopt.cache = &cache;
  const MultipointSession mp(sys, mopt);
  // Equal total order: the stitched union basis must not exceed the
  // budget the single-point models were given.
  EXPECT_LE(mp.report().stitched_order, total_order);
  const double multi = sweep_error(mp.sweep(grid), ref);

  // The stitched wideband model must be at least as accurate as the best
  // single expansion point of equal total order (the issue's acceptance
  // criterion), with a small tolerance for ties.
  EXPECT_LE(multi, best_single * 1.05)
      << "multipoint " << multi << " vs best single " << best_single;
}

TEST(Multipoint, AdaptiveModeRefinesTowardTarget) {
  const MnaSystem sys = interconnect_system();
  MultipointOptions opt;
  opt.total_order = 24;
  opt.f_min = 1e5;
  opt.f_max = 2e10;
  opt.max_points = 3;
  opt.target_error = 1e-6;  // strict: forces at least one refinement
  FactorCache cache(16);
  opt.cache = &cache;
  const MultipointSession mp(sys, opt);
  EXPECT_GE(mp.point_count(), 1);
  EXPECT_LE(mp.point_count(), 3);
  EXPECT_GT(mp.report().max_rel_error, 0.0);
  // Either the target was met or the point budget was exhausted /
  // refinement stalled on a duplicate point.
  EXPECT_EQ(mp.report().session_reports.size(),
            static_cast<size_t>(mp.point_count()));
}

TEST(Multipoint, CacheReuseAcrossRefinement) {
  const MnaSystem sys =
      build_mna(random_rc({.nodes = 60, .ports = 2, .seed = 7}));
  MultipointOptions opt;
  opt.total_order = 12;
  opt.f_min = 1e6;
  opt.f_max = 1e10;
  opt.s0_points = rational_shifts_for_band(sys, opt.f_min, opt.f_max, 2);
  // Large enough for both real factorizations plus every complex
  // validation point — nothing gets evicted between the two sessions.
  FactorCache cache(64);
  opt.cache = &cache;

  const MultipointSession first(sys, opt);
  const std::uint64_t cold_factorizations = first.report().factorizations;
  EXPECT_GE(cold_factorizations, 2u);  // one per expansion point

  // A second session over the same system and points is fully warm: zero
  // new real factorizations (validation sweep points are cached too).
  const MultipointSession second(sys, opt);
  EXPECT_EQ(second.report().factorizations, 0u);
  EXPECT_GT(second.report().cache_hits, 0u);

  // And the stitched models agree exactly (cache hits are bit-identical).
  const Vec grid = log_frequency_grid(opt.f_min, opt.f_max, 9);
  const SweepResult a = first.sweep(grid);
  const SweepResult b = second.sweep(grid);
  for (size_t k = 0; k < grid.size(); ++k)
    EXPECT_EQ(rel_err(a[k], b[k]), 0.0);
}

TEST(Multipoint, RejectsInvalidOptions) {
  const MnaSystem sys =
      build_mna(random_rc({.nodes = 20, .ports = 1, .seed = 3}));
  MultipointOptions opt;
  opt.total_order = 0;
  opt.f_min = 1e6;
  opt.f_max = 1e9;
  EXPECT_THROW(MultipointSession(sys, opt), Error);
  opt.total_order = 8;
  opt.f_min = 0.0;
  EXPECT_THROW(MultipointSession(sys, opt), Error);
  opt.f_min = 1e6;
  opt.s0_points = Vec{-1.0};
  EXPECT_THROW(MultipointSession(sys, opt), Error);
}

}  // namespace
}  // namespace sympvl
