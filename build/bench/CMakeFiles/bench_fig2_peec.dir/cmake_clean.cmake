file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_peec.dir/bench_fig2_peec.cpp.o"
  "CMakeFiles/bench_fig2_peec.dir/bench_fig2_peec.cpp.o.d"
  "bench_fig2_peec"
  "bench_fig2_peec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_peec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
