// Unified driver API: run_sympvl / run_sypvl / run_pvl / run_arnoldi all
// return a ReductionResult with a populated status, a uniform report and
// structured diagnostics — and agree exactly with the legacy throwing
// entry points on healthy inputs.
#include "mor/driver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mor/balanced.hpp"
#include "mor/rational.hpp"

namespace sympvl {
namespace {

Netlist two_port_rc() {
  Netlist nl;
  nl.add_resistor(1, 2, 100.0);
  nl.add_resistor(2, 3, 150.0);
  nl.add_resistor(3, 0, 200.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_capacitor(2, 0, 2e-12);
  nl.add_capacitor(3, 0, 1.5e-12);
  nl.add_port(1, 0);
  nl.add_port(3, 0);
  return nl;
}

Netlist one_port_rc() {
  Netlist nl;
  nl.add_resistor(1, 2, 100.0);
  nl.add_resistor(2, 0, 200.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_capacitor(2, 0, 2e-12);
  nl.add_port(1, 0);
  return nl;
}

const Complex kProbe(0.0, 2.0 * M_PI * 1e9);

TEST(Driver, RunSympvlMatchesLegacyAndReportsOk) {
  const MnaSystem sys = build_mna(two_port_rc());
  SympvlOptions opt;
  opt.order = 3;  // system has 3 nodes: the full Krylov space
  const auto res = run_sympvl(sys, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.status, ReductionStatus::kOk);
  EXPECT_EQ(res.report.achieved_order, 3);
  EXPECT_TRUE(res.diagnostics.empty());

  const ReducedModel legacy = sympvl_reduce(sys, opt);
  const CMat za = res.value().eval(kProbe);
  const CMat zb = legacy.eval(kProbe);
  for (Index i = 0; i < za.rows(); ++i)
    for (Index j = 0; j < za.cols(); ++j)
      EXPECT_EQ(za(i, j), zb(i, j));  // deterministic: bit-identical
}

TEST(Driver, RunSympvlNetlistOverloadCapturesAssemblyFailure) {
  Netlist nl;  // no ports at all: assembly must reject it
  nl.add_resistor(1, 0, 100.0);
  SympvlOptions opt;
  opt.order = 2;
  const auto res = run_sympvl(nl, opt);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status, ReductionStatus::kFailed);
  ASSERT_FALSE(res.diagnostics.empty());
  EXPECT_FALSE(res.diagnostics.front().message.empty());
  EXPECT_THROW(res.value(), Error);
}

TEST(Driver, RunSypvlOkOnSinglePort) {
  const MnaSystem sys = build_mna(one_port_rc());
  SympvlOptions opt;
  opt.order = 2;
  const auto res = run_sypvl(sys, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.status, ReductionStatus::kOk);
  EXPECT_EQ(res.report.achieved_order, 2);
  EXPECT_EQ(res.model.order(), 2);

  const auto bad = run_sypvl(build_mna(two_port_rc()), opt);  // p = 2
  EXPECT_EQ(bad.status, ReductionStatus::kFailed);
  ASSERT_FALSE(bad.diagnostics.empty());
  EXPECT_EQ(bad.diagnostics.front().code, ErrorCode::kInvalidArgument);
}

TEST(Driver, RunPvlOkAndStructuredOnBadPort) {
  const MnaSystem sys = build_mna(two_port_rc());
  PvlOptions opt;
  opt.order = 3;
  const auto res = run_pvl(sys, 0, 0, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.status, ReductionStatus::kOk);
  EXPECT_EQ(res.report.achieved_order, res.model.order());
  const PvlModel legacy = pvl_reduce_entry(sys, 0, 0, opt);
  EXPECT_EQ(res.model.eval(kProbe), legacy.eval(kProbe));

  const auto bad = run_pvl(sys, 5, 0, opt);  // port index out of range
  EXPECT_EQ(bad.status, ReductionStatus::kFailed);
  ASSERT_FALSE(bad.diagnostics.empty());
  EXPECT_EQ(bad.diagnostics.front().code, ErrorCode::kInvalidArgument);
}

TEST(Driver, RunArnoldiOkAndMatchesLegacy) {
  const MnaSystem sys = build_mna(two_port_rc());
  ArnoldiOptions opt;
  opt.order = 4;
  const auto res = run_arnoldi(sys, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.status, ReductionStatus::kOk);
  EXPECT_EQ(res.report.achieved_order, res.model.order());

  const ArnoldiModel legacy = arnoldi_reduce(sys, opt);
  const CMat za = res.model.eval(kProbe);
  const CMat zb = legacy.eval(kProbe);
  for (Index i = 0; i < za.rows(); ++i)
    for (Index j = 0; j < za.cols(); ++j)
      EXPECT_EQ(za(i, j), zb(i, j));
}

TEST(Driver, ConsolidatedOptionsShareBaseFields) {
  // All option structs expose the CommonReductionOptions surface; a
  // generic helper can configure any of them.
  const auto configure = [](CommonReductionOptions& opt) {
    opt.order = 7;
    opt.s0 = 2.5;
    opt.auto_shift = false;
    opt.verbosity = 0;
  };
  SympvlOptions so;
  PvlOptions po;
  ArnoldiOptions ao;
  RationalOptions ro;
  BalancedOptions bo;
  LanczosOptions lo;
  for (CommonReductionOptions* opt :
       {static_cast<CommonReductionOptions*>(&so),
        static_cast<CommonReductionOptions*>(&po),
        static_cast<CommonReductionOptions*>(&ao),
        static_cast<CommonReductionOptions*>(&ro),
        static_cast<CommonReductionOptions*>(&bo),
        static_cast<CommonReductionOptions*>(&lo)})
    configure(*opt);
  EXPECT_EQ(so.order, 7);
  EXPECT_EQ(bo.order, 7);
  EXPECT_EQ(po.s0, 2.5);
  EXPECT_FALSE(lo.auto_shift);
  // Driver-specific defaults survive the shared base.
  EXPECT_EQ(ao.deflation_tol, 1e-10);
  EXPECT_EQ(ro.deflation_tol, 1e-10);
  EXPECT_EQ(so.deflation_tol, 1e-8);
  EXPECT_EQ(po.breakdown_tol, 1e-12);
}

TEST(Driver, InvalidOrderIsStructuredFailure) {
  const MnaSystem sys = build_mna(two_port_rc());
  SympvlOptions opt;
  opt.order = 0;
  const auto res = run_sympvl(sys, opt);
  EXPECT_EQ(res.status, ReductionStatus::kFailed);
  ASSERT_FALSE(res.diagnostics.empty());
  EXPECT_EQ(res.diagnostics.front().code, ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace sympvl
