# Empty compiler generated dependencies file for package_reduction.
# This may be replaced when dependencies are built.
