// Shared option surface for every reduction driver (SyMPVL, SyPVL, PVL,
// block Arnoldi, rational Krylov, balanced truncation, and the raw
// Lanczos process): one base struct holding the fields that used to be
// re-declared — and drift — per driver, with each driver adding only its
// genuinely specific knobs on top.
#pragma once

#include "common.hpp"
#include "linalg/kernels.hpp"
#include "linalg/ordering.hpp"

namespace sympvl {

class FactorCache;

/// How the port-sharding layer assigns B's columns to shards.
enum class ShardClustering {
  /// Electrical clustering when the topology supports it, round-robin
  /// otherwise (the default).
  kAuto,
  /// Multi-source BFS on the pattern of G + s₀C seeded at farthest-point
  /// port anchors: ports that are electrically close land in the same
  /// shard, so each shard's Krylov space stays coherent.
  kElectrical,
  /// Column j goes to shard j mod K. Deterministic and topology-free.
  kRoundRobin,
};

/// Port-sharding knobs (see mor/port_shard.hpp). Folded into the common
/// surface — mirroring CacheOptions/KernelOptions — so every driver
/// accepts them uniformly and the facade can dispatch on them.
struct PortShardOptions {
  /// Number of shards. 0 = resolve from the SYMPVL_PORT_SHARDS
  /// environment variable, else the automatic heuristic (1 shard below
  /// 2·min_ports_per_shard ports; ~32 ports per shard beyond).
  Index shards = 0;
  /// Column-to-shard assignment strategy.
  ShardClustering clustering = ShardClustering::kAuto;
  /// Stitch-stage rank tolerance: relative pivot threshold of the union
  /// Gram Cholesky (fast path) and the deflation threshold of the
  /// MGS-union fallback.
  double stitch_tol = 1e-10;
  /// Floor used by the automatic shard-count heuristic.
  Index min_ports_per_shard = 8;
};

/// Options shared by all reduction drivers. Field names are stable API:
/// existing call sites assign `opt.order`, `opt.s0`, … unchanged whether
/// they hold a SympvlOptions, ArnoldiOptions, etc.
struct CommonReductionOptions {
  /// Requested reduced order n (basis vectors / retained directions).
  Index order = 0;
  /// Expansion shift s₀ in the pencil variable (eq. 26). 0 expands about
  /// DC; required nonzero when G is singular (e.g. the LC PEEC circuit).
  double s0 = 0.0;
  /// Shift policy: when G (or G + s₀C) cannot be factored, pick s₀
  /// automatically from the matrix scales and retry (the paper's PEEC
  /// treatment). Drivers that never factor a pencil ignore this.
  bool auto_shift = true;
  /// Relative deflation threshold (paper's dtol, Algorithm 1 step 1c).
  /// Note: Arnoldi/rational default this to 1e-10 in their constructors.
  double deflation_tol = 1e-8;
  /// Look-ahead cluster closure tolerance (Algorithm 1 step 2b); also the
  /// serious-breakdown threshold of the unblocked recurrences.
  double lookahead_tol = 1e-8;
  /// Sparse factorization ordering for the pencil factor.
  Ordering ordering = Ordering::kRCM;
  /// 0 = silent; >0 makes the run_* drivers print a recovery/diagnosis
  /// summary to stderr when anything non-nominal happened.
  int verbosity = 0;
  /// Factorization cache the driver acquires its pencil factors through
  /// (nullptr = the process-global FactorCache).
  FactorCache* factor_cache = nullptr;
  /// Cache behavior for this reduction: enabled=false factors fresh
  /// without touching the cache, capacity>0 resizes it up front.
  /// Environment fallbacks (SYMPVL_FACTOR_CACHE, SYMPVL_FACTOR_CACHE_CAP)
  /// configure the global cache when these stay at their defaults.
  CacheOptions cache;
  /// Numeric LDLᵀ kernel selection (simplicial vs supernodal panels) and
  /// amalgamation slack; kAuto resolves per system size with the
  /// SYMPVL_KERNEL environment variable as fallback.
  KernelOptions kernel;
  /// Port-sharding behavior (only consulted by the sharded SyMPVL path;
  /// shards=0 defers to SYMPVL_PORT_SHARDS, then the heuristic).
  PortShardOptions shard;
};

}  // namespace sympvl
