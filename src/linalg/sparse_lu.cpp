#include "linalg/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fault.hpp"
#include "obs/obs.hpp"

namespace sympvl {

namespace {

// Iterative depth-first search over the column graph of the partially
// built L (Gilbert-Peierls "reach"): children of an original row i are the
// rows of L's column pinv[i] (none while row i is not yet pivotal).
// Emits nodes in topological order into `topo` (filled from the back).
struct Reach {
  const std::vector<Index>& l_colptr;
  const std::vector<Index>& l_rowind;
  const std::vector<Index>& pinv;
  std::vector<char>& visited;
  std::vector<Index>& topo;
  std::vector<Index>& stack_node;
  std::vector<Index>& stack_child;
  Index top;  // topo[top..n-1] holds the result

  void run_from(Index start) {
    if (visited[static_cast<size_t>(start)]) return;
    Index depth = 0;
    stack_node[0] = start;
    stack_child[0] = 0;
    visited[static_cast<size_t>(start)] = 1;
    while (depth >= 0) {
      const Index i = stack_node[static_cast<size_t>(depth)];
      const Index col = pinv[static_cast<size_t>(i)];
      bool descended = false;
      if (col >= 0) {
        Index c = stack_child[static_cast<size_t>(depth)];
        const Index end = l_colptr[static_cast<size_t>(col) + 1];
        for (Index p = l_colptr[static_cast<size_t>(col)] + c; p < end; ++p) {
          ++c;
          const Index child = l_rowind[static_cast<size_t>(p)];
          if (!visited[static_cast<size_t>(child)]) {
            visited[static_cast<size_t>(child)] = 1;
            stack_child[static_cast<size_t>(depth)] = c;
            ++depth;
            stack_node[static_cast<size_t>(depth)] = child;
            stack_child[static_cast<size_t>(depth)] = 0;
            descended = true;
            break;
          }
        }
      }
      if (!descended) {
        topo[static_cast<size_t>(--top)] = i;
        --depth;
      }
    }
  }
};

}  // namespace

template <typename T>
SparseLU<T>::SparseLU(const SparseMatrix<T>& a, Ordering ordering,
                      double pivot_threshold, double zero_pivot_tol) {
  obs::ScopedTimer span("lu.factor");
  require(a.rows() == a.cols(), "SparseLU: matrix not square");
  require(pivot_threshold > 0.0 && pivot_threshold <= 1.0,
          "SparseLU: pivot_threshold must be in (0, 1]");
  n_ = a.rows();
  col_perm_ = make_ordering(a, ordering);

  const auto& acolptr = a.colptr();
  const auto& arowind = a.rowind();
  const auto& avalues = a.values();

  std::vector<Index> pinv(static_cast<size_t>(n_), -1);
  row_perm_.assign(static_cast<size_t>(n_), -1);
  l_colptr_.assign(1, 0);
  u_colptr_.assign(1, 0);

  std::vector<T> x(static_cast<size_t>(n_), T(0));
  std::vector<char> visited(static_cast<size_t>(n_), 0);
  std::vector<Index> topo(static_cast<size_t>(n_), 0);
  std::vector<Index> stack_node(static_cast<size_t>(n_), 0);
  std::vector<Index> stack_child(static_cast<size_t>(n_), 0);

  double piv_min = std::numeric_limits<double>::infinity();
  double piv_max = 0.0;
  double amax = 0.0;
  for (const auto& v : avalues) amax = std::max(amax, ScalarTraits<T>::abs(v));
  const double pivot_floor = zero_pivot_tol * amax;
  double flops = 0.0;

  for (Index k = 0; k < n_; ++k) {
    const Index col = col_perm_[static_cast<size_t>(k)];

    // ---- Symbolic: reach of A(:, col) through the current L. ----
    Reach reach{l_colptr_, l_rowind_, pinv, visited, topo,
                stack_node, stack_child, n_};
    for (Index p = acolptr[static_cast<size_t>(col)];
         p < acolptr[static_cast<size_t>(col) + 1]; ++p)
      reach.run_from(arowind[static_cast<size_t>(p)]);
    const Index top = reach.top;

    // ---- Numeric: x = L \ A(:, col) on the reached pattern. ----
    for (Index p = acolptr[static_cast<size_t>(col)];
         p < acolptr[static_cast<size_t>(col) + 1]; ++p)
      x[static_cast<size_t>(arowind[static_cast<size_t>(p)])] =
          avalues[static_cast<size_t>(p)];
    for (Index t = top; t < n_; ++t) {
      const Index i = topo[static_cast<size_t>(t)];
      const Index ci = pinv[static_cast<size_t>(i)];
      if (ci < 0) continue;
      const T xi = x[static_cast<size_t>(i)];
      if (xi == T(0)) continue;
      for (Index p = l_colptr_[static_cast<size_t>(ci)];
           p < l_colptr_[static_cast<size_t>(ci) + 1]; ++p)
        x[static_cast<size_t>(l_rowind_[static_cast<size_t>(p)])] -=
            l_values_[static_cast<size_t>(p)] * xi;
      flops += 2.0 * static_cast<double>(l_colptr_[static_cast<size_t>(ci) + 1] -
                                         l_colptr_[static_cast<size_t>(ci)]);
    }

    // ---- Pivot selection among not-yet-pivotal rows. ----
    double best = 0.0;
    Index piv = -1;
    for (Index t = top; t < n_; ++t) {
      const Index i = topo[static_cast<size_t>(t)];
      if (pinv[static_cast<size_t>(i)] >= 0) continue;
      const double mag = ScalarTraits<T>::abs(x[static_cast<size_t>(i)]);
      if (mag > best) {
        best = mag;
        piv = i;
      }
    }
    fault::check("lu.pivot", col);
    if (!(piv >= 0 && best > 0.0 && best > pivot_floor))
      throw Error(
          ErrorCode::kSingular,
          "SparseLU: matrix is structurally or numerically singular",
          ErrorContext{.stage = "lu.factor", .index = col, .value = best});
    // Threshold pivoting: prefer the natural diagonal if acceptable.
    if (pivot_threshold < 1.0 && pinv[static_cast<size_t>(col)] < 0) {
      const double diag_mag = ScalarTraits<T>::abs(x[static_cast<size_t>(col)]);
      if (diag_mag >= pivot_threshold * best) piv = col;
    }
    const T pivot = x[static_cast<size_t>(piv)];
    pinv[static_cast<size_t>(piv)] = k;
    row_perm_[static_cast<size_t>(k)] = piv;
    const double pmag = ScalarTraits<T>::abs(pivot);
    piv_min = std::min(piv_min, pmag);
    piv_max = std::max(piv_max, pmag);

    // ---- Split the solved column into U (pivotal rows) and L. ----
    for (Index t = top; t < n_; ++t) {
      const Index i = topo[static_cast<size_t>(t)];
      const T xi = x[static_cast<size_t>(i)];
      const Index ci = pinv[static_cast<size_t>(i)];
      if (i != piv && ci >= 0 && ci < k) {
        if (xi != T(0)) {
          u_rowind_.push_back(ci);
          u_values_.push_back(xi);
        }
      } else if (i != piv) {
        if (xi != T(0)) {
          l_rowind_.push_back(i);  // original row index
          l_values_.push_back(xi / pivot);
        }
      }
      x[static_cast<size_t>(i)] = T(0);
      visited[static_cast<size_t>(i)] = 0;
    }
    // Diagonal of U stored last in its column.
    u_rowind_.push_back(k);
    u_values_.push_back(pivot);
    // One division per new L entry of this column.
    flops += static_cast<double>(static_cast<Index>(l_rowind_.size()) -
                                 l_colptr_.back());
    l_colptr_.push_back(static_cast<Index>(l_rowind_.size()));
    u_colptr_.push_back(static_cast<Index>(u_rowind_.size()));
  }
  pivot_ratio_ = (piv_max > 0.0) ? piv_min / piv_max : 0.0;
  flops_ = flops;
  fill_ratio_ = static_cast<double>(l_nnz() + u_nnz()) /
                std::max(1.0, static_cast<double>(a.nnz()));
  mem_charge_ = obs::MemCharge(obs::byte_gauge("mem.factor_bytes"),
                               factor_bytes());
  span.arg("n", n_);
  span.arg("nnz_a", a.nnz());
  span.arg("nnz_l", l_nnz());
  span.arg("nnz_u", u_nnz());
  span.arg("fill_ratio", fill_ratio_);
  span.arg("flops", flops_);
  span.arg("pivot_ratio", pivot_ratio_);
  span.arg("ordering", ordering_name(ordering));
}

template <typename T>
std::vector<T> SparseLU<T>::solve(const std::vector<T>& b) const {
  require(static_cast<Index>(b.size()) == n_, "SparseLU::solve: size mismatch");
  // Forward: L y = b in pivot order, working in original row space.
  std::vector<T> work(b);
  for (Index k = 0; k < n_; ++k) {
    const Index i = row_perm_[static_cast<size_t>(k)];
    const T yi = work[static_cast<size_t>(i)];
    if (yi == T(0)) continue;
    for (Index p = l_colptr_[static_cast<size_t>(k)];
         p < l_colptr_[static_cast<size_t>(k) + 1]; ++p)
      work[static_cast<size_t>(l_rowind_[static_cast<size_t>(p)])] -=
          l_values_[static_cast<size_t>(p)] * yi;
  }
  // Gather into pivot order and back-substitute with U.
  std::vector<T> y(static_cast<size_t>(n_));
  for (Index k = 0; k < n_; ++k)
    y[static_cast<size_t>(k)] = work[static_cast<size_t>(row_perm_[static_cast<size_t>(k)])];
  for (Index k = n_ - 1; k >= 0; --k) {
    const Index diag = u_colptr_[static_cast<size_t>(k) + 1] - 1;
    y[static_cast<size_t>(k)] /= u_values_[static_cast<size_t>(diag)];
    const T yk = y[static_cast<size_t>(k)];
    if (yk == T(0)) continue;
    for (Index p = u_colptr_[static_cast<size_t>(k)]; p < diag; ++p)
      y[static_cast<size_t>(u_rowind_[static_cast<size_t>(p)])] -=
          u_values_[static_cast<size_t>(p)] * yk;
  }
  // Undo the column permutation.
  std::vector<T> out(static_cast<size_t>(n_));
  for (Index k = 0; k < n_; ++k)
    out[static_cast<size_t>(col_perm_[static_cast<size_t>(k)])] = y[static_cast<size_t>(k)];
  return out;
}

template class SparseLU<double>;
template class SparseLU<Complex>;

}  // namespace sympvl
