// Factorization fallback chain: the robustness layer every solve-based
// pipeline stage goes through instead of committing to a single
// factorization algorithm.
//
// Chain (each rung attempted only when the previous one failed or was
// rejected by the acceptance gates):
//   1. unpivoted sparse LDLᵀ — the fast path for quasi-definite MNA
//      pencils (optionally reusing a shared LdltSymbolic for AC sweeps);
//   2. sparse LU with partial pivoting — survives the exact zero pivots
//      unpivoted elimination hits on e.g. series R-L chains;
//   3. shifted retries — re-assemble G + s₀'C at jittered expansion
//      points (the paper's eq. 26 treatment of singular G) and walk rungs
//      1-2 again. Only available when the chain owns the (G, C) pair.
//
// Acceptance gates, applied to every rung that factors successfully:
//   * condition estimate — when the LDLᵀ pivot ratio looks suspicious the
//     1-norm condition number is estimated (Hager's method; symmetric
//     matrices only need A-solves) and the rung is rejected above
//     `max_condition`;
//   * residual probe — one solve against A·1 with iterative refinement;
//     the rung is rejected when the refined residual stays above
//     `probe_tol`.
//
// Every attempt (success or failure, with its shift, condition estimate
// and failure reason) is recorded so drivers can surface the recovery
// path in their diagnostics, and emitted as obs instants
// ("factor_chain.attempt") so recovery decisions show up in traces.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "linalg/dense.hpp"
#include "linalg/sparse.hpp"
#include "linalg/sparse_ldlt.hpp"
#include "linalg/sparse_lu.hpp"

namespace sympvl {

/// One rung of the chain, as attempted: which method, at which shift,
/// whether it was accepted, and why not when it wasn't.
struct FactorAttemptRecord {
  std::string method;      ///< "ldlt", "lu", "dense_bk", …
  double shift = 0.0;      ///< s₀ the pencil was assembled at
  bool success = false;    ///< accepted as the active factorization
  double condest = 0.0;    ///< 1-norm condition estimate (0 = not measured)
  ErrorCode code = ErrorCode::kUnknown;  ///< failure taxonomy when !success
  std::string detail;      ///< failure message / rejection reason
};

struct FactorChainOptions {
  Ordering ordering = Ordering::kRCM;
  /// Relative zero-pivot threshold handed to the LDLᵀ rung (0 accepts any
  /// nonzero pivot — the right setting for per-frequency AC pencils).
  double zero_pivot_tol = 1e-12;
  /// LDLᵀ pivot-ratio floor below which the condition estimate runs; the
  /// estimate itself costs a handful of extra solves, so it is only
  /// computed when the cheap indicator is suspicious. 0 disables.
  double min_pivot_ratio = 1e-13;
  /// Condition-estimate acceptance gate; a rung whose estimated 1-norm
  /// condition number exceeds this is rejected. 0 disables the gate.
  double max_condition = 1e14;
  /// Residual probe: solve A·x = A·1 once, iteratively refine up to
  /// `probe_refine_iters` times, reject the rung when the relative
  /// residual stays above `probe_tol`. 0 iterations disables the probe.
  double probe_tol = 1e-6;
  Index probe_refine_iters = 2;
  /// Whether the pivoted sparse LU rung is available.
  bool allow_lu = true;
  /// Iterative-refinement steps applied inside solve() (0 = raw solves;
  /// the per-point AC hot path sets 0 and relies on the probe instead).
  Index solve_refine_iters = 0;
  /// Relative residual target for solve() refinement.
  double refine_tol = 1e-9;
  /// Numeric-kernel selection handed to the LDLᵀ rung (the LU rung is
  /// simplicial-only and ignores it).
  KernelOptions kernels;
};

/// Jittered shift ladder for rung 3 (eq. 26 retries): deterministic
/// multiples of `base` spread over ~3 decades so a retry lands away from
/// whatever made the previous shift singular.
std::vector<double> shift_ladder(double base, Index count);

/// Exact 1-norm of a sparse matrix (max column sum).
template <typename T>
double sparse_onenorm(const SparseMatrix<T>& a);

/// Hager-style estimate of ‖A⁻¹‖₁ using only solves with A. Exact
/// transposes are required, so this is valid for (complex-)symmetric A —
/// which every SyMPVL pencil is. `solve` maps b ↦ A⁻¹b.
template <typename T>
double inverse_onenorm_estimate(
    Index n, const std::function<std::vector<T>(const std::vector<T>&)>& solve,
    Index max_iter = 5);

template <typename T>
class FactorChain {
 public:
  /// Owns the (G, C) pencil: factors A = G + shift·C, walking
  /// LDLᵀ → LU at `shift`, then the same rungs at each entry of
  /// `retry_shifts` (pass shift_ladder(...) to enable eq. 26 retries;
  /// empty disables rung 3). Throws Error(kSingular) with the full
  /// attempt history in the message when every rung fails.
  FactorChain(const SparseMatrix<T>& g, const SparseMatrix<T>& c, T shift,
              const std::vector<T>& retry_shifts,
              const FactorChainOptions& options = {});

  /// Single assembled matrix (no shift retries).
  explicit FactorChain(const SparseMatrix<T>& a,
                       const FactorChainOptions& options = {});

  /// Assembled matrix with a shared symbolic analysis for the LDLᵀ rung
  /// (the repeated-factorization AC-sweep path).
  FactorChain(const SparseMatrix<T>& a,
              std::shared_ptr<const LdltSymbolic> symbolic,
              const FactorChainOptions& options = {});

  Index size() const { return a_.rows(); }

  /// Solves A x = b through the accepted rung, with
  /// `solve_refine_iters` steps of iterative refinement when configured.
  std::vector<T> solve(const std::vector<T>& b) const;

  /// Blocked multi-RHS solve (one factor pass for all columns on the
  /// LDLᵀ rung; column-by-column on LU). Refinement is applied per
  /// column, only to columns whose residual exceeds the target.
  Matrix<T> solve(const Matrix<T>& b) const;

  /// The shift the accepted pencil was assembled at.
  T shift_used() const { return shift_used_; }

  /// "ldlt" or "lu".
  const char* method() const { return ldlt_ ? "ldlt" : "lu"; }

  /// True when the accepted rung is anything but first-try LDLᵀ.
  bool used_fallback() const { return attempts_.size() > 1; }

  /// Condition estimate of the accepted rung (0 = not measured).
  double condest() const { return condest_; }

  /// Full attempt history, in order.
  const std::vector<FactorAttemptRecord>& attempts() const {
    return attempts_;
  }

  /// Access to the accepted LDLᵀ factor (nullptr when LU won), for
  /// telemetry (fill ratio, flops, pivot ratio).
  const SparseLDLT<T>* ldlt() const { return ldlt_ ? &*ldlt_ : nullptr; }
  const SparseLU<T>* lu() const { return lu_ ? &*lu_ : nullptr; }

  /// Resident bytes of the chain: the retained pencil matrix plus the
  /// accepted factor's storage — what one FactorCache entry costs.
  std::int64_t bytes() const {
    std::int64_t b = static_cast<std::int64_t>(
        a_.nnz() * static_cast<Index>(sizeof(T) + sizeof(Index)) +
        (a_.cols() + 1) * static_cast<Index>(sizeof(Index)));
    if (ldlt_) b += ldlt_->factor_bytes();
    if (lu_) b += lu_->factor_bytes();
    return b;
  }

 private:
  void run_chain(const SparseMatrix<T>* g, const SparseMatrix<T>* c, T shift,
                 const std::vector<T>& retry_shifts,
                 std::shared_ptr<const LdltSymbolic> symbolic);
  bool try_rung(const SparseMatrix<T>& a, T shift, bool use_ldlt,
                const std::shared_ptr<const LdltSymbolic>& symbolic);
  bool accept_rung(const SparseMatrix<T>& a, FactorAttemptRecord& rec);
  std::vector<T> raw_solve(const std::vector<T>& b) const;

  SparseMatrix<T> a_;  // the pencil actually factored (kept for residuals)
  std::optional<SparseLDLT<T>> ldlt_;
  std::optional<SparseLU<T>> lu_;
  T shift_used_{};
  double condest_ = 0.0;
  double a_norm1_ = 0.0;
  std::vector<FactorAttemptRecord> attempts_;
  FactorChainOptions options_;
};

using FactorChainD = FactorChain<double>;
using FactorChainZ = FactorChain<Complex>;

extern template class FactorChain<double>;
extern template class FactorChain<Complex>;

extern template double sparse_onenorm<double>(const SparseMatrix<double>&);
extern template double sparse_onenorm<Complex>(const SparseMatrix<Complex>&);
extern template double inverse_onenorm_estimate<double>(
    Index, const std::function<std::vector<double>(const std::vector<double>&)>&,
    Index);
extern template double inverse_onenorm_estimate<Complex>(
    Index,
    const std::function<std::vector<Complex>(const std::vector<Complex>&)>&,
    Index);

}  // namespace sympvl
