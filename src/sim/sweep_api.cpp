#include "sim/sweep_api.hpp"

#include <cmath>
#include <utility>

namespace sympvl {

namespace {

// Applies the all-or-nothing contract when requested: the error carries
// the first failed point, exactly like SweepResult::values_or_throw.
SweepResult finish(SweepResult res, const SweepOptions& options) {
  if (options.throw_on_failure && !res.all_ok()) {
    const SweepPointError& first = res.errors.front();
    ErrorContext ctx;
    ctx.stage = "sweep";
    ctx.index = first.index;
    ctx.frequency = Complex(first.frequency_hz, 0.0);
    throw Error(ErrorCode::kSweepPointFailed,
                std::to_string(res.errors.size()) + " of " +
                    std::to_string(res.values.size()) +
                    " sweep points failed; first: " + first.message,
                std::move(ctx));
  }
  return res;
}

}  // namespace

SweepResult sweep(const AcSweepEngine& engine, const Vec& frequencies_hz,
                  const SweepOptions& options) {
  return finish(engine.sweep(frequencies_hz), options);
}

SweepResult sweep(const ReducedModel& model, const Vec& frequencies_hz,
                  const SweepOptions& options) {
  return finish(model.sweep(frequencies_hz), options);
}

SweepResult sweep(const ModalModel& model, const Vec& frequencies_hz,
                  const SweepOptions& options) {
  const Index p = model.port_count();
  SweepResult res =
      detail::run_contained_sweep(frequencies_hz, p, p, [&](Index k) {
        const double f = frequencies_hz[static_cast<size_t>(k)];
        return model.eval(Complex(0.0, 2.0 * M_PI * f));
      });
  return finish(std::move(res), options);
}

SweepResult sweep(const MnaSystem& sys, const Vec& frequencies_hz,
                  const SweepOptions& options) {
  const AcSweepEngine engine(sys, options.factor_cache);
  return finish(engine.sweep(frequencies_hz), options);
}

SweepResult sweep(const ArnoldiModel& model, const Vec& frequencies_hz,
                  const SweepOptions& options) {
  const Index p = model.port_count();
  SweepResult res =
      detail::run_contained_sweep(frequencies_hz, p, p, [&](Index k) {
        const double f = frequencies_hz[static_cast<size_t>(k)];
        return model.eval(Complex(0.0, 2.0 * M_PI * f));
      });
  return finish(std::move(res), options);
}

SweepResult sweep(const MacroModel& model, const Vec& frequencies_hz,
                  const SweepOptions& options) {
  require(!model.empty(), ErrorCode::kInvalidArgument,
          "sweep: empty MacroModel", ErrorContext{.stage = "sweep"});
  // Dispatch to the typed overloads so each model keeps its native sweep
  // path (ReducedModel's containment harness included).
  if (const ReducedModel* m = model.as_reduced())
    return sweep(*m, frequencies_hz, options);
  if (const ArnoldiModel* m = model.as_arnoldi())
    return sweep(*m, frequencies_hz, options);
  const PvlModel* m = model.as_pvl();
  SweepResult res =
      detail::run_contained_sweep(frequencies_hz, 1, 1, [&](Index k) {
        const double f = frequencies_hz[static_cast<size_t>(k)];
        CMat z(1, 1);
        z(0, 0) = m->eval(Complex(0.0, 2.0 * M_PI * f));
        return z;
      });
  return finish(std::move(res), options);
}

}  // namespace sympvl
