// Kernel-layer benchmark: simplicial vs supernodal numeric LDLᵀ on the
// paper's example meshes, numeric-only (one shared symbolic analysis per
// mesh, timed refactorizations on top — the shape every driver and the
// AC hot path actually run), plus the blocked p-port multi-RHS solve
// both Lanczos starting blocks and sweeps ride.
//
// Results go to stdout as CSV and to BENCH_kernels.json (with run
// metadata) — the file tools/check_perf.py gates CI perf-smoke against
// bench/baselines/BENCH_kernels.json.
#include <algorithm>
#include <chrono>

#include "bench_util.hpp"
#include "gen/package.hpp"
#include "gen/rc_interconnect.hpp"
#include "linalg/factorized_pencil.hpp"
#include "linalg/sparse_ldlt.hpp"
#include "mor/pencil.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

double timed(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Median of `reps` timings of fn (each timing one call).
double median_time(int reps, const std::function<void()>& fn) {
  std::vector<double> t(static_cast<size_t>(reps));
  for (double& v : t) v = timed(fn);
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

KernelOptions path_opt(KernelPath path) {
  KernelOptions k;
  k.path = path;
  return k;
}

struct MeshCase {
  const char* name;
  MnaSystem sys;
};

struct KernelNumbers {
  double n = 0, ports = 0, nnz_l = 0;
  double supernodes = 0, max_panel = 0, panel_zeros = 0;
  double t_simplicial = 0, t_supernodal = 0, speedup = 0;
  double t_solve_simplicial = 0, t_solve_supernodal = 0, solve_speedup = 0;
};

KernelNumbers measure(const MnaSystem& sys, int reps) {
  KernelNumbers out;
  const double s0 = automatic_shift(sys);
  const SMat a = assemble_pencil(sys.G, sys.C, s0);
  const auto symbolic = std::make_shared<const LdltSymbolic>(a, Ordering::kRCM);

  out.n = static_cast<double>(sys.size());
  out.ports = static_cast<double>(sys.port_count());
  out.nnz_l = static_cast<double>(symbolic->l_nnz());

  // Numeric-only refactorization times on the shared symbolic.
  out.t_simplicial = median_time(reps, [&] {
    const LDLT f(a, symbolic, 1e-12, path_opt(KernelPath::kSimplicial));
    benchmark::DoNotOptimize(f.d().data());
  });
  out.t_supernodal = median_time(reps, [&] {
    const LDLT f(a, symbolic, 1e-12, path_opt(KernelPath::kSupernodal));
    benchmark::DoNotOptimize(f.d().data());
  });
  out.speedup = out.t_simplicial / out.t_supernodal;

  // Blocked p-port multi-RHS solve (the starting-block shape).
  const LDLT fs(a, symbolic, 1e-12, path_opt(KernelPath::kSimplicial));
  const LDLT fp(a, symbolic, 1e-12, path_opt(KernelPath::kSupernodal));
  out.supernodes = static_cast<double>(fp.supernode_count());
  out.max_panel = static_cast<double>(fp.max_panel_width());
  out.panel_zeros = static_cast<double>(fp.panel_zeros());
  Mat b(sys.size(), sys.port_count());
  for (Index j = 0; j < sys.port_count(); ++j) b.set_col(j, sys.B.col(j));
  out.t_solve_simplicial = median_time(reps, [&] {
    const Mat x = fs.solve(b);
    benchmark::DoNotOptimize(x(0, 0));
  });
  out.t_solve_supernodal = median_time(reps, [&] {
    const Mat x = fp.solve(b);
    benchmark::DoNotOptimize(x(0, 0));
  });
  out.solve_speedup = out.t_solve_simplicial / out.t_solve_supernodal;
  return out;
}

// RHS-width sweep on one mesh: blocked simplicial vs supernodal solve at
// p ∈ {1, 4, 16, 64}, documenting the crossover the resolve_kernel_path
// p-heuristic (rhs_width·4 > n → simplicial) encodes. Emitted keys:
// solve_p{P}_{path}_s.
struct RhsSweepPoint {
  double p = 0, t_simplicial = 0, t_supernodal = 0, speedup = 0;
};

std::vector<RhsSweepPoint> rhs_width_sweep(const MnaSystem& sys, int reps) {
  const double s0 = automatic_shift(sys);
  const SMat a = assemble_pencil(sys.G, sys.C, s0);
  const auto symbolic = std::make_shared<const LdltSymbolic>(a, Ordering::kRCM);
  const LDLT fs(a, symbolic, 1e-12, path_opt(KernelPath::kSimplicial));
  const LDLT fp(a, symbolic, 1e-12, path_opt(KernelPath::kSupernodal));
  std::vector<RhsSweepPoint> points;
  for (const Index p : {Index(1), Index(4), Index(16), Index(64)}) {
    RhsSweepPoint pt;
    pt.p = static_cast<double>(p);
    Mat b(sys.size(), p);
    for (Index j = 0; j < p; ++j)
      b.set_col(j, sys.B.col(j % sys.port_count()));
    pt.t_simplicial = median_time(reps, [&] {
      const Mat x = fs.solve(b);
      benchmark::DoNotOptimize(x(0, 0));
    });
    pt.t_supernodal = median_time(reps, [&] {
      const Mat x = fp.solve(b);
      benchmark::DoNotOptimize(x(0, 0));
    });
    pt.speedup = pt.t_simplicial / pt.t_supernodal;
    points.push_back(pt);
  }
  return points;
}

void print_tables() {
  std::vector<MeshCase> meshes;
  meshes.push_back({"package_16x5", build_mna(make_package_circuit(
                                                  {.pins = 16, .segments = 5})
                                                  .netlist,
                                              MnaForm::kGeneral)});
  meshes.push_back({"package_64x16",  // the 3136-unknown package mesh
                    build_mna(make_package_circuit({.pins = 64, .segments = 16})
                                  .netlist,
                              MnaForm::kGeneral)});
  meshes.push_back(
      {"interconnect_8x200",
       build_mna(make_interconnect_circuit({.wires = 8, .segments = 200})
                     .netlist,
                 MnaForm::kRC)});

  csv_begin("numeric LDLT refactorization: simplicial vs supernodal "
            "(shared symbolic, median of 5)",
            {"n", "ports", "nnz_l", "supernodes", "max_panel", "panel_zeros",
             "t_simplicial_s", "t_supernodal_s", "speedup", "t_solve_simp_s",
             "t_solve_super_s", "solve_speedup"});
  KernelNumbers package{};
  for (const MeshCase& mesh : meshes) {
    const KernelNumbers k = measure(mesh.sys, 5);
    if (std::string(mesh.name) == "package_64x16") package = k;
    csv_row({k.n, k.ports, k.nnz_l, k.supernodes, k.max_panel, k.panel_zeros,
             k.t_simplicial, k.t_supernodal, k.speedup, k.t_solve_simplicial,
             k.t_solve_supernodal, k.solve_speedup});
  }

  // RHS-width sweep on the big package mesh (crossover documentation for
  // the resolve_kernel_path p-heuristic).
  const std::vector<RhsSweepPoint> sweep =
      rhs_width_sweep(meshes[1].sys, 5);
  csv_begin("blocked multi-RHS solve: simplicial vs supernodal by RHS "
            "width (package_64x16, median of 5)",
            {"p", "t_solve_simp_s", "t_solve_super_s", "solve_speedup"});
  for (const RhsSweepPoint& pt : sweep)
    csv_row({pt.p, pt.t_simplicial, pt.t_supernodal, pt.speedup});

  std::vector<std::pair<std::string, double>> kv = {
      {"package_n", package.n},
      {"package_ports", package.ports},
      {"package_nnz_l", package.nnz_l},
      {"package_supernodes", package.supernodes},
      {"package_max_panel", package.max_panel},
      {"package_panel_zeros", package.panel_zeros},
      {"package_factor_simplicial_s", package.t_simplicial},
      {"package_factor_supernodal_s", package.t_supernodal},
      {"package_factor_speedup", package.speedup},
      {"package_solve_simplicial_s", package.t_solve_simplicial},
      {"package_solve_supernodal_s", package.t_solve_supernodal},
      {"package_solve_speedup", package.solve_speedup}};
  for (const RhsSweepPoint& pt : sweep) {
    const std::string tag = "package_solve_p" +
                            std::to_string(static_cast<int>(pt.p));
    kv.emplace_back(tag + "_simplicial_s", pt.t_simplicial);
    kv.emplace_back(tag + "_supernodal_s", pt.t_supernodal);
    kv.emplace_back(tag + "_speedup", pt.speedup);
  }
  json_emit("BENCH_kernels.json", kv);
  std::printf("\nwrote BENCH_kernels.json (package factor speedup %.2fx, "
              "p=16 solve speedup %.2fx)\n",
              package.speedup, package.solve_speedup);
}

void bm_factor(benchmark::State& state, KernelPath path) {
  const MnaSystem sys =
      build_mna(make_package_circuit({.pins = 64, .segments = 16}).netlist,
                MnaForm::kGeneral);
  const SMat a = assemble_pencil(sys.G, sys.C, automatic_shift(sys));
  const auto symbolic = std::make_shared<const LdltSymbolic>(a, Ordering::kRCM);
  for (auto _ : state) {
    const LDLT f(a, symbolic, 1e-12, path_opt(path));
    benchmark::DoNotOptimize(f.d().data());
  }
}
void bm_factor_simplicial(benchmark::State& state) {
  bm_factor(state, KernelPath::kSimplicial);
}
void bm_factor_supernodal(benchmark::State& state) {
  bm_factor(state, KernelPath::kSupernodal);
}
BENCHMARK(bm_factor_simplicial)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_factor_supernodal)->Unit(benchmark::kMillisecond);

}  // namespace

SYMPVL_BENCH_MAIN(print_tables)
