#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <unordered_map>

#include "obs/obs.hpp"

namespace sympvl::obs {

namespace {

// Relaxed CAS-min/max on atomic<double>. Lock-free on every target we
// build for; the loop terminates because each retry observes a strictly
// better current value.
void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

struct HistRegistry {
  std::mutex mutex;
  // std::map: stable addresses + already sorted for snapshots.
  std::map<std::string, std::unique_ptr<Histogram>> by_name;
};

// Leaked intentionally: pool workers and atexit flushes may record or
// snapshot during static destruction of other TUs.
HistRegistry& registry() {
  static HistRegistry* r = new HistRegistry;
  return *r;
}

}  // namespace

int histogram_bucket(double seconds) {
  if (!(seconds >= kHistMin)) return 0;  // also catches NaN / negatives
  // log10(v / kHistMin) decades above the floor, kBucketsPerDecade each.
  const double pos = std::log10(seconds / kHistMin) * kBucketsPerDecade;
  const int idx = 1 + static_cast<int>(pos);
  return std::min(idx, kHistBuckets - 1);
}

double histogram_upper_bound(int b) {
  if (b <= 0) return kHistMin;
  if (b >= kHistBuckets - 1) return std::numeric_limits<double>::infinity();
  return kHistMin * std::pow(10.0, static_cast<double>(b) / kBucketsPerDecade);
}

void HistogramBins::record(double seconds) {
  if (counts.empty()) counts.assign(static_cast<size_t>(kHistBuckets), 0);
  counts[static_cast<size_t>(histogram_bucket(seconds))]++;
  if (count == 0 || seconds < min) min = seconds;
  if (count == 0 || seconds > max) max = seconds;
  ++count;
  sum += seconds;
}

void HistogramBins::merge(const HistogramBins& other) {
  if (other.count == 0) return;
  if (counts.empty()) counts.assign(static_cast<size_t>(kHistBuckets), 0);
  for (size_t i = 0; i < other.counts.size() && i < counts.size(); ++i)
    counts[i] += other.counts[i];
  if (count == 0 || other.min < min) min = other.min;
  if (count == 0 || other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;
}

double HistogramBins::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (int b = 0; b < kHistBuckets; ++b) {
    const double here = static_cast<double>(counts[static_cast<size_t>(b)]);
    if (here == 0.0) continue;
    if (cum + here >= target) {
      double value;
      if (b == 0) {
        value = min;  // underflow bucket: no sub-bucket shape to exploit
      } else if (b == kHistBuckets - 1) {
        value = max;
      } else {
        // Geometric interpolation between the bucket's bounds: latency
        // mass inside a log bucket is closer to log-uniform than
        // uniform, and this keeps quantile() exact for single-value
        // distributions after the [min, max] clamp below.
        const double lo = histogram_upper_bound(b - 1);
        const double hi = histogram_upper_bound(b);
        const double frac = std::clamp((target - cum) / here, 0.0, 1.0);
        value = lo * std::pow(hi / lo, frac);
      }
      return std::clamp(value, min, max);
    }
    cum += here;
  }
  return max;
}

LatencyStats latency_stats(const HistogramBins& bins) {
  LatencyStats s;
  s.count = bins.count;
  if (bins.count == 0) return s;
  s.min = bins.min;
  s.mean = bins.mean();
  s.max = bins.max;
  s.p50 = bins.quantile(0.50);
  s.p95 = bins.quantile(0.95);
  s.p99 = bins.quantile(0.99);
  return s;
}

Histogram::Histogram() : shards_(new Shard[kShards]) {
  for (int s = 0; s < kShards; ++s)
    for (int b = 0; b < kHistBuckets; ++b)
      shards_[s].counts[b].store(0, std::memory_order_relaxed);
}

Histogram::Shard& Histogram::home_shard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shards_[slot];
}

void Histogram::record(double seconds) {
  if (!enabled()) return;
  record_unchecked(seconds);
}

void Histogram::record_unchecked(double seconds) {
  Shard& sh = home_shard();
  sh.counts[histogram_bucket(seconds)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev = sh.count.fetch_add(1, std::memory_order_relaxed);
  sh.sum.fetch_add(seconds, std::memory_order_relaxed);
  if (prev == 0) {
    // First record on this shard seeds min/max; later records race the
    // CAS loops, which is fine.
    sh.min_bits.store(seconds, std::memory_order_relaxed);
    sh.max_bits.store(seconds, std::memory_order_relaxed);
  } else {
    atomic_min(sh.min_bits, seconds);
    atomic_max(sh.max_bits, seconds);
  }
}

HistogramBins Histogram::snapshot() const {
  HistogramBins out;
  for (int s = 0; s < kShards; ++s) {
    const Shard& sh = shards_[s];
    const std::uint64_t c = sh.count.load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (out.counts.empty())
      out.counts.assign(static_cast<size_t>(kHistBuckets), 0);
    for (int b = 0; b < kHistBuckets; ++b)
      out.counts[static_cast<size_t>(b)] +=
          sh.counts[b].load(std::memory_order_relaxed);
    const double mn = sh.min_bits.load(std::memory_order_relaxed);
    const double mx = sh.max_bits.load(std::memory_order_relaxed);
    if (out.count == 0 || mn < out.min) out.min = mn;
    if (out.count == 0 || mx > out.max) out.max = mx;
    out.count += c;
    out.sum += sh.sum.load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (int s = 0; s < kShards; ++s) {
    Shard& sh = shards_[s];
    for (int b = 0; b < kHistBuckets; ++b)
      sh.counts[b].store(0, std::memory_order_relaxed);
    sh.count.store(0, std::memory_order_relaxed);
    sh.sum.store(0.0, std::memory_order_relaxed);
    sh.min_bits.store(0.0, std::memory_order_relaxed);
    sh.max_bits.store(0.0, std::memory_order_relaxed);
  }
}

Histogram& histogram(const char* name) {
  HistRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto& slot = r.by_name[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, HistogramBins>> snapshot_histograms() {
  std::vector<std::pair<std::string, HistogramBins>> out;
  HistRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  out.reserve(r.by_name.size());
  for (const auto& [name, h] : r.by_name) out.emplace_back(name, h->snapshot());
  return out;
}

namespace detail {

void record_span_duration(const char* name, std::int64_t dur_us) {
  // Span names are string literals with stable addresses, so a pointer
  // key is safe; two TUs with identical literals at distinct addresses
  // just cache two pointers to the same interned Histogram.
  thread_local std::unordered_map<const void*, Histogram*> cache;
  auto [it, inserted] = cache.try_emplace(name, nullptr);
  if (inserted) it->second = &histogram(name);
  it->second->record_unchecked(static_cast<double>(dur_us) * 1e-6);
}

void reset_histograms() {
  HistRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, h] : r.by_name) h->reset();
}

}  // namespace detail

}  // namespace sympvl::obs
