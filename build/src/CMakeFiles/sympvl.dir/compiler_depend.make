# Empty compiler generated dependencies file for sympvl.
# This may be replaced when dependencies are built.
