// Multi-point (rational Krylov) reduction — the natural extension of the
// paper's single-expansion-point matrix-Padé approach when a single shift
// cannot cover a wide frequency band.
//
// For each real expansion point s₀ᵢ the block Krylov space
// K((G+s₀ᵢC)⁻¹C, (G+s₀ᵢC)⁻¹B) is generated; the union of all spaces is
// orthonormalized and the original pencil congruence-projected
// (Gr = VᵀGV, Cr = VᵀCV, Br = VᵀB). On the symmetric pencils this library
// targets, the projection matches moments at EVERY expansion point
// simultaneously (same argument as the single-point case — the transfer
// function depends only on the span), trading per-point depth for band
// coverage. Congruence preserves the PSD structure of RC/RL/LC pencils, so
// the multi-point models inherit the Section 5 stability/passivity
// guarantees.
#pragma once

#include "circuit/mna.hpp"
#include "mor/arnoldi.hpp"

namespace sympvl {

/// Multi-point options: the shared base (the scalar `s0`/`order` fields
/// are superseded by `shifts`/`iterations_per_shift` here) with the
/// Arnoldi deflation default.
struct RationalOptions : CommonReductionOptions {
  RationalOptions() { deflation_tol = 1e-10; }
  /// Expansion points in the pencil variable σ (real, ≥ 0; 0 = DC).
  /// At least one required. Points where G + s₀C cannot be factored are
  /// rejected with sympvl::Error.
  Vec shifts;
  /// Block Krylov iterations per expansion point (each contributes up to
  /// `iterations_per_shift · p` basis vectors before deflation).
  Index iterations_per_shift = 2;
};

/// Multi-point congruence reduction. The returned model projects the
/// ORIGINAL pencil (no shift folded in), so it evaluates anywhere.
ArnoldiModel rational_reduce(const MnaSystem& sys, const RationalOptions& options);

/// Convenience: logarithmically spaced expansion points covering
/// [f_min, f_max] (mapped into the pencil variable: σ = 2πf for kS,
/// (2πf)² for kSSquared).
Vec rational_shifts_for_band(const MnaSystem& sys, double f_min, double f_max,
                             Index count);

// ---- Union-basis building blocks --------------------------------------
// The two halves of the congruence machinery above, exposed so other
// union-of-spans reducers (multipoint sessions, the port-sharding stitch
// fallback) share one implementation instead of re-deriving it.

/// Appends `block` to `basis` with doubly-applied modified Gram-Schmidt
/// and norm-relative deflation (vectors whose norm collapses below
/// `deflation_tol` times their incoming norm are dropped). Returns the
/// accepted (normalized) vectors, in order.
std::vector<Vec> mgs_union_append(std::vector<Vec>& basis,
                                  std::vector<Vec> block,
                                  double deflation_tol);

/// Congruence projection of the ORIGINAL pencil onto span(basis):
/// Gr = VᵀGV, Cr = VᵀCV, Br = VᵀB, packaged as an ArnoldiModel with
/// s₀ = 0 (no shift folded in), so it evaluates anywhere.
ArnoldiModel congruence_project(const MnaSystem& sys,
                                const std::vector<Vec>& basis);

}  // namespace sympvl
