#include "mor/driver.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/obs.hpp"

namespace sympvl {
namespace {

// Flattens the report's recovery trail into diagnostics: every failed
// factorization rung becomes an issue, and a Lanczos breakdown post-mortem
// becomes one kBreakdown issue.
void harvest_report(const SympvlReport& report,
                    std::vector<ReductionIssue>* out) {
  for (const FactorAttemptRecord& rec : report.factor_attempts) {
    if (rec.success) continue;
    ReductionIssue issue;
    issue.code =
        rec.code == ErrorCode::kUnknown ? ErrorCode::kSingular : rec.code;
    issue.stage = "factor." + rec.method;
    issue.message = rec.detail.empty()
                        ? ("factorization attempt failed (" + rec.method +
                           ", shift=" + std::to_string(rec.shift) + ")")
                        : rec.detail;
    issue.value = rec.shift;
    issue.condition = rec.condest;
    out->push_back(std::move(issue));
  }
  if (report.breakdown) {
    ReductionIssue issue;
    issue.code = ErrorCode::kBreakdown;
    issue.stage = "lanczos";
    issue.message = report.lanczos_diagnosis.message;
    issue.index = report.lanczos_diagnosis.cluster;
    issue.value = report.lanczos_diagnosis.min_abs_eig;
    out->push_back(std::move(issue));
  }
}

// Uniform status rule: breakdown truncation → kTruncated; stopping short
// of the request because the Krylov space is exhausted means the model is
// EXACT, which stays kOk.
ReductionStatus classify(const SympvlReport& report, Index requested) {
  if (report.breakdown) return ReductionStatus::kTruncated;
  if (report.achieved_order < requested && !report.exhausted)
    return ReductionStatus::kTruncated;
  return ReductionStatus::kOk;
}

template <typename Model>
void finish(const char* driver, int verbosity, ReductionResult<Model>* res) {
  obs::instant(
      "driver.result",
      {obs::arg("driver", driver),
       obs::arg("status", reduction_status_name(res->status)),
       obs::arg("achieved_order", res->report.achieved_order),
       obs::arg("issues", double(res->diagnostics.size())),
       obs::arg("recovered", res->report.recovered ? 1.0 : 0.0)});
  if (verbosity > 0 &&
      (res->status != ReductionStatus::kOk || res->report.recovered ||
       !res->diagnostics.empty())) {
    std::fprintf(stderr, "[sympvl] %s: status=%s order=%lld issues=%zu\n",
                 driver, reduction_status_name(res->status),
                 static_cast<long long>(res->report.achieved_order),
                 res->diagnostics.size());
    for (const ReductionIssue& issue : res->diagnostics)
      std::fprintf(stderr, "[sympvl]   [%s @ %s] %s\n",
                   error_code_name(issue.code), issue.stage.c_str(),
                   issue.message.c_str());
  }
}

}  // namespace

ReductionResult<ReducedModel> run_sympvl(const MnaSystem& sys,
                                         const SympvlOptions& options) {
  ReductionResult<ReducedModel> res;
  try {
    res.model = sympvl_reduce(sys, options, &res.report);
    harvest_report(res.report, &res.diagnostics);
    res.status = classify(res.report, std::min(options.order, sys.size()));
  } catch (const Error& ex) {
    res.status = ReductionStatus::kFailed;
    harvest_report(res.report, &res.diagnostics);
    res.diagnostics.insert(res.diagnostics.begin(),
                           ReductionIssue::from_error(ex));
  }
  finish("sympvl", options.verbosity, &res);
  return res;
}

ReductionResult<ReducedModel> run_sympvl(const Netlist& netlist,
                                         const SympvlOptions& options) {
  try {
    return run_sympvl(build_mna(netlist), options);
  } catch (const Error& ex) {
    ReductionResult<ReducedModel> res;
    res.status = ReductionStatus::kFailed;
    res.diagnostics.push_back(ReductionIssue::from_error(ex));
    if (res.diagnostics.front().stage.empty())
      res.diagnostics.front().stage = "mna.assemble";
    finish("sympvl", options.verbosity, &res);
    return res;
  }
}

ReductionResult<ReducedModel> run_sypvl(const MnaSystem& sys,
                                        const SympvlOptions& options) {
  ReductionResult<ReducedModel> res;
  try {
    res.model = sypvl_reduce(sys, options, &res.report);
    harvest_report(res.report, &res.diagnostics);
    res.status = classify(res.report, std::min(options.order, sys.size()));
  } catch (const Error& ex) {
    res.status = ReductionStatus::kFailed;
    harvest_report(res.report, &res.diagnostics);
    res.diagnostics.insert(res.diagnostics.begin(),
                           ReductionIssue::from_error(ex));
  }
  finish("sypvl", options.verbosity, &res);
  return res;
}

ReductionResult<PvlModel> run_pvl(const MnaSystem& sys, Index row, Index col,
                                  const PvlOptions& options) {
  ReductionResult<PvlModel> res;
  try {
    LanczosDiagnosis diagnosis;
    res.model = pvl_reduce_entry(sys, row, col, options, &diagnosis);
    res.report.s0_used = res.model.shift();
    res.report.achieved_order = res.model.order();
    res.report.lanczos_diagnosis = diagnosis;
    res.report.breakdown = diagnosis.breakdown;
    // PVL stopping short without a breakdown diagnosis means the Krylov
    // space for this entry is exhausted (the scalar model is exact).
    res.report.exhausted =
        !diagnosis.breakdown &&
        res.model.order() < std::min(options.order, sys.size());
    harvest_report(res.report, &res.diagnostics);
    res.status = classify(res.report, std::min(options.order, sys.size()));
  } catch (const Error& ex) {
    res.status = ReductionStatus::kFailed;
    res.diagnostics.push_back(ReductionIssue::from_error(ex));
  }
  finish("pvl", options.verbosity, &res);
  return res;
}

ReductionResult<ArnoldiModel> run_arnoldi(const MnaSystem& sys,
                                          const ArnoldiOptions& options) {
  ReductionResult<ArnoldiModel> res;
  try {
    res.model = arnoldi_reduce(sys, options);
    res.report.s0_used = res.model.shift();
    res.report.achieved_order = res.model.order();
    // Arnoldi stops short only when the block Krylov space deflates to
    // nothing more — the projection then spans the full space (exact).
    res.report.exhausted =
        res.model.order() < std::min(options.order, sys.size());
    res.status = classify(res.report, std::min(options.order, sys.size()));
  } catch (const Error& ex) {
    res.status = ReductionStatus::kFailed;
    res.diagnostics.push_back(ReductionIssue::from_error(ex));
  }
  finish("arnoldi", options.verbosity, &res);
  return res;
}

}  // namespace sympvl
