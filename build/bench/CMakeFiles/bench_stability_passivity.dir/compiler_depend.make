# Empty compiler generated dependencies file for bench_stability_passivity.
# This may be replaced when dependencies are built.
