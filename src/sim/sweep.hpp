// Sweep results with per-point fault containment.
//
// A frequency sweep is a batch of independent solves; one singular or
// ill-conditioned point (a resonance landing exactly on the grid, an
// injected fault, a pencil assembly overflow) must not destroy the other
// 999 points. SweepResult carries the per-point matrices together with a
// per-point status vector and the structured error records of the points
// that failed: failed points hold a NaN-filled p×p matrix, every other
// point is exactly what an all-healthy sweep would have produced.
//
// The container indexes like the std::vector<CMat> it replaced
// (operator[], size(), begin/end over the matrices), so plotting and
// error-scan code keeps working unchanged.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "common.hpp"
#include "fault.hpp"
#include "linalg/dense.hpp"
#include "parallel/thread_pool.hpp"

namespace sympvl {

enum class PointStatus : unsigned char { kOk = 0, kFailed = 1 };

/// Structured record of one failed sweep point.
struct SweepPointError {
  Index index = -1;           ///< position in the frequency grid
  double frequency_hz = 0.0;  ///< the frequency that failed
  ErrorCode code = ErrorCode::kUnknown;
  std::string message;
};

/// A p×p matrix filled with quiet NaNs — the placeholder failed sweep
/// points carry so downstream consumers cannot mistake them for data.
inline CMat nan_matrix(Index rows, Index cols) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  CMat m(rows, cols);
  for (Index i = 0; i < rows; ++i)
    for (Index j = 0; j < cols; ++j) m(i, j) = Complex(qnan, qnan);
  return m;
}

struct SweepResult {
  Vec frequencies;                       ///< grid, in Hz
  std::vector<CMat> values;              ///< p×p per point (NaN when failed)
  std::vector<PointStatus> point_status; ///< one entry per point
  std::vector<SweepPointError> errors;   ///< failed points, in index order

  size_t size() const { return values.size(); }
  const CMat& operator[](size_t k) const { return values[k]; }
  std::vector<CMat>::const_iterator begin() const { return values.begin(); }
  std::vector<CMat>::const_iterator end() const { return values.end(); }

  bool ok(size_t k) const { return point_status[k] == PointStatus::kOk; }
  bool all_ok() const { return errors.empty(); }
  Index failed_count() const { return static_cast<Index>(errors.size()); }

  /// Returns the matrices, throwing Error(kSweepPointFailed) carrying the
  /// first failed point when the sweep was not fully healthy — the bridge
  /// for callers that need the old all-or-nothing contract.
  std::vector<CMat> values_or_throw() && {
    if (!errors.empty()) {
      const SweepPointError& first = errors.front();
      ErrorContext ctx;
      ctx.stage = "sweep";
      ctx.index = first.index;
      ctx.frequency = Complex(first.frequency_hz, 0.0);
      throw Error(ErrorCode::kSweepPointFailed,
                  std::to_string(errors.size()) + " of " +
                      std::to_string(values.size()) +
                      " sweep points failed; first: " + first.message,
                  std::move(ctx));
    }
    return std::move(values);
  }
};

namespace detail {

/// Shared containment harness for frequency sweeps: runs `compute(k)` for
/// every grid point through parallel_for. A point that throws becomes a
/// NaN matrix plus a structured error record; a whole-chunk failure
/// (including an injected "parallel.chunk" fault) marks only the points
/// that chunk never reached. Healthy points are computed by exactly the
/// same operation sequence as an all-healthy sweep, so they stay
/// bit-identical whether or not neighbors fail.
template <typename Compute>
SweepResult run_contained_sweep(const Vec& frequencies_hz, Index rows,
                                Index cols, Compute&& compute) {
  const Index count = static_cast<Index>(frequencies_hz.size());
  SweepResult res;
  res.frequencies = frequencies_hz;
  res.values.assign(static_cast<size_t>(count), CMat());
  res.point_status.assign(static_cast<size_t>(count), PointStatus::kFailed);
  std::vector<ErrorCode> codes(static_cast<size_t>(count), ErrorCode::kUnknown);
  std::vector<std::string> messages(static_cast<size_t>(count));
  std::vector<char> done(static_cast<size_t>(count), 0);
  // Per-point slots only — no shared mutable state, so recording a
  // failure is race-free under the static partition.
  auto record = [&](Index k, ErrorCode code, const std::string& message) {
    codes[static_cast<size_t>(k)] = code;
    messages[static_cast<size_t>(k)] = message;
    res.values[static_cast<size_t>(k)] = nan_matrix(rows, cols);
    done[static_cast<size_t>(k)] = 1;
  };
  try {
    parallel_for(Index(0), count, [&](Index k) {
      try {
        fault::check("sweep.point", k);
        res.values[static_cast<size_t>(k)] = compute(k);
        res.point_status[static_cast<size_t>(k)] = PointStatus::kOk;
        done[static_cast<size_t>(k)] = 1;
      } catch (const Error& err) {
        record(k, err.code(), err.what());
      } catch (const std::exception& ex) {
        record(k, ErrorCode::kUnknown, ex.what());
      }
    });
  } catch (const Error& err) {
    // A chunk died outside the per-point guard; only the points it never
    // reached are still pending — flag those with the chunk's error.
    for (Index k = 0; k < count; ++k)
      if (!done[static_cast<size_t>(k)]) record(k, err.code(), err.what());
  }
  for (Index k = 0; k < count; ++k) {
    if (res.point_status[static_cast<size_t>(k)] == PointStatus::kOk) continue;
    res.errors.push_back({k, frequencies_hz[static_cast<size_t>(k)],
                          codes[static_cast<size_t>(k)],
                          messages[static_cast<size_t>(k)]});
  }
  return res;
}

}  // namespace detail

}  // namespace sympvl
