#include "mor/pvl.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "fault.hpp"
#include "linalg/dense_factor.hpp"
#include "mor/pencil.hpp"
#include "mor/sympvl.hpp"
#include "parallel/thread_pool.hpp"

namespace sympvl {

PvlModel::PvlModel(Mat t, double eta, SVariable variable, int s_prefactor,
                   double s0)
    : t_(std::move(t)),
      eta_(eta),
      variable_(variable),
      s_prefactor_(s_prefactor),
      s0_(s0) {}

Complex PvlModel::eval(Complex s) const {
  const Index n = order();
  const Complex sigma = (variable_ == SVariable::kS ? s : s * s) - s0_;
  CMat lhs(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j)
      lhs(i, j) = (i == j ? Complex(1.0, 0.0) : Complex(0.0, 0.0)) +
                  sigma * t_(i, j);
  CVec e1(static_cast<size_t>(n), Complex(0.0, 0.0));
  e1[0] = Complex(1.0, 0.0);
  const CVec x = DenseLU<Complex>(lhs).solve(e1);
  Complex pref(1.0, 0.0);
  for (int k = 0; k < s_prefactor_; ++k) pref *= s;
  return pref * eta_ * x[0];
}

double PvlModel::moment(Index k) const {
  Vec x(static_cast<size_t>(order()), 0.0);
  x[0] = 1.0;
  for (Index step = 0; step < k; ++step) x = t_ * x;
  return eta_ * x[0];
}

PvlModel pvl_reduce_entry(const MnaSystem& sys, Index row, Index col,
                          const PvlOptions& options,
                          LanczosDiagnosis* diagnosis) {
  require(options.order >= 1, ErrorCode::kInvalidArgument,
          "pvl_reduce_entry: order must be >= 1", {.stage = "pvl"});
  require(0 <= row && row < sys.port_count() && 0 <= col &&
              col < sys.port_count(),
          ErrorCode::kInvalidArgument,
          "pvl_reduce_entry: port index out of range", {.stage = "pvl"});
  const Index big_n = sys.size();
  if (diagnosis != nullptr) *diagnosis = LanczosDiagnosis{};

  PencilFactorRequest req;
  req.s0 = options.s0;
  req.auto_shift = options.auto_shift;
  req.ordering = options.ordering;
  req.driver = "pvl_reduce_entry";
  req.stage = "pvl.factor";
  req.cache = options.factor_cache;
  req.cache_options = options.cache;
  req.kernels = options.kernel;
  req.rhs_width = sys.port_count();
  PencilFactorResult outcome = factor_pencil(sys, req);
  const std::shared_ptr<const FactorizedPencil> fact = outcome.pencil;
  const double s0 = outcome.s0_used;

  // A = G̃⁻¹C applied on the right; Aᵀ = CG̃⁻ᵀ = CG̃⁻¹ (G̃ symmetric) on the
  // left Krylov space.
  auto apply_a = [&](const Vec& v) { return fact->solve(sys.C.multiply(v)); };
  auto apply_at = [&](const Vec& v) { return sys.C.multiply(fact->solve(v)); };

  // Right start r̂ = G̃⁻¹ b_col, left start l = b_row.
  Vec v = fact->solve(sys.B.col(col));
  Vec w = sys.B.col(row);
  const double beta1 = norm2(v);
  const double gamma1 = norm2(w);
  require(beta1 > 0.0 && gamma1 > 0.0, ErrorCode::kInvalidArgument,
          "pvl_reduce_entry: zero port vector", {.stage = "pvl.start"});
  scale(v, 1.0 / beta1);
  scale(w, 1.0 / gamma1);

  const Index n_max = std::min(options.order, big_n);
  Mat t(n_max, n_max);
  std::vector<Vec> vs, ws;
  Vec deltas;
  Index n = 0;

  while (n < n_max) {
    double dn = dot(w, v);
    if (fault::active() && fault::triggered("pvl.delta", n)) dn = 0.0;
    if (std::abs(dn) <= options.breakdown_tol) {
      // Serious breakdown (wᵀv ≈ 0): no look-ahead in the classical
      // two-sided process, so truncate at the last completed order; the
      // very first step has no model to truncate to and throws.
      LanczosDiagnosis diag;
      diag.breakdown = true;
      diag.cluster = n;
      diag.cluster_size = 1;
      diag.min_abs_eig = std::abs(dn);
      diag.tol = options.breakdown_tol;
      diag.message =
          "pvl_reduce_entry: serious Lanczos breakdown — |delta_" +
          std::to_string(n + 1) + "| = " + std::to_string(std::abs(dn)) +
          " <= breakdown_tol = " + std::to_string(options.breakdown_tol) +
          "; truncated at order " + std::to_string(n) +
          " (use sympvl_reduce with look-ahead, or retry with a different "
          "expansion point s0, eq. 26)";
      if (n == 0)
        throw Error(ErrorCode::kBreakdown, diag.message,
                    {.stage = "pvl.lanczos", .index = 0,
                     .value = std::abs(dn)});
      if (diagnosis != nullptr) *diagnosis = diag;
      break;
    }
    vs.push_back(v);
    ws.push_back(w);
    deltas.push_back(dn);
    ++n;

    Vec av = apply_a(vs.back());
    Vec atw = apply_at(ws.back());
    const double av_ref = norm2(av);
    const double atw_ref = norm2(atw);
    // Biorthogonalize against the last two pairs (three-term recurrence),
    // recording the T entries t_{j,n} = w_jᵀAv_n/δ_j. The column is needed
    // even for the final vector (it holds the diagonal coefficient).
    for (Index j = std::max<Index>(0, n - 2); j < n; ++j) {
      const double tjn = dot(ws[static_cast<size_t>(j)], av) /
                         deltas[static_cast<size_t>(j)];
      t(j, n - 1) = tjn;
      axpy(-tjn, vs[static_cast<size_t>(j)], av);
      const double sjn = dot(vs[static_cast<size_t>(j)], atw) /
                         deltas[static_cast<size_t>(j)];
      axpy(-sjn, ws[static_cast<size_t>(j)], atw);
    }
    if (n == n_max) break;
    const double beta = norm2(av);
    const double gamma = norm2(atw);
    if (av_ref == 0.0 || atw_ref == 0.0 ||
        beta <= options.breakdown_tol * av_ref ||
        gamma <= options.breakdown_tol * atw_ref)
      break;  // Krylov space exhausted
    t(n, n - 1) = beta;
    scale(av, 1.0 / beta);
    scale(atw, 1.0 / gamma);
    v = std::move(av);
    w = std::move(atw);
  }

  // η = b_rowᵀ G̃⁻¹ b_col scaled into the e₁ formulation:
  // H_n(σ) = γ₁β₁δ₁ e₁ᵀ(I+σTₙ)⁻¹e₁.
  const double eta = gamma1 * beta1 * deltas[0];
  return PvlModel(t.block(0, n, 0, n), eta, sys.variable, sys.s_prefactor, s0);
}

std::vector<PvlModel> pvl_reduce_all(const MnaSystem& sys,
                                     const PvlOptions& options) {
  const Index p = sys.port_count();

  // Z(s) = Zᵀ(s) for the symmetric pencils of Section 2 (G, C symmetric):
  // the (i,j) and (j,i) Padé approximants match the same moments, so only
  // the p(p+1)/2 upper-triangle entries are reduced — fanned over the
  // thread pool — and the strict lower triangle mirrors them.
  std::vector<std::pair<Index, Index>> pairs;
  pairs.reserve(static_cast<size_t>(p * (p + 1) / 2));
  for (Index i = 0; i < p; ++i)
    for (Index j = i; j < p; ++j) pairs.emplace_back(i, j);

  std::vector<PvlModel> slots(static_cast<size_t>(p * p));
  // Warm the shared factorization cache serially: the first entry pays the
  // one factorization, the parallel fan-out then hits the cache instead of
  // racing p(p+1)/2 duplicate factorizations.
  slots[0] = pvl_reduce_entry(sys, pairs[0].first, pairs[0].second, options);
  parallel_for(Index{1}, static_cast<Index>(pairs.size()), [&](Index k) {
    const auto [i, j] = pairs[static_cast<size_t>(k)];
    slots[static_cast<size_t>(i * p + j)] = pvl_reduce_entry(sys, i, j, options);
  });

  std::vector<PvlModel> models;
  models.reserve(static_cast<size_t>(p * p));
  for (Index i = 0; i < p; ++i)
    for (Index j = 0; j < p; ++j) {
      const size_t upper =
          static_cast<size_t>(std::min(i, j) * p + std::max(i, j));
      models.push_back(slots[upper]);
    }
  return models;
}

}  // namespace sympvl
