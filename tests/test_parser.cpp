#include "circuit/parser.hpp"

#include <gtest/gtest.h>

#include "circuit/mna.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

TEST(ParseValue, PlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_value("10"), 10.0);
  EXPECT_DOUBLE_EQ(parse_value("4.7"), 4.7);
  EXPECT_DOUBLE_EQ(parse_value("1e-12"), 1e-12);
  EXPECT_DOUBLE_EQ(parse_value("-3.5e2"), -350.0);
}

TEST(ParseValue, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parse_value("1k"), 1e3);
  EXPECT_DOUBLE_EQ(parse_value("2.2K"), 2.2e3);
  EXPECT_DOUBLE_EQ(parse_value("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(parse_value("1MEG"), 1e6);
  EXPECT_DOUBLE_EQ(parse_value("5m"), 5e-3);
  EXPECT_DOUBLE_EQ(parse_value("3u"), 3e-6);
  EXPECT_DOUBLE_EQ(parse_value("7n"), 7e-9);
  EXPECT_DOUBLE_EQ(parse_value("2p"), 2e-12);
  EXPECT_DOUBLE_EQ(parse_value("1f"), 1e-15);
  EXPECT_DOUBLE_EQ(parse_value("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parse_value("1t"), 1e12);
}

TEST(ParseValue, UnitTailsIgnored) {
  EXPECT_DOUBLE_EQ(parse_value("10pF"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_value("2kOhm"), 2e3);
}

TEST(ParseValue, Malformed) {
  EXPECT_THROW(parse_value("abc"), Error);
  EXPECT_THROW(parse_value(""), Error);
  EXPECT_THROW(parse_value("1x"), Error);
}

TEST(Parser, SimpleRcNetlist) {
  const Netlist nl = parse_netlist(R"(
* RC divider
R1 in mid 1k
R2 mid 0 1k
C1 mid gnd 10p
.port in in
.end
)");
  EXPECT_EQ(nl.resistors().size(), 2u);
  EXPECT_EQ(nl.capacitors().size(), 1u);
  EXPECT_EQ(nl.port_count(), 1);
  EXPECT_DOUBLE_EQ(nl.resistors()[0].resistance, 1000.0);
  EXPECT_DOUBLE_EQ(nl.capacitors()[0].capacitance, 1e-11);
}

TEST(Parser, GndAliasesToDatum) {
  const Netlist nl = parse_netlist("R1 a gnd 5\nR2 b 0 5\n.port p a\n");
  EXPECT_EQ(nl.resistors()[0].n2, 0);
  EXPECT_EQ(nl.resistors()[1].n2, 0);
}

TEST(Parser, MutualInductance) {
  const Netlist nl = parse_netlist(R"(
L1 a 0 1n
L2 b 0 2n
K12 L1 L2 0.5
.port p a
)");
  ASSERT_EQ(nl.mutuals().size(), 1u);
  EXPECT_EQ(nl.mutuals()[0].l1, 0);
  EXPECT_EQ(nl.mutuals()[0].l2, 1);
  EXPECT_DOUBLE_EQ(nl.mutuals()[0].coupling, 0.5);
}

TEST(Parser, CurrentSource) {
  const Netlist nl = parse_netlist("I1 0 a 1m\nR1 a 0 50\n.port p a\n");
  ASSERT_EQ(nl.current_sources().size(), 1u);
  EXPECT_DOUBLE_EQ(nl.current_sources()[0].value, 1e-3);
}

TEST(Parser, CommentsAndBlankLines) {
  const Netlist nl = parse_netlist(R"(
* full-line comment
; also a comment

R1 a 0 10 * trailing comment
.port p a
)");
  EXPECT_EQ(nl.resistors().size(), 1u);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("R1 a 0 10\nXbogus 1 2 3\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, BadCardArity) {
  EXPECT_THROW(parse_netlist("R1 a 0\n"), Error);
  EXPECT_THROW(parse_netlist("K1 L1 L2 0.5\n"), Error);  // unknown inductors
  EXPECT_THROW(parse_netlist(".port\n"), Error);
}

TEST(Parser, StopsAtEnd) {
  const Netlist nl = parse_netlist("R1 a 0 1\n.port p a\n.end\nR2 b 0 1\n");
  EXPECT_EQ(nl.resistors().size(), 1u);
}

TEST(Parser, SubcktFlattening) {
  // One RC section defined once, instanced twice in series.
  const Netlist nl = parse_netlist(R"(
.subckt rcsec in out
Rs in out 100
Cs out 0 1p
.ends rcsec
X1 a b rcsec
X2 b c rcsec
Rload c 0 1k
.port drive a
)");
  EXPECT_EQ(nl.resistors().size(), 3u);
  EXPECT_EQ(nl.capacitors().size(), 2u);
  // Flattened names carry the instance prefix.
  EXPECT_EQ(nl.resistors()[0].name, "x1.Rs");
  EXPECT_EQ(nl.capacitors()[1].name, "x2.Cs");

  // Same transfer function as the hand-flattened circuit.
  Netlist hand;
  hand.add_resistor(1, 2, 100.0);
  hand.add_capacitor(2, 0, 1e-12);
  hand.add_resistor(2, 3, 100.0);
  hand.add_capacitor(3, 0, 1e-12);
  hand.add_resistor(3, 0, 1000.0);
  hand.add_port(1, 0);
  for (double f : {1e7, 1e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const Complex za = ac_z_matrix(build_mna(nl), s)(0, 0);
    const Complex zb = ac_z_matrix(build_mna(hand), s)(0, 0);
    EXPECT_NEAR(std::abs(za - zb), 0.0, 1e-10 * std::abs(zb)) << f;
  }
}

TEST(Parser, SubcktGroundPin) {
  // A pin wired to ground in the parent must land on the datum node.
  const Netlist nl = parse_netlist(R"(
.subckt load a ref
Rl a ref 50
.ends
X1 in 0 load
C1 in 0 1p
.port p in
)");
  ASSERT_EQ(nl.resistors().size(), 1u);
  EXPECT_EQ(nl.resistors()[0].n2, 0);
  EXPECT_EQ(nl.node_count(), 2);  // only "in" beyond the datum
}

TEST(Parser, NestedSubcktInstances) {
  const Netlist nl = parse_netlist(R"(
.subckt unit a b
Ru a b 10
.ends
.subckt pair x y
X1 x m unit
X2 m y unit
.ends
Xtop in out pair
Rterm out 0 100
C1 in 0 1p
.port p in
)");
  EXPECT_EQ(nl.resistors().size(), 3u);
  // DC resistance: 10 + 10 + 100.
  const CMat z = ac_z_matrix(build_mna(nl), Complex(0.0, 0.0));
  EXPECT_NEAR(z(0, 0).real(), 120.0, 1e-9);
}

TEST(Parser, SubcktWithMutualInductors) {
  const Netlist nl = parse_netlist(R"(
.subckt xfmr p s
L1 p 0 1n
L2 s 0 4n
K1 L1 L2 0.5
.ends
Xa in out xfmr
Rload out 0 50
.port drive in
)");
  ASSERT_EQ(nl.mutuals().size(), 1u);
  EXPECT_DOUBLE_EQ(nl.mutuals()[0].coupling, 0.5);
}

TEST(Parser, SubcktErrors) {
  EXPECT_THROW(parse_netlist("X1 a b missing\n"), Error);  // unknown def
  EXPECT_THROW(parse_netlist(".subckt s a\nRx a 0 1\n"), Error);  // unterminated
  EXPECT_THROW(parse_netlist(".subckt s a\n.ends t\n"), Error);  // name mismatch
  EXPECT_THROW(parse_netlist(R"(
.subckt s a
.subckt t b
.ends
.ends
)"),
               Error);  // nested definitions
  EXPECT_THROW(parse_netlist(R"(
.subckt s a b
Rs a b 1
.ends
X1 n1 s
.port p n1
)"),
               Error);  // wrong pin count
  EXPECT_THROW(parse_netlist(R"(
.subckt s a
.port p a
.ends
X1 n1 s
)"),
               Error);  // .port inside a subckt
}

TEST(Parser, WriteSubcktRoundTrip) {
  // Export a small netlist as a subckt, instance it behind a resistor and
  // verify the composite transfer function.
  Netlist block;
  block.add_resistor(1, 2, 100.0);
  block.add_capacitor(2, 0, 2e-12);
  block.add_resistor(2, 0, 400.0);
  block.add_port(1, 0, "in");
  const std::string sub = write_subckt(block, "blk", "exported block");

  const std::string full = sub + R"(
Rdrv top 1 50
X1 1 blk
C0 top 0 1f
.port p top
)";
  // X pins: block has one port at node "1" -> pin name "1".
  const Netlist nl = parse_netlist(full);
  const Complex z0 = ac_z_matrix(build_mna(nl), Complex(0.0, 0.0))(0, 0);
  EXPECT_NEAR(z0.real(), 50.0 + 100.0 + 400.0, 1e-8);
}

TEST(Parser, WriteSubcktRejectsFloatingPorts) {
  Netlist block;
  block.add_resistor(1, 2, 10.0);
  block.add_capacitor(1, 0, 1e-12);
  block.add_capacitor(2, 0, 1e-12);
  block.add_port(1, 2);  // not ground-referenced
  EXPECT_THROW(write_subckt(block, "b"), Error);
}

TEST(Parser, WriteParseRoundTripPreservesTransferFunction) {
  Netlist nl;
  nl.add_resistor(1, 2, 100.0);
  nl.add_resistor(2, 0, 400.0);
  nl.add_capacitor(2, 0, 2e-12);
  const Index l1 = nl.add_inductor(1, 3, 1e-9);
  const Index l2 = nl.add_inductor(3, 0, 2e-9);
  nl.add_mutual(l1, l2, 0.3);
  nl.add_port(1, 0, "in");

  const std::string text = write_netlist(nl, "round trip");
  const Netlist back = parse_netlist(text);
  EXPECT_EQ(back.resistors().size(), nl.resistors().size());
  EXPECT_EQ(back.inductors().size(), nl.inductors().size());
  EXPECT_EQ(back.mutuals().size(), nl.mutuals().size());

  // The transfer function must be identical even if node numbering moved.
  const MnaSystem s1 = build_mna(nl, MnaForm::kGeneral);
  const MnaSystem s2 = build_mna(back, MnaForm::kGeneral);
  for (double f : {1e6, 1e8, 1e10}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const CMat z1 = ac_z_matrix(s1, s);
    const CMat z2 = ac_z_matrix(s2, s);
    EXPECT_NEAR(std::abs(z1(0, 0) - z2(0, 0)), 0.0,
                1e-9 * std::abs(z1(0, 0)));
  }
}

}  // namespace
}  // namespace sympvl
