#include "mor/reduce.hpp"

#include <utility>

#include "circuit/topology.hpp"
#include "mor/pencil.hpp"

namespace sympvl {

namespace {

// Copies the shared option surface into a method-specific options struct
// (the facade applies its values uniformly across methods).
template <typename Opt>
Opt slice_common(const ReduceOptions& options) {
  Opt out;
  static_cast<CommonReductionOptions&>(out) = options;
  return out;
}

template <typename Model>
ReduceResult from_driver(ReductionResult<Model> r) {
  ReduceResult out;
  if (r.ok()) out.model = MacroModel(std::move(r.model));
  out.report = std::move(r.report);
  out.status = r.status;
  out.diagnostics = std::move(r.diagnostics);
  return out;
}

}  // namespace

Index MacroModel::order() const {
  if (const auto* m = as_reduced()) return m->order();
  if (const auto* m = as_arnoldi()) return m->order();
  if (const auto* m = as_pvl()) return m->order();
  return 0;
}

Index MacroModel::port_count() const {
  if (const auto* m = as_reduced()) return m->port_count();
  if (const auto* m = as_arnoldi()) return m->port_count();
  if (as_pvl() != nullptr) return 1;
  return 0;
}

CMat MacroModel::eval(Complex s) const {
  if (const auto* m = as_reduced()) return m->eval(s);
  if (const auto* m = as_arnoldi()) return m->eval(s);
  if (const auto* m = as_pvl()) {
    CMat z(1, 1);
    z(0, 0) = m->eval(s);
    return z;
  }
  throw Error(ErrorCode::kInvalidArgument, "MacroModel: empty model",
              {.stage = "reduce.eval"});
}

const MacroModel& ReduceResult::value() const {
  if (!ok()) {
    if (!diagnostics.empty()) {
      const ReductionIssue& first = diagnostics.front();
      throw Error(first.code, first.message,
                  {.stage = first.stage, .index = first.index,
                   .value = first.value, .condition = first.condition});
    }
    throw Error(ErrorCode::kUnknown, "reduce: failed (no diagnostics)");
  }
  return model;
}

ReduceResult reduce(const MnaSystem& sys, const ReduceOptions& options) {
  switch (options.method) {
    case ReduceMethod::kSympvl:
      return from_driver(run_sympvl(sys, options));
    case ReduceMethod::kShardedSympvl: {
      ShardedSympvlResult r = sharded_sympvl_reduce(sys, options);
      ReduceResult out;
      if (r.ok())
        out.model = r.used_monolithic ? MacroModel(std::move(r.monolithic))
                                      : MacroModel(std::move(r.stitched));
      out.report = std::move(r.report);
      out.shard = std::move(r.shard);
      out.status = r.status;
      out.diagnostics = std::move(r.diagnostics);
      return out;
    }
    case ReduceMethod::kSypvl:
      return from_driver(run_sypvl(sys, options));
    case ReduceMethod::kPvl:
      return from_driver(run_pvl(sys, options.pvl_row, options.pvl_col,
                                 slice_common<PvlOptions>(options)));
    case ReduceMethod::kArnoldi:
      return from_driver(run_arnoldi(sys, slice_common<ArnoldiOptions>(options)));
  }
  throw Error(ErrorCode::kInvalidArgument, "reduce: unknown method",
              {.stage = "reduce"});
}

ReduceResult reduce(const Netlist& netlist, const ReduceOptions& options) {
  MnaSystem sys;
  ReduceOptions opt = options;
  try {
    sys = build_mna(netlist, MnaForm::kAuto);
    // Topology check (Section 2 / eq. 26) for the pencil-factoring
    // methods: when some node has no DC path to the datum, G is
    // structurally singular — pick the shift up front rather than
    // failing a factorization first. (Mirrors sympvl_reduce's netlist
    // overload.) automatic_shift itself throws on degenerate systems
    // (empty C diagonal), which is an assembly-stage failure too.
    if (opt.s0 == 0.0 && opt.auto_shift &&
        !has_dc_path_to_ground(netlist, MnaForm::kAuto))
      opt.s0 = automatic_shift(sys);
  } catch (const Error& e) {
    ReduceResult out;
    out.status = ReductionStatus::kFailed;
    out.diagnostics.push_back(ReductionIssue::from_error(e));
    return out;
  }
  return reduce(sys, opt);
}

}  // namespace sympvl
