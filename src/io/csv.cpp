#include "io/csv.hpp"

#include <fstream>
#include <sstream>

namespace sympvl {

CsvTable::CsvTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  require(!columns_.empty(), "CsvTable: at least one column required");
  for (const auto& c : columns_) {
    require(!c.empty(), "CsvTable: empty column name");
    require(c.find(',') == std::string::npos && c.find('\n') == std::string::npos,
            "CsvTable: column name must not contain ',' or newline");
  }
}

void CsvTable::add_row(const Vec& row) {
  require(static_cast<Index>(row.size()) == column_count(),
          "CsvTable::add_row: width mismatch");
  rows_.push_back(row);
}

double CsvTable::at(Index row, Index col) const {
  require(0 <= row && row < row_count() && 0 <= col && col < column_count(),
          "CsvTable::at: out of range");
  return rows_[static_cast<size_t>(row)][static_cast<size_t>(col)];
}

bool CsvTable::has_column(const std::string& name) const {
  for (const auto& c : columns_)
    if (c == name) return true;
  return false;
}

Vec CsvTable::column(const std::string& name) const {
  for (size_t k = 0; k < columns_.size(); ++k) {
    if (columns_[k] != name) continue;
    Vec out;
    out.reserve(rows_.size());
    for (const auto& r : rows_) out.push_back(r[k]);
    return out;
  }
  throw Error(ErrorCode::kInvalidArgument,
              "CsvTable::column: no column named '" + name + "'", {.stage = "csv"});
}

void CsvTable::write(std::ostream& out) const {
  for (size_t k = 0; k < columns_.size(); ++k)
    out << (k ? "," : "") << columns_[k];
  out << "\n";
  out.precision(17);
  for (const auto& r : rows_) {
    for (size_t k = 0; k < r.size(); ++k) out << (k ? "," : "") << r[k];
    out << "\n";
  }
}

std::string CsvTable::to_string() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

void CsvTable::write_file(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "CsvTable::write_file: cannot open '" + path + "'");
  write(out);
}

CsvTable CsvTable::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  require(static_cast<bool>(std::getline(in, line)), "CsvTable::parse: empty input");
  std::vector<std::string> columns;
  {
    std::istringstream header(line);
    std::string cell;
    while (std::getline(header, cell, ',')) columns.push_back(cell);
  }
  CsvTable table(std::move(columns));
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    Vec values;
    while (std::getline(row, cell, ',')) {
      try {
        values.push_back(std::stod(cell));
      } catch (const std::exception&) {
        throw Error(ErrorCode::kIo,
                    "CsvTable::parse: bad number '" + cell + "' at line " +
                        std::to_string(line_no),
                    {.stage = "csv", .index = static_cast<Index>(line_no)});
      }
    }
    table.add_row(values);
  }
  return table;
}

CsvTable CsvTable::read_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "CsvTable::read_file: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

CsvTable sweep_to_csv(const Vec& frequencies_hz, const std::vector<CMat>& z,
                      const std::vector<ZEntry>& entries) {
  require(frequencies_hz.size() == z.size(),
          "sweep_to_csv: one matrix per frequency required");
  require(!entries.empty(), "sweep_to_csv: no entries selected");
  std::vector<std::string> columns{"f_hz"};
  for (const auto& e : entries) {
    columns.push_back("re_" + e.name);
    columns.push_back("im_" + e.name);
    columns.push_back("mag_" + e.name);
  }
  CsvTable table(std::move(columns));
  for (size_t k = 0; k < z.size(); ++k) {
    Vec row{frequencies_hz[k]};
    for (const auto& e : entries) {
      require(0 <= e.row && e.row < z[k].rows() && 0 <= e.col &&
                  e.col < z[k].cols(),
              "sweep_to_csv: entry out of range");
      const Complex v = z[k](e.row, e.col);
      row.push_back(v.real());
      row.push_back(v.imag());
      row.push_back(std::abs(v));
    }
    table.add_row(row);
  }
  return table;
}

CsvTable transient_to_csv(const TransientResult& result,
                          const std::vector<std::string>& names) {
  const Index outs = result.outputs.cols();
  std::vector<std::string> columns{"t_s"};
  for (Index j = 0; j < outs; ++j)
    columns.push_back(static_cast<Index>(names.size()) > j
                          ? names[static_cast<size_t>(j)]
                          : "out" + std::to_string(j));
  CsvTable table(std::move(columns));
  for (size_t k = 0; k < result.time.size(); ++k) {
    Vec row{result.time[k]};
    for (Index j = 0; j < outs; ++j)
      row.push_back(result.outputs(static_cast<Index>(k), j));
    table.add_row(row);
  }
  return table;
}

}  // namespace sympvl
