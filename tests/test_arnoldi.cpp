#include "mor/arnoldi.hpp"

#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "mor/moments.hpp"
#include "mor/sympvl.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

TEST(Arnoldi, ExactOnTinyCircuit) {
  Netlist nl;
  nl.add_resistor(1, 2, 100.0);
  nl.add_resistor(2, 0, 200.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_capacitor(2, 0, 2e-12);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  ArnoldiOptions opt;
  opt.order = 2;
  const ArnoldiModel m = arnoldi_reduce(sys, opt);
  for (double f : {1e7, 1e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const Complex exact = ac_z_matrix(sys, s)(0, 0);
    EXPECT_NEAR(std::abs(m.eval(s)(0, 0) - exact), 0.0, 1e-8 * std::abs(exact));
  }
}

TEST(Arnoldi, MatchesHalfTheMoments) {
  // Congruence projection matches ⌊n/p⌋ moments (vs 2⌊n/p⌋ for SyMPVL).
  const Netlist nl = random_rc({.nodes = 30, .ports = 1, .seed = 2});
  const MnaSystem sys = build_mna(nl);
  const Index n = 6;
  ArnoldiOptions opt;
  opt.order = n;
  const ArnoldiModel m = arnoldi_reduce(sys, opt);
  const Vec exact = exact_moments_scalar(sys, n + 1);
  for (Index k = 0; k < n; ++k)
    EXPECT_NEAR(m.moment(k)(0, 0), exact[static_cast<size_t>(k)],
                1e-6 * std::abs(exact[static_cast<size_t>(k)]))
        << "moment " << k;
}

TEST(Arnoldi, SymmetricProjectionMatchesTwoNMomentsLikePade) {
  // For SYMMETRIC pencils the one-sided Galerkin projection depends only
  // on the Krylov span, and with span(V) = K_n the projection coincides
  // with the (G̃-inner-product) Lanczos/Padé approximation: BOTH methods
  // match 2n moments on RLC circuits. The general ⌊n/p⌋-vs-2⌊n/p⌋ gap of
  // [16] applies to nonsymmetric systems; what distinguishes SyMPVL here
  // is cost (short recurrences, banded reduced matrices) — see
  // bench_arnoldi_ablation.
  const Netlist nl = random_rc({.nodes = 40, .ports = 1, .seed = 3});
  const MnaSystem sys = build_mna(nl);
  const Index n = 5;
  ArnoldiOptions aopt;
  aopt.order = n;
  const ArnoldiModel arn = arnoldi_reduce(sys, aopt);
  SympvlOptions sopt;
  sopt.order = n;
  const ReducedModel rom = sympvl_reduce(sys, sopt);
  const Vec exact = exact_moments_scalar(sys, 2 * n + 1);
  for (Index k = 0; k < 2 * n; ++k) {
    const double scale = std::abs(exact[static_cast<size_t>(k)]);
    EXPECT_NEAR(rom.moment(k)(0, 0), exact[static_cast<size_t>(k)], 1e-5 * scale)
        << "pade moment " << k;
    EXPECT_NEAR(arn.moment(k)(0, 0), exact[static_cast<size_t>(k)], 1e-5 * scale)
        << "projection moment " << k;
  }
  // Moment 2n is the first the Padé theory stops guaranteeing.
  const Index k = 2 * n;
  const double scale = std::abs(exact[static_cast<size_t>(k)]);
  EXPECT_GT(std::abs(rom.moment(k)(0, 0) - exact[static_cast<size_t>(k)]),
            1e-9 * scale);
}

TEST(Arnoldi, RcModelsPassivePreserving) {
  // Congruence projection of PSD pencils keeps poles in the left half
  // plane at every order (the [16]/PRIMA guarantee).
  const Netlist nl = random_rc({.nodes = 30, .ports = 2, .seed = 4});
  const MnaSystem sys = build_mna(nl);
  for (Index order : {2, 4, 8, 12}) {
    ArnoldiOptions opt;
    opt.order = order;
    const ArnoldiModel m = arnoldi_reduce(sys, opt);
    EXPECT_TRUE(m.is_stable()) << "order " << order;
  }
}

TEST(Arnoldi, BlockDeflationOnRedundantPorts) {
  Netlist nl;
  nl.add_resistor(1, 2, 10.0);
  nl.add_resistor(2, 0, 10.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_capacitor(2, 0, 1e-12);
  nl.add_port(1, 0, "a");
  nl.add_port(1, 0, "b");  // duplicate
  const MnaSystem sys = build_mna(nl);
  ArnoldiOptions opt;
  opt.order = 4;
  const ArnoldiModel m = arnoldi_reduce(sys, opt);
  // The duplicate column deflates; the model still evaluates and is exact
  // (2-node circuit, order ≥ 2 achieved).
  const Complex s(0.0, 2.0 * M_PI * 1e9);
  const CMat z = m.eval(s);
  const CMat exact = ac_z_matrix(sys, s);
  EXPECT_NEAR(std::abs(z(0, 0) - exact(0, 0)), 0.0, 1e-8 * std::abs(exact(0, 0)));
  EXPECT_NEAR(std::abs(z(1, 1) - exact(0, 0)), 0.0, 1e-8 * std::abs(exact(0, 0)));
}

TEST(Arnoldi, ConvergesWithOrder) {
  const Netlist nl = random_rc({.nodes = 50, .ports = 2, .seed = 5});
  const MnaSystem sys = build_mna(nl);
  const Vec freqs = log_frequency_grid(1e6, 1e10, 10);
  const auto exact = ac_sweep(sys, freqs);
  double prev = 1e100;
  for (Index order : {4, 8, 16, 32}) {
    ArnoldiOptions opt;
    opt.order = order;
    const ArnoldiModel m = arnoldi_reduce(sys, opt);
    double err = 0.0;
    for (size_t k = 0; k < freqs.size(); ++k) {
      const Complex s(0.0, 2.0 * M_PI * freqs[k]);
      const CMat z = m.eval(s);
      for (Index i = 0; i < 2; ++i)
        for (Index j = 0; j < 2; ++j)
          err = std::max(err, std::abs(z(i, j) - exact[k](i, j)) /
                                  (std::abs(exact[k](i, j)) + 1e-300));
    }
    EXPECT_LT(err, prev * 1.5);
    prev = err;
  }
  EXPECT_LT(prev, 1e-5);
}

TEST(Arnoldi, InvalidOrder) {
  const Netlist nl = random_rc({.nodes = 5, .ports = 1, .seed = 6});
  ArnoldiOptions opt;
  opt.order = 0;
  EXPECT_THROW(arnoldi_reduce(build_mna(nl), opt), Error);
}

}  // namespace
}  // namespace sympvl
