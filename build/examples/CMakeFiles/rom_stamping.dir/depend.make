# Empty dependencies file for rom_stamping.
# This may be replaced when dependencies are built.
