
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ac.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_ac.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_ac.cpp.o.d"
  "/root/repo/tests/test_arnoldi.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_arnoldi.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_arnoldi.cpp.o.d"
  "/root/repo/tests/test_awe.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_awe.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_awe.cpp.o.d"
  "/root/repo/tests/test_balanced.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_balanced.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_balanced.cpp.o.d"
  "/root/repo/tests/test_crosscheck.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_crosscheck.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_crosscheck.cpp.o.d"
  "/root/repo/tests/test_dense.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_dense.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_dense.cpp.o.d"
  "/root/repo/tests/test_dense_factor.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_dense_factor.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_dense_factor.cpp.o.d"
  "/root/repo/tests/test_eig.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_eig.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_eig.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_lanczos.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_lanczos.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_lanczos.cpp.o.d"
  "/root/repo/tests/test_mna.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_mna.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_mna.cpp.o.d"
  "/root/repo/tests/test_moments.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_moments.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_moments.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_network_params.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_network_params.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_network_params.cpp.o.d"
  "/root/repo/tests/test_nonlinear.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_nonlinear.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_nonlinear.cpp.o.d"
  "/root/repo/tests/test_ordering.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_ordering.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_ordering.cpp.o.d"
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_parser.cpp.o.d"
  "/root/repo/tests/test_passivity.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_passivity.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_passivity.cpp.o.d"
  "/root/repo/tests/test_postprocess.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_postprocess.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_postprocess.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_pvl.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_pvl.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_pvl.cpp.o.d"
  "/root/repo/tests/test_rational.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_rational.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_rational.cpp.o.d"
  "/root/repo/tests/test_reduced_model.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_reduced_model.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_reduced_model.cpp.o.d"
  "/root/repo/tests/test_sensitivity.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_sensitivity.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_sensitivity.cpp.o.d"
  "/root/repo/tests/test_session.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_session.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_session.cpp.o.d"
  "/root/repo/tests/test_sparse.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_sparse.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_sparse.cpp.o.d"
  "/root/repo/tests/test_sparse_ldlt.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_sparse_ldlt.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_sparse_ldlt.cpp.o.d"
  "/root/repo/tests/test_sparse_lu.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_sparse_lu.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_sparse_lu.cpp.o.d"
  "/root/repo/tests/test_sympvl.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_sympvl.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_sympvl.cpp.o.d"
  "/root/repo/tests/test_synthesis.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_synthesis.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_synthesis.cpp.o.d"
  "/root/repo/tests/test_sypvl.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_sypvl.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_sypvl.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_touchstone.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_touchstone.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_touchstone.cpp.o.d"
  "/root/repo/tests/test_transient.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_transient.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_transient.cpp.o.d"
  "/root/repo/tests/test_vectorfit.cpp" "tests/CMakeFiles/sympvl_tests.dir/test_vectorfit.cpp.o" "gcc" "tests/CMakeFiles/sympvl_tests.dir/test_vectorfit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sympvl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
