# Empty compiler generated dependencies file for bench_wideband.
# This may be replaced when dependencies are built.
