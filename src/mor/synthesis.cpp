#include "mor/synthesis.hpp"

#include <cmath>

#include "linalg/dense_factor.hpp"
#include "linalg/eig.hpp"

namespace sympvl {

namespace {

void check_rc_model(const ReducedModel& model, const char* who) {
  require(model.variable() == SVariable::kS && model.s_prefactor() == 0 &&
              model.shift() == 0.0,
          std::string(who) + ": requires an unshifted s-domain (RC) model");
  // Δ must be the identity (J = I path, Section 5).
  const Mat& d = model.delta();
  for (Index i = 0; i < d.rows(); ++i)
    for (Index j = 0; j < d.cols(); ++j) {
      const double want = (i == j) ? 1.0 : 0.0;
      require(std::abs(d(i, j) - want) < 1e-8,
              std::string(who) + ": model Delta is not the identity (not an "
                                 "RC-class reduction)");
    }
}

// Stamps a symmetric nodal matrix as two-terminal elements: off-diagonal
// (i,j) becomes an element of value −m(i,j) between nodes i+1 and j+1; the
// row sum becomes the element to ground.
template <typename AddElement>
void realize_nodal_matrix(const Mat& m, double drop_abs, const AddElement& add) {
  const Index n = m.rows();
  for (Index i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (Index j = 0; j < n; ++j) row_sum += m(i, j);
    if (std::abs(row_sum) > drop_abs) add(i + 1, Index(0), row_sum);
    for (Index j = i + 1; j < n; ++j) {
      const double v = -m(i, j);
      if (std::abs(v) > drop_abs) add(i + 1, j + 1, v);
    }
  }
}

}  // namespace

SynthesizedCircuit synthesize_congruence_rc(const ReducedModel& model,
                                            const SynthesisOptions& options) {
  check_rc_model(model, "synthesize_congruence_rc");
  const Index n = model.order();
  const Index p = model.port_count();
  require(n >= p, "synthesize_congruence_rc: order below port count");

  // Full QR of ρ: ρ = U·R with U the first p columns of the full factor.
  const DenseQR qr(model.rho());
  require(qr.rank() == p,
          "synthesize_congruence_rc: rho is rank-deficient (redundant ports "
          "were deflated); synthesize the reduced port set instead");
  const Mat qfull = qr.q_full();
  const Mat r = qr.r();
  // Q = [U·R⁻ᵀ | U⊥]: first p columns solve Rᵀ·(cols) = Uᵀ rows… computed
  // column-wise below.
  Mat q(n, n);
  // U·R⁻ᵀ: for each column c of R⁻ᵀ, R⁻ᵀ = (R⁻¹)ᵀ; column c solves Rᵀy = e_c.
  Mat rt = r.transpose();
  const LU rt_lu(rt);
  require(!rt_lu.singular(), "synthesize_congruence_rc: singular R factor");
  for (Index c = 0; c < p; ++c) {
    Vec e(static_cast<size_t>(p), 0.0);
    e[static_cast<size_t>(c)] = 1.0;
    const Vec y = rt_lu.solve(e);  // p-vector
    for (Index i = 0; i < n; ++i) {
      double acc = 0.0;
      for (Index k = 0; k < p; ++k) acc += qfull(i, k) * y[static_cast<size_t>(k)];
      q(i, c) = acc;
    }
  }
  for (Index c = p; c < n; ++c)
    for (Index i = 0; i < n; ++i) q(i, c) = qfull(i, c);

  // Nodal pair: Ĝ = QᵀQ, Ĉ = QᵀTQ.
  const Mat ghat = q.transpose() * q;
  const Mat chat = q.transpose() * (model.t() * q);

  // Conductance and capacitance matrices live on completely different
  // scales (Ĝ is O(1), Ĉ carries the circuit time constants), so each is
  // thresholded against its own largest entry.
  const double drop_g = options.drop_tolerance * ghat.max_abs();
  const double drop_c = options.drop_tolerance * chat.max_abs();

  SynthesizedCircuit out;
  out.netlist.set_allow_negative(true);
  out.netlist.ensure_nodes(n + 1);
  realize_nodal_matrix(ghat, drop_g, [&](Index a, Index b, double g) {
    out.netlist.add_resistor(a, b, 1.0 / g);
  });
  realize_nodal_matrix(chat, drop_c, [&](Index a, Index b, double c) {
    out.netlist.add_capacitor(a, b, c);
  });
  for (Index k = 0; k < p; ++k) {
    out.netlist.add_port(k + 1, 0, "P" + std::to_string(k + 1));
    out.port_nodes.push_back(k + 1);
  }
  return out;
}

SynthesizedCircuit synthesize_foster_siso(const ReducedModel& model,
                                          const SynthesisOptions& options) {
  check_rc_model(model, "synthesize_foster_siso");
  require(model.port_count() == 1,
          "synthesize_foster_siso: model must be single-port");
  const Index n = model.order();
  const SymmetricEig eig = eig_symmetric(model.t());

  // Residues rᵢ = (Σ_k ρ(k)·q(k,i))².
  Vec residues(static_cast<size_t>(n));
  double rmax = 0.0;
  for (Index i = 0; i < n; ++i) {
    double acc = 0.0;
    for (Index k = 0; k < n; ++k) acc += model.rho()(k, 0) * eig.vectors(k, i);
    residues[static_cast<size_t>(i)] = acc * acc;
    rmax = std::max(rmax, acc * acc);
  }

  SynthesizedCircuit out;
  Index prev = 0;  // chain builds from the port toward ground
  std::vector<std::pair<double, double>> sections;  // (R, C or 0)
  for (Index i = 0; i < n; ++i) {
    const double r = residues[static_cast<size_t>(i)];
    if (r <= options.drop_tolerance * std::max(1.0, rmax)) continue;
    const double lambda = std::max(0.0, eig.values[static_cast<size_t>(i)]);
    sections.emplace_back(r, lambda > 0.0 ? lambda / r : 0.0);
  }
  require(!sections.empty(), "synthesize_foster_siso: all residues dropped");

  const Index port_node = out.netlist.new_node();
  prev = port_node;
  for (size_t k = 0; k < sections.size(); ++k) {
    const Index next = (k + 1 == sections.size()) ? 0 : out.netlist.new_node();
    out.netlist.add_resistor(prev, next, sections[k].first);
    if (sections[k].second > 0.0)
      out.netlist.add_capacitor(prev, next, sections[k].second);
    prev = next;
  }
  out.netlist.add_port(port_node, 0, "P1");
  out.port_nodes.push_back(port_node);
  return out;
}

}  // namespace sympvl
