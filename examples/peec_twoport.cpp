// PEEC LC two-port reduction (the Section 7.1 scenario): a lossless LC
// grid with singular G forces the frequency shift of eq. 26; SyMPVL then
// reproduces the two-port transfer function with a fraction of the states.
//
//   $ ./peec_twoport
#include <cstdio>

#include "sympvl.hpp"

int main() {
  using namespace sympvl;

  const PeecCircuit peec = make_peec_circuit();
  std::printf("PEEC grid: %lld nodes, %zu L, %zu K, %zu C (LC only)\n",
              static_cast<long long>(peec.netlist.node_count() - 1),
              peec.netlist.inductors().size(), peec.netlist.mutuals().size(),
              peec.netlist.capacitors().size());

  ReduceOptions opt;
  opt.order = 50;
  opt.s0 = std::pow(2.0 * M_PI * 3.5e9, 2.0);  // expand mid-band (eq. 26)
  const ReduceResult result = reduce(peec.system, opt);
  const ReducedModel& rom = *result.model.as_reduced();
  std::printf("SyMPVL order %lld; frequency shift s0 = %.3e "
              "(G is singular, eq. 26)\n",
              static_cast<long long>(rom.order()), result.report.s0_used);

  const Vec freqs = linear_frequency_grid(1e8, 7.5e9, 25);
  const SweepResult exact = sweep(peec.system, freqs, {.throw_on_failure = true});
  std::printf("\n%-12s %-14s %-14s %-14s %-14s\n", "f [Hz]", "|Z11| exact",
              "|Z11| n=50", "|Z21| exact", "|Z21| n=50");
  for (size_t k = 0; k < freqs.size(); ++k) {
    const Complex s(0.0, 2.0 * M_PI * freqs[k]);
    const CMat zr = rom.eval(s);
    std::printf("%-12.3e %-14.6e %-14.6e %-14.6e %-14.6e\n", freqs[k],
                std::abs(exact[k](0, 0)), std::abs(zr(0, 0)),
                std::abs(exact[k](1, 0)), std::abs(zr(1, 0)));
  }

  // LC reductions are lossless: every pole sits on the imaginary axis.
  double worst = 0.0;
  for (const Complex& pole : rom.poles())
    worst = std::max(worst, std::abs(pole.real()) / (1.0 + std::abs(pole)));
  std::printf("\nmax |Re pole| / |pole| = %.2e (lossless -> 0)\n", worst);
  return 0;
}
