#include "obs/memstat.hpp"

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace sympvl::obs {

namespace {

struct GaugeRegistry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<ByteGauge>> by_name;
};

// Leaked: MemCharge destructors run during static destruction (e.g. a
// cached factorization torn down at exit) and must find a live gauge.
GaugeRegistry& registry() {
  static GaugeRegistry* r = new GaugeRegistry;
  return *r;
}

}  // namespace

void ByteGauge::add(std::int64_t delta) {
  const std::int64_t now = cur_.fetch_add(delta, std::memory_order_relaxed) + delta;
  std::int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void ByteGauge::reset_peak() {
  peak_.store(cur_.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

ByteGauge& byte_gauge(const char* name) {
  GaugeRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto& slot = r.by_name[name];
  if (!slot) slot = std::make_unique<ByteGauge>();
  return *slot;
}

std::vector<ByteGaugeSnapshot> snapshot_byte_gauges() {
  std::vector<ByteGaugeSnapshot> out;
  GaugeRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  out.reserve(r.by_name.size());
  for (const auto& [name, g] : r.by_name)
    out.push_back({name, g->value(), g->peak()});
  return out;
}

MemCharge::MemCharge(ByteGauge& gauge, std::int64_t bytes)
    : gauge_(&gauge), bytes_(bytes) {
  if (bytes_ != 0) gauge_->add(bytes_);
}

MemCharge::MemCharge(const MemCharge& other)
    : gauge_(other.gauge_), bytes_(other.bytes_) {
  if (gauge_ && bytes_ != 0) gauge_->add(bytes_);
}

MemCharge& MemCharge::operator=(const MemCharge& other) {
  if (this == &other) return *this;
  reset();
  gauge_ = other.gauge_;
  bytes_ = other.bytes_;
  if (gauge_ && bytes_ != 0) gauge_->add(bytes_);
  return *this;
}

MemCharge::MemCharge(MemCharge&& other) noexcept
    : gauge_(other.gauge_), bytes_(other.bytes_) {
  other.gauge_ = nullptr;
  other.bytes_ = 0;
}

MemCharge& MemCharge::operator=(MemCharge&& other) noexcept {
  if (this == &other) return *this;
  reset();
  gauge_ = other.gauge_;
  bytes_ = other.bytes_;
  other.gauge_ = nullptr;
  other.bytes_ = 0;
  return *this;
}

MemCharge::~MemCharge() { reset(); }

void MemCharge::set(std::int64_t bytes) {
  if (gauge_ && bytes != bytes_) gauge_->add(bytes - bytes_);
  bytes_ = bytes;
}

void MemCharge::reset() {
  if (gauge_ && bytes_ != 0) gauge_->add(-bytes_);
  gauge_ = nullptr;
  bytes_ = 0;
}

std::int64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(ru.ru_maxrss);  // already bytes on macOS
#else
  return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::int64_t current_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  long long pages_total = 0, pages_resident = 0;
  const int got = std::fscanf(f, "%lld %lld", &pages_total, &pages_resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::int64_t>(pages_resident) *
         static_cast<std::int64_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

namespace detail {

void reset_byte_gauge_peaks() {
  GaugeRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, g] : r.by_name) g->reset_peak();
}

}  // namespace detail

}  // namespace sympvl::obs
