// Experiment E3 — Figure 4 of the paper: 64-pin package, crosstalk
// voltage transfer from pin 1 exterior to the *neighboring* pin 2
// interior terminal, reduced orders 48/64/80 vs exact.
//
// The crosstalk path runs entirely through the package's coupling
// capacitances and mutual inductances, so it converges slower than the
// direct pin-1 path of Figure 3 — the same qualitative ordering as in the
// paper, where the n = 48 curve deviates visibly and n = 80 matches.
#include "bench_util.hpp"
#include "gen/package.hpp"
#include "mor/sympvl.hpp"
#include "sim/ac.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

const PackageCircuit& package() {
  static const PackageCircuit p = make_package_circuit();
  return p;
}

const MnaSystem& system_ref() {
  static const MnaSystem sys = build_mna(package().netlist, MnaForm::kGeneral);
  return sys;
}

void print_tables() {
  const MnaSystem& sys = system_ref();
  const double s0 = automatic_shift(sys);
  const Vec freqs = log_frequency_grid(1e7, 5e9, 40);
  const auto exact = ac_sweep(sys, freqs);

  const std::vector<Index> orders{48, 64, 80};
  std::vector<ReducedModel> roms;
  for (Index n : orders) {
    SympvlOptions opt;
    opt.order = n;
    opt.s0 = s0;
    roms.push_back(sympvl_reduce(sys, opt));
  }

  const Index drive = package().ext_port(0);
  const Index sense = package().int_port(1);  // neighboring signal pin
  csv_begin("fig4: |V(pin2 int)/V(pin1 ext)| (crosstalk) vs frequency",
            {"f_hz", "H_exact", "H_n48", "H_n64", "H_n80"});
  std::vector<double> err(orders.size(), 0.0);
  for (size_t k = 0; k < freqs.size(); ++k) {
    const Complex s(0.0, 2.0 * M_PI * freqs[k]);
    const Complex h_exact = voltage_transfer(exact[k], drive, sense);
    std::vector<double> row{freqs[k], std::abs(h_exact)};
    for (size_t m = 0; m < roms.size(); ++m) {
      const Complex h = voltage_transfer(roms[m].eval(s), drive, sense);
      row.push_back(std::abs(h));
      err[m] = std::max(err[m],
                        std::abs(h - h_exact) / (std::abs(h_exact) + 1e-300));
    }
    csv_row(row);
  }
  csv_begin("fig4: max relative error of crosstalk H vs order",
            {"order", "max_rel_err"});
  for (size_t m = 0; m < orders.size(); ++m)
    csv_row({static_cast<double>(orders[m]), err[m]});
}

void bm_rom_eval_cost_by_order(benchmark::State& state) {
  const MnaSystem& sys = system_ref();
  SympvlOptions opt;
  opt.order = static_cast<Index>(state.range(0));
  opt.s0 = automatic_shift(sys);
  const ReducedModel rom = sympvl_reduce(sys, opt);
  for (auto _ : state) {
    const CMat z = rom.eval(Complex(0.0, 2.0 * M_PI * 1e9));
    benchmark::DoNotOptimize(z(0, 0));
  }
}
BENCHMARK(bm_rom_eval_cost_by_order)->Arg(48)->Arg(64)->Arg(80)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

SYMPVL_BENCH_MAIN(print_tables)
