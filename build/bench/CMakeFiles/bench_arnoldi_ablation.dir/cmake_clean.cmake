file(REMOVE_RECURSE
  "CMakeFiles/bench_arnoldi_ablation.dir/bench_arnoldi_ablation.cpp.o"
  "CMakeFiles/bench_arnoldi_ablation.dir/bench_arnoldi_ablation.cpp.o.d"
  "bench_arnoldi_ablation"
  "bench_arnoldi_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arnoldi_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
