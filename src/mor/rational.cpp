#include "mor/rational.hpp"

#include <cmath>
#include <memory>

#include "linalg/factor_cache.hpp"
#include "linalg/sparse_lu.hpp"
#include "mor/pencil.hpp"

namespace sympvl {

namespace {

// Shifted solver: (G + s₀C)⁻¹ — symmetric LDLᵀ acquired through the
// shared FactorCache (a multipoint run revisiting a shift, or a SyMPVL
// run at the same point, reuses the factorization), with an uncached
// pivoted-LU fallback for pencils the unpivoted LDLᵀ cannot handle.
class ShiftedSolver {
 public:
  ShiftedSolver(const MnaSystem& sys, double shift, FactorCache* cache) {
    PencilFactorOptions opt;
    opt.shift = shift;
    try {
      FactorCache& c = cache != nullptr ? *cache : FactorCache::global();
      const PencilFingerprint fp = fingerprint_pencil(sys.G, sys.C);
      pencil_ = c.acquire(fp, opt, [&] {
        return std::make_shared<const FactorizedPencil>(sys.G, sys.C, opt);
      });
    } catch (const Error&) {
      const SMat gt = assemble_pencil(sys.G, sys.C, shift);
      lu_ = std::make_unique<LUSparse>(gt, Ordering::kRCM,
                                       /*pivot_threshold=*/1.0,
                                       /*zero_pivot_tol=*/1e-12);
    }
  }
  Vec solve(const Vec& b) const {
    return pencil_ ? pencil_->solve(b) : lu_->solve(b);
  }

 private:
  std::shared_ptr<const FactorizedPencil> pencil_;
  std::unique_ptr<LUSparse> lu_;
};

}  // namespace

ArnoldiModel rational_reduce(const MnaSystem& sys,
                             const RationalOptions& options) {
  require(!options.shifts.empty(), "rational_reduce: no expansion points");
  require(options.iterations_per_shift >= 1,
          "rational_reduce: iterations_per_shift must be >= 1");
  const Index p = sys.port_count();
  require(p >= 1, "rational_reduce: system has no ports");

  // Union basis over all expansion points, orthonormalized with doubly
  // applied modified Gram-Schmidt and norm-relative deflation.
  std::vector<Vec> basis;
  for (double shift : options.shifts) {
    require(shift >= 0.0, "rational_reduce: shifts must be real and >= 0");
    const ShiftedSolver solver(sys, shift, options.factor_cache);
    std::vector<Vec> block;
    for (Index j = 0; j < p; ++j) block.push_back(solver.solve(sys.B.col(j)));
    for (Index it = 0; it < options.iterations_per_shift; ++it) {
      std::vector<Vec> accepted =
          mgs_union_append(basis, std::move(block), options.deflation_tol);
      if (it + 1 == options.iterations_per_shift) break;
      block.clear();
      for (const auto& q : accepted)
        block.push_back(solver.solve(sys.C.multiply(q)));
      if (block.empty()) break;
    }
  }
  require(!basis.empty(), "rational_reduce: basis deflated to nothing");
  return congruence_project(sys, basis);
}

std::vector<Vec> mgs_union_append(std::vector<Vec>& basis,
                                  std::vector<Vec> block,
                                  double deflation_tol) {
  std::vector<Vec> accepted;
  for (auto& w : block) {
    const double ref = norm2(w);
    if (ref == 0.0) continue;
    for (int pass = 0; pass < 2; ++pass)
      for (const auto& q : basis) {
        const double h = dot(q, w);
        axpy(-h, q, w);
      }
    const double nrm = norm2(w);
    if (nrm <= deflation_tol * ref) continue;
    scale(w, 1.0 / nrm);
    basis.push_back(w);
    accepted.push_back(w);
  }
  return accepted;
}

ArnoldiModel congruence_project(const MnaSystem& sys,
                                const std::vector<Vec>& basis) {
  const Index n = static_cast<Index>(basis.size());
  const Index p = sys.port_count();
  require(n >= 1, "congruence_project: empty basis");
  Mat gr(n, n), cr(n, n), br(n, p);
  std::vector<Vec> gv(static_cast<size_t>(n)), cv(static_cast<size_t>(n));
  for (Index j = 0; j < n; ++j) {
    gv[static_cast<size_t>(j)] = sys.G.multiply(basis[static_cast<size_t>(j)]);
    cv[static_cast<size_t>(j)] = sys.C.multiply(basis[static_cast<size_t>(j)]);
  }
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j) {
      gr(i, j) = dot(basis[static_cast<size_t>(i)], gv[static_cast<size_t>(j)]);
      cr(i, j) = dot(basis[static_cast<size_t>(i)], cv[static_cast<size_t>(j)]);
    }
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < p; ++j)
      br(i, j) = dot(basis[static_cast<size_t>(i)], sys.B.col(j));
  return ArnoldiModel(std::move(gr), std::move(cr), std::move(br), sys.variable,
                      sys.s_prefactor, /*s0=*/0.0);
}

Vec rational_shifts_for_band(const MnaSystem& sys, double f_min, double f_max,
                             Index count) {
  require(f_min > 0.0 && f_max > f_min && count >= 1,
          "rational_shifts_for_band: invalid band");
  Vec shifts(static_cast<size_t>(count));
  const double l0 = std::log10(f_min);
  const double l1 = std::log10(f_max);
  for (Index k = 0; k < count; ++k) {
    const double f =
        std::pow(10.0, count == 1 ? 0.5 * (l0 + l1)
                                  : l0 + (l1 - l0) * static_cast<double>(k) /
                                             static_cast<double>(count - 1));
    const double w = 2.0 * M_PI * f;
    shifts[static_cast<size_t>(k)] =
        (sys.variable == SVariable::kS) ? w : w * w;
  }
  return shifts;
}

}  // namespace sympvl
