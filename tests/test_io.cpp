#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "gen/random_circuit.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

TEST(Csv, BuildAndAccess) {
  CsvTable t({"a", "b"});
  t.add_row({1.0, 2.0});
  t.add_row({3.0, 4.0});
  EXPECT_EQ(t.row_count(), 2);
  EXPECT_EQ(t.column_count(), 2);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 3.0);
  const Vec b = t.column("b");
  EXPECT_DOUBLE_EQ(b[1], 4.0);
  EXPECT_TRUE(t.has_column("a"));
  EXPECT_FALSE(t.has_column("c"));
  EXPECT_THROW(t.column("c"), Error);
}

TEST(Csv, Validation) {
  EXPECT_THROW(CsvTable(std::vector<std::string>{}), Error);
  EXPECT_THROW(CsvTable({"a,b"}), Error);
  CsvTable t({"a"});
  EXPECT_THROW(t.add_row({1.0, 2.0}), Error);
  EXPECT_THROW(t.at(0, 0), Error);
}

TEST(Csv, RoundTripFullPrecision) {
  CsvTable t({"x", "y"});
  t.add_row({1.0 / 3.0, 1e-300});
  t.add_row({-2.718281828459045, 6.022e23});
  const CsvTable back = CsvTable::parse(t.to_string());
  ASSERT_EQ(back.row_count(), 2);
  for (Index i = 0; i < 2; ++i)
    for (Index j = 0; j < 2; ++j)
      EXPECT_DOUBLE_EQ(back.at(i, j), t.at(i, j));
  EXPECT_EQ(back.columns(), t.columns());
}

TEST(Csv, FileRoundTrip) {
  CsvTable t({"f", "v"});
  t.add_row({1e9, 0.5});
  const std::string path = "/tmp/sympvl_csv_test.csv";
  t.write_file(path);
  const CsvTable back = CsvTable::read_file(path);
  EXPECT_DOUBLE_EQ(back.at(0, 0), 1e9);
  std::remove(path.c_str());
  EXPECT_THROW(CsvTable::read_file("/nonexistent/x.csv"), Error);
}

TEST(Csv, ParseRejectsGarbage) {
  EXPECT_THROW(CsvTable::parse(""), Error);
  EXPECT_THROW(CsvTable::parse("a,b\n1,zzz\n"), Error);
}

TEST(Csv, SweepExport) {
  const Netlist nl = random_rc({.nodes = 15, .ports = 2, .seed = 1});
  const MnaSystem sys = build_mna(nl);
  const Vec freqs = log_frequency_grid(1e7, 1e9, 5);
  const auto z = ac_sweep(sys, freqs);
  const CsvTable t =
      sweep_to_csv(freqs, z, {{0, 0, "z11"}, {1, 0, "z21"}});
  EXPECT_EQ(t.row_count(), 5);
  EXPECT_TRUE(t.has_column("mag_z11"));
  EXPECT_TRUE(t.has_column("im_z21"));
  // Magnitude column is consistent with re/im.
  const Vec re = t.column("re_z11");
  const Vec im = t.column("im_z11");
  const Vec mag = t.column("mag_z11");
  for (size_t k = 0; k < 5; ++k)
    EXPECT_NEAR(mag[k], std::hypot(re[k], im[k]), 1e-12 * mag[k]);
}

TEST(Csv, TransientExport) {
  Netlist nl;
  nl.add_resistor(1, 0, 100.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  TransientOptions opt;
  opt.dt = 1e-11;
  opt.t_end = 1e-9;
  const auto res = simulate_ports_transient(
      sys, {[](double t) { return t > 0 ? 1e-3 : 0.0; }}, opt);
  const CsvTable t = transient_to_csv(res, {"v_port"});
  EXPECT_EQ(t.row_count(), static_cast<Index>(res.time.size()));
  EXPECT_TRUE(t.has_column("v_port"));
  EXPECT_DOUBLE_EQ(t.column("t_s")[0], 0.0);
}

}  // namespace
}  // namespace sympvl
