// Pathological-input coverage: every degenerate circuit below must yield
// a structured sympvl::Error (with an ErrorCode and stage) or a recovered
// model — never a crash, an opaque string-only throw, or a silent NaN.
#include <gtest/gtest.h>

#include <cmath>

#include "mor/driver.hpp"
#include "mor/sympvl.hpp"

namespace sympvl {
namespace {

bool finite_matrix(const CMat& z) {
  for (Index i = 0; i < z.rows(); ++i)
    for (Index j = 0; j < z.cols(); ++j)
      if (!std::isfinite(z(i, j).real()) || !std::isfinite(z(i, j).imag()))
        return false;
  return true;
}

// Node 1 touches only capacitors: the G row is structurally zero, so G is
// singular and only the shifted pencil of eq. 26 can be factored.
Netlist singular_g_netlist() {
  Netlist nl;
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_capacitor(1, 2, 2e-12);
  nl.add_resistor(2, 0, 50.0);
  nl.add_port(1, 0);
  return nl;
}

TEST(Robustness, SingularGWithoutShiftThrowsStructured) {
  const MnaSystem sys = build_mna(singular_g_netlist(), MnaForm::kGeneral);
  SympvlOptions opt;
  opt.order = 4;
  opt.s0 = 0.0;
  opt.auto_shift = false;  // forbid the eq. 26 recovery
  try {
    sympvl_reduce(sys, opt);
    FAIL() << "expected Error";
  } catch (const Error& ex) {
    EXPECT_EQ(ex.code(), ErrorCode::kSingular);
    EXPECT_FALSE(ex.context().stage.empty());
    // The message carries the attempt history, not just "failed".
    EXPECT_NE(std::string(ex.what()).find("attempt"), std::string::npos);
  }
}

TEST(Robustness, SingularGRecoversThroughAutoShift) {
  const MnaSystem sys = build_mna(singular_g_netlist(), MnaForm::kGeneral);
  SympvlOptions opt;
  opt.order = 4;
  SympvlReport report;
  const ReducedModel rom = sympvl_reduce(sys, opt, &report);
  EXPECT_NE(report.s0_used, 0.0);
  EXPECT_TRUE(report.recovered);
  EXPECT_GE(report.factor_attempts.size(), 2u);
  EXPECT_FALSE(report.factor_attempts.front().success);
  EXPECT_TRUE(report.factor_attempts.back().success);
  EXPECT_TRUE(finite_matrix(rom.eval(Complex(0.0, 2.0 * M_PI * 1e9))));
}

TEST(Robustness, DisconnectedCircuitFailsWithDiagnostics) {
  // Nodes 3-4 form an island with no path to the datum: the pencil block
  // is singular at EVERY shift, so no rung can succeed.
  Netlist nl;
  nl.add_resistor(1, 0, 100.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_port(1, 0);
  nl.add_resistor(3, 4, 10.0);
  nl.add_capacitor(3, 4, 1e-12);
  SympvlOptions opt;
  opt.order = 2;
  const auto res = run_sympvl(nl, opt);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status, ReductionStatus::kFailed);
  ASSERT_FALSE(res.diagnostics.empty());
  for (const ReductionIssue& issue : res.diagnostics) {
    EXPECT_NE(issue.code, ErrorCode::kUnknown);
    EXPECT_FALSE(issue.message.empty());
  }
  EXPECT_THROW(res.value(), Error);
}

TEST(Robustness, DuplicatedPortsDeflateNotCrash) {
  // Two ports on the same node pair: the starting block has two identical
  // columns, forcing an immediate deflation (Algorithm 1 step 1c).
  Netlist nl;
  nl.add_resistor(1, 2, 100.0);
  nl.add_resistor(2, 0, 200.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_capacitor(2, 0, 2e-12);
  nl.add_port(1, 0);
  nl.add_port(1, 0);  // duplicate
  const MnaSystem sys = build_mna(nl);
  SympvlOptions opt;
  opt.order = 2;
  const auto res = run_sympvl(sys, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_GE(res.report.deflations, 1);
  const CMat z = res.model.eval(Complex(0.0, 2.0 * M_PI * 1e8));
  EXPECT_TRUE(finite_matrix(z));
  // The duplicated port must see the same impedance as the original.
  EXPECT_NEAR(std::abs(z(0, 0) - z(1, 1)), 0.0, 1e-9 * std::abs(z(0, 0)));
}

TEST(Robustness, ZeroValuedElementsAreStructuredErrors) {
  Netlist nl;
  for (auto add : {+[](Netlist& n) { n.add_resistor(1, 0, 0.0); },
                   +[](Netlist& n) { n.add_capacitor(1, 0, 0.0); },
                   +[](Netlist& n) { n.add_inductor(1, 0, 0.0); }}) {
    try {
      add(nl);
      FAIL() << "expected Error";
    } catch (const Error& ex) {
      EXPECT_EQ(ex.code(), ErrorCode::kInvalidArgument);
      EXPECT_EQ(ex.context().stage, "netlist");
    }
  }
}

TEST(Robustness, ResistorOnlyCircuitHasNoAutomaticShift) {
  Netlist nl;
  nl.add_resistor(1, 0, 100.0);
  nl.add_resistor(1, 2, 50.0);
  nl.add_resistor(2, 0, 75.0);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl, MnaForm::kGeneral);
  try {
    automatic_shift(sys);
    FAIL() << "expected Error";
  } catch (const Error& ex) {
    EXPECT_EQ(ex.code(), ErrorCode::kInvalidArgument);
    EXPECT_EQ(ex.context().stage, "sympvl.auto_shift");
  }
}

}  // namespace
}  // namespace sympvl
