#include "mor/multipoint.hpp"

#include <cmath>
#include <utility>

#include "linalg/factor_cache.hpp"
#include "mor/rational.hpp"
#include "obs/obs.hpp"
#include "sim/ac.hpp"

namespace sympvl {

namespace {

constexpr double kTinySigma = 1e-300;

// Log-scale distance between a frequency point's |σ| and an expansion
// point; s₀ = 0 (DC expansion) is treated as a very small σ so it wins
// exactly the low end of the band.
double log_sigma(double sigma) {
  return std::log10(std::max(std::abs(sigma), kTinySigma));
}

double rel_err(const CMat& approx, const CMat& exact) {
  double diff = 0.0, ref = 0.0;
  for (Index i = 0; i < exact.rows(); ++i)
    for (Index j = 0; j < exact.cols(); ++j) {
      diff = std::max(diff, std::abs(approx(i, j) - exact(i, j)));
      ref = std::max(ref, std::abs(exact(i, j)));
    }
  return ref > 0.0 ? diff / ref : diff;
}

}  // namespace

struct MultipointSession::Impl {
  MnaSystem sys;  // copied: the session must not dangle
  MultipointOptions options;
  FactorCache* cache = nullptr;  // never null after construction
  Vec s0s;                       // expansion points, placement order
  std::vector<ReducedModel> models;
  ArnoldiModel stitched;  // union-basis wideband model (eval/sweep)
  MultipointReport report;

  Index nearest(double sigma_abs) const {
    const double target = log_sigma(sigma_abs);
    Index best = 0;
    double best_d = std::abs(target - log_sigma(s0s[0]));
    for (size_t k = 1; k < s0s.size(); ++k) {
      const double d = std::abs(target - log_sigma(s0s[k]));
      if (d < best_d) {
        best_d = d;
        best = static_cast<Index>(k);
      }
    }
    return best;
  }

  // (Re)builds one SyMPVL session per expansion point at the evenly split
  // order, then stitches the points into the union-basis wideband model.
  // Revisited points hit the factorization cache; the union projection
  // reuses the very factorizations the sessions just created.
  void build_models() {
    const Index per_point = std::max<Index>(
        1, options.total_order / static_cast<Index>(s0s.size()));
    models.clear();
    report.orders.clear();
    report.session_reports.clear();
    for (size_t k = 0; k < s0s.size(); ++k) {
      SympvlOptions opt = options.base;
      opt.order = per_point;
      opt.s0 = s0s[k];
      opt.factor_cache = cache;
      SympvlSession session(sys, opt);
      // The ladder may have moved the shift (singular G at σ = 0 with
      // auto_shift); record where the model actually expanded.
      s0s[k] = session.report().s0_used;
      models.push_back(session.current());
      report.orders.push_back(session.order());
      report.session_reports.push_back(session.report());
    }
    report.points = s0s;

    // Union-basis stitch: congruence-project the pencil onto the union of
    // the per-point Krylov spaces. Splitting total_order as
    // iterations × points × ports keeps the stitched order within the
    // total whenever total_order ≥ points · ports.
    RationalOptions ropt;
    ropt.shifts = s0s;
    ropt.iterations_per_shift = std::max<Index>(
        1, options.total_order /
               (static_cast<Index>(s0s.size()) * sys.port_count()));
    ropt.factor_cache = cache;
    stitched = rational_reduce(sys, ropt);
    report.stitched_order = stitched.order();
  }

  // Validates the stitched model against the exact engine on a log grid
  // over the band; returns the max relative error and fills `worst_f`.
  double validate(const AcSweepEngine& exact, const Vec& grid,
                  double* worst_f) const {
    const SweepResult ref = exact.sweep(grid);
    double worst = 0.0;
    if (worst_f != nullptr) *worst_f = grid[0];
    for (size_t k = 0; k < grid.size(); ++k) {
      if (!ref.ok(k)) continue;
      const Complex s(0.0, 2.0 * M_PI * grid[k]);
      const double e = rel_err(stitched.eval(s), ref[k]);
      if (e > worst) {
        worst = e;
        if (worst_f != nullptr) *worst_f = grid[k];
      }
    }
    return worst;
  }
};

MultipointSession::MultipointSession(const MnaSystem& sys,
                                     const MultipointOptions& options)
    : impl_(std::make_unique<Impl>()) {
  require(options.total_order >= 1, ErrorCode::kInvalidArgument,
          "MultipointSession: total_order must be >= 1",
          {.stage = "multipoint"});
  require(options.f_min > 0.0 && options.f_max > options.f_min,
          ErrorCode::kInvalidArgument,
          "MultipointSession: band [f_min, f_max] required",
          {.stage = "multipoint"});
  require(options.validation_points >= 2, ErrorCode::kInvalidArgument,
          "MultipointSession: validation_points must be >= 2",
          {.stage = "multipoint"});
  for (double s0 : options.s0_points)
    require(s0 >= 0.0, ErrorCode::kInvalidArgument,
            "MultipointSession: expansion points must be >= 0",
            {.stage = "multipoint"});

  Impl* impl = impl_.get();
  impl->sys = sys;
  impl->options = options;
  impl->cache =
      options.cache != nullptr ? options.cache : &FactorCache::global();

  obs::ScopedTimer span("multipoint.build");
  span.arg("total_order", options.total_order);
  const FactorCacheStats before = impl->cache->stats();

  const bool adaptive = options.s0_points.empty();
  if (adaptive) {
    // Start at the band's midpoint shift (log-center, mapped through the
    // pencil variable: ω or ω²).
    impl->s0s = rational_shifts_for_band(sys, options.f_min, options.f_max, 1);
  } else {
    impl->s0s = options.s0_points;
  }

  const Vec grid = log_frequency_grid(options.f_min, options.f_max,
                                      options.validation_points);
  const AcSweepEngine exact(sys, impl->cache);

  impl->build_models();
  double worst_f = 0.0;
  double err = impl->validate(exact, grid, &worst_f);
  span.arg("initial_error", err);

  if (adaptive) {
    while (err > options.target_error &&
           static_cast<Index>(impl->s0s.size()) < options.max_points) {
      // Bisect: expand at the worst-error frequency's pencil value.
      const double sigma =
          std::abs(sys.map_s(Complex(0.0, 2.0 * M_PI * worst_f)));
      bool duplicate = false;
      for (double s0 : impl->s0s)
        if (std::abs(log_sigma(sigma) - log_sigma(s0)) < 1e-6)
          duplicate = true;
      if (duplicate) break;  // refinement stalled on the same point
      impl->s0s.push_back(sigma);
      obs::instant("multipoint.refine",
                   {obs::arg("point", sigma), obs::arg("error", err)});
      impl->build_models();
      err = impl->validate(exact, grid, &worst_f);
    }
  }

  impl->report.max_rel_error = err;
  const FactorCacheStats after = impl->cache->stats();
  impl->report.factorizations = after.factorizations - before.factorizations;
  impl->report.cache_hits = after.hits - before.hits;
  span.arg("points", static_cast<Index>(impl->s0s.size()));
  span.arg("final_error", err);
}

MultipointSession::~MultipointSession() = default;
MultipointSession::MultipointSession(MultipointSession&&) noexcept = default;
MultipointSession& MultipointSession::operator=(MultipointSession&&) noexcept =
    default;

CMat MultipointSession::eval(Complex s) const {
  return impl_->stitched.eval(s);
}

SweepResult MultipointSession::sweep(const Vec& frequencies_hz) const {
  const Index p = impl_->sys.port_count();
  return detail::run_contained_sweep(frequencies_hz, p, p, [&](Index k) {
    return impl_->stitched.eval(
        Complex(0.0, 2.0 * M_PI * frequencies_hz[static_cast<size_t>(k)]));
  });
}

Index MultipointSession::point_count() const {
  return static_cast<Index>(impl_->s0s.size());
}

const std::vector<ReducedModel>& MultipointSession::models() const {
  return impl_->models;
}

const ArnoldiModel& MultipointSession::stitched() const {
  return impl_->stitched;
}

Index MultipointSession::model_index_for(Complex s) const {
  return impl_->nearest(std::abs(impl_->sys.map_s(s)));
}

const MultipointReport& MultipointSession::report() const {
  return impl_->report;
}

}  // namespace sympvl
