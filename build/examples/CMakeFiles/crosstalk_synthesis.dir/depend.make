# Empty dependencies file for crosstalk_synthesis.
# This may be replaced when dependencies are built.
