// The unified sweep entry point (sim/sweep_api.hpp) and the
// CacheOptions/KernelOptions plumbing of CommonReductionOptions: the
// free-function sweeps must match the member spellings bit for bit, and
// the option structs must actually reach the factorization layer (cache
// keys, SympvlReport telemetry, per-reduction bypass).
#include "sim/sweep_api.hpp"

#include <gtest/gtest.h>

#include "gen/package.hpp"
#include "gen/random_circuit.hpp"
#include "linalg/factor_cache.hpp"
#include "mor/sympvl.hpp"
#include "sympvl.hpp"  // the umbrella must compile standalone in a TU

namespace sympvl {
namespace {

MnaSystem small_rc() {
  return build_mna(random_rc({.nodes = 40, .ports = 2, .seed = 23}));
}

void expect_bit_identical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a.ok(k), b.ok(k));
    for (Index i = 0; i < a[k].rows(); ++i)
      for (Index j = 0; j < a[k].cols(); ++j) {
        ASSERT_EQ(a[k](i, j).real(), b[k](i, j).real());
        ASSERT_EQ(a[k](i, j).imag(), b[k](i, j).imag());
      }
  }
}

TEST(SweepApi, EngineOverloadMatchesMemberSweep) {
  const MnaSystem sys = small_rc();
  const Vec freqs = log_frequency_grid(1e6, 1e9, 13);
  FactorCache cache(8);
  const AcSweepEngine engine(sys, &cache);
  expect_bit_identical(sweep(engine, freqs), engine.sweep(freqs));
}

TEST(SweepApi, SystemOverloadMatchesEngine) {
  const MnaSystem sys = small_rc();
  const Vec freqs = log_frequency_grid(1e6, 1e9, 9);
  FactorCache cache(8);
  SweepOptions opt;
  opt.factor_cache = &cache;
  const SweepResult via_system = sweep(sys, freqs, opt);
  const AcSweepEngine engine(sys, &cache);
  expect_bit_identical(via_system, engine.sweep(freqs));
}

TEST(SweepApi, ReducedModelOverloadMatchesMemberSweep) {
  const MnaSystem sys = small_rc();
  SympvlOptions opt;
  opt.order = 8;
  const ReducedModel rom = sympvl_reduce(sys, opt);
  const Vec freqs = log_frequency_grid(1e6, 1e9, 11);
  expect_bit_identical(sweep(rom, freqs), rom.sweep(freqs));
}

TEST(SweepApi, ModalOverloadMatchesMemberValuesAndContains) {
  const MnaSystem sys = small_rc();
  SympvlOptions opt;
  opt.order = 8;
  const ModalModel modal = modal_decompose(sympvl_reduce(sys, opt));
  const Vec freqs = log_frequency_grid(1e6, 1e9, 11);
  const std::vector<CMat> member = modal.sweep(freqs);
  const SweepResult unified = sweep(modal, freqs);
  ASSERT_TRUE(unified.all_ok());
  ASSERT_EQ(unified.size(), member.size());
  for (size_t k = 0; k < member.size(); ++k)
    for (Index i = 0; i < member[k].rows(); ++i)
      for (Index j = 0; j < member[k].cols(); ++j) {
        ASSERT_EQ(unified[k](i, j).real(), member[k](i, j).real());
        ASSERT_EQ(unified[k](i, j).imag(), member[k](i, j).imag());
      }
}

// throw_on_failure needs a deterministically failing point, so its test
// lives in the fault-injection suite (test_fault.cpp,
// UnifiedSweepThrowOnFailure) where "sweep.point" can be armed.

// ---- Option plumbing: CommonReductionOptions::{cache, kernel}. ----

TEST(OptionPlumbing, KernelTelemetryReachesSympvlReport) {
  PackageOptions popt;
  popt.pins = 8;
  popt.segments = 4;
  const MnaSystem sys =
      build_mna(make_package_circuit(popt).netlist, MnaForm::kGeneral);
  FactorCache cache(4);

  SympvlOptions opt;
  opt.order = 8;
  opt.factor_cache = &cache;
  opt.kernel.path = KernelPath::kSupernodal;
  SympvlReport report;
  sympvl_reduce(sys, opt, &report);
  EXPECT_EQ(report.kernel_path, "supernodal");
  EXPECT_GT(report.supernode_count, 0);
  EXPECT_GE(report.max_panel_width, 1);
  EXPECT_EQ(report.factor_cache_hits, 0);
  EXPECT_GE(report.factor_cache_misses, 1);

  // Same reduction again: served from the cache, and the telemetry is
  // carried by the shared factorization.
  SympvlReport warm;
  sympvl_reduce(sys, opt, &warm);
  EXPECT_GE(warm.factor_cache_hits, 1);
  EXPECT_EQ(warm.supernode_count, report.supernode_count);

  // The simplicial spelling reports itself — and is a distinct cache
  // entry (different kernel key), so it factors fresh, not from the
  // supernodal entry.
  SympvlOptions simp = opt;
  simp.kernel.path = KernelPath::kSimplicial;
  SympvlReport simp_report;
  sympvl_reduce(sys, simp, &simp_report);
  EXPECT_EQ(simp_report.kernel_path, "simplicial");
  EXPECT_EQ(simp_report.supernode_count, 0);
  EXPECT_EQ(simp_report.factor_cache_hits, 0);
}

TEST(OptionPlumbing, CacheDisabledBypassesWithoutTouchingEntries) {
  const MnaSystem sys = small_rc();
  FactorCache cache(4);
  SympvlOptions opt;
  opt.order = 6;
  opt.factor_cache = &cache;
  opt.cache.enabled = false;

  SympvlReport first, second;
  sympvl_reduce(sys, opt, &first);
  sympvl_reduce(sys, opt, &second);
  EXPECT_EQ(cache.size(), 0u);  // nothing written
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(first.factor_cache_hits, 0);
  EXPECT_EQ(second.factor_cache_hits, 0);
  EXPECT_GE(second.factor_cache_misses, 1);
}

TEST(OptionPlumbing, CacheCapacityOptionResizes) {
  const MnaSystem sys = small_rc();
  FactorCache cache(32);
  SympvlOptions opt;
  opt.order = 6;
  opt.factor_cache = &cache;
  opt.cache.capacity = 2;
  sympvl_reduce(sys, opt);
  EXPECT_EQ(cache.capacity(), 2u);
}

TEST(OptionPlumbing, DisabledFactorCacheInstanceFactorsFresh) {
  const MnaSystem sys = small_rc();
  const PencilFingerprint fp = fingerprint_pencil(sys.G, sys.C);
  FactorCache cache(4);
  cache.set_enabled(false);
  EXPECT_FALSE(cache.enabled());
  PencilFactorOptions opt;
  bool hit = true;
  const auto a = cache.acquire(
      fp, opt,
      [&] { return std::make_shared<const FactorizedPencil>(sys.G, sys.C, opt); },
      &hit);
  EXPECT_FALSE(hit);
  const auto b = cache.acquire(
      fp, opt,
      [&] { return std::make_shared<const FactorizedPencil>(sys.G, sys.C, opt); },
      &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(a.get(), b.get());  // two fresh factorizations
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().factorizations, 2u);

  cache.set_enabled(true);
  const auto c = cache.acquire(
      fp, opt,
      [&] { return std::make_shared<const FactorizedPencil>(sys.G, sys.C, opt); },
      &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 1u);
  (void)c;
}

TEST(OptionPlumbing, SetCapacityEvictsDownToBound) {
  const MnaSystem sys = small_rc();
  const PencilFingerprint fp = fingerprint_pencil(sys.G, sys.C);
  FactorCache cache(8);
  for (double shift : {1e3, 1e4, 1e5, 1e6}) {
    PencilFactorOptions opt;
    opt.shift = shift;
    cache.acquire(fp, opt, [&] {
      return std::make_shared<const FactorizedPencil>(sys.G, sys.C, opt);
    });
  }
  EXPECT_EQ(cache.size(), 4u);
  cache.set_capacity(2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.capacity(), 2u);
  EXPECT_GE(cache.stats().evictions, 2u);
}

TEST(OptionPlumbing, KernelOptionsArePartOfTheCacheKey) {
  const MnaSystem sys = small_rc();
  const PencilFingerprint fp = fingerprint_pencil(sys.G, sys.C);
  FactorCache cache(8);
  PencilFactorOptions simplicial;
  simplicial.kernels.path = KernelPath::kSimplicial;
  PencilFactorOptions supernodal;
  supernodal.kernels.path = KernelPath::kSupernodal;

  bool hit = true;
  cache.acquire(fp, simplicial, [&] {
    return std::make_shared<const FactorizedPencil>(sys.G, sys.C, simplicial);
  }, &hit);
  EXPECT_FALSE(hit);
  cache.acquire(fp, supernodal, [&] {
    return std::make_shared<const FactorizedPencil>(sys.G, sys.C, supernodal);
  }, &hit);
  EXPECT_FALSE(hit);  // distinct key, no false sharing
  cache.acquire(fp, supernodal, [&] {
    return std::make_shared<const FactorizedPencil>(sys.G, sys.C, supernodal);
  }, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace sympvl
