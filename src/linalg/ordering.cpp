#include "linalg/ordering.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace sympvl {

template <typename T>
AdjacencyGraph build_graph(const SparseMatrix<T>& a) {
  require(a.rows() == a.cols(), "build_graph: matrix not square");
  const Index n = a.rows();
  // Collect undirected edges (i != j) from the pattern of A and Aᵀ.
  std::vector<std::pair<Index, Index>> edges;
  edges.reserve(static_cast<size_t>(a.nnz()));
  for (Index j = 0; j < n; ++j) {
    for (Index k = a.colptr()[static_cast<size_t>(j)];
         k < a.colptr()[static_cast<size_t>(j) + 1]; ++k) {
      const Index i = a.rowind()[static_cast<size_t>(k)];
      if (i == j) continue;
      edges.emplace_back(i, j);
      edges.emplace_back(j, i);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  AdjacencyGraph g;
  g.ptr.assign(static_cast<size_t>(n) + 1, 0);
  for (const auto& e : edges) ++g.ptr[static_cast<size_t>(e.first) + 1];
  for (size_t i = 1; i <= static_cast<size_t>(n); ++i) g.ptr[i] += g.ptr[i - 1];
  g.adj.resize(edges.size());
  std::vector<Index> next(g.ptr);
  for (const auto& e : edges)
    g.adj[static_cast<size_t>(next[static_cast<size_t>(e.first)]++)] = e.second;
  return g;
}

namespace {

// BFS level structure rooted at `root`, visiting only unvisited nodes.
// Returns nodes level by level; `eccentricity` gets the number of levels.
std::vector<Index> bfs_levels(const AdjacencyGraph& g, Index root,
                              const std::vector<char>& visited,
                              Index& eccentricity, Index& last_node) {
  std::vector<Index> order;
  std::vector<char> seen(visited.begin(), visited.end());
  std::queue<std::pair<Index, Index>> q;  // (node, level)
  q.emplace(root, 0);
  seen[static_cast<size_t>(root)] = 1;
  eccentricity = 0;
  last_node = root;
  while (!q.empty()) {
    const auto [v, lvl] = q.front();
    q.pop();
    order.push_back(v);
    eccentricity = std::max(eccentricity, lvl);
    last_node = v;
    for (Index k = g.ptr[static_cast<size_t>(v)];
         k < g.ptr[static_cast<size_t>(v) + 1]; ++k) {
      const Index u = g.adj[static_cast<size_t>(k)];
      if (!seen[static_cast<size_t>(u)]) {
        seen[static_cast<size_t>(u)] = 1;
        q.emplace(u, lvl + 1);
      }
    }
  }
  return order;
}

// George-Liu pseudo-peripheral node heuristic.
Index pseudo_peripheral(const AdjacencyGraph& g, Index start,
                        const std::vector<char>& visited) {
  Index node = start;
  Index ecc = -1;
  for (int iter = 0; iter < 8; ++iter) {
    Index new_ecc, last;
    bfs_levels(g, node, visited, new_ecc, last);
    if (new_ecc <= ecc) break;
    ecc = new_ecc;
    node = last;
  }
  return node;
}

}  // namespace

std::vector<Index> rcm_ordering(const AdjacencyGraph& g) {
  const Index n = g.size();
  std::vector<Index> order;
  order.reserve(static_cast<size_t>(n));
  std::vector<char> visited(static_cast<size_t>(n), 0);

  for (Index start = 0; start < n; ++start) {
    if (visited[static_cast<size_t>(start)]) continue;
    const Index root = pseudo_peripheral(g, start, visited);
    // Cuthill-McKee BFS from the root, neighbors by increasing degree.
    std::queue<Index> q;
    q.push(root);
    visited[static_cast<size_t>(root)] = 1;
    std::vector<Index> nbrs;
    while (!q.empty()) {
      const Index v = q.front();
      q.pop();
      order.push_back(v);
      nbrs.clear();
      for (Index k = g.ptr[static_cast<size_t>(v)];
           k < g.ptr[static_cast<size_t>(v) + 1]; ++k) {
        const Index u = g.adj[static_cast<size_t>(k)];
        if (!visited[static_cast<size_t>(u)]) {
          visited[static_cast<size_t>(u)] = 1;
          nbrs.push_back(u);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(),
                [&](Index a, Index b) { return g.degree(a) < g.degree(b); });
      for (Index u : nbrs) q.push(u);
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<Index> min_degree_ordering(const AdjacencyGraph& g) {
  const Index n = g.size();
  // Quotient-graph representation: each live variable keeps a list of
  // variable neighbors and a list of elements (cliques created by earlier
  // eliminations). External degree is the size of the union of both.
  std::vector<std::vector<Index>> var_adj(static_cast<size_t>(n));
  std::vector<std::vector<Index>> var_elems(static_cast<size_t>(n));
  std::vector<std::vector<Index>> elem_vars;  // members of each element
  for (Index v = 0; v < n; ++v)
    var_adj[static_cast<size_t>(v)].assign(
        g.adj.begin() + g.ptr[static_cast<size_t>(v)],
        g.adj.begin() + g.ptr[static_cast<size_t>(v) + 1]);

  std::vector<char> eliminated(static_cast<size_t>(n), 0);
  std::vector<Index> mark(static_cast<size_t>(n), -1);
  Index epoch = 0;  // monotone stamp so marks never need clearing
  std::vector<Index> degree(static_cast<size_t>(n), 0);
  std::vector<char> degree_stale(static_cast<size_t>(n), 1);

  // Exact external degree of v: |union of live var neighbors and element
  // members|, excluding v itself.
  auto compute_degree = [&](Index v) {
    ++epoch;
    Index d = 0;
    mark[static_cast<size_t>(v)] = epoch;
    for (Index u : var_adj[static_cast<size_t>(v)]) {
      if (eliminated[static_cast<size_t>(u)] ||
          mark[static_cast<size_t>(u)] == epoch)
        continue;
      mark[static_cast<size_t>(u)] = epoch;
      ++d;
    }
    for (Index e : var_elems[static_cast<size_t>(v)]) {
      for (Index u : elem_vars[static_cast<size_t>(e)]) {
        if (eliminated[static_cast<size_t>(u)] ||
            mark[static_cast<size_t>(u)] == epoch)
          continue;
        mark[static_cast<size_t>(u)] = epoch;
        ++d;
      }
    }
    return d;
  };

  std::vector<Index> order;
  order.reserve(static_cast<size_t>(n));
  std::vector<Index> frontier;
  for (Index step = 0; step < n; ++step) {
    // Pick the live variable with the smallest (recomputed) degree.
    Index best = -1;
    Index best_deg = n + 1;
    for (Index v = 0; v < n; ++v) {
      if (eliminated[static_cast<size_t>(v)]) continue;
      if (degree_stale[static_cast<size_t>(v)]) {
        degree[static_cast<size_t>(v)] = compute_degree(v);
        degree_stale[static_cast<size_t>(v)] = 0;
      }
      if (degree[static_cast<size_t>(v)] < best_deg) {
        best_deg = degree[static_cast<size_t>(v)];
        best = v;
      }
    }
    const Index v = best;
    order.push_back(v);
    eliminated[static_cast<size_t>(v)] = 1;

    // Frontier = union of v's live neighbors (variables + element members).
    frontier.clear();
    ++epoch;
    mark[static_cast<size_t>(v)] = epoch;
    auto push = [&](Index u) {
      if (u == v || eliminated[static_cast<size_t>(u)]) return;
      if (mark[static_cast<size_t>(u)] == epoch) return;
      mark[static_cast<size_t>(u)] = epoch;
      frontier.push_back(u);
    };
    for (Index u : var_adj[static_cast<size_t>(v)]) push(u);
    for (Index e : var_elems[static_cast<size_t>(v)])
      for (Index u : elem_vars[static_cast<size_t>(e)]) push(u);

    // Create the new element and attach it to the frontier variables;
    // absorb v's old elements (they are subsets of the new one).
    const Index enew = static_cast<Index>(elem_vars.size());
    elem_vars.push_back(frontier);
    for (Index u : frontier) {
      auto& elems = var_elems[static_cast<size_t>(u)];
      std::vector<Index> kept;
      kept.reserve(elems.size() + 1);
      for (Index e : elems) {
        bool absorbed = false;
        for (Index ve : var_elems[static_cast<size_t>(v)])
          if (e == ve) absorbed = true;
        if (!absorbed) kept.push_back(e);
      }
      kept.push_back(enew);
      elems = std::move(kept);
      degree_stale[static_cast<size_t>(u)] = 1;
    }
    var_elems[static_cast<size_t>(v)].clear();
    var_adj[static_cast<size_t>(v)].clear();
  }
  return order;
}

template <typename T>
std::vector<Index> make_ordering(const SparseMatrix<T>& a, Ordering ordering) {
  switch (ordering) {
    case Ordering::kNatural:
      return natural_ordering(a.rows());
    case Ordering::kRCM:
      return rcm_ordering(a);
    case Ordering::kMinDegree:
      return min_degree_ordering(a);
  }
  throw Error(ErrorCode::kInvalidArgument, "make_ordering: unknown ordering",
              {.stage = "ordering"});
}

template <typename T>
Index symbolic_fill(const SparseMatrix<T>& a, const std::vector<Index>& perm) {
  const SparseMatrix<T> ap = a.permute_symmetric(perm);
  const Index n = ap.rows();
  const auto& colptr = ap.colptr();
  const auto& rowind = ap.rowind();
  std::vector<Index> parent(static_cast<size_t>(n), -1);
  std::vector<Index> flag(static_cast<size_t>(n), -1);
  Index lnz = 0;
  for (Index k = 0; k < n; ++k) {
    parent[static_cast<size_t>(k)] = -1;
    flag[static_cast<size_t>(k)] = k;
    for (Index p = colptr[static_cast<size_t>(k)];
         p < colptr[static_cast<size_t>(k) + 1]; ++p) {
      Index i = rowind[static_cast<size_t>(p)];
      if (i >= k) continue;
      while (flag[static_cast<size_t>(i)] != k) {
        if (parent[static_cast<size_t>(i)] == -1) parent[static_cast<size_t>(i)] = k;
        ++lnz;
        flag[static_cast<size_t>(i)] = k;
        i = parent[static_cast<size_t>(i)];
      }
    }
  }
  return lnz;
}

template std::vector<Index> make_ordering<double>(const SMat&, Ordering);
template std::vector<Index> make_ordering<Complex>(const CSMat&, Ordering);
template Index symbolic_fill<double>(const SMat&, const std::vector<Index>&);
template Index symbolic_fill<Complex>(const CSMat&, const std::vector<Index>&);

std::vector<Index> natural_ordering(Index n) {
  std::vector<Index> p(static_cast<size_t>(n));
  std::iota(p.begin(), p.end(), Index(0));
  return p;
}

template <typename T>
Index bandwidth(const SparseMatrix<T>& a) {
  Index bw = 0;
  for (Index j = 0; j < a.cols(); ++j)
    for (Index k = a.colptr()[static_cast<size_t>(j)];
         k < a.colptr()[static_cast<size_t>(j) + 1]; ++k)
      bw = std::max(bw, std::abs(a.rowind()[static_cast<size_t>(k)] - j));
  return bw;
}

template AdjacencyGraph build_graph<double>(const SMat&);
template AdjacencyGraph build_graph<Complex>(const CSMat&);
template Index bandwidth<double>(const SMat&);
template Index bandwidth<Complex>(const CSMat&);

}  // namespace sympvl
