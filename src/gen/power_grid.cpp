#include "gen/power_grid.hpp"

#include <cmath>
#include <string>

namespace sympvl {

PowerGridCircuit make_power_grid(const PowerGridOptions& options) {
  require(options.ports >= 1, "make_power_grid: need >= 1 port");

  PowerGridCircuit out;
  Netlist& nl = out.netlist;

  Index rows = options.rows;
  Index cols = options.cols;
  if (rows <= 0 || cols <= 0) {
    const double side =
        std::ceil(std::sqrt(2.0 * static_cast<double>(options.ports)));
    rows = cols = std::max<Index>(static_cast<Index>(side), 2);
  }
  require(rows * cols >= options.ports,
          "make_power_grid: mesh smaller than the port count");
  out.rows = rows;
  out.cols = cols;

  // Grid nodes in row-major order.
  std::vector<Index> node(static_cast<size_t>(rows * cols));
  for (auto& n : node) n = nl.new_node();
  const auto at = [&](Index r, Index c) {
    return node[static_cast<size_t>(r * cols + c)];
  };

  // Mesh resistors on every edge, with a mild positional spread so the
  // sheet is not perfectly uniform (real grids never are).
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      const double spread = 1.0 + 0.1 * static_cast<double>((r + c) % 3);
      if (c + 1 < cols)
        nl.add_resistor(at(r, c), at(r, c + 1), options.edge_resistance * spread);
      if (r + 1 < rows)
        nl.add_resistor(at(r, c), at(r + 1, c), options.edge_resistance * spread);
    }
  }

  // Decap on every node; slightly heavier in the interior.
  for (Index r = 0; r < rows; ++r)
    for (Index c = 0; c < cols; ++c) {
      const bool boundary = r == 0 || c == 0 || r == rows - 1 || c == cols - 1;
      nl.add_capacitor(at(r, c), 0, options.decap * (boundary ? 1.0 : 1.25));
    }

  // Package tie-downs: the 4 corners plus interior pads on an even
  // stride. The mesh is resistively connected, so these give every node a
  // DC path to ground — G is nonsingular and s₀ = 0 expansions work.
  nl.add_resistor(at(0, 0), 0, options.tie_resistance);
  nl.add_resistor(at(0, cols - 1), 0, options.tie_resistance);
  nl.add_resistor(at(rows - 1, 0), 0, options.tie_resistance);
  nl.add_resistor(at(rows - 1, cols - 1), 0, options.tie_resistance);
  const Index interior =
      options.interior_ties > 0 ? options.interior_ties
                                : std::max<Index>(4, options.ports / 64);
  const Index total = rows * cols;
  for (Index t = 0; t < interior; ++t) {
    const Index idx = ((t + 1) * total) / (interior + 1);
    nl.add_resistor(node[static_cast<size_t>(idx % total)], 0,
                    options.tie_resistance * 2.0);
  }

  // Tap ports on an even row-major stride across the whole grid:
  // neighboring ports share mesh neighborhoods, which is the locality
  // the electrical clustering of the sharding layer keys on.
  out.port_nodes.reserve(static_cast<size_t>(options.ports));
  for (Index j = 0; j < options.ports; ++j) {
    const Index idx = (j * total) / options.ports;
    const Index n = node[static_cast<size_t>(idx)];
    out.port_nodes.push_back(n);
    nl.add_port(n, 0, "P" + std::to_string(j));
  }
  return out;
}

}  // namespace sympvl
