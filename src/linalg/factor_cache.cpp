#include "linalg/factor_cache.hpp"

#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>

#include "fault.hpp"
#include "obs/memstat.hpp"
#include "obs/obs.hpp"

namespace sympvl {

namespace {

// FNV-1a over raw bytes.
std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
std::uint64_t fnv1a_vec(const std::vector<T>& v, std::uint64_t h) {
  return v.empty() ? h : fnv1a(v.data(), v.size() * sizeof(T), h);
}

std::uint64_t fingerprint_matrix(const SMat& m) {
  std::uint64_t h = 14695981039346656037ull;
  const Index dims[2] = {m.rows(), m.cols()};
  h = fnv1a(dims, sizeof(dims), h);
  h = fnv1a_vec(m.colptr(), h);
  h = fnv1a_vec(m.rowind(), h);
  h = fnv1a_vec(m.values(), h);
  return h;
}

std::uint64_t double_bits(double v) {
  // Canonicalize -0.0 so s₀ = 0 and s₀ = -0 hit the same entry.
  if (v == 0.0) v = 0.0;
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// Canonical factor settings every real-pencil driver uses — the settings
// acquire_complex probes when adapting a real hit to an AC point.
constexpr double kCanonicalZeroPivotTol = 1e-12;

struct Key {
  std::uint64_t g = 0, c = 0;
  std::uint64_t shift_re = 0, shift_im = 0;
  std::uint64_t tol = 0;
  int ordering = 0;
  bool dense = false;
  bool complex_pencil = false;
  // Kernel selection changes the factorization's rounding, so it is part
  // of the identity of a cached factor (defaults for complex entries).
  // Both fields are stored RESOLVED: kernel_path through the n/rhs_hint
  // heuristic and the SYMPVL_KERNEL env, simd through SYMPVL_SIMD and the
  // CPU probe. Requests that differ only in hints resolving to the same
  // kernels share one entry; hints that flip the resolution get distinct
  // keys, so a hit always returns the rounding the caller would have
  // produced fresh.
  int kernel_path = 0;
  int simd = 0;
  Index relax_zeros = 0;
  std::uint64_t relax_ratio = 0;
  Index max_panel_width = 0;

  bool operator==(const Key& o) const {
    return g == o.g && c == o.c && shift_re == o.shift_re &&
           shift_im == o.shift_im && tol == o.tol && ordering == o.ordering &&
           dense == o.dense && complex_pencil == o.complex_pencil &&
           kernel_path == o.kernel_path && simd == o.simd &&
           relax_zeros == o.relax_zeros && relax_ratio == o.relax_ratio &&
           max_panel_width == o.max_panel_width;
  }
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    std::uint64_t h = 14695981039346656037ull;
    h = fnv1a(&k.g, sizeof(k.g), h);
    h = fnv1a(&k.c, sizeof(k.c), h);
    h = fnv1a(&k.shift_re, sizeof(k.shift_re), h);
    h = fnv1a(&k.shift_im, sizeof(k.shift_im), h);
    h = fnv1a(&k.tol, sizeof(k.tol), h);
    h = fnv1a(&k.ordering, sizeof(k.ordering), h);
    const unsigned char flags =
        static_cast<unsigned char>((k.dense ? 1 : 0) |
                                   (k.complex_pencil ? 2 : 0));
    h = fnv1a(&flags, sizeof(flags), h);
    h = fnv1a(&k.kernel_path, sizeof(k.kernel_path), h);
    h = fnv1a(&k.simd, sizeof(k.simd), h);
    h = fnv1a(&k.relax_zeros, sizeof(k.relax_zeros), h);
    h = fnv1a(&k.relax_ratio, sizeof(k.relax_ratio), h);
    h = fnv1a(&k.max_panel_width, sizeof(k.max_panel_width), h);
    return static_cast<std::size_t>(h);
  }
};

Key real_key(const PencilFingerprint& fp, const PencilFactorOptions& opt) {
  Key k;
  k.g = fp.g;
  k.c = fp.c;
  k.shift_re = double_bits(opt.shift);
  k.tol = double_bits(opt.zero_pivot_tol);
  k.ordering = static_cast<int>(opt.ordering);
  k.dense = opt.dense;
  k.kernel_path = static_cast<int>(
      resolve_kernel_path(opt.kernels, fp.n, opt.kernels.rhs_hint));
  k.simd = static_cast<int>(resolve_simd_level(opt.kernels.simd));
  k.relax_zeros = opt.kernels.relax_zeros;
  k.relax_ratio = double_bits(opt.kernels.relax_ratio);
  k.max_panel_width = opt.kernels.max_panel_width;
  return k;
}

Key complex_key(const PencilFingerprint& fp, Complex fs) {
  Key k;
  k.g = fp.g;
  k.c = fp.c;
  k.shift_re = double_bits(fs.real());
  k.shift_im = double_bits(fs.imag());
  k.complex_pencil = true;
  return k;
}

// Adapts a real M J Mᵀ factorization of G + σC to complex right-hand
// sides at the purely real pencil value fs = σ: A is real, so
// A⁻¹(bʳ + i·bⁱ) = A⁻¹bʳ + i·A⁻¹bⁱ — two real solves (blocked for
// matrices) per complex solve.
class RealPencilAdapter final : public ComplexPencilSolver {
 public:
  explicit RealPencilAdapter(std::shared_ptr<const FactorizedPencil> pencil)
      : pencil_(std::move(pencil)) {}

  CVec solve(const CVec& b) const override {
    const size_t n = b.size();
    Vec br(n), bi(n);
    for (size_t i = 0; i < n; ++i) {
      br[i] = b[i].real();
      bi[i] = b[i].imag();
    }
    const Vec xr = pencil_->solve(br);
    const Vec xi = pencil_->solve(bi);
    CVec x(n);
    for (size_t i = 0; i < n; ++i) x[i] = Complex(xr[i], xi[i]);
    return x;
  }

  CMat solve(const CMat& b) const override {
    Mat br(b.rows(), b.cols()), bi(b.rows(), b.cols());
    for (Index i = 0; i < b.rows(); ++i)
      for (Index j = 0; j < b.cols(); ++j) {
        br(i, j) = b(i, j).real();
        bi(i, j) = b(i, j).imag();
      }
    const Mat xr = pencil_->solve(br);
    const Mat xi = pencil_->solve(bi);
    CMat x(b.rows(), b.cols());
    for (Index i = 0; i < b.rows(); ++i)
      for (Index j = 0; j < b.cols(); ++j) x(i, j) = Complex(xr(i, j), xi(i, j));
    return x;
  }

 private:
  std::shared_ptr<const FactorizedPencil> pencil_;
};

}  // namespace

PencilFingerprint fingerprint_pencil(const SMat& g, const SMat& c) {
  return PencilFingerprint{fingerprint_matrix(g), fingerprint_matrix(c),
                           g.rows()};
}

struct FactorCache::Impl {
  struct Entry {
    Key key;
    std::shared_ptr<const FactorizedPencil> real;
    std::shared_ptr<const ComplexPencilSolver> complex_;
    std::int64_t bytes = 0;  // resident cost, charged while cached
  };

  explicit Impl(std::size_t cap) : capacity(cap == 0 ? 1 : cap) {}

  ~Impl() {
    // Release the byte charges of whatever is still resident so short-
    // lived (test/bench) caches leave the process-wide gauge balanced.
    for (const Entry& e : lru) charge_bytes(-e.bytes);
  }

  std::size_t capacity;
  std::atomic<bool> enabled{true};
  mutable std::mutex mutex;
  // Front = most recently used.
  std::list<Entry> lru;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map;

  std::atomic<std::uint64_t> hits{0}, misses{0}, evictions{0},
      factorizations{0};
  std::atomic<std::int64_t> resident_bytes{0}, peak_resident_bytes{0};

  static std::int64_t entry_bytes(const Entry& e) {
    if (e.real) return e.real->bytes();
    if (e.complex_) return e.complex_->bytes();
    return 0;
  }

  // Per-cache resident/peak accounting plus the process-wide gauge (the
  // gauge aggregates across instances — the number the million-unknown
  // audit cares about).
  void charge_bytes(std::int64_t delta) {
    if (delta == 0) return;
    const std::int64_t now =
        resident_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
    std::int64_t peak = peak_resident_bytes.load(std::memory_order_relaxed);
    while (now > peak && !peak_resident_bytes.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
    static obs::ByteGauge& gauge =
        obs::byte_gauge("factor_cache.resident_bytes");
    gauge.add(delta);
  }

  void note_hit() {
    hits.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& c = obs::counter("factor_cache.hit");
    c.add();
  }
  void note_miss() {
    misses.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& c = obs::counter("factor_cache.miss");
    c.add();
  }
  void note_evict() {
    evictions.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& c = obs::counter("factor_cache.evict");
    c.add();
  }

  // Must hold `mutex`. Returns the entry for `key`, touched to the LRU
  // front, or nullptr.
  Entry* find_locked(const Key& key) {
    auto it = map.find(key);
    if (it == map.end()) return nullptr;
    lru.splice(lru.begin(), lru, it->second);
    it->second = lru.begin();
    return &*lru.begin();
  }

  // Must hold `mutex`. Inserts (or returns the raced-in) entry and evicts
  // past capacity.
  Entry* insert_locked(Entry entry) {
    if (Entry* existing = find_locked(entry.key)) return existing;
    entry.bytes = entry_bytes(entry);
    charge_bytes(entry.bytes);
    lru.push_front(std::move(entry));
    map.emplace(lru.front().key, lru.begin());
    while (lru.size() > capacity) {
      charge_bytes(-lru.back().bytes);
      map.erase(lru.back().key);
      lru.pop_back();
      note_evict();
    }
    return &*lru.begin();
  }
};

FactorCache::FactorCache(std::size_t capacity)
    : impl_(std::make_unique<Impl>(capacity)) {}

FactorCache::~FactorCache() = default;

FactorCache& FactorCache::global() {
  static FactorCache cache([]() -> std::size_t {
    if (const char* env = std::getenv("SYMPVL_FACTOR_CACHE_CAP")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return 32;
  }());
  static const bool env_applied = [] {
    if (const char* env = std::getenv("SYMPVL_FACTOR_CACHE"))
      if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)
        cache.set_enabled(false);
    return true;
  }();
  (void)env_applied;
  return cache;
}

std::shared_ptr<const FactorizedPencil> FactorCache::acquire(
    const PencilFingerprint& fp, const PencilFactorOptions& options,
    const RealMaker& make, bool* was_hit) {
  if (was_hit != nullptr) *was_hit = false;
  if (fault::active() || !enabled()) {
    // Fault drills and a disabled cache always exercise the real
    // factorization path.
    impl_->factorizations.fetch_add(1, std::memory_order_relaxed);
    return make();
  }
  const Key key = real_key(fp, options);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (Impl::Entry* e = impl_->find_locked(key)) {
      impl_->note_hit();
      if (was_hit != nullptr) *was_hit = true;
      return e->real;
    }
  }
  impl_->note_miss();
  // Factor OUTSIDE the lock: concurrent misses on distinct keys proceed
  // in parallel; racing duplicates on one key are harmless (identical
  // values, loser's work discarded on insert).
  std::shared_ptr<const FactorizedPencil> pencil = make();
  impl_->factorizations.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Impl::Entry entry;
  entry.key = key;
  entry.real = std::move(pencil);
  return impl_->insert_locked(std::move(entry))->real;
}

std::shared_ptr<const ComplexPencilSolver> FactorCache::acquire_complex(
    const PencilFingerprint& fp, Complex fs, const ComplexMaker& make,
    bool* was_hit) {
  if (was_hit != nullptr) *was_hit = false;
  if (fault::active() || !enabled()) {
    impl_->factorizations.fetch_add(1, std::memory_order_relaxed);
    return make();
  }
  const Key ckey = complex_key(fp, fs);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (Impl::Entry* e = impl_->find_locked(ckey)) {
      impl_->note_hit();
      if (was_hit != nullptr) *was_hit = true;
      return e->complex_;
    }
    if (fs.imag() == 0.0) {
      // A purely real pencil value: adapt a cached real factorization at
      // the canonical driver settings instead of refactoring.
      for (const bool dense : {false, true}) {
        PencilFactorOptions probe;
        probe.shift = fs.real();
        probe.ordering = Ordering::kRCM;
        probe.zero_pivot_tol = kCanonicalZeroPivotTol;
        probe.dense = dense;
        if (Impl::Entry* e = impl_->find_locked(real_key(fp, probe))) {
          impl_->note_hit();
          if (was_hit != nullptr) *was_hit = true;
          return std::make_shared<RealPencilAdapter>(e->real);
        }
      }
    }
  }
  impl_->note_miss();
  std::shared_ptr<const ComplexPencilSolver> solver = make();
  impl_->factorizations.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Impl::Entry entry;
  entry.key = ckey;
  entry.complex_ = std::move(solver);
  return impl_->insert_locked(std::move(entry))->complex_;
}

void FactorCache::clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  // Releases the byte charges but is NOT capacity pressure — the evict
  // counter tracks forced evictions only.
  for (const Impl::Entry& e : impl_->lru) impl_->charge_bytes(-e.bytes);
  impl_->lru.clear();
  impl_->map.clear();
}

std::size_t FactorCache::size() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->lru.size();
}

std::size_t FactorCache::capacity() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->capacity;
}

void FactorCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->capacity = capacity == 0 ? 1 : capacity;
  while (impl_->lru.size() > impl_->capacity) {
    impl_->charge_bytes(-impl_->lru.back().bytes);
    impl_->map.erase(impl_->lru.back().key);
    impl_->lru.pop_back();
    impl_->note_evict();
  }
}

bool FactorCache::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void FactorCache::set_enabled(bool enabled) {
  impl_->enabled.store(enabled, std::memory_order_relaxed);
}

FactorCacheStats FactorCache::stats() const {
  FactorCacheStats s;
  s.hits = impl_->hits.load(std::memory_order_relaxed);
  s.misses = impl_->misses.load(std::memory_order_relaxed);
  s.evictions = impl_->evictions.load(std::memory_order_relaxed);
  s.factorizations = impl_->factorizations.load(std::memory_order_relaxed);
  s.resident_bytes = impl_->resident_bytes.load(std::memory_order_relaxed);
  s.peak_resident_bytes =
      impl_->peak_resident_bytes.load(std::memory_order_relaxed);
  return s;
}

void FactorCache::reset_stats() {
  impl_->hits.store(0, std::memory_order_relaxed);
  impl_->misses.store(0, std::memory_order_relaxed);
  impl_->evictions.store(0, std::memory_order_relaxed);
  impl_->factorizations.store(0, std::memory_order_relaxed);
  impl_->peak_resident_bytes.store(
      impl_->resident_bytes.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

}  // namespace sympvl
