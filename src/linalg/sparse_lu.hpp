// Sparse LU factorization with partial pivoting (left-looking
// Gilbert-Peierls algorithm), templated over real/complex scalars.
//
// This is the robust counterpart to the unpivoted SparseLDLT: MNA pencils
// G + sC are structurally symmetric but indefinite, and elimination can
// hit exact zero pivots (e.g. series R-L chains cancel node conductances).
// The AC analysis and transient integrator use SparseLU whenever the
// LDLᵀ fast path reports a zero pivot, avoiding the O(N³) dense fallback.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/ordering.hpp"
#include "linalg/sparse.hpp"
#include "obs/memstat.hpp"

namespace sympvl {

template <typename T>
class SparseLU {
 public:
  /// Factors P·A·Qᵀ = L·U where Q is a fill-reducing column pre-ordering
  /// (RCM of A+Aᵀ by default) and P the partial-pivoting row permutation.
  /// `pivot_threshold` in (0, 1] enables relaxed (threshold) pivoting:
  /// 1.0 is classical partial pivoting; smaller values prefer sparsity.
  /// `zero_pivot_tol` is a relative floor (against the largest |entry| of
  /// `a`) below which the best available pivot is declared zero and the
  /// matrix reported singular; 0 accepts any nonzero pivot.
  explicit SparseLU(const SparseMatrix<T>& a, Ordering ordering = Ordering::kRCM,
                    double pivot_threshold = 1.0, double zero_pivot_tol = 0.0);

  Index size() const { return n_; }

  /// Solves A x = b.
  std::vector<T> solve(const std::vector<T>& b) const;

  /// Number of stored entries in L and U.
  Index l_nnz() const { return static_cast<Index>(l_values_.size()); }
  Index u_nnz() const { return static_cast<Index>(u_values_.size()); }

  /// Stored factor entries (nnz(L) + nnz(U)) per nonzero of A.
  double fill_ratio() const { return fill_ratio_; }

  /// Floating-point operations performed by the numeric factorization
  /// (multiply-add pairs counted as 2).
  double flops() const { return flops_; }

  /// Smallest |pivot| / largest |pivot| — conditioning indicator.
  double pivot_ratio() const { return pivot_ratio_; }

  /// Resident bytes of the numeric factors (L/U value + index storage
  /// plus the permutations) — the amount charged against the
  /// "mem.factor_bytes" gauge for this object's lifetime.
  std::int64_t factor_bytes() const {
    return bytes_of(l_colptr_) + bytes_of(l_rowind_) + bytes_of(l_values_) +
           bytes_of(u_colptr_) + bytes_of(u_rowind_) + bytes_of(u_values_) +
           bytes_of(row_perm_) + bytes_of(col_perm_);
  }

 private:
  template <typename V>
  static std::int64_t bytes_of(const V& v) {
    return static_cast<std::int64_t>(v.size() *
                                     sizeof(typename V::value_type));
  }

  Index n_ = 0;
  // L: unit lower triangular in pivot order, CSC; diagonal implied.
  std::vector<Index> l_colptr_, l_rowind_;
  std::vector<T> l_values_;
  // U: upper triangular in pivot order, CSC, diagonal stored last per col.
  std::vector<Index> u_colptr_, u_rowind_;
  std::vector<T> u_values_;
  std::vector<Index> row_perm_;  // pivot position -> original row
  std::vector<Index> col_perm_;  // elimination step -> original column
  double pivot_ratio_ = 0.0;
  double fill_ratio_ = 0.0;
  double flops_ = 0.0;
  // Charges factor_bytes() against "mem.factor_bytes" while this
  // factorization is alive; copies duplicate the charge.
  obs::MemCharge mem_charge_;
};

using LUSparse = SparseLU<double>;
using CLUSparse = SparseLU<Complex>;

extern template class SparseLU<double>;
extern template class SparseLU<Complex>;

}  // namespace sympvl
