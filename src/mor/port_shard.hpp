// Port-sharded SyMPVL for many-terminal systems (DESIGN.md §5.8).
//
// SyMPVL's block size equals the terminal count p, so on the many-port
// systems real post-layout nets produce (power grids, PEEC extractions
// with hundreds of ports) the monolithic process drowns in block
// orthogonalization: every candidate is J-orthogonalized against every
// closed cluster, an O(n·(n+p)·N) pile of allocation-heavy vector ops.
// Sharding splits B's columns into K clusters, runs one small SyMPVL per
// shard (block size p/K — the pair count drops by ~K), and stitches the
// shard Krylov bases into one congruence-projected model that carries
// the cross-shard coupling blocks the per-shard models individually lack.
//
// Key economies:
//   * One factorization serves all shards: the pencil G + s₀C is primed
//     once through the shared FactorCache at a common shift, and every
//     shard session acquires the identical factor (cache hit).
//   * The stitch works in M-transformed coordinates. With Q = M⁻ᵀV the
//     congruence projections collapse to small dense kernels on the
//     Lanczos vectors themselves — Ar = VᵀJV, Cr = VᵀJ(OpV), and
//     Br = Ar·blockdiag(ρ_k) by the Lanczos relation R_k = V_kρ_k — no
//     N-dimensional re-orthogonalization on the fast path.
//   * Cross-shard rank deficiency is detected by a pivot-guarded
//     Cholesky of Ar (the union Gram); when it trips — or when J is
//     indefinite — the stitch falls back to the explicit MGS-union +
//     congruence machinery shared with rational_reduce.
//
// Shard failures are contained: a shard that throws (factorization,
// breakdown, injected fault at "sympvl.delta" with index = shard id)
// is excluded from the union basis, its ports keep exact Br columns
// recovered from the starting block, and the run reports kTruncated
// with the failure recorded against stage "shard.<k>".
#pragma once

#include <string>
#include <vector>

#include "circuit/mna.hpp"
#include "mor/arnoldi.hpp"
#include "mor/driver.hpp"
#include "mor/sympvl.hpp"

namespace sympvl {

/// Per-run telemetry of the sharding layer.
struct PortShardReport {
  Index shards = 0;                  ///< shard count actually used
  std::string clustering;            ///< "electrical" / "round_robin" / "monolithic"
  std::vector<Index> port_to_shard;  ///< shard of B column j
  std::vector<Index> shard_ports;    ///< ports per shard
  std::vector<Index> shard_orders;   ///< achieved Lanczos order per shard
  std::vector<Index> failed_shards;  ///< shards excluded from the union
  Index stitched_order = 0;          ///< rows of the stitched model
  Index stitch_dropped = 0;          ///< union-basis vectors deflated away
  bool used_fallback_stitch = false; ///< MGS-union path instead of CholQR

  double partition_seconds = 0.0;
  double reduce_seconds = 0.0;  ///< all shard sessions (wall, not CPU-sum)
  double stitch_seconds = 0.0;
  double total_seconds = 0.0;

  /// FactorCache outcome across priming + every shard session.
  Index factor_cache_hits = 0;
  Index factor_cache_misses = 0;
};

/// Result of a sharded reduction. With 1 shard the layer delegates to the
/// monolithic SyMPVL driver verbatim (bit-identical model, held in
/// `monolithic`); with K > 1 the stitched congruence model is in
/// `stitched`. eval()/order()/port_count() dispatch transparently.
struct ShardedSympvlResult {
  ArnoldiModel stitched;
  ReducedModel monolithic;
  bool used_monolithic = false;

  SympvlReport report;
  PortShardReport shard;
  ReductionStatus status = ReductionStatus::kOk;
  std::vector<ReductionIssue> diagnostics;

  /// True when a usable model exists (kOk or kTruncated).
  bool ok() const { return status != ReductionStatus::kFailed; }

  Index order() const {
    return used_monolithic ? monolithic.order() : stitched.order();
  }
  Index port_count() const {
    return used_monolithic ? monolithic.port_count() : stitched.port_count();
  }
  /// Physical p×p Z_r(s) of whichever model the run produced.
  CMat eval(Complex s) const {
    return used_monolithic ? monolithic.eval(s) : stitched.eval(s);
  }
};

/// Resolves the shard count for `ports` columns: an explicit
/// options.shard.shards wins, then the SYMPVL_PORT_SHARDS environment
/// variable, then the heuristic (1 shard below 2·min_ports_per_shard
/// ports, ~32 ports per shard beyond). Always clamped to [1, ports].
Index resolve_shard_count(const PortShardOptions& options, Index ports);

/// Assigns each of sys.B's columns to one of `shards` shards.
/// kElectrical: multi-source BFS on the pattern of G and C seeded at
/// farthest-point port anchors (ports sharing mesh neighborhoods land
/// together); kRoundRobin: column j → shard j mod K; kAuto: electrical.
/// Deterministic for fixed inputs.
std::vector<Index> partition_ports(const MnaSystem& sys, Index shards,
                                   ShardClustering clustering);

/// Clustered per-shard SyMPVL with a stitched union model. `options` is
/// the ordinary SyMPVL surface; options.shard selects count/clustering/
/// stitch tolerance. Never throws for per-shard failures — they land in
/// diagnostics with status kTruncated; a failed priming factorization or
/// an all-shards failure reports kFailed.
ShardedSympvlResult sharded_sympvl_reduce(const MnaSystem& sys,
                                          const SympvlOptions& options);

}  // namespace sympvl
