// Circuit topology analysis: connectivity, DC paths, and structural
// predictions about the MNA matrices.
//
// The most important client is the eq. 26 decision: the matrix G of the
// pencil is structurally singular exactly when some group of nodes has no
// DC path (through the elements that stamp into G) to the datum node —
// e.g. the paper's PEEC circuit, where inductors never touch ground.
// Knowing that *before* factorization gives better diagnostics and lets
// SyMPVL pick a shift up front instead of failing first.
#pragma once

#include <string>
#include <vector>

#include "circuit/mna.hpp"

namespace sympvl {

/// Connected-component labelling of the circuit graph (all element types
/// as edges, datum included as node 0). component_of[node] in
/// [0, component_count).
struct ConnectivityReport {
  std::vector<Index> component_of;
  Index component_count = 0;
  bool fully_connected = false;  ///< single component containing the datum
};

ConnectivityReport analyze_connectivity(const Netlist& netlist);

/// Per-node check for a DC path to the datum node through the elements
/// that stamp into G for the given assembly form:
///   * general RLC / RL forms: resistors and inductors conduct at DC;
///   * RC form: only resistors;
///   * LC form: only inductors (G = A_lᵀℒ⁻¹A_l).
/// Returns true when EVERY non-datum node has such a path — the structural
/// condition for G to be nonsingular.
bool has_dc_path_to_ground(const Netlist& netlist, MnaForm form);

/// Nodes lacking the DC path (empty when has_dc_path_to_ground is true).
std::vector<Index> floating_nodes(const Netlist& netlist, MnaForm form);

/// Basic structural statistics used by reports and documentation.
struct NetlistStats {
  Index nodes = 0;  ///< non-datum
  Index resistors = 0;
  Index capacitors = 0;
  Index inductors = 0;
  Index mutuals = 0;
  Index ports = 0;
  Index components = 0;
  bool g_structurally_singular_general = false;
  bool g_structurally_singular_special = false;  ///< for the kAuto form
};

NetlistStats netlist_stats(const Netlist& netlist);

/// Human-readable one-paragraph summary (used by examples/benches).
std::string describe(const Netlist& netlist);

}  // namespace sympvl
