// Experiment E16 (extension) — multipoint expansion engine on the Fig. 5
// interconnect: single-point vs stitched multipoint over a wideband
// sweep, and the factorization economy of the shared FactorCache.
//
// The multipoint session factors each expansion point once and shares
// that factorization between the per-point SyMPVL runs, the union-basis
// stitch, the validation sweeps, and every later (warm) run. The tables
// and BENCH_multipoint.json quantify both axes: model accuracy at equal
// total order, and factorization counts cold vs warm — a warm run must
// perform strictly fewer factorizations than points × runs.
#include <chrono>

#include "bench_util.hpp"
#include "gen/rc_interconnect.hpp"
#include "linalg/factor_cache.hpp"
#include "mor/multipoint.hpp"
#include "mor/rational.hpp"
#include "mor/sympvl.hpp"
#include "sim/ac.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const MnaSystem& system_ref() {
  static const MnaSystem sys = build_mna(
      make_interconnect_circuit({.wires = 8, .segments = 160}).netlist,
      MnaForm::kRC);
  return sys;
}

constexpr double kFMin = 1e5;
constexpr double kFMax = 2e10;
constexpr Index kPoints = 3;
constexpr Index kRuns = 3;

MultipointOptions session_options(const MnaSystem& sys, FactorCache* cache) {
  MultipointOptions opt;
  // One block iteration per point at p ports each: the stitched order
  // stays within the same total the single-point model gets below.
  opt.total_order = kPoints * sys.port_count();
  opt.f_min = kFMin;
  opt.f_max = kFMax;
  opt.s0_points = rational_shifts_for_band(sys, kFMin, kFMax, kPoints);
  opt.cache = cache;
  return opt;
}

void print_tables() {
  const MnaSystem& sys = system_ref();
  std::printf("Fig. 5 interconnect: MNA size %lld, %lld ports\n",
              static_cast<long long>(sys.size()),
              static_cast<long long>(sys.port_count()));
  const Vec freqs = log_frequency_grid(kFMin, kFMax, 25);
  const SweepResult exact = AcSweepEngine(sys).sweep(freqs);

  // ---- accuracy at equal total order: best single point vs stitched ----
  const Index total_order = kPoints * sys.port_count();
  const Vec candidates = rational_shifts_for_band(sys, kFMin, kFMax, kPoints);
  double best_single = 1e300;
  for (double s0 : candidates) {
    SympvlOptions sopt;
    sopt.order = total_order;
    sopt.s0 = s0;
    const ReducedModel rom = sympvl_reduce(sys, sopt);
    best_single =
        std::min(best_single, max_rel_err_sweep(rom.sweep(freqs), exact));
  }

  FactorCache cache(128);
  MultipointSession mp(sys, session_options(sys, &cache));
  const double multi_err = max_rel_err_sweep(mp.sweep(freqs), exact);
  csv_begin("multipoint: wideband accuracy at equal total order",
            {"total_order", "stitched_order", "best_single_err", "multi_err"});
  csv_row({static_cast<double>(total_order),
           static_cast<double>(mp.report().stitched_order), best_single,
           multi_err});

  // ---- factorization economy: cold vs warm cache over repeated runs ----
  cache.clear();
  cache.reset_stats();
  double t0 = now_ms();
  std::uint64_t cold_factorizations = 0;
  {
    const MultipointSession cold(sys, session_options(sys, &cache));
    cold_factorizations = cold.report().factorizations;
  }
  const double cold_ms = now_ms() - t0;

  std::uint64_t warm_factorizations = 0;
  std::uint64_t warm_hits = 0;
  t0 = now_ms();
  for (Index run = 0; run < kRuns; ++run) {
    const MultipointSession warm(sys, session_options(sys, &cache));
    warm_factorizations += warm.report().factorizations;
    warm_hits += warm.report().cache_hits;
  }
  const double warm_ms = (now_ms() - t0) / kRuns;

  csv_begin("multipoint: factorizations cold vs warm cache",
            {"points", "runs", "cold_factorizations", "warm_factorizations",
             "points_x_runs", "warm_cache_hits", "cold_build_ms",
             "warm_build_ms"});
  csv_row({static_cast<double>(kPoints), static_cast<double>(kRuns),
           static_cast<double>(cold_factorizations),
           static_cast<double>(warm_factorizations),
           static_cast<double>(kPoints * kRuns),
           static_cast<double>(warm_hits), cold_ms, warm_ms});

  json_emit(
      "BENCH_multipoint.json",
      {{"mna_size", static_cast<double>(sys.size())},
       {"ports", static_cast<double>(sys.port_count())},
       {"points", static_cast<double>(kPoints)},
       {"runs", static_cast<double>(kRuns)},
       {"total_order", static_cast<double>(total_order)},
       {"stitched_order", static_cast<double>(mp.report().stitched_order)},
       {"best_single_err", best_single},
       {"multi_err", multi_err},
       {"cold_factorizations", static_cast<double>(cold_factorizations)},
       {"warm_factorizations", static_cast<double>(warm_factorizations)},
       {"points_x_runs", static_cast<double>(kPoints * kRuns)},
       {"warm_cache_hits", static_cast<double>(warm_hits)},
       {"cold_build_ms", cold_ms},
       {"warm_build_ms", warm_ms}});
}

void bm_multipoint_cold(benchmark::State& state) {
  const MnaSystem& sys = system_ref();
  for (auto _ : state) {
    FactorCache cache(128);
    const MultipointSession mp(sys, session_options(sys, &cache));
    benchmark::DoNotOptimize(mp.point_count());
  }
}
BENCHMARK(bm_multipoint_cold)->Unit(benchmark::kMillisecond);

void bm_multipoint_warm(benchmark::State& state) {
  const MnaSystem& sys = system_ref();
  FactorCache cache(128);
  { const MultipointSession prime(sys, session_options(sys, &cache)); }
  for (auto _ : state) {
    const MultipointSession mp(sys, session_options(sys, &cache));
    benchmark::DoNotOptimize(mp.point_count());
  }
}
BENCHMARK(bm_multipoint_warm)->Unit(benchmark::kMillisecond);

}  // namespace

SYMPVL_BENCH_MAIN(print_tables)
