#include "circuit/parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

namespace sympvl {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream in(line);
  std::string t;
  while (in >> t) {
    if (t[0] == '*' || t[0] == ';') break;  // trailing comment
    toks.push_back(t);
  }
  return toks;
}

[[noreturn]] void fail(size_t line_no, const std::string& msg) {
  throw Error(ErrorCode::kIo,
              "netlist parse error at line " + std::to_string(line_no) + ": " + msg,
              {.stage = "parser", .index = static_cast<Index>(line_no)});
}

struct Card {
  std::vector<std::string> tokens;
  size_t line_no = 0;
};

struct SubcktDef {
  std::string name;
  std::vector<std::string> pins;  // local node names
  std::vector<Card> body;
};

constexpr int kMaxInstanceDepth = 32;

// Recursive flattening context.
struct Flattener {
  Netlist& netlist;
  std::map<std::string, Index>& nodes;              // global node table
  std::map<std::string, Index>& inductor_names;     // scoped (prefixed) names
  const std::map<std::string, SubcktDef>& subckts;

  Index node_of(const std::string& tok, const std::string& prefix,
                const std::map<std::string, std::string>& pin_map) {
    const std::string key = lower(tok);
    if (key == "0" || key == "gnd") return 0;
    const auto pin = pin_map.find(key);
    const std::string global = (pin != pin_map.end()) ? pin->second : prefix + key;
    if (global == "0") return 0;  // pin wired to ground by the parent
    const auto it = nodes.find(global);
    if (it != nodes.end()) return it->second;
    const Index n = netlist.new_node();
    nodes.emplace(global, n);
    return n;
  }

  void process(const std::vector<Card>& cards, const std::string& prefix,
               const std::map<std::string, std::string>& pin_map, int depth) {
    require(depth <= kMaxInstanceDepth,
            "netlist parse error: subcircuit instances nested deeper than 32 "
            "(recursive definition?)");
    for (const auto& card : cards) {
      const auto& toks = card.tokens;
      const size_t line_no = card.line_no;
      const std::string head = lower(toks[0]);

      if (head == ".port") {
        if (!prefix.empty())
          fail(line_no, ".port is only allowed at the top level");
        if (toks.size() < 3 || toks.size() > 4)
          fail(line_no, ".port expects: .port <name> n1 [n2]");
        const Index n1 = node_of(toks[2], prefix, pin_map);
        const Index n2 =
            toks.size() == 4 ? node_of(toks[3], prefix, pin_map) : 0;
        netlist.add_port(n1, n2, toks[1]);
        continue;
      }
      if (head[0] == '.') fail(line_no, "unknown directive '" + toks[0] + "'");

      switch (head[0]) {
        case 'r': {
          if (toks.size() != 4) fail(line_no, "R card expects: Rname n1 n2 value");
          netlist.add_resistor(node_of(toks[1], prefix, pin_map),
                               node_of(toks[2], prefix, pin_map),
                               parse_value(toks[3]), prefix + toks[0]);
          break;
        }
        case 'c': {
          if (toks.size() != 4) fail(line_no, "C card expects: Cname n1 n2 value");
          netlist.add_capacitor(node_of(toks[1], prefix, pin_map),
                                node_of(toks[2], prefix, pin_map),
                                parse_value(toks[3]), prefix + toks[0]);
          break;
        }
        case 'l': {
          if (toks.size() != 4) fail(line_no, "L card expects: Lname n1 n2 value");
          const Index idx = netlist.add_inductor(
              node_of(toks[1], prefix, pin_map),
              node_of(toks[2], prefix, pin_map), parse_value(toks[3]),
              prefix + toks[0]);
          inductor_names[lower(prefix + toks[0])] = idx;
          break;
        }
        case 'k': {
          if (toks.size() != 4) fail(line_no, "K card expects: Kname L1 L2 k");
          const auto i1 = inductor_names.find(lower(prefix + toks[1]));
          const auto i2 = inductor_names.find(lower(prefix + toks[2]));
          if (i1 == inductor_names.end() || i2 == inductor_names.end())
            fail(line_no, "K card references unknown inductor");
          netlist.add_mutual(i1->second, i2->second, parse_value(toks[3]),
                             prefix + toks[0]);
          break;
        }
        case 'i': {
          if (toks.size() != 4) fail(line_no, "I card expects: Iname n1 n2 value");
          netlist.add_current_source(node_of(toks[1], prefix, pin_map),
                                     node_of(toks[2], prefix, pin_map),
                                     parse_value(toks[3]), prefix + toks[0]);
          break;
        }
        case 'x': {
          // Xname n1 … nk subname
          if (toks.size() < 3)
            fail(line_no, "X card expects: Xname n1 ... nk subname");
          const std::string subname = lower(toks.back());
          const auto def = subckts.find(subname);
          if (def == subckts.end())
            fail(line_no, "unknown subcircuit '" + toks.back() + "'");
          const size_t npins = def->second.pins.size();
          if (toks.size() != npins + 2)
            fail(line_no, "instance of '" + toks.back() + "' expects " +
                              std::to_string(npins) + " pins");
          // Map local pin names to the instance's global node names: the
          // connecting nodes are resolved in the PARENT scope.
          std::map<std::string, std::string> inst_map;
          for (size_t k = 0; k < npins; ++k) {
            const std::string& parent_tok = toks[1 + k];
            const std::string parent_key = lower(parent_tok);
            std::string global;
            if (parent_key == "0" || parent_key == "gnd") {
              global = "0";
            } else {
              const auto pin = pin_map.find(parent_key);
              global = (pin != pin_map.end()) ? pin->second : prefix + parent_key;
            }
            // Register the node now so "0" maps to ground and others exist.
            if (global != "0") node_of(parent_tok, prefix, pin_map);
            inst_map[lower(def->second.pins[k])] = global;
          }
          // Ground inside the instance: a pin mapped to "0" resolves through
          // node_of's special case using this sentinel mapping.
          const std::string inst_prefix = prefix + lower(toks[0]) + ".";
          process(def->second.body, inst_prefix, inst_map, depth + 1);
          break;
        }
        default:
          fail(line_no, "unknown element card '" + toks[0] + "'");
      }
    }
  }
};

}  // namespace

double parse_value(const std::string& token) {
  require(!token.empty(), "parse_value: empty token");
  const std::string t = lower(token);
  size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(t, &pos);
  } catch (const std::exception&) {
    throw Error(ErrorCode::kIo, "parse_value: malformed number '" + token + "'",
                {.stage = "parser"});
  }
  const std::string suffix = t.substr(pos);
  if (suffix.empty()) return v;
  // SPICE semantics: "meg" = 1e6, bare "m" = 1e-3. Alphabetic tail after
  // the scale letter (unit names like "pF") is ignored, SPICE-style.
  if (suffix.rfind("meg", 0) == 0) return v * 1e6;
  switch (suffix[0]) {
    case 'f': return v * 1e-15;
    case 'p': return v * 1e-12;
    case 'n': return v * 1e-9;
    case 'u': return v * 1e-6;
    case 'm': return v * 1e-3;
    case 'k': return v * 1e3;
    case 'g': return v * 1e9;
    case 't': return v * 1e12;
    default:
      throw Error(ErrorCode::kIo,
                  "parse_value: unknown suffix '" + suffix + "' in '" + token + "'",
                  {.stage = "parser"});
  }
}

Netlist parse_netlist(std::istream& in) {
  // ---- Pass 1: tokenize, split into subckt definitions and main body. --
  std::map<std::string, SubcktDef> subckts;
  std::vector<Card> main_body;
  SubcktDef* open_def = nullptr;

  std::string line;
  size_t line_no = 0;
  bool ended = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (ended) break;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '*' || line[first] == ';') continue;
    auto toks = tokenize(line.substr(first));
    if (toks.empty()) continue;
    const std::string head = lower(toks[0]);

    if (head == ".end") {
      if (open_def != nullptr) fail(line_no, ".end inside a .subckt block");
      ended = true;
      continue;
    }
    if (head == ".subckt") {
      if (open_def != nullptr) fail(line_no, "nested .subckt definitions");
      if (toks.size() < 3)
        fail(line_no, ".subckt expects: .subckt <name> pin1 [pin2 ...]");
      SubcktDef def;
      def.name = lower(toks[1]);
      for (size_t k = 2; k < toks.size(); ++k) def.pins.push_back(lower(toks[k]));
      if (subckts.count(def.name))
        fail(line_no, "duplicate subcircuit '" + toks[1] + "'");
      open_def = &subckts.emplace(def.name, std::move(def)).first->second;
      continue;
    }
    if (head == ".ends") {
      if (open_def == nullptr) fail(line_no, ".ends without .subckt");
      if (toks.size() >= 2 && lower(toks[1]) != open_def->name)
        fail(line_no, ".ends name does not match the open .subckt");
      open_def = nullptr;
      continue;
    }
    Card card{std::move(toks), line_no};
    if (open_def != nullptr)
      open_def->body.push_back(std::move(card));
    else
      main_body.push_back(std::move(card));
  }
  require(open_def == nullptr, "netlist parse error: unterminated .subckt");

  // ---- Pass 2: flatten. ----
  Netlist nl;
  std::map<std::string, Index> nodes;
  std::map<std::string, Index> inductor_names;
  Flattener flattener{nl, nodes, inductor_names, subckts};
  flattener.process(main_body, "", {}, 0);
  nl.validate();
  return nl;
}

Netlist parse_netlist(const std::string& text) {
  std::istringstream in(text);
  return parse_netlist(in);
}

Netlist parse_netlist_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "parse_netlist_file: cannot open '" + path + "'");
  return parse_netlist(in);
}

namespace {

void write_cards(std::ostream& out, const Netlist& netlist) {
  for (const auto& r : netlist.resistors())
    out << r.name << " " << r.n1 << " " << r.n2 << " " << r.resistance << "\n";
  for (const auto& c : netlist.capacitors())
    out << c.name << " " << c.n1 << " " << c.n2 << " " << c.capacitance << "\n";
  for (const auto& l : netlist.inductors())
    out << l.name << " " << l.n1 << " " << l.n2 << " " << l.inductance << "\n";
  for (const auto& k : netlist.mutuals())
    out << k.name << " "
        << netlist.inductors()[static_cast<size_t>(k.l1)].name << " "
        << netlist.inductors()[static_cast<size_t>(k.l2)].name << " "
        << k.coupling << "\n";
  for (const auto& s : netlist.current_sources())
    out << s.name << " " << s.n1 << " " << s.n2 << " " << s.value << "\n";
}

}  // namespace

std::string write_netlist(const Netlist& netlist, const std::string& title) {
  std::ostringstream out;
  out.precision(17);
  if (!title.empty()) out << "* " << title << "\n";
  write_cards(out, netlist);
  for (const auto& p : netlist.ports())
    out << ".port " << p.name << " " << p.n1 << " " << p.n2 << "\n";
  out << ".end\n";
  return out.str();
}

std::string write_subckt(const Netlist& netlist, const std::string& name,
                         const std::string& title) {
  require(!name.empty(), "write_subckt: empty subcircuit name");
  require(netlist.port_count() >= 1, "write_subckt: netlist has no ports");
  std::ostringstream out;
  out.precision(17);
  if (!title.empty()) out << "* " << title << "\n";
  out << ".subckt " << name;
  for (const auto& p : netlist.ports()) {
    require(p.n2 == 0,
            "write_subckt: only ground-referenced ports can become pins");
    out << " " << p.n1;
  }
  out << "\n";
  write_cards(out, netlist);
  out << ".ends " << name << "\n";
  return out.str();
}

}  // namespace sympvl
