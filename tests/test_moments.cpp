#include "mor/moments.hpp"

#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

TEST(Moments, ZerothMomentIsDcImpedance) {
  Netlist nl;
  nl.add_resistor(1, 2, 100.0);
  nl.add_resistor(2, 0, 300.0);
  nl.add_capacitor(2, 0, 1e-12);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  const auto m = exact_moments(sys, 1);
  EXPECT_NEAR(m[0](0, 0), 400.0, 1e-9);
}

TEST(Moments, SingleRcPoleAnalytic) {
  // Z(s) = R/(1+sRC): mₖ = R·(RC)ᵏ in the series Σ(−s)ᵏmₖ.
  const double r = 200.0, c = 3e-12;
  Netlist nl;
  nl.add_resistor(1, 0, r);
  nl.add_capacitor(1, 0, c);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  const Vec m = exact_moments_scalar(sys, 5);
  for (Index k = 0; k < 5; ++k)
    EXPECT_NEAR(m[static_cast<size_t>(k)], r * std::pow(r * c, static_cast<double>(k)),
                1e-9 * r * std::pow(r * c, static_cast<double>(k)));
}

TEST(Moments, MatricesAreSymmetric) {
  const Netlist nl = random_rc({.nodes = 25, .ports = 3, .seed = 2});
  const auto m = exact_moments(build_mna(nl), 4);
  for (const auto& mk : m)
    EXPECT_NEAR(mk.asymmetry(), 0.0, 1e-10 * (1.0 + mk.max_abs()));
}

TEST(Moments, TaylorSeriesReconstructsZNearZero) {
  const Netlist nl = random_rc({.nodes = 20, .ports = 1, .seed = 3});
  const MnaSystem sys = build_mna(nl);
  const Vec m = exact_moments_scalar(sys, 12);
  // Pick s small relative to the slowest time constant so the series
  // converges quickly (m_{k+1}/m_k → the dominant eigenvalue of G⁻¹C).
  const double scale = std::abs(m[11] / m[10]);
  const Complex s(0.1 / scale, 0.05 / scale);
  Complex series(0.0, 0.0);
  Complex power(1.0, 0.0);
  for (size_t k = 0; k < m.size(); ++k) {
    series += power * m[k];
    power *= -s;
  }
  const Complex exact = ac_z_matrix(sys, s)(0, 0);
  EXPECT_NEAR(std::abs(series - exact), 0.0, 1e-6 * std::abs(exact));
}

TEST(Moments, ShiftedMomentsMatchShiftedSeries) {
  const Netlist nl = random_rc({.nodes = 15, .ports = 1, .seed = 4});
  const MnaSystem sys = build_mna(nl);
  const double s0 = 1e9;
  const Vec m = exact_moments_scalar(sys, 10, s0);
  // Series about s0 evaluated at s = s0 + σ'.
  const double scale = std::abs(m[9] / m[8]);
  const Complex sigma(0.05 / scale, 0.0);
  Complex series(0.0, 0.0), power(1.0, 0.0);
  for (size_t k = 0; k < m.size(); ++k) {
    series += power * m[k];
    power *= -sigma;
  }
  const Complex exact = ac_z_matrix(sys, Complex(s0, 0.0) + sigma)(0, 0);
  EXPECT_NEAR(std::abs(series - exact), 0.0, 1e-7 * std::abs(exact));
}

TEST(Moments, RequiresPositiveCount) {
  const Netlist nl = random_rc({.nodes = 5, .ports = 1, .seed = 5});
  EXPECT_THROW(exact_moments(build_mna(nl), 0), Error);
}

TEST(Moments, ScalarRequiresOnePort) {
  const Netlist nl = random_rc({.nodes = 10, .ports = 2, .seed = 6});
  EXPECT_THROW(exact_moments_scalar(build_mna(nl), 3), Error);
}

}  // namespace
}  // namespace sympvl
