#include "linalg/factor_cache.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "fault.hpp"
#include "gen/package.hpp"
#include "gen/peec.hpp"
#include "gen/random_circuit.hpp"
#include "linalg/sparse_ldlt.hpp"
#include "mor/arnoldi.hpp"
#include "mor/lanczos.hpp"
#include "mor/pencil.hpp"
#include "mor/pvl.hpp"
#include "mor/sympvl.hpp"
#include "mor/sypvl.hpp"
#include "obs/memstat.hpp"
#include "obs/obs.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

double rel_err(const CMat& a, const CMat& b) {
  double num = 0.0, den = 0.0;
  for (Index i = 0; i < a.rows(); ++i)
    for (Index j = 0; j < a.cols(); ++j) {
      num = std::max(num, std::abs(a(i, j) - b(i, j)));
      den = std::max(den, std::abs(b(i, j)));
    }
  return num / (den + 1e-300);
}

MnaSystem small_rc() {
  return build_mna(random_rc({.nodes = 40, .ports = 2, .seed = 11}));
}

FactorCache::RealMaker maker_for(const MnaSystem& sys,
                                 const PencilFactorOptions& opt) {
  return [&sys, opt] {
    return std::make_shared<const FactorizedPencil>(sys.G, sys.C, opt);
  };
}

TEST(FactorCache, MissThenHitReturnsSameFactorization) {
  const MnaSystem sys = small_rc();
  const PencilFingerprint fp = fingerprint_pencil(sys.G, sys.C);
  FactorCache cache(4);
  PencilFactorOptions opt;
  opt.shift = 1e9;

  bool hit = true;
  const auto a = cache.acquire(fp, opt, maker_for(sys, opt), &hit);
  EXPECT_FALSE(hit);
  const auto b = cache.acquire(fp, opt, maker_for(sys, opt), &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.get(), b.get());  // the same shared factorization

  const FactorCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.factorizations, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FactorCache, DistinctKeysDistinctEntries) {
  const MnaSystem sys = small_rc();
  const PencilFingerprint fp = fingerprint_pencil(sys.G, sys.C);
  FactorCache cache(8);
  PencilFactorOptions a;
  a.shift = 0.0;
  PencilFactorOptions b;
  b.shift = 2e9;
  PencilFactorOptions c;
  c.shift = 0.0;
  c.ordering = Ordering::kNatural;
  cache.acquire(fp, a, maker_for(sys, a));
  cache.acquire(fp, b, maker_for(sys, b));
  cache.acquire(fp, c, maker_for(sys, c));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(FactorCache, LruEvictionDropsOldest) {
  const MnaSystem sys = small_rc();
  const PencilFingerprint fp = fingerprint_pencil(sys.G, sys.C);
  FactorCache cache(2);
  auto opt_at = [](double s0) {
    PencilFactorOptions o;
    o.shift = s0;
    return o;
  };
  for (double s0 : {1e8, 2e8, 3e8}) {  // 1e8 falls off the back
    const auto o = opt_at(s0);
    cache.acquire(fp, o, maker_for(sys, o));
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  bool hit = false;
  auto o3 = opt_at(3e8);
  cache.acquire(fp, o3, maker_for(sys, o3), &hit);
  EXPECT_TRUE(hit);  // most recent survives
  auto o1 = opt_at(1e8);
  cache.acquire(fp, o1, maker_for(sys, o1), &hit);
  EXPECT_FALSE(hit);  // the evicted entry is gone
}

TEST(FactorCache, TouchRefreshesLruOrder) {
  const MnaSystem sys = small_rc();
  const PencilFingerprint fp = fingerprint_pencil(sys.G, sys.C);
  FactorCache cache(2);
  auto opt_at = [](double s0) {
    PencilFactorOptions o;
    o.shift = s0;
    return o;
  };
  const auto o1 = opt_at(1e8), o2 = opt_at(2e8), o3 = opt_at(3e8);
  cache.acquire(fp, o1, maker_for(sys, o1));
  cache.acquire(fp, o2, maker_for(sys, o2));
  cache.acquire(fp, o1, maker_for(sys, o1));  // touch: 1e8 becomes MRU
  cache.acquire(fp, o3, maker_for(sys, o3));  // evicts 2e8, not 1e8
  bool hit = false;
  cache.acquire(fp, o1, maker_for(sys, o1), &hit);
  EXPECT_TRUE(hit);
  cache.acquire(fp, o2, maker_for(sys, o2), &hit);
  EXPECT_FALSE(hit);
}

TEST(FactorCache, FingerprintDistinguishesValueChanges) {
  Netlist nl;
  nl.add_resistor(1, 0, 100.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_port(1, 0);
  const MnaSystem sys1 = build_mna(nl);
  Netlist nl2;
  nl2.add_resistor(1, 0, 101.0);  // same pattern, different value
  nl2.add_capacitor(1, 0, 1e-12);
  nl2.add_port(1, 0);
  const MnaSystem sys2 = build_mna(nl2);
  const PencilFingerprint a = fingerprint_pencil(sys1.G, sys1.C);
  const PencilFingerprint b = fingerprint_pencil(sys2.G, sys2.C);
  EXPECT_NE(a.g, b.g);
  EXPECT_EQ(a.c, b.c);
}

TEST(FactorCache, FaultModeBypassesCacheEntirely) {
  const MnaSystem sys = small_rc();
  const PencilFingerprint fp = fingerprint_pencil(sys.G, sys.C);
  FactorCache cache(4);
  PencilFactorOptions opt;
  opt.shift = 1e9;
  fault::arm("ldlt.pivot@999999");  // armed but never triggering
  ASSERT_TRUE(fault::active());
  bool hit = true;
  cache.acquire(fp, opt, maker_for(sys, opt), &hit);
  EXPECT_FALSE(hit);
  cache.acquire(fp, opt, maker_for(sys, opt), &hit);
  EXPECT_FALSE(hit);  // second acquire refactors too: never read
  fault::disarm();
  EXPECT_EQ(cache.size(), 0u);  // never written
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().factorizations, 2u);

  // After disarming, the cache works again.
  cache.acquire(fp, opt, maker_for(sys, opt), &hit);
  EXPECT_FALSE(hit);
  cache.acquire(fp, opt, maker_for(sys, opt), &hit);
  EXPECT_TRUE(hit);
}

TEST(FactorCache, FailedFactorizationIsNotCached) {
  // Pure-C netlist: G is singular at shift 0; the maker throws.
  Netlist nl;
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  const PencilFingerprint fp = fingerprint_pencil(sys.G, sys.C);
  FactorCache cache(4);
  PencilFactorOptions opt;  // shift 0 → singular
  EXPECT_THROW(cache.acquire(fp, opt, maker_for(sys, opt)), Error);
  EXPECT_EQ(cache.size(), 0u);
}

// ---- The acceptance check of the issue: SyMPVL at s₀ followed by an
// exact AC solve at the same point costs exactly ONE factorization. ----
TEST(FactorCache, CrossDriverReuseSingleFactorization) {
  const MnaSystem sys = small_rc();
  FactorCache cache(8);
  const double s0 = 1e9;

  obs::enable(true);
  const double hits_before = obs::counter("factor_cache.hit").value();

  SympvlOptions opt;
  opt.order = 6;
  opt.s0 = s0;
  opt.factor_cache = &cache;
  const ReducedModel rom = sympvl_reduce(sys, opt);
  EXPECT_EQ(cache.stats().factorizations, 1u);

  // Exact Z at the purely real point s = s₀ (kS variable: fs = s): the
  // engine adapts the cached real M J Mᵀ factorization instead of
  // refactoring.
  AcSweepEngine engine(sys, &cache);
  const CMat z_cached = engine.z_at(Complex(s0, 0.0));
  EXPECT_EQ(cache.stats().factorizations, 1u)
      << "the AC engine must reuse the driver's factorization";
  EXPECT_GE(cache.stats().hits, 1u);
  const double hits_after = obs::counter("factor_cache.hit").value();
  EXPECT_GE(hits_after - hits_before, 1.0);
  obs::enable(false);

  // The adapted solve agrees with a from-scratch complex factorization.
  FactorCache fresh(8);
  AcSweepEngine reference(sys, &fresh);
  EXPECT_LT(rel_err(z_cached, reference.z_at(Complex(s0, 0.0))), 1e-10);

  // And the reduced model is exact for this state-space dimension at s₀.
  EXPECT_EQ(rom.shift(), s0);
}

TEST(FactorCache, WarmCacheReductionIsBitIdentical) {
  const MnaSystem sys = small_rc();
  FactorCache cache(8);
  SympvlOptions opt;
  opt.order = 8;
  opt.s0 = 5e8;
  opt.factor_cache = &cache;

  const ReducedModel cold = sympvl_reduce(sys, opt);
  ASSERT_EQ(cache.stats().hits, 0u);
  const ReducedModel warm = sympvl_reduce(sys, opt);
  EXPECT_GE(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().factorizations, 1u);

  EXPECT_EQ((cold.t() - warm.t()).max_abs(), 0.0);
  EXPECT_EQ((cold.delta() - warm.delta()).max_abs(), 0.0);
  EXPECT_EQ((cold.rho() - warm.rho()).max_abs(), 0.0);
}

// In-test replication of the pre-refactor SyMPVL pipeline: direct LDLᵀ,
// per-vector closure operator, band_lanczos, ReducedModel. The
// FactorizedPencil path must reproduce it to the last bit (≤ 1e-13 per
// the issue's acceptance criterion; equality by construction).
ReducedModel direct_reference(const MnaSystem& sys, double s0,
                              const SympvlOptions& opt) {
  const SMat gt = (s0 == 0.0) ? sys.G : SMat::add(sys.G, 1.0, sys.C, s0);
  const LDLT fact(gt, opt.ordering, /*zero_pivot_tol=*/1e-12);
  const Vec j = fact.j_signs();
  const Index n = sys.size();
  Mat start(n, sys.port_count());
  for (Index col = 0; col < sys.port_count(); ++col) {
    Vec v = fact.solve_m(sys.B.col(col));
    for (Index i = 0; i < n; ++i)
      v[static_cast<size_t>(i)] *= j[static_cast<size_t>(i)];
    start.set_col(col, v);
  }
  const CallableOperator op([&](const Vec& v) {
    Vec w = fact.solve_mt(v);
    w = sys.C.multiply(w);
    w = fact.solve_m(w);
    for (size_t i = 0; i < w.size(); ++i) w[i] *= j[i];
    return w;
  });
  LanczosOptions lopt;
  lopt.max_order = opt.order;
  lopt.deflation_tol = opt.deflation_tol;
  lopt.lookahead_tol = opt.lookahead_tol;
  lopt.full_reorthogonalization = opt.full_reorthogonalization;
  lopt.max_cluster_size = opt.max_cluster_size;
  return ReducedModel(band_lanczos(op, start, j, lopt), sys.variable,
                      sys.s_prefactor, s0);
}

TEST(FactorCache, RefactoredSympvlMatchesDirectPathOnPackage) {
  const PackageCircuit pkg =
      make_package_circuit({.pins = 8, .segments = 3, .signal_pins = 2});
  const MnaSystem sys = build_mna(pkg.netlist, MnaForm::kAuto);
  const double s0 = 2.0 * M_PI * 1e9;
  SympvlOptions opt;
  opt.order = 12;
  opt.s0 = s0;
  FactorCache cache(4);
  opt.factor_cache = &cache;
  const ReducedModel refactored = sympvl_reduce(sys, opt);
  const ReducedModel reference = direct_reference(sys, s0, opt);
  ASSERT_EQ(refactored.order(), reference.order());
  EXPECT_LE((refactored.t() - reference.t()).max_abs(), 1e-13);
  EXPECT_LE((refactored.delta() - reference.delta()).max_abs(), 1e-13);
  EXPECT_LE((refactored.rho() - reference.rho()).max_abs(), 1e-13);
}

TEST(FactorCache, RefactoredSympvlMatchesDirectPathOnPeec) {
  const PeecCircuit peec = make_peec_circuit({.grid = 4});
  const MnaSystem& sys = peec.system;
  const double s0 = automatic_shift(sys);  // LC: G is singular, shift needed
  SympvlOptions opt;
  opt.order = 10;
  opt.s0 = s0;
  FactorCache cache(4);
  opt.factor_cache = &cache;
  const ReducedModel refactored = sympvl_reduce(sys, opt);
  const ReducedModel reference = direct_reference(sys, s0, opt);
  ASSERT_EQ(refactored.order(), reference.order());
  EXPECT_LE((refactored.t() - reference.t()).max_abs(), 1e-13);
  EXPECT_LE((refactored.delta() - reference.delta()).max_abs(), 1e-13);
  EXPECT_LE((refactored.rho() - reference.rho()).max_abs(), 1e-13);
}

TEST(FactorCache, AllDriversShareOneFactorizationAtSameShift) {
  const MnaSystem sys =
      build_mna(random_rc({.nodes = 30, .ports = 1, .seed = 21}));
  FactorCache cache(8);
  const double s0 = 1e9;

  SympvlOptions sopt;
  sopt.order = 6;
  sopt.s0 = s0;
  sopt.factor_cache = &cache;
  sympvl_reduce(sys, sopt);
  EXPECT_EQ(cache.stats().factorizations, 1u);

  sypvl_reduce(sys, sopt);
  EXPECT_EQ(cache.stats().factorizations, 1u);

  PvlOptions popt;
  popt.order = 6;
  popt.s0 = s0;
  popt.factor_cache = &cache;
  pvl_reduce_entry(sys, 0, 0, popt);
  EXPECT_EQ(cache.stats().factorizations, 1u);

  ArnoldiOptions aopt;
  aopt.order = 6;
  aopt.s0 = s0;
  aopt.factor_cache = &cache;
  arnoldi_reduce(sys, aopt);
  EXPECT_EQ(cache.stats().factorizations, 1u)
      << "all four drivers must share the single cached factorization";
  EXPECT_GE(cache.stats().hits, 3u);
}

TEST(FactorCache, ConcurrentAcquireIsSafeAndConsistent) {
  const MnaSystem sys = small_rc();
  const PencilFingerprint fp = fingerprint_pencil(sys.G, sys.C);
  FactorCache cache(4);
  constexpr int kThreads = 4;
  constexpr int kIters = 16;
  std::vector<std::thread> threads;
  std::vector<int> ok(kThreads, 0);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        PencilFactorOptions opt;
        opt.shift = (i % 2 == 0) ? 1e9 : 2e9;  // two hot keys
        const auto pencil = cache.acquire(fp, opt, maker_for(sys, opt));
        if (pencil != nullptr && pencil->size() == sys.size()) ++ok[t];
      }
    });
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(ok[t], kIters);
  const FactorCacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_LE(cache.size(), 4u);
}

TEST(FactorCache, ByteAccountingRisesOnMissFallsOnEvict) {
  const MnaSystem sys = small_rc();
  const PencilFingerprint fp = fingerprint_pencil(sys.G, sys.C);
  obs::ByteGauge& gauge = obs::byte_gauge("factor_cache.resident_bytes");
  const std::int64_t gauge_base = gauge.value();
  std::int64_t r2 = 0;
  {
    FactorCache cache(2);
    EXPECT_EQ(cache.stats().resident_bytes, 0);

    PencilFactorOptions o1, o2, o3;
    o1.shift = 1e8;
    o2.shift = 2e8;
    o3.shift = 3e8;

    cache.acquire(fp, o1, maker_for(sys, o1));
    const std::int64_t r1 = cache.stats().resident_bytes;
    EXPECT_GT(r1, 0);
    EXPECT_EQ(cache.stats().peak_resident_bytes, r1);
    EXPECT_EQ(gauge.value(), gauge_base + r1);

    cache.acquire(fp, o2, maker_for(sys, o2));
    r2 = cache.stats().resident_bytes;
    EXPECT_GT(r2, r1);
    EXPECT_EQ(cache.stats().peak_resident_bytes, r2);

    // Third insert into a 2-entry cache: one forced eviction. Resident
    // bytes stay at ~two entries (all entries are same-sized pencils of
    // one circuit), never three.
    cache.acquire(fp, o3, maker_for(sys, o3));
    const FactorCacheStats s3 = cache.stats();
    EXPECT_EQ(s3.evictions, 1u);
    EXPECT_LT(s3.resident_bytes, r2 + r1);
    EXPECT_GT(s3.resident_bytes, 0);
    EXPECT_EQ(gauge.value(), gauge_base + s3.resident_bytes);

    // A capacity shrink is also eviction pressure.
    cache.set_capacity(1);
    const FactorCacheStats s4 = cache.stats();
    EXPECT_EQ(s4.evictions, 2u);
    EXPECT_LT(s4.resident_bytes, s3.resident_bytes);

    // clear() releases the bytes but is NOT an eviction (no pressure).
    cache.clear();
    const FactorCacheStats s5 = cache.stats();
    EXPECT_EQ(s5.resident_bytes, 0);
    EXPECT_EQ(s5.evictions, 2u);
    EXPECT_EQ(gauge.value(), gauge_base);
    // The peak survives as the high-water mark until reset_stats(). (An
    // insert past capacity charges the new entry before the LRU pop, so
    // the peak can momentarily exceed the steady two-entry residency.)
    EXPECT_GE(s5.peak_resident_bytes, r2);
    cache.reset_stats();
    EXPECT_EQ(cache.stats().peak_resident_bytes, 0);

    cache.acquire(fp, o1, maker_for(sys, o1));
    EXPECT_GT(gauge.value(), gauge_base);
  }
  // Destruction uncharges the process-wide gauge for live entries.
  EXPECT_EQ(gauge.value(), gauge_base);
  EXPECT_GE(gauge.peak(), gauge_base + r2);
}

TEST(FactorCache, ClearDropsEntriesKeepsStats) {
  const MnaSystem sys = small_rc();
  const PencilFingerprint fp = fingerprint_pencil(sys.G, sys.C);
  FactorCache cache(4);
  PencilFactorOptions opt;
  opt.shift = 1e9;
  cache.acquire(fp, opt, maker_for(sys, opt));
  ASSERT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().misses, 0u);
}

}  // namespace
}  // namespace sympvl
