file(REMOVE_RECURSE
  "CMakeFiles/model_workflow.dir/model_workflow.cpp.o"
  "CMakeFiles/model_workflow.dir/model_workflow.cpp.o.d"
  "model_workflow"
  "model_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
