// Touchstone (version 1) S-parameter file writer.
//
// The industry interchange format for measured/modeled multi-port
// frequency responses: package and interconnect models reduced with
// SyMPVL can be handed to any RF/SI tool as `.s<N>p` files. Z-parameters
// are converted with the uniform reference impedance z0.
#pragma once

#include <string>
#include <vector>

#include "linalg/dense.hpp"

namespace sympvl {

/// Serializes a sweep as Touchstone v1 text:
///   # HZ S RI R <z0>
/// followed by one frequency block per point (real/imaginary pairs, at
/// most four S entries per line, n-port row-major order per the spec).
std::string write_touchstone(const Vec& frequencies_hz,
                             const std::vector<CMat>& z, double z0 = 50.0,
                             const std::string& comment = "");

/// Writes to `<path>` (conventionally named `name.s<N>p`).
void write_touchstone_file(const std::string& path, const Vec& frequencies_hz,
                           const std::vector<CMat>& z, double z0 = 50.0,
                           const std::string& comment = "");

/// Parses the exact dialect produced by write_touchstone (HZ / S / RI).
/// Returns the S matrices; `z0_out` receives the reference impedance.
std::vector<CMat> parse_touchstone(const std::string& text, Vec& frequencies_hz,
                                   double& z0_out);

}  // namespace sympvl
