#include "mor/sympvl.hpp"

#include <chrono>
#include <cmath>
#include <memory>
#include <utility>

#include "circuit/topology.hpp"
#include "linalg/dense_factor.hpp"
#include "obs/obs.hpp"

namespace sympvl {

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Abstracts the two factorization back-ends behind the M/J interface the
// Lanczos operator needs.
struct SymmetricFactor {
  virtual ~SymmetricFactor() = default;
  virtual Vec solve_m(const Vec& b) const = 0;   // M⁻¹ b
  virtual Vec solve_mt(const Vec& b) const = 0;  // M⁻ᵀ b
  virtual const Vec& j_signs() const = 0;
  /// Copies back-end telemetry (fill, flops) into the report.
  virtual void fill_stats(SympvlReport& report) const { (void)report; }
};

struct SparseFactor final : SymmetricFactor {
  explicit SparseFactor(const SMat& g, Ordering ordering)
      : ldlt(g, ordering, /*zero_pivot_tol=*/1e-12), j(ldlt.j_signs()) {}
  Vec solve_m(const Vec& b) const override { return ldlt.solve_m(b); }
  Vec solve_mt(const Vec& b) const override { return ldlt.solve_mt(b); }
  const Vec& j_signs() const override { return j; }
  void fill_stats(SympvlReport& report) const override {
    report.factor_nnz_l = ldlt.l_nnz();
    report.factor_fill_ratio = ldlt.fill_ratio();
    report.factor_flops = ldlt.flops();
  }
  LDLT ldlt;
  Vec j;
};

struct DenseFactor final : SymmetricFactor {
  explicit DenseFactor(const Mat& g) : bk(g) {
    Mat m;
    bk.symmetric_factor(m, j);
    lu = std::make_unique<LU>(m);
    require(!lu->singular(), ErrorCode::kSingular,
            "sympvl: dense symmetric factor is singular",
            ErrorContext{.stage = "sympvl.dense_factor"});
    mt_lu = std::make_unique<LU>(m.transpose());
  }
  Vec solve_m(const Vec& b) const override { return lu->solve(b); }
  Vec solve_mt(const Vec& b) const override { return mt_lu->solve(b); }
  const Vec& j_signs() const override { return j; }
  BunchKaufman bk;
  std::unique_ptr<LU> lu, mt_lu;
  Vec j;
};

struct FactorOutcome {
  std::unique_ptr<SymmetricFactor> factor;
  double s0 = 0.0;
  bool dense = false;
};

// The SyMPVL factorization ladder (the M/J analogue of FactorChain, which
// cannot serve here because the Lanczos operator needs the split
// M J Mᵀ form, not a plain solve):
//   1. sparse LDLᵀ at the requested s₀;
//   2. sparse LDLᵀ at the automatic shift (when s₀ = 0 and auto enabled);
//   3. sparse LDLᵀ at jittered shifts around the base (eq. 26 retries);
//   4. dense Bunch-Kaufman at the last shift.
// Every attempt is recorded; throws Error(kSingular) with the history
// when even the dense rung fails.
FactorOutcome factor_with_recovery(const SMat& g, const SMat& c,
                                   double s0_request, bool auto_shift,
                                   double auto_s0, Ordering ordering,
                                   std::vector<FactorAttemptRecord>* attempts) {
  auto assemble = [&](double shift) -> SMat {
    return (shift == 0.0) ? g : SMat::add(g, 1.0, c, shift);
  };

  std::vector<double> shifts{s0_request};
  if (auto_shift) {
    if (s0_request == 0.0 && auto_s0 != 0.0) shifts.push_back(auto_s0);
    double base = (auto_s0 != 0.0) ? std::abs(auto_s0) : std::abs(s0_request);
    if (base == 0.0) base = 1.0;
    for (double s : shift_ladder(base, 4)) shifts.push_back(s);
  }

  for (double s : shifts) {
    FactorAttemptRecord rec;
    rec.method = "ldlt";
    rec.shift = s;
    try {
      auto factor = std::make_unique<SparseFactor>(assemble(s), ordering);
      rec.success = true;
      attempts->push_back(std::move(rec));
      return {std::move(factor), s, false};
    } catch (const Error& e) {
      rec.code = e.code();
      rec.detail = e.what();
      attempts->push_back(std::move(rec));
    }
  }

  // Dense fallback at the shift the sparse path settled on: the requested
  // one, or the automatic one when the request was 0 and auto is enabled.
  const double s_dense = (s0_request == 0.0 && auto_shift && auto_s0 != 0.0)
                             ? auto_s0
                             : s0_request;
  obs::instant("sympvl.dense_fallback", {obs::arg("n", g.rows())});
  FactorAttemptRecord rec;
  rec.method = "dense_bk";
  rec.shift = s_dense;
  try {
    auto factor = std::make_unique<DenseFactor>(assemble(s_dense).to_dense());
    rec.success = true;
    attempts->push_back(std::move(rec));
    return {std::move(factor), s_dense, true};
  } catch (const Error& e) {
    rec.code = e.code();
    rec.detail = e.what();
    attempts->push_back(std::move(rec));
    std::string history;
    for (const FactorAttemptRecord& a : *attempts) {
      if (!history.empty()) history += "; ";
      history += a.method + "(s0=" + std::to_string(a.shift) + "): " + a.detail;
    }
    ErrorContext ctx;
    ctx.stage = "sympvl.factor";
    ctx.index = static_cast<Index>(attempts->size());
    throw Error(ErrorCode::kSingular,
                "sympvl: every factorization attempt failed [" + history + "]",
                std::move(ctx));
  }
}

}  // namespace

double automatic_shift(const MnaSystem& sys) {
  // Scale ratio of the pencil terms: s₀ ≈ Σ|diag G| / Σ|diag C| lands in
  // the frequency range where G + s₀C is balanced (and, for PSD G and C
  // with s₀ > 0, nonsingular whenever the pencil is regular).
  double sg = 0.0, sc = 0.0;
  for (Index i = 0; i < sys.size(); ++i) {
    sg += std::abs(sys.G.coeff(i, i));
    sc += std::abs(sys.C.coeff(i, i));
  }
  require(sc > 0.0, ErrorCode::kInvalidArgument,
          "automatic_shift: C has an empty diagonal",
          ErrorContext{.stage = "sympvl.auto_shift"});
  if (sg == 0.0) return 1.0;
  return sg / sc;
}

// ---- SympvlSession ---------------------------------------------------------

struct SympvlSession::Impl {
  // The relevant pieces of the system are copied so the session cannot
  // dangle when the caller's MnaSystem goes out of scope — and so a
  // reshift() can re-factor the pencil without the original system.
  SMat g_matrix;
  SMat c_matrix;
  Mat b_matrix;
  SVariable variable = SVariable::kS;
  int s_prefactor = 0;
  double s0 = 0.0;
  SympvlOptions options;
  Index target_order = 0;  // latest order the caller asked for
  std::unique_ptr<SymmetricFactor> factor;
  std::unique_ptr<BandLanczos> lanczos;
  Mat exact_moment0;  // p×p exact 0th moment Bᵀ(G+s₀C)⁻¹B = startᵀJ·start
  SympvlReport report;

  // Builds the starting block J⁻¹M⁻¹B, the exact 0th moment and a fresh
  // Lanczos process from the current factorization. Used at construction
  // and again by reshift().
  void build_process() {
    const auto t_start = std::chrono::steady_clock::now();
    const Vec& j = factor->j_signs();
    report.negative_j = 0;
    for (double jk : j)
      if (jk < 0.0) ++report.negative_j;

    const Index n_full = g_matrix.rows();
    Mat start(n_full, b_matrix.cols());
    {
      obs::ScopedTimer span("sympvl.start_block");
      span.arg("ports", b_matrix.cols());
      for (Index col = 0; col < b_matrix.cols(); ++col) {
        Vec v = factor->solve_m(b_matrix.col(col));
        for (Index i = 0; i < n_full; ++i)
          v[static_cast<size_t>(i)] *= j[static_cast<size_t>(i)];
        start.set_col(col, v);
      }
    }
    // Exact 0th moment about s₀: startᵀJ·start = Bᵀ(G+s₀C)⁻¹B (J² = I),
    // the reference for the report's moment-match residual.
    {
      Mat jstart = start;
      for (Index i = 0; i < n_full; ++i)
        for (Index col = 0; col < jstart.cols(); ++col)
          jstart(i, col) *= j[static_cast<size_t>(i)];
      exact_moment0 = matmul_transA(start, jstart);
    }
    report.start_block_seconds += seconds_since(t_start);

    Impl* impl = this;  // stable address, captured by the operator
    OperatorFn op = [impl](const Vec& v) {
      Vec w = impl->factor->solve_mt(v);
      w = impl->c_matrix.multiply(w);
      w = impl->factor->solve_m(w);
      const Vec& jj = impl->factor->j_signs();
      for (size_t i = 0; i < w.size(); ++i) w[i] *= jj[i];
      return w;
    };

    LanczosOptions lopt;
    lopt.max_order = target_order;
    lopt.deflation_tol = options.deflation_tol;
    lopt.lookahead_tol = options.lookahead_tol;
    lopt.full_reorthogonalization = options.full_reorthogonalization;
    lopt.max_cluster_size = options.max_cluster_size;
    lanczos = std::make_unique<BandLanczos>(std::move(op), start, j, lopt);
  }

  void run_lanczos_to(Index target) {
    const auto t_lanczos = std::chrono::steady_clock::now();
    {
      obs::ScopedTimer span("sympvl.lanczos");
      span.arg("target_order", target);
      lanczos->run_to(std::max<Index>(target, 1));
    }
    const double dt = seconds_since(t_lanczos);
    report.lanczos_seconds += dt;
    report.total_seconds = report.factor_seconds +
                           report.start_block_seconds + report.lanczos_seconds;
  }

  void refresh_report() {
    const LanczosResult snap = lanczos->result();
    report.deflations = snap.deflations;
    report.exhausted = snap.exhausted;
    report.achieved_order = snap.n;
    report.lookahead_clusters = snap.lookahead_clusters;
    report.cluster_sizes = snap.cluster_sizes;
    report.lanczos_diagnosis = snap.diagnosis;
    report.breakdown = snap.diagnosis.breakdown;
    // Moment-match diagnostic (eq. 20 with k = 0): the model's 0th moment
    // ρₙᵀΔₙρₙ against the exact startᵀJ·start captured at construction.
    // Δₙ is symmetric, so Δₙρₙ = Δₙᵀρₙ and both products reuse the
    // transpose-aware kernel.
    if (snap.n > 0 && exact_moment0.rows() > 0) {
      const Mat model = matmul_transA(snap.rho, matmul_transA(snap.delta, snap.rho));
      double diff = 0.0;
      for (Index i = 0; i < model.rows(); ++i)
        for (Index jc = 0; jc < model.cols(); ++jc)
          diff = std::max(diff, std::abs(model(i, jc) - exact_moment0(i, jc)));
      report.moment0_residual =
          diff / std::max(exact_moment0.max_abs(), 1e-300);
    }
  }
};

SympvlSession::SympvlSession(const MnaSystem& sys, const SympvlOptions& options)
    : impl_(std::make_unique<Impl>()) {
  require(options.order >= 1, ErrorCode::kInvalidArgument,
          "SympvlSession: order must be >= 1");
  require(sys.port_count() >= 1, ErrorCode::kInvalidArgument,
          "SympvlSession: system has no ports");

  impl_->g_matrix = sys.G;
  impl_->c_matrix = sys.C;
  impl_->b_matrix = sys.B;
  impl_->variable = sys.variable;
  impl_->s_prefactor = sys.s_prefactor;
  impl_->options = options;
  impl_->target_order = options.order;

  // ---- Factor G + s₀C = M J Mᵀ (eq. 15 / eq. 26) through the ladder. ----
  const auto t_factor = std::chrono::steady_clock::now();
  double auto_s0 = 0.0;
  if (options.auto_shift) {
    try {
      auto_s0 = automatic_shift(sys);
    } catch (const Error&) {
      // C has an empty diagonal — no automatic shift available; the
      // ladder degrades to the requested shift plus the dense rung.
    }
  }
  FactorOutcome outcome;
  {
    obs::ScopedTimer span("sympvl.factor");
    span.arg("n", sys.size());
    outcome = factor_with_recovery(sys.G, sys.C, options.s0,
                                   options.auto_shift, auto_s0,
                                   options.ordering,
                                   &impl_->report.factor_attempts);
    span.arg("dense_fallback", outcome.dense ? 1.0 : 0.0);
    span.arg("s0", outcome.s0);
    span.arg("attempts",
             static_cast<Index>(impl_->report.factor_attempts.size()));
  }
  impl_->s0 = outcome.s0;
  impl_->factor = std::move(outcome.factor);
  impl_->report.s0_used = outcome.s0;
  impl_->report.used_dense_fallback = outcome.dense;
  impl_->report.recovered = impl_->report.factor_attempts.size() > 1;
  impl_->report.factor_seconds = seconds_since(t_factor);
  impl_->factor->fill_stats(impl_->report);

  // ---- Starting block, operator and the Lanczos run (steps 0-3). ----
  impl_->build_process();
  impl_->run_lanczos_to(options.order);
  impl_->refresh_report();
}

SympvlSession::~SympvlSession() = default;
SympvlSession::SympvlSession(SympvlSession&&) noexcept = default;
SympvlSession& SympvlSession::operator=(SympvlSession&&) noexcept = default;

ReducedModel SympvlSession::extend(Index additional) {
  require(additional >= 0, ErrorCode::kInvalidArgument,
          "SympvlSession::extend: negative step");
  const Index target = impl_->lanczos->order() + additional;
  impl_->target_order = std::max<Index>(target, 1);
  impl_->run_lanczos_to(target);
  impl_->refresh_report();
  return current();
}

ReducedModel SympvlSession::reshift(double new_s0) {
  Impl* impl = impl_.get();
  const auto t_factor = std::chrono::steady_clock::now();
  std::vector<FactorAttemptRecord> attempts;
  FactorOutcome outcome;
  {
    obs::ScopedTimer span("sympvl.reshift");
    span.arg("s0", new_s0);
    span.arg("previous_s0", impl->s0);
    // The caller chose the shift: no automatic ladder, but the dense rung
    // still backstops it.
    outcome = factor_with_recovery(impl->g_matrix, impl->c_matrix, new_s0,
                                   /*auto_shift=*/false, 0.0,
                                   impl->options.ordering, &attempts);
  }
  impl->factor = std::move(outcome.factor);
  impl->s0 = outcome.s0;
  impl->report.s0_used = outcome.s0;
  impl->report.used_dense_fallback = outcome.dense;
  impl->report.factor_seconds += seconds_since(t_factor);
  impl->factor->fill_stats(impl->report);
  for (FactorAttemptRecord& rec : attempts)
    impl->report.factor_attempts.push_back(std::move(rec));
  ++impl->report.shift_retries;
  impl->report.recovered = true;

  // Restart the process about the new expansion point and run it back to
  // the last requested order. The Padé model changes (different s₀) but
  // matches the same transfer function to the same moment count.
  impl->build_process();
  impl->run_lanczos_to(impl->target_order);
  impl->refresh_report();
  return current();
}

bool SympvlSession::breakdown() const { return impl_->lanczos->breakdown(); }

ReducedModel SympvlSession::current() const {
  return ReducedModel(impl_->lanczos->result(), impl_->variable,
                      impl_->s_prefactor, impl_->s0);
}

Index SympvlSession::order() const { return impl_->lanczos->order(); }

const SympvlReport& SympvlSession::report() const { return impl_->report; }

// ---- One-shot drivers ------------------------------------------------------

ReducedModel sympvl_reduce(const MnaSystem& sys, const SympvlOptions& options,
                           SympvlReport* report) {
  SympvlSession session(sys, options);
  if (report != nullptr) *report = session.report();
  return session.current();
}

ReducedModel sympvl_reduce(const Netlist& netlist, const SympvlOptions& options,
                           SympvlReport* report) {
  const MnaSystem sys = build_mna(netlist, MnaForm::kAuto);
  SympvlOptions opt = options;
  // Topology check (Section 2 / eq. 26): when some node has no DC path to
  // the datum, G is structurally singular — pick the shift up front rather
  // than failing a factorization first.
  if (opt.s0 == 0.0 && opt.auto_shift &&
      !has_dc_path_to_ground(netlist, MnaForm::kAuto))
    opt.s0 = automatic_shift(sys);
  return sympvl_reduce(sys, opt, report);
}

}  // namespace sympvl
