// Supernodal kernel layer: supernode detection edge cases, and the
// simplicial-vs-supernodal equivalence contract (same L pattern, values
// to rounding, bit-identical single/multi-RHS solves within a path).
#include "linalg/kernels.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "circuit/mna.hpp"
#include "linalg/sparse_ldlt.hpp"

namespace sympvl {
namespace {

KernelOptions simplicial_opt() {
  KernelOptions o;
  o.path = KernelPath::kSimplicial;
  return o;
}

KernelOptions supernodal_opt() {
  KernelOptions o;
  o.path = KernelPath::kSupernodal;
  return o;
}

SMat random_spd_sparse(Index n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0.1, 2.0);
  std::uniform_int_distribution<Index> pick(0, n - 1);
  TripletBuilder<double> t(n, n);
  for (Index i = 0; i < n; ++i) t.add(i, i, 1.0 + u(rng));
  for (Index k = 0; k < 3 * n; ++k) {
    const Index a = pick(rng), b = pick(rng);
    if (a == b) continue;
    const double w = u(rng);
    t.add(a, a, w);
    t.add(b, b, w);
    t.add_symmetric(a, b, -w);
  }
  return t.compress();
}

SMat tridiagonal_spd(Index n) {
  TripletBuilder<double> t(n, n);
  for (Index i = 0; i < n; ++i) t.add(i, i, 4.0);
  for (Index i = 0; i + 1 < n; ++i) t.add_symmetric(i, i + 1, -1.0);
  return t.compress();
}

// Diagonal leading block loosely coupled into a dense trailing block.
SMat arrow_with_dense_tail(Index n, Index tail) {
  TripletBuilder<double> t(n, n);
  for (Index i = 0; i < n; ++i) t.add(i, i, 10.0 + static_cast<double>(i));
  const Index t0 = n - tail;
  for (Index i = t0; i < n; ++i)
    for (Index j = t0; j < i; ++j) t.add_symmetric(i, j, -0.5);
  for (Index i = 0; i < t0; ++i) t.add_symmetric(i, t0 + i % tail, -1.0);
  return t.compress();
}

// A circuit whose two ports share the same node: the starting block has
// duplicated columns, the deflation regression case for the reduction
// drivers. Here it exercises the factorization the drivers run on it.
MnaSystem duplicated_port_system() {
  Netlist nl;
  const Index chain = 40;
  for (Index i = 1; i <= chain; ++i) {
    nl.add_resistor(i, i + 1, 1.0 + 0.01 * static_cast<double>(i));
    nl.add_capacitor(i + 1, 0, 1e-12);
    nl.add_inductor(i, i % 7 == 0 ? 0 : i + 1, 1e-9);
  }
  nl.add_port(1, 0);
  nl.add_port(1, 0);  // duplicated port on the same node
  return build_mna(nl);
}

// ---- detect_supernodes on hand-built trees ---------------------------------

TEST(DetectSupernodes, FullyDenseMatrixIsOneSupernode) {
  // Dense lower structure: parent chain, lnz(j) = n-1-j — every merge is
  // fundamental even with relaxation off.
  const Index n = 12;
  std::vector<Index> parent(n), lnz(n);
  for (Index j = 0; j < n; ++j) {
    parent[static_cast<size_t>(j)] = j + 1 < n ? j + 1 : -1;
    lnz[static_cast<size_t>(j)] = n - 1 - j;
  }
  KernelOptions strict;
  strict.relax_zeros = 0;
  strict.relax_ratio = 0.0;
  const auto part = detect_supernodes(parent, lnz, strict);
  EXPECT_EQ(part.count(), 1);
  EXPECT_EQ(part.max_width(), n);
  EXPECT_EQ(part.zeros, 0);
  EXPECT_EQ(part.panel_entries, n * (n + 1) / 2);
}

TEST(DetectSupernodes, TridiagonalStrictGivesOneColumnSupernodes) {
  // Tridiagonal: lnz = 1,...,1,0. Only the final pair is fundamental;
  // with relaxation off everything else stays a 1-column supernode.
  const Index n = 10;
  std::vector<Index> parent(n), lnz(n, 1);
  for (Index j = 0; j < n; ++j)
    parent[static_cast<size_t>(j)] = j + 1 < n ? j + 1 : -1;
  lnz[static_cast<size_t>(n - 1)] = 0;
  KernelOptions strict;
  strict.relax_zeros = 0;
  strict.relax_ratio = 0.0;
  const auto part = detect_supernodes(parent, lnz, strict);
  EXPECT_EQ(part.count(), n - 1);
  EXPECT_EQ(part.max_width(), 2);
  EXPECT_EQ(part.zeros, 0);
}

TEST(DetectSupernodes, RelaxationMergesTridiagonalUpToSlack) {
  const Index n = 64;
  std::vector<Index> parent(n), lnz(n, 1);
  for (Index j = 0; j < n; ++j)
    parent[static_cast<size_t>(j)] = j + 1 < n ? j + 1 : -1;
  lnz[static_cast<size_t>(n - 1)] = 0;
  KernelOptions relaxed;
  relaxed.relax_zeros = 6;
  relaxed.relax_ratio = 1.0;  // only the absolute slack binds
  const auto part = detect_supernodes(parent, lnz, relaxed);
  EXPECT_LT(part.count(), n - 1);  // something merged...
  EXPECT_GT(part.count(), 1);      // ...but not everything
  EXPECT_GT(part.zeros, 0);
  for (size_t s = 0; s + 1 < part.start.size(); ++s) {
    const Index a = part.start[s], e = part.start[s + 1];
    const Index w = e - a;
    // Panel zeros = dense − actual must respect the absolute slack.
    const Index dense = w * (w + 1) / 2 + w * lnz[static_cast<size_t>(e - 1)];
    Index actual = 0;
    for (Index j = a; j < e; ++j) actual += 1 + lnz[static_cast<size_t>(j)];
    EXPECT_LE(dense - actual, relaxed.relax_zeros);
  }
}

TEST(DetectSupernodes, MaxPanelWidthCapsAmalgamation) {
  const Index n = 12;
  std::vector<Index> parent(n), lnz(n);
  for (Index j = 0; j < n; ++j) {
    parent[static_cast<size_t>(j)] = j + 1 < n ? j + 1 : -1;
    lnz[static_cast<size_t>(j)] = n - 1 - j;
  }
  KernelOptions capped;
  capped.max_panel_width = 4;
  const auto part = detect_supernodes(parent, lnz, capped);
  EXPECT_EQ(part.count(), 3);
  EXPECT_EQ(part.max_width(), 4);
}

TEST(DetectSupernodes, BrokenChainNeverMerges) {
  // parent(j-1) != j (both columns hang off a later root): no merge even
  // though the lnz counts line up.
  std::vector<Index> parent = {2, 2, -1};
  std::vector<Index> lnz = {1, 1, 0};
  const auto part = detect_supernodes(parent, lnz, KernelOptions{});
  ASSERT_GE(part.count(), 2);
  EXPECT_EQ(part.start[0], 0);
  EXPECT_EQ(part.start[1], 1);
}

// ---- end-to-end structure on matrices --------------------------------------

TEST(Kernels, DenseTrailingBlockBecomesOnePanel) {
  const Index n = 60, tail = 12;
  const SMat a = arrow_with_dense_tail(n, tail);
  const LDLT f(a, Ordering::kNatural, 0.0, supernodal_opt());
  ASSERT_TRUE(f.supernodal());
  // The trailing dense block must have amalgamated into a single wide
  // panel (possibly wider, if relaxation merged leading columns into it).
  EXPECT_GE(f.max_panel_width(), tail);
  EXPECT_LT(f.supernode_count(), n);
}

TEST(Kernels, TridiagonalStrictSupernodalMatchesSymbolicNnz) {
  const Index n = 100;
  const SMat a = tridiagonal_spd(n);
  KernelOptions strict = supernodal_opt();
  strict.relax_zeros = 0;
  strict.relax_ratio = 0.0;
  const LDLT f(a, Ordering::kNatural, 0.0, strict);
  EXPECT_EQ(f.l_nnz(), n - 1);  // symbolic count, not panel entries
  EXPECT_EQ(f.panel_zeros(), 0);
  EXPECT_EQ(f.supernode_count(), n - 1);  // 1-col panels + one pair
}

// ---- simplicial vs supernodal equivalence ----------------------------------

void expect_same_factor(const SMat& a, Ordering ordering) {
  const LDLT fs(a, ordering, 0.0, simplicial_opt());
  const LDLT fn(a, ordering, 0.0, supernodal_opt());
  ASSERT_FALSE(fs.supernodal());
  ASSERT_TRUE(fn.supernodal());
  ASSERT_EQ(fs.l_nnz(), fn.l_nnz());

  const SMat ls = fs.l_matrix();
  const SMat ln = fn.l_matrix();
  ASSERT_EQ(ls.colptr(), ln.colptr());
  ASSERT_EQ(ls.rowind(), ln.rowind());
  double lmax = 0.0;
  for (const double v : ls.values()) lmax = std::max(lmax, std::abs(v));
  for (size_t k = 0; k < ls.values().size(); ++k)
    EXPECT_NEAR(ls.values()[k], ln.values()[k], 1e-12 * lmax) << "entry " << k;
  for (Index i = 0; i < a.rows(); ++i)
    EXPECT_NEAR(fs.d()[static_cast<size_t>(i)], fn.d()[static_cast<size_t>(i)],
                1e-12 * std::abs(fs.d()[static_cast<size_t>(i)]) + 1e-300);
  EXPECT_EQ(fs.negative_pivots(), fn.negative_pivots());
}

TEST(Kernels, LMatchesSimplicialOnRcm) {
  expect_same_factor(random_spd_sparse(150, 11), Ordering::kRCM);
}

TEST(Kernels, LMatchesSimplicialOnMinDegree) {
  expect_same_factor(random_spd_sparse(150, 12), Ordering::kMinDegree);
}

TEST(Kernels, SolvesMatchSimplicial) {
  const Index n = 130;
  const SMat a = random_spd_sparse(n, 21);
  const LDLT fs(a, Ordering::kRCM, 0.0, simplicial_opt());
  const LDLT fn(a, Ordering::kRCM, 0.0, supernodal_opt());
  Vec b(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i)
    b[static_cast<size_t>(i)] = std::sin(static_cast<double>(i) * 0.7);
  const Vec xs = fs.solve(b);
  const Vec xn = fn.solve(b);
  double xmax = 0.0;
  for (const double v : xs) xmax = std::max(xmax, std::abs(v));
  for (Index i = 0; i < n; ++i)
    EXPECT_NEAR(xs[static_cast<size_t>(i)], xn[static_cast<size_t>(i)],
                1e-12 * xmax);
}

TEST(Kernels, SupernodalMultiRhsBitIdenticalToSingle) {
  const Index n = 120, p = 5;
  const SMat a = random_spd_sparse(n, 31);
  const LDLT f(a, Ordering::kRCM, 0.0, supernodal_opt());
  ASSERT_TRUE(f.supernodal());
  Mat b(n, p);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < p; ++j)
      b(i, j) = std::cos(static_cast<double>(i * p + j));
  const Mat x = f.solve(b);
  for (Index j = 0; j < p; ++j) {
    Vec col(static_cast<size_t>(n));
    for (Index i = 0; i < n; ++i) col[static_cast<size_t>(i)] = b(i, j);
    const Vec xj = f.solve(col);
    for (Index i = 0; i < n; ++i)
      ASSERT_EQ(x(i, j), xj[static_cast<size_t>(i)]) << i << "," << j;
  }
}

TEST(Kernels, ComplexPencilMatchesSimplicial) {
  const Index n = 90;
  const SMat g = random_spd_sparse(n, 41);
  // Complex symmetric pencil G + i·w·I.
  TripletBuilder<Complex> t(n, n);
  for (Index j = 0; j < n; ++j)
    for (Index k = g.colptr()[static_cast<size_t>(j)];
         k < g.colptr()[static_cast<size_t>(j) + 1]; ++k)
      t.add(g.rowind()[static_cast<size_t>(k)], j,
            Complex(g.values()[static_cast<size_t>(k)], 0.0));
  for (Index i = 0; i < n; ++i) t.add(i, i, Complex(0.0, 0.35));
  const CSMat a = t.compress();
  const CLDLT fs(a, Ordering::kRCM, 0.0, simplicial_opt());
  const CLDLT fn(a, Ordering::kRCM, 0.0, supernodal_opt());
  CVec b(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i)
    b[static_cast<size_t>(i)] =
        Complex(std::sin(static_cast<double>(i)), 0.25);
  const CVec xs = fs.solve(b);
  const CVec xn = fn.solve(b);
  double xmax = 0.0;
  for (const Complex& v : xs) xmax = std::max(xmax, std::abs(v));
  for (Index i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(xs[static_cast<size_t>(i)] - xn[static_cast<size_t>(i)]),
                0.0, 1e-12 * xmax);
}

TEST(Kernels, DuplicatedPortDeflationCircuitMatches) {
  const MnaSystem sys = duplicated_port_system();
  ASSERT_EQ(sys.port_count(), 2);
  // The quasi-definite shifted pencil the drivers factor (eq. 26 shape).
  TripletBuilder<double> t(sys.size(), sys.size());
  const double s0 = 1e9;
  for (Index j = 0; j < sys.size(); ++j) {
    for (Index k = sys.G.colptr()[static_cast<size_t>(j)];
         k < sys.G.colptr()[static_cast<size_t>(j) + 1]; ++k)
      t.add(sys.G.rowind()[static_cast<size_t>(k)], j,
            sys.G.values()[static_cast<size_t>(k)]);
    for (Index k = sys.C.colptr()[static_cast<size_t>(j)];
         k < sys.C.colptr()[static_cast<size_t>(j) + 1]; ++k)
      t.add(sys.C.rowind()[static_cast<size_t>(k)], j,
            s0 * sys.C.values()[static_cast<size_t>(k)]);
  }
  const SMat a = t.compress();
  const LDLT fs(a, Ordering::kRCM, 0.0, simplicial_opt());
  const LDLT fn(a, Ordering::kRCM, 0.0, supernodal_opt());
  EXPECT_EQ(fs.negative_pivots(), fn.negative_pivots());
  // Starting block: solve against both (identical) port columns at once.
  Mat b(sys.size(), sys.port_count());
  for (Index i = 0; i < sys.size(); ++i)
    for (Index j = 0; j < sys.port_count(); ++j) b(i, j) = sys.B(i, j);
  const Mat xs = fs.solve(b);
  const Mat xn = fn.solve(b);
  double xmax = 0.0;
  for (Index i = 0; i < sys.size(); ++i)
    for (Index j = 0; j < 2; ++j) xmax = std::max(xmax, std::abs(xs(i, j)));
  for (Index i = 0; i < sys.size(); ++i) {
    for (Index j = 0; j < 2; ++j)
      EXPECT_NEAR(xs(i, j), xn(i, j), 1e-12 * xmax);
    // Duplicated columns stay exactly duplicated through the blocked path.
    ASSERT_EQ(xn(i, 0), xn(i, 1));
  }
}

TEST(Kernels, MOperatorMatchesSimplicial) {
  const Index n = 110;
  const SMat a = random_spd_sparse(n, 51);
  const LDLT fs(a, Ordering::kRCM, 0.0, simplicial_opt());
  const LDLT fn(a, Ordering::kRCM, 0.0, supernodal_opt());
  Vec b(static_cast<size_t>(n), 1.0);
  const Vec ms = fs.solve_m(b), mn = fn.solve_m(b);
  const Vec ts = fs.solve_mt(b), tn = fn.solve_mt(b);
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(ms[static_cast<size_t>(i)], mn[static_cast<size_t>(i)],
                1e-12 * (1.0 + std::abs(ms[static_cast<size_t>(i)])));
    EXPECT_NEAR(ts[static_cast<size_t>(i)], tn[static_cast<size_t>(i)],
                1e-12 * (1.0 + std::abs(ts[static_cast<size_t>(i)])));
  }
}

// ---- path resolution --------------------------------------------------------

TEST(Kernels, ResolveHonorsExplicitPathAndHeuristic) {
  KernelOptions o;
  EXPECT_EQ(resolve_kernel_path(simplicial_opt(), 5000),
            KernelPath::kSimplicial);
  EXPECT_EQ(resolve_kernel_path(supernodal_opt(), 4), KernelPath::kSupernodal);
  unsetenv("SYMPVL_KERNEL");
  EXPECT_EQ(resolve_kernel_path(o, 8), KernelPath::kSimplicial);
  EXPECT_EQ(resolve_kernel_path(o, 4096), KernelPath::kSupernodal);
}

TEST(Kernels, ResolveHonorsEnvFallback) {
  KernelOptions o;
  setenv("SYMPVL_KERNEL", "simplicial", 1);
  EXPECT_EQ(resolve_kernel_path(o, 4096), KernelPath::kSimplicial);
  setenv("SYMPVL_KERNEL", "supernodal", 1);
  EXPECT_EQ(resolve_kernel_path(o, 8), KernelPath::kSupernodal);
  // Explicit option still wins over the environment.
  EXPECT_EQ(resolve_kernel_path(simplicial_opt(), 8), KernelPath::kSimplicial);
  unsetenv("SYMPVL_KERNEL");
}

TEST(Kernels, ZeroPivotErrorIdenticalAcrossPaths) {
  // Structurally singular: a 60-node resistor chain with no ground path
  // has a singular G; both kernels must throw the same structured error.
  const Index n = 60;
  TripletBuilder<double> t(n, n);
  for (Index i = 0; i + 1 < n; ++i) {
    t.add(i, i, 1.0);
    t.add(i + 1, i + 1, 1.0);
    t.add_symmetric(i, i + 1, -1.0);
  }
  const SMat a = t.compress();
  for (const auto& opt : {simplicial_opt(), supernodal_opt()}) {
    try {
      const LDLT f(a, Ordering::kNatural, 1e-12, opt);
      FAIL() << "expected kZeroPivot for " << kernel_path_name(opt.path);
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kZeroPivot);
      EXPECT_EQ(e.context().stage, "ldlt.factor");
      EXPECT_EQ(e.context().index, n - 1);
    }
  }
}

}  // namespace
}  // namespace sympvl
