file(REMOVE_RECURSE
  "CMakeFiles/bench_pvl_vs_sympvl.dir/bench_pvl_vs_sympvl.cpp.o"
  "CMakeFiles/bench_pvl_vs_sympvl.dir/bench_pvl_vs_sympvl.cpp.o.d"
  "bench_pvl_vs_sympvl"
  "bench_pvl_vs_sympvl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pvl_vs_sympvl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
