file(REMOVE_RECURSE
  "libsympvl.a"
)
