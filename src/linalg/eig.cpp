#include "linalg/eig.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "linalg/dense_factor.hpp"

namespace sympvl {

namespace {

// One cyclic-Jacobi diagonalization. Robust O(n³) method; reduced-order
// models are small so this is fully adequate and numerically excellent
// (backward-stable, eigenvectors orthogonal to machine precision).
void jacobi_eig(Mat& a, Mat& v, Vec& w) {
  const Index n = a.rows();
  v = Mat::identity(n);
  const int max_sweeps = 100;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius norm.
    double off = 0.0;
    for (Index p = 0; p < n; ++p)
      for (Index q = p + 1; q < n; ++q) off += 2.0 * a(p, q) * a(p, q);
    off = std::sqrt(off);
    double diag = 0.0;
    for (Index p = 0; p < n; ++p) diag += a(p, p) * a(p, p);
    const double scale = std::sqrt(diag) + off;
    if (off <= 1e-15 * (scale > 0.0 ? scale : 1.0)) break;

    for (Index p = 0; p < n - 1; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <=
            1e-18 * (std::abs(a(p, p)) + std::abs(a(q, q)) + 1e-300))
          continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // A <- Jᵀ A J on rows/columns p and q.
        for (Index k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (Index k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (Index k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  w.resize(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) w[static_cast<size_t>(i)] = a(i, i);
}

double sign_of(double a, double b) { return b >= 0.0 ? std::abs(a) : -std::abs(a); }

// Householder reduction of a symmetric matrix to tridiagonal form with
// accumulation of the orthogonal transformation (EISPACK tred2). On exit
// z holds Q with A = Q T Qt, d the diagonal and e the sub-diagonal
// (e[0] unused).
void tred2(Mat& z, Vec& d, Vec& e) {
  const Index n = z.rows();
  d.assign(static_cast<size_t>(n), 0.0);
  e.assign(static_cast<size_t>(n), 0.0);
  for (Index i = n - 1; i >= 1; --i) {
    const Index l = i - 1;
    double h = 0.0, scale = 0.0;
    if (l > 0) {
      for (Index k = 0; k <= l; ++k) scale += std::abs(z(i, k));
      if (scale == 0.0) {
        e[static_cast<size_t>(i)] = z(i, l);
      } else {
        for (Index k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[static_cast<size_t>(i)] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (Index j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (Index k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (Index k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[static_cast<size_t>(j)] = g / h;
          f += e[static_cast<size_t>(j)] * z(i, j);
        }
        const double hh = f / (h + h);
        for (Index j = 0; j <= l; ++j) {
          f = z(i, j);
          const double gg = e[static_cast<size_t>(j)] - hh * f;
          e[static_cast<size_t>(j)] = gg;
          for (Index k = 0; k <= j; ++k)
            z(j, k) -= (f * e[static_cast<size_t>(k)] + gg * z(i, k));
        }
      }
    } else {
      e[static_cast<size_t>(i)] = z(i, l);
    }
    d[static_cast<size_t>(i)] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  for (Index i = 0; i < n; ++i) {
    const Index l = i - 1;
    if (d[static_cast<size_t>(i)] != 0.0) {
      for (Index j = 0; j <= l; ++j) {
        double g = 0.0;
        for (Index k = 0; k <= l; ++k) g += z(i, k) * z(k, j);
        for (Index k = 0; k <= l; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[static_cast<size_t>(i)] = z(i, i);
    z(i, i) = 1.0;
    for (Index j = 0; j <= l; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

// Implicit-shift QL iteration on a tridiagonal matrix with eigenvector
// accumulation (EISPACK tql2). d/e as produced by tred2.
void tql2(Vec& d, Vec& e, Mat& z) {
  const Index n = static_cast<Index>(d.size());
  for (Index i = 1; i < n; ++i) e[static_cast<size_t>(i) - 1] = e[static_cast<size_t>(i)];
  e[static_cast<size_t>(n) - 1] = 0.0;
  for (Index l = 0; l < n; ++l) {
    int iter = 0;
    Index m;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::abs(d[static_cast<size_t>(m)]) +
                          std::abs(d[static_cast<size_t>(m) + 1]);
        if (std::abs(e[static_cast<size_t>(m)]) <=
            std::numeric_limits<double>::epsilon() * dd)
          break;
      }
      if (m != l) {
        require(iter++ != 80, "eig_symmetric_ql: QL iteration failed to converge");
        double g = (d[static_cast<size_t>(l) + 1] - d[static_cast<size_t>(l)]) /
                   (2.0 * e[static_cast<size_t>(l)]);
        double r = std::hypot(g, 1.0);
        g = d[static_cast<size_t>(m)] - d[static_cast<size_t>(l)] +
            e[static_cast<size_t>(l)] / (g + sign_of(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        Index i = m - 1;
        bool underflow = false;
        for (; i >= l; --i) {
          double f = s * e[static_cast<size_t>(i)];
          const double b = c * e[static_cast<size_t>(i)];
          r = std::hypot(f, g);
          e[static_cast<size_t>(i) + 1] = r;
          if (r == 0.0) {
            d[static_cast<size_t>(i) + 1] -= p;
            e[static_cast<size_t>(m)] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<size_t>(i) + 1] - p;
          r = (d[static_cast<size_t>(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[static_cast<size_t>(i) + 1] = g + p;
          g = c * r - b;
          for (Index k = 0; k < static_cast<Index>(z.rows()); ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (underflow && i >= l) continue;
        d[static_cast<size_t>(l)] -= p;
        e[static_cast<size_t>(l)] = g;
        e[static_cast<size_t>(m)] = 0.0;
      }
    } while (m != l);
  }
}

// Symmetrizes a copy and sorts an eigendecomposition ascending.
SymmetricEig sort_eig(const Vec& w, const Mat& v) {
  const Index n = static_cast<Index>(w.size());
  std::vector<Index> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), Index(0));
  std::sort(order.begin(), order.end(), [&](Index i, Index j) {
    return w[static_cast<size_t>(i)] < w[static_cast<size_t>(j)];
  });
  SymmetricEig out;
  out.values.resize(static_cast<size_t>(n));
  out.vectors.resize(n, n);
  for (Index k = 0; k < n; ++k) {
    const Index src = order[static_cast<size_t>(k)];
    out.values[static_cast<size_t>(k)] = w[static_cast<size_t>(src)];
    for (Index i = 0; i < n; ++i) out.vectors(i, k) = v(i, src);
  }
  return out;
}

Mat symmetrized_copy(const Mat& a, const char* who) {
  require(a.is_square(), std::string(who) + ": matrix not square");
  require(a.asymmetry() <= 1e-8 * (1.0 + a.max_abs()),
          std::string(who) + ": matrix not symmetric");
  Mat work = a;
  for (Index i = 0; i < a.rows(); ++i)
    for (Index j = i + 1; j < a.cols(); ++j) {
      const double m = 0.5 * (work(i, j) + work(j, i));
      work(i, j) = m;
      work(j, i) = m;
    }
  return work;
}

}  // namespace

SymmetricEig eig_symmetric_jacobi(const Mat& a) {
  Mat work = symmetrized_copy(a, "eig_symmetric");
  Mat v;
  Vec w;
  jacobi_eig(work, v, w);
  return sort_eig(w, v);
}

SymmetricEig eig_symmetric_ql(const Mat& a) {
  Mat z = symmetrized_copy(a, "eig_symmetric");
  if (z.rows() == 0) return {};
  if (z.rows() == 1) {
    SymmetricEig out;
    out.values = {z(0, 0)};
    out.vectors = Mat::identity(1);
    return out;
  }
  Vec d, e;
  tred2(z, d, e);
  tql2(d, e, z);
  return sort_eig(d, z);
}

SymmetricEig eig_symmetric(const Mat& a) {
  if (a.rows() <= kEigFastCutover) return eig_symmetric_jacobi(a);
  try {
    return eig_symmetric_ql(a);
  } catch (const Error&) {
    // The implicit-QL iteration can stall on extreme-spread spectra
    // (e.g. Gramians with eigenvalue clusters at rounding level); cyclic
    // Jacobi always converges, at O(n³·sweeps) cost.
    return eig_symmetric_jacobi(a);
  }
}

Vec eig_symmetric_tridiagonal(const Vec& d, const Vec& e) {
  const Index n = static_cast<Index>(d.size());
  require(static_cast<Index>(e.size()) == n - 1 || (n == 0 && e.empty()),
          "eig_symmetric_tridiagonal: sub-diagonal must have n-1 entries");
  if (n == 0) return {};
  Mat a(n, n);
  for (Index i = 0; i < n; ++i) a(i, i) = d[static_cast<size_t>(i)];
  for (Index i = 0; i + 1 < n; ++i) {
    a(i + 1, i) = e[static_cast<size_t>(i)];
    a(i, i + 1) = e[static_cast<size_t>(i)];
  }
  return eig_symmetric(a).values;
}

CVec eig_general(const Mat& a_in) {
  require(a_in.is_square(), "eig_general: matrix not square");
  const Index n = a_in.rows();
  if (n == 0) return {};
  Mat a = a_in;

  // --- Reduction to upper Hessenberg form by stabilized elementary
  // transformations (elmhes). ---
  for (Index m = 1; m + 1 < n; ++m) {
    double x = 0.0;
    Index i = m;
    for (Index j = m; j < n; ++j) {
      if (std::abs(a(j, m - 1)) > std::abs(x)) {
        x = a(j, m - 1);
        i = j;
      }
    }
    if (i != m) {
      for (Index j = m - 1; j < n; ++j) std::swap(a(i, j), a(m, j));
      for (Index j = 0; j < n; ++j) std::swap(a(j, i), a(j, m));
    }
    if (x != 0.0) {
      for (Index ii = m + 1; ii < n; ++ii) {
        double y = a(ii, m - 1);
        if (y != 0.0) {
          y /= x;
          a(ii, m - 1) = y;
          for (Index j = m; j < n; ++j) a(ii, j) -= y * a(m, j);
          for (Index j = 0; j < n; ++j) a(j, m) += y * a(j, ii);
        }
      }
    }
  }
  // Zero the sub-sub-diagonal (multiplier storage) so hqr sees a clean
  // Hessenberg matrix.
  for (Index i = 2; i < n; ++i)
    for (Index j = 0; j + 1 < i; ++j) a(i, j) = 0.0;

  // --- Francis double-shift QR on the Hessenberg matrix (hqr). ---
  CVec wri(static_cast<size_t>(n));
  double anorm = 0.0;
  for (Index i = 0; i < n; ++i)
    for (Index j = std::max<Index>(i - 1, 0); j < n; ++j)
      anorm += std::abs(a(i, j));
  Index nn = n - 1;
  double t = 0.0;
  while (nn >= 0) {
    int its = 0;
    Index l;
    do {
      for (l = nn; l >= 1; --l) {
        double s = std::abs(a(l - 1, l - 1)) + std::abs(a(l, l));
        if (s == 0.0) s = anorm;
        if (std::abs(a(l, l - 1)) + s == s) {
          a(l, l - 1) = 0.0;
          break;
        }
      }
      if (l < 0) l = 0;
      double x = a(nn, nn);
      if (l == nn) {
        // Single real eigenvalue isolated.
        wri[static_cast<size_t>(nn)] = Complex(x + t, 0.0);
        nn -= 1;
      } else {
        double y = a(nn - 1, nn - 1);
        double w = a(nn, nn - 1) * a(nn - 1, nn);
        if (l == nn - 1) {
          // 2x2 block isolated: real pair or complex conjugate pair.
          double p = 0.5 * (y - x);
          double q = p * p + w;
          double z = std::sqrt(std::abs(q));
          x += t;
          if (q >= 0.0) {
            z = p + sign_of(z, p);
            wri[static_cast<size_t>(nn - 1)] = Complex(x + z, 0.0);
            wri[static_cast<size_t>(nn)] = wri[static_cast<size_t>(nn - 1)];
            if (z != 0.0) wri[static_cast<size_t>(nn)] = Complex(x - w / z, 0.0);
          } else {
            wri[static_cast<size_t>(nn)] = Complex(x + p, -z);
            wri[static_cast<size_t>(nn - 1)] =
                std::conj(wri[static_cast<size_t>(nn)]);
          }
          nn -= 2;
        } else {
          // Perform one Francis double-shift QR sweep.
          require(its != 60, "eig_general: QR iteration failed to converge");
          if (its == 10 || its == 20 || its == 30 || its == 40 || its == 50) {
            // Exceptional shift.
            t += x;
            for (Index i = 0; i <= nn; ++i) a(i, i) -= x;
            const double s =
                std::abs(a(nn, nn - 1)) + std::abs(a(nn - 1, nn - 2));
            y = x = 0.75 * s;
            w = -0.4375 * s * s;
          }
          ++its;
          Index m;
          double p = 0.0, q = 0.0, r = 0.0, z = 0.0;
          for (m = nn - 2; m >= l; --m) {
            z = a(m, m);
            const double rr = x - z;
            const double ss = y - z;
            p = (rr * ss - w) / a(m + 1, m) + a(m, m + 1);
            q = a(m + 1, m + 1) - z - rr - ss;
            r = a(m + 2, m + 1);
            const double s3 = std::abs(p) + std::abs(q) + std::abs(r);
            p /= s3;
            q /= s3;
            r /= s3;
            if (m == l) break;
            const double u =
                std::abs(a(m, m - 1)) * (std::abs(q) + std::abs(r));
            const double v = std::abs(p) * (std::abs(a(m - 1, m - 1)) +
                                            std::abs(z) + std::abs(a(m + 1, m + 1)));
            if (u + v == v) break;
          }
          for (Index i = m; i < nn - 1; ++i) {
            a(i + 2, i) = 0.0;
            if (i != m) a(i + 2, i - 1) = 0.0;
          }
          for (Index k = m; k < nn; ++k) {
            if (k != m) {
              p = a(k, k - 1);
              q = a(k + 1, k - 1);
              r = (k + 1 != nn) ? a(k + 2, k - 1) : 0.0;
              x = std::abs(p) + std::abs(q) + std::abs(r);
              if (x != 0.0) {
                p /= x;
                q /= x;
                r /= x;
              }
            }
            const double s = sign_of(std::sqrt(p * p + q * q + r * r), p);
            if (s == 0.0) continue;
            if (k == m) {
              if (l != m) a(k, k - 1) = -a(k, k - 1);
            } else {
              a(k, k - 1) = -s * x;
            }
            p += s;
            x = p / s;
            y = q / s;
            z = r / s;
            q /= p;
            r /= p;
            // Row modification.
            for (Index j = k; j <= nn; ++j) {
              double pp = a(k, j) + q * a(k + 1, j);
              if (k + 1 != nn) {
                pp += r * a(k + 2, j);
                a(k + 2, j) -= pp * z;
              }
              a(k + 1, j) -= pp * y;
              a(k, j) -= pp * x;
            }
            const Index mmin = std::min(nn, k + 3);
            // Column modification.
            for (Index i = l; i <= mmin; ++i) {
              double pp = x * a(i, k) + y * a(i, k + 1);
              if (k + 1 != nn) {
                pp += z * a(i, k + 2);
                a(i, k + 2) -= pp * r;
              }
              a(i, k + 1) -= pp * q;
              a(i, k) -= pp;
            }
          }
        }
      }
    } while (nn >= 0 && l < nn - 1);
  }
  return wri;
}

GeneralEig eig_general_vectors(const Mat& a) {
  require(a.is_square(), "eig_general_vectors: matrix not square");
  const Index n = a.rows();
  GeneralEig out;
  out.values = eig_general(a);
  out.vectors.resize(n, n);
  const CMat ac = to_complex(a);

  double anorm = a.max_abs();
  if (anorm == 0.0) anorm = 1.0;

  for (Index k = 0; k < n; ++k) {
    // Shifted inverse iteration: (A − (λ+ε)I) x_{m+1} = x_m. The small
    // perturbation ε keeps the solve well-posed while the near-null
    // direction dominates after a few iterations.
    const Complex lambda = out.values[static_cast<size_t>(k)];
    const Complex shift =
        lambda + Complex(1e-10 * anorm, 1e-10 * anorm);
    CMat shifted = ac;
    for (Index i = 0; i < n; ++i) shifted(i, i) -= shift;
    const DenseLU<Complex> lu(shifted);
    require(!lu.singular(), "eig_general_vectors: singular shifted system");

    // Deterministic pseudo-random start, orthogonal-ish across k.
    CVec x(static_cast<size_t>(n));
    for (Index i = 0; i < n; ++i)
      x[static_cast<size_t>(i)] =
          Complex(std::cos(static_cast<double>(1 + i + 3 * k)),
                  std::sin(static_cast<double>(2 + 5 * i + k)));
    double residual = std::numeric_limits<double>::infinity();
    for (int iter = 0; iter < 8 && residual > 1e-10 * anorm; ++iter) {
      x = lu.solve(x);
      const double nx = norm2(x);
      require(nx > 0.0, "eig_general_vectors: inverse iteration collapsed");
      scale(x, Complex(1.0 / nx, 0.0));
      // Residual ‖Ax − λx‖.
      CVec r = ac * x;
      for (Index i = 0; i < n; ++i) r[static_cast<size_t>(i)] -= lambda * x[static_cast<size_t>(i)];
      residual = norm2(r);
    }
    require(residual <= 1e-6 * anorm,
            "eig_general_vectors: inverse iteration failed to converge "
            "(matrix may be defective)");
    out.vectors.set_col(k, x);
  }
  return out;
}

SymmetricEig eig_symmetric_generalized(const Mat& a, const Mat& b) {
  require(a.is_square() && b.is_square() && a.rows() == b.rows(),
          "eig_symmetric_generalized: shape mismatch");
  DenseCholesky chol(b);  // b = L Lᵀ, throws if not SPD
  const Index n = a.rows();
  // C = L⁻¹ A L⁻ᵀ, computed column-wise.
  Mat c(n, n);
  for (Index j = 0; j < n; ++j) {
    // column j of A L⁻ᵀ is obtained by solving Lᵀ row-systems; instead use:
    // C = L⁻¹ (L⁻¹ Aᵀ)ᵀ with A symmetric.
    Vec col = chol.solve_l(a.col(j));
    c.set_col(j, col);
  }
  // Now c = L⁻¹ A; apply L⁻ᵀ from the right: C = (L⁻¹ (L⁻¹ A)ᵀ)ᵀ.
  Mat ct = c.transpose();
  Mat c2(n, n);
  for (Index j = 0; j < n; ++j) c2.set_col(j, chol.solve_l(ct.col(j)));
  Mat sym = c2.transpose();
  // Symmetrize (rounding).
  for (Index i = 0; i < n; ++i)
    for (Index j = i + 1; j < n; ++j) {
      const double m = 0.5 * (sym(i, j) + sym(j, i));
      sym(i, j) = m;
      sym(j, i) = m;
    }
  SymmetricEig e = eig_symmetric(sym);
  // Back-transform eigenvectors: v = L⁻ᵀ y.
  for (Index k = 0; k < n; ++k) e.vectors.set_col(k, chol.solve_lt(e.vectors.col(k)));
  return e;
}

}  // namespace sympvl
