#include "mor/vectorfit.hpp"

#include <cmath>

#include "linalg/dense_factor.hpp"
#include "linalg/eig.hpp"

namespace sympvl {

namespace {

// Pole bookkeeping: conjugate pairs are stored as one entry with
// imag > 0; real poles stand alone. Each pole entry owns 1 (real) or 2
// (pair) REAL basis coefficients, Gustavsen's real-arithmetic arrangement.
struct PoleSet {
  CVec poles;  // imag(a) >= 0; imag > 0 means a conjugate pair

  Index coefficient_count() const {
    Index n = 0;
    for (const Complex& a : poles) n += (a.imag() > 0.0) ? 2 : 1;
    return n;
  }

  // Complex values of the real basis functions at s.
  CVec basis(Complex s) const {
    CVec phi;
    for (const Complex& a : poles) {
      if (a.imag() > 0.0) {
        const Complex f1 = 1.0 / (s - a);
        const Complex f2 = 1.0 / (s - std::conj(a));
        phi.push_back(f1 + f2);
        phi.push_back(Complex(0.0, 1.0) * (f1 - f2));
      } else {
        phi.push_back(1.0 / (s - a));
      }
    }
    return phi;
  }
};

// Initial poles: weakly damped conjugate pairs log-spaced over the band.
PoleSet initial_poles(Index count, double f_min, double f_max) {
  PoleSet ps;
  const Index pairs = count / 2;
  for (Index k = 0; k < pairs; ++k) {
    const double t = pairs == 1 ? 0.5
                                : static_cast<double>(k) /
                                      static_cast<double>(pairs - 1);
    const double w =
        2.0 * M_PI * std::pow(10.0, std::log10(f_min) +
                                        t * (std::log10(f_max) - std::log10(f_min)));
    ps.poles.push_back(Complex(-w / 100.0, w));
  }
  if (count % 2 == 1)
    ps.poles.push_back(Complex(-2.0 * M_PI * std::sqrt(f_min * f_max), 0.0));
  return ps;
}

// Zeros of σ(s) = 1 + Σ c̃·φ(s): eigenvalues of H = A − b·c̃ᵀ in
// Gustavsen's real block form.
CVec sigma_zeros(const PoleSet& ps, const Vec& c_tilde) {
  const Index n = ps.coefficient_count();
  Mat h(n, n);
  Vec b(static_cast<size_t>(n), 0.0);
  Index idx = 0;
  for (const Complex& a : ps.poles) {
    if (a.imag() > 0.0) {
      h(idx, idx) = a.real();
      h(idx, idx + 1) = a.imag();
      h(idx + 1, idx) = -a.imag();
      h(idx + 1, idx + 1) = a.real();
      b[static_cast<size_t>(idx)] = 2.0;
      idx += 2;
    } else {
      h(idx, idx) = a.real();
      b[static_cast<size_t>(idx)] = 1.0;
      idx += 1;
    }
  }
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j)
      h(i, j) -= b[static_cast<size_t>(i)] * c_tilde[static_cast<size_t>(j)];
  return eig_general(h);
}

// Repackage eigenvalues as a PoleSet (pairs with imag > 0, reals alone),
// optionally reflecting unstable poles into the left half-plane.
PoleSet repackage(const CVec& eigenvalues, bool enforce_stable) {
  PoleSet ps;
  std::vector<bool> used(eigenvalues.size(), false);
  for (size_t k = 0; k < eigenvalues.size(); ++k) {
    if (used[k]) continue;
    Complex a = eigenvalues[k];
    if (enforce_stable && a.real() > 0.0) a = Complex(-a.real(), a.imag());
    if (std::abs(a.imag()) <= 1e-9 * (1.0 + std::abs(a))) {
      ps.poles.push_back(Complex(a.real(), 0.0));
      used[k] = true;
      continue;
    }
    // Find and consume the conjugate partner.
    for (size_t m = k + 1; m < eigenvalues.size(); ++m) {
      if (used[m]) continue;
      Complex bm = eigenvalues[m];
      if (enforce_stable && bm.real() > 0.0) bm = Complex(-bm.real(), bm.imag());
      if (std::abs(bm - std::conj(a)) <=
          1e-6 * (1.0 + std::abs(a))) {
        used[m] = true;
        break;
      }
    }
    used[k] = true;
    ps.poles.push_back(Complex(a.real(), std::abs(a.imag())));
  }
  return ps;
}

}  // namespace

VectorFitResult vector_fit(const Vec& frequencies_hz,
                           const std::vector<CMat>& data,
                           const VectorFitOptions& options) {
  require(frequencies_hz.size() == data.size() && !data.empty(),
          "vector_fit: one matrix per frequency required");
  require(options.poles >= 2, "vector_fit: at least two poles required");
  require(options.iterations >= 1, "vector_fit: iterations must be >= 1");
  const Index p = data.front().rows();
  for (const auto& m : data)
    require(m.rows() == p && m.cols() == p, "vector_fit: inconsistent sizes");
  double f_min = frequencies_hz.front(), f_max = frequencies_hz.front();
  for (double f : frequencies_hz) {
    require(f > 0.0, "vector_fit: frequencies must be positive");
    f_min = std::min(f_min, f);
    f_max = std::max(f_max, f);
  }
  require(f_max > f_min, "vector_fit: need a nontrivial frequency band");

  // Fit the upper triangle (the data is reciprocal; the model is built
  // symmetric from these entries).
  std::vector<std::pair<Index, Index>> entries;
  for (Index i = 0; i < p; ++i)
    for (Index j = i; j < p; ++j) entries.emplace_back(i, j);
  const Index ne = static_cast<Index>(entries.size());
  const Index ns = static_cast<Index>(frequencies_hz.size());

  PoleSet ps = initial_poles(options.poles, f_min, f_max);

  // ---- Pole relocation iterations. ----
  for (Index it = 0; it < options.iterations; ++it) {
    const Index n = ps.coefficient_count();
    // Unknowns: per entry (n residue coeffs + 1 direct) then shared c̃ (n).
    const Index cols = ne * (n + 1) + n;
    const Index rows = 2 * ns * ne;  // Re and Im of every sample/entry
    Mat a(rows, cols);
    Vec rhs(static_cast<size_t>(rows), 0.0);
    Index row = 0;
    for (Index k = 0; k < ns; ++k) {
      const Complex s(0.0, 2.0 * M_PI * frequencies_hz[static_cast<size_t>(k)]);
      const CVec phi = ps.basis(s);
      for (Index e = 0; e < ne; ++e) {
        const Complex f = data[static_cast<size_t>(k)](entries[static_cast<size_t>(e)].first,
                                                       entries[static_cast<size_t>(e)].second);
        const Index base = e * (n + 1);
        for (Index m = 0; m < n; ++m) {
          a(row, base + m) = phi[static_cast<size_t>(m)].real();
          a(row + 1, base + m) = phi[static_cast<size_t>(m)].imag();
          const Complex fp = -f * phi[static_cast<size_t>(m)];
          a(row, ne * (n + 1) + m) = fp.real();
          a(row + 1, ne * (n + 1) + m) = fp.imag();
        }
        a(row, base + n) = 1.0;  // direct term (real unknown)
        rhs[static_cast<size_t>(row)] = f.real();
        rhs[static_cast<size_t>(row) + 1] = f.imag();
        row += 2;
      }
    }
    const Vec x = DenseQR(a).solve(rhs);
    Vec c_tilde(static_cast<size_t>(n));
    for (Index m = 0; m < n; ++m)
      c_tilde[static_cast<size_t>(m)] = x[static_cast<size_t>(ne * (n + 1) + m)];
    ps = repackage(sigma_zeros(ps, c_tilde), options.enforce_stable);
  }

  // ---- Final residue fit with the poles fixed. ----
  const Index n = ps.coefficient_count();
  const Index cols = n + 1;
  Mat a(2 * ns, cols);
  std::vector<Vec> coeffs;  // per entry
  double sq_err = 0.0;
  for (Index e = 0; e < ne; ++e) {
    Vec rhs(static_cast<size_t>(2 * ns), 0.0);
    for (Index k = 0; k < ns; ++k) {
      const Complex s(0.0, 2.0 * M_PI * frequencies_hz[static_cast<size_t>(k)]);
      const CVec phi = ps.basis(s);
      for (Index m = 0; m < n; ++m) {
        a(2 * k, m) = phi[static_cast<size_t>(m)].real();
        a(2 * k + 1, m) = phi[static_cast<size_t>(m)].imag();
      }
      a(2 * k, n) = 1.0;
      a(2 * k + 1, n) = 0.0;
      const Complex f = data[static_cast<size_t>(k)](entries[static_cast<size_t>(e)].first,
                                                     entries[static_cast<size_t>(e)].second);
      rhs[static_cast<size_t>(2 * k)] = f.real();
      rhs[static_cast<size_t>(2 * k) + 1] = f.imag();
    }
    coeffs.push_back(DenseQR(a).solve(rhs));
    // Accumulate the residual.
    const Vec& x = coeffs.back();
    for (Index k = 0; k < ns; ++k) {
      const Complex s(0.0, 2.0 * M_PI * frequencies_hz[static_cast<size_t>(k)]);
      const CVec phi = ps.basis(s);
      Complex fit(x[static_cast<size_t>(n)], 0.0);
      for (Index m = 0; m < n; ++m) fit += x[static_cast<size_t>(m)] * phi[static_cast<size_t>(m)];
      const Complex f = data[static_cast<size_t>(k)](entries[static_cast<size_t>(e)].first,
                                                     entries[static_cast<size_t>(e)].second);
      sq_err += std::norm(fit - f);
    }
  }

  // ---- Assemble the ModalModel (every pole listed individually). ----
  CVec model_poles;
  std::vector<CMat> residues;
  Mat direct(p, p);
  for (Index e = 0; e < ne; ++e) {
    const auto [i, j] = entries[static_cast<size_t>(e)];
    direct(i, j) = coeffs[static_cast<size_t>(e)][static_cast<size_t>(n)];
    direct(j, i) = direct(i, j);
  }
  Index idx = 0;
  for (const Complex& pole : ps.poles) {
    if (pole.imag() > 0.0) {
      CMat r1(p, p), r2(p, p);
      for (Index e = 0; e < ne; ++e) {
        const auto [i, j] = entries[static_cast<size_t>(e)];
        const Complex res(coeffs[static_cast<size_t>(e)][static_cast<size_t>(idx)],
                          coeffs[static_cast<size_t>(e)][static_cast<size_t>(idx) + 1]);
        r1(i, j) = res;
        r1(j, i) = res;
        r2(i, j) = std::conj(res);
        r2(j, i) = std::conj(res);
      }
      model_poles.push_back(pole);
      residues.push_back(std::move(r1));
      model_poles.push_back(std::conj(pole));
      residues.push_back(std::move(r2));
      idx += 2;
    } else {
      CMat r(p, p);
      for (Index e = 0; e < ne; ++e) {
        const auto [i, j] = entries[static_cast<size_t>(e)];
        r(i, j) = Complex(coeffs[static_cast<size_t>(e)][static_cast<size_t>(idx)], 0.0);
        r(j, i) = r(i, j);
      }
      model_poles.push_back(pole);
      residues.push_back(std::move(r));
      idx += 1;
    }
  }

  VectorFitResult out{ModalModel(std::move(model_poles), std::move(residues),
                                 std::move(direct), SVariable::kS, 0),
                      std::sqrt(sq_err / static_cast<double>(ns * ne))};
  return out;
}

}  // namespace sympvl
