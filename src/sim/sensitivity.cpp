#include "sim/sensitivity.hpp"

#include <cmath>
#include <optional>

#include "linalg/sparse_ldlt.hpp"
#include "linalg/sparse_lu.hpp"

namespace sympvl {

SensitivityResult z_sensitivities(const Netlist& netlist, Complex s,
                                  Index port_row, Index port_col) {
  const MnaSystem sys = build_mna(netlist, MnaForm::kGeneral);
  const Index p = sys.port_count();
  require(0 <= port_row && port_row < p && 0 <= port_col && port_col < p,
          "z_sensitivities: port index out of range");
  const Index n = sys.size();
  const Index nn = sys.node_unknowns;

  // Factor the pencil once; solve for the two port columns (identical
  // when row == col — the reciprocity that makes the adjoint free).
  const CSMat pencil = pencil_combine(sys.G, sys.C, s);
  std::optional<CLDLT> ldlt;
  std::optional<CLUSparse> lu;
  try {
    ldlt.emplace(pencil);
  } catch (const Error&) {
    lu.emplace(pencil);
  }
  auto solve = [&](const Vec& b) {
    CVec bc(static_cast<size_t>(n));
    for (Index i = 0; i < n; ++i) bc[static_cast<size_t>(i)] = Complex(b[static_cast<size_t>(i)], 0.0);
    return ldlt ? ldlt->solve(bc) : lu->solve(bc);
  };
  const CVec xi = solve(sys.B.col(port_row));
  const CVec xj = (port_row == port_col) ? xi : solve(sys.B.col(port_col));

  // aᵀx for a two-terminal element between netlist nodes n1, n2.
  auto branch = [&](const CVec& x, Index n1, Index n2) {
    Complex v(0.0, 0.0);
    if (n1 >= 1) v += x[static_cast<size_t>(n1 - 1)];
    if (n2 >= 1) v -= x[static_cast<size_t>(n2 - 1)];
    return v;
  };

  SensitivityResult out;
  out.s = s;
  out.port_row = port_row;
  out.port_col = port_col;

  for (const auto& r : netlist.resistors()) {
    // dP/dR = −(1/R²)·aaᵀ  ⇒  dZ = +(1/R²)(aᵀxᵢ)(aᵀxⱼ).
    const Complex ai = branch(xi, r.n1, r.n2);
    const Complex aj = branch(xj, r.n1, r.n2);
    out.d_resistance.push_back(ai * aj / (r.resistance * r.resistance));
  }
  for (const auto& c : netlist.capacitors()) {
    // dP/dC = s·aaᵀ  ⇒  dZ = −s(aᵀxᵢ)(aᵀxⱼ).
    const Complex ai = branch(xi, c.n1, c.n2);
    const Complex aj = branch(xj, c.n1, c.n2);
    out.d_capacitance.push_back(-s * ai * aj);
  }
  const auto& inds = netlist.inductors();
  for (size_t e = 0; e < inds.size(); ++e) {
    // General form stores −L on the current-unknown diagonal:
    // dP/dL = −s·eₑeₑᵀ  ⇒  dZ = +s·xᵢ[nn+e]·xⱼ[nn+e]; in addition every
    // mutual M = k·√(L₁L₂) involving this inductor depends on L through
    // dM/dLₑ = M/(2Lₑ), contributing its off-diagonal term.
    const Complex ii = xi[static_cast<size_t>(nn) + e];
    const Complex ij = xj[static_cast<size_t>(nn) + e];
    Complex d = s * ii * ij;
    for (const auto& m : netlist.mutuals()) {
      if (m.l1 != static_cast<Index>(e) && m.l2 != static_cast<Index>(e))
        continue;
      const double mval =
          m.coupling * std::sqrt(inds[static_cast<size_t>(m.l1)].inductance *
                                 inds[static_cast<size_t>(m.l2)].inductance);
      const double dm_dl = mval / (2.0 * inds[e].inductance);
      const Complex cross =
          xi[static_cast<size_t>(nn + m.l1)] * xj[static_cast<size_t>(nn + m.l2)] +
          xi[static_cast<size_t>(nn + m.l2)] * xj[static_cast<size_t>(nn + m.l1)];
      d += s * dm_dl * cross;
    }
    out.d_inductance.push_back(d);
  }
  for (const auto& m : netlist.mutuals()) {
    // M = k·√(L₁L₂), stored as −M off-diagonal:
    // dP/dk = −s·√(L₁L₂)(e₁e₂ᵀ + e₂e₁ᵀ)
    //   ⇒ dZ = +s·√(L₁L₂)(xᵢ[l₁]xⱼ[l₂] + xᵢ[l₂]xⱼ[l₁]).
    const double root =
        std::sqrt(inds[static_cast<size_t>(m.l1)].inductance *
                  inds[static_cast<size_t>(m.l2)].inductance);
    const Complex term =
        xi[static_cast<size_t>(nn + m.l1)] * xj[static_cast<size_t>(nn + m.l2)] +
        xi[static_cast<size_t>(nn + m.l2)] * xj[static_cast<size_t>(nn + m.l1)];
    out.d_coupling.push_back(s * root * term);
  }
  return out;
}

}  // namespace sympvl
