// Circuit netlist representation: passive RLC elements, independent
// current-source excitations, mutual inductive couplings, and multi-terminal
// ports.
//
// Node 0 is the datum (ground) node; nodes are dense integers 0..node_count-1.
// MNA unknown k corresponds to node k+1 (the datum column is omitted from
// the adjacency matrix, Section 2.1 of the paper).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"

namespace sympvl {

/// A two-terminal passive element or source between nodes n1 (source/+) and
/// n2 (destination/−), following the paper's adjacency-matrix direction
/// convention (+1 at the source node, −1 at the destination node).
struct Resistor {
  std::string name;
  Index n1 = 0, n2 = 0;
  double resistance = 0.0;
};

struct Capacitor {
  std::string name;
  Index n1 = 0, n2 = 0;
  double capacitance = 0.0;
};

struct Inductor {
  std::string name;
  Index n1 = 0, n2 = 0;
  double inductance = 0.0;
};

/// Inductive coupling between two inductors (by index into the inductor
/// list): mutual inductance M = k·√(L₁L₂), |k| < 1.
struct MutualInductance {
  std::string name;
  Index l1 = 0, l2 = 0;
  double coupling = 0.0;
};

/// Independent current source driving `value` amperes from n1 to n2
/// (through the source), i.e. injecting current into n2.
struct CurrentSource {
  std::string name;
  Index n1 = 0, n2 = 0;
  double value = 0.0;
};

/// An observation/excitation terminal pair for the multi-port transfer
/// function Z(s); column of B is e(n1) − e(n2).
struct Port {
  std::string name;
  Index n1 = 0, n2 = 0;  // n2 is usually the datum node 0
};

/// Passive multi-terminal circuit.
class Netlist {
 public:
  Netlist() = default;

  /// Ensures nodes 0..n-1 exist.
  void ensure_nodes(Index n) {
    if (n > node_count_) node_count_ = n;
  }

  /// Allocates and returns a fresh node index.
  Index new_node() { return node_count_++; }

  Index add_resistor(Index n1, Index n2, double r, std::string name = {});
  Index add_capacitor(Index n1, Index n2, double c, std::string name = {});
  Index add_inductor(Index n1, Index n2, double l, std::string name = {});
  Index add_mutual(Index l1, Index l2, double k, std::string name = {});
  Index add_current_source(Index n1, Index n2, double value, std::string name = {});
  Index add_port(Index n1, Index n2 = 0, std::string name = {});

  Index node_count() const { return node_count_; }
  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Inductor>& inductors() const { return inductors_; }
  const std::vector<MutualInductance>& mutuals() const { return mutuals_; }
  const std::vector<CurrentSource>& current_sources() const { return sources_; }
  const std::vector<Port>& ports() const { return ports_; }

  Index port_count() const { return static_cast<Index>(ports_.size()); }

  /// Total passive element count (R + L + C + K).
  Index element_count() const {
    return static_cast<Index>(resistors_.size() + capacitors_.size() +
                              inductors_.size() + mutuals_.size());
  }

  bool has_resistors() const { return !resistors_.empty(); }
  bool has_capacitors() const { return !capacitors_.empty(); }
  bool has_inductors() const { return !inductors_.empty(); }

  /// Circuit class per Section 2.2 of the paper.
  bool is_rc() const { return !has_inductors(); }
  bool is_rl() const { return !has_capacitors(); }
  bool is_lc() const { return !has_resistors(); }

  /// Looks up a port by name; empty optional when absent.
  std::optional<Index> find_port(const std::string& name) const;

  /// Validates node indices, positive element values, |k| < 1, and port
  /// sanity; throws sympvl::Error describing the first problem found.
  void validate() const;

  /// Permits negative-valued R and C elements. Section 6 of the paper:
  /// synthesized reduced circuits may contain negative elements without
  /// affecting stability or accuracy when the reduced model is passive.
  void set_allow_negative(bool allow) { allow_negative_ = allow; }
  bool allow_negative() const { return allow_negative_; }

 private:
  void check_node(Index n, const std::string& what) const;

  Index node_count_ = 1;  // node 0 (datum) always exists
  bool allow_negative_ = false;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Inductor> inductors_;
  std::vector<MutualInductance> mutuals_;
  std::vector<CurrentSource> sources_;
  std::vector<Port> ports_;
};

}  // namespace sympvl
