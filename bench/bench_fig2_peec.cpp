// Experiment E1 — Figure 2 of the paper: the PEEC LC two-port transfer
// function, exact analysis vs SyMPVL matrix-Padé models.
//
// Paper result: order n = 50 gives a good match of the transfer function
// (matching 2⌊50/2⌋ = 50 matrix moments); 6 more iterations (n = 56) give
// a "perfect" match. G is singular, so the eq. 26 frequency shift is used.
//
// This bench prints |Z11| and |Z21| series for the exact sweep and orders
// {30, 50, 56}, plus the per-order max relative error, then times SyMPVL
// against the exact full sweep.
#include <chrono>

#include "bench_util.hpp"
#include "gen/peec.hpp"
#include "mor/sympvl.hpp"
#include "sim/ac.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

const PeecCircuit& peec() {
  static const PeecCircuit p = make_peec_circuit();  // 12x12 grid
  return p;
}

// Expansion point: G is singular (eq. 26 applies), and the natural choice
// is a shift in the middle of the band of interest, s0 = (2π·3.5 GHz)².
double shift() { return std::pow(2.0 * M_PI * 3.5e9, 2.0); }

void print_tables() {
  const MnaSystem& sys = peec().system;
  std::printf("PEEC circuit: MNA size %lld, %zu inductors, %zu couplings\n",
              static_cast<long long>(sys.size()),
              peec().netlist.inductors().size(),
              peec().netlist.mutuals().size());

  const Vec freqs = linear_frequency_grid(1e8, 7.5e9, 60);
  const auto exact = ac_sweep(sys, freqs);

  const std::vector<Index> orders{30, 50, 56};
  std::vector<ReducedModel> roms;
  SympvlReport report;
  for (Index n : orders) {
    SympvlOptions opt;
    opt.order = n;
    opt.s0 = shift();
    roms.push_back(sympvl_reduce(sys, opt, &report));
  }
  std::printf("frequency shift s0 = %.4e (G singular, eq. 26)\n",
              report.s0_used);

  csv_begin("fig2: PEEC two-port transfer function |Z|",
            {"f_hz", "z11_exact", "z11_n30", "z11_n50", "z11_n56",
             "z21_exact", "z21_n30", "z21_n50", "z21_n56"});
  std::vector<double> err(orders.size(), 0.0);
  for (size_t k = 0; k < freqs.size(); ++k) {
    const Complex s(0.0, 2.0 * M_PI * freqs[k]);
    std::vector<CMat> z;
    for (const auto& rom : roms) z.push_back(rom.eval(s));
    csv_row({freqs[k], std::abs(exact[k](0, 0)), std::abs(z[0](0, 0)),
             std::abs(z[1](0, 0)), std::abs(z[2](0, 0)),
             std::abs(exact[k](1, 0)), std::abs(z[0](1, 0)),
             std::abs(z[1](1, 0)), std::abs(z[2](1, 0))});
    for (size_t m = 0; m < roms.size(); ++m)
      err[m] = std::max(err[m], max_rel_err(z[m], exact[k]));
  }

  csv_begin("fig2: max relative error vs order (50 good, 56 near-perfect)",
            {"order", "max_rel_err"});
  for (size_t m = 0; m < orders.size(); ++m)
    csv_row({static_cast<double>(orders[m]), err[m]});

  // The paper's own workflow: "running the algorithm 6 more iterations" —
  // the resumable session reuses the factorization and Lanczos state, so
  // the marginal cost of those 6 iterations is a small fraction of a
  // fresh order-56 run.
  const auto t0 = std::chrono::steady_clock::now();
  SympvlOptions sopt;
  sopt.order = 50;
  sopt.s0 = shift();
  SympvlSession session(sys, sopt);
  const double t_50 =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const auto t1 = std::chrono::steady_clock::now();
  const ReducedModel rom56 = session.extend(6);
  const double t_plus6 =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();
  const double err56 = max_rel_err_sweep(rom56.sweep(freqs), exact);
  csv_begin("fig2: incremental session — order 50 then +6 iterations",
            {"t_order50_s", "t_plus6_s", "err_after_56"});
  csv_row({t_50, t_plus6, err56});
}

void bm_sympvl_reduce(benchmark::State& state) {
  const MnaSystem& sys = peec().system;
  SympvlOptions opt;
  opt.order = static_cast<Index>(state.range(0));
  opt.s0 = shift();
  for (auto _ : state) {
    const ReducedModel rom = sympvl_reduce(sys, opt);
    benchmark::DoNotOptimize(rom.order());
  }
}
BENCHMARK(bm_sympvl_reduce)->Arg(30)->Arg(50)->Arg(56)->Unit(benchmark::kMillisecond);

void bm_exact_sweep_point(benchmark::State& state) {
  const MnaSystem& sys = peec().system;
  for (auto _ : state) {
    const CMat z = ac_z_matrix(sys, Complex(0.0, 2.0 * M_PI * 1e9));
    benchmark::DoNotOptimize(z(0, 0));
  }
}
BENCHMARK(bm_exact_sweep_point)->Unit(benchmark::kMillisecond);

void bm_rom_sweep_point(benchmark::State& state) {
  const MnaSystem& sys = peec().system;
  SympvlOptions opt;
  opt.order = 50;
  opt.s0 = shift();
  const ReducedModel rom = sympvl_reduce(sys, opt);
  for (auto _ : state) {
    const CMat z = rom.eval(Complex(0.0, 2.0 * M_PI * 1e9));
    benchmark::DoNotOptimize(z(0, 0));
  }
}
BENCHMARK(bm_rom_sweep_point)->Unit(benchmark::kMillisecond);

}  // namespace

SYMPVL_BENCH_MAIN(print_tables)
