file(REMOVE_RECURSE
  "CMakeFiles/bench_stability_passivity.dir/bench_stability_passivity.cpp.o"
  "CMakeFiles/bench_stability_passivity.dir/bench_stability_passivity.cpp.o.d"
  "bench_stability_passivity"
  "bench_stability_passivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stability_passivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
