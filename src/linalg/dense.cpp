#include "linalg/dense.hpp"

namespace sympvl {

CMat to_complex(const Mat& a) {
  CMat c(a.rows(), a.cols());
  for (Index i = 0; i < a.rows(); ++i)
    for (Index j = 0; j < a.cols(); ++j) c(i, j) = Complex(a(i, j), 0.0);
  return c;
}

Mat real_part(const CMat& a) {
  Mat r(a.rows(), a.cols());
  for (Index i = 0; i < a.rows(); ++i)
    for (Index j = 0; j < a.cols(); ++j) r(i, j) = a(i, j).real();
  return r;
}

Mat imag_part(const CMat& a) {
  Mat r(a.rows(), a.cols());
  for (Index i = 0; i < a.rows(); ++i)
    for (Index j = 0; j < a.cols(); ++j) r(i, j) = a(i, j).imag();
  return r;
}

}  // namespace sympvl
