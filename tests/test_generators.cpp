#include <gtest/gtest.h>

#include "gen/package.hpp"
#include "gen/peec.hpp"
#include "gen/random_circuit.hpp"
#include "gen/rc_interconnect.hpp"
#include "linalg/sparse_ldlt.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

TEST(Generators, RandomRcIsValidAndConnected) {
  const Netlist nl = random_rc({.nodes = 30, .ports = 3, .seed = 1});
  EXPECT_NO_THROW(nl.validate());
  EXPECT_TRUE(nl.is_rc());
  // Connected to ground through resistors: G is nonsingular.
  const MnaSystem sys = build_mna(nl);
  EXPECT_NO_THROW(LDLT{sys.G});
}

TEST(Generators, RandomCircuitsDeterministicInSeed) {
  const Netlist a = random_rc({.nodes = 20, .ports = 2, .seed = 7});
  const Netlist b = random_rc({.nodes = 20, .ports = 2, .seed = 7});
  ASSERT_EQ(a.resistors().size(), b.resistors().size());
  for (size_t k = 0; k < a.resistors().size(); ++k)
    EXPECT_DOUBLE_EQ(a.resistors()[k].resistance, b.resistors()[k].resistance);
}

TEST(Generators, RandomLcUngroundedHasSingularG) {
  const Netlist nl = random_lc({.nodes = 12, .ports = 1, .seed = 2,
                                .grounded = false});
  const MnaSystem sys = build_mna(nl, MnaForm::kLC);
  EXPECT_THROW(LDLT(sys.G, Ordering::kRCM, 1e-12), Error);
}

TEST(Generators, RandomRlAndRlcClassifyCorrectly) {
  EXPECT_TRUE(random_rl({.nodes = 15, .ports = 1, .seed = 3}).is_rl());
  const Netlist rlc = random_rlc({.nodes = 15, .ports = 2, .seed = 4});
  EXPECT_FALSE(rlc.is_rc());
  EXPECT_FALSE(rlc.is_rl());
  EXPECT_FALSE(rlc.is_lc());
}

TEST(Generators, PeecStructureMatchesPaper) {
  const PeecCircuit peec = make_peec_circuit({.grid = 8});
  // LC only.
  EXPECT_TRUE(peec.netlist.is_lc());
  EXPECT_GT(peec.netlist.mutuals().size(), 0u);
  // Two-port B with the observation column.
  EXPECT_EQ(peec.system.port_count(), 2);
  EXPECT_EQ(peec.system.variable, SVariable::kSSquared);
  // G singular (no DC path to the reference plane) — the paper's reason
  // for the frequency shift of eq. 26.
  EXPECT_THROW(LDLT(peec.system.G, Ordering::kRCM, 1e-12), Error);
  // Shifted pencil factors fine.
  EXPECT_NO_THROW(LDLT{SMat::add(peec.system.G, 1.0, peec.system.C, 1e18)});
}

TEST(Generators, PeecInductanceMatrixIsSpd) {
  const PeecCircuit peec = make_peec_circuit({.grid = 6});
  EXPECT_NO_THROW(inductance_matrix(peec.netlist));
}

TEST(Generators, PackageDimensionsMatchPaper) {
  const PackageCircuit pkg = make_package_circuit();
  // ~4000 circuit elements, MNA size ~2000, 16 ports.
  EXPECT_NEAR(static_cast<double>(pkg.netlist.element_count()), 4000.0, 500.0);
  const MnaSystem sys = build_mna(pkg.netlist, MnaForm::kGeneral);
  EXPECT_NEAR(static_cast<double>(sys.size()), 2000.0, 200.0);
  EXPECT_EQ(sys.port_count(), 16);
  EXPECT_EQ(pkg.ext_nodes.size(), 8u);
  EXPECT_EQ(pkg.int_nodes.size(), 8u);
}

TEST(Generators, PackagePortIndexHelpers) {
  const PackageCircuit pkg = make_package_circuit({.pins = 16, .segments = 3,
                                                   .signal_pins = 4});
  EXPECT_EQ(pkg.ext_port(0), 0);
  EXPECT_EQ(pkg.int_port(0), 4);
  EXPECT_EQ(pkg.int_port(3), 7);
}

TEST(Generators, PackageIsPhysicallyConsistent) {
  const PackageCircuit pkg = make_package_circuit({.pins = 8, .segments = 3,
                                                   .signal_pins = 2});
  EXPECT_NO_THROW(pkg.netlist.validate());
  EXPECT_NO_THROW(inductance_matrix(pkg.netlist));
  // DC: a signal pin sees a finite resistance to ground (through the
  // grounded supply pins' network).
  const MnaSystem sys = build_mna(pkg.netlist, MnaForm::kGeneral);
  const CMat z = ac_z_matrix(sys, Complex(0.0, 1.0));  // near-DC
  EXPECT_GT(std::abs(z(0, 0)), 0.0);
}

TEST(Generators, InterconnectDimensionsMatchPaper) {
  const InterconnectCircuit ic = make_interconnect_circuit();
  // Paper: 1350 nodes, 1355 R, 36620 C, 17 ports.
  EXPECT_EQ(ic.netlist.port_count(), 17);
  EXPECT_NEAR(static_cast<double>(ic.netlist.node_count() - 1), 1350.0, 100.0);
  EXPECT_NEAR(static_cast<double>(ic.netlist.resistors().size()), 1355.0, 100.0);
  EXPECT_GT(ic.netlist.capacitors().size(), 20000u);
  EXPECT_TRUE(ic.netlist.is_rc());
}

TEST(Generators, InterconnectIsWellPosed) {
  const InterconnectCircuit ic = make_interconnect_circuit(
      {.wires = 4, .segments = 20});
  EXPECT_EQ(ic.netlist.port_count(), 9);
  const MnaSystem sys = build_mna(ic.netlist, MnaForm::kRC);
  EXPECT_NO_THROW(LDLT{sys.G});
  // Crosstalk exists: transfer impedance between adjacent wires nonzero.
  const CMat z = ac_z_matrix(sys, Complex(0.0, 2.0 * M_PI * 1e9));
  EXPECT_GT(std::abs(z(0, 1)), 0.0);
}

TEST(Generators, OptionValidation) {
  EXPECT_THROW(make_peec_circuit({.grid = 1}), Error);
  EXPECT_THROW(make_package_circuit({.pins = 2}), Error);
  EXPECT_THROW(make_interconnect_circuit({.wires = 1}), Error);
  EXPECT_THROW(random_rc({.nodes = 3, .ports = 5, .seed = 1}), Error);
}

}  // namespace
}  // namespace sympvl
