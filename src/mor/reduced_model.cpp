#include "mor/reduced_model.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "linalg/dense_factor.hpp"
#include "linalg/eig.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace sympvl {

ReducedModel::ReducedModel(const LanczosResult& lanczos, SVariable variable,
                           int s_prefactor, double s0)
    : t_(lanczos.t),
      delta_(lanczos.delta),
      rho_(lanczos.rho),
      variable_(variable),
      s_prefactor_(s_prefactor),
      s0_(s0),
      lanczos_(lanczos) {
  require(t_.is_square() && delta_.is_square() && t_.rows() == delta_.rows() &&
              rho_.rows() == t_.rows(),
          "ReducedModel: inconsistent Lanczos output shapes");
  delta_inv_ = dense_solve(delta_, Mat::identity(delta_.rows()));
  t_delta_inv_ = t_ * delta_inv_;
  // Symmetrize TΔ⁻¹ (exactly symmetric in exact arithmetic since ΔT is).
  for (Index i = 0; i < t_delta_inv_.rows(); ++i)
    for (Index j = i + 1; j < t_delta_inv_.cols(); ++j) {
      const double m = 0.5 * (t_delta_inv_(i, j) + t_delta_inv_(j, i));
      t_delta_inv_(i, j) = m;
      t_delta_inv_(j, i) = m;
    }
}

namespace {
void write_matrix(std::ostream& out, const char* tag, const Mat& m) {
  out << tag << " " << m.rows() << " " << m.cols() << "\n";
  for (Index i = 0; i < m.rows(); ++i) {
    for (Index j = 0; j < m.cols(); ++j) out << (j ? " " : "") << m(i, j);
    out << "\n";
  }
}
Mat read_matrix(std::istream& in, const char* tag) {
  std::string word;
  Index rows = 0, cols = 0;
  require(static_cast<bool>(in >> word >> rows >> cols) && word == tag,
          std::string("ReducedModel::from_text: expected section '") + tag + "'");
  require(rows >= 0 && cols >= 0 && rows < (Index(1) << 20),
          "ReducedModel::from_text: implausible matrix size");
  Mat m(rows, cols);
  for (Index i = 0; i < rows; ++i)
    for (Index j = 0; j < cols; ++j)
      require(static_cast<bool>(in >> m(i, j)),
              "ReducedModel::from_text: truncated matrix data");
  return m;
}
}  // namespace

std::string ReducedModel::to_text() const {
  std::ostringstream out;
  out.precision(17);
  out << "sympvl-reduced-model v1\n";
  out << "order " << order() << " ports " << port_count() << " variable "
      << (variable_ == SVariable::kS ? "s" : "s2") << " prefactor "
      << s_prefactor_ << " shift " << s0_ << "\n";
  write_matrix(out, "T", t_);
  write_matrix(out, "DELTA", delta_);
  write_matrix(out, "RHO", rho_);
  out << "end\n";
  return out.str();
}

ReducedModel ReducedModel::from_text(const std::string& text) {
  std::istringstream in(text);
  std::string magic, version;
  require(static_cast<bool>(in >> magic >> version) &&
              magic == "sympvl-reduced-model" && version == "v1",
          "ReducedModel::from_text: not a v1 model file");
  std::string kw;
  Index order = 0, ports = 0;
  std::string variable;
  int prefactor = 0;
  double shift = 0.0;
  require(static_cast<bool>(in >> kw >> order) && kw == "order",
          "ReducedModel::from_text: missing 'order'");
  require(static_cast<bool>(in >> kw >> ports) && kw == "ports",
          "ReducedModel::from_text: missing 'ports'");
  require(static_cast<bool>(in >> kw >> variable) && kw == "variable" &&
              (variable == "s" || variable == "s2"),
          "ReducedModel::from_text: missing 'variable'");
  require(static_cast<bool>(in >> kw >> prefactor) && kw == "prefactor",
          "ReducedModel::from_text: missing 'prefactor'");
  require(static_cast<bool>(in >> kw >> shift) && kw == "shift",
          "ReducedModel::from_text: missing 'shift'");

  LanczosResult res;
  res.t = read_matrix(in, "T");
  res.delta = read_matrix(in, "DELTA");
  res.rho = read_matrix(in, "RHO");
  require(res.t.rows() == order && res.rho.cols() == ports,
          "ReducedModel::from_text: header/matrix size mismatch");
  res.n = order;
  res.p1 = std::min(order, ports);
  res.cluster_sizes.assign(static_cast<size_t>(order), 1);
  std::string tail;
  require(static_cast<bool>(in >> tail) && tail == "end",
          "ReducedModel::from_text: missing 'end'");
  return ReducedModel(res, variable == "s" ? SVariable::kS : SVariable::kSSquared,
                      prefactor, shift);
}

void ReducedModel::save(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "ReducedModel::save: cannot open '" + path + "'");
  out << to_text();
}

ReducedModel ReducedModel::load(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "ReducedModel::load: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_text(buf.str());
}

CMat ReducedModel::eval(Complex s) const {
  const Index n = order();
  const Index p = port_count();
  const Complex sigma = (variable_ == SVariable::kS ? s : s * s) - s0_;
  // (I + σT) X = ρ, then Zₙ = pref·ρᵀΔX.
  CMat lhs(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j)
      lhs(i, j) = (i == j ? Complex(1.0, 0.0) : Complex(0.0, 0.0)) +
                  sigma * t_(i, j);
  CMat rhs(n, p);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < p; ++j) rhs(i, j) = Complex(rho_(i, j), 0.0);
  const CMat x = dense_solve(lhs, rhs);
  Complex pref(1.0, 0.0);
  for (int k = 0; k < s_prefactor_; ++k) pref *= s;
  // Zₙ = pref·ρᵀ(ΔX) as two row-streamed passes, O(n²p) + O(np²);
  // accumulating ρ(i,a)Δ(i,j)X(j,b) entrywise is O(p²n²) — quartic in
  // the order for many-port models, where p ≈ n.
  CMat w(n, p);
  for (Index i = 0; i < n; ++i) {
    Complex* wrow = w.data() + i * p;
    for (Index j = 0; j < n; ++j) {
      const double d = delta_(i, j);
      if (d == 0.0) continue;
      const Complex* xrow = x.data() + j * p;
      for (Index b = 0; b < p; ++b) wrow[b] += d * xrow[b];
    }
  }
  CMat z(p, p);
  for (Index i = 0; i < n; ++i) {
    const Complex* wrow = w.data() + i * p;
    for (Index a = 0; a < p; ++a) {
      const double r = rho_(i, a);
      if (r == 0.0) continue;
      Complex* zrow = z.data() + a * p;
      for (Index b = 0; b < p; ++b) zrow[b] += r * wrow[b];
    }
  }
  for (Index a = 0; a < p; ++a)
    for (Index b = 0; b < p; ++b) z(a, b) *= pref;
  return z;
}

SweepResult ReducedModel::sweep(const Vec& frequencies_hz) const {
  const Index count = static_cast<Index>(frequencies_hz.size());
  obs::ScopedTimer span("model.sweep");
  span.arg("points", count);
  span.arg("order", order());
  span.arg("threads", num_threads());
  const Index p = port_count();
  SweepResult res = detail::run_contained_sweep(
      frequencies_hz, p, p, [&](Index k) {
        return eval(Complex(
            0.0, 2.0 * M_PI * frequencies_hz[static_cast<size_t>(k)]));
      });
  span.arg("failed_points", res.failed_count());
  return res;
}

CVec ReducedModel::poles() const {
  const CVec lambdas = eig_general(t_);
  CVec poles;
  poles.reserve(lambdas.size() * 2);
  for (const Complex& l : lambdas) {
    if (std::abs(l) < 1e-14) continue;  // pole at infinity
    const Complex sigma = Complex(s0_, 0.0) - Complex(1.0, 0.0) / l;
    if (variable_ == SVariable::kS) {
      poles.push_back(sigma);
    } else {
      const Complex root = std::sqrt(sigma);
      poles.push_back(root);
      poles.push_back(-root);
    }
  }
  return poles;
}

bool ReducedModel::is_stable(double tol) const {
  for (const Complex& pole : poles())
    if (pole.real() > tol) return false;
  return true;
}

Mat ReducedModel::moment(Index k) const {
  require(k >= 0, "ReducedModel::moment: negative order");
  const Index n = order();
  const Index p = port_count();
  // μₖ = ρᵀ Δ Tᵏ ρ via repeated mat-vec on the columns of ρ.
  Mat tk_rho = rho_;
  for (Index step = 0; step < k; ++step) tk_rho = t_ * tk_rho;
  const Mat d_tk_rho = delta_ * tk_rho;
  Mat mu(p, p);
  for (Index a = 0; a < p; ++a)
    for (Index b = 0; b < p; ++b) {
      double acc = 0.0;
      for (Index i = 0; i < n; ++i) acc += rho_(i, a) * d_tk_rho(i, b);
      mu(a, b) = acc;
    }
  return mu;
}

TransientResult ReducedModel::simulate_transient(
    const std::vector<Waveform>& port_currents,
    const TransientOptions& options) const {
  require(variable_ == SVariable::kS && s_prefactor_ == 0 && s0_ == 0.0,
          "ReducedModel::simulate_transient: requires an unshifted s-domain "
          "model (RC or general RLC)");
  // Express eq. (23) as a small dense MNA-like system and reuse the
  // fixed-step integrator logic: G_r = Δ⁻¹, C_r = TΔ⁻¹, input/output ρ.
  const Index n = order();
  const Index p = port_count();
  require(static_cast<Index>(port_currents.size()) == p,
          "ReducedModel::simulate_transient: one waveform per port required");
  require(options.dt > 0.0 && options.t_end > options.dt,
          "ReducedModel::simulate_transient: invalid time grid");
  const double h = options.dt;
  const bool trap = options.method == IntegrationMethod::kTrapezoidal;
  const Index steps = static_cast<Index>(std::ceil(options.t_end / h));

  Mat lhs = t_delta_inv_;
  lhs *= 1.0 / h;
  Mat hist = t_delta_inv_;
  hist *= 1.0 / h;
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j) {
      lhs(i, j) += (trap ? 0.5 : 1.0) * delta_inv_(i, j);
      hist(i, j) -= (trap ? 0.5 : 0.0) * delta_inv_(i, j);
    }
  const LU fact(lhs);

  auto inputs_at = [&](double t) {
    Vec u(static_cast<size_t>(p));
    for (Index j = 0; j < p; ++j) u[static_cast<size_t>(j)] = port_currents[static_cast<size_t>(j)](t);
    return u;
  };

  TransientResult result;
  result.time.resize(static_cast<size_t>(steps) + 1);
  result.outputs.resize(steps + 1, p);
  Vec x(static_cast<size_t>(n), 0.0);
  Vec u_prev = inputs_at(0.0);
  auto record = [&](Index k, double tm) {
    result.time[static_cast<size_t>(k)] = tm;
    for (Index j = 0; j < p; ++j) {
      double acc = 0.0;
      for (Index i = 0; i < n; ++i) acc += rho_(i, j) * x[static_cast<size_t>(i)];
      result.outputs(k, j) = acc;
    }
  };
  record(0, 0.0);
  for (Index k = 1; k <= steps; ++k) {
    const double tm = static_cast<double>(k) * h;
    const Vec u_now = inputs_at(tm);
    Vec b = hist * x;
    for (Index i = 0; i < n; ++i) {
      double acc = 0.0;
      for (Index j = 0; j < p; ++j) {
        const double u =
            trap ? 0.5 * (u_now[static_cast<size_t>(j)] + u_prev[static_cast<size_t>(j)])
                 : u_now[static_cast<size_t>(j)];
        acc += rho_(i, j) * u;
      }
      b[static_cast<size_t>(i)] += acc;
    }
    x = fact.solve(b);
    u_prev = u_now;
    record(k, tm);
  }
  return result;
}

MnaSystem ReducedModel::stamp_into(const Netlist& host,
                                   const std::vector<Index>& attach_nodes) const {
  require(variable_ == SVariable::kS && s_prefactor_ == 0 && s0_ == 0.0,
          "ReducedModel::stamp_into: requires an unshifted s-domain model");
  const Index p = port_count();
  require(static_cast<Index>(attach_nodes.size()) == p,
          "ReducedModel::stamp_into: one attach node per reduced port");
  const MnaSystem base = build_mna(host, MnaForm::kGeneral);
  const Index nh = base.size();
  const Index n = order();
  // Unknowns: [host x (nh); rom state x (n); rom port currents i (p)].
  const Index ntot = nh + n + p;

  TripletBuilder<double> g(ntot, ntot);
  TripletBuilder<double> c(ntot, ntot);
  // Host stamps.
  for (Index j = 0; j < nh; ++j) {
    for (Index k = base.G.colptr()[static_cast<size_t>(j)];
         k < base.G.colptr()[static_cast<size_t>(j) + 1]; ++k)
      g.add(base.G.rowind()[static_cast<size_t>(k)], j,
            base.G.values()[static_cast<size_t>(k)]);
    for (Index k = base.C.colptr()[static_cast<size_t>(j)];
         k < base.C.colptr()[static_cast<size_t>(j) + 1]; ++k)
      c.add(base.C.rowind()[static_cast<size_t>(k)], j,
            base.C.values()[static_cast<size_t>(k)]);
  }
  // ROM state rows: Δ⁻¹x + TΔ⁻¹ẋ − ρ·i = 0.
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j) {
      if (delta_inv_(i, j) != 0.0) g.add(nh + i, nh + j, delta_inv_(i, j));
      if (t_delta_inv_(i, j) != 0.0) c.add(nh + i, nh + j, t_delta_inv_(i, j));
    }
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < p; ++j)
      if (rho_(i, j) != 0.0) g.add(nh + i, nh + n + j, -rho_(i, j));
  // Port coupling rows: Eᵀv − ρᵀx = 0 (symmetric counterparts) and host
  // KCL columns E·i.
  for (Index j = 0; j < p; ++j) {
    const Index node = attach_nodes[static_cast<size_t>(j)];
    require(node >= 0 && node < host.node_count(),
            "ReducedModel::stamp_into: attach node out of range");
    if (node >= 1) {
      g.add(node - 1, nh + n + j, 1.0);   // E in host KCL rows
      g.add(nh + n + j, node - 1, 1.0);   // Eᵀ in coupling rows
    }
    for (Index i = 0; i < n; ++i)
      if (rho_(i, j) != 0.0) g.add(nh + n + j, nh + i, -rho_(i, j));
  }

  MnaSystem sys;
  sys.G = g.compress();
  sys.C = c.compress();
  sys.variable = SVariable::kS;
  sys.s_prefactor = 0;
  sys.definite = false;
  sys.node_unknowns = base.node_unknowns;
  sys.inductor_unknowns = base.inductor_unknowns;
  sys.port_names = base.port_names;
  sys.B.resize(ntot, base.B.cols());
  for (Index i = 0; i < nh; ++i)
    for (Index j = 0; j < base.B.cols(); ++j) sys.B(i, j) = base.B(i, j);
  return sys;
}

}  // namespace sympvl
