file(REMOVE_RECURSE
  "CMakeFiles/bench_wideband.dir/bench_wideband.cpp.o"
  "CMakeFiles/bench_wideband.dir/bench_wideband.cpp.o.d"
  "bench_wideband"
  "bench_wideband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wideband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
