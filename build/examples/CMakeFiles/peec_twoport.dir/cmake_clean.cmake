file(REMOVE_RECURSE
  "CMakeFiles/peec_twoport.dir/peec_twoport.cpp.o"
  "CMakeFiles/peec_twoport.dir/peec_twoport.cpp.o.d"
  "peec_twoport"
  "peec_twoport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peec_twoport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
