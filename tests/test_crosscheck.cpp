// Cross-method consistency suite: every reduction method in the library
// (SyMPVL, SyPVL, PVL, block-Arnoldi, rational multi-point, modal form)
// approximates the SAME transfer function, so on a common circuit their
// converged answers must agree with the exact AC analysis and with each
// other. Randomized over circuit classes and seeds.
#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "mor/arnoldi.hpp"
#include "mor/postprocess.hpp"
#include "mor/pvl.hpp"
#include "mor/rational.hpp"
#include "mor/sympvl.hpp"
#include "mor/sypvl.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

struct CrossCase {
  unsigned seed;
  Index nodes;
};

class CrossCheck : public testing::TestWithParam<CrossCase> {};

TEST_P(CrossCheck, AllMethodsConvergeToExactSiso) {
  const auto [seed, nodes] = GetParam();
  const Netlist nl = random_rc({.nodes = nodes, .ports = 1, .seed = seed});
  const MnaSystem sys = build_mna(nl);
  const Index n = std::min<Index>(nodes, 24);  // deep enough to converge

  SympvlOptions sopt;
  sopt.order = n;
  const ReducedModel rom = sympvl_reduce(sys, sopt);
  const ReducedModel rom1 = sypvl_reduce(sys, sopt);
  PvlOptions popt;
  popt.order = n;
  const PvlModel pvl = pvl_reduce_entry(sys, 0, 0, popt);
  ArnoldiOptions aopt;
  aopt.order = n;
  const ArnoldiModel arn = arnoldi_reduce(sys, aopt);
  RationalOptions ropt;
  ropt.shifts = {0.0};
  ropt.iterations_per_shift = n;
  const ArnoldiModel rat = rational_reduce(sys, ropt);
  const ModalModel modal = modal_decompose(rom);

  for (double f : {1e6, 1e8, 1e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const Complex exact = ac_z_matrix(sys, s)(0, 0);
    const double tol = 2e-3 * std::abs(exact);
    EXPECT_NEAR(std::abs(rom.eval(s)(0, 0) - exact), 0.0, tol) << "sympvl " << f;
    EXPECT_NEAR(std::abs(rom1.eval(s)(0, 0) - exact), 0.0, tol) << "sypvl " << f;
    EXPECT_NEAR(std::abs(pvl.eval(s) - exact), 0.0, tol) << "pvl " << f;
    EXPECT_NEAR(std::abs(arn.eval(s)(0, 0) - exact), 0.0, tol) << "arnoldi " << f;
    EXPECT_NEAR(std::abs(rat.eval(s)(0, 0) - exact), 0.0, tol) << "rational " << f;
    EXPECT_NEAR(std::abs(modal.eval(s)(0, 0) - exact), 0.0, tol) << "modal " << f;
  }
}

TEST_P(CrossCheck, SympvlAndArnoldiShareKrylovAccuracy) {
  // Same span → same transfer function on symmetric pencils: the two
  // models agree with each other far more tightly than either agrees with
  // the exact answer at low order.
  const auto [seed, nodes] = GetParam();
  const Netlist nl = random_rc({.nodes = nodes, .ports = 2, .seed = seed + 500});
  const MnaSystem sys = build_mna(nl);
  SympvlOptions sopt;
  sopt.order = 8;
  const ReducedModel rom = sympvl_reduce(sys, sopt);
  ArnoldiOptions aopt;
  aopt.order = 8;
  const ArnoldiModel arn = arnoldi_reduce(sys, aopt);
  for (double f : {1e7, 1e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const CMat za = rom.eval(s);
    const CMat zb = arn.eval(s);
    for (Index i = 0; i < 2; ++i)
      for (Index j = 0; j < 2; ++j)
        EXPECT_NEAR(std::abs(za(i, j) - zb(i, j)), 0.0,
                    1e-6 * (std::abs(za(i, j)) + 1.0))
            << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCheck,
                         testing::Values(CrossCase{41, 24}, CrossCase{42, 30},
                                         CrossCase{43, 36}, CrossCase{44, 28},
                                         CrossCase{45, 32}),
                         [](const testing::TestParamInfo<CrossCase>& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

TEST(CrossCheckRlc, SympvlVsPvlOnIndefinitePencil) {
  // The J ≠ I code path against the nonsymmetric-Lanczos code path.
  const Netlist nl = random_rlc({.nodes = 22, .ports = 1, .seed = 77});
  const MnaSystem sys = build_mna(nl, MnaForm::kGeneral);
  SympvlOptions sopt;
  sopt.order = 12;
  const ReducedModel rom = sympvl_reduce(sys, sopt);
  PvlOptions popt;
  popt.order = 12;
  const PvlModel pvl = pvl_reduce_entry(sys, 0, 0, popt);
  for (double f : {1e6, 1e7, 1e8}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const Complex exact = ac_z_matrix(sys, s)(0, 0);
    EXPECT_NEAR(std::abs(rom.eval(s)(0, 0) - exact), 0.0, 1e-2 * std::abs(exact))
        << f;
    EXPECT_NEAR(std::abs(pvl.eval(s) - exact), 0.0, 1e-2 * std::abs(exact)) << f;
  }
}

TEST(CrossCheckLc, SympvlMatchesExactThroughSquaredVariable) {
  // LC circuits run through the σ = s² machinery end to end.
  const Netlist nl = random_lc({.nodes = 18, .ports = 1, .seed = 88});
  const MnaSystem sys = build_mna(nl, MnaForm::kLC);
  SympvlOptions opt;
  opt.order = 16;
  const ReducedModel rom = sympvl_reduce(sys, opt);
  for (double f : {1e8, 5e8, 2e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const Complex exact = ac_z_matrix(sys, s)(0, 0);
    EXPECT_NEAR(std::abs(rom.eval(s)(0, 0) - exact), 0.0,
                5e-3 * std::abs(exact))
        << f;
  }
}

}  // namespace
}  // namespace sympvl
