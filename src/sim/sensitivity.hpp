// Adjoint small-change sensitivity of the multi-port transfer function:
// ∂Z(i,j)(s)/∂(element value) for EVERY element of the netlist, from a
// single factorization of the pencil.
//
// With P(s) = G + f(s)C and Z = BᵀP⁻¹B, a perturbation of one element
// changes the pencil by dP = w·aₑaₑᵀ (aₑ the element's incidence vector),
// so  dZ(i,j) = −(aₑᵀxᵢ)·w·(aₑᵀxⱼ)  where xᵢ = P⁻¹bᵢ. The network is
// reciprocal (P symmetric), so the adjoint solutions ARE the port
// solutions: all sensitivities cost p solves total — the classic adjoint
// trick used by circuit optimizers, and a natural companion to a
// reduced-order-modeling library (which elements matter enough to keep?).
#pragma once

#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/mna.hpp"

namespace sympvl {

/// Sensitivities of one Z entry at one frequency with respect to every
/// element's *primary value* (Ω, F, H, and coupling coefficient k).
struct SensitivityResult {
  Complex s;          ///< evaluation point
  Index port_row = 0; ///< the Z entry differentiated
  Index port_col = 0;
  CVec d_resistance;  ///< ∂Z/∂Rₑ, one per netlist resistor
  CVec d_capacitance; ///< ∂Z/∂Cₑ
  CVec d_inductance;  ///< ∂Z/∂Lₑ (general RLC form)
  CVec d_coupling;    ///< ∂Z/∂kₑ, one per mutual element
};

/// Computes all element sensitivities of Z(port_row, port_col) at `s`.
/// The netlist must be the one `build_mna(netlist, MnaForm::kGeneral)` (or
/// kRC for RC circuits) was assembled from; the general/RC form is rebuilt
/// internally so indices line up.
SensitivityResult z_sensitivities(const Netlist& netlist, Complex s,
                                  Index port_row, Index port_col);

}  // namespace sympvl
