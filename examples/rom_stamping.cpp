// Section 6 demonstration: "stamped directly into the Jacobian matrix of a
// SPICE-type circuit simulator".
//
// A large RC interconnect block is reduced with SyMPVL; the reduced model
// then replaces the block inside a host circuit (a driver network) by
// stamping eq. (23) into the host's MNA system. The combined
// (host + reduced block) simulation is compared against simulating the
// host + full block, in both frequency and time domain.
//
//   $ ./rom_stamping
#include <cstdio>

#include "sympvl.hpp"

int main() {
  using namespace sympvl;

  // The sub-block: a 4-wire coupled RC bus (ports: 4 near, 4 far, 1 tap).
  const InterconnectCircuit block = make_interconnect_circuit(
      {.wires = 4, .segments = 60});
  std::printf("sub-block: %s\n", describe(block.netlist).c_str());
  const MnaSystem block_sys = build_mna(block.netlist, MnaForm::kRC);

  // Reduce the block: 3 states per port.
  ReduceOptions opt;
  opt.order = 3 * block_sys.port_count();
  const ReducedModel rom = *reduce(block_sys, opt).value().as_reduced();
  std::printf("reduced block: order %lld (from %lld unknowns)\n",
              static_cast<long long>(rom.order()),
              static_cast<long long>(block_sys.size()));

  // Host circuit: driver resistances feeding the block's near ends from a
  // current-source port, plus load capacitors on the far ends. The block
  // attaches at host nodes 1..9.
  const Index p = block_sys.port_count();
  Netlist host;
  host.ensure_nodes(p + 2);
  const Index drive_node = p + 1;
  host.add_resistor(drive_node, 1, 150.0, "Rdrv1");  // drive wire 1 near end
  for (Index w = 1; w < 4; ++w)
    host.add_resistor(w + 1, 0, 1e4, "Rq" + std::to_string(w));  // quiet nears
  for (Index w = 0; w < 4; ++w)
    host.add_capacitor(5 + w, 0, 20e-15, "Cload" + std::to_string(w + 1));
  host.add_capacitor(drive_node, 0, 5e-15, "Cdrv");
  host.add_resistor(9, 0, 1e5, "Rtap");  // light load on the tap port node
  host.add_port(drive_node, 0, "in");

  std::vector<Index> attach(static_cast<size_t>(p));
  for (Index k = 0; k < p; ++k) attach[static_cast<size_t>(k)] = k + 1;

  // Combined system with the ROM stamped in.
  const MnaSystem stamped = rom.stamp_into(host, attach);
  std::printf("stamped system: %lld unknowns (host + %lld ROM states + %lld "
              "port currents)\n",
              static_cast<long long>(stamped.size()),
              static_cast<long long>(rom.order()), static_cast<long long>(p));

  // Reference: host + FULL block merged into one netlist. Host node k maps
  // to block port node attach[k].
  Netlist merged = block.netlist;
  std::vector<Index> port_nodes;
  for (const auto& port : block.netlist.ports()) port_nodes.push_back(port.n1);
  const Index merged_drive = merged.new_node();
  merged.add_resistor(merged_drive, port_nodes[0], 150.0);
  for (Index w = 1; w < 4; ++w)
    merged.add_resistor(port_nodes[static_cast<size_t>(w)], 0, 1e4);
  for (Index w = 0; w < 4; ++w)
    merged.add_capacitor(port_nodes[static_cast<size_t>(4 + w)], 0, 20e-15);
  merged.add_capacitor(merged_drive, 0, 5e-15);
  merged.add_resistor(port_nodes[8], 0, 1e5);
  // Rebuild without the block's own ports, exposing only the drive port.
  const MnaSystem ref_sys = [&] {
    Netlist nl2;
    nl2.ensure_nodes(merged.node_count());
    for (const auto& r : merged.resistors()) nl2.add_resistor(r.n1, r.n2, r.resistance);
    for (const auto& c : merged.capacitors()) nl2.add_capacitor(c.n1, c.n2, c.capacitance);
    nl2.add_port(merged_drive, 0, "in");
    return build_mna(nl2, MnaForm::kRC);
  }();

  // --- Frequency domain comparison. ---
  std::printf("\n%-12s %-14s %-14s %-10s\n", "f [Hz]", "|Zin| full",
              "|Zin| stamped", "rel.err");
  for (double f : log_frequency_grid(1e7, 1e10, 10)) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const Complex zf = ac_z_matrix(ref_sys, s)(0, 0);
    const Complex zs = ac_z_matrix(stamped, s)(0, 0);
    std::printf("%-12.3e %-14.6e %-14.6e %-10.2e\n", f, std::abs(zf),
                std::abs(zs), std::abs(zs - zf) / std::abs(zf));
  }

  // --- Time domain comparison. ---
  TransientOptions topt;
  topt.dt = 2e-11;
  topt.t_end = 6e-9;
  std::vector<Waveform> drives{ramp_waveform(1e-3, 0.3e-9, 0.5e-9)};
  const auto full = simulate_ports_transient(ref_sys, drives, topt);
  const auto red = simulate_ports_transient(stamped, drives, topt);
  double err = 0.0, scale = 0.0;
  for (size_t k = 0; k < full.time.size(); ++k) {
    err = std::max(err, std::abs(full.outputs(static_cast<Index>(k), 0) -
                                 red.outputs(static_cast<Index>(k), 0)));
    scale = std::max(scale, std::abs(full.outputs(static_cast<Index>(k), 0)));
  }
  std::printf("\ntransient drive-node voltage: max deviation %.2e (%.3f%% of "
              "peak)\n", err, 100.0 * err / scale);
  return 0;
}
