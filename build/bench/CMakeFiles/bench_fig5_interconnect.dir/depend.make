# Empty dependencies file for bench_fig5_interconnect.
# This may be replaced when dependencies are built.
