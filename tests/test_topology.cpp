#include "circuit/topology.hpp"

#include <gtest/gtest.h>

#include "gen/peec.hpp"
#include "gen/random_circuit.hpp"

namespace sympvl {
namespace {

TEST(Topology, SingleComponentCircuit) {
  Netlist nl;
  nl.add_resistor(1, 2, 10.0);
  nl.add_resistor(2, 0, 10.0);
  nl.add_capacitor(1, 0, 1e-12);
  const auto rep = analyze_connectivity(nl);
  EXPECT_TRUE(rep.fully_connected);
  EXPECT_EQ(rep.component_count, 1);
}

TEST(Topology, DetectsDisconnectedIsland) {
  Netlist nl;
  nl.add_resistor(1, 0, 10.0);
  nl.add_resistor(2, 3, 10.0);  // island {2, 3}
  const auto rep = analyze_connectivity(nl);
  EXPECT_FALSE(rep.fully_connected);
  EXPECT_EQ(rep.component_count, 2);
  EXPECT_EQ(rep.component_of[2], rep.component_of[3]);
  EXPECT_NE(rep.component_of[0], rep.component_of[2]);
}

TEST(Topology, DcPathRcForm) {
  // Capacitors do not conduct at DC: node 2 is floating for the RC form.
  Netlist nl;
  nl.add_resistor(1, 0, 10.0);
  nl.add_capacitor(1, 2, 1e-12);
  nl.add_capacitor(2, 0, 1e-12);
  EXPECT_FALSE(has_dc_path_to_ground(nl, MnaForm::kRC));
  const auto floating = floating_nodes(nl, MnaForm::kRC);
  ASSERT_EQ(floating.size(), 1u);
  EXPECT_EQ(floating[0], 2);
}

TEST(Topology, DcPathThroughInductorCountsInGeneralForm) {
  Netlist nl;
  nl.add_inductor(1, 0, 1e-9);
  nl.add_capacitor(1, 0, 1e-12);
  EXPECT_TRUE(has_dc_path_to_ground(nl, MnaForm::kGeneral));
}

TEST(Topology, PeecHasNoDcPathMatchingThePaper) {
  // The LC PEEC circuit's inductors never touch the reference plane:
  // structurally singular G, the reason for eq. 26.
  const PeecCircuit peec = make_peec_circuit({.grid = 5});
  EXPECT_FALSE(has_dc_path_to_ground(peec.netlist, MnaForm::kLC));
  EXPECT_FALSE(netlist_stats(peec.netlist).g_structurally_singular_general ==
               false);  // general form is singular too (no R at all)
}

TEST(Topology, GroundedRandomCircuitsHaveDcPaths) {
  EXPECT_TRUE(has_dc_path_to_ground(
      random_rc({.nodes = 20, .ports = 1, .seed = 1}), MnaForm::kRC));
  EXPECT_TRUE(has_dc_path_to_ground(
      random_lc({.nodes = 20, .ports = 1, .seed = 2, .grounded = true}),
      MnaForm::kLC));
  EXPECT_FALSE(has_dc_path_to_ground(
      random_lc({.nodes = 20, .ports = 1, .seed = 3, .grounded = false}),
      MnaForm::kLC));
}

TEST(Topology, StatsAndDescribe) {
  Netlist nl;
  nl.add_resistor(1, 2, 10.0);
  nl.add_resistor(2, 0, 20.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_port(1, 0);
  const NetlistStats s = netlist_stats(nl);
  EXPECT_EQ(s.nodes, 2);
  EXPECT_EQ(s.resistors, 2);
  EXPECT_EQ(s.capacitors, 1);
  EXPECT_EQ(s.ports, 1);
  EXPECT_FALSE(s.g_structurally_singular_special);
  const std::string text = describe(nl);
  EXPECT_NE(text.find("2 nodes"), std::string::npos);
  EXPECT_NE(text.find("RC circuit"), std::string::npos);
}

TEST(Topology, DescribeFlagsSingularG) {
  const Netlist nl = random_lc({.nodes = 10, .ports = 1, .seed = 5,
                                .grounded = false});
  const std::string text = describe(nl);
  EXPECT_NE(text.find("eq. 26"), std::string::npos);
}

TEST(Topology, AutoFormMirrorsBuildMna) {
  // RC circuit: kAuto should use the resistor-only DC rule.
  Netlist nl;
  nl.add_resistor(1, 0, 10.0);
  nl.add_capacitor(1, 2, 1e-12);
  nl.add_capacitor(2, 0, 1e-12);
  EXPECT_FALSE(has_dc_path_to_ground(nl, MnaForm::kAuto));
}

}  // namespace
}  // namespace sympvl
