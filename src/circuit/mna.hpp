// Modified nodal analysis (MNA) assembly, Section 2 of the paper.
//
// Produces the symmetric pencil (G, C) and the port incidence matrix B of
//   Z(s) = s^prefactor · Bᵀ (G + f(s)·C)⁻¹ B,   f(s) = s or s²,
// in one of four forms:
//   * general RLC (eq. 3): unknowns x = [v_n; i_l], G/C symmetric indefinite;
//   * RC (Section 2.2): G = A_gᵀ𝒢A_g, C = A_cᵀ𝒞A_c, both PSD, f(s) = s;
//   * RL (eq. 7-8): G = A_lᵀℒ⁻¹A_l, C = A_gᵀ𝒢A_g, both PSD, Z = s·Ẑ(s);
//   * LC (eq. 9): G = A_lᵀℒ⁻¹A_l, C = A_cᵀ𝒞A_c, both PSD, Z = s·Ẑ(s²).
#pragma once

#include "circuit/netlist.hpp"
#include "linalg/dense.hpp"
#include "linalg/sparse.hpp"

namespace sympvl {

/// The variable in which the pencil G + f(s)C is written.
enum class SVariable {
  kS,         ///< f(s) = s
  kSSquared,  ///< f(s) = s² (LC circuits, eq. 9)
};

/// Which assembly to use.
enum class MnaForm {
  kAuto,     ///< pick the most specific of RC/RL/LC, else general
  kGeneral,  ///< always eq. (3) with inductor-current unknowns
  kRC,
  kRL,
  kLC,
};

/// Assembled MNA system describing the multi-port transfer function
///   Z(s) = s^prefactor · Bᵀ (G + f(s) C)⁻¹ B.
struct MnaSystem {
  SMat G;  ///< symmetric N×N
  SMat C;  ///< symmetric N×N
  Mat B;   ///< N×p port incidence

  SVariable variable = SVariable::kS;
  int s_prefactor = 0;  ///< 0 for RC/general, 1 for RL/LC eliminated forms
  bool definite = false;  ///< true when G and C are PSD by construction

  Index node_unknowns = 0;      ///< non-datum node voltages
  Index inductor_unknowns = 0;  ///< inductor currents (general form only)
  std::vector<std::string> port_names;

  Index size() const { return G.rows(); }
  Index port_count() const { return B.cols(); }

  /// f(s): maps the Laplace variable into the pencil variable.
  Complex map_s(Complex s) const {
    return variable == SVariable::kS ? s : s * s;
  }

  /// s^prefactor scaling applied to Ẑ to obtain the physical Z(s).
  Complex prefactor(Complex s) const {
    Complex f(1.0, 0.0);
    for (int k = 0; k < s_prefactor; ++k) f *= s;
    return f;
  }
};

/// Assembles the MNA system for `netlist` in the requested form.
/// Throws when a special form is requested for an incompatible circuit
/// (e.g. MnaForm::kRC with inductors present).
MnaSystem build_mna(const Netlist& netlist, MnaForm form = MnaForm::kAuto);

/// Dense inductance matrix ℒ (diagonal inductances + mutual couplings
/// M = k·√(L₁L₂)). Throws if ℒ is not positive definite.
Mat inductance_matrix(const Netlist& netlist);

/// Incidence matrix of the current sources (N×n_src, general-form unknown
/// ordering): column j is e(n1) − e(n2) for source j. Used as the transient
/// right-hand side B·I_t(t) of eq. (4).
Mat source_incidence(const Netlist& netlist);

}  // namespace sympvl
