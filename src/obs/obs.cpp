#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "linalg/simd.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/memstat.hpp"
#include "obs/prom_export.hpp"
#include "parallel/thread_pool.hpp"

// Build metadata injected by CMake onto this translation unit; the
// fallbacks keep non-CMake builds compiling.
#ifndef SYMPVL_BUILD_TYPE
#define SYMPVL_BUILD_TYPE "unknown"
#endif
#ifndef SYMPVL_CXX_FLAGS
#define SYMPVL_CXX_FLAGS "unknown"
#endif

namespace sympvl::obs {

namespace detail {
std::atomic<int> g_enabled{-1};
}  // namespace detail

std::int64_t now_us() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

namespace {

constexpr int kSegCap = 1024;        // events per segment
constexpr size_t kMaxSegments = 512;  // per-thread cap (memory backstop)

struct Segment {
  std::atomic<int> count{0};
  Event ev[kSegCap];
};

// Per-thread event buffer. The owning thread appends lock-free (slot
// store + release store of the segment count); the per-buffer mutex is
// taken only when a segment is added, when the lane is named, and by
// readers snapshotting the segment list.
struct ThreadBuffer {
  std::mutex m;  // guards `segments` and `name`
  std::vector<std::shared_ptr<Segment>> segments;
  std::string name;
  int tid = 0;
  // Writer-thread-only state:
  Segment* cur = nullptr;
  std::uint64_t epoch = 0;

  void push(const Event& e, std::uint64_t global_epoch,
            std::atomic<std::int64_t>& dropped) {
    if (epoch != global_epoch) {
      std::lock_guard<std::mutex> g(m);
      segments.clear();
      cur = nullptr;
      epoch = global_epoch;
    }
    if (cur == nullptr ||
        cur->count.load(std::memory_order_relaxed) == kSegCap) {
      std::lock_guard<std::mutex> g(m);
      if (segments.size() >= kMaxSegments) {
        dropped.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      segments.push_back(std::make_shared<Segment>());
      cur = segments.back().get();
    }
    const int n = cur->count.load(std::memory_order_relaxed);
    cur->ev[n] = e;
    cur->count.store(n + 1, std::memory_order_release);
  }
};

struct Global {
  std::mutex m;  // guards everything below
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::string trace_path;
  std::string stats_sink;
  std::string metrics_path;
  int next_tid = 0;

  std::atomic<std::uint64_t> epoch{1};
  std::atomic<std::int64_t> dropped{0};
};

Global& global() {
  static Global g;
  return g;
}

// Captured while the main thread runs this translation unit's static
// initializers, so the main lane is labeled correctly no matter which
// thread registers its buffer first.
const std::thread::id g_main_thread_id = std::this_thread::get_id();

ThreadBuffer& local_buffer() {
  // The registry holds shared ownership so events survive thread exit
  // (pool shutdown/resize) until the final flush.
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    if (std::this_thread::get_id() == g_main_thread_id) b->name = "main";
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.m);
    b->tid = g.next_tid++;
    g.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

}  // namespace

namespace detail {

bool init_enabled_slow() {
  static const int resolved = [] {
    Global& g = global();
    bool sink = false;
    {
      std::lock_guard<std::mutex> lock(g.m);
      if (const char* t = std::getenv("SYMPVL_TRACE"); t != nullptr && *t)
        g.trace_path = t;
      if (const char* s = std::getenv("SYMPVL_STATS"); s != nullptr && *s)
        g.stats_sink = s;
      if (const char* m = std::getenv("SYMPVL_METRICS"); m != nullptr && *m)
        g.metrics_path = m;
      sink = !g.trace_path.empty() || !g.stats_sink.empty() ||
             !g.metrics_path.empty();
    }
    if (sink) std::atexit([] { flush(); });
    g_enabled.store(sink ? 1 : 0, std::memory_order_release);
    return sink ? 1 : 0;
  }();
  (void)resolved;
  // A programmatic enable() may have raced/overridden the env default.
  return g_enabled.load(std::memory_order_relaxed) > 0;
}

void record(const Event& e) {
  // Completed spans feed the latency histograms first so a buffer-cap
  // drop never loses the timing sample.
  if (e.phase == 'X') record_span_duration(e.name, e.dur_us);
  Global& g = global();
  ThreadBuffer& buf = local_buffer();
  Event copy = e;
  copy.tid = buf.tid;
  buf.push(copy, g.epoch.load(std::memory_order_relaxed), g.dropped);
}

}  // namespace detail

void enable(bool on) {
  detail::init_enabled_slow();  // resolve sinks from the environment first
  detail::g_enabled.store(on ? 1 : 0, std::memory_order_release);
}

void set_trace_path(const std::string& path) {
  detail::init_enabled_slow();
  {
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.m);
    g.trace_path = path;
  }
  if (!path.empty())
    detail::g_enabled.store(1, std::memory_order_release);
}

void set_metrics_path(const std::string& path) {
  detail::init_enabled_slow();
  {
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.m);
    g.metrics_path = path;
  }
  if (!path.empty())
    detail::g_enabled.store(1, std::memory_order_release);
}

Counter& counter(const char* name) {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.m);
  auto& slot = g.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge(const char* name) {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.m);
  auto& slot = g.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

void set_thread_name(const std::string& name) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.m);
  buf.name = name;
}

namespace {

struct BufferSnapshot {
  int tid = 0;
  std::string name;
  std::vector<std::shared_ptr<Segment>> segments;
};

std::vector<BufferSnapshot> snapshot_buffers() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.m);
    buffers = g.buffers;
  }
  std::vector<BufferSnapshot> out;
  out.reserve(buffers.size());
  for (const auto& b : buffers) {
    BufferSnapshot s;
    std::lock_guard<std::mutex> lock(b->m);
    s.tid = b->tid;
    s.name = b->name;
    s.segments = b->segments;
    out.push_back(std::move(s));
  }
  return out;
}

void append_events(const BufferSnapshot& b, std::vector<Event>& out) {
  for (const auto& seg : b.segments) {
    const int n = seg->count.load(std::memory_order_acquire);
    for (int k = 0; k < n; ++k) out.push_back(seg->ev[k]);
  }
}

}  // namespace

std::vector<Event> snapshot_events() {
  std::vector<Event> out;
  for (const BufferSnapshot& b : snapshot_buffers()) append_events(b, out);
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::vector<std::pair<std::string, double>> snapshot_counters() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.m);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(g.counters.size());
  for (const auto& [name, c] : g.counters) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> snapshot_gauges() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.m);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(g.gauges.size());
  for (const auto& [name, v] : g.gauges) out.emplace_back(name, v->value());
  return out;
}

std::string stats_summary() {
  // Span rows come from the latency histograms (fed by every completed
  // span, never subject to the event-buffer cap); instants still come
  // from the event stream.
  std::vector<std::pair<std::string, HistogramBins>> spans;
  for (auto& [name, bins] : snapshot_histograms())
    if (!bins.empty()) spans.emplace_back(name, std::move(bins));
  std::map<std::string, std::int64_t> instants;
  for (const Event& e : snapshot_events())
    if (e.phase != 'X') ++instants[e.name];
  const auto counters = snapshot_counters();
  const auto gauges = snapshot_gauges();
  const auto byte_gauges = snapshot_byte_gauges();
  if (spans.empty() && instants.empty() && counters.empty() &&
      gauges.empty() && byte_gauges.empty())
    return {};

  std::string out = "== sympvl obs stats ==\n";
  char line[320];
  if (!spans.empty()) {
    std::snprintf(line, sizeof(line),
                  "%-28s %9s %11s %10s %10s %10s %10s %10s\n", "span", "count",
                  "total_ms", "mean_ms", "min_ms", "max_ms", "p50_ms",
                  "p99_ms");
    out += line;
    for (const auto& [name, bins] : spans) {
      const LatencyStats s = latency_stats(bins);
      std::snprintf(line, sizeof(line),
                    "%-28s %9lld %11.3f %10.4f %10.4f %10.3f %10.4f %10.3f\n",
                    name.c_str(), static_cast<long long>(s.count),
                    bins.sum * 1e3, s.mean * 1e3, s.min * 1e3, s.max * 1e3,
                    s.p50 * 1e3, s.p99 * 1e3);
      out += line;
    }
  }
  for (const auto& [name, n] : instants) {
    std::snprintf(line, sizeof(line), "instant %-28s %10lld\n", name.c_str(),
                  static_cast<long long>(n));
    out += line;
  }
  for (const auto& [name, v] : counters) {
    std::snprintf(line, sizeof(line), "counter %-28s %.17g\n", name.c_str(), v);
    out += line;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(line, sizeof(line), "gauge   %-28s %.17g\n", name.c_str(), v);
    out += line;
  }
  for (const ByteGaugeSnapshot& g : byte_gauges) {
    std::snprintf(line, sizeof(line), "bytes   %-28s %12lld (peak %lld)\n",
                  g.name.c_str(), static_cast<long long>(g.current),
                  static_cast<long long>(g.peak));
    out += line;
  }
  const std::int64_t drops = dropped_events();
  if (drops > 0) {
    std::snprintf(line, sizeof(line), "dropped_events %lld\n",
                  static_cast<long long>(drops));
    out += line;
  }
  return out;
}

namespace {

void write_args(std::ofstream& out, const Event& e) {
  out << ",\"args\":{";
  for (int k = 0; k < e.nargs; ++k) {
    if (k > 0) out << ",";
    out << json_string(e.args[k].key) << ":";
    if (e.args[k].str != nullptr)
      out << json_string(e.args[k].str);
    else
      out << json_number(e.args[k].num);
  }
  out << "}";
}

}  // namespace

void write_chrome_trace(const std::string& path) {
  const auto buffers = snapshot_buffers();
  const auto events = snapshot_events();
  std::ofstream out(path);
  require(out.good(), "obs: cannot open trace file '" + path + "'");
  out << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  for (const BufferSnapshot& b : buffers) {
    sep();
    const std::string name =
        b.name.empty() ? "thread-" + std::to_string(b.tid) : b.name;
    out << R"({"ph":"M","pid":1,"tid":)" << b.tid
        << R"(,"name":"thread_name","args":{"name":)" << json_string(name)
        << "}}";
  }
  for (const Event& e : events) {
    sep();
    out << R"({"ph":")" << e.phase << R"(","pid":1,"tid":)" << e.tid
        << ",\"name\":" << json_string(e.name) << ",\"ts\":" << e.ts_us;
    if (e.phase == 'X') out << ",\"dur\":" << e.dur_us;
    if (e.phase == 'i') out << R"(,"s":"t")";
    write_args(out, e);
    out << "}";
  }
  out << "\n]}\n";
  require(out.good(), "obs: failed writing trace file '" + path + "'");
}

void flush() {
  std::string trace_path, stats_sink, metrics_path;
  {
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.m);
    trace_path = g.trace_path;
    stats_sink = g.stats_sink;
    metrics_path = g.metrics_path;
  }
  if (!trace_path.empty()) write_chrome_trace(trace_path);
  if (!metrics_path.empty()) write_prometheus(metrics_path);
  if (!stats_sink.empty()) {
    const std::string summary = stats_summary();
    if (!summary.empty()) {
      if (stats_sink == "1" || stats_sink == "stderr") {
        std::fputs(summary.c_str(), stderr);
      } else {
        std::ofstream out(stats_sink, std::ios::app);
        out << summary;
      }
    }
  }
}

void reset() {
  Global& g = global();
  // Bump the epoch first so writer threads discard their stale segment
  // pointers before reuse, then clear eagerly so snapshots are empty even
  // for threads that never record again. Contract: no instrumented code
  // may be running concurrently.
  g.epoch.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(g.m);
    buffers = g.buffers;
    for (auto& [name, c] : g.counters) c->reset();
  }
  for (const auto& b : buffers) {
    std::lock_guard<std::mutex> lock(b->m);
    b->segments.clear();
  }
  g.dropped.store(0, std::memory_order_relaxed);
  detail::reset_histograms();
  detail::reset_byte_gauge_peaks();
}

std::int64_t dropped_events() {
  return global().dropped.load(std::memory_order_relaxed);
}

namespace detail {

std::string build_compiler() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

const char* build_type() { return SYMPVL_BUILD_TYPE; }
const char* cxx_flags() { return SYMPVL_CXX_FLAGS; }

}  // namespace detail

std::string run_metadata_json(const std::string& indent) {
  const std::string compiler = detail::build_compiler();
  const char* env_threads = std::getenv("SYMPVL_NUM_THREADS");
  std::string out = "{\n";
  auto field = [&](const std::string& key, const std::string& value,
                   bool last = false) {
    out += indent + "  " + json_string(key) + ": " + value +
           (last ? "\n" : ",\n");
  };
  field("hardware_concurrency",
        std::to_string(std::thread::hardware_concurrency()));
  field("sympvl_num_threads_env",
        env_threads != nullptr ? json_string(env_threads) : "null");
  field("resolved_threads", std::to_string(num_threads()));
  field("simd_level",
        json_string(simd_level_name(resolve_simd_level(SimdLevel::kAuto))));
  field("compiler", json_string(compiler));
  field("cxx_flags", json_string(SYMPVL_CXX_FLAGS));
  field("build_type", json_string(SYMPVL_BUILD_TYPE), /*last=*/true);
  out += indent + "}";
  return out;
}

void json_emit_with_meta(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& kv) {
  json_emit_with_meta(path, kv, {});
}

void json_emit_with_meta(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& kv,
    const std::vector<std::pair<std::string, std::vector<double>>>& series) {
  std::ofstream out(path);
  out << "{\n  \"meta\": " << run_metadata_json("  ");
  const size_t entries = kv.size() + series.size();
  out << (entries == 0 ? "\n" : ",\n");
  size_t emitted = 0;
  for (const auto& [key, value] : kv)
    out << "  " << json_string(key) << ": " << json_number(value)
        << (++emitted < entries ? "," : "") << "\n";
  for (const auto& [key, values] : series) {
    out << "  " << json_string(key) << ": [";
    for (size_t i = 0; i < values.size(); ++i)
      out << (i ? ", " : "") << json_number(values[i]);
    out << "]" << (++emitted < entries ? "," : "") << "\n";
  }
  out << "}\n";
}

}  // namespace sympvl::obs
