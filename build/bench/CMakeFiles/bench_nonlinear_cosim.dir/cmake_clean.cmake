file(REMOVE_RECURSE
  "CMakeFiles/bench_nonlinear_cosim.dir/bench_nonlinear_cosim.cpp.o"
  "CMakeFiles/bench_nonlinear_cosim.dir/bench_nonlinear_cosim.cpp.o.d"
  "bench_nonlinear_cosim"
  "bench_nonlinear_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nonlinear_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
