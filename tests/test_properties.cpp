// Property-based parameterized sweeps: the paper's theorems must hold on
// every randomly generated circuit of the right class, at every order.
//
//  * moment matching q(n) ≥ 2⌊n/p⌋ (Section 3.2),
//  * stability of RC/RL/LC reductions at any order (Section 5.1),
//  * passivity of RC/RL/LC reductions at any order (Section 5.2),
//  * reciprocity/symmetry of Zₙ,
//  * synthesized circuits realize Zₙ exactly.
#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "mor/moments.hpp"
#include "mor/passivity.hpp"
#include "mor/sympvl.hpp"
#include "mor/synthesis.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

enum class Kind { kRC, kRL, kLC, kRLC };

std::string kind_name(Kind k) {
  switch (k) {
    case Kind::kRC: return "RC";
    case Kind::kRL: return "RL";
    case Kind::kLC: return "LC";
    default: return "RLC";
  }
}

Netlist make_circuit(Kind kind, Index nodes, Index ports, unsigned seed) {
  RandomCircuitOptions o;
  o.nodes = nodes;
  o.ports = ports;
  o.seed = seed;
  switch (kind) {
    case Kind::kRC: return random_rc(o);
    case Kind::kRL: return random_rl(o);
    case Kind::kLC: return random_lc(o);
    default: return random_rlc(o);
  }
}

struct Case {
  Kind kind;
  Index ports;
  Index order;
  unsigned seed;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return kind_name(info.param.kind) + "_p" + std::to_string(info.param.ports) +
         "_n" + std::to_string(info.param.order) + "_s" +
         std::to_string(info.param.seed);
}

// ---- Stability & passivity sweep over the definite classes. ----

class DefiniteClassSweep : public testing::TestWithParam<Case> {};

TEST_P(DefiniteClassSweep, ReducedModelStableAtEveryOrder) {
  const Case c = GetParam();
  const Netlist nl = make_circuit(c.kind, 24, c.ports, c.seed);
  const MnaSystem sys = build_mna(nl);
  SympvlOptions opt;
  opt.order = c.order;
  const ReducedModel rom = sympvl_reduce(sys, opt);
  EXPECT_TRUE(rom.is_stable(1e-7 * (1.0 + std::abs(rom.shift()))))
      << kind_name(c.kind) << " order " << c.order << " seed " << c.seed;
}

TEST_P(DefiniteClassSweep, ReducedModelPassiveAtEveryOrder) {
  const Case c = GetParam();
  if (c.kind == Kind::kLC) {
    // LC passivity involves the s ↦ s² map; sampling Re(Z) on jω of a
    // lossless network yields 0 up to rounding — covered by the stability
    // sweep plus the imaginary-axis pole test below.
    GTEST_SKIP();
  }
  const Netlist nl = make_circuit(c.kind, 24, c.ports, c.seed);
  SympvlOptions opt;
  opt.order = c.order;
  const ReducedModel rom = sympvl_reduce(build_mna(nl), opt);
  const auto report = check_passivity(rom, log_frequency_grid(1e5, 1e11, 9));
  EXPECT_TRUE(report.stable) << kind_name(c.kind) << " seed " << c.seed;
  EXPECT_TRUE(report.passive)
      << kind_name(c.kind) << " order " << c.order << " seed " << c.seed
      << " min_eig " << report.min_hermitian_eig;
}

TEST_P(DefiniteClassSweep, LcPolesOnImaginaryAxis) {
  const Case c = GetParam();
  if (c.kind != Kind::kLC) GTEST_SKIP();
  const Netlist nl = make_circuit(c.kind, 24, c.ports, c.seed);
  SympvlOptions opt;
  opt.order = c.order;
  const ReducedModel rom = sympvl_reduce(build_mna(nl), opt);
  for (const Complex& pole : rom.poles())
    EXPECT_NEAR(pole.real(), 0.0, 1e-6 * (1.0 + std::abs(pole)))
        << "seed " << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, DefiniteClassSweep,
    testing::Values(
        Case{Kind::kRC, 1, 1, 101}, Case{Kind::kRC, 1, 3, 102},
        Case{Kind::kRC, 1, 7, 103}, Case{Kind::kRC, 2, 4, 104},
        Case{Kind::kRC, 2, 9, 105}, Case{Kind::kRC, 3, 6, 106},
        Case{Kind::kRC, 3, 12, 107},
        Case{Kind::kRL, 1, 2, 201}, Case{Kind::kRL, 1, 6, 202},
        Case{Kind::kRL, 2, 8, 203}, Case{Kind::kRL, 2, 5, 204},
        Case{Kind::kLC, 1, 4, 301}, Case{Kind::kLC, 1, 8, 302},
        Case{Kind::kLC, 2, 6, 303}, Case{Kind::kLC, 2, 10, 304}),
    case_name);

// ---- Moment matching sweep over all classes including indefinite RLC. --

class MomentSweep : public testing::TestWithParam<Case> {};

TEST_P(MomentSweep, MatchesTwoFloorNOverPMoments) {
  const Case c = GetParam();
  const Netlist nl = make_circuit(c.kind, 26, c.ports, c.seed);
  const MnaSystem sys = build_mna(nl);
  SympvlOptions opt;
  opt.order = c.order;
  SympvlReport report;
  const ReducedModel rom = sympvl_reduce(sys, opt, &report);
  const Index q = 2 * (rom.order() / c.ports);
  if (q == 0) GTEST_SKIP();
  const auto exact = exact_moments(sys, q, report.s0_used);
  // Moment magnitudes can span decades; compare each against a running
  // scale so rounding in small high-order moments doesn't flake.
  for (Index k = 0; k < q; ++k) {
    const Mat mu = rom.moment(k);
    const double scale = exact[static_cast<size_t>(k)].max_abs();
    EXPECT_NEAR((mu - exact[static_cast<size_t>(k)]).max_abs(), 0.0,
                2e-5 * scale)
        << kind_name(c.kind) << " moment " << k << " seed " << c.seed;
  }
}

TEST_P(MomentSweep, ReducedZIsSymmetric) {
  const Case c = GetParam();
  const Netlist nl = make_circuit(c.kind, 26, c.ports, c.seed);
  SympvlOptions opt;
  opt.order = c.order;
  const ReducedModel rom = sympvl_reduce(build_mna(nl), opt);
  const CMat z = rom.eval(Complex(0.0, 2.0 * M_PI * 1e8));
  double asym = 0.0;
  for (Index i = 0; i < z.rows(); ++i)
    for (Index j = i + 1; j < z.cols(); ++j)
      asym = std::max(asym, std::abs(z(i, j) - z(j, i)));
  EXPECT_LT(asym, 1e-8 * (1.0 + z.max_abs())) << kind_name(c.kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, MomentSweep,
    testing::Values(
        Case{Kind::kRC, 1, 6, 111}, Case{Kind::kRC, 2, 8, 112},
        Case{Kind::kRC, 3, 9, 113},
        Case{Kind::kRL, 1, 6, 211}, Case{Kind::kRL, 2, 8, 212},
        Case{Kind::kLC, 1, 6, 311}, Case{Kind::kLC, 2, 8, 312},
        Case{Kind::kRLC, 1, 6, 411}, Case{Kind::kRLC, 2, 8, 412},
        Case{Kind::kRLC, 3, 9, 413}),
    case_name);

// ---- Synthesis round-trip sweep (RC only). ----

class SynthesisSweep : public testing::TestWithParam<Case> {};

TEST_P(SynthesisSweep, CongruenceRealizationExact) {
  const Case c = GetParam();
  const Netlist nl = make_circuit(Kind::kRC, 28, c.ports, c.seed);
  SympvlOptions opt;
  opt.order = c.order;
  const ReducedModel rom = sympvl_reduce(build_mna(nl), opt);
  const SynthesizedCircuit syn = synthesize_congruence_rc(rom);
  const MnaSystem syn_sys = build_mna(syn.netlist, MnaForm::kRC);
  for (double f : {1e7, 1e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const CMat za = ac_z_matrix(syn_sys, s);
    const CMat zb = rom.eval(s);
    EXPECT_LT((za - zb).max_abs() / (zb.max_abs() + 1e-300), 1e-7)
        << "seed " << c.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rc, SynthesisSweep,
    testing::Values(Case{Kind::kRC, 1, 5, 121}, Case{Kind::kRC, 1, 9, 122},
                    Case{Kind::kRC, 2, 8, 123}, Case{Kind::kRC, 2, 12, 124},
                    Case{Kind::kRC, 3, 9, 125}, Case{Kind::kRC, 4, 12, 126}),
    case_name);

// ---- Serialization is lossless for every class. ----

class SerializationSweep : public testing::TestWithParam<Case> {};

TEST_P(SerializationSweep, TextRoundTripPreservesEvaluation) {
  const Case c = GetParam();
  const Netlist nl = make_circuit(c.kind, 22, c.ports, c.seed);
  SympvlOptions opt;
  opt.order = c.order;
  const ReducedModel rom = sympvl_reduce(build_mna(nl), opt);
  const ReducedModel back = ReducedModel::from_text(rom.to_text());
  for (double f : {1e7, 1e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const CMat a = rom.eval(s);
    const CMat b = back.eval(s);
    EXPECT_DOUBLE_EQ((real_part(a) - real_part(b)).max_abs(), 0.0)
        << kind_name(c.kind);
    EXPECT_DOUBLE_EQ((imag_part(a) - imag_part(b)).max_abs(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, SerializationSweep,
    testing::Values(Case{Kind::kRC, 2, 8, 131}, Case{Kind::kRL, 1, 6, 231},
                    Case{Kind::kLC, 2, 8, 331}, Case{Kind::kRLC, 2, 8, 431}),
    case_name);

// ---- Incremental sessions equal one-shot runs for every class. ----

class SessionSweep : public testing::TestWithParam<Case> {};

TEST_P(SessionSweep, ExtendEqualsFreshRun) {
  const Case c = GetParam();
  const Netlist nl = make_circuit(c.kind, 24, c.ports, c.seed);
  const MnaSystem sys = build_mna(nl);
  SympvlOptions opt;
  opt.order = c.order;
  SympvlSession session(sys, opt);
  const ReducedModel extended = session.extend(4);
  SympvlOptions opt2;
  opt2.order = c.order + 4;
  const ReducedModel fresh = sympvl_reduce(sys, opt2);
  ASSERT_EQ(extended.order(), fresh.order()) << kind_name(c.kind);
  EXPECT_NEAR((extended.t() - fresh.t()).max_abs(), 0.0,
              1e-12 * (1.0 + fresh.t().max_abs()));
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, SessionSweep,
    testing::Values(Case{Kind::kRC, 1, 6, 141}, Case{Kind::kRC, 3, 9, 142},
                    Case{Kind::kRL, 2, 6, 241}, Case{Kind::kLC, 1, 6, 341},
                    Case{Kind::kRLC, 2, 6, 441}),
    case_name);

// ---- Convergence property: error is non-increasing in order (weakly). --

class ConvergenceSweep : public testing::TestWithParam<Kind> {};

TEST_P(ConvergenceSweep, HigherOrderNeverMuchWorse) {
  const Kind kind = GetParam();
  const Netlist nl = make_circuit(kind, 30, 2, 999);
  const MnaSystem sys = build_mna(nl);
  const Vec freqs = log_frequency_grid(1e6, 1e10, 7);
  const auto exact = ac_sweep(sys, freqs);
  double prev = 1e300;
  for (Index order : {4, 8, 16}) {
    SympvlOptions opt;
    opt.order = order;
    const ReducedModel rom = sympvl_reduce(sys, opt);
    double err = 0.0;
    for (size_t k = 0; k < freqs.size(); ++k) {
      const CMat z = rom.eval(Complex(0.0, 2.0 * M_PI * freqs[k]));
      err = std::max(err, (z - exact[k]).max_abs() /
                              (exact[k].max_abs() + 1e-300));
    }
    EXPECT_LT(err, std::max(prev * 3.0, 1e-9)) << "order " << order;
    prev = err;
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, ConvergenceSweep,
                         testing::Values(Kind::kRC, Kind::kRL, Kind::kLC,
                                         Kind::kRLC),
                         [](const testing::TestParamInfo<Kind>& info) {
                           return kind_name(info.param);
                         });

}  // namespace
}  // namespace sympvl
