#include "circuit/netlist.hpp"

#include <gtest/gtest.h>

namespace sympvl {
namespace {

TEST(Netlist, BasicConstruction) {
  Netlist nl;
  EXPECT_EQ(nl.node_count(), 1);  // datum
  nl.add_resistor(1, 0, 100.0);
  nl.add_capacitor(1, 2, 1e-12);
  EXPECT_EQ(nl.node_count(), 3);
  EXPECT_EQ(nl.element_count(), 2);
}

TEST(Netlist, AutoNames) {
  Netlist nl;
  nl.add_resistor(1, 0, 1.0);
  nl.add_resistor(2, 0, 1.0);
  EXPECT_EQ(nl.resistors()[0].name, "R1");
  EXPECT_EQ(nl.resistors()[1].name, "R2");
}

TEST(Netlist, RejectsNonPositiveElements) {
  Netlist nl;
  EXPECT_THROW(nl.add_resistor(1, 0, 0.0), Error);
  EXPECT_THROW(nl.add_resistor(1, 0, -5.0), Error);
  EXPECT_THROW(nl.add_capacitor(1, 0, -1e-12), Error);
  EXPECT_THROW(nl.add_inductor(1, 0, 0.0), Error);
}

TEST(Netlist, AllowNegativePermitsSynthesisElements) {
  Netlist nl;
  nl.set_allow_negative(true);
  nl.add_resistor(1, 0, -5.0);
  nl.add_capacitor(1, 2, -1e-12);
  EXPECT_NO_THROW(nl.validate());
  // Zero still rejected.
  EXPECT_THROW(nl.add_resistor(1, 0, 0.0), Error);
}

TEST(Netlist, RejectsSelfLoop) {
  Netlist nl;
  EXPECT_THROW(nl.add_resistor(1, 1, 10.0), Error);
  EXPECT_THROW(nl.add_port(0, 0), Error);
}

TEST(Netlist, MutualValidation) {
  Netlist nl;
  const Index l1 = nl.add_inductor(1, 0, 1e-9);
  const Index l2 = nl.add_inductor(2, 0, 1e-9);
  EXPECT_THROW(nl.add_mutual(l1, l1, 0.5), Error);
  EXPECT_THROW(nl.add_mutual(l1, l2, 1.0), Error);
  EXPECT_THROW(nl.add_mutual(l1, 5, 0.5), Error);
  EXPECT_NO_THROW(nl.add_mutual(l1, l2, 0.5));
}

TEST(Netlist, CircuitClassification) {
  Netlist rc;
  rc.add_resistor(1, 0, 1.0);
  rc.add_capacitor(1, 0, 1e-12);
  EXPECT_TRUE(rc.is_rc());
  EXPECT_FALSE(rc.is_lc());

  Netlist lc;
  lc.add_inductor(1, 2, 1e-9);
  lc.add_capacitor(2, 0, 1e-12);
  EXPECT_TRUE(lc.is_lc());
  EXPECT_FALSE(lc.is_rc());

  Netlist rl;
  rl.add_resistor(1, 0, 1.0);
  rl.add_inductor(1, 2, 1e-9);
  EXPECT_TRUE(rl.is_rl());

  Netlist rlc;
  rlc.add_resistor(1, 0, 1.0);
  rlc.add_capacitor(1, 0, 1e-12);
  rlc.add_inductor(1, 2, 1e-9);
  EXPECT_FALSE(rlc.is_rc());
  EXPECT_FALSE(rlc.is_rl());
  EXPECT_FALSE(rlc.is_lc());
}

TEST(Netlist, FindPort) {
  Netlist nl;
  nl.add_port(1, 0, "in");
  nl.add_port(2, 0, "out");
  ASSERT_TRUE(nl.find_port("out").has_value());
  EXPECT_EQ(*nl.find_port("out"), 1);
  EXPECT_FALSE(nl.find_port("missing").has_value());
}

TEST(Netlist, NewNodeAllocation) {
  Netlist nl;
  const Index a = nl.new_node();
  const Index b = nl.new_node();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(nl.node_count(), 3);
}

TEST(Netlist, ValidatePasses) {
  Netlist nl;
  nl.add_resistor(1, 0, 50.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_port(1, 0);
  EXPECT_NO_THROW(nl.validate());
}

}  // namespace
}  // namespace sympvl
