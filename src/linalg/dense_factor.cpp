#include "linalg/dense_factor.hpp"

#include <cmath>

namespace sympvl {

// ---- DenseLU ---------------------------------------------------------------

template <typename T>
DenseLU<T>::DenseLU(const Matrix<T>& a) : lu_(a) {
  require(a.is_square(), "DenseLU: matrix not square");
  const Index n = a.rows();
  perm_.resize(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) perm_[static_cast<size_t>(i)] = i;

  for (Index k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude entry in column k.
    Index piv = k;
    auto best = ScalarTraits<T>::abs(lu_(k, k));
    for (Index i = k + 1; i < n; ++i) {
      const auto v = ScalarTraits<T>::abs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best == typename ScalarTraits<T>::Real(0)) {
      singular_ = true;
      continue;
    }
    if (piv != k) {
      for (Index j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[static_cast<size_t>(k)], perm_[static_cast<size_t>(piv)]);
    }
    const T pivot = lu_(k, k);
    for (Index i = k + 1; i < n; ++i) {
      const T lik = lu_(i, k) / pivot;
      lu_(i, k) = lik;
      if (lik == T(0)) continue;
      for (Index j = k + 1; j < n; ++j) lu_(i, j) -= lik * lu_(k, j);
    }
  }
}

template <typename T>
std::vector<T> DenseLU<T>::solve(const std::vector<T>& b) const {
  require(!singular_, "DenseLU::solve: matrix is singular");
  const Index n = lu_.rows();
  require(static_cast<Index>(b.size()) == n, "DenseLU::solve: size mismatch");
  std::vector<T> x(static_cast<size_t>(n));
  // Apply the row permutation, then forward substitution with unit L.
  for (Index i = 0; i < n; ++i)
    x[static_cast<size_t>(i)] = b[static_cast<size_t>(perm_[static_cast<size_t>(i)])];
  for (Index i = 0; i < n; ++i) {
    T acc = x[static_cast<size_t>(i)];
    for (Index j = 0; j < i; ++j) acc -= lu_(i, j) * x[static_cast<size_t>(j)];
    x[static_cast<size_t>(i)] = acc;
  }
  // Backward substitution with U.
  for (Index i = n - 1; i >= 0; --i) {
    T acc = x[static_cast<size_t>(i)];
    for (Index j = i + 1; j < n; ++j) acc -= lu_(i, j) * x[static_cast<size_t>(j)];
    x[static_cast<size_t>(i)] = acc / lu_(i, i);
  }
  return x;
}

template <typename T>
Matrix<T> DenseLU<T>::solve(const Matrix<T>& b) const {
  require(b.rows() == lu_.rows(), "DenseLU::solve: row mismatch");
  Matrix<T> x(b.rows(), b.cols());
  for (Index j = 0; j < b.cols(); ++j) x.set_col(j, solve(b.col(j)));
  return x;
}

template class DenseLU<double>;
template class DenseLU<Complex>;

// ---- DenseCholesky ---------------------------------------------------------

DenseCholesky::DenseCholesky(const Mat& a) : l_(a.rows(), a.cols()) {
  require(a.is_square(), "DenseCholesky: matrix not square");
  const Index n = a.rows();
  for (Index j = 0; j < n; ++j) {
    double d = a(j, j);
    for (Index k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    require(d > 0.0, "DenseCholesky: matrix not positive definite");
    l_(j, j) = std::sqrt(d);
    for (Index i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (Index k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / l_(j, j);
    }
  }
}

Vec DenseCholesky::solve_l(const Vec& b) const {
  const Index n = l_.rows();
  require(static_cast<Index>(b.size()) == n, "solve_l: size mismatch");
  Vec y(b);
  for (Index i = 0; i < n; ++i) {
    double acc = y[static_cast<size_t>(i)];
    for (Index j = 0; j < i; ++j) acc -= l_(i, j) * y[static_cast<size_t>(j)];
    y[static_cast<size_t>(i)] = acc / l_(i, i);
  }
  return y;
}

Vec DenseCholesky::solve_lt(const Vec& b) const {
  const Index n = l_.rows();
  require(static_cast<Index>(b.size()) == n, "solve_lt: size mismatch");
  Vec x(b);
  for (Index i = n - 1; i >= 0; --i) {
    double acc = x[static_cast<size_t>(i)];
    for (Index j = i + 1; j < n; ++j) acc -= l_(j, i) * x[static_cast<size_t>(j)];
    x[static_cast<size_t>(i)] = acc / l_(i, i);
  }
  return x;
}

Vec DenseCholesky::solve(const Vec& b) const { return solve_lt(solve_l(b)); }

Mat DenseCholesky::solve(const Mat& b) const {
  Mat x(b.rows(), b.cols());
  for (Index j = 0; j < b.cols(); ++j) x.set_col(j, solve(b.col(j)));
  return x;
}

// ---- DenseQR ---------------------------------------------------------------

DenseQR::DenseQR(const Mat& a) : qr_(a), m_(a.rows()), n_(a.cols()) {
  require(m_ >= n_, "DenseQR: requires rows >= cols");
  beta_.assign(static_cast<size_t>(n_), 0.0);
  for (Index k = 0; k < n_; ++k) {
    // Householder vector for column k, rows k..m-1.
    double xnorm = 0.0;
    for (Index i = k; i < m_; ++i) xnorm += qr_(i, k) * qr_(i, k);
    xnorm = std::sqrt(xnorm);
    if (xnorm == 0.0) continue;
    const double alpha = qr_(k, k) >= 0.0 ? -xnorm : xnorm;
    // v = x - alpha e1, normalized so v_k = 1.
    const double vk = qr_(k, k) - alpha;
    if (vk == 0.0) continue;
    for (Index i = k + 1; i < m_; ++i) qr_(i, k) /= vk;
    beta_[static_cast<size_t>(k)] = -vk / alpha;
    qr_(k, k) = alpha;
    // Apply the reflector H = I - beta v vᵀ to the remaining columns.
    const double beta = beta_[static_cast<size_t>(k)];
    for (Index j = k + 1; j < n_; ++j) {
      double s = qr_(k, j);
      for (Index i = k + 1; i < m_; ++i) s += qr_(i, k) * qr_(i, j);
      s *= beta;
      qr_(k, j) -= s;
      for (Index i = k + 1; i < m_; ++i) qr_(i, j) -= qr_(i, k) * s;
    }
  }
}

Mat DenseQR::q_thin() const {
  // Accumulate Q by applying the reflectors to the first n columns of I.
  Mat q(m_, n_);
  for (Index j = 0; j < n_; ++j) q(j, j) = 1.0;
  for (Index k = n_ - 1; k >= 0; --k) {
    const double beta = beta_[static_cast<size_t>(k)];
    if (beta == 0.0) continue;
    for (Index j = 0; j < n_; ++j) {
      double s = q(k, j);
      for (Index i = k + 1; i < m_; ++i) s += qr_(i, k) * q(i, j);
      s *= beta;
      q(k, j) -= s;
      for (Index i = k + 1; i < m_; ++i) q(i, j) -= qr_(i, k) * s;
    }
  }
  return q;
}

Mat DenseQR::q_full() const {
  Mat q = Mat::identity(m_);
  for (Index k = n_ - 1; k >= 0; --k) {
    const double beta = beta_[static_cast<size_t>(k)];
    if (beta == 0.0) continue;
    for (Index j = 0; j < m_; ++j) {
      double s = q(k, j);
      for (Index i = k + 1; i < m_; ++i) s += qr_(i, k) * q(i, j);
      s *= beta;
      q(k, j) -= s;
      for (Index i = k + 1; i < m_; ++i) q(i, j) -= qr_(i, k) * s;
    }
  }
  return q;
}

Mat DenseQR::r() const {
  Mat r(n_, n_);
  for (Index i = 0; i < n_; ++i)
    for (Index j = i; j < n_; ++j) r(i, j) = qr_(i, j);
  return r;
}

Index DenseQR::rank(double tol) const {
  double dmax = 0.0;
  for (Index i = 0; i < n_; ++i) dmax = std::max(dmax, std::abs(qr_(i, i)));
  if (dmax == 0.0) return 0;
  Index r = 0;
  for (Index i = 0; i < n_; ++i)
    if (std::abs(qr_(i, i)) > tol * dmax) ++r;
  return r;
}

Vec DenseQR::solve(const Vec& b) const {
  require(static_cast<Index>(b.size()) == m_, "DenseQR::solve: size mismatch");
  Vec y(b);
  // y = Qᵀ b via the stored reflectors.
  for (Index k = 0; k < n_; ++k) {
    const double beta = beta_[static_cast<size_t>(k)];
    if (beta == 0.0) continue;
    double s = y[static_cast<size_t>(k)];
    for (Index i = k + 1; i < m_; ++i) s += qr_(i, k) * y[static_cast<size_t>(i)];
    s *= beta;
    y[static_cast<size_t>(k)] -= s;
    for (Index i = k + 1; i < m_; ++i) y[static_cast<size_t>(i)] -= qr_(i, k) * s;
  }
  // Back-substitute R x = y[0..n).
  Vec x(static_cast<size_t>(n_));
  for (Index i = n_ - 1; i >= 0; --i) {
    double acc = y[static_cast<size_t>(i)];
    for (Index j = i + 1; j < n_; ++j) acc -= qr_(i, j) * x[static_cast<size_t>(j)];
    require(qr_(i, i) != 0.0, "DenseQR::solve: rank deficient");
    x[static_cast<size_t>(i)] = acc / qr_(i, i);
  }
  return x;
}

// ---- BunchKaufman ----------------------------------------------------------

namespace {
// Threshold from Bunch & Kaufman (1977) bounding element growth.
const double kBkAlpha = (1.0 + std::sqrt(17.0)) / 8.0;

// Eigendecomposition of a symmetric 2x2 [[a, b], [b, c]] = W diag(l1,l2) Wᵀ.
void eig2x2(double a, double b, double c, double& l1, double& l2, double w[4]) {
  if (b == 0.0) {
    l1 = a;
    l2 = c;
    w[0] = 1.0; w[1] = 0.0; w[2] = 0.0; w[3] = 1.0;
    return;
  }
  const double tr = a + c;
  const double diff = a - c;
  const double rt = std::hypot(diff, 2.0 * b);
  l1 = 0.5 * (tr + rt);
  l2 = 0.5 * (tr - rt);
  // Eigenvector for l1: (b, l1 - a) or (l1 - c, b), whichever is better
  // conditioned.
  double vx, vy;
  if (std::abs(l1 - a) > std::abs(l1 - c)) {
    vx = b;
    vy = l1 - a;
  } else {
    vx = l1 - c;
    vy = b;
  }
  const double nv = std::hypot(vx, vy);
  vx /= nv;
  vy /= nv;
  w[0] = vx; w[1] = -vy;
  w[2] = vy; w[3] = vx;
}
}  // namespace

BunchKaufman::BunchKaufman(const Mat& a) : ld_(a), n_(a.rows()) {
  require(a.is_square(), "BunchKaufman: matrix not square");
  require(a.asymmetry() <= 1e-10 * (1.0 + a.max_abs()),
          "BunchKaufman: matrix not symmetric");
  perm_.assign(static_cast<size_t>(n_), 0);

  Index k = 0;
  while (k < n_) {
    const double absakk = std::abs(ld_(k, k));
    // Largest off-diagonal magnitude in column k below the diagonal.
    Index imax = k;
    double colmax = 0.0;
    for (Index i = k + 1; i < n_; ++i) {
      const double v = std::abs(ld_(i, k));
      if (v > colmax) {
        colmax = v;
        imax = i;
      }
    }

    int bsize = 1;
    Index kp = k;  // pivot row to swap with (k for 1x1, or with k+1 for 2x2)
    if (std::max(absakk, colmax) == 0.0) {
      // Zero column: 1x1 zero pivot (recorded; solve() will reject).
      kp = k;
    } else if (absakk >= kBkAlpha * colmax) {
      kp = k;  // 1x1 pivot, no interchange
    } else {
      // Largest off-diagonal magnitude in row imax of the trailing block.
      double rowmax = 0.0;
      for (Index j = k; j < n_; ++j) {
        if (j == imax) continue;
        rowmax = std::max(rowmax, std::abs(ld_(imax, j)));
      }
      if (absakk * rowmax >= kBkAlpha * colmax * colmax) {
        kp = k;  // 1x1 pivot, no interchange
      } else if (std::abs(ld_(imax, imax)) >= kBkAlpha * rowmax) {
        kp = imax;  // 1x1 pivot, interchange k <-> imax
      } else {
        bsize = 2;  // 2x2 pivot, interchange k+1 <-> imax
        kp = imax;
      }
    }

    // Apply the symmetric interchange on the full working matrix.
    const Index swap_pos = (bsize == 1) ? k : k + 1;
    if (kp != swap_pos) {
      for (Index j = 0; j < n_; ++j) std::swap(ld_(swap_pos, j), ld_(kp, j));
      for (Index i = 0; i < n_; ++i) std::swap(ld_(i, swap_pos), ld_(i, kp));
    }
    perm_[static_cast<size_t>(k)] = kp;
    blocks_.push_back(bsize);

    if (bsize == 1) {
      const double d = ld_(k, k);
      if (d != 0.0) {
        for (Index i = k + 1; i < n_; ++i) {
          const double lik = ld_(i, k) / d;
          for (Index j = k + 1; j <= i; ++j) {
            ld_(i, j) -= lik * ld_(j, k);
            ld_(j, i) = ld_(i, j);
          }
        }
        for (Index i = k + 1; i < n_; ++i) ld_(i, k) /= d;
        for (Index i = k + 1; i < n_; ++i) ld_(k, i) = ld_(i, k);
      }
      k += 1;
    } else {
      perm_[static_cast<size_t>(k + 1)] = kp;
      // 2x2 block D = [[d11, d21], [d21, d22]].
      const double d11 = ld_(k, k);
      const double d21 = ld_(k + 1, k);
      const double d22 = ld_(k + 1, k + 1);
      const double det = d11 * d22 - d21 * d21;
      require(det != 0.0, "BunchKaufman: singular 2x2 pivot");
      const double i11 = d22 / det, i22 = d11 / det, i21 = -d21 / det;
      // Update the trailing block first using the raw column values; only
      // then overwrite columns k, k+1 with the L entries.
      for (Index i = k + 2; i < n_; ++i) {
        const double a1 = ld_(i, k), a2 = ld_(i, k + 1);
        const double l1 = a1 * i11 + a2 * i21;
        const double l2 = a1 * i21 + a2 * i22;
        for (Index j = k + 2; j <= i; ++j) {
          ld_(i, j) -= l1 * ld_(j, k) + l2 * ld_(j, k + 1);
          ld_(j, i) = ld_(i, j);
        }
      }
      for (Index i = k + 2; i < n_; ++i) {
        const double a1 = ld_(i, k), a2 = ld_(i, k + 1);
        ld_(i, k) = a1 * i11 + a2 * i21;
        ld_(i, k + 1) = a1 * i21 + a2 * i22;
        ld_(k, i) = ld_(i, k);
        ld_(k + 1, i) = ld_(i, k + 1);
      }
      k += 2;
    }
  }
}

Vec BunchKaufman::solve(const Vec& b) const {
  require(static_cast<Index>(b.size()) == n_, "BunchKaufman::solve: size mismatch");
  Vec x(b);
  // The factorization swaps *full* rows/columns (upfront-permutation
  // storage: Pᵀ A P = L D Lᵀ), so all interchanges apply before the
  // triangular solves, in the order they were recorded.
  Index k = 0;
  for (int bsize : blocks_) {
    const Index swap_pos = (bsize == 1) ? k : k + 1;
    const Index kp = perm_[static_cast<size_t>(k)];
    if (kp != swap_pos)
      std::swap(x[static_cast<size_t>(swap_pos)], x[static_cast<size_t>(kp)]);
    k += bsize;
  }
  // Forward pass: L⁻¹ (unit lower, block pattern).
  k = 0;
  for (int bsize : blocks_) {
    for (Index i = k + bsize; i < n_; ++i)
      for (Index j = k; j < k + bsize; ++j)
        x[static_cast<size_t>(i)] -= ld_(i, j) * x[static_cast<size_t>(j)];
    k += bsize;
  }
  // Diagonal solve D y = z.
  k = 0;
  for (int bsize : blocks_) {
    if (bsize == 1) {
      require(ld_(k, k) != 0.0, "BunchKaufman::solve: singular diagonal");
      x[static_cast<size_t>(k)] /= ld_(k, k);
    } else {
      const double d11 = ld_(k, k), d21 = ld_(k + 1, k), d22 = ld_(k + 1, k + 1);
      const double det = d11 * d22 - d21 * d21;
      const double b1 = x[static_cast<size_t>(k)], b2 = x[static_cast<size_t>(k + 1)];
      x[static_cast<size_t>(k)] = (d22 * b1 - d21 * b2) / det;
      x[static_cast<size_t>(k + 1)] = (-d21 * b1 + d11 * b2) / det;
    }
    k += bsize;
  }
  // Backward pass: Lᵀ, then undo the interchanges in reverse order.
  k = n_;
  for (size_t bi = blocks_.size(); bi-- > 0;) {
    const int bsize = blocks_[bi];
    k -= bsize;
    for (Index j = k; j < k + bsize; ++j)
      for (Index i = k + bsize; i < n_; ++i)
        x[static_cast<size_t>(j)] -= ld_(i, j) * x[static_cast<size_t>(i)];
  }
  k = n_;
  for (size_t bi = blocks_.size(); bi-- > 0;) {
    const int bsize = blocks_[bi];
    k -= bsize;
    const Index swap_pos = (bsize == 1) ? k : k + 1;
    const Index kp = perm_[static_cast<size_t>(k)];
    if (kp != swap_pos)
      std::swap(x[static_cast<size_t>(swap_pos)], x[static_cast<size_t>(kp)]);
  }
  return x;
}

BunchKaufman::Inertia BunchKaufman::inertia() const {
  Inertia in;
  Index k = 0;
  for (int bsize : blocks_) {
    if (bsize == 1) {
      const double d = ld_(k, k);
      if (d > 0.0)
        ++in.positive;
      else if (d < 0.0)
        ++in.negative;
      else
        ++in.zero;
    } else {
      double l1, l2, w[4];
      eig2x2(ld_(k, k), ld_(k + 1, k), ld_(k + 1, k + 1), l1, l2, w);
      for (double l : {l1, l2}) {
        if (l > 0.0)
          ++in.positive;
        else if (l < 0.0)
          ++in.negative;
        else
          ++in.zero;
      }
    }
    k += bsize;
  }
  return in;
}

void BunchKaufman::symmetric_factor(Mat& m_out, Vec& j_out) const {
  // A = P L D Lᵀ Pᵀ; with D = W Λ Wᵀ block-wise we get
  // M = P L W √|Λ| and A = M J Mᵀ, J = sign(Λ).
  Mat lw(n_, n_);  // L * W * sqrt(|Λ|)
  j_out.assign(static_cast<size_t>(n_), 1.0);
  // Explicit unit-lower L with the block pattern.
  Mat l = Mat::identity(n_);
  Index k = 0;
  for (int bsize : blocks_) {
    for (Index i = k + bsize; i < n_; ++i)
      for (Index j = k; j < k + bsize; ++j) l(i, j) = ld_(i, j);
    k += bsize;
  }
  // Multiply by the block-diagonal W √|Λ| on the right.
  k = 0;
  for (int bsize : blocks_) {
    if (bsize == 1) {
      const double d = ld_(k, k);
      require(d != 0.0,
              "BunchKaufman::symmetric_factor: zero pivot (apply a frequency "
              "shift, eq. 26)");
      const double r = std::sqrt(std::abs(d));
      j_out[static_cast<size_t>(k)] = d > 0.0 ? 1.0 : -1.0;
      for (Index i = 0; i < n_; ++i) lw(i, k) = l(i, k) * r;
    } else {
      double l1, l2, w[4];
      eig2x2(ld_(k, k), ld_(k + 1, k), ld_(k + 1, k + 1), l1, l2, w);
      require(l1 != 0.0 && l2 != 0.0,
              "BunchKaufman::symmetric_factor: singular 2x2 block");
      const double r1 = std::sqrt(std::abs(l1)), r2 = std::sqrt(std::abs(l2));
      j_out[static_cast<size_t>(k)] = l1 > 0.0 ? 1.0 : -1.0;
      j_out[static_cast<size_t>(k + 1)] = l2 > 0.0 ? 1.0 : -1.0;
      for (Index i = 0; i < n_; ++i) {
        const double a = l(i, k), b = l(i, k + 1);
        lw(i, k) = (a * w[0] + b * w[2]) * r1;
        lw(i, k + 1) = (a * w[1] + b * w[3]) * r2;
      }
    }
    k += bsize;
  }
  // Apply P: undo the recorded interchanges on the rows, in reverse order.
  m_out = lw;
  k = n_;
  for (size_t bi = blocks_.size(); bi-- > 0;) {
    const int bsize = blocks_[bi];
    k -= bsize;
    const Index swap_pos = (bsize == 1) ? k : k + 1;
    const Index kp = perm_[static_cast<size_t>(k)];
    if (kp != swap_pos)
      for (Index j = 0; j < n_; ++j) std::swap(m_out(swap_pos, j), m_out(kp, j));
  }
}

}  // namespace sympvl
