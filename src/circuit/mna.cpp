#include "circuit/mna.hpp"

#include <cmath>

#include "linalg/dense_factor.hpp"

namespace sympvl {

namespace {

// Stamps value·a·aᵀ for a two-terminal element between nodes n1, n2 where
// a = e(n1) − e(n2) in reduced node space (datum dropped, node k → k−1).
void stamp_two_terminal(TripletBuilder<double>& t, Index n1, Index n2,
                        double value) {
  const Index i = n1 - 1;
  const Index j = n2 - 1;
  if (i >= 0) t.add(i, i, value);
  if (j >= 0) t.add(j, j, value);
  if (i >= 0 && j >= 0) {
    t.add(i, j, -value);
    t.add(j, i, -value);
  }
}

// B column for a port: e(n1) − e(n2) in reduced node space.
void set_port_column(Mat& b, Index col, Index n1, Index n2) {
  if (n1 >= 1) b(n1 - 1, col) = 1.0;
  if (n2 >= 1) b(n2 - 1, col) = -1.0;
}

// Stamps A_lᵀ ℒ⁻¹ A_l into the builder: Σ_ij (ℒ⁻¹)_ij a_i a_jᵀ with
// a_i = e(n1_i) − e(n2_i).
void stamp_inverse_inductance(TripletBuilder<double>& t, const Netlist& nl,
                              const Mat& linv) {
  const auto& inds = nl.inductors();
  const Index m = static_cast<Index>(inds.size());
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < m; ++j) {
      const double v = linv(i, j);
      if (v == 0.0) continue;
      const Index a1 = inds[static_cast<size_t>(i)].n1 - 1;
      const Index a2 = inds[static_cast<size_t>(i)].n2 - 1;
      const Index b1 = inds[static_cast<size_t>(j)].n1 - 1;
      const Index b2 = inds[static_cast<size_t>(j)].n2 - 1;
      // (a_i a_jᵀ) has +v at (a1,b1),(a2,b2) and −v at (a1,b2),(a2,b1).
      if (a1 >= 0 && b1 >= 0) t.add(a1, b1, v);
      if (a2 >= 0 && b2 >= 0) t.add(a2, b2, v);
      if (a1 >= 0 && b2 >= 0) t.add(a1, b2, -v);
      if (a2 >= 0 && b1 >= 0) t.add(a2, b1, -v);
    }
  }
}

MnaSystem build_general(const Netlist& nl) {
  const Index nn = nl.node_count() - 1;
  const Index nl_count = static_cast<Index>(nl.inductors().size());
  const Index n = nn + nl_count;
  MnaSystem sys;
  sys.node_unknowns = nn;
  sys.inductor_unknowns = nl_count;
  sys.variable = SVariable::kS;
  sys.s_prefactor = 0;
  sys.definite = false;

  TripletBuilder<double> g(n, n);
  TripletBuilder<double> c(n, n);
  for (const auto& r : nl.resistors())
    stamp_two_terminal(g, r.n1, r.n2, 1.0 / r.resistance);
  for (const auto& cap : nl.capacitors())
    stamp_two_terminal(c, cap.n1, cap.n2, cap.capacitance);
  // Inductor branch rows: A_lᵀ in the node block, −ℒ in the current block.
  const auto& inds = nl.inductors();
  for (Index k = 0; k < nl_count; ++k) {
    const Index i1 = inds[static_cast<size_t>(k)].n1 - 1;
    const Index i2 = inds[static_cast<size_t>(k)].n2 - 1;
    if (i1 >= 0) g.add_symmetric(i1, nn + k, 1.0);
    if (i2 >= 0) g.add_symmetric(i2, nn + k, -1.0);
    c.add(nn + k, nn + k, -inds[static_cast<size_t>(k)].inductance);
  }
  for (const auto& m : nl.mutuals()) {
    const double mv = m.coupling *
                      std::sqrt(inds[static_cast<size_t>(m.l1)].inductance *
                                inds[static_cast<size_t>(m.l2)].inductance);
    c.add(nn + m.l1, nn + m.l2, -mv);
    c.add(nn + m.l2, nn + m.l1, -mv);
  }
  sys.G = g.compress();
  sys.C = c.compress();

  sys.B.resize(n, nl.port_count());
  for (Index p = 0; p < nl.port_count(); ++p) {
    const auto& port = nl.ports()[static_cast<size_t>(p)];
    set_port_column(sys.B, p, port.n1, port.n2);
    sys.port_names.push_back(port.name);
  }
  return sys;
}

MnaSystem build_rc(const Netlist& nl) {
  require(!nl.has_inductors(), "build_mna(kRC): circuit contains inductors");
  const Index nn = nl.node_count() - 1;
  MnaSystem sys;
  sys.node_unknowns = nn;
  sys.variable = SVariable::kS;
  sys.s_prefactor = 0;
  sys.definite = true;

  TripletBuilder<double> g(nn, nn);
  TripletBuilder<double> c(nn, nn);
  for (const auto& r : nl.resistors())
    stamp_two_terminal(g, r.n1, r.n2, 1.0 / r.resistance);
  for (const auto& cap : nl.capacitors())
    stamp_two_terminal(c, cap.n1, cap.n2, cap.capacitance);
  sys.G = g.compress();
  sys.C = c.compress();

  sys.B.resize(nn, nl.port_count());
  for (Index p = 0; p < nl.port_count(); ++p) {
    const auto& port = nl.ports()[static_cast<size_t>(p)];
    set_port_column(sys.B, p, port.n1, port.n2);
    sys.port_names.push_back(port.name);
  }
  return sys;
}

MnaSystem build_rl(const Netlist& nl) {
  require(!nl.has_capacitors(), "build_mna(kRL): circuit contains capacitors");
  require(nl.has_inductors(), "build_mna(kRL): no inductors present");
  const Index nn = nl.node_count() - 1;
  MnaSystem sys;
  sys.node_unknowns = nn;
  sys.variable = SVariable::kS;
  sys.s_prefactor = 1;  // eq. (8): Z(s) = s·Ẑ(s)
  sys.definite = true;

  const Mat lmat = inductance_matrix(nl);
  const Mat linv = dense_solve(lmat, Mat::identity(lmat.rows()));
  TripletBuilder<double> g(nn, nn);
  stamp_inverse_inductance(g, nl, linv);
  TripletBuilder<double> c(nn, nn);
  for (const auto& r : nl.resistors())
    stamp_two_terminal(c, r.n1, r.n2, 1.0 / r.resistance);
  sys.G = g.compress();
  sys.C = c.compress();

  sys.B.resize(nn, nl.port_count());
  for (Index p = 0; p < nl.port_count(); ++p) {
    const auto& port = nl.ports()[static_cast<size_t>(p)];
    set_port_column(sys.B, p, port.n1, port.n2);
    sys.port_names.push_back(port.name);
  }
  return sys;
}

MnaSystem build_lc(const Netlist& nl) {
  require(!nl.has_resistors(), "build_mna(kLC): circuit contains resistors");
  require(nl.has_inductors(), "build_mna(kLC): no inductors present");
  const Index nn = nl.node_count() - 1;
  MnaSystem sys;
  sys.node_unknowns = nn;
  sys.variable = SVariable::kSSquared;
  sys.s_prefactor = 1;  // eq. (9): Z(s) = s·Ẑ(s²)
  sys.definite = true;

  const Mat lmat = inductance_matrix(nl);
  const Mat linv = dense_solve(lmat, Mat::identity(lmat.rows()));
  TripletBuilder<double> g(nn, nn);
  stamp_inverse_inductance(g, nl, linv);
  TripletBuilder<double> c(nn, nn);
  for (const auto& cap : nl.capacitors())
    stamp_two_terminal(c, cap.n1, cap.n2, cap.capacitance);
  sys.G = g.compress();
  sys.C = c.compress();

  sys.B.resize(nn, nl.port_count());
  for (Index p = 0; p < nl.port_count(); ++p) {
    const auto& port = nl.ports()[static_cast<size_t>(p)];
    set_port_column(sys.B, p, port.n1, port.n2);
    sys.port_names.push_back(port.name);
  }
  return sys;
}

}  // namespace

Mat inductance_matrix(const Netlist& nl) {
  const auto& inds = nl.inductors();
  const Index m = static_cast<Index>(inds.size());
  Mat l(m, m);
  for (Index k = 0; k < m; ++k) l(k, k) = inds[static_cast<size_t>(k)].inductance;
  for (const auto& mu : nl.mutuals()) {
    const double mv = mu.coupling *
                      std::sqrt(inds[static_cast<size_t>(mu.l1)].inductance *
                                inds[static_cast<size_t>(mu.l2)].inductance);
    l(mu.l1, mu.l2) += mv;
    l(mu.l2, mu.l1) += mv;
  }
  // Positive definiteness check (physical inductance matrices are SPD);
  // DenseCholesky throws otherwise.
  if (m > 0) DenseCholesky check(l);
  return l;
}

Mat source_incidence(const Netlist& nl) {
  const Index nn = nl.node_count() - 1;
  const Index n = nn + static_cast<Index>(nl.inductors().size());
  Mat b(n, static_cast<Index>(nl.current_sources().size()));
  for (Index j = 0; j < static_cast<Index>(nl.current_sources().size()); ++j) {
    const auto& s = nl.current_sources()[static_cast<size_t>(j)];
    set_port_column(b, j, s.n1, s.n2);
  }
  return b;
}

MnaSystem build_mna(const Netlist& netlist, MnaForm form) {
  netlist.validate();
  require(netlist.node_count() > 1, "build_mna: circuit has no non-datum nodes");
  require(netlist.port_count() > 0 || form == MnaForm::kGeneral,
          "build_mna: circuit has no ports");

  if (form == MnaForm::kAuto) {
    if (netlist.is_lc() && netlist.has_inductors()) return build_lc(netlist);
    if (netlist.is_rc()) return build_rc(netlist);
    if (netlist.is_rl()) return build_rl(netlist);
    return build_general(netlist);
  }
  switch (form) {
    case MnaForm::kGeneral:
      return build_general(netlist);
    case MnaForm::kRC:
      return build_rc(netlist);
    case MnaForm::kRL:
      return build_rl(netlist);
    case MnaForm::kLC:
      return build_lc(netlist);
    default:
      throw Error(ErrorCode::kInvalidArgument, "build_mna: unknown form",
                  {.stage = "mna"});
  }
}

}  // namespace sympvl
