// Many-terminal reduction with port sharding: a 256-port power grid
// reduced through the public facade with ReduceMethod::kShardedSympvl.
// The ports are clustered by electrical proximity, each cluster runs
// its own SyMPVL process off one shared factorization, and the shard
// bases are stitched into a single passive macromodel.
//
//   $ ./manyport_sharding
#include <cstdio>

#include "sympvl.hpp"

int main() {
  using namespace sympvl;

  const PowerGridCircuit grid = make_power_grid({.ports = 256});
  const MnaSystem sys = build_mna(grid.netlist, MnaForm::kAuto);
  std::printf("power grid: %lld x %lld mesh, %lld unknowns, %lld ports\n",
              static_cast<long long>(grid.rows),
              static_cast<long long>(grid.cols),
              static_cast<long long>(sys.size()),
              static_cast<long long>(sys.port_count()));

  ReduceOptions opt;
  opt.method = ReduceMethod::kShardedSympvl;
  opt.order = sys.port_count();  // total order, split across the shards
  opt.shard.shards = 0;          // 0 = auto (heuristic / SYMPVL_PORT_SHARDS)
  const ReduceResult res = reduce(sys, opt);
  if (!res.ok()) {
    std::printf("reduction failed: %s\n",
                res.diagnostics.empty() ? "?"
                                        : res.diagnostics.front().message.c_str());
    return 1;
  }

  const PortShardReport& rep = res.shard;
  std::printf("sharded SyMPVL: %lld shards (%s clustering), stitched order "
              "%lld\n",
              static_cast<long long>(rep.shards), rep.clustering.c_str(),
              static_cast<long long>(rep.stitched_order));
  std::printf("  partition %.3fs  reduce %.3fs  stitch %.3fs  total %.3fs\n",
              rep.partition_seconds, rep.reduce_seconds, rep.stitch_seconds,
              rep.total_seconds);
  std::printf("  factor cache: %lld hits, %lld misses (one factorization "
              "serves every shard)\n",
              static_cast<long long>(rep.factor_cache_hits),
              static_cast<long long>(rep.factor_cache_misses));

  // Validate the stitched model against exact AC analysis.
  const Vec freqs = log_frequency_grid(1e6, 1e9, 5);
  const SweepResult exact = sweep(sys, freqs);
  const SweepResult reduced = sweep(res.value(), freqs);
  std::printf("\n%-12s %-14s %-14s %-10s\n", "f [Hz]", "|Z00| exact",
              "|Z00| stitched", "max rel.err");
  for (size_t k = 0; k < freqs.size(); ++k) {
    double err = 0.0, den = 0.0;
    for (Index i = 0; i < sys.port_count(); ++i)
      for (Index j = 0; j < sys.port_count(); ++j) {
        err = std::max(err, std::abs(reduced.values[k](i, j) -
                                     exact.values[k](i, j)));
        den = std::max(den, std::abs(exact.values[k](i, j)));
      }
    std::printf("%-12.3e %-14.6e %-14.6e %-10.2e\n", freqs[k],
                std::abs(exact.values[k](0, 0)),
                std::abs(reduced.values[k](0, 0)), err / den);
  }
  return 0;
}
