#include "mor/balanced.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/dense_factor.hpp"
#include "linalg/eig.hpp"

namespace sympvl {

BalancedResult balanced_truncation(const MnaSystem& sys,
                                   const BalancedOptions& options) {
  require(sys.variable == SVariable::kS && sys.s_prefactor == 0,
          "balanced_truncation: requires an s-domain (RC/general) form");
  require(sys.definite,
          "balanced_truncation: requires the PSD RC assembly (G, C PSD)");
  const Index n = sys.size();
  const Index p = sys.port_count();
  require(options.order >= 1 && options.order <= n,
          "balanced_truncation: order out of range");

  // Symmetric coordinates: C = RRᵀ, Ã = −R⁻¹GR⁻ᵀ, B̃ = R⁻¹B.
  const DenseCholesky chol(sys.C.to_dense());  // throws unless C is PD
  const Mat g = sys.G.to_dense();
  Mat a_tilde(n, n);
  for (Index j = 0; j < n; ++j) {
    Vec col = chol.solve_l(g.col(j));
    a_tilde.set_col(j, col);
  }
  // a_tilde now holds R⁻¹G; apply R⁻ᵀ from the right via transposition.
  {
    const Mat t = a_tilde.transpose();
    for (Index j = 0; j < n; ++j) a_tilde.set_col(j, chol.solve_l(t.col(j)));
    // a_tilde = R⁻¹(R⁻¹G)ᵀ = R⁻¹GᵀR⁻ᵀ = R⁻¹GR⁻ᵀ (G symmetric).
  }
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j) a_tilde(i, j) = -a_tilde(i, j);
  // Symmetrize rounding noise.
  for (Index i = 0; i < n; ++i)
    for (Index j = i + 1; j < n; ++j) {
      const double m = 0.5 * (a_tilde(i, j) + a_tilde(j, i));
      a_tilde(i, j) = m;
      a_tilde(j, i) = m;
    }
  Mat b_tilde(n, p);
  for (Index j = 0; j < p; ++j) b_tilde.set_col(j, chol.solve_l(sys.B.col(j)));

  // Gramian by spectral solution of the Lyapunov equation ÃP + PÃ = −B̃B̃ᵀ.
  const SymmetricEig eig = eig_symmetric(a_tilde);
  for (double l : eig.values)
    require(l < 0.0,
            "balanced_truncation: system has a pole at the origin (G "
            "singular — no DC path); the Gramian does not exist");
  // W = Vᵀ B̃B̃ᵀ V, then P̃ᵢⱼ = Wᵢⱼ / (−λᵢ − λⱼ).
  const Mat vb = eig.vectors.transpose() * b_tilde;  // n×p
  Mat p_hat(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j) {
      double w = 0.0;
      for (Index k = 0; k < p; ++k) w += vb(i, k) * vb(j, k);
      p_hat(i, j) = w / (-eig.values[static_cast<size_t>(i)] -
                         eig.values[static_cast<size_t>(j)]);
    }
  Mat gram = eig.vectors * p_hat * eig.vectors.transpose();
  for (Index i = 0; i < n; ++i)
    for (Index j = i + 1; j < n; ++j) {
      const double m = 0.5 * (gram(i, j) + gram(j, i));
      gram(i, j) = m;
      gram(j, i) = m;
    }

  // For this symmetric realization P = Q: the Hankel singular values are
  // |eig(P)| and the balancing transformation is orthogonal.
  const SymmetricEig peig = eig_symmetric(gram);
  BalancedResult result{{Mat(), Mat(), Mat(), sys.variable, 0, 0.0}, {}, 0.0};
  Vec hsv;
  std::vector<Index> order_idx;
  for (Index i = n - 1; i >= 0; --i) {  // descending
    hsv.push_back(std::max(0.0, peig.values[static_cast<size_t>(i)]));
    order_idx.push_back(i);
  }
  const Index k = options.order;
  double bound = 0.0;
  for (Index i = k; i < n; ++i) bound += 2.0 * hsv[static_cast<size_t>(i)];

  // Truncate to the dominant Hankel directions.
  Mat u(n, k);
  for (Index c = 0; c < k; ++c)
    for (Index i = 0; i < n; ++i)
      u(i, c) = peig.vectors(i, order_idx[static_cast<size_t>(c)]);
  const Mat ar = u.transpose() * (a_tilde * u);
  const Mat br = u.transpose() * b_tilde;
  Mat gr = ar;
  for (Index i = 0; i < k; ++i)
    for (Index j = 0; j < k; ++j) gr(i, j) = -ar(i, j);

  result.model = ArnoldiModel(std::move(gr), Mat::identity(k), br,
                              sys.variable, sys.s_prefactor, /*s0=*/0.0);
  result.hankel_singular_values = std::move(hsv);
  result.error_bound = bound;
  return result;
}

}  // namespace sympvl
