#include "linalg/sparse.hpp"

#include <gtest/gtest.h>

namespace sympvl {
namespace {

SMat small_matrix() {
  // [[4, 0, 1], [0, 2, 0], [1, 0, 3]]
  TripletBuilder<double> t(3, 3);
  t.add(0, 0, 4.0);
  t.add(1, 1, 2.0);
  t.add(2, 2, 3.0);
  t.add(0, 2, 1.0);
  t.add(2, 0, 1.0);
  return t.compress();
}

TEST(Sparse, CompressSumsDuplicates) {
  TripletBuilder<double> t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.5);
  t.add(1, 0, -1.0);
  const SMat m = t.compress();
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.coeff(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.coeff(1, 0), -1.0);
}

TEST(Sparse, CompressDropsExactZeroSums) {
  TripletBuilder<double> t(2, 2);
  t.add(0, 1, 1.0);
  t.add(0, 1, -1.0);
  EXPECT_EQ(t.compress().nnz(), 0);
}

TEST(Sparse, AddSymmetricStampsBoth) {
  TripletBuilder<double> t(2, 2);
  t.add_symmetric(0, 1, 2.0);
  t.add_symmetric(1, 1, 3.0);
  const SMat m = t.compress();
  EXPECT_DOUBLE_EQ(m.coeff(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.coeff(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.coeff(1, 1), 3.0);
}

TEST(Sparse, OutOfRangeThrows) {
  TripletBuilder<double> t(2, 2);
  EXPECT_THROW(t.add(2, 0, 1.0), Error);
  EXPECT_THROW(t.add(0, -1, 1.0), Error);
}

TEST(Sparse, RowIndicesSortedWithinColumns) {
  TripletBuilder<double> t(4, 2);
  t.add(3, 0, 1.0);
  t.add(0, 0, 1.0);
  t.add(2, 0, 1.0);
  const SMat m = t.compress();
  const auto& ri = m.rowind();
  EXPECT_TRUE(std::is_sorted(ri.begin(), ri.end()));
}

TEST(Sparse, Multiply) {
  const SMat m = small_matrix();
  const Vec y = m.multiply(Vec{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
  EXPECT_DOUBLE_EQ(y[2], 10.0);
}

TEST(Sparse, MultiplyTransposeMatchesDense) {
  const SMat m = small_matrix();
  const Vec x{1.0, -1.0, 2.0};
  const Vec yt = m.multiply_transpose(x);
  const Mat d = m.to_dense().transpose();
  const Vec expect = d * x;
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(yt[i], expect[i]);
}

TEST(Sparse, MultiplyAdd) {
  const SMat m = small_matrix();
  Vec y{1.0, 1.0, 1.0};
  m.multiply_add(Vec{1.0, 0.0, 0.0}, y, 2.0);
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
}

TEST(Sparse, Transpose) {
  TripletBuilder<double> t(2, 3);
  t.add(0, 2, 5.0);
  t.add(1, 0, -2.0);
  const SMat m = t.compress().transpose();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m.coeff(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.coeff(0, 1), -2.0);
}

TEST(Sparse, PermuteSymmetric) {
  const SMat m = small_matrix();
  const std::vector<Index> perm{2, 0, 1};  // new -> old
  const SMat p = m.permute_symmetric(perm);
  // p(i, j) = m(perm[i], perm[j]).
  for (Index i = 0; i < 3; ++i)
    for (Index j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(p.coeff(i, j),
                       m.coeff(perm[static_cast<size_t>(i)],
                               perm[static_cast<size_t>(j)]));
}

TEST(Sparse, AddCombination) {
  const SMat a = small_matrix();
  TripletBuilder<double> t(3, 3);
  t.add(1, 1, 1.0);
  t.add(0, 1, 4.0);
  const SMat b = t.compress();
  const SMat c = SMat::add(a, 2.0, b, -1.0);
  EXPECT_DOUBLE_EQ(c.coeff(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(c.coeff(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(c.coeff(0, 1), -4.0);
}

TEST(Sparse, Asymmetry) {
  EXPECT_DOUBLE_EQ(small_matrix().asymmetry(), 0.0);
  TripletBuilder<double> t(2, 2);
  t.add(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(t.compress().asymmetry(), 1.0);
}

TEST(Sparse, PencilCombine) {
  const SMat g = small_matrix();
  TripletBuilder<double> tc(3, 3);
  tc.add(0, 0, 2.0);
  tc.add(1, 2, 1.0);
  const SMat c = tc.compress();
  const Complex s(0.5, 2.0);
  const CSMat pencil = pencil_combine(g, c, s);
  EXPECT_NEAR(std::abs(pencil.coeff(0, 0) - (Complex(4.0) + s * 2.0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(pencil.coeff(1, 2) - s * 1.0), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(pencil.coeff(2, 0) - Complex(1.0)), 0.0, 1e-15);
}

TEST(Sparse, ToComplexRoundTrip) {
  const SMat m = small_matrix();
  const CSMat c = to_complex(m);
  EXPECT_EQ(c.nnz(), m.nnz());
  EXPECT_DOUBLE_EQ(c.coeff(0, 2).real(), 1.0);
  EXPECT_DOUBLE_EQ(c.coeff(0, 2).imag(), 0.0);
}

TEST(Sparse, CoeffMissingEntryIsZero) {
  const SMat m = small_matrix();
  EXPECT_DOUBLE_EQ(m.coeff(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.coeff(0, 1), 0.0);
}

}  // namespace
}  // namespace sympvl
