// Verifies the observability overhead contract (DESIGN.md §Observability):
// with instrumentation compiled in but *disabled* (no SYMPVL_TRACE /
// SYMPVL_STATS), the cost added to the Fig. 3 package frequency sweep must
// stay below 2%.
//
// Instrumentation cannot be compiled out, so the disabled overhead is
// bounded from measurements rather than an A/B build:
//   1. time the sweep with instrumentation disabled (best of several runs);
//   2. count how many events one instrumented sweep records (enabled run —
//      since Metrics v2 this path also feeds the per-span latency
//      histograms, so enabled_ms covers histogram recording too);
//   3. microbenchmark one disabled instrumentation point (ScopedTimer
//      construct+destruct: a relaxed atomic load and a branch);
//   overhead_pct = events_per_sweep * per_op_ns / sweep_ns * 100.
// The enabled sweep time is also reported for reference (no contract).
//
// Metrics v2 additions, measured per-op (no contract, informational):
//   * Histogram::record through the enabled gate — the span-exit cost;
//   * ByteGauge::add — the memory-accounting primitive, which is
//     ALWAYS-ON (not gated on obs::enabled()), so its per-op cost is
//     what every factorization/cache path pays unconditionally.
//
// Results go to stdout as CSV and to BENCH_obs_overhead.json.
#include <chrono>

#include "bench_util.hpp"
#include "gen/package.hpp"
#include "obs/histogram.hpp"
#include "obs/memstat.hpp"
#include "obs/obs.hpp"
#include "sim/ac.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void print_tables() {
  PackageOptions opt;
  opt.segments = 8;  // 64 pins x 8 segments — the Fig. 3 circuit family
  const PackageCircuit pkg = make_package_circuit(opt);
  const MnaSystem sys = build_mna(pkg.netlist, MnaForm::kGeneral);
  const Vec freqs = log_frequency_grid(1e7, 5e9, 100);
  const AcSweepEngine engine(sys);

  std::printf("obs overhead bench: MNA size %lld, %lld ports, %zu points\n",
              static_cast<long long>(sys.size()),
              static_cast<long long>(sys.port_count()), freqs.size());

  // ---- 1. disabled sweep time (best of 3: least scheduler noise) ----
  obs::enable(false);
  double disabled_ms = 1e300;
  for (int r = 0; r < 3; ++r) {
    const double t0 = now_ms();
    benchmark::DoNotOptimize(engine.sweep(freqs));
    disabled_ms = std::min(disabled_ms, now_ms() - t0);
  }

  // ---- 2. events recorded by one instrumented sweep ----
  obs::enable(true);
  obs::reset();
  const double t1 = now_ms();
  benchmark::DoNotOptimize(engine.sweep(freqs));
  const double enabled_ms = now_ms() - t1;
  const double events_per_sweep =
      static_cast<double>(obs::snapshot_events().size());
  obs::enable(false);
  obs::reset();

  // ---- 3. per-op cost of one disabled instrumentation point ----
  const long reps = 20'000'000;
  const double t2 = now_ms();
  for (long i = 0; i < reps; ++i) {
    obs::ScopedTimer span("obs.noop");
    benchmark::ClobberMemory();  // keep the loop and the atomic load alive
  }
  const double per_op_ns = (now_ms() - t2) * 1e6 / static_cast<double>(reps);

  // ---- 4. per-op cost of the enabled Metrics v2 primitives ----
  obs::enable(true);
  obs::Histogram hist;
  const double t3 = now_ms();
  for (long i = 0; i < reps; ++i) {
    hist.record(1.2e-4);  // mid-range bucket: the common span-exit path
    benchmark::ClobberMemory();
  }
  const double hist_record_ns =
      (now_ms() - t3) * 1e6 / static_cast<double>(reps);
  obs::enable(false);
  obs::reset();

  obs::ByteGauge& gauge = obs::byte_gauge("bench.noop_bytes");
  const double t4 = now_ms();
  for (long i = 0; i < reps; ++i) {
    gauge.add((i & 1) ? -64 : 64);  // alternating: exercises the peak CAS
    benchmark::ClobberMemory();
  }
  const double gauge_add_ns =
      (now_ms() - t4) * 1e6 / static_cast<double>(reps);

  const double overhead_pct =
      events_per_sweep * per_op_ns / (disabled_ms * 1e6) * 100.0;
  const double enabled_pct =
      (enabled_ms - disabled_ms) / disabled_ms * 100.0;

  csv_begin("disabled-instrumentation overhead bound (contract: < 2%)",
            {"disabled_ms", "enabled_ms", "events_per_sweep", "per_op_ns",
             "overhead_pct", "enabled_overhead_pct"});
  csv_row({disabled_ms, enabled_ms, events_per_sweep, per_op_ns, overhead_pct,
           enabled_pct});
  std::printf("overhead contract %s: %.4f%% < 2%%\n",
              overhead_pct < 2.0 ? "MET" : "VIOLATED", overhead_pct);

  csv_begin("enabled telemetry per-op cost (informational)",
            {"hist_record_ns", "gauge_add_ns"});
  csv_row({hist_record_ns, gauge_add_ns});

  json_emit("BENCH_obs_overhead.json",
            {{"mna_size", static_cast<double>(sys.size())},
             {"ports", static_cast<double>(sys.port_count())},
             {"freq_points", static_cast<double>(freqs.size())},
             {"threads", static_cast<double>(num_threads())},
             {"sweep_disabled_ms", disabled_ms},
             {"sweep_enabled_ms", enabled_ms},
             {"events_per_sweep", events_per_sweep},
             {"disabled_per_op_ns", per_op_ns},
             {"hist_record_ns", hist_record_ns},
             {"gauge_add_ns", gauge_add_ns},
             {"disabled_overhead_pct", overhead_pct},
             {"enabled_overhead_pct", enabled_pct},
             {"contract_met", overhead_pct < 2.0 ? 1.0 : 0.0}});
  std::printf("\nwrote BENCH_obs_overhead.json\n");
}

}  // namespace

int main() {
  print_tables();
  obs::flush();
  return 0;
}
