// 64-pin RF package model generator (substitute for the Section 7.2
// example).
//
// The paper characterizes a 64-pin IC package as a 16-port component
// (8 signal pins × exterior/interior terminals): an RLC circuit with
// ~4000 elements and MNA size ~2000, reduced at orders 48/64/80.
//
// Each pin here is a cascaded bondwire/lead-frame ladder: per segment a
// series R+L and a shunt C to the ground plane; neighboring pins (ring
// topology) couple through pin-to-pin capacitances and mutual inductances.
// Dimensions default to the paper's scale.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"

namespace sympvl {

struct PackageOptions {
  Index pins = 64;
  Index segments = 10;       ///< RLC ladder sections per pin
  Index signal_pins = 8;     ///< pins exposed as ports (evenly spaced)
  double series_resistance = 0.25;    ///< per segment [Ω] (incl. skin effect)
  double series_inductance = 0.5e-9;  ///< per segment [H]
  double shunt_capacitance = 0.12e-12;  ///< per segment to ground [F]
  double neighbor_capacitance = 0.05e-12;  ///< pin-to-pin per segment [F]
  double neighbor_coupling = 0.25;    ///< mutual k between adjacent segments
  double second_neighbor_coupling = 0.08;
};

struct PackageCircuit {
  Netlist netlist;
  std::vector<Index> ext_nodes;  ///< exterior terminal node per signal pin
  std::vector<Index> int_nodes;  ///< interior terminal node per signal pin
  /// Port ordering: ports 0..s-1 = exterior, s..2s-1 = interior terminals.
  Index ext_port(Index signal_pin) const { return signal_pin; }
  Index int_port(Index signal_pin) const {
    return static_cast<Index>(ext_nodes.size()) + signal_pin;
  }
};

/// Builds the package circuit with 2·signal_pins ports.
PackageCircuit make_package_circuit(const PackageOptions& options = {});

}  // namespace sympvl
