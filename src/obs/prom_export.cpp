#include "obs/prom_export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common.hpp"
#include "linalg/simd.hpp"
#include "obs/histogram.hpp"
#include "obs/memstat.hpp"
#include "obs/obs.hpp"

namespace sympvl::obs {

namespace {

// Prometheus sample-value syntax: Go strconv floats plus +Inf/-Inf/NaN.
std::string prom_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string prom_value(std::int64_t v) { return std::to_string(v); }

// Shorter form for le= boundaries (they are exact bucket bounds, not
// measurements; 9 significant digits round-trips them).
std::string prom_le(double v) {
  if (std::isinf(v)) return "+Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Label-value escaping: backslash, double quote, newline.
std::string label_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '"')
      out += "\\\"";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

void help_type(std::ostream& out, const std::string& name, const char* type,
               const std::string& help) {
  out << "# HELP " << name << " " << help << "\n";
  out << "# TYPE " << name << " " << type << "\n";
}

}  // namespace

std::string prometheus_metric_name(const std::string& raw) {
  std::string out = "sympvl_";
  for (char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void export_prometheus(std::ostream& out) {
  // Build / process identity.
  {
    help_type(out, "sympvl_build_info", "gauge",
              "Build identity as labels; value is always 1.");
    out << "sympvl_build_info{compiler=\""
        << label_escape(detail::build_compiler()) << "\",build_type=\""
        << label_escape(detail::build_type()) << "\",simd_level=\""
        << label_escape(simd_level_name(resolve_simd_level(SimdLevel::kAuto)))
        << "\"} 1\n";

    help_type(out, "sympvl_process_peak_rss_bytes", "gauge",
              "Process high-water resident set size (getrusage).");
    out << "sympvl_process_peak_rss_bytes " << prom_value(peak_rss_bytes())
        << "\n";
    if (const std::int64_t rss = current_rss_bytes(); rss > 0) {
      help_type(out, "sympvl_process_rss_bytes", "gauge",
                "Instantaneous resident set size (/proc/self/statm).");
      out << "sympvl_process_rss_bytes " << prom_value(rss) << "\n";
    }

    help_type(out, "sympvl_obs_dropped_events_total", "counter",
              "Trace events dropped at the per-thread buffer cap.");
    out << "sympvl_obs_dropped_events_total "
        << prom_value(dropped_events()) << "\n";
  }

  // Counters — one family each, "_total" suffix per convention.
  for (const auto& [raw, v] : snapshot_counters()) {
    const std::string name = prometheus_metric_name(raw) + "_total";
    help_type(out, name, "counter", "obs counter \"" + raw + "\".");
    out << name << " " << prom_value(v) << "\n";
  }

  // Last-value gauges.
  for (const auto& [raw, v] : snapshot_gauges()) {
    const std::string name = prometheus_metric_name(raw);
    help_type(out, name, "gauge", "obs gauge \"" + raw + "\".");
    out << name << " " << prom_value(v) << "\n";
  }

  // Byte gauges: current + high-water companion.
  for (const ByteGaugeSnapshot& g : snapshot_byte_gauges()) {
    const std::string name = prometheus_metric_name(g.name);
    help_type(out, name, "gauge", "obs byte gauge \"" + g.name + "\".");
    out << name << " " << prom_value(g.current) << "\n";
    help_type(out, name + "_peak", "gauge",
              "High-water mark of \"" + g.name + "\".");
    out << name + "_peak"
        << " " << prom_value(g.peak) << "\n";
  }

  // Span latency: one histogram family + one quantile summary family,
  // both keyed by a span label so dashboards aggregate uniformly.
  const auto hists = snapshot_histograms();
  bool any = false;
  for (const auto& [name, bins] : hists) any = any || !bins.empty();
  if (any) {
    help_type(out, "sympvl_span_duration_seconds", "histogram",
              "Span duration distribution per obs span family.");
    for (const auto& [span, bins] : hists) {
      if (bins.empty()) continue;
      const std::string lbl = label_escape(span);
      // Coarse export boundaries: every 4th internal sub-bucket, i.e.
      // two le= boundaries per decade — enough for dashboards while
      // keeping the document compact. Counts are cumulative.
      std::uint64_t cum = 0;
      int next_export = 0;
      for (int b = 0; b < kHistBuckets - 1; ++b) {
        cum += bins.counts[static_cast<size_t>(b)];
        if (b == next_export) {
          out << "sympvl_span_duration_seconds_bucket{span=\"" << lbl
              << "\",le=\"" << prom_le(histogram_upper_bound(b)) << "\"} "
              << cum << "\n";
          next_export += kBucketsPerDecade / 2;
        }
      }
      out << "sympvl_span_duration_seconds_bucket{span=\"" << lbl
          << "\",le=\"+Inf\"} " << bins.count << "\n";
      out << "sympvl_span_duration_seconds_sum{span=\"" << lbl << "\"} "
          << prom_value(bins.sum) << "\n";
      out << "sympvl_span_duration_seconds_count{span=\"" << lbl << "\"} "
          << bins.count << "\n";
    }

    help_type(out, "sympvl_span_latency_quantiles_seconds", "summary",
              "Precomputed span latency quantiles per obs span family.");
    for (const auto& [span, bins] : hists) {
      if (bins.empty()) continue;
      const std::string lbl = label_escape(span);
      const LatencyStats s = latency_stats(bins);
      out << "sympvl_span_latency_quantiles_seconds{span=\"" << lbl
          << "\",quantile=\"0.5\"} " << prom_value(s.p50) << "\n";
      out << "sympvl_span_latency_quantiles_seconds{span=\"" << lbl
          << "\",quantile=\"0.95\"} " << prom_value(s.p95) << "\n";
      out << "sympvl_span_latency_quantiles_seconds{span=\"" << lbl
          << "\",quantile=\"0.99\"} " << prom_value(s.p99) << "\n";
      out << "sympvl_span_latency_quantiles_seconds_sum{span=\"" << lbl
          << "\"} " << prom_value(bins.sum) << "\n";
      out << "sympvl_span_latency_quantiles_seconds_count{span=\"" << lbl
          << "\"} " << bins.count << "\n";
    }
  }
}

void write_prometheus(const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "obs: cannot open metrics file '" + path + "'");
  export_prometheus(out);
  require(out.good(), "obs: failed writing metrics file '" + path + "'");
}

}  // namespace sympvl::obs
