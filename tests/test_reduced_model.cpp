#include "mor/reduced_model.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "gen/random_circuit.hpp"
#include "mor/sympvl.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

ReducedModel rc_model(Index nodes, Index ports, Index order, unsigned seed) {
  const Netlist nl = random_rc({.nodes = nodes, .ports = ports, .seed = seed});
  SympvlOptions opt;
  opt.order = order;
  return sympvl_reduce(build_mna(nl), opt);
}

TEST(ReducedModel, PolesAreNegativeRealForRc) {
  const ReducedModel rom = rc_model(30, 2, 12, 1);
  for (const Complex& pole : rom.poles()) {
    EXPECT_LE(pole.real(), 1e-9);
    EXPECT_NEAR(pole.imag(), 0.0, 1e-6 * (1.0 + std::abs(pole.real())));
  }
  EXPECT_TRUE(rom.is_stable());
}

TEST(ReducedModel, EvalAtZeroEqualsDcResistance) {
  Netlist nl;
  nl.add_resistor(1, 2, 100.0);
  nl.add_resistor(2, 0, 300.0);
  nl.add_capacitor(2, 0, 1e-12);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  SympvlOptions opt;
  opt.order = 2;
  const ReducedModel rom = sympvl_reduce(sys, opt);
  const CMat z0 = rom.eval(Complex(0.0, 0.0));
  EXPECT_NEAR(z0(0, 0).real(), 400.0, 1e-6);
}

TEST(ReducedModel, ConjugateSymmetry) {
  const ReducedModel rom = rc_model(25, 2, 10, 3);
  const Complex s(0.3e9, 2.0 * M_PI * 1e9);
  const CMat z = rom.eval(s);
  const CMat zbar = rom.eval(std::conj(s));
  for (Index i = 0; i < 2; ++i)
    for (Index j = 0; j < 2; ++j)
      EXPECT_NEAR(std::abs(zbar(i, j) - std::conj(z(i, j))), 0.0,
                  1e-12 * z.max_abs());
}

TEST(ReducedModel, SweepMatchesPointEval) {
  const ReducedModel rom = rc_model(20, 1, 8, 4);
  const Vec freqs{1e7, 1e8, 1e9};
  const auto zs = rom.sweep(freqs);
  ASSERT_EQ(zs.size(), 3u);
  for (size_t k = 0; k < 3; ++k) {
    const CMat direct = rom.eval(Complex(0.0, 2.0 * M_PI * freqs[k]));
    EXPECT_DOUBLE_EQ(std::abs(zs[k](0, 0)), std::abs(direct(0, 0)));
  }
}

TEST(ReducedModel, TransientMatchesFullCircuit) {
  Netlist nl = random_rc({.nodes = 30, .ports = 2, .seed = 6});
  const MnaSystem sys = build_mna(nl);
  SympvlOptions opt;
  opt.order = 14;
  const ReducedModel rom = sympvl_reduce(sys, opt);

  TransientOptions topt;
  topt.dt = 2e-12;
  topt.t_end = 2e-9;
  std::vector<Waveform> drives{ramp_waveform(1e-3, 0.1e-9, 0.2e-9),
                               [](double) { return 0.0; }};
  const auto full = simulate_ports_transient(sys, drives, topt);
  const auto red = rom.simulate_transient(drives, topt);
  ASSERT_EQ(full.time.size(), red.time.size());
  double vmax = 0.0;
  for (size_t k = 0; k < full.time.size(); ++k)
    vmax = std::max(vmax, std::abs(full.outputs(static_cast<Index>(k), 0)));
  for (size_t k = 0; k < full.time.size(); ++k)
    for (Index j = 0; j < 2; ++j)
      EXPECT_NEAR(red.outputs(static_cast<Index>(k), j),
                  full.outputs(static_cast<Index>(k), j), 0.01 * vmax)
          << "t=" << full.time[k] << " port " << j;
}

TEST(ReducedModel, StampIntoHostReproducesCombinedCircuit) {
  // Split a ladder: host = first half driven at node 1, ROM = second half.
  // Compare against simulating the full unsplit circuit.
  Netlist full;
  const Index total = 10;
  for (Index i = 1; i <= total; ++i) {
    full.add_resistor(i - 1, i, 10.0);
    full.add_capacitor(i, 0, 1e-12);
  }
  full.add_resistor(total, 0, 100.0);  // far-end load (keeps every G nonsingular)
  full.add_port(1, 0);
  const MnaSystem full_sys = build_mna(full, MnaForm::kGeneral);

  // Sub-block: the tail of the ladder (segments 5→6 … 9→10 with their
  // shunt capacitors), its input exposed as a port.
  Netlist sub2;
  for (Index i = 1; i <= 5; ++i) {
    sub2.add_resistor(i, i + 1, 10.0);
    sub2.add_capacitor(i + 1, 0, 1e-12);
  }
  sub2.add_resistor(6, 0, 100.0);  // the far-end load belongs to the sub-block
  sub2.add_port(1, 0);
  SympvlOptions opt;
  opt.order = 6;  // sub-block has 6 MNA unknowns: the ROM is exact
  const ReducedModel rom = sympvl_reduce(build_mna(sub2), opt);

  // Host: nodes 1..5 with the drive port at node 1; ROM attaches at node 5.
  Netlist host;
  for (Index i = 1; i <= 5; ++i) {
    host.add_resistor(i - 1, i, 10.0);
    host.add_capacitor(i, 0, 1e-12);
  }
  host.add_port(1, 0);
  // sub2 already contains the 5→6 segment resistor behind its port, so
  // attaching it at host node 5 reproduces the full ladder exactly.
  const MnaSystem combined = rom.stamp_into(host, {5});

  for (double f : {1e7, 1e8, 1e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const CMat zc = ac_z_matrix(combined, s);
    const CMat zf = ac_z_matrix(full_sys, s);
    EXPECT_NEAR(std::abs(zc(0, 0) - zf(0, 0)), 0.0, 1e-6 * std::abs(zf(0, 0)))
        << "f=" << f;
  }
}

TEST(ReducedModel, StampedPencilIsSymmetric) {
  const Netlist nl = random_rc({.nodes = 8, .ports = 1, .seed = 11});
  SympvlOptions opt;
  opt.order = 4;
  const ReducedModel rom = sympvl_reduce(build_mna(nl), opt);
  Netlist host;
  host.add_resistor(1, 0, 50.0);
  host.add_capacitor(1, 0, 1e-12);
  host.add_port(1, 0);
  const MnaSystem sys = rom.stamp_into(host, {1});
  EXPECT_NEAR(sys.G.asymmetry(), 0.0, 1e-12);
  EXPECT_NEAR(sys.C.asymmetry(), 0.0, 1e-12);
}

TEST(ReducedModel, MomentZeroIsDcValue) {
  const ReducedModel rom = rc_model(20, 2, 10, 12);
  const Mat m0 = rom.moment(0);
  const CMat z0 = rom.eval(Complex(0.0, 0.0));
  for (Index i = 0; i < 2; ++i)
    for (Index j = 0; j < 2; ++j)
      EXPECT_NEAR(m0(i, j), z0(i, j).real(), 1e-9 * std::abs(m0(i, j)) + 1e-12);
}

TEST(ReducedModel, SerializationRoundTripBitExact) {
  const ReducedModel rom = rc_model(25, 2, 10, 21);
  const ReducedModel back = ReducedModel::from_text(rom.to_text());
  EXPECT_EQ(back.order(), rom.order());
  EXPECT_EQ(back.port_count(), rom.port_count());
  EXPECT_EQ(back.variable(), rom.variable());
  EXPECT_EQ(back.s_prefactor(), rom.s_prefactor());
  EXPECT_DOUBLE_EQ(back.shift(), rom.shift());
  EXPECT_DOUBLE_EQ((back.t() - rom.t()).max_abs(), 0.0);
  EXPECT_DOUBLE_EQ((back.delta() - rom.delta()).max_abs(), 0.0);
  EXPECT_DOUBLE_EQ((back.rho() - rom.rho()).max_abs(), 0.0);
  const Complex s(0.0, 2.0 * M_PI * 1e9);
  EXPECT_DOUBLE_EQ(std::abs(back.eval(s)(0, 1)), std::abs(rom.eval(s)(0, 1)));
}

TEST(ReducedModel, SerializationPreservesShiftedLcModels) {
  const Netlist nl = random_lc({.nodes = 12, .ports = 1, .seed = 22,
                                .grounded = false});
  SympvlOptions opt;
  opt.order = 6;
  const ReducedModel rom = sympvl_reduce(build_mna(nl), opt);
  ASSERT_GT(rom.shift(), 0.0);
  const ReducedModel back = ReducedModel::from_text(rom.to_text());
  const Complex s(0.0, 2.0 * M_PI * 3e9);
  EXPECT_NEAR(std::abs(back.eval(s)(0, 0) - rom.eval(s)(0, 0)), 0.0, 0.0);
}

TEST(ReducedModel, SaveLoadFile) {
  const ReducedModel rom = rc_model(15, 1, 6, 23);
  const std::string path = "/tmp/sympvl_model_test.rom";
  rom.save(path);
  const ReducedModel back = ReducedModel::load(path);
  EXPECT_EQ(back.order(), rom.order());
  std::remove(path.c_str());
  EXPECT_THROW(ReducedModel::load("/nonexistent/m.rom"), Error);
}

TEST(ReducedModel, FromTextRejectsGarbage) {
  EXPECT_THROW(ReducedModel::from_text(""), Error);
  EXPECT_THROW(ReducedModel::from_text("sympvl-reduced-model v2\n"), Error);
  const ReducedModel rom = rc_model(8, 1, 3, 24);
  std::string text = rom.to_text();
  text.resize(text.size() / 2);  // truncated
  EXPECT_THROW(ReducedModel::from_text(text), Error);
}

TEST(ReducedModel, ShiftedModelRejectsTransient) {
  const Netlist nl = random_lc({.nodes = 10, .ports = 1, .seed = 13,
                                .grounded = false});
  SympvlOptions opt;
  opt.order = 4;
  const ReducedModel rom = sympvl_reduce(build_mna(nl), opt);
  TransientOptions topt;
  EXPECT_THROW(rom.simulate_transient({[](double) { return 0.0; }}, topt),
               Error);
}

}  // namespace
}  // namespace sympvl
