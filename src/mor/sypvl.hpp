// SyPVL: the single-input single-output (p = 1) predecessor of SyMPVL
// (reference [8] of the paper).
//
// A dedicated three-term symmetric Lanczos recurrence — no blocks, no
// deflation — producing a tridiagonal Tₙ, diagonal Δₙ and scalar ρ₁ with
//   Zₙ(s) = ρ₁² e₁ᵀ Δₙ (I + σ'Tₙ)⁻¹ e₁.
// Kept separate from Algorithm 1 both as the paper's lineage and as an
// independent cross-check of the block code path.
#pragma once

#include "circuit/mna.hpp"
#include "mor/reduced_model.hpp"
#include "mor/sympvl.hpp"

namespace sympvl {

/// Runs SyPVL on a one-port system. Throws if the system has p ≠ 1 ports
/// or if the indefinite recurrence breaks down (δₙ ≈ 0) — use SyMPVL with
/// look-ahead in that case.
ReducedModel sypvl_reduce(const MnaSystem& sys, const SympvlOptions& options,
                          SympvlReport* report = nullptr);

/// Recurrence coefficients of the tridiagonal Lanczos matrix, exposed for
/// the Cauer/Foster synthesis path and for tests:
/// diag = t₁₁…tₙₙ, sub = t₂₁…tₙ,ₙ₋₁, deltas = δ₁…δₙ, rho1 = ‖starting vec‖.
struct SypvlCoefficients {
  Vec diag;
  Vec sub;
  Vec deltas;
  double rho1 = 0.0;
};

/// The coefficients of the most recent model (recomputed from the model's
/// tridiagonal matrices).
SypvlCoefficients sypvl_coefficients(const ReducedModel& model);

}  // namespace sympvl
