// Unified driver API: every reduction algorithm behind one calling
// convention. run_sympvl / run_sypvl / run_pvl / run_arnoldi all return a
// ReductionResult<Model> carrying the model, the uniform SympvlReport,
// an explicit ReductionStatus and a list of structured ReductionIssue
// diagnostics — so callers dispatch on status instead of pattern-matching
// exception strings, and a recovered-but-degraded run (breakdown
// truncation, shift retries) is distinguishable from a clean one.
//
// The legacy throwing entry points (sympvl_reduce, sypvl_reduce,
// pvl_reduce_entry, arnoldi_reduce) remain as the thin underlying
// primitives.
//
// \deprecated The free run_* drivers below are superseded by the public
// facade sympvl::reduce(system, ReduceOptions) of mor/reduce.hpp, which
// adds method dispatch (including the sharded many-terminal path) behind
// one entry point. They remain supported as the per-method primitives
// the facade is built on, but new call sites should use reduce().
#pragma once

#include <string>
#include <vector>

#include "circuit/mna.hpp"
#include "mor/arnoldi.hpp"
#include "mor/pvl.hpp"
#include "mor/reduced_model.hpp"
#include "mor/sympvl.hpp"
#include "mor/sypvl.hpp"

namespace sympvl {

/// Overall outcome of a reduction run.
enum class ReductionStatus {
  kOk,         ///< requested order reached (or Krylov space exhausted —
               ///< the model is then exact, not degraded)
  kTruncated,  ///< serious breakdown: model valid but stopped at the last
               ///< healthy order below the request
  kFailed,     ///< no usable model; see diagnostics
};

inline const char* reduction_status_name(ReductionStatus s) {
  switch (s) {
    case ReductionStatus::kOk: return "ok";
    case ReductionStatus::kTruncated: return "truncated";
    case ReductionStatus::kFailed: return "failed";
  }
  return "unknown";
}

/// One structured diagnostic: a flattened Error / recovery-trail entry.
struct ReductionIssue {
  ErrorCode code = ErrorCode::kUnknown;
  std::string stage;    ///< dot-separated site, e.g. "sympvl.factor"
  std::string message;
  Index index = -1;     ///< pivot / iteration / point index when known
  double value = 0.0;   ///< offending magnitude when known
  double condition = 0.0;

  static ReductionIssue from_error(const Error& ex) {
    ReductionIssue issue;
    issue.code = ex.code();
    issue.stage = ex.context().stage;
    issue.message = ex.what();
    issue.index = ex.context().index;
    issue.value = ex.context().value;
    issue.condition = ex.context().condition;
    return issue;
  }
};

/// Uniform return type of the run_* drivers. `report` is the library's
/// common reduction report; drivers without a native report (PVL,
/// Arnoldi) populate the fields they can (s0_used, achieved_order,
/// breakdown/lanczos_diagnosis) and leave the rest defaulted.
template <typename Model>
struct ReductionResult {
  Model model{};
  SympvlReport report{};
  ReductionStatus status = ReductionStatus::kOk;
  std::vector<ReductionIssue> diagnostics;

  /// True when a usable model exists (kOk or kTruncated).
  bool ok() const { return status != ReductionStatus::kFailed; }

  /// The model, re-raising the first recorded failure when there is none.
  const Model& value() const {
    if (!ok()) {
      if (!diagnostics.empty()) {
        const ReductionIssue& first = diagnostics.front();
        throw Error(first.code, first.message,
                    {.stage = first.stage, .index = first.index,
                     .value = first.value, .condition = first.condition});
      }
      throw Error(ErrorCode::kUnknown, "reduction failed (no diagnostics)");
    }
    return model;
  }
};

/// SyMPVL (Algorithm 1) behind the unified API.
/// \deprecated Prefer sympvl::reduce() (mor/reduce.hpp).
ReductionResult<ReducedModel> run_sympvl(const MnaSystem& sys,
                                         const SympvlOptions& options);
/// Convenience overload: assembles the netlist (kAuto form) first;
/// assembly failures are reported as kFailed diagnostics, not thrown.
ReductionResult<ReducedModel> run_sympvl(const Netlist& netlist,
                                         const SympvlOptions& options);

/// SyPVL (single-port predecessor) behind the unified API.
/// \deprecated Prefer sympvl::reduce() with ReduceMethod::kSypvl.
ReductionResult<ReducedModel> run_sypvl(const MnaSystem& sys,
                                        const SympvlOptions& options);

/// PVL on entry (row, col) of Z behind the unified API.
/// \deprecated Prefer sympvl::reduce() with ReduceMethod::kPvl.
ReductionResult<PvlModel> run_pvl(const MnaSystem& sys, Index row, Index col,
                                  const PvlOptions& options);

/// Block Arnoldi / congruence projection behind the unified API.
/// \deprecated Prefer sympvl::reduce() with ReduceMethod::kArnoldi.
ReductionResult<ArnoldiModel> run_arnoldi(const MnaSystem& sys,
                                          const ArnoldiOptions& options);

}  // namespace sympvl
