// Experiment E7 — ablation against the block-Arnoldi / congruence
// projection alternative cited in Section 1 (reference [16], the
// PRIMA-precursor): at equal reduced order n, the matrix-Padé model
// matches 2⌊n/p⌋ moments vs ⌊n/p⌋ for the projection, so SyMPVL needs
// roughly half the order for the same accuracy.
//
// Tables: error vs order for both methods on the package-like RLC and the
// RC bus; moment-match count verification.
#include "bench_util.hpp"
#include "gen/package.hpp"
#include "gen/random_circuit.hpp"
#include "mor/arnoldi.hpp"
#include "mor/moments.hpp"
#include "mor/sympvl.hpp"
#include "sim/ac.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

void error_vs_order_table(const char* title, const MnaSystem& sys,
                          double s0, const std::vector<Index>& orders) {
  const Vec freqs = log_frequency_grid(1e7, 1e10, 15);
  const auto exact = ac_sweep(sys, freqs);
  csv_begin(title, {"order", "sympvl_err", "arnoldi_err"});
  for (Index n : orders) {
    SympvlOptions sopt;
    sopt.order = n;
    sopt.s0 = s0;
    const ReducedModel rom = sympvl_reduce(sys, sopt);
    ArnoldiOptions aopt;
    aopt.order = n;
    aopt.s0 = s0;
    const ArnoldiModel arn = arnoldi_reduce(sys, aopt);
    double es = 0.0, ea = 0.0;
    for (size_t k = 0; k < freqs.size(); ++k) {
      const Complex s(0.0, 2.0 * M_PI * freqs[k]);
      es = std::max(es, max_rel_err(rom.eval(s), exact[k]));
      ea = std::max(ea, max_rel_err(arn.eval(s), exact[k]));
    }
    csv_row({static_cast<double>(n), es, ea});
  }
}

void print_tables() {
  // RC bus, 2 ports.
  const MnaSystem rc = build_mna(random_rc({.nodes = 120, .ports = 2,
                                            .seed = 11}));
  error_vs_order_table("arnoldi ablation: coupled RC (p=2), err vs order",
                       rc, 0.0, {4, 8, 12, 16, 24, 32});

  // Small package RLC, 8 ports.
  const PackageCircuit pkg = make_package_circuit(
      {.pins = 16, .segments = 4, .signal_pins = 4});
  const MnaSystem rlc = build_mna(pkg.netlist, MnaForm::kGeneral);
  error_vs_order_table("arnoldi ablation: package RLC (p=8), err vs order",
                       rlc, automatic_shift(rlc), {16, 24, 32, 48, 64});

  // Moment-count verification on a SISO system: first mismatched moment.
  const MnaSystem siso = build_mna(random_rc({.nodes = 60, .ports = 1,
                                              .seed = 12}));
  csv_begin("first mismatched moment index (theory: 2n for Pade, n for "
            "projection)", {"order", "sympvl_first_miss", "arnoldi_first_miss"});
  for (Index n : {3, 5, 7}) {
    SympvlOptions sopt;
    sopt.order = n;
    const ReducedModel rom = sympvl_reduce(siso, sopt);
    ArnoldiOptions aopt;
    aopt.order = n;
    const ArnoldiModel arn = arnoldi_reduce(siso, aopt);
    const Vec exact = exact_moments_scalar(siso, 2 * n + 2);
    auto first_miss = [&](const std::function<double(Index)>& moment) {
      for (Index k = 0; k < 2 * n + 2; ++k) {
        const double scale = std::abs(exact[static_cast<size_t>(k)]);
        if (std::abs(moment(k) - exact[static_cast<size_t>(k)]) > 1e-6 * scale)
          return k;
      }
      return Index(2 * n + 2);
    };
    csv_row({static_cast<double>(n),
             static_cast<double>(first_miss(
                 [&](Index k) { return rom.moment(k)(0, 0); })),
             static_cast<double>(first_miss(
                 [&](Index k) { return arn.moment(k)(0, 0); }))});
  }
}

void bm_sympvl(benchmark::State& state) {
  const MnaSystem sys = build_mna(random_rc({.nodes = 120, .ports = 2,
                                             .seed = 11}));
  SympvlOptions opt;
  opt.order = static_cast<Index>(state.range(0));
  for (auto _ : state) {
    const ReducedModel rom = sympvl_reduce(sys, opt);
    benchmark::DoNotOptimize(rom.order());
  }
}
BENCHMARK(bm_sympvl)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void bm_arnoldi(benchmark::State& state) {
  const MnaSystem sys = build_mna(random_rc({.nodes = 120, .ports = 2,
                                             .seed = 11}));
  ArnoldiOptions opt;
  opt.order = static_cast<Index>(state.range(0));
  for (auto _ : state) {
    const ArnoldiModel m = arnoldi_reduce(sys, opt);
    benchmark::DoNotOptimize(m.order());
  }
}
BENCHMARK(bm_arnoldi)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

SYMPVL_BENCH_MAIN(print_tables)
