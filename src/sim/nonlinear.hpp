// Nonlinear transient simulation: MNA plus voltage-controlled nonlinear
// devices, solved by Newton iteration with companion models per time step
// (backward Euler).
//
// This is the paper's Section 6 setting: "when the linear circuit
// represents a sub-block of a larger, nonlinear circuit … equations (23)
// together with the equations describing the rest of the nonlinear circuit
// form a smaller and easier to solve system". A SyMPVL ReducedModel
// stamped via ReducedModel::stamp_into co-simulates with the nonlinear
// devices defined here, and the Jacobian is refactored with a reused
// symbolic analysis (the device stamps keep a fixed sparsity pattern).
#pragma once

#include <memory>
#include <vector>

#include "circuit/mna.hpp"
#include "sim/transient.hpp"

namespace sympvl {

/// A voltage-controlled nonlinear device. At each Newton iteration the
/// device reports its branch currents and small-signal conductances at the
/// current voltage guess; the engine stamps the companion model.
class NonlinearDevice {
 public:
  virtual ~NonlinearDevice() = default;

  /// MNA unknown indices this device couples (fixed over the run, so the
  /// Jacobian pattern is constant). Index −1 denotes the datum node.
  virtual std::vector<Index> terminals() const = 0;

  /// Evaluates the device at the guessed terminal voltages (same order as
  /// terminals(); the datum reads 0):
  ///   currents[k]          current flowing OUT of terminal k into the device,
  ///   conductance(k, m)    ∂currents[k] / ∂v[m].
  virtual void evaluate(const Vec& terminal_voltages, Vec& currents,
                        Mat& conductance) const = 0;
};

/// Shockley diode with junction-voltage limiting (SPICE-style pnjlim keeps
/// Newton from exploding on the exponential).
class Diode final : public NonlinearDevice {
 public:
  /// Anode/cathode are MNA node indices (node k of the netlist → k−1;
  /// −1 = datum). `saturation` in amperes, `thermal` the emission-scaled
  /// thermal voltage nVt.
  Diode(Index anode, Index cathode, double saturation = 1e-14,
        double thermal = 0.02585);

  std::vector<Index> terminals() const override;
  void evaluate(const Vec& terminal_voltages, Vec& currents,
                Mat& conductance) const override;

 private:
  Index anode_, cathode_;
  double is_, vt_;
};

/// A saturating push-pull driver: a voltage-controlled current source that
/// pushes its output node toward ±limit with a tanh characteristic,
///   i_out = −g_max·v_swing·tanh((v_ctl − v_out)/v_swing),
/// i.e. a finite-gain, finite-current buffer — a simple stand-in for the
/// "logic gates" driving the paper's interconnect ports.
class TanhDriver final : public NonlinearDevice {
 public:
  TanhDriver(Index control, Index output, double g_max = 0.02,
             double v_swing = 0.3);

  std::vector<Index> terminals() const override;
  void evaluate(const Vec& terminal_voltages, Vec& currents,
                Mat& conductance) const override;

 private:
  Index control_, output_;
  double gmax_, vswing_;
};

struct NonlinearTransientOptions {
  double dt = 1e-12;
  double t_end = 1e-9;
  int max_newton_iterations = 50;
  double newton_tol = 1e-9;  ///< relative update norm for convergence
};

/// DC operating point: solves  G·x + F(x) = input_map·u0  by Newton (the
/// capacitive term vanishes at DC). Requires a DC path at every node (G
/// plus the device conductances nonsingular); throws on Newton failure.
Vec dc_operating_point(
    const MnaSystem& sys,
    const std::vector<std::shared_ptr<NonlinearDevice>>& devices,
    const Mat& input_map, const Vec& u0,
    const NonlinearTransientOptions& options = {});

/// Simulates  C·dx/dt + G·x + F(x) = input_map·u(t)  (backward Euler +
/// Newton). `sys` supplies the linear part (general or RC form; a system
/// returned by ReducedModel::stamp_into works directly). Outputs are
/// output_mapᵀ·x. Throws when Newton fails to converge at any step.
TransientResult simulate_nonlinear_transient(
    const MnaSystem& sys,
    const std::vector<std::shared_ptr<NonlinearDevice>>& devices,
    const Mat& input_map, const std::vector<Waveform>& inputs,
    const Mat& output_map, const NonlinearTransientOptions& options);

}  // namespace sympvl
