// Tests for the Metrics v2 layer: log-bucketed latency histograms (and
// their span feed), byte gauges / MemCharge memory accounting, the
// Prometheus text exposition, and the upgraded stats summary.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/random_circuit.hpp"
#include "mor/sympvl.hpp"
#include "obs/histogram.hpp"
#include "obs/memstat.hpp"
#include "obs/obs.hpp"
#include "obs/prom_export.hpp"

namespace sympvl {
namespace {

// RAII guard: clean, programmatically-enabled (or disabled) recorder,
// left clean for the next test (mirrors test_obs.cpp).
struct ObsGuard {
  explicit ObsGuard(bool on) {
    obs::enable(on);
    obs::reset();
  }
  ~ObsGuard() {
    obs::enable(false);
    obs::reset();
  }
};

TEST(Histogram, BucketLayoutIsMonotoneAndBounded) {
  using namespace obs;
  EXPECT_EQ(histogram_bucket(0.0), 0);
  EXPECT_EQ(histogram_bucket(-1.0), 0);
  EXPECT_EQ(histogram_bucket(std::nan("")), 0);
  EXPECT_EQ(histogram_bucket(kHistMin / 2), 0);
  EXPECT_EQ(histogram_bucket(kHistMin), 1);
  EXPECT_EQ(histogram_bucket(1e9), kHistBuckets - 1);

  int prev = 0;
  for (double v = kHistMin / 10; v < 1e4; v *= 1.07) {
    const int b = histogram_bucket(v);
    EXPECT_GE(b, prev) << "bucket index regressed at " << v;
    EXPECT_GE(b, 0);
    EXPECT_LT(b, kHistBuckets);
    // Every non-overflow value sits strictly below its bucket's bound.
    if (b < kHistBuckets - 1) EXPECT_LT(v, histogram_upper_bound(b));
    prev = b;
  }
  EXPECT_TRUE(std::isinf(histogram_upper_bound(kHistBuckets - 1)));
}

TEST(Histogram, BinsMomentsAndQuantiles) {
  obs::HistogramBins bins;
  EXPECT_TRUE(bins.empty());
  EXPECT_EQ(bins.quantile(0.5), 0.0);

  const std::vector<double> samples = {1e-5, 2e-5, 5e-5, 1e-4, 1e-3};
  for (double s : samples) bins.record(s);
  EXPECT_EQ(bins.count, samples.size());
  EXPECT_DOUBLE_EQ(bins.min, 1e-5);
  EXPECT_DOUBLE_EQ(bins.max, 1e-3);
  EXPECT_NEAR(bins.mean(), (1e-5 + 2e-5 + 5e-5 + 1e-4 + 1e-3) / 5, 1e-12);

  // Quantiles are clamped to [min, max] and monotone in q.
  EXPECT_DOUBLE_EQ(bins.quantile(0.0), bins.min);
  EXPECT_DOUBLE_EQ(bins.quantile(1.0), bins.max);
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double v = bins.quantile(q);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, bins.min);
    EXPECT_LE(v, bins.max);
    prev = v;
  }
  // The p50 of this sample set lives in the 5e-5 bucket (log-resolution
  // 10^(1/8) ≈ 1.33).
  EXPECT_NEAR(bins.quantile(0.5), 5e-5, 5e-5 * 0.35);
}

TEST(Histogram, MergeAddsCountsAndMoments) {
  obs::HistogramBins a, b;
  a.record(1e-4);
  a.record(2e-4);
  b.record(5e-2);
  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.min, 1e-4);
  EXPECT_DOUBLE_EQ(a.max, 5e-2);
  EXPECT_NEAR(a.sum, 1e-4 + 2e-4 + 5e-2, 1e-12);
  // Merging an empty histogram is a no-op.
  obs::HistogramBins empty;
  a.merge(empty);
  EXPECT_EQ(a.count, 3u);
}

TEST(Histogram, LatencyStatsDigestIsOrdered) {
  obs::HistogramBins bins;
  for (int i = 1; i <= 1000; ++i) bins.record(1e-6 * i);
  const obs::LatencyStats s = latency_stats(bins);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_GT(s.mean, 0.0);
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  ObsGuard guard(true);
  obs::Histogram& h = obs::histogram("test.concurrent_hist");
  h.reset();
  constexpr int kThreads = 4, kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record_unchecked(1e-6 * (t + 1));
    });
  for (auto& w : workers) w.join();
  const obs::HistogramBins bins = h.snapshot();
  EXPECT_EQ(bins.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(bins.min, 1e-6);
  EXPECT_DOUBLE_EQ(bins.max, 4e-6);
  h.reset();
  EXPECT_TRUE(h.snapshot().empty());
}

TEST(Histogram, GatedRecordDropsWhenDisabled) {
  ObsGuard guard(false);
  obs::Histogram& h = obs::histogram("test.gated_hist");
  h.reset();
  h.record(1e-3);
  EXPECT_TRUE(h.snapshot().empty());
}

TEST(Histogram, SpansFeedHistogramsAutomatically) {
  ObsGuard guard(true);
  for (int i = 0; i < 3; ++i) {
    obs::ScopedTimer span("test.fed_span");
  }
  bool found = false;
  for (const auto& [name, bins] : obs::snapshot_histograms())
    if (name == "test.fed_span") {
      found = true;
      EXPECT_EQ(bins.count, 3u);
    }
  EXPECT_TRUE(found);
  // obs::reset() zeroes the histograms too.
  obs::reset();
  for (const auto& [name, bins] : obs::snapshot_histograms())
    if (name == "test.fed_span") EXPECT_TRUE(bins.empty());
}

TEST(MemStat, ByteGaugeTracksCurrentAndPeak) {
  obs::ByteGauge g;
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.peak(), 0);
  g.add(1000);
  g.add(500);
  EXPECT_EQ(g.value(), 1500);
  EXPECT_EQ(g.peak(), 1500);
  g.add(-800);
  EXPECT_EQ(g.value(), 700);
  EXPECT_EQ(g.peak(), 1500);  // peak is a high-water mark
  g.reset_peak();
  EXPECT_EQ(g.peak(), 700);  // dropped to the current value, not zero
}

TEST(MemStat, MemChargeIsRaiiAndCopyDuplicates) {
  obs::ByteGauge& g = obs::byte_gauge("test.mem_charge_gauge");
  const std::int64_t base = g.value();
  {
    obs::MemCharge c(g, 4096);
    EXPECT_EQ(g.value(), base + 4096);
    {
      obs::MemCharge copy(c);  // a copy holds its own bytes
      EXPECT_EQ(g.value(), base + 8192);
      obs::MemCharge moved(std::move(copy));  // a move transfers the charge
      EXPECT_EQ(g.value(), base + 8192);
    }
    EXPECT_EQ(g.value(), base + 4096);
    c.set(1024);  // re-statement applies the delta
    EXPECT_EQ(g.value(), base + 1024);
    c.reset();  // early release detaches
    EXPECT_EQ(g.value(), base);
  }
  EXPECT_EQ(g.value(), base);
}

TEST(MemStat, ByteGaugesAreAlwaysOnAndSnapshotted) {
  ObsGuard guard(false);  // gauges are NOT gated on obs::enabled()
  obs::byte_gauge("test.always_on_gauge").add(12345);
  bool found = false;
  for (const auto& s : obs::snapshot_byte_gauges())
    if (s.name == "test.always_on_gauge") {
      found = true;
      EXPECT_GE(s.current, 12345);
      EXPECT_GE(s.peak, s.current);
    }
  EXPECT_TRUE(found);
  obs::byte_gauge("test.always_on_gauge").add(-12345);
}

TEST(MemStat, PeakRssIsReported) {
  EXPECT_GT(obs::peak_rss_bytes(), 0);
}

TEST(PromExport, MetricNameSanitization) {
  EXPECT_EQ(obs::prometheus_metric_name("factor_cache.hit"),
            "sympvl_factor_cache_hit");
  EXPECT_EQ(obs::prometheus_metric_name("kernel.panel_update"),
            "sympvl_kernel_panel_update");
  EXPECT_EQ(obs::prometheus_metric_name("weird metric-name!"),
            "sympvl_weird_metric_name_");
}

TEST(PromExport, ExpositionFormatBasics) {
  ObsGuard guard(true);
  obs::counter("test.prom_counter").add(7.0);
  obs::gauge("test.prom_gauge").set(2.5);
  {
    obs::ScopedTimer span("test.prom_span");
  }
  std::ostringstream out;
  obs::export_prometheus(out);
  const std::string doc = out.str();

  // Counter family: HELP + TYPE + a _total sample.
  EXPECT_NE(doc.find("# HELP sympvl_test_prom_counter_total"),
            std::string::npos);
  EXPECT_NE(doc.find("# TYPE sympvl_test_prom_counter_total counter"),
            std::string::npos);
  EXPECT_NE(doc.find("sympvl_test_prom_counter_total 7"), std::string::npos);
  EXPECT_NE(doc.find("sympvl_test_prom_gauge 2.5"), std::string::npos);

  // Span histogram family with cumulative buckets ending at +Inf.
  EXPECT_NE(doc.find("# TYPE sympvl_span_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(
      doc.find(
          "sympvl_span_duration_seconds_bucket{span=\"test.prom_span\",le="),
      std::string::npos);
  EXPECT_NE(doc.find("le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(doc.find("sympvl_span_duration_seconds_count{span="
                     "\"test.prom_span\"} 1"),
            std::string::npos);

  // Summary family carries the three precomputed quantiles.
  for (const char* q : {"0.5", "0.95", "0.99"}) {
    EXPECT_NE(doc.find("quantile=\"" + std::string(q) + "\"}"),
              std::string::npos);
  }

  // Build identity + process memory are always present.
  EXPECT_NE(doc.find("sympvl_build_info{compiler="), std::string::npos);
  EXPECT_NE(doc.find("sympvl_process_peak_rss_bytes"), std::string::npos);

  // Bucket counts are cumulative (monotone) per span family.
  std::istringstream lines(doc);
  std::string line;
  long long prev = -1;
  while (std::getline(lines, line)) {
    if (line.find("sympvl_span_duration_seconds_bucket{span=\"test.prom_"
                  "span\"") != 0)
      continue;
    const long long v = std::atoll(line.c_str() + line.rfind(' ') + 1);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_GE(prev, 1);
}

TEST(PromExport, StatsSummaryCarriesLatencyColumns) {
  ObsGuard guard(true);
  for (int i = 0; i < 5; ++i) {
    obs::ScopedTimer span("test.summary_span");
  }
  const std::string summary = obs::stats_summary();
  for (const char* col : {"count", "mean_ms", "p50_ms", "p99_ms"})
    EXPECT_NE(summary.find(col), std::string::npos) << col;
  EXPECT_NE(summary.find("test.summary_span"), std::string::npos);
}

TEST(Metrics, SympvlReportCarriesByteAndStepStats) {
  // The report's memory + latency fields are always-on: no obs enable.
  ObsGuard guard(false);
  const MnaSystem sys =
      build_mna(random_rc({.nodes = 60, .ports = 2, .seed = 5}));
  SympvlOptions opt;
  opt.order = 10;
  SympvlReport report;
  sympvl_reduce(sys, opt, &report);
  EXPECT_GT(report.factor_bytes, 0);
  EXPECT_GT(report.krylov_peak_bytes, 0);
  EXPECT_GT(report.peak_rss_bytes, 0);
  EXPECT_GE(report.lanczos_step_stats.count, 10u);
  EXPECT_LE(report.lanczos_step_stats.p50, report.lanczos_step_stats.p99);
  EXPECT_GT(report.lanczos_step_stats.max, 0.0);
}

TEST(Metrics, KrylovGaugeReleasesOnSessionDestruction) {
  ObsGuard guard(false);
  obs::ByteGauge& g = obs::byte_gauge("mem.krylov_bytes");
  const std::int64_t base = g.value();
  {
    const MnaSystem sys =
        build_mna(random_rc({.nodes = 50, .ports = 2, .seed = 9}));
    SympvlOptions opt;
    opt.order = 8;
    SympvlSession session(sys, opt);
    EXPECT_GT(g.value(), base);
  }
  EXPECT_EQ(g.value(), base);
}

}  // namespace
}  // namespace sympvl
