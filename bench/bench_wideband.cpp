// Experiment E13 (extension) — multi-point (rational Krylov) reduction vs
// the paper's single-expansion-point approach over a wide band.
//
// A single Padé expansion is optimal near its expansion point and decays
// away from it; when the band of interest spans many decades, spreading
// the same basis budget over several expansion points wins. This bench
// quantifies that trade-off, and verifies that congruence projection keeps
// the RC stability/passivity guarantees at every budget.
#include "bench_util.hpp"
#include "gen/rc_interconnect.hpp"
#include "mor/rational.hpp"
#include "mor/sympvl.hpp"
#include "sim/ac.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

const MnaSystem& system_ref() {
  static const MnaSystem sys = build_mna(
      make_interconnect_circuit({.wires = 8, .segments = 160}).netlist,
      MnaForm::kRC);
  return sys;
}

void print_tables() {
  const MnaSystem& sys = system_ref();
  std::printf("8-wire RC bus: MNA size %lld, %lld ports\n",
              static_cast<long long>(sys.size()),
              static_cast<long long>(sys.port_count()));
  const Vec freqs = log_frequency_grid(1e5, 2e10, 25);
  const auto exact = ac_sweep(sys, freqs);

  auto sweep_err = [&](const ArnoldiModel& m) {
    double err = 0.0;
    for (size_t k = 0; k < freqs.size(); ++k)
      err = std::max(err, max_rel_err(
                              m.eval(Complex(0.0, 2.0 * M_PI * freqs[k])),
                              exact[k]));
    return err;
  };

  csv_begin("wideband: single expansion point vs spread (equal total basis "
            "budget)",
            {"points", "iters_per_point", "basis_size", "max_rel_err"});
  const Index budget_iters = 4;  // DC-only baseline: 4 block iterations
  {
    RationalOptions single;
    single.shifts = {0.0};
    single.iterations_per_shift = budget_iters;
    const ArnoldiModel m = rational_reduce(sys, single);
    csv_row({1.0, static_cast<double>(budget_iters),
             static_cast<double>(m.order()), sweep_err(m)});
  }
  for (Index points : {2, 4}) {
    RationalOptions multi;
    multi.shifts = rational_shifts_for_band(sys, 1e5, 2e10, points);
    multi.iterations_per_shift = std::max<Index>(1, budget_iters / points);
    const ArnoldiModel m = rational_reduce(sys, multi);
    csv_row({static_cast<double>(points),
             static_cast<double>(multi.iterations_per_shift),
             static_cast<double>(m.order()), sweep_err(m)});
  }

  // Per-frequency error profile: the single-point model's error grows away
  // from DC, the spread model stays flat.
  RationalOptions single;
  single.shifts = {0.0};
  single.iterations_per_shift = budget_iters;
  const ArnoldiModel m_single = rational_reduce(sys, single);
  RationalOptions multi;
  multi.shifts = rational_shifts_for_band(sys, 1e5, 2e10, 4);
  multi.iterations_per_shift = 1;
  const ArnoldiModel m_multi = rational_reduce(sys, multi);
  csv_begin("wideband: error vs frequency",
            {"f_hz", "err_single_point", "err_4_points"});
  for (size_t k = 0; k < freqs.size(); ++k) {
    const Complex s(0.0, 2.0 * M_PI * freqs[k]);
    csv_row({freqs[k], max_rel_err(m_single.eval(s), exact[k]),
             max_rel_err(m_multi.eval(s), exact[k])});
  }

  // Stability at every budget (congruence keeps the PSD pencil).
  csv_begin("wideband: stability of multi-point RC models",
            {"points", "stable"});
  for (Index points : {1, 2, 4, 8}) {
    RationalOptions opt;
    opt.shifts = points == 1 ? Vec{0.0}
                             : rational_shifts_for_band(sys, 1e5, 2e10, points);
    opt.iterations_per_shift = 2;
    const ArnoldiModel m = rational_reduce(sys, opt);
    csv_row({static_cast<double>(points), m.is_stable() ? 1.0 : 0.0});
  }
}

void bm_rational(benchmark::State& state) {
  const MnaSystem& sys = system_ref();
  RationalOptions opt;
  opt.shifts = rational_shifts_for_band(sys, 1e5, 2e10,
                                        static_cast<Index>(state.range(0)));
  opt.iterations_per_shift = 2;
  for (auto _ : state) {
    const ArnoldiModel m = rational_reduce(sys, opt);
    benchmark::DoNotOptimize(m.order());
  }
}
BENCHMARK(bm_rational)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

SYMPVL_BENCH_MAIN(print_tables)
