// Experiment E10 — scaling behavior behind the Section 7.2 remark that
// "the cost of nonlinear circuit simulation is superlinear in the number
// of state variables": SyMPVL cost as a function of circuit size N,
// reduced order n, and port count p, against the cost of exact AC sweeps
// and full transient runs that the reduced model replaces.
#include <chrono>

#include "bench_util.hpp"
#include "gen/rc_interconnect.hpp"
#include "mor/sympvl.hpp"
#include "sim/ac.hpp"
#include "sim/transient.hpp"

namespace {

using namespace sympvl;
using namespace sympvl::bench;

double timed(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_tables() {
  // Largest-case numbers re-emitted to BENCH_scaling.json for the
  // perf-trajectory gate (tools/check_perf.py).
  double json_n = 0, json_reduce_s = 0, json_exact_s = 0, json_rom_s = 0;
  double json_engine_speedup = 0;

  csv_begin("scaling in circuit size N (4-wire bus, p=9, order 18)",
            {"segments", "mna_size", "reduce_s", "exact_sweep20_s",
             "rom_sweep20_s"});
  for (Index segments : {25, 50, 100, 200, 400}) {
    const MnaSystem sys =
        ::sympvl::build_mna(make_interconnect_circuit(
                                {.wires = 4, .segments = segments}).netlist,
                            MnaForm::kRC);
    ReducedModel rom;
    const double t_red = timed([&] {
      SympvlOptions opt;
      opt.order = 18;
      rom = sympvl_reduce(sys, opt);
    });
    const Vec freqs = log_frequency_grid(1e6, 1e10, 20);
    const double t_exact = timed([&] { ac_sweep(sys, freqs); });
    const double t_rom = timed([&] { rom.sweep(freqs); });
    csv_row({static_cast<double>(segments), static_cast<double>(sys.size()),
             t_red, t_exact, t_rom});
    if (segments == 400) {
      json_n = static_cast<double>(sys.size());
      json_reduce_s = t_red;
      json_exact_s = t_exact;
      json_rom_s = t_rom;
    }
  }

  csv_begin("scaling in reduced order n (fixed N)",
            {"order", "reduce_s"});
  const MnaSystem sys =
      ::sympvl::build_mna(make_interconnect_circuit(
                              {.wires = 4, .segments = 200}).netlist,
                          MnaForm::kRC);
  for (Index order : {8, 16, 32, 64}) {
    const double t = timed([&] {
      SympvlOptions opt;
      opt.order = order;
      sympvl_reduce(sys, opt);
    });
    csv_row({static_cast<double>(order), t});
  }

  csv_begin("AC sweep engine: amortized symbolic analysis vs per-point "
            "factorization (40 points)",
            {"mna_size", "t_per_point_s", "t_engine_s", "speedup"});
  for (Index segments : {100, 400}) {
    const MnaSystem s2 =
        ::sympvl::build_mna(make_interconnect_circuit(
                                {.wires = 4, .segments = segments}).netlist,
                            MnaForm::kRC);
    const Vec freqs = log_frequency_grid(1e6, 1e10, 40);
    const double t_points = timed([&] {
      for (double f : freqs) ac_z_matrix(s2, Complex(0.0, 2.0 * M_PI * f));
    });
    const double t_engine = timed([&] { AcSweepEngine(s2).sweep(freqs); });
    csv_row({static_cast<double>(s2.size()), t_points, t_engine,
             t_points / t_engine});
    if (segments == 400) json_engine_speedup = t_points / t_engine;
  }

  csv_begin("scaling in port count p (fixed N per wire, order 2p)",
            {"wires", "ports", "reduce_s"});
  for (Index wires : {2, 4, 8, 12}) {
    const MnaSystem s =
        ::sympvl::build_mna(make_interconnect_circuit(
                                {.wires = wires, .segments = 100}).netlist,
                            MnaForm::kRC);
    const double t = timed([&] {
      SympvlOptions opt;
      opt.order = 2 * s.port_count();
      sympvl_reduce(s, opt);
    });
    csv_row({static_cast<double>(wires), static_cast<double>(s.port_count()), t});
  }

  json_emit("BENCH_scaling.json",
            {{"interconnect_n", json_n},
             {"reduce_s", json_reduce_s},
             {"exact_sweep20_s", json_exact_s},
             {"rom_sweep20_s", json_rom_s},
             {"engine_vs_per_point_speedup", json_engine_speedup}});
  std::printf("\nwrote BENCH_scaling.json\n");
}

void bm_reduce_by_size(benchmark::State& state) {
  const MnaSystem sys =
      ::sympvl::build_mna(make_interconnect_circuit(
                              {.wires = 4,
                               .segments = static_cast<Index>(state.range(0))})
                              .netlist,
                          MnaForm::kRC);
  SympvlOptions opt;
  opt.order = 18;
  for (auto _ : state) {
    const ReducedModel rom = sympvl_reduce(sys, opt);
    benchmark::DoNotOptimize(rom.order());
  }
  state.SetComplexityN(sys.size());
}
BENCHMARK(bm_reduce_by_size)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond)->Complexity();

}  // namespace

SYMPVL_BENCH_MAIN(print_tables)
