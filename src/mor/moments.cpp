#include "mor/moments.hpp"

#include "mor/pencil.hpp"

namespace sympvl {

std::vector<Mat> exact_moments(const MnaSystem& sys, Index count, double s0) {
  require(count >= 1, "exact_moments: count must be >= 1");
  const Index n = sys.size();
  const Index p = sys.port_count();
  PencilFactorRequest req;
  req.s0 = s0;
  req.auto_shift = false;
  req.driver = "exact_moments";
  req.stage = "moments.factor";
  const std::shared_ptr<const FactorizedPencil> fact =
      factor_pencil(sys.G, sys.C, req).pencil;

  // xcols starts as G̃⁻¹B and is advanced by G̃⁻¹C each step.
  std::vector<Vec> xcols(static_cast<size_t>(p));
  for (Index j = 0; j < p; ++j)
    xcols[static_cast<size_t>(j)] = fact->solve(sys.B.col(j));

  std::vector<Mat> moments;
  moments.reserve(static_cast<size_t>(count));
  for (Index k = 0; k < count; ++k) {
    Mat mk(p, p);
    for (Index a = 0; a < p; ++a)
      for (Index b = 0; b < p; ++b) {
        double acc = 0.0;
        for (Index i = 0; i < n; ++i)
          acc += sys.B(i, a) * xcols[static_cast<size_t>(b)][static_cast<size_t>(i)];
        mk(a, b) = acc;
      }
    moments.push_back(std::move(mk));
    if (k + 1 < count)
      for (Index j = 0; j < p; ++j)
        xcols[static_cast<size_t>(j)] =
            fact->solve(sys.C.multiply(xcols[static_cast<size_t>(j)]));
  }
  return moments;
}

Vec exact_moments_scalar(const MnaSystem& sys, Index count, double s0) {
  require(sys.port_count() == 1, "exact_moments_scalar: system must have one port");
  const auto m = exact_moments(sys, count, s0);
  Vec out(m.size());
  for (size_t k = 0; k < m.size(); ++k) out[k] = m[k](0, 0);
  return out;
}

}  // namespace sympvl
