# Empty dependencies file for bench_fig3_package.
# This may be replaced when dependencies are built.
