#include "parallel/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#include "obs/obs.hpp"

namespace sympvl {

namespace {

thread_local bool t_in_parallel = false;

Index default_thread_count() {
  if (const char* env = std::getenv("SYMPVL_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<Index>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<Index>(hw) : 1;
}

}  // namespace

bool in_parallel_region() { return t_in_parallel; }

namespace detail {

RegionGuard::RegionGuard() : prev_(t_in_parallel) { t_in_parallel = true; }
RegionGuard::~RegionGuard() { t_in_parallel = prev_; }

struct ThreadPool::State {
  // run() calls from distinct user threads serialize here; everything
  // below is owned by the single active run (plus the workers).
  std::mutex run_mutex;

  std::mutex m;
  std::condition_variable work_ready;
  std::condition_variable work_done;
  std::vector<std::thread> workers;
  const std::vector<Task>* tasks = nullptr;  // valid while an epoch is live
  std::atomic<Index> next{0};                // next unclaimed task index
  Index remaining = 0;                       // tasks not yet finished
  Index active = 0;                          // workers inside the claim loop
  unsigned long long epoch = 0;
  bool stop = false;
  Index requested = 1;  // logical parallelism (workers + caller)

  void worker_loop() {
    std::unique_lock<std::mutex> lock(m);
    // Start one epoch behind so a worker spawned mid-batch joins the
    // batch already in flight instead of sleeping through it.
    unsigned long long seen = epoch - 1;
    for (;;) {
      work_ready.wait(lock, [&] { return stop || epoch != seen; });
      if (stop) return;
      seen = epoch;
      if (tasks == nullptr) continue;
      const std::vector<Task>* batch = tasks;
      const Index count = static_cast<Index>(batch->size());
      ++active;
      lock.unlock();
      claim_and_run(batch, count);
      lock.lock();
      --active;
      if (active == 0 && remaining == 0) work_done.notify_all();
    }
  }

  void claim_and_run(const std::vector<Task>* batch, Index count) {
    for (;;) {
      const Index i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      (*batch)[static_cast<size_t>(i)]();
      std::lock_guard<std::mutex> g(m);
      if (--remaining == 0 && active == 0) work_done.notify_all();
    }
  }

  void spawn_workers_locked(Index n) {
    while (static_cast<Index>(workers.size()) < n) {
      // Named lanes in the trace: worker K is "pool-worker-K" for the
      // lifetime of the pool (naming is cheap next to thread creation).
      const Index idx = static_cast<Index>(workers.size());
      workers.emplace_back([this, idx] {
        obs::set_thread_name("pool-worker-" + std::to_string(idx));
        worker_loop();
      });
    }
  }

  void shutdown_workers() {
    {
      std::lock_guard<std::mutex> g(m);
      stop = true;
    }
    work_ready.notify_all();
    for (auto& w : workers) w.join();
    workers.clear();
    std::lock_guard<std::mutex> g(m);
    stop = false;
  }
};

ThreadPool::ThreadPool() : state_(new State) {
  state_->requested = default_thread_count();
}

ThreadPool::~ThreadPool() {
  state_->shutdown_workers();
  delete state_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

Index ThreadPool::threads() const {
  std::lock_guard<std::mutex> g(state_->m);
  return state_->requested;
}

void ThreadPool::set_threads(Index n) {
  // Taking run_mutex keeps a resize from racing an active parallel region.
  std::lock_guard<std::mutex> serial(state_->run_mutex);
  const Index target = n >= 1 ? n : default_thread_count();
  if (target < static_cast<Index>(state_->workers.size()) + 1)
    state_->shutdown_workers();  // shrink: recycle the whole pool
  std::lock_guard<std::mutex> g(state_->m);
  state_->requested = target;
}

void ThreadPool::run(const std::vector<Task>& tasks) {
  if (tasks.empty()) return;
  State& s = *state_;
  std::lock_guard<std::mutex> serial(s.run_mutex);
  const Index count = static_cast<Index>(tasks.size());
  {
    std::lock_guard<std::mutex> g(s.m);
    // Workers are spawned lazily so a serial program never pays for them.
    // count-1 workers suffice: the caller claims tasks too.
    s.spawn_workers_locked(std::min(s.requested, count) - 1);
    s.tasks = &tasks;
    s.next.store(0, std::memory_order_relaxed);
    s.remaining = count;
    ++s.epoch;
  }
  s.work_ready.notify_all();
  s.claim_and_run(&tasks, count);
  std::unique_lock<std::mutex> lock(s.m);
  s.work_done.wait(lock, [&] { return s.remaining == 0 && s.active == 0; });
  s.tasks = nullptr;
}

}  // namespace detail

Index num_threads() { return detail::ThreadPool::instance().threads(); }

void set_num_threads(Index n) { detail::ThreadPool::instance().set_threads(n); }

}  // namespace sympvl
