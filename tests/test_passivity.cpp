#include "mor/passivity.hpp"

#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "mor/sympvl.hpp"
#include "sim/ac.hpp"

namespace sympvl {
namespace {

TEST(Passivity, HermitianPartEigOfRealMatrix) {
  CMat z(2, 2);
  z(0, 0) = Complex(3.0, 0.0);
  z(1, 1) = Complex(1.0, 0.0);
  z(0, 1) = Complex(1.0, 0.0);
  z(1, 0) = Complex(1.0, 0.0);
  // Symmetric real: eigenvalues (2±√2).
  EXPECT_NEAR(min_hermitian_part_eig(z), 2.0 - std::sqrt(2.0), 1e-10);
}

TEST(Passivity, HermitianPartIgnoresSkewPart) {
  // Z = I + i·[0 1; -1 0]·β has Hermitian part... the imaginary symmetric
  // part contributes: H = (Z+Zᴴ)/2. For Z = I + iβJ with J symmetric the
  // Hermitian part picks it up; with J skew it cancels. Use skew:
  CMat z(2, 2);
  z(0, 0) = Complex(1.0, 0.0);
  z(1, 1) = Complex(1.0, 0.0);
  z(0, 1) = Complex(0.0, 5.0);
  z(1, 0) = Complex(0.0, 5.0);  // symmetric imaginary -> reactive, cancels in H
  EXPECT_NEAR(min_hermitian_part_eig(z), 1.0, 1e-12);
}

TEST(Passivity, PureResistorIsPassive) {
  Netlist nl;
  nl.add_resistor(1, 0, 50.0);
  nl.add_capacitor(1, 0, 1e-15);
  nl.add_port(1, 0);
  SympvlOptions opt;
  opt.order = 1;
  const ReducedModel rom = sympvl_reduce(build_mna(nl), opt);
  const auto report = check_passivity(rom, log_frequency_grid(1e6, 1e10, 11));
  EXPECT_TRUE(report.stable);
  EXPECT_TRUE(report.passive);
  EXPECT_GE(report.min_hermitian_eig, 0.0);
}

TEST(Passivity, RcReducedModelsPassiveAtEveryOrder) {
  // The Section 5 theorem: RC reductions are passive at ANY order.
  const Netlist nl = random_rc({.nodes = 40, .ports = 2, .seed = 3});
  const MnaSystem sys = build_mna(nl);
  const Vec freqs = log_frequency_grid(1e5, 1e11, 15);
  for (Index order : {1, 2, 3, 5, 8, 13, 21}) {
    SympvlOptions opt;
    opt.order = order;
    const ReducedModel rom = sympvl_reduce(sys, opt);
    const auto report = check_passivity(rom, freqs);
    EXPECT_TRUE(report.stable) << "order " << order;
    EXPECT_TRUE(report.passive) << "order " << order
                                << " min eig " << report.min_hermitian_eig;
  }
}

TEST(Passivity, RlReducedModelsStable) {
  const Netlist nl = random_rl({.nodes = 25, .ports = 1, .seed = 4});
  const MnaSystem sys = build_mna(nl, MnaForm::kRL);
  for (Index order : {2, 4, 8}) {
    SympvlOptions opt;
    opt.order = order;
    const ReducedModel rom = sympvl_reduce(sys, opt);
    EXPECT_TRUE(rom.is_stable()) << "order " << order;
  }
}

TEST(Passivity, LcReducedModelPolesOnImaginaryAxis) {
  const Netlist nl = random_lc({.nodes = 16, .ports = 1, .seed = 5,
                                .grounded = true});
  const MnaSystem sys = build_mna(nl, MnaForm::kLC);
  SympvlOptions opt;
  opt.order = 8;
  const ReducedModel rom = sympvl_reduce(sys, opt);
  // LC circuits are lossless: poles sit on the imaginary axis
  // (σ = s² ≤ 0 ⇒ s = ±j√|σ|).
  for (const Complex& pole : rom.poles())
    EXPECT_NEAR(pole.real(), 0.0, 1e-6 * (1.0 + std::abs(pole)));
}

TEST(Passivity, DetectsActiveNetwork) {
  // A "circuit" with a negative resistor is not passive; check through the
  // generic evaluator interface with the exact Z.
  Netlist nl;
  nl.set_allow_negative(true);
  nl.add_resistor(1, 0, -50.0);
  nl.add_capacitor(1, 0, 1e-12);
  nl.add_port(1, 0);
  const MnaSystem sys = build_mna(nl);
  const auto report = check_passivity_fn(
      [&](Complex s) { return ac_z_matrix(sys, s); }, {},
      log_frequency_grid(1e6, 1e9, 5));
  EXPECT_LT(report.min_hermitian_eig, 0.0);
  EXPECT_FALSE(report.passive);
}

TEST(Passivity, ReportsReciprocityViolationMagnitude) {
  const Netlist nl = random_rc({.nodes = 20, .ports = 3, .seed = 6});
  SympvlOptions opt;
  opt.order = 9;
  const ReducedModel rom = sympvl_reduce(build_mna(nl), opt);
  const auto report = check_passivity(rom, {1e8, 1e9});
  // Symmetric reductions of reciprocal networks stay reciprocal.
  EXPECT_LT(report.max_symmetry_violation, 1e-8);
  EXPECT_LT(report.max_conjugacy_violation, 1e-8);
}

}  // namespace
}  // namespace sympvl
